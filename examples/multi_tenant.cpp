// Multi-tenant service workflow: three concurrent CSV sensor streams
// multiplexed through ONE SpotService, with LRU eviction to disk and a
// kill/restore demonstration.
//
//   ./build/examples/multi_tenant [--checkpoint-dir DIR] [--max-resident N]
//                                 [--threads N]
//
// Three tenants ("plant-a", "plant-b", "plant-c") each produce a CSV with
// their own sensor concept and their own planted projected outliers. The
// service holds at most --max-resident (default 2) detector sessions in
// memory, so round-robin ingest keeps evicting the least-recently-used
// session to a full-state checkpoint and transparently reloading it.
// Halfway through, the service is destroyed outright (the "kill"), a new
// one is constructed over the same checkpoint directory, the sessions are
// reopened with OpenSession, and the streams continue.
//
// Throughout, every verdict is compared against a dedicated standalone
// detector per tenant that is never evicted, killed or restored: the final
// line "BIT-IDENTICAL RESUME: OK" asserts that eviction, reload, kill and
// restore changed nothing at all. The CI smoke job greps for it.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "common/rng.h"
#include "core/detector.h"
#include "examples/example_flags.h"
#include "service/spot_service.h"
#include "stream/csv.h"

namespace {

constexpr int kTenants = 3;
constexpr std::size_t kRows = 2400;
constexpr std::size_t kTraining = 600;
constexpr std::size_t kBatch = 200;

const char* TenantName(int t) {
  static const char* kNames[kTenants] = {"plant-a", "plant-b", "plant-c"};
  return kNames[t];
}

// Each tenant's CSV: four correlated sensor channels around tenant-specific
// operating points, with a tenant-specific channel that occasionally sticks
// (a projected outlier: nominal in every other attribute).
std::string WriteTenantCsv(int t) {
  const std::string path =
      "/tmp/spot_multi_tenant_" + std::string(TenantName(t)) + ".csv";
  std::ofstream out(path);
  out << "temperature,pressure,vibration,flow\n";
  spot::Rng rng(4000 + static_cast<std::uint64_t>(t));
  const double temp0 = 55.0 + 10.0 * t;
  const double pressure0 = 3.0 + 0.8 * t;
  for (std::size_t i = 0; i < kRows; ++i) {
    double temp = temp0 + 2.0 * rng.NextGaussian();
    double pressure = pressure0 + 0.2 * rng.NextGaussian();
    double vibration = 0.3 + 0.05 * rng.NextGaussian();
    double flow = 12.0 + 0.5 * rng.NextGaussian();
    if (i > kTraining && i % (89 + 7 * t) == 0) {
      // The stuck channel differs per tenant.
      if (t == 0) pressure = pressure0 + 3.0;
      if (t == 1) vibration = 1.4;
      if (t == 2) flow = 4.0;
    }
    out << temp << "," << pressure << "," << vibration << "," << flow
        << "\n";
  }
  return path;
}

spot::SpotConfig TenantConfig() {
  spot::SpotConfig config;
  config.partition_margin = 1.0;
  config.fs_max_dimension = 2;
  config.unsupervised.moga.max_dimension = 2;
  config.supervised.moga.max_dimension = 2;
  config.evolution.max_dimension = 2;
  config.seed = 1;
  return config;
}

std::vector<spot::DataPoint> Chunk(
    const std::vector<std::vector<double>>& rows, std::size_t begin,
    std::size_t end) {
  std::vector<spot::DataPoint> out;
  for (std::size_t i = begin; i < end && i < rows.size(); ++i) {
    spot::DataPoint p;
    p.id = i;
    p.values = rows[i];
    out.push_back(std::move(p));
  }
  return out;
}

bool SameVerdicts(const std::vector<spot::SpotResult>& a,
                  const std::vector<spot::SpotResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].is_outlier != b[i].is_outlier || a[i].score != b[i].score ||
        a[i].findings.size() != b[i].findings.size()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  const std::size_t num_threads =
      spot::examples::ThreadsFlag(argc, argv, &positional);
  std::string dir = spot::examples::TakeStringFlag(
      &positional, "checkpoint-dir", "/tmp/spot_multi_tenant_ckpt");
  const std::size_t max_resident =
      spot::examples::TakeSizeFlag(&positional, "max-resident", 2);
  ::mkdir(dir.c_str(), 0755);

  spot::SpotServiceConfig scfg;
  scfg.max_resident = max_resident;
  scfg.num_shards = num_threads;
  scfg.checkpoint_dir = dir;

  // Load the three tenant streams.
  std::vector<std::vector<std::vector<double>>> rows(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    const std::string path = WriteTenantCsv(t);
    spot::stream::CsvParseResult parsed = spot::stream::LoadCsvFile(path);
    rows[static_cast<std::size_t>(t)] = std::move(parsed.rows);
    std::printf("%s: %s (%zu rows)\n", TenantName(t), path.c_str(),
                rows[static_cast<std::size_t>(t)].size());
  }

  // Reference detectors: one per tenant, never evicted or restored.
  std::vector<std::unique_ptr<spot::SpotDetector>> reference;
  for (int t = 0; t < kTenants; ++t) {
    reference.push_back(
        std::make_unique<spot::SpotDetector>(TenantConfig()));
    const auto& r = rows[static_cast<std::size_t>(t)];
    const std::vector<std::vector<double>> training(
        r.begin(), r.begin() + kTraining);
    if (!reference.back()->Learn(training)) {
      std::fprintf(stderr, "reference learning failed for %s\n",
                   TenantName(t));
      return 1;
    }
  }

  std::printf("\nservice: max_resident=%zu shards=%zu checkpoints in %s\n",
              max_resident, num_threads, dir.c_str());
  bool all_identical = true;
  std::vector<std::size_t> alarms(kTenants, 0);
  const std::size_t kKillAt = (kRows - kTraining) / kBatch / 2;

  auto service = std::make_unique<spot::SpotService>(scfg);
  for (int t = 0; t < kTenants; ++t) {
    const auto& r = rows[static_cast<std::size_t>(t)];
    const std::vector<std::vector<double>> training(
        r.begin(), r.begin() + kTraining);
    if (!service->CreateSession(TenantName(t), TenantConfig(), training)) {
      std::fprintf(stderr, "CreateSession(%s) failed\n", TenantName(t));
      return 1;
    }
  }

  // Round-robin ingest across the tenants; with max_resident < 3 every
  // round forces LRU eviction + transparent reload.
  for (std::size_t b = 0; b * kBatch + kTraining < kRows; ++b) {
    if (b == kKillAt) {
      // ---- The kill: checkpoint everything, destroy the service. ----
      if (!service->CheckpointAll()) {
        std::fprintf(stderr, "CheckpointAll failed\n");
        return 1;
      }
      service.reset();
      std::printf("\n-- service killed after %zu batches/tenant; "
                  "restoring from %s --\n\n",
                  b, dir.c_str());
      service = std::make_unique<spot::SpotService>(scfg);
      for (int t = 0; t < kTenants; ++t) {
        if (!service->OpenSession(TenantName(t))) {
          std::fprintf(stderr, "OpenSession(%s) failed\n", TenantName(t));
          return 1;
        }
      }
    }
    const std::size_t begin = kTraining + b * kBatch;
    const std::size_t end = begin + kBatch;
    for (int t = 0; t < kTenants; ++t) {
      const auto batch =
          Chunk(rows[static_cast<std::size_t>(t)], begin, end);
      if (batch.empty()) continue;
      const spot::IngestResult got = service->Ingest(TenantName(t), batch);
      if (!got.ok) {
        std::fprintf(stderr, "Ingest(%s) failed\n", TenantName(t));
        return 1;
      }
      const auto expected =
          reference[static_cast<std::size_t>(t)]->ProcessBatch(batch);
      if (!SameVerdicts(expected, got.verdicts)) all_identical = false;
      for (const auto& v : got.verdicts) {
        if (v.is_outlier) ++alarms[static_cast<std::size_t>(t)];
      }
    }
  }

  std::printf("session       resident  points    alarms  evicted reloaded\n");
  for (int t = 0; t < kTenants; ++t) {
    spot::SessionMetrics m;
    if (!service->GetMetrics(TenantName(t), &m)) continue;
    std::printf("%-13s %-9s %-9llu %-7zu %-7llu %llu\n", TenantName(t),
                m.resident ? "yes" : "no",
                static_cast<unsigned long long>(m.stats.points_processed),
                alarms[static_cast<std::size_t>(t)],
                static_cast<unsigned long long>(m.evictions),
                static_cast<unsigned long long>(m.reloads));
  }
  const spot::ServiceMetrics total = service->TotalMetrics();
  std::printf("\nglobal: %zu sessions (%zu resident), %llu points, "
              "%llu outliers, %llu evictions, %llu reloads, %llu "
              "checkpoints\n",
              total.sessions, total.resident_sessions,
              static_cast<unsigned long long>(total.points_processed),
              static_cast<unsigned long long>(total.outliers_detected),
              static_cast<unsigned long long>(total.evictions),
              static_cast<unsigned long long>(total.reloads),
              static_cast<unsigned long long>(total.checkpoints_written));

  std::printf("\nBIT-IDENTICAL RESUME: %s\n", all_identical ? "OK" : "FAIL");
  return all_identical ? 0 : 1;
}
