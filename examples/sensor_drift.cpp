// Sensor-network monitoring under concept drift: a fleet of sensors whose
// normal operating regime shifts abruptly (e.g. season change, firmware
// rollout). Demonstrates SPOT's adaptation machinery — decaying summaries,
// Page-Hinkley drift detection with CS relearning, and periodic CS
// self-evolution — keeping the detector useful after each regime change.
//
// Build & run:  ./build/examples/sensor_drift [--threads N]

#include <cstdio>

#include "core/detector.h"
#include "eval/metrics.h"
#include "examples/example_flags.h"
#include "stream/drift.h"

int main(int argc, char** argv) {
  // A 14-attribute sensor stream whose concept is replaced every 6000
  // readings; 1.5% of readings are faulty sensors (projected outliers).
  spot::stream::DriftConfig stream_config;
  stream_config.base.dimension = 14;
  stream_config.base.outlier_probability = 0.015;
  stream_config.base.seed = 21;
  stream_config.kind = spot::stream::DriftKind::kAbrupt;
  stream_config.period = 6000;
  spot::stream::DriftingStream sensors(stream_config);

  spot::SpotConfig config;
  config.domain_lo = 0.0;
  config.domain_hi = 1.0;
  config.evolution_period = 1500;  // CS self-evolution cadence
  config.drift_detection = true;   // Page-Hinkley on the outlier rate
  config.relearn_on_drift = true;  // rebuild CS from the reservoir
  config.drift_lambda = 8.0;
  config.num_shards = spot::examples::ThreadsFlag(argc, argv);
  config.seed = 22;

  spot::SpotDetector detector(config);
  if (!detector.Learn(spot::ValuesOf(spot::Take(sensors, 1500)))) {
    std::fprintf(stderr, "learning failed\n");
    return 1;
  }

  std::printf("segment |   F1   | drift alarms | evolution rounds\n");
  std::printf("--------+--------+--------------+-----------------\n");

  const int kSegment = 3000;
  const int kSegments = 8;
  std::uint64_t drifts_before = 0;
  std::uint64_t evolutions_before = 0;
  for (int seg = 1; seg <= kSegments; ++seg) {
    spot::eval::Confusion confusion;
    // One ProcessBatch call per segment: readings arrive as a block and the
    // batch path bins each one once for all tracked subspaces.
    const auto readings =
        spot::Take(sensors, static_cast<std::size_t>(kSegment));
    std::vector<spot::DataPoint> points;
    points.reserve(readings.size());
    for (const auto& reading : readings) points.push_back(reading.point);
    const std::vector<spot::SpotResult> verdicts =
        detector.ProcessBatch(points);
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      confusion.Add(verdicts[i].is_outlier, readings[i].is_outlier);
    }
    const spot::SpotStats& stats = detector.stats();
    std::printf("   %2d   | %.3f  | %12llu | %16llu\n", seg, confusion.F1(),
                static_cast<unsigned long long>(stats.drifts_detected -
                                                drifts_before),
                static_cast<unsigned long long>(stats.evolution_rounds -
                                                evolutions_before));
    drifts_before = stats.drifts_detected;
    evolutions_before = stats.evolution_rounds;
  }

  std::printf(
      "\nconcept switches in stream: %llu, drift alarms raised: %llu\n",
      static_cast<unsigned long long>(sensors.concept_switches()),
      static_cast<unsigned long long>(detector.stats().drifts_detected));
  std::printf(
      "(F1 dips in the segment containing a switch, then recovers as the\n"
      " decayed summaries refill and CS is relearned from the reservoir)\n");
  return 0;
}
