// Supervised learning: incorporating expert knowledge into the SST.
//
// A fraud-screening scenario: domain experts hand SPOT (a) a few labeled
// fraudulent records and (b) the attributes known to matter. The
// supervised learning path runs MOGA on each example to build the
// Outlier-driven SST Subspaces (OS), restricted to the relevant
// attributes — then example-based detection catches new fraud that is
// "similar to these outlier examples" (paper, Section II-C1).
//
// Build & run:  ./build/examples/supervised_outliers [--threads N]

#include <cstdio>
#include <utility>
#include <vector>

#include "core/detector.h"
#include "examples/example_flags.h"
#include "stream/synthetic.h"

int main(int argc, char** argv) {
  const int kDims = 16;

  // Normal transaction traffic.
  spot::stream::SyntheticConfig stream_config;
  stream_config.dimension = kDims;
  stream_config.outlier_probability = 0.0;
  stream_config.concept_seed = 31;
  stream_config.seed = 32;
  spot::stream::GaussianStream training_stream(stream_config);
  const auto training = spot::ValuesOf(spot::Take(training_stream, 1500));

  // Expert knowledge: fraud manifests in attributes {3, 7, 11} (say:
  // amount, merchant-risk, velocity). Provide three labeled examples that
  // are extreme in some of those attributes.
  spot::DomainKnowledge knowledge;
  knowledge.relevant_attributes = {3, 7, 11};
  for (int k = 0; k < 3; ++k) {
    std::vector<double> example = training[static_cast<std::size_t>(k)];
    example[3] = 0.98;             // all three: extreme amount
    if (k % 2 == 0) example[7] = 0.02;   // some: extreme merchant risk
    if (k == 2) example[11] = 0.97;      // one: extreme velocity
    knowledge.outlier_examples.push_back(std::move(example));
  }

  spot::SpotConfig config;
  config.domain_lo = 0.0;
  config.domain_hi = 1.0;
  config.fs_max_dimension = 1;  // lean FS: OS carries the expert signal
  config.num_shards = spot::examples::ThreadsFlag(argc, argv);
  config.seed = 33;

  spot::SpotDetector detector(config);
  if (!detector.Learn(training, &knowledge)) {
    std::fprintf(stderr, "learning failed\n");
    return 1;
  }

  std::printf("OS learned from expert examples:\n");
  for (const auto& scored : detector.sst().outlier_driven().Ranked()) {
    std::printf("  %s (sparsity score %.3f)\n",
                scored.subspace.ToString().c_str(), scored.score);
  }

  // New fraud attempts similar to the examples, plus normal traffic.
  stream_config.seed = 34;
  spot::stream::GaussianStream live(stream_config);
  int fraud_caught = 0;
  const int kFraudTrials = 25;
  int normal_flagged = 0;
  const int kNormalTrials = 2000;

  // Interleave fraud among normal traffic (1 in 150). Note: identical fraud
  // repeated at a high rate would accumulate decayed mass in its own cells
  // and start to self-mask — recurrence is the limit of any density-based
  // detector.
  //
  // The interleaved stream is materialized up front and fed through the
  // batch API; each point's role is remembered so the verdicts can be
  // scored afterwards (verdicts are identical to per-point Process calls).
  enum class Role { kFraud, kNormalScored, kBackground };
  std::vector<std::vector<double>> traffic;
  std::vector<Role> roles;
  int fraud_sent = 0;
  for (int i = 0; i < kNormalTrials + kFraudTrials * 150; ++i) {
    const auto p = live.Next();
    if (i % 150 == 149 && fraud_sent < kFraudTrials) {
      std::vector<double> fraud = p->point.values;
      fraud[3] = 0.97;  // same fraud pattern, new transactions
      if (fraud_sent % 2 == 0) fraud[7] = 0.03;
      ++fraud_sent;
      traffic.push_back(std::move(fraud));
      roles.push_back(Role::kFraud);
    } else {
      traffic.push_back(p->point.values);
      roles.push_back(i < kNormalTrials ? Role::kNormalScored
                                        : Role::kBackground);
    }
  }
  const std::vector<spot::SpotResult> verdicts =
      detector.ProcessBatch(traffic);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    if (!verdicts[i].is_outlier) continue;
    if (roles[i] == Role::kFraud) ++fraud_caught;
    if (roles[i] == Role::kNormalScored) ++normal_flagged;
  }

  std::printf("\nfraud-like transactions caught: %d/%d\n", fraud_caught,
              kFraudTrials);
  std::printf("normal transactions flagged:    %d/%d (%.2f%%)\n",
              normal_flagged, kNormalTrials,
              100.0 * normal_flagged / kNormalTrials);
  return 0;
}
