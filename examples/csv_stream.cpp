// CSV workflow: run SPOT over any numeric CSV export.
//
//   ./build/examples/csv_stream [file.csv [training_rows]] [--threads N]
//                               [--checkpoint-dir DIR]
//
// The first `training_rows` rows (default: first quarter) form the learning
// batch; the remainder is streamed through the detector and alarms are
// printed with their outlying attribute names (from the CSV header when
// present). Without arguments a small demo CSV is generated in /tmp so the
// binary is runnable out of the box.
//
// With --checkpoint-dir the detector's full state is saved to
// DIR/csv_stream.ckpt after the run, and a subsequent invocation restores
// it and continues where the previous one stopped (skipping the rows it
// already processed) — verdicts are bit-identical to one uninterrupted
// run, and re-learning is skipped entirely.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/detector.h"
#include "examples/example_flags.h"
#include "stream/csv.h"

namespace {

// Writes a small demo CSV: three correlated sensor channels plus a few
// rows where only `pressure` misbehaves (a projected outlier).
std::string WriteDemoCsv() {
  const std::string path = "/tmp/spot_demo.csv";
  std::ofstream out(path);
  out << "temperature,pressure,vibration,flow\n";
  spot::Rng rng(2025);
  for (int i = 0; i < 1600; ++i) {
    const double temp = 60.0 + 2.0 * rng.NextGaussian();
    const double pressure = (i > 1200 && i % 97 == 0)
                                ? 9.5  // stuck sensor: projected outlier
                                : 4.0 + 0.2 * rng.NextGaussian();
    const double vibration = 0.3 + 0.05 * rng.NextGaussian();
    const double flow = 12.0 + 0.5 * rng.NextGaussian();
    out << temp << "," << pressure << "," << vibration << "," << flow
        << "\n";
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  // Positional arguments are [file.csv [training_rows]].
  std::vector<std::string> positional;
  const std::size_t num_threads =
      spot::examples::ThreadsFlag(argc, argv, &positional);
  const std::string checkpoint_dir =
      spot::examples::TakeStringFlag(&positional, "checkpoint-dir");

  const std::string path = !positional.empty() ? positional[0]
                                               : WriteDemoCsv();
  // Checkpoints are keyed on the CSV's basename so runs over different
  // files in the same directory never restore each other's state.
  std::string checkpoint_path;
  if (!checkpoint_dir.empty()) {
    std::string stem = path.substr(path.find_last_of('/') + 1);
    for (char& c : stem) {
      const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                        c == '_';
      if (!safe) c = '_';
    }
    checkpoint_path = checkpoint_dir + "/csv_stream-" + stem + ".ckpt";
  }
  spot::stream::CsvParseResult parsed = spot::stream::LoadCsvFile(path);
  if (parsed.rows.empty()) {
    std::fprintf(stderr, "no numeric rows in %s\n", path.c_str());
    return 1;
  }
  std::printf("%s: %zu rows x %zu columns (%zu lines skipped)\n",
              path.c_str(), parsed.rows.size(), parsed.rows.front().size(),
              parsed.skipped_lines);

  const std::size_t training_rows =
      positional.size() > 1
          ? static_cast<std::size_t>(
                std::strtoull(positional[1].c_str(), nullptr, 10))
          : parsed.rows.size() / 4;
  const std::vector<std::string> columns = parsed.column_names;
  auto column_name = [&](int index) {
    return index < static_cast<int>(columns.size())
               ? columns[static_cast<std::size_t>(index)]
               : "col" + std::to_string(index);
  };

  // Train on the leading rows; the partition is fitted to them (no explicit
  // domain is known for arbitrary CSV data, so give it generous margin).
  std::vector<std::vector<double>> training(
      parsed.rows.begin(),
      parsed.rows.begin() + static_cast<long>(
                                std::min(training_rows, parsed.rows.size())));
  spot::SpotConfig config;
  // Generous margin: for arbitrary CSV data no explicit domain is known,
  // and out-of-range stream values clamp into the boundary cell — with too
  // little headroom they land right next to the training data's edge cells
  // and read as cluster fringe instead of outliers.
  config.partition_margin = 1.0;
  config.fs_max_dimension = 2;
  // For narrow tables, deep subspaces degenerate toward the full space
  // (where every cell is sparse); keep learned subspaces shallow too.
  config.unsupervised.moga.max_dimension = 2;
  config.supervised.moga.max_dimension = 2;
  config.evolution.max_dimension = 2;
  config.num_shards = num_threads;
  config.seed = 1;
  spot::SpotDetector detector(config);
  std::size_t resume_at = training.size();
  if (!checkpoint_path.empty() &&
      spot::LoadCheckpointFile(&detector, checkpoint_path)) {
    // Restored mid-stream: skip the rows the previous run already
    // consumed. The reservoir's seen-counter is that number exactly —
    // every training row and every processed point passed through it — so
    // the resume point does not depend on this invocation's training
    // split (the CSV may have grown, or training_rows may differ). The
    // restored run's verdicts are bit-identical to an uninterrupted one,
    // and the expensive learning stage is skipped.
    detector.set_num_shards(num_threads);
    resume_at = static_cast<std::size_t>(detector.reservoir().seen());
    if (resume_at > parsed.rows.size()) {
      std::fprintf(stderr,
                   "checkpoint %s has consumed %zu rows but %s only has "
                   "%zu — stale or mismatched checkpoint; delete it to "
                   "start over\n",
                   checkpoint_path.c_str(), resume_at, path.c_str(),
                   parsed.rows.size());
      return 1;
    }
    std::printf("restored checkpoint %s: %llu rows already processed, "
                "SST has %zu subspaces\n\n",
                checkpoint_path.c_str(),
                static_cast<unsigned long long>(
                    detector.stats().points_processed),
                detector.sst().TotalSize());
  } else {
    if (!detector.Learn(training)) {
      std::fprintf(stderr, "learning failed\n");
      return 1;
    }
    std::printf("learned SST with %zu subspaces from %zu training rows\n\n",
                detector.sst().TotalSize(), training.size());
  }

  // Stream the remaining rows through the batch API: rows are already
  // materialized, so feed them in chunks and read one verdict per row.
  std::size_t alarms = 0;
  const std::size_t kBatch = 1024;
  for (std::size_t start = resume_at; start < parsed.rows.size();
       start += kBatch) {
    const std::size_t end = std::min(start + kBatch, parsed.rows.size());
    const std::vector<std::vector<double>> chunk(
        parsed.rows.begin() + static_cast<long>(start),
        parsed.rows.begin() + static_cast<long>(end));
    const std::vector<spot::SpotResult> verdicts =
        detector.ProcessBatch(chunk);
    for (std::size_t j = 0; j < verdicts.size(); ++j) {
      const spot::SpotResult& r = verdicts[j];
      if (!r.is_outlier) continue;
      ++alarms;
      if (alarms <= 20) {
        std::printf("row %6zu outlier (score %.2f):", start + j, r.score);
        for (const auto& f : r.findings) {
          std::printf(" {");
          bool first = true;
          for (int d : f.subspace.Indices()) {
            std::printf("%s%s", first ? "" : ",", column_name(d).c_str());
            first = false;
          }
          std::printf("}");
        }
        std::printf("\n");
      }
    }
  }
  std::printf("\n%zu alarms over %zu streamed rows\n", alarms,
              parsed.rows.size() - resume_at);
  if (!checkpoint_path.empty()) {
    if (spot::SaveCheckpointFile(detector, checkpoint_path)) {
      std::printf("checkpoint saved to %s\n", checkpoint_path.c_str());
    } else {
      std::fprintf(stderr, "checkpoint save to %s failed\n",
                   checkpoint_path.c_str());
      return 1;
    }
  }
  return 0;
}
