#ifndef SPOT_EXAMPLES_EXAMPLE_FLAGS_H_
#define SPOT_EXAMPLES_EXAMPLE_FLAGS_H_

// Shared command-line handling for the example programs (mirrors
// bench/bench_util.h: one definition so the examples cannot drift apart).

#include <cstddef>
#include <cstdlib>
#include <string>
#include <vector>

namespace spot {
namespace examples {

/// Parses the `--threads N` flag every example accepts: N shard workers
/// per ProcessBatch (SpotConfig::num_shards). Verdicts are bit-identical
/// at every thread count — it is purely a throughput knob. Returns 1 when
/// the flag is absent or malformed. When `positional` is non-null it
/// receives the remaining (non-flag) arguments in order.
inline std::size_t ThreadsFlag(int argc, char** argv,
                               std::vector<std::string>* positional =
                                   nullptr) {
  std::size_t num_threads = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--threads" && i + 1 < argc) {
      value = argv[++i];
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = arg.substr(sizeof("--threads=") - 1);
    } else {
      if (positional != nullptr) positional->push_back(arg);
      continue;
    }
    const std::size_t parsed = static_cast<std::size_t>(
        std::strtoull(value.c_str(), nullptr, 10));
    if (parsed > 0) num_threads = parsed;
  }
  return num_threads;
}

}  // namespace examples
}  // namespace spot

#endif  // SPOT_EXAMPLES_EXAMPLE_FLAGS_H_
