#ifndef SPOT_EXAMPLES_EXAMPLE_FLAGS_H_
#define SPOT_EXAMPLES_EXAMPLE_FLAGS_H_

// Shared command-line handling for the example programs (mirrors
// bench/bench_util.h: one definition so the examples cannot drift apart).

#include <cstddef>
#include <cstdlib>
#include <string>
#include <vector>

namespace spot {
namespace examples {

/// Parses the `--threads N` flag every example accepts: N shard workers
/// per ProcessBatch (SpotConfig::num_shards). Verdicts are bit-identical
/// at every thread count — it is purely a throughput knob. Returns 1 when
/// the flag is absent or malformed. When `positional` is non-null it
/// receives the remaining (non-flag) arguments in order.
inline std::size_t ThreadsFlag(int argc, char** argv,
                               std::vector<std::string>* positional =
                                   nullptr) {
  std::size_t num_threads = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--threads" && i + 1 < argc) {
      value = argv[++i];
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = arg.substr(sizeof("--threads=") - 1);
    } else {
      if (positional != nullptr) positional->push_back(arg);
      continue;
    }
    const std::size_t parsed = static_cast<std::size_t>(
        std::strtoull(value.c_str(), nullptr, 10));
    if (parsed > 0) num_threads = parsed;
  }
  return num_threads;
}

/// Extracts a `--<name> V` / `--<name>=V` string flag from `args` (the
/// positional list ThreadsFlag collected), removing every occurrence and
/// returning the last value, or `fallback` when absent. Lets examples
/// layer flags without re-scanning argv: ThreadsFlag first, then Take*Flag
/// on the remainder.
inline std::string TakeStringFlag(std::vector<std::string>* args,
                                  const std::string& name,
                                  std::string fallback = "") {
  const std::string prefix = "--" + name + "=";
  std::string value = std::move(fallback);
  for (std::size_t i = 0; i < args->size();) {
    const std::string& arg = (*args)[i];
    if (arg == "--" + name && i + 1 < args->size()) {
      value = (*args)[i + 1];
      args->erase(args->begin() + static_cast<long>(i),
                  args->begin() + static_cast<long>(i) + 2);
    } else if (arg.rfind(prefix, 0) == 0) {
      value = arg.substr(prefix.size());
      args->erase(args->begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }
  return value;
}

/// Presence flag: removes every bare `--<name>` from `args`, returning
/// true when at least one occurrence was found.
inline bool TakeBoolFlag(std::vector<std::string>* args,
                         const std::string& name) {
  const std::string flag = "--" + name;
  bool found = false;
  for (std::size_t i = 0; i < args->size();) {
    if ((*args)[i] == flag) {
      found = true;
      args->erase(args->begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }
  return found;
}

/// TakeStringFlag for non-negative integer flags; malformed or absent
/// values yield `fallback`.
inline std::size_t TakeSizeFlag(std::vector<std::string>* args,
                                const std::string& name,
                                std::size_t fallback) {
  const std::string text = TakeStringFlag(args, name);
  if (text.empty()) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return fallback;
  return static_cast<std::size_t>(parsed);
}

}  // namespace examples
}  // namespace spot

#endif  // SPOT_EXAMPLES_EXAMPLE_FLAGS_H_
