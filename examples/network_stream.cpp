// Serving SPOT over the network (DESIGN.md Section 7): hosts a
// SpotService behind the binary wire protocol on an ephemeral loopback
// port, then streams a synthetic sensor feed through the client library —
// pipelined ingest frames, server-side coalescing into engine-sized
// batches, verdict frames back — and proves the round trip changed
// nothing: every verdict (including the outlying-subspace findings) is
// compared against an in-process detector fed the same points.
//
//   ./build/examples/network_stream [--threads N] [--points N] [--batch N]
//
// The final line "NETWORK VERDICTS MATCH: OK" is the assertion; the exit
// code is non-zero on any mismatch.

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.h"
#include "examples/example_flags.h"
#include "net/protocol.h"
#include "net/spot_client.h"
#include "net/spot_server.h"
#include "service/spot_service.h"
#include "stream/data_point.h"
#include "stream/synthetic.h"

namespace {

spot::SpotConfig SensorConfig() {
  spot::SpotConfig config;
  config.partition_margin = 1.0;
  config.fs_max_dimension = 2;
  config.unsupervised.moga.max_dimension = 2;
  config.supervised.moga.max_dimension = 2;
  config.evolution.max_dimension = 2;
  config.seed = 1;
  return config;
}

std::vector<spot::DataPoint> SensorStream(std::size_t n) {
  spot::stream::SyntheticConfig scfg;
  scfg.dimension = 8;
  scfg.outlier_probability = 0.02;
  scfg.concept_seed = 11;
  scfg.seed = 12;
  spot::stream::GaussianStream gen(scfg);
  std::vector<spot::DataPoint> out;
  for (const spot::LabeledPoint& p : spot::Take(gen, n)) {
    out.push_back(p.point);
  }
  return out;
}

std::vector<std::vector<double>> SensorTraining() {
  spot::stream::SyntheticConfig scfg;
  scfg.dimension = 8;
  scfg.outlier_probability = 0.0;
  scfg.concept_seed = 11;
  scfg.seed = 13;
  spot::stream::GaussianStream gen(scfg);
  return spot::ValuesOf(spot::Take(gen, 500));
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  const std::size_t num_threads =
      spot::examples::ThreadsFlag(argc, argv, &positional);
  const std::size_t num_points =
      spot::examples::TakeSizeFlag(&positional, "points", 2000);
  const std::size_t batch =
      spot::examples::TakeSizeFlag(&positional, "batch", 64);

  // The serving side: a single-reactor server owning its service shard.
  spot::SpotServiceConfig scfg;
  scfg.num_shards = num_threads;
  spot::net::SpotServerConfig ncfg;
  ncfg.port = 0;  // ephemeral
  spot::net::SpotServer server(scfg, ncfg);
  if (!server.Start()) {
    std::fprintf(stderr, "cannot start server\n");
    return 1;
  }
  // Stop + join on every exit path: returning with the loop thread still
  // joinable would std::terminate and bury the error message.
  struct LoopGuard {
    spot::net::SpotServer& server;
    std::thread thread;
    ~LoopGuard() {
      server.Stop();
      if (thread.joinable()) thread.join();
    }
  } loop{server, std::thread([&server] { server.Run(); })};
  std::printf("server on 127.0.0.1:%u (shards=%zu)\n", server.port(),
              num_threads);

  // The client side: create a session, pipeline the stream, flush.
  spot::net::SpotClient client;
  if (!client.Connect("127.0.0.1", server.port())) {
    std::fprintf(stderr, "connect: %s\n", client.last_error().c_str());
    return 1;
  }
  const auto training = SensorTraining();
  const auto stream = SensorStream(num_points);
  if (!client.CreateSession("sensors", SensorConfig(), training)) {
    std::fprintf(stderr, "create: %s\n", client.last_error().c_str());
    return 1;
  }

  // In-process reference detector: same config, same training.
  spot::SpotDetector reference(SensorConfig());
  if (!reference.Learn(training)) {
    std::fprintf(stderr, "reference learning failed\n");
    return 1;
  }

  std::vector<spot::SpotResult> wire_verdicts;
  std::vector<spot::SpotResult> local_verdicts;
  std::size_t alarms = 0;
  bool fed = false;
  for (std::size_t i = 0; i < stream.size(); i += batch) {
    const std::size_t n = std::min(batch, stream.size() - i);
    const std::vector<spot::DataPoint> chunk(
        stream.begin() + static_cast<long>(i),
        stream.begin() + static_cast<long>(i + n));
    if (!client.Ingest("sensors", chunk)) {
      std::fprintf(stderr, "ingest: %s\n", client.last_error().c_str());
      return 1;
    }
    const auto expected = reference.ProcessBatch(chunk);
    local_verdicts.insert(local_verdicts.end(), expected.begin(),
                          expected.end());

    // Halfway through: the wire-v3 query/feedback plane (DESIGN.md
    // Section 11). Ask the server for the worst outliers of the stream so
    // far — the query's batch-boundary barrier flushes the pipelined
    // ingest first — and label them back as a supervised feedback round.
    // Both calls return the uniform RpcStatus shape: branch on the
    // machine-readable code, never on message text. The round is mirrored
    // on the reference detector so the final comparison still holds.
    if (!fed && i + n >= stream.size() / 2) {
      fed = true;
      std::vector<spot::TopKEntry> top;
      const spot::net::RpcStatus query = client.TopK("sensors", 5, &top);
      if (!query.ok) {
        std::fprintf(stderr, "top-k [%s]: %s\n",
                     spot::net::ErrorCodeName(query.code),
                     query.cause.c_str());
        return 1;
      }
      std::printf("top-%zu outliers after %zu points:\n", top.size(), i + n);
      for (const spot::TopKEntry& e : top) {
        std::printf("  point %llu: decayed score %.4f, %zu outlying "
                    "subspace(s)\n",
                    static_cast<unsigned long long>(e.point_id),
                    e.decayed_score, e.findings.size());
      }
      std::vector<std::uint64_t> ids;
      for (const spot::TopKEntry& e : top) ids.push_back(e.point_id);
      if (!ids.empty()) {
        const spot::net::RpcStatus fb = client.Feedback("sensors", ids, {});
        std::string ref_error;
        const bool ref_ok = reference.ApplyFeedback(ids, {}, &ref_error);
        if (fb.ok != ref_ok) {
          std::fprintf(stderr, "feedback diverged: wire %s, local %s\n",
                       fb.ok ? "ok" : fb.cause.c_str(),
                       ref_ok ? "ok" : ref_error.c_str());
          return 1;
        }
        std::printf("feedback round: %s\n",
                    fb.ok ? "applied (supervised SST growth)"
                          : fb.cause.c_str());
      }
    }
  }
  if (!client.Flush("sensors", &wire_verdicts)) {
    std::fprintf(stderr, "flush: %s\n", client.last_error().c_str());
    return 1;
  }
  for (const spot::SpotResult& v : wire_verdicts) {
    if (v.is_outlier) ++alarms;
  }

  // Transport counters from the service's metrics registry.
  spot::SessionMetrics metrics;
  if (server.service().GetMetrics("sensors", &metrics)) {
    std::printf("session 'sensors': %llu points, %zu alarms | %llu frames, "
                "%llu/%llu bytes in/out, queue peak %llu, %llu stalls\n",
                static_cast<unsigned long long>(
                    metrics.stats.points_processed),
                alarms,
                static_cast<unsigned long long>(
                    metrics.stats.frames_received),
                static_cast<unsigned long long>(metrics.stats.bytes_in),
                static_cast<unsigned long long>(metrics.stats.bytes_out),
                static_cast<unsigned long long>(
                    metrics.stats.net_queue_peak),
                static_cast<unsigned long long>(
                    metrics.stats.backpressure_stalls));
  }

  client.CloseSession("sensors", /*persist=*/false);
  client.Disconnect();

  const bool match =
      wire_verdicts.size() == local_verdicts.size() &&
      spot::net::VerdictBytes(wire_verdicts) ==
          spot::net::VerdictBytes(local_verdicts);
  std::printf("\nNETWORK VERDICTS MATCH: %s\n", match ? "OK" : "FAIL");
  return match ? 0 : 1;
}
