// Network-intrusion monitoring: SPOT on the simulated KDD-Cup'99-style
// connection stream. Attacks (DoS / probe / R2L / U2R) are projected
// outliers — each manifests in only 2-4 of the 38 connection features — so
// a full-space detector cannot see them while SPOT reports both the alarm
// and the feature subspace that triggered it, which is what an analyst
// needs for triage.
//
// Build & run:  ./build/examples/network_intrusion [--threads N]

#include <algorithm>
#include <array>
#include <cstdio>

#include "core/detector.h"
#include "examples/example_flags.h"
#include "stream/kdd_sim.h"

int main(int argc, char** argv) {
  using spot::stream::AttackCategory;
  using spot::stream::KddSimulator;

  // Train on attack-free traffic.
  spot::stream::KddConfig train_config;
  train_config.attack_fraction = 0.0;
  train_config.seed = 11;
  KddSimulator training_stream(train_config);

  spot::SpotConfig config;
  config.fs_max_dimension = 1;  // 38 features: singletons + learned CS
  config.fs_cap = 256;
  config.domain_lo = 0.0;
  config.domain_hi = 1.0;
  config.os_update_every = 8;  // let OS grow from detected attacks
  config.num_shards = spot::examples::ThreadsFlag(argc, argv);
  config.seed = 12;

  spot::SpotDetector detector(config);
  if (!detector.Learn(spot::ValuesOf(spot::Take(training_stream, 2000)))) {
    std::fprintf(stderr, "learning failed\n");
    return 1;
  }

  // Monitor live traffic with rare attacks.
  spot::stream::KddConfig live_config;
  live_config.attack_fraction = 0.01;
  live_config.seed = 13;
  KddSimulator live_stream(live_config);

  std::array<int, 5> attacks_total{};
  std::array<int, 5> attacks_caught{};
  int false_alarms = 0;
  int normal_total = 0;
  int alarms_shown = 0;

  // Connections arrive in blocks (e.g. flushed from a capture buffer);
  // each block goes through one ProcessBatch call.
  const std::size_t kBlock = 512;
  const std::size_t kTotal = 20000;
  for (std::size_t fed = 0; fed < kTotal; fed += kBlock) {
    const auto block =
        spot::Take(live_stream, std::min(kBlock, kTotal - fed));
    std::vector<spot::DataPoint> points;
    points.reserve(block.size());
    for (const auto& conn : block) points.push_back(conn.point);
    const std::vector<spot::SpotResult> verdicts =
        detector.ProcessBatch(points);

    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      const spot::SpotResult& verdict = verdicts[i];
      const auto& conn = block[i];
      const auto category = static_cast<std::size_t>(conn.category);
      if (conn.is_outlier) {
        ++attacks_total[category];
        if (verdict.is_outlier) ++attacks_caught[category];
      } else {
        ++normal_total;
        if (verdict.is_outlier) ++false_alarms;
      }

      if (verdict.is_outlier && conn.is_outlier && alarms_shown < 8) {
        ++alarms_shown;
        std::printf("ALERT conn %-6llu  category=%-5s  features:",
                    static_cast<unsigned long long>(conn.point.id),
                    spot::stream::AttackCategoryName(
                        static_cast<AttackCategory>(conn.category))
                        .c_str());
        // Name the attributes of the first reported outlying subspace.
        if (!verdict.findings.empty()) {
          for (int d : verdict.findings.front().subspace.Indices()) {
            std::printf(" %s", KddSimulator::FeatureName(d).c_str());
          }
        }
        std::printf("\n");
      }
    }
  }

  std::printf("\nDetection summary (20000 connections):\n");
  for (auto c : {AttackCategory::kDos, AttackCategory::kProbe,
                 AttackCategory::kR2l, AttackCategory::kU2r}) {
    const auto i = static_cast<std::size_t>(c);
    std::printf("  %-6s: %3d/%3d detected\n",
                spot::stream::AttackCategoryName(c).c_str(),
                attacks_caught[i], attacks_total[i]);
  }
  std::printf("  false-alarm rate: %.2f%% (%d/%d normal connections)\n",
              100.0 * false_alarms / normal_total, false_alarms,
              normal_total);
  return 0;
}
