// Quickstart: the minimal end-to-end SPOT workflow.
//
//   1. configure the detector,
//   2. learn the SST offline from a training batch,
//   3. process the stream in batches (ProcessBatch amortizes per-point
//      overhead; verdicts are identical to one-at-a-time Process calls),
//   4. read each verdict's outlying subspaces.
//
// Build & run:  ./build/examples/quickstart [--threads N]

#include <cstdio>

#include "core/detector.h"
#include "examples/example_flags.h"
#include "stream/synthetic.h"

int main(int argc, char** argv) {
  // --- 1. Configure ------------------------------------------------------
  spot::SpotConfig config;
  config.omega = 2000;        // sliding-window size (points)
  config.epsilon = 0.01;      // out-of-window residual weight
  config.fs_max_dimension = 2;  // FS: all 1-d and 2-d subspaces
  config.domain_lo = 0.0;     // our data lives in the unit hypercube
  config.domain_hi = 1.0;
  config.num_shards = spot::examples::ThreadsFlag(argc, argv);
  config.seed = 7;

  // --- 2. Learn from a training batch ------------------------------------
  // A 12-dimensional stream: Gaussian clusters plus rare projected
  // outliers, each anomalous in only 1-2 attributes.
  spot::stream::SyntheticConfig stream_config;
  stream_config.dimension = 12;
  stream_config.outlier_probability = 0.0;  // clean training data
  stream_config.concept_seed = 99;
  stream_config.seed = 1;
  spot::stream::GaussianStream training_stream(stream_config);

  const auto training = spot::ValuesOf(spot::Take(training_stream, 1500));
  spot::SpotDetector detector(config);
  if (!detector.Learn(training)) {
    std::fprintf(stderr, "learning failed\n");
    return 1;
  }
  std::printf("Learned SST with %zu subspaces:\n%s\n",
              detector.sst().TotalSize(), detector.sst().Summary().c_str());

  // --- 3. Detect on the live stream ---------------------------------------
  stream_config.outlier_probability = 0.01;  // now with planted outliers
  stream_config.seed = 2;  // same concept, fresh points
  spot::stream::GaussianStream live_stream(stream_config);

  int shown = 0;
  const std::size_t kBatch = 500;  // points per ProcessBatch call
  for (int chunk = 0; chunk < 10; ++chunk) {
    const auto batch = spot::Take(live_stream, kBatch);
    std::vector<spot::DataPoint> points;
    points.reserve(batch.size());
    for (const auto& labeled : batch) points.push_back(labeled.point);
    const std::vector<spot::SpotResult> results =
        detector.ProcessBatch(points);

    // --- 4. Use the verdicts --------------------------------------------
    for (std::size_t i = 0; i < results.size(); ++i) {
      const spot::SpotResult& result = results[i];
      const auto& labeled = batch[i];
      if (!result.is_outlier || shown >= 10) continue;
      ++shown;
      std::printf("point %5llu flagged (score %.2f, truth: %s) in:",
                  static_cast<unsigned long long>(labeled.point.id),
                  result.score,
                  labeled.is_outlier ? "planted outlier" : "regular");
      for (const auto& finding : result.findings) {
        std::printf(" %s", finding.subspace.ToString().c_str());
      }
      if (labeled.is_outlier) {
        std::printf("  [planted subspace %s]",
                    labeled.outlying_subspace.ToString().c_str());
      }
      std::printf("\n");
    }
  }

  const spot::SpotStats& stats = detector.stats();
  std::printf(
      "\nprocessed %llu points, flagged %llu, "
      "%llu self-evolution rounds, %llu OS-growth runs\n",
      static_cast<unsigned long long>(stats.points_processed),
      static_cast<unsigned long long>(stats.outliers_detected),
      static_cast<unsigned long long>(stats.evolution_rounds),
      static_cast<unsigned long long>(stats.os_growth_runs));
  return 0;
}
