// Unit tests of src/common: RNG determinism and distributions, running
// statistics, math helpers.

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/timer.h"

namespace spot {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble(-2.5, 3.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(RngTest, BoundedIntegersCoverRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.NextUint64(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(13);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int v = rng.NextInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.NextGaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRateApproximatesP) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(41);
  const auto sample = rng.SampleIndices(100, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t i : sample) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleIndicesClampsOversizedRequest) {
  Rng rng(43);
  const auto sample = rng.SampleIndices(5, 50);
  EXPECT_EQ(sample.size(), 5u);
}

// ------------------------------------------------------- RunningStats ----

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.Add(x);
  EXPECT_NEAR(s.sample_variance(), 1.0, 1e-12);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-12);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
  Rng rng(47);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextGaussian(3.0, 1.5);
    all.Add(x);
    if (i % 2 == 0) {
      left.Add(x);
    } else {
      right.Add(x);
    }
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsNoop) {
  RunningStats a;
  a.Add(1.0);
  a.Add(2.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  RunningStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(VectorStatsTest, MeanAndStdDev) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(StdDev(v), std::sqrt(1.25), 1e-12);
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(StdDev({}), 0.0);
}

TEST(VectorStatsTest, QuantileInterpolates) {
  std::vector<double> v = {4.0, 1.0, 3.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Median(v), 2.5);
}

TEST(VectorStatsTest, QuantileClampsAndHandlesEmpty) {
  EXPECT_EQ(Quantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Quantile({5.0}, -1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile({5.0}, 2.0), 5.0);
}

// ---------------------------------------------------------- math_util ----

TEST(MathUtilTest, Distances) {
  const std::vector<double> a = {0.0, 0.0, 0.0};
  const std::vector<double> b = {1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 9.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 3.0);
}

TEST(MathUtilTest, DistanceInDimsRestricts) {
  const std::vector<double> a = {0.0, 0.0, 0.0};
  const std::vector<double> b = {1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(SquaredDistanceInDims(a, b, {0}), 1.0);
  EXPECT_DOUBLE_EQ(SquaredDistanceInDims(a, b, {1, 2}), 8.0);
  EXPECT_DOUBLE_EQ(SquaredDistanceInDims(a, b, {}), 0.0);
}

TEST(MathUtilTest, BinomialCoefficients) {
  EXPECT_EQ(BinomialCoefficient(5, 0), 1u);
  EXPECT_EQ(BinomialCoefficient(5, 5), 1u);
  EXPECT_EQ(BinomialCoefficient(5, 2), 10u);
  EXPECT_EQ(BinomialCoefficient(40, 3), 9880u);
  EXPECT_EQ(BinomialCoefficient(5, 6), 0u);
  EXPECT_EQ(BinomialCoefficient(5, -1), 0u);
}

TEST(MathUtilTest, BinomialSaturatesOnOverflow) {
  EXPECT_EQ(BinomialCoefficient(64, 32),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(MathUtilTest, LatticeSizeMatchesHandCount) {
  // C(4,1) + C(4,2) = 4 + 6 = 10.
  EXPECT_EQ(LatticeSize(4, 2), 10u);
  // Full lattice over 4 dims: 2^4 - 1.
  EXPECT_EQ(LatticeSize(4, 4), 15u);
  // max_dim beyond n clamps.
  EXPECT_EQ(LatticeSize(4, 10), 15u);
}

TEST(MathUtilTest, ClampWorks) {
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(Clamp(-1.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(2.0, 0.0, 1.0), 1.0);
}

TEST(MathUtilTest, ApproxEqualScalesWithMagnitude) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-10));
  EXPECT_FALSE(ApproxEqual(1.0, 1.001));
  EXPECT_TRUE(ApproxEqual(1e12, 1e12 + 1.0));
}

TEST(TimerTest, MeasuresNonNegativeElapsed) {
  Timer t;
  double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink += static_cast<double>(i);
  EXPECT_GT(sink, 0.0);  // keep the loop observable
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  t.Reset();
  EXPECT_GE(t.ElapsedMillis(), 0.0);
}

}  // namespace
}  // namespace spot
