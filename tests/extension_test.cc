// Tests of the documented [interp] extensions: fringe suppression, the
// mixed-marginal outlier generator, the recurring-subspace pool, the MOGA
// search archive, and explicit domain bounds.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/detector.h"
#include "grid/projected_grid.h"
#include "moga/moga_search.h"
#include "moga/objectives.h"
#include "stream/synthetic.h"

namespace spot {
namespace {

// ------------------------------------------------- Fringe suppression ----

class FringeFixture : public ::testing::Test {
 protected:
  FringeFixture()
      : part_(2, 5, 0.0, 1.0),
        grid_(Subspace::FromIndices({0, 1}), &part_, DecayModel::None()) {}

  Partition part_;
  ProjectedGrid grid_;
};

TEST_F(FringeFixture, SparseCellNextToHeavyCellIsFringe) {
  // Heavy cell (1,1); probe its axis neighbor (2,1) and diagonal (2,2).
  std::uint64_t t = 0;
  for (int i = 0; i < 100; ++i) grid_.Add({0.3, 0.3}, t++);  // cell (1,1)
  grid_.Add({0.5, 0.3}, t++);                                 // cell (2,1)
  grid_.Add({0.5, 0.5}, t++);                                 // cell (2,2)
  EXPECT_TRUE(grid_.IsClusterFringe({2, 1}, 1.0, 8.0));  // axis-adjacent
  EXPECT_TRUE(grid_.IsClusterFringe({2, 2}, 1.0, 8.0));  // diagonal
}

TEST_F(FringeFixture, IsolatedCellIsNotFringe) {
  std::uint64_t t = 0;
  for (int i = 0; i < 100; ++i) grid_.Add({0.3, 0.3}, t++);  // cell (1,1)
  grid_.Add({0.9, 0.9}, t++);                                 // cell (4,4)
  EXPECT_FALSE(grid_.IsClusterFringe({4, 4}, 1.0, 8.0));
}

TEST_F(FringeFixture, FactorControlsSensitivity) {
  std::uint64_t t = 0;
  for (int i = 0; i < 6; ++i) grid_.Add({0.3, 0.3}, t++);  // cell (1,1): 6
  grid_.Add({0.5, 0.3}, t++);                               // cell (2,1): 1
  EXPECT_TRUE(grid_.IsClusterFringe({2, 1}, 1.0, 4.0));   // 6 >= 4*1
  EXPECT_FALSE(grid_.IsClusterFringe({2, 1}, 1.0, 8.0));  // 6 < 8*1
}

TEST_F(FringeFixture, DomainBoundaryNeighborsAreSkipped) {
  // Cell (0,0): all out-of-range probes must be ignored, not crash.
  grid_.Add({0.05, 0.05}, 0);
  EXPECT_FALSE(grid_.IsClusterFringe({0, 0}, 1.0, 8.0));
}

TEST(FringeHighDimTest, AxisNeighborsOnlyBeyondThreeDims) {
  const Partition part(5, 5, 0.0, 1.0);
  ProjectedGrid grid(Subspace::FromIndices({0, 1, 2, 3}), &part,
                     DecayModel::None());
  std::uint64_t t = 0;
  // Heavy cell at (1,1,1,1); probe the axis neighbor (2,1,1,1) and the
  // diagonal (2,2,2,2) — the latter must NOT be seen in >3-dim subspaces.
  for (int i = 0; i < 100; ++i) grid.Add({0.3, 0.3, 0.3, 0.3, 0.0}, t++);
  EXPECT_TRUE(grid.IsClusterFringe({2, 1, 1, 1}, 1.0, 8.0));
  EXPECT_FALSE(grid.IsClusterFringe({2, 2, 2, 2}, 1.0, 8.0));
}

TEST(FringeDetectorTest, VetoReducesFalsePositivesOnClusterTails) {
  // Same stream, fringe on vs off: the veto must strictly reduce flagged
  // normals while keeping gross outliers.
  auto run = [](double fringe_factor) {
    SpotConfig cfg;
    cfg.fs_max_dimension = 2;
    cfg.fringe_factor = fringe_factor;
    cfg.domain_lo = 0.0;
    cfg.domain_hi = 1.0;
    cfg.evolution_period = 0;
    cfg.os_update_every = 0;
    cfg.drift_detection = false;
    cfg.unsupervised.moga.population_size = 12;
    cfg.unsupervised.moga.generations = 5;
    cfg.seed = 5;
    stream::SyntheticConfig scfg;
    scfg.dimension = 8;
    scfg.outlier_probability = 0.0;
    scfg.concept_seed = 321;
    scfg.seed = 6;
    stream::GaussianStream train(scfg);
    SpotDetector det(cfg);
    det.Learn(ValuesOf(Take(train, 1000)));
    scfg.seed = 7;
    stream::GaussianStream live(scfg);
    int flagged = 0;
    for (int i = 0; i < 1500; ++i) {
      if (det.Process(live.Next()->point.values).is_outlier) ++flagged;
    }
    return flagged;
  };
  const int with_veto = run(8.0);
  const int without_veto = run(0.0);
  EXPECT_LE(with_veto, without_veto);
}

// -------------------------------------------- Mixed-marginal outliers ----

TEST(MixedOutlierTest, AttributesAreMarginallyNormal) {
  stream::SyntheticConfig cfg;
  cfg.dimension = 8;
  cfg.outlier_probability = 0.5;
  cfg.mixed_outlier_fraction = 1.0;
  cfg.min_outlier_subspace_dim = 2;
  cfg.max_outlier_subspace_dim = 2;
  cfg.seed = 41;
  stream::GaussianStream s(cfg);
  int checked = 0;
  for (int i = 0; i < 500 && checked < 30; ++i) {
    const auto p = s.Next();
    if (!p->is_outlier) continue;
    ++checked;
    EXPECT_EQ(p->category, 2);  // mixed-outlier category
    EXPECT_EQ(p->outlying_subspace.Dimension(), 2);
    // Every attribute (including the planted ones) lies within 4 sigma of
    // SOME cluster center — marginally normal.
    for (int d = 0; d < 8; ++d) {
      double min_gap = 1.0;
      for (const auto& center : s.centers()) {
        min_gap = std::min(min_gap,
                           std::abs(p->point.values[static_cast<std::size_t>(
                                        d)] -
                                    center[static_cast<std::size_t>(d)]));
      }
      EXPECT_LE(min_gap, 4.0 * cfg.cluster_stddev)
          << "attribute " << d << " marginally anomalous";
    }
  }
  EXPECT_EQ(checked, 30);
}

TEST(MixedOutlierTest, PlantedValuesComeFromDonorClusters) {
  stream::SyntheticConfig cfg;
  cfg.dimension = 6;
  cfg.outlier_probability = 1.0;
  cfg.mixed_outlier_fraction = 1.0;
  cfg.seed = 43;
  stream::GaussianStream s(cfg);
  for (int i = 0; i < 50; ++i) {
    const auto p = s.Next();
    ASSERT_TRUE(p->is_outlier);
    EXPECT_FALSE(p->outlying_subspace.IsEmpty());
  }
}

// ------------------------------------------------------ Subspace pool ----

TEST(SubspacePoolTest, OutlyingSubspacesRecurWithinPool) {
  stream::SyntheticConfig cfg;
  cfg.dimension = 20;
  cfg.outlier_probability = 0.5;
  cfg.outlier_subspace_pool = 4;
  cfg.min_outlier_subspace_dim = 2;
  cfg.max_outlier_subspace_dim = 3;
  cfg.seed = 47;
  stream::GaussianStream s(cfg);
  std::set<std::uint64_t> distinct;
  int outliers = 0;
  for (int i = 0; i < 2000 && outliers < 200; ++i) {
    const auto p = s.Next();
    if (!p->is_outlier) continue;
    ++outliers;
    distinct.insert(p->outlying_subspace.bits());
  }
  ASSERT_EQ(outliers, 200);
  EXPECT_LE(distinct.size(), 4u);
  EXPECT_GE(distinct.size(), 2u);  // several pool members actually used
}

TEST(SubspacePoolTest, PoolIsPartOfTheConcept) {
  stream::SyntheticConfig cfg;
  cfg.dimension = 20;
  cfg.outlier_probability = 1.0;
  cfg.outlier_subspace_pool = 3;
  cfg.concept_seed = 55;
  auto collect = [&](std::uint64_t seed) {
    cfg.seed = seed;
    stream::GaussianStream s(cfg);
    std::set<std::uint64_t> out;
    for (int i = 0; i < 100; ++i) out.insert(s.Next()->outlying_subspace.bits());
    return out;
  };
  // Different sampling seeds, same concept: identical pools.
  EXPECT_EQ(collect(1), collect(2));
}

TEST(ConceptSeedTest, SharedConceptSharesClusters) {
  stream::SyntheticConfig cfg;
  cfg.dimension = 10;
  cfg.concept_seed = 77;
  cfg.seed = 1;
  stream::GaussianStream a(cfg);
  cfg.seed = 2;
  stream::GaussianStream b(cfg);
  EXPECT_EQ(a.centers(), b.centers());
  // But different point sequences.
  EXPECT_NE(a.Next()->point.values, b.Next()->point.values);
}

// ----------------------------------------------------- Search archive ----

TEST(SearchArchiveTest, AppendEvaluatedExposesMemoTable) {
  Rng rng(61);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 100; ++i) {
    data.push_back({rng.NextDouble(), rng.NextDouble(), rng.NextDouble()});
  }
  const Partition part(3, 5, 0.0, 1.0);
  BatchSparsityObjectives obj(&part, &data);
  obj.Evaluate(Subspace::FromIndices({0}));
  obj.Evaluate(Subspace::FromIndices({1, 2}));
  std::vector<std::pair<Subspace, double>> archive;
  obj.AppendEvaluated(&archive);
  EXPECT_EQ(archive.size(), 2u);
}

TEST(SearchArchiveTest, FindTopSparseRanksOverAllEvaluated) {
  // The returned top-k must be at least as sparse as any k drawn only from
  // the final population — verified by checking it matches the exhaustive
  // best over everything the search evaluated.
  Rng rng(67);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 200; ++i) {
    data.push_back({0.3 + 0.02 * rng.NextGaussian(),
                    0.7 + 0.02 * rng.NextGaussian(), rng.NextDouble(),
                    rng.NextDouble()});
  }
  data.push_back({0.3, 0.7, 0.5, 0.95});
  const Partition part(4, 5, 0.0, 1.0);
  BatchSparsityObjectives obj(&part, &data, {data.size() - 1});
  Nsga2Config cfg;
  cfg.num_dims = 4;
  cfg.max_dimension = 2;
  cfg.population_size = 12;
  cfg.generations = 6;
  cfg.seed = 3;
  MogaSearch search(cfg, &obj);
  const auto top = search.FindTopSparse(5);
  ASSERT_GE(top.size(), 5u);
  // Re-rank the archive by score; the returned set must match its head.
  std::vector<std::pair<Subspace, double>> archive;
  obj.AppendEvaluated(&archive);
  std::sort(archive.begin(), archive.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_DOUBLE_EQ(top[i].score, archive[i].second);
  }
}

// ----------------------------------------------------- Explicit domain ----

TEST(ExplicitDomainTest, OutOfRangeOutlierDetectableWithHeadroom) {
  // With a fitted partition the 0.95 value clamps into a populated cell;
  // with the explicit [0,1] domain it lands in an empty one.
  Rng rng(71);
  std::vector<std::vector<double>> training;
  for (int i = 0; i < 400; ++i) {
    training.push_back({0.35 + 0.02 * rng.NextGaussian(),
                        0.45 + 0.02 * rng.NextGaussian(),
                        0.40 + 0.02 * rng.NextGaussian()});
  }
  SpotConfig cfg;
  cfg.fs_max_dimension = 1;
  cfg.evolution_period = 0;
  cfg.os_update_every = 0;
  cfg.drift_detection = false;
  cfg.unsupervised.moga.population_size = 12;
  cfg.unsupervised.moga.generations = 5;
  cfg.seed = 9;
  cfg.domain_lo = 0.0;
  cfg.domain_hi = 1.0;
  SpotDetector det(cfg);
  ASSERT_TRUE(det.Learn(training));
  EXPECT_DOUBLE_EQ(det.synapses().partition().lo(0), 0.0);
  EXPECT_DOUBLE_EQ(det.synapses().partition().hi(0), 1.0);

  std::vector<double> outlier = training.front();
  outlier[2] = 0.95;
  EXPECT_TRUE(det.Process(outlier).is_outlier);
}

TEST(ExplicitDomainTest, DisabledBoundsFallBackToFitting) {
  std::vector<std::vector<double>> training(
      50, std::vector<double>{5.0, 10.0});
  SpotConfig cfg;
  cfg.domain_lo = 0.0;
  cfg.domain_hi = 0.0;  // disabled
  cfg.fs_max_dimension = 1;
  cfg.evolution_period = 0;
  cfg.drift_detection = false;
  cfg.unsupervised.top_subspaces_per_run = 0;
  SpotDetector det(cfg);
  ASSERT_TRUE(det.Learn(training));
  // Fitted partition covers the data's own range, not [0,1].
  EXPECT_LE(det.synapses().partition().lo(0), 5.0);
  EXPECT_GE(det.synapses().partition().hi(1), 10.0);
}

}  // namespace
}  // namespace spot
