// End-to-end tests of the network ingest layer (src/net/): a real
// SpotServer on a loopback socket, driven by SpotClient and by raw
// sockets. Proves the acceptance criteria of DESIGN.md Sections 7-8:
// server round-trip verdicts (including outlying-subspace findings) are
// byte-identical to in-process SpotService::Ingest on the same stream at
// shards {1, 4} x reactors {1, 2, 4} — under randomized client-side
// chunking and mid-stream flush barriers, in both SO_REUSEPORT and
// accept-and-hand-off modes — and that malformed traffic, cross-reactor
// session claims, and fd exhaustion on one reactor never crash the server
// or disturb other connections.

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/detector.h"
#include "eval/presets.h"
#include "net/protocol.h"
#include "net/spot_client.h"
#include "net/spot_server.h"
#include "service/spot_service.h"
#include "stream/synthetic.h"

namespace spot {
namespace net {
namespace {

std::string MakeCheckpointDir(const char* tag) {
  const std::string dir = testing::TempDir() + "spot_net_" + tag;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

SpotConfig SessionConfig() {
  SpotConfig cfg = eval::FastTestConfig();
  cfg.os_update_every = 8;
  cfg.evolution_period = 300;
  return cfg;
}

std::vector<DataPoint> TenantPoints(int t, int n) {
  stream::SyntheticConfig scfg;
  scfg.dimension = 6;
  scfg.outlier_probability = 0.03;
  scfg.concept_seed = 300 + static_cast<std::uint64_t>(t);
  scfg.seed = 8100 + static_cast<std::uint64_t>(t);
  stream::GaussianStream gen(scfg);
  std::vector<DataPoint> out;
  for (const LabeledPoint& p : Take(gen, static_cast<std::size_t>(n))) {
    out.push_back(p.point);
  }
  return out;
}

std::vector<std::vector<double>> TenantTraining(int t) {
  stream::SyntheticConfig scfg;
  scfg.dimension = 6;
  scfg.outlier_probability = 0.0;
  scfg.concept_seed = 300 + static_cast<std::uint64_t>(t);
  scfg.seed = 8200 + static_cast<std::uint64_t>(t);
  stream::GaussianStream gen(scfg);
  return ValuesOf(Take(gen, 300));
}

/// A SpotServer (owning its per-reactor service shards) running Run() on
/// a thread — reactor 0's loop lives there, further reactors spawn their
/// own threads inside Run().
class TestServer {
 public:
  TestServer(SpotServiceConfig scfg, SpotServerConfig ncfg) {
    server_ = std::make_unique<SpotServer>(scfg, ncfg);
    EXPECT_TRUE(server_->Start());
    thread_ = std::thread([this] { server_->Run(); });
  }

  ~TestServer() { StopAndJoin(); }

  /// Stops every loop and joins; Run() performs the graceful Shutdown()
  /// (drain + per-reactor CheckpointAll) on its way out. Safe to call
  /// twice.
  void StopAndJoin() {
    if (thread_.joinable()) {
      server_->Stop();
      thread_.join();
    }
  }

  std::uint16_t port() const { return server_->port(); }
  SpotService& service(std::size_t i = 0) { return server_->service(i); }
  SpotServer& server() { return *server_; }
  /// Aggregated across reactors; only valid after StopAndJoin() (the
  /// counters are loop-thread state).
  SpotServerStats stats() const { return server_->stats(); }

 private:
  std::unique_ptr<SpotServer> server_;
  std::thread thread_;
};

/// Feeds `points` through the wire in randomized chunks with occasional
/// mid-stream barriers and returns every verdict, in point order.
std::vector<SpotResult> StreamOverWire(SpotClient& client,
                                       const std::string& id,
                                       const std::vector<DataPoint>& points,
                                       std::uint64_t chunk_seed) {
  Rng rng(chunk_seed);
  std::vector<SpotResult> verdicts;
  std::size_t i = 0;
  while (i < points.size()) {
    const std::size_t n = std::min(
        points.size() - i, 1 + static_cast<std::size_t>(rng.NextInt(0, 96)));
    EXPECT_TRUE(client.Ingest(
        id, std::vector<DataPoint>(points.begin() + static_cast<long>(i),
                                   points.begin() + static_cast<long>(i + n))))
        << client.last_error();
    i += n;
    if (rng.NextDouble() < 0.15) {
      EXPECT_TRUE(client.Flush(id, &verdicts)) << client.last_error();
    }
  }
  EXPECT_TRUE(client.Flush(id, &verdicts)) << client.last_error();
  return verdicts;
}

// The headline differential: two sessions streamed over the wire — each
// on its own connection, so a multi-reactor server spreads them across
// loops — through a server running at `shards` x `reactors`, against two
// in-process reference services at shard count 1 — randomized framing,
// randomized barriers. VerdictBytes (raw IEEE-754 bit patterns of scores
// and PCS evidence, subspace masks, flags) must match exactly.
void RunDifferential(std::size_t shards, std::size_t reactors,
                     bool use_reuseport, bool use_epoll) {
  SpotServiceConfig scfg;
  scfg.num_shards = shards;
  SpotServerConfig ncfg;
  ncfg.batch_points = 48;  // force multi-chunk coalescing paths
  ncfg.num_reactors = reactors;
  ncfg.use_reuseport = use_reuseport;
  ncfg.use_epoll = use_epoll;
  TestServer server(scfg, ncfg);

  SpotServiceConfig ref_cfg;  // shards=1: also proves shard invariance
  SpotService reference(ref_cfg);

  std::vector<std::unique_ptr<SpotClient>> clients;
  for (int t = 0; t < 2; ++t) {
    const std::string id = "tenant-" + std::to_string(t);
    clients.push_back(std::make_unique<SpotClient>());
    SpotClient& client = *clients.back();
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
    ASSERT_TRUE(client.CreateSession(id, SessionConfig(), TenantTraining(t)))
        << client.last_error();
    ASSERT_TRUE(
        reference.CreateSession(id, SessionConfig(), TenantTraining(t)));
  }

  for (int t = 0; t < 2; ++t) {
    const std::string id = "tenant-" + std::to_string(t);
    const std::vector<DataPoint> points = TenantPoints(t, 700);
    const std::vector<SpotResult> wire_verdicts = StreamOverWire(
        *clients[static_cast<std::size_t>(t)], id, points,
        42 + static_cast<std::uint64_t>(t));
    const IngestResult ref = reference.Ingest(id, points);
    ASSERT_TRUE(ref.ok);
    ASSERT_EQ(wire_verdicts.size(), points.size());
    EXPECT_EQ(VerdictBytes(wire_verdicts), VerdictBytes(ref.verdicts))
        << "shards=" << shards << " reactors=" << reactors
        << " session=" << id;
  }
  for (auto& client : clients) client->Disconnect();
  server.StopAndJoin();
  EXPECT_GT(server.stats().batches_run, 0u);
  EXPECT_EQ(server.stats().points_ingested, 1400u);
}

TEST(NetDifferentialTest, WireVerdictsByteIdenticalAtOneShard) {
  RunDifferential(/*shards=*/1, /*reactors=*/1, /*use_reuseport=*/true,
                  /*use_epoll=*/true);
}

TEST(NetDifferentialTest, WireVerdictsByteIdenticalAtFourShards) {
  RunDifferential(/*shards=*/4, /*reactors=*/1, /*use_reuseport=*/true,
                  /*use_epoll=*/true);
}

TEST(NetDifferentialTest, PollFallbackMatchesEpoll) {
  RunDifferential(/*shards=*/2, /*reactors=*/1, /*use_reuseport=*/true,
                  /*use_epoll=*/false);
}

TEST(NetDifferentialTest, TwoReactorsByteIdentical) {
  RunDifferential(/*shards=*/1, /*reactors=*/2, /*use_reuseport=*/true,
                  /*use_epoll=*/true);
}

TEST(NetDifferentialTest, FourReactorsFourShardsByteIdentical) {
  RunDifferential(/*shards=*/4, /*reactors=*/4, /*use_reuseport=*/true,
                  /*use_epoll=*/true);
}

TEST(NetDifferentialTest, HandOffAcceptModeByteIdentical) {
  // Single listener on reactor 0 dealing connections round-robin — the
  // fallback when SO_REUSEPORT is unavailable.
  RunDifferential(/*shards=*/1, /*reactors=*/2, /*use_reuseport=*/false,
                  /*use_epoll=*/true);
}

TEST(NetDifferentialTest, MultiReactorPollFallbackByteIdentical) {
  RunDifferential(/*shards=*/2, /*reactors=*/2, /*use_reuseport=*/true,
                  /*use_epoll=*/false);
}

// The profiling differential (DESIGN.md Section 12): the same streams
// through a profiling-on and a profiling-off server must produce
// byte-identical wire verdicts, identical ingest stats, and — after the
// graceful shutdown checkpoint — byte-identical checkpoint files.
// Observation must never perturb detection; the counters only ever read
// the hot path, they are not allowed to touch it.
std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Streams in fixed-size chunks with a Flush barrier after each, so the
/// batch boundaries the service sees are identical run to run. The free-
/// running StreamOverWire coalesces by arrival timing, which legitimately
/// varies the batch split (and with it stats_.batches_processed inside
/// the checkpoint) between two otherwise identical servers — this
/// differential must only ever see profiling-induced differences.
std::vector<SpotResult> StreamDeterministic(SpotClient& client,
                                            const std::string& id,
                                            const std::vector<DataPoint>& points,
                                            std::size_t chunk) {
  std::vector<SpotResult> verdicts;
  for (std::size_t i = 0; i < points.size(); i += chunk) {
    const std::size_t n = std::min(chunk, points.size() - i);
    EXPECT_TRUE(client.Ingest(
        id, std::vector<DataPoint>(points.begin() + static_cast<long>(i),
                                   points.begin() + static_cast<long>(i + n))))
        << client.last_error();
    EXPECT_TRUE(client.Flush(id, &verdicts)) << client.last_error();
  }
  return verdicts;
}

void RunProfilingDifferential(std::size_t shards, std::size_t reactors) {
  std::vector<std::string> verdict_bytes;     // [off, on]
  std::vector<std::string> checkpoint_bytes;  // [off, on] x 2 tenants
  std::vector<SpotServerStats> stats;
  for (const bool profile : {false, true}) {
    const std::string dir = MakeCheckpointDir(
        (std::string("profdiff_") + (profile ? "on" : "off") + "_" +
         std::to_string(shards) + "x" + std::to_string(reactors))
            .c_str());
    SpotServiceConfig scfg;
    scfg.num_shards = shards;
    scfg.checkpoint_dir = dir;
    SpotServerConfig ncfg;
    ncfg.batch_points = 48;
    ncfg.num_reactors = reactors;
    ncfg.profile_counters = profile;
    TestServer server(scfg, ncfg);

    std::vector<std::unique_ptr<SpotClient>> clients;
    for (int t = 0; t < 2; ++t) {
      const std::string id = "tenant-" + std::to_string(t);
      clients.push_back(std::make_unique<SpotClient>());
      ASSERT_TRUE(clients.back()->Connect("127.0.0.1", server.port()));
      ASSERT_TRUE(clients.back()->CreateSession(id, SessionConfig(),
                                                TenantTraining(t)))
          << clients.back()->last_error();
    }
    std::string all_verdicts;
    for (int t = 0; t < 2; ++t) {
      const std::string id = "tenant-" + std::to_string(t);
      const std::vector<SpotResult> verdicts = StreamDeterministic(
          *clients[static_cast<std::size_t>(t)], id, TenantPoints(t, 500),
          /*chunk=*/100);
      all_verdicts += VerdictBytes(verdicts);
    }
    verdict_bytes.push_back(all_verdicts);
    for (auto& client : clients) client->Disconnect();
    server.StopAndJoin();  // graceful: drains + CheckpointAll
    stats.push_back(server.stats());
    for (int t = 0; t < 2; ++t) {
      checkpoint_bytes.push_back(
          FileBytes(dir + "/tenant-" + std::to_string(t) + ".ckpt"));
    }
  }
  ASSERT_EQ(verdict_bytes.size(), 2u);
  EXPECT_EQ(verdict_bytes[0], verdict_bytes[1])
      << "profiling perturbed verdict bytes at shards=" << shards
      << " reactors=" << reactors;
  EXPECT_EQ(stats[0].points_ingested, stats[1].points_ingested);
  EXPECT_EQ(stats[0].batches_run, stats[1].batches_run);
  for (int t = 0; t < 2; ++t) {
    EXPECT_FALSE(checkpoint_bytes[static_cast<std::size_t>(t)].empty());
    EXPECT_EQ(checkpoint_bytes[static_cast<std::size_t>(t)],
              checkpoint_bytes[static_cast<std::size_t>(t) + 2])
        << "profiling perturbed checkpoint bytes for tenant " << t
        << " at shards=" << shards << " reactors=" << reactors;
  }
}

TEST(NetDifferentialTest, ProfilingOnVsOffBitIdenticalOneShardOneReactor) {
  RunProfilingDifferential(/*shards=*/1, /*reactors=*/1);
}

TEST(NetDifferentialTest, ProfilingOnVsOffBitIdenticalFourShardsOneReactor) {
  RunProfilingDifferential(/*shards=*/4, /*reactors=*/1);
}

TEST(NetDifferentialTest, ProfilingOnVsOffBitIdenticalOneShardTwoReactors) {
  RunProfilingDifferential(/*shards=*/1, /*reactors=*/2);
}

TEST(NetDifferentialTest, ProfilingOnVsOffBitIdenticalFourShardsTwoReactors) {
  RunProfilingDifferential(/*shards=*/4, /*reactors=*/2);
}

// ------------------------------------------------------------ robustness --

int RawConnect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

void SendAll(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

/// Blocks until the peer closes (returns true) — any payload received
/// before the EOF is discarded.
bool WaitForClose(int fd) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return true;
    if (n < 0 && errno != EINTR) return false;
  }
}

TEST(NetRobustnessTest, GarbageClosesConnectionServerSurvives) {
  TestServer server(SpotServiceConfig{}, SpotServerConfig{});

  const int raw = RawConnect(server.port());
  SendAll(raw, std::string(1024, 'Z'));  // not a frame at all
  EXPECT_TRUE(WaitForClose(raw));
  ::close(raw);

  // A well-behaved client on a fresh connection still gets full service.
  SpotClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(client.CreateSession("ok", SessionConfig(), TenantTraining(0)))
      << client.last_error();
  std::vector<SpotResult> verdicts;
  ASSERT_TRUE(client.Ingest("ok", TenantPoints(0, 32)));
  ASSERT_TRUE(client.Flush("ok", &verdicts));
  EXPECT_EQ(verdicts.size(), 32u);

  server.StopAndJoin();
  EXPECT_EQ(server.stats().corrupt_frames, 1u);
}

TEST(NetRobustnessTest, CorruptCrcAndOversizedFramesRejected) {
  SpotServerConfig ncfg;
  ncfg.max_payload_bytes = 1 << 16;
  TestServer server(SpotServiceConfig{}, ncfg);

  // CRC corruption inside an otherwise valid frame.
  {
    const int raw = RawConnect(server.port());
    std::string wire = EncodeFrame(MsgType::kFlush, EncodeFlush({""}));
    wire.back() = static_cast<char>(wire.back() ^ 0x01);
    SendAll(raw, wire);
    EXPECT_TRUE(WaitForClose(raw));
    ::close(raw);
  }
  // Header announcing a payload over the server's cap.
  {
    const int raw = RawConnect(server.port());
    WireWriter w;
    w.U32(kFrameMagic);
    w.U8(kWireVersion);
    w.U8(static_cast<std::uint8_t>(MsgType::kIngest));
    w.U16(0);
    w.U32(1u << 20);
    w.U32(0);
    SendAll(raw, w.bytes());
    EXPECT_TRUE(WaitForClose(raw));
    ::close(raw);
  }
  // Truncated frame then EOF: no crash, connection just goes away.
  {
    const int raw = RawConnect(server.port());
    const std::string wire = EncodeFrame(MsgType::kFlush, EncodeFlush({""}));
    SendAll(raw, wire.substr(0, wire.size() - 2));
    ::close(raw);
  }

  server.StopAndJoin();
  EXPECT_EQ(server.stats().corrupt_frames, 2u);
  EXPECT_EQ(server.stats().connections_closed,
            server.stats().connections_accepted);
}

TEST(NetRobustnessTest, IngestToUnknownSessionReportsErrorAndCloses) {
  TestServer server(SpotServiceConfig{}, SpotServerConfig{});
  SpotClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(client.Ingest("ghost", TenantPoints(0, 4)));  // send succeeds
  std::vector<SpotResult> verdicts;
  EXPECT_FALSE(client.Flush("ghost", &verdicts));  // barrier surfaces it
  EXPECT_NE(client.last_error().find("ghost"), std::string::npos)
      << client.last_error();
}

TEST(NetRobustnessTest, InvalidClientInputFailsFastWithoutTouchingWire) {
  TestServer server(SpotServiceConfig{}, SpotServerConfig{});
  SpotClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));

  // A ragged training matrix cannot be encoded as the wire's rows*dims
  // block; the client must reject it naming the offending row, before
  // any bytes hit the socket (the server could only close the connection
  // on a generically malformed payload).
  std::vector<std::vector<double>> ragged = TenantTraining(0);
  ragged[3].pop_back();
  EXPECT_FALSE(client.CreateSession("rag", SessionConfig(), ragged));
  EXPECT_NE(client.last_error().find("ragged"), std::string::npos)
      << client.last_error();
  EXPECT_NE(client.last_error().find("row 3"), std::string::npos)
      << client.last_error();
  EXPECT_EQ(client.bytes_sent(), 0u);

  // Same for an ingest batch mixing point dimensions.
  std::vector<DataPoint> mixed = TenantPoints(0, 4);
  mixed[2].values.push_back(1.0);
  EXPECT_FALSE(client.Ingest("rag", mixed));
  EXPECT_NE(client.last_error().find("point 2"), std::string::npos)
      << client.last_error();
  EXPECT_EQ(client.bytes_sent(), 0u);

  // A batch whose payload would exceed the 16 MiB wire cap is equally
  // connection-fatal server-side (the decoder latches corrupt); the
  // client refuses to send it and names the cause.
  std::vector<DataPoint> huge(260000);
  for (std::size_t i = 0; i < huge.size(); ++i) {
    huge[i].id = i;
    huge[i].values.assign(8, 0.5);  // 260k * 72 B ~ 18 MB > 16 MiB cap
  }
  EXPECT_FALSE(client.Ingest("rag", huge));
  EXPECT_NE(client.last_error().find("wire cap"), std::string::npos)
      << client.last_error();
  EXPECT_EQ(client.bytes_sent(), 0u);

  // The connection was never touched: the same client still works.
  ASSERT_TRUE(
      client.CreateSession("rag", SessionConfig(), TenantTraining(0)));
  std::vector<SpotResult> verdicts;
  ASSERT_TRUE(client.Ingest("rag", TenantPoints(0, 4)));
  EXPECT_TRUE(client.Flush("rag", &verdicts));
  EXPECT_EQ(verdicts.size(), 4u);
}

TEST(NetRobustnessTest, SessionExclusiveToOneConnection) {
  const std::string dir = MakeCheckpointDir("excl");
  SpotServiceConfig scfg;
  scfg.checkpoint_dir = dir;
  TestServer server(scfg, SpotServerConfig{});

  SpotClient first;
  ASSERT_TRUE(first.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(first.CreateSession("solo", SessionConfig(),
                                  TenantTraining(0)));
  SpotClient second;
  ASSERT_TRUE(second.Connect("127.0.0.1", server.port()));
  EXPECT_FALSE(second.ResumeSession("solo"));
  EXPECT_EQ(second.last_code(), ErrorCode::kAttachedElsewhere);
  EXPECT_NE(second.last_error().find("another connection"),
            std::string::npos);

  // Once the owner disconnects, the session can be re-attached.
  first.Disconnect();
  SpotClient third;
  ASSERT_TRUE(third.Connect("127.0.0.1", server.port()));
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (third.ResumeSession("solo")) break;
    // The server may not have reaped the first connection yet.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::vector<SpotResult> verdicts;
  ASSERT_TRUE(third.Ingest("solo", TenantPoints(0, 8)));
  EXPECT_TRUE(third.Flush("solo", &verdicts));
  EXPECT_EQ(verdicts.size(), 8u);
}

// ---------------------------------------------------------- multi-reactor --

// Hand-off accept mode places connections deterministically: reactor 0
// accepts and deals round-robin, so the k-th connection lands on reactor
// k % num_reactors. The cross-reactor tests rely on this.

// A second connection — on a different reactor — claiming a session that
// is live on the first gets a protocol kError naming the cause, and the
// first connection's stream is unaffected.
TEST(NetMultiReactorTest, CrossReactorClaimRefusedNamesOwner) {
  const std::string dir = MakeCheckpointDir("xclaim");
  SpotServiceConfig scfg;
  scfg.checkpoint_dir = dir;
  SpotServerConfig ncfg;
  ncfg.num_reactors = 2;
  ncfg.use_reuseport = false;
  TestServer server(scfg, ncfg);

  SpotClient first;  // -> reactor 0
  ASSERT_TRUE(first.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(first.CreateSession("pin", SessionConfig(), TenantTraining(0)))
      << first.last_error();
  std::vector<SpotResult> verdicts;
  ASSERT_TRUE(first.Ingest("pin", TenantPoints(0, 16)));
  ASSERT_TRUE(first.Flush("pin", &verdicts));
  ASSERT_EQ(verdicts.size(), 16u);

  SpotClient second;  // -> reactor 1
  ASSERT_TRUE(second.Connect("127.0.0.1", server.port()));
  EXPECT_FALSE(second.ResumeSession("pin"));
  EXPECT_EQ(second.last_code(), ErrorCode::kAttachedElsewhere);
  EXPECT_NE(second.last_error().find("another connection"),
            std::string::npos)
      << second.last_error();
  EXPECT_NE(second.last_error().find("reactor 0"), std::string::npos)
      << second.last_error();
  // A create under the same id is refused too.
  EXPECT_FALSE(
      second.CreateSession("pin", SessionConfig(), TenantTraining(0)));
  EXPECT_EQ(second.last_code(), ErrorCode::kSessionExists);
  EXPECT_NE(second.last_error().find("already exists"), std::string::npos)
      << second.last_error();

  // The first connection's stream is untouched by the refused claims.
  ASSERT_TRUE(first.Ingest("pin", TenantPoints(0, 16)));
  EXPECT_TRUE(first.Flush("pin", &verdicts));
  EXPECT_EQ(verdicts.size(), 32u);
}

// After the owning connection goes away, a resume landing on a different
// reactor hands the session off through the shared checkpoint directory —
// and the spliced verdict stream is byte-identical to an uninterrupted
// in-process run.
TEST(NetMultiReactorTest, CrossReactorHandOffBitIdentical) {
  const std::string dir = MakeCheckpointDir("xhand");
  const std::vector<DataPoint> points = TenantPoints(0, 600);
  const std::size_t kCut = 300;

  SpotService reference{SpotServiceConfig{}};
  ASSERT_TRUE(
      reference.CreateSession("s", SessionConfig(), TenantTraining(0)));
  const IngestResult ref = reference.Ingest("s", points);
  ASSERT_TRUE(ref.ok);

  SpotServiceConfig scfg;
  scfg.checkpoint_dir = dir;
  SpotServerConfig ncfg;
  ncfg.num_reactors = 2;
  ncfg.use_reuseport = false;
  TestServer server(scfg, ncfg);

  std::vector<SpotResult> wire_verdicts;
  {
    SpotClient client;  // -> reactor 0
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
    ASSERT_TRUE(
        client.CreateSession("s", SessionConfig(), TenantTraining(0)));
    ASSERT_TRUE(client.Ingest(
        "s", std::vector<DataPoint>(points.begin(),
                                    points.begin() + kCut)));
    ASSERT_TRUE(client.Flush("s", &wire_verdicts));
    client.Disconnect();
  }
  {
    SpotClient client;  // -> reactor 1
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
    bool resumed = false;
    for (int attempt = 0; attempt < 100 && !resumed; ++attempt) {
      resumed = client.ResumeSession("s").ok;
      if (!resumed) {
        // Reactor 0 may not have reaped the first connection yet.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    ASSERT_TRUE(resumed) << client.last_error();
    // The hand-off moved the state into reactor 1's shard.
    EXPECT_TRUE(server.service(1).HasSession("s"));
    EXPECT_FALSE(server.service(0).HasSession("s"));
    ASSERT_TRUE(client.Ingest(
        "s", std::vector<DataPoint>(points.begin() + kCut, points.end())));
    ASSERT_TRUE(client.Flush("s", &wire_verdicts));
  }
  ASSERT_EQ(wire_verdicts.size(), points.size());
  EXPECT_EQ(VerdictBytes(wire_verdicts), VerdictBytes(ref.verdicts));
}

// Without a checkpoint directory there is no hand-off channel: a resume
// from another reactor is cleanly refused, naming the owning reactor, and
// the session keeps working where it lives.
TEST(NetMultiReactorTest, CrossReactorResumeRefusedWithoutCheckpointDir) {
  SpotServerConfig ncfg;
  ncfg.num_reactors = 2;
  ncfg.use_reuseport = false;
  TestServer server(SpotServiceConfig{}, ncfg);

  SpotClient first;  // -> reactor 0
  ASSERT_TRUE(first.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(first.CreateSession("pin", SessionConfig(), TenantTraining(0)));
  first.Disconnect();

  SpotClient second;  // -> reactor 1
  ASSERT_TRUE(second.Connect("127.0.0.1", server.port()));
  std::string error;
  for (int attempt = 0; attempt < 100; ++attempt) {
    ASSERT_FALSE(second.ResumeSession("pin"));
    error = second.last_error();
    // Until reactor 0 reaps the first connection the refusal blames the
    // attachment; once reaped it must name the home reactor.
    if (error.find("no checkpoint directory") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(error.find("no checkpoint directory"), std::string::npos)
      << error;
  EXPECT_NE(error.find("reactor 0"), std::string::npos) << error;
  EXPECT_EQ(second.last_code(), ErrorCode::kWrongHomeReactor);

  // A resume landing back on the home reactor still works.
  SpotClient third;  // -> reactor 0
  ASSERT_TRUE(third.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(third.ResumeSession("pin")) << third.last_error();
  std::vector<SpotResult> verdicts;
  ASSERT_TRUE(third.Ingest("pin", TenantPoints(0, 8)));
  EXPECT_TRUE(third.Flush("pin", &verdicts));
  EXPECT_EQ(verdicts.size(), 8u);
}

// fd exhaustion pauses only the affected reactor's listener: established
// traffic on every reactor keeps flowing, the pause is accounted to that
// reactor alone, and accepts recover once descriptors free up.
TEST(NetMultiReactorTest, FdExhaustionOnOneReactorDoesNotStallOthers) {
  SpotServerConfig ncfg;
  ncfg.num_reactors = 2;
  ncfg.use_reuseport = false;  // deterministic: only reactor 0 accepts
  TestServer server(SpotServiceConfig{}, ncfg);

  SpotClient c0;  // -> reactor 0
  ASSERT_TRUE(c0.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(c0.CreateSession("fd-0", SessionConfig(), TenantTraining(0)));
  SpotClient c1;  // -> reactor 1
  ASSERT_TRUE(c1.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(c1.CreateSession("fd-1", SessionConfig(), TenantTraining(1)));

  // The late client's socket exists before exhaustion (this process hosts
  // both sides); its connect() lands in the accept queue while the server
  // cannot accept.
  const int late = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(late, 0);

  // Exhaust: clamp RLIMIT_NOFILE to the current ceiling and fill every
  // free slot below it, so the next allocation — the server's accept —
  // fails with EMFILE.
  rlimit saved;
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  long max_fd = 0;
  {
    DIR* dir = ::opendir("/proc/self/fd");
    ASSERT_NE(dir, nullptr);
    while (dirent* entry = ::readdir(dir)) {
      max_fd = std::max(max_fd, ::atol(entry->d_name));
    }
    ::closedir(dir);
  }
  rlimit tight = saved;
  tight.rlim_cur = static_cast<rlim_t>(max_fd + 1);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);
  std::vector<int> fillers;
  for (int fd = ::open("/dev/null", O_RDONLY); fd >= 0;
       fd = ::open("/dev/null", O_RDONLY)) {
    fillers.push_back(fd);
  }

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(
      ::connect(late, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // Give reactor 0 a few turns to hit EMFILE and pause its listener.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // Established traffic is unaffected on both reactors — including the
  // one whose listener is paused.
  std::vector<SpotResult> verdicts;
  ASSERT_TRUE(c0.Ingest("fd-0", TenantPoints(0, 32)));
  ASSERT_TRUE(c0.Flush("fd-0", &verdicts)) << c0.last_error();
  ASSERT_TRUE(c1.Ingest("fd-1", TenantPoints(1, 32)));
  ASSERT_TRUE(c1.Flush("fd-1", &verdicts)) << c1.last_error();
  EXPECT_EQ(verdicts.size(), 64u);

  // Recover: free the descriptors; the re-armed (level-triggered)
  // listener picks the queued connection up and it gets full service.
  for (int fd : fillers) ::close(fd);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);
  SendAll(late, EncodeFrame(MsgType::kFlush, EncodeFlush({""})));
  {
    FrameDecoder decoder;
    Frame frame;
    bool got_ok = false;
    char buf[4096];
    while (!got_ok) {
      const ssize_t n = ::recv(late, buf, sizeof(buf), 0);
      ASSERT_GT(n, 0) << "late connection was never served";
      decoder.Append(buf, static_cast<std::size_t>(n));
      while (decoder.Next(&frame) == FrameDecoder::Status::kFrame) {
        ASSERT_EQ(frame.type, MsgType::kOk);
        got_ok = true;
      }
    }
  }
  ::close(late);

  server.StopAndJoin();
  EXPECT_GE(server.server().reactor_stats(0).listener_pauses, 1u);
  EXPECT_EQ(server.server().reactor_stats(1).listener_pauses, 0u);
}

// A coalesced run whose verdicts would encode past the wire payload cap
// must be split across multiple kVerdicts frames: the client sizes its
// receive decoder to the agreed cap, so an unsplit over-cap frame is
// latched as corrupt and fails the Flush. Cap and batch_points are chosen
// so every full coalesced run (96 verdicts >= 1265 encoded bytes) exceeds
// the 1200-byte cap, and the split stream must still be byte-identical to
// the in-process reference.
TEST(NetRobustnessTest, VerdictRunsSplitUnderSmallPayloadCap) {
  const SpotConfig cfg = SessionConfig();
  const auto training = TenantTraining(0);
  const std::vector<DataPoint> points = TenantPoints(0, 1500);

  SpotService reference{SpotServiceConfig{}};
  ASSERT_TRUE(reference.CreateSession("v", cfg, training));
  const IngestResult ref = reference.Ingest("v", points);
  ASSERT_TRUE(ref.ok);

  SpotServerConfig ncfg;
  ncfg.max_payload_bytes = 1200;
  ncfg.batch_points = 96;
  TestServer server(SpotServiceConfig{}, ncfg);
  // The CreateSession payload (config + training) cannot fit the tiny
  // cap; create the session directly in the service and attach to it.
  ASSERT_TRUE(server.service().CreateSession("v", cfg, training));

  SpotClient client;
  client.set_max_payload(1200);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(client.ResumeSession("v")) << client.last_error();
  std::vector<SpotResult> verdicts;
  for (std::size_t i = 0; i < points.size(); i += 21) {
    const std::size_t n = std::min<std::size_t>(21, points.size() - i);
    ASSERT_TRUE(client.Ingest(
        "v", std::vector<DataPoint>(points.begin() + static_cast<long>(i),
                                    points.begin() +
                                        static_cast<long>(i + n))))
        << client.last_error();
  }
  ASSERT_TRUE(client.Flush("v", &verdicts)) << client.last_error();
  ASSERT_EQ(verdicts.size(), points.size());
  EXPECT_EQ(VerdictBytes(verdicts), VerdictBytes(ref.verdicts));
}

// A slow consumer must stall only itself: with a tiny outbound cap the
// server pauses reading the connection until the client drains, and every
// verdict still arrives exactly once.
TEST(NetRobustnessTest, BackpressurePausesReadsAndRecovers) {
  SpotServiceConfig scfg;
  SpotServerConfig ncfg;
  // Absurdly small caps so the stall happens with kilobytes of traffic:
  // without them the kernel's multi-megabyte loopback buffers would
  // swallow every verdict before the userspace queue ever backed up.
  ncfg.max_output_bytes = 2048;
  ncfg.sndbuf_bytes = 2048;
  ncfg.batch_points = 32;
  TestServer server(scfg, ncfg);

  SpotClient setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(
      setup.CreateSession("slow", SessionConfig(), TenantTraining(0)));
  setup.Disconnect();

  // Raw socket with a tiny receive window: attach, blast ingest frames +
  // flush, and only then start reading — the worst-behaved legitimate
  // client possible.
  const int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  const int rcvbuf = 2048;  // must precede connect to shrink the window
  ::setsockopt(raw, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(
      ::connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  SendAll(raw, EncodeFrame(MsgType::kResumeSession,
                           EncodeResumeSession({"slow"})));
  const std::vector<DataPoint> points = TenantPoints(0, 3000);
  for (std::size_t i = 0; i < points.size(); i += 100) {
    IngestReq req;
    req.session_id = "slow";
    req.points.assign(points.begin() + static_cast<long>(i),
                      points.begin() + static_cast<long>(i + 100));
    SendAll(raw, EncodeFrame(MsgType::kIngest, EncodeIngest(req)));
  }
  SendAll(raw, EncodeFrame(MsgType::kFlush, EncodeFlush({"slow"})));

  // Stay silent long enough for the server to process every batch and
  // wedge on the ~2 KiB kernel path: the stall must happen while we are
  // not reading (draining immediately would race the event loop and
  // sometimes never back it up).
  std::this_thread::sleep_for(std::chrono::milliseconds(800));

  // Now drain: resume-Ok, verdict frames, then the flush barrier Ok.
  FrameDecoder decoder;
  std::size_t verdicts_seen = 0;
  int oks_seen = 0;
  char buf[4096];
  while (oks_seen < 2) {
    const ssize_t n = ::recv(raw, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "connection died before the barrier";
    decoder.Append(buf, static_cast<std::size_t>(n));
    Frame frame;
    while (decoder.Next(&frame) == FrameDecoder::Status::kFrame) {
      if (frame.type == MsgType::kVerdicts) {
        VerdictsResp resp;
        ASSERT_TRUE(DecodeVerdicts(frame.payload, &resp));
        verdicts_seen += resp.verdicts.size();
      } else if (frame.type == MsgType::kOk) {
        ++oks_seen;
      } else {
        FAIL() << "unexpected frame type";
      }
    }
  }
  ::close(raw);
  EXPECT_EQ(verdicts_seen, points.size());

  server.StopAndJoin();
  EXPECT_GE(server.stats().backpressure_stalls, 1u);

  SessionMetrics m;
  ASSERT_TRUE(server.service().GetMetrics("slow", &m));
  EXPECT_GE(m.stats.backpressure_stalls, 1u);
  EXPECT_GT(m.stats.frames_received, 0u);
  EXPECT_GT(m.stats.bytes_in, 0u);
  EXPECT_GT(m.stats.bytes_out, 0u);
}

// Graceful shutdown: Stop() drains pending batches and checkpoints every
// session, so a new server over the same directory resumes bit-identically
// — the in-process proof of the SIGTERM kill/restart path the CI smoke job
// exercises end-to-end (signal handlers route SIGTERM to exactly this
// Stop()).
TEST(NetShutdownTest, StopCheckpointsAndResumesBitIdentically) {
  const std::string dir = MakeCheckpointDir("resume");
  const std::vector<DataPoint> points = TenantPoints(0, 600);
  const std::size_t kCut = 300;

  // Uninterrupted reference.
  SpotServiceConfig ref_cfg;
  SpotService reference(ref_cfg);
  ASSERT_TRUE(
      reference.CreateSession("s", SessionConfig(), TenantTraining(0)));
  const IngestResult ref = reference.Ingest("s", points);
  ASSERT_TRUE(ref.ok);

  std::vector<SpotResult> wire_verdicts;
  {
    SpotServiceConfig scfg;
    scfg.checkpoint_dir = dir;
    TestServer server(scfg, SpotServerConfig{});
    SpotClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
    ASSERT_TRUE(
        client.CreateSession("s", SessionConfig(), TenantTraining(0)));
    ASSERT_TRUE(client.Ingest(
        "s", std::vector<DataPoint>(points.begin(),
                                    points.begin() + kCut)));
    ASSERT_TRUE(client.Flush("s", &wire_verdicts));
    client.Disconnect();
    server.StopAndJoin();  // graceful: drains + CheckpointAll
  }
  {
    SpotServiceConfig scfg;
    scfg.checkpoint_dir = dir;
    scfg.num_shards = 4;  // the restart may even change the shard count
    TestServer server(scfg, SpotServerConfig{});
    SpotClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
    ASSERT_TRUE(client.ResumeSession("s")) << client.last_error();
    ASSERT_TRUE(client.Ingest(
        "s", std::vector<DataPoint>(points.begin() + kCut, points.end())));
    ASSERT_TRUE(client.Flush("s", &wire_verdicts));
    server.StopAndJoin();
  }
  ASSERT_EQ(wire_verdicts.size(), points.size());
  EXPECT_EQ(VerdictBytes(wire_verdicts), VerdictBytes(ref.verdicts));
}

// --------------------------------------------------------- observability --

/// Scrapes until the merged server-side ingest count reaches `points`
/// (reactors publish once per loop turn, so a just-finished flush may be
/// one turn from visibility on reactors other than the one answering).
bool ScrapeUntilCount(SpotClient& client, std::uint64_t points,
                      StatsResp* out) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (!client.Stats(out)) return false;
    const obs::MetricsSnapshot merged = out->Merged();
    const auto it = merged.counters.find("points_ingested");
    if (it != merged.counters.end() && it->second >= points) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

// The observability differential: a scraper hammering kStats on its own
// connection while two tenants stream — the verdicts must stay
// byte-identical to the scrape-free in-process reference (metrics are
// always on; a scrape only reads published snapshot copies), and the
// final scraped counts must match the traffic exactly.
TEST(NetObservabilityTest, MidStreamScrapesPerturbNoVerdicts) {
  SpotServiceConfig scfg;
  SpotServerConfig ncfg;
  ncfg.batch_points = 48;
  ncfg.num_reactors = 2;
  TestServer server(scfg, ncfg);

  SpotService reference{SpotServiceConfig{}};

  std::vector<std::unique_ptr<SpotClient>> clients;
  for (int t = 0; t < 2; ++t) {
    const std::string id = "tenant-" + std::to_string(t);
    clients.push_back(std::make_unique<SpotClient>());
    ASSERT_TRUE(clients.back()->Connect("127.0.0.1", server.port()));
    ASSERT_TRUE(clients.back()->CreateSession(id, SessionConfig(),
                                              TenantTraining(t)))
        << clients.back()->last_error();
    ASSERT_TRUE(
        reference.CreateSession(id, SessionConfig(), TenantTraining(t)));
  }

  std::atomic<bool> stop_scraper{false};
  std::atomic<int> scrapes{0};
  std::thread scraper([&server, &stop_scraper, &scrapes] {
    SpotClient probe;
    ASSERT_TRUE(probe.Connect("127.0.0.1", server.port()));
    StatsResp resp;
    while (!stop_scraper.load()) {
      ASSERT_TRUE(probe.Stats(&resp)) << probe.last_error();
      ++scrapes;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (int t = 0; t < 2; ++t) {
    const std::string id = "tenant-" + std::to_string(t);
    const std::vector<DataPoint> points = TenantPoints(t, 700);
    const std::vector<SpotResult> wire_verdicts = StreamOverWire(
        *clients[static_cast<std::size_t>(t)], id, points,
        1000 + static_cast<std::uint64_t>(t));
    const IngestResult ref = reference.Ingest(id, points);
    ASSERT_TRUE(ref.ok);
    ASSERT_EQ(wire_verdicts.size(), points.size());
    EXPECT_EQ(VerdictBytes(wire_verdicts), VerdictBytes(ref.verdicts))
        << "session " << id << " diverged under concurrent scraping";
  }
  stop_scraper.store(true);
  scraper.join();
  EXPECT_GT(scrapes.load(), 0);

  // Final scrape: counts must match the traffic exactly.
  SpotClient probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", server.port()));
  StatsResp stats;
  ASSERT_TRUE(ScrapeUntilCount(probe, 1400, &stats)) << probe.last_error();
  ASSERT_EQ(stats.reactors.size(), 2u);
  ASSERT_EQ(stats.services.size(), 2u);
  const obs::MetricsSnapshot merged = stats.Merged();
  EXPECT_EQ(merged.counters.at("points_ingested"), 1400u);
  EXPECT_GT(merged.counters.at("batches_run"), 0u);
  EXPECT_GE(merged.counters.at("stats_scrapes"),
            static_cast<std::uint64_t>(scrapes.load()));
  // Every pipeline stage histogram saw the traffic: one process
  // observation per engine batch, decode observations per frame.
  EXPECT_EQ(merged.histograms.at("pipeline_process_us").count(),
            merged.counters.at("batches_run"));
  EXPECT_GT(merged.histograms.at("pipeline_decode_us").count(), 0u);
  EXPECT_GT(merged.histograms.at("pipeline_encode_us").count(), 0u);
  EXPECT_GT(merged.histograms.at("pipeline_write_us").count(), 0u);
  EXPECT_EQ(merged.gauges.at("sessions"), 2.0);

  server.StopAndJoin();
}

TEST(NetObservabilityTest, MalformedStatsClosesOnlyThatConnection) {
  TestServer server(SpotServiceConfig{}, SpotServerConfig{});

  // A healthy session on its own connection, opened first.
  SpotClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(client.CreateSession("ok", SessionConfig(), TenantTraining(0)))
      << client.last_error();

  // kStats carries no payload by contract; a non-empty one is a protocol
  // error and costs the offender its connection.
  const int raw = RawConnect(server.port());
  SendAll(raw, EncodeFrame(MsgType::kStats, "unexpected"));
  EXPECT_TRUE(WaitForClose(raw));
  ::close(raw);

  // The well-behaved connection keeps full service.
  std::vector<SpotResult> verdicts;
  ASSERT_TRUE(client.Ingest("ok", TenantPoints(0, 32)));
  ASSERT_TRUE(client.Flush("ok", &verdicts));
  EXPECT_EQ(verdicts.size(), 32u);

  server.StopAndJoin();
  EXPECT_GE(server.stats().protocol_errors, 1u);
}

/// Sums every series of `family` (any label set) in Prometheus text.
std::uint64_t SumSeries(const std::string& text, const std::string& family) {
  std::uint64_t total = 0;
  std::size_t pos = 0;
  const std::string needle = family + "{";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    // Skip longer names sharing the prefix (e.g. _bucket variants) and
    // mid-line matches.
    if (pos != 0 && text[pos - 1] != '\n') {
      pos += needle.size();
      continue;
    }
    const std::size_t sp = text.find(' ', pos);
    const std::size_t nl = text.find('\n', sp);
    total += std::strtoull(text.substr(sp + 1, nl - sp - 1).c_str(),
                           nullptr, 10);
    pos = nl;
  }
  return total;
}

std::string FetchMetrics(int port) {
  const int fd = RawConnect(static_cast<std::uint16_t>(port));
  const std::string req = "GET /metrics HTTP/1.0\r\n\r\n";
  SendAll(fd, req);
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(NetObservabilityTest, HttpEndpointServesLivePerReactorSeries) {
  SpotServiceConfig scfg;
  SpotServerConfig ncfg;
  ncfg.num_reactors = 2;
  ncfg.metrics_port = 0;  // ephemeral
  TestServer server(scfg, ncfg);
  ASSERT_GT(server.server().metrics_port(), 0);

  SpotClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(client.CreateSession("web", SessionConfig(),
                                   TenantTraining(0)))
      << client.last_error();
  std::vector<SpotResult> verdicts;
  ASSERT_TRUE(client.Ingest("web", TenantPoints(0, 96)));
  ASSERT_TRUE(client.Flush("web", &verdicts));
  ASSERT_EQ(verdicts.size(), 96u);

  // The scrape runs WHILE the server serves; retry until both reactors
  // have published (each does so once per loop turn — the idle one may
  // not have had a turn yet on a loaded machine) and the ingest count
  // has caught up.
  std::string text;
  std::uint64_t seen = 0;
  for (int attempt = 0; attempt < 200; ++attempt) {
    text = FetchMetrics(server.server().metrics_port());
    seen = SumSeries(text, "spot_points_ingested");
    if (seen >= 96 &&
        text.find("spot_points_ingested{reactor=\"0\"}") !=
            std::string::npos &&
        text.find("spot_points_ingested{reactor=\"1\"}") !=
            std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(seen, 96u);
  EXPECT_NE(text.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(text.find("spot_points_ingested{reactor=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("spot_points_ingested{reactor=\"1\"}"),
            std::string::npos);
  EXPECT_NE(text.find("spot_pipeline_process_us_count"), std::string::npos);
  EXPECT_NE(text.find("spot_sessions{shard="), std::string::npos);
  EXPECT_NE(text.find("spot_sessions_handed_off"), std::string::npos);

  server.StopAndJoin();
}

// ----------------------------------------------------- engine observability --

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// One wire run of `points` through a fresh server at the given scale,
/// checkpointing at the end. Returns the verdicts; `ckpt_bytes` receives
/// the session's checkpoint file and `stats` its final detector stats.
std::vector<SpotResult> ObservedRun(SpotServiceConfig scfg,
                                    SpotServerConfig ncfg, const char* tag,
                                    const std::vector<DataPoint>& points,
                                    std::string* ckpt_bytes,
                                    SpotStats* stats) {
  scfg.checkpoint_dir = MakeCheckpointDir(tag);
  TestServer server(scfg, ncfg);
  SpotClient client;
  EXPECT_TRUE(client.Connect("127.0.0.1", server.port()));
  EXPECT_TRUE(client.CreateSession("diff", SessionConfig(),
                                   TenantTraining(0)))
      << client.last_error();
  const std::vector<SpotResult> verdicts =
      StreamOverWire(client, "diff", points, /*chunk_seed=*/321);
  EXPECT_TRUE(client.Checkpoint("diff")) << client.last_error();
  SessionMetrics m;
  for (std::size_t i = 0; i < server.server().num_reactors(); ++i) {
    if (server.server().service(i).GetMetrics("diff", &m)) break;
  }
  *stats = m.stats;
  *ckpt_bytes = ReadFileBytes(scfg.checkpoint_dir + "/diff.ckpt");
  server.StopAndJoin();
  return verdicts;
}

// The engine-observability differential (DESIGN.md Section 10): the same
// stream through a fully instrumented server — journal on, detection
// quality on, flight recorder + shard timings on — and through one with
// every observability surface off. Verdict bytes, detector stats and the
// checkpoint file must match bit for bit at reactors {1,2} x shards
// {1,4}; only then is "events are pure reporting" actually proven at the
// serving boundary.
TEST(NetObservabilityTest, JournalAndTracePerturbNothing) {
  const std::vector<DataPoint> points = TenantPoints(0, 500);
  int combo = 0;
  for (const std::size_t reactors : {1, 2}) {
    for (const std::size_t shards : {1, 4}) {
      SpotServiceConfig on_scfg;
      on_scfg.num_shards = shards;
      on_scfg.collect_shard_timings = true;  // journal + quality default on
      SpotServerConfig on_ncfg;
      on_ncfg.num_reactors = reactors;
      on_ncfg.batch_points = 48;
      on_ncfg.trace_capacity = 512;

      SpotServiceConfig off_scfg;
      off_scfg.num_shards = shards;
      off_scfg.journal_capacity = 0;
      off_scfg.collect_quality = false;
      SpotServerConfig off_ncfg;
      off_ncfg.num_reactors = reactors;
      off_ncfg.batch_points = 48;
      off_ncfg.trace_capacity = 0;

      const std::string tag_on = "obs_on_" + std::to_string(combo);
      const std::string tag_off = "obs_off_" + std::to_string(combo);
      ++combo;
      std::string ckpt_on, ckpt_off;
      SpotStats stats_on, stats_off;
      const std::vector<SpotResult> v_on =
          ObservedRun(on_scfg, on_ncfg, tag_on.c_str(), points, &ckpt_on,
                      &stats_on);
      const std::vector<SpotResult> v_off =
          ObservedRun(off_scfg, off_ncfg, tag_off.c_str(), points,
                      &ckpt_off, &stats_off);

      const std::string label = "reactors=" + std::to_string(reactors) +
                                " shards=" + std::to_string(shards);
      ASSERT_EQ(v_on.size(), points.size()) << label;
      EXPECT_EQ(VerdictBytes(v_on), VerdictBytes(v_off)) << label;
      EXPECT_FALSE(ckpt_on.empty()) << label;
      EXPECT_EQ(ckpt_on, ckpt_off) << label << ": checkpoint bytes diverge";
      EXPECT_EQ(stats_on.points_processed, stats_off.points_processed)
          << label;
      EXPECT_EQ(stats_on.outliers_detected, stats_off.outliers_detected)
          << label;
      EXPECT_EQ(stats_on.evolution_rounds, stats_off.evolution_rounds)
          << label;
      EXPECT_EQ(stats_on.os_growth_runs, stats_off.os_growth_runs) << label;
      EXPECT_EQ(stats_on.drifts_detected, stats_off.drifts_detected)
          << label;
    }
  }
}

TEST(NetObservabilityTest, TraceDumpOverTheWire) {
  SpotServiceConfig scfg;
  scfg.num_shards = 2;
  scfg.collect_shard_timings = true;
  SpotServerConfig ncfg;
  ncfg.batch_points = 48;
  ncfg.trace_capacity = 1024;
  TestServer server(scfg, ncfg);

  SpotClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(client.CreateSession("tr", SessionConfig(), TenantTraining(0)))
      << client.last_error();
  std::vector<SpotResult> verdicts;
  ASSERT_TRUE(client.Ingest("tr", TenantPoints(0, 200)));
  ASSERT_TRUE(client.Flush("tr", &verdicts));
  ASSERT_EQ(verdicts.size(), 200u);

  std::string json;
  ASSERT_TRUE(client.TraceDump(&json)) << client.last_error();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"decode\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shard_probe\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"encode\""), std::string::npos);
  EXPECT_NE(json.find("\"session\":\"tr\""), std::string::npos);

  // Batch-id correlation: the process span of some chunk must share its
  // args.batch value with at least one other stage's span (shard probes
  // and the encode of the same chunk carry the same id).
  const std::size_t process = json.find("\"name\":\"process\"");
  ASSERT_NE(process, std::string::npos);
  const std::size_t batch_key = json.find("\"batch\":", process);
  ASSERT_NE(batch_key, std::string::npos);
  const std::size_t batch_end = json.find_first_of(",}", batch_key);
  const std::string batch_value =
      json.substr(batch_key, batch_end - batch_key);
  EXPECT_NE(batch_value, "\"batch\":0");
  std::size_t shared = 0;
  for (std::size_t pos = json.find(batch_value); pos != std::string::npos;
       pos = json.find(batch_value, pos + 1)) {
    ++shared;
  }
  EXPECT_GE(shared, 2u) << batch_value << " appears only once";
  server.StopAndJoin();
}

TEST(NetObservabilityTest, TraceDumpRefusedWhenTracingOff) {
  SpotServerConfig ncfg;
  ncfg.trace_capacity = 0;
  TestServer server(SpotServiceConfig{}, ncfg);
  SpotClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  std::string json;
  EXPECT_FALSE(client.TraceDump(&json));
  EXPECT_EQ(client.last_code(), ErrorCode::kTracingDisabled);
  EXPECT_NE(client.last_error().find("tracing"), std::string::npos)
      << client.last_error();
  // The refusal is a protocol kError, not a connection loss: the same
  // client still gets full service.
  ASSERT_TRUE(client.CreateSession("ok", SessionConfig(), TenantTraining(0)))
      << client.last_error();
  std::vector<SpotResult> verdicts;
  ASSERT_TRUE(client.Ingest("ok", TenantPoints(0, 16)));
  EXPECT_TRUE(client.Flush("ok", &verdicts));
  EXPECT_EQ(verdicts.size(), 16u);
}

std::string FetchPath(int port, const std::string& path) {
  const int fd = RawConnect(static_cast<std::uint16_t>(port));
  SendAll(fd, "GET " + path + " HTTP/1.0\r\n\r\n");
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

// The TSan target of the observability tier: HTTP /metrics, /trace and
// /journal scrapers plus a kStats prober all hammering the server while
// two tenants stream — every surface reads live reactor / journal /
// recorder state, so this is where a locking mistake would surface. The
// verdicts must still be byte-identical to the quiet in-process
// reference.
TEST(NetObservabilityTest, ConcurrentScrapeSurfacesUnderLoad) {
  SpotServiceConfig scfg;
  scfg.num_shards = 2;
  scfg.collect_shard_timings = true;
  SpotServerConfig ncfg;
  ncfg.num_reactors = 2;
  ncfg.batch_points = 48;
  ncfg.trace_capacity = 256;
  ncfg.metrics_port = 0;
  TestServer server(scfg, ncfg);
  ASSERT_GT(server.server().metrics_port(), 0);
  const int http_port = server.server().metrics_port();

  SpotService reference{SpotServiceConfig{}};
  std::vector<std::unique_ptr<SpotClient>> clients;
  for (int t = 0; t < 2; ++t) {
    const std::string id = "tenant-" + std::to_string(t);
    clients.push_back(std::make_unique<SpotClient>());
    ASSERT_TRUE(clients.back()->Connect("127.0.0.1", server.port()));
    ASSERT_TRUE(clients.back()->CreateSession(id, SessionConfig(),
                                              TenantTraining(t)))
        << clients.back()->last_error();
    ASSERT_TRUE(
        reference.CreateSession(id, SessionConfig(), TenantTraining(t)));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> http_hits{0};
  std::vector<std::thread> scrapers;
  for (const char* path : {"/metrics", "/trace", "/journal"}) {
    scrapers.emplace_back([http_port, path, &stop, &http_hits] {
      while (!stop.load()) {
        const std::string response = FetchPath(http_port, path);
        EXPECT_NE(response.find("200 OK"), std::string::npos) << path;
        ++http_hits;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  scrapers.emplace_back([&server, &stop] {
    SpotClient probe;
    ASSERT_TRUE(probe.Connect("127.0.0.1", server.port()));
    StatsResp resp;
    std::string trace_json;
    while (!stop.load()) {
      ASSERT_TRUE(probe.Stats(&resp)) << probe.last_error();
      ASSERT_TRUE(probe.TraceDump(&trace_json)) << probe.last_error();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (int t = 0; t < 2; ++t) {
    const std::string id = "tenant-" + std::to_string(t);
    const std::vector<DataPoint> points = TenantPoints(t, 500);
    const std::vector<SpotResult> wire_verdicts = StreamOverWire(
        *clients[static_cast<std::size_t>(t)], id, points,
        2000 + static_cast<std::uint64_t>(t));
    const IngestResult ref = reference.Ingest(id, points);
    ASSERT_TRUE(ref.ok);
    ASSERT_EQ(wire_verdicts.size(), points.size());
    EXPECT_EQ(VerdictBytes(wire_verdicts), VerdictBytes(ref.verdicts))
        << "session " << id << " diverged under concurrent scraping";
  }
  stop.store(true);
  for (std::thread& t : scrapers) t.join();
  EXPECT_GT(http_hits.load(), 0);

  // The new HTTP surfaces deliver real content, not just 200s.
  const std::string trace = FetchPath(http_port, "/trace");
  EXPECT_NE(trace.find("application/json"), std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"process\""), std::string::npos);
  const std::string journal = FetchPath(http_port, "/journal");
  EXPECT_NE(journal.find("\"shards\""), std::string::npos);
  EXPECT_NE(journal.find("\"events\""), std::string::npos);

  // The quality sections reached both wire surfaces: per-session labels
  // in the Prometheus text, SessionQuality entries in kStats.
  std::string metrics;
  StatsResp stats;
  SpotClient probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(ScrapeUntilCount(probe, 1000, &stats)) << probe.last_error();
  ASSERT_EQ(stats.sessions.size(), 2u);
  std::uint64_t session_points = 0;
  for (const SessionQuality& q : stats.sessions) {
    session_points += q.points;
    EXPECT_GT(q.tracked_subspaces, 0u) << q.session_id;
    EXPECT_GT(q.base_cells, 0u) << q.session_id;
  }
  EXPECT_EQ(session_points, 1000u);
  for (int attempt = 0; attempt < 200; ++attempt) {
    metrics = FetchPath(http_port, "/metrics");
    if (metrics.find("spot_session_points{session=\"tenant-0\"}") !=
            std::string::npos &&
        metrics.find("spot_session_points{session=\"tenant-1\"}") !=
            std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(SumSeries(metrics, "spot_session_points"), 1000u);
  EXPECT_NE(metrics.find("spot_tracked_subspaces{session=\"tenant-0\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("spot_subspace_alarms{session="), std::string::npos);
  EXPECT_NE(metrics.find("subspace=\"0x"), std::string::npos);
  EXPECT_NE(metrics.find("spot_rd_margin_x1000_bucket"), std::string::npos);

  server.StopAndJoin();
}

// ------------------------------------- feedback & query plane (wire v3) --

// The feedback-plane differential (DESIGN.md Section 11): a stream with
// interleaved supervised feedback rounds and top-k queries over the wire
// must stay byte-identical to an in-process service applying the same
// rounds at the same batch boundaries — every top-k answer matching
// TopKBytes for TopKBytes on the way. The wire side deliberately never
// flushes before a feedback round: the server's own batch-boundary
// barrier (ProcessPending before servicing kFeedback/kQueryTopK) is what
// must line the RNG position up with the reference.
TEST(NetFeedbackTest, FeedbackAndTopKOverWireBitIdentical) {
  for (const std::size_t reactors : {1, 2}) {
    SpotServiceConfig scfg;
    scfg.num_shards = 2;
    SpotServerConfig ncfg;
    ncfg.batch_points = 48;
    ncfg.num_reactors = reactors;
    TestServer server(scfg, ncfg);

    SpotService reference{SpotServiceConfig{}};
    ASSERT_TRUE(
        reference.CreateSession("fb", SessionConfig(), TenantTraining(0)));

    SpotClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
    ASSERT_TRUE(
        client.CreateSession("fb", SessionConfig(), TenantTraining(0)))
        << client.last_error();

    const std::vector<DataPoint> points = TenantPoints(0, 600);
    const std::size_t kBatch = 100;
    std::vector<SpotResult> wire_verdicts;
    std::vector<SpotResult> ref_verdicts;
    std::size_t applied = 0;
    for (std::size_t i = 0; i < points.size(); i += kBatch) {
      const std::vector<DataPoint> batch(
          points.begin() + static_cast<long>(i),
          points.begin() + static_cast<long>(i + kBatch));
      ASSERT_TRUE(client.Ingest("fb", batch)) << client.last_error();
      const IngestResult ref = reference.Ingest("fb", batch);
      ASSERT_TRUE(ref.ok);
      ref_verdicts.insert(ref_verdicts.end(), ref.verdicts.begin(),
                          ref.verdicts.end());

      // Top-k answers must agree even though the wire side has pending
      // unflushed points — the query's barrier forces them through.
      std::vector<TopKEntry> got;
      ASSERT_TRUE(client.TopK("fb", 6, &got)) << client.last_error();
      std::vector<TopKEntry> want;
      ASSERT_TRUE(reference.QueryTopK("fb", 6, &want));
      EXPECT_EQ(TopKBytes(got), TopKBytes(want)) << "batch at " << i;

      // Every other batch: a supervised round labeling the current worst
      // outliers by id plus one fresh example, mirrored on the reference.
      if ((i / kBatch) % 2 == 1) {
        std::vector<std::uint64_t> ids;
        for (const TopKEntry& e : got) ids.push_back(e.point_id);
        const RpcStatus fb =
            client.Feedback("fb", ids, {batch.front().values});
        std::string ref_error;
        const bool ref_ok = reference.ApplyFeedback(
            "fb", ids, {batch.front().values}, &ref_error);
        ASSERT_EQ(fb.ok, ref_ok)
            << "wire: " << fb.cause << " reference: " << ref_error;
        if (fb.ok) ++applied;
      }
    }
    ASSERT_TRUE(client.Flush("fb", &wire_verdicts)) << client.last_error();
    ASSERT_EQ(wire_verdicts.size(), points.size());
    EXPECT_EQ(VerdictBytes(wire_verdicts), VerdictBytes(ref_verdicts))
        << "reactors=" << reactors;
    // The rounds must actually have taken: a differential between two
    // no-op paths would prove nothing about supervised SST growth.
    EXPECT_GT(applied, 0u);
    SessionMetrics m;
    bool found = false;
    for (std::size_t r = 0; r < server.server().num_reactors() && !found;
         ++r) {
      found = server.server().service(r).GetMetrics("fb", &m);
    }
    ASSERT_TRUE(found);
    EXPECT_EQ(m.stats.feedback_rounds, applied);
    server.StopAndJoin();
  }
}

// Feedback-driven SST growth must survive the checkpoint kill→restart
// path: rounds applied before the cut shape the verdicts after it, and
// the top-k retention window (the id source for feedback) must come back
// byte-identical too.
TEST(NetFeedbackTest, FeedbackSurvivesCheckpointRestart) {
  const std::string dir = MakeCheckpointDir("fbresume");
  const std::vector<DataPoint> points = TenantPoints(0, 600);
  const std::size_t kCut = 300;

  // Uninterrupted reference with one feedback round before the cut and
  // one after, each at a batch boundary.
  SpotService reference{SpotServiceConfig{}};
  ASSERT_TRUE(
      reference.CreateSession("s", SessionConfig(), TenantTraining(0)));
  std::vector<SpotResult> ref_verdicts;
  const auto ref_ingest = [&](std::size_t from, std::size_t to) {
    const IngestResult r = reference.Ingest(
        "s", std::vector<DataPoint>(points.begin() + static_cast<long>(from),
                                    points.begin() + static_cast<long>(to)));
    ASSERT_TRUE(r.ok);
    ref_verdicts.insert(ref_verdicts.end(), r.verdicts.begin(),
                        r.verdicts.end());
  };
  const auto ref_feedback = [&](const std::vector<double>& example) {
    std::vector<TopKEntry> top;
    ASSERT_TRUE(reference.QueryTopK("s", 4, &top));
    std::vector<std::uint64_t> ids;
    for (const TopKEntry& e : top) ids.push_back(e.point_id);
    ASSERT_TRUE(reference.ApplyFeedback("s", ids, {example}));
  };
  ref_ingest(0, kCut);
  ref_feedback(points[0].values);
  ref_ingest(kCut, 450);
  ref_feedback(points[kCut].values);
  ref_ingest(450, points.size());

  std::vector<SpotResult> wire_verdicts;
  std::string topk_before_kill;
  {
    SpotServiceConfig scfg;
    scfg.checkpoint_dir = dir;
    TestServer server(scfg, SpotServerConfig{});
    SpotClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
    ASSERT_TRUE(
        client.CreateSession("s", SessionConfig(), TenantTraining(0)));
    ASSERT_TRUE(client.Ingest(
        "s", std::vector<DataPoint>(points.begin(),
                                    points.begin() + kCut)));
    std::vector<TopKEntry> top;
    ASSERT_TRUE(client.TopK("s", 4, &top)) << client.last_error();
    std::vector<std::uint64_t> ids;
    for (const TopKEntry& e : top) ids.push_back(e.point_id);
    ASSERT_TRUE(client.Feedback("s", ids, {points[0].values}))
        << client.last_error();
    ASSERT_TRUE(client.Flush("s", &wire_verdicts));
    topk_before_kill = TopKBytes(top);
    client.Disconnect();
    server.StopAndJoin();  // graceful SIGTERM path: drain + CheckpointAll
  }
  {
    SpotServiceConfig scfg;
    scfg.checkpoint_dir = dir;
    scfg.num_shards = 4;  // the restart may even change the shard count
    TestServer server(scfg, SpotServerConfig{});
    SpotClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
    ASSERT_TRUE(client.ResumeSession("s")) << client.last_error();
    ASSERT_TRUE(client.Ingest(
        "s", std::vector<DataPoint>(points.begin() + kCut,
                                    points.begin() + 450)));
    std::vector<TopKEntry> top;
    ASSERT_TRUE(client.TopK("s", 4, &top)) << client.last_error();
    std::vector<std::uint64_t> ids;
    for (const TopKEntry& e : top) ids.push_back(e.point_id);
    ASSERT_TRUE(client.Feedback("s", ids, {points[kCut].values}))
        << client.last_error();
    ASSERT_TRUE(client.Ingest(
        "s", std::vector<DataPoint>(points.begin() + 450, points.end())));
    ASSERT_TRUE(client.Flush("s", &wire_verdicts));
    server.StopAndJoin();
  }
  ASSERT_EQ(wire_verdicts.size(), points.size());
  EXPECT_EQ(VerdictBytes(wire_verdicts), VerdictBytes(ref_verdicts));
  EXPECT_FALSE(topk_before_kill.empty());
}

// A session another connection owns refuses feedback and queries with
// kNotAttached — by code, not by message prose.
TEST(NetFeedbackTest, FeedbackAndTopKRequireAttachment) {
  TestServer server(SpotServiceConfig{}, SpotServerConfig{});
  SpotClient owner;
  ASSERT_TRUE(owner.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(
      owner.CreateSession("own", SessionConfig(), TenantTraining(0)));

  SpotClient intruder;
  ASSERT_TRUE(intruder.Connect("127.0.0.1", server.port()));
  std::vector<TopKEntry> top;
  const RpcStatus q = intruder.TopK("own", 4, &top);
  EXPECT_FALSE(q.ok);
  EXPECT_EQ(q.code, ErrorCode::kNotAttached);
  const RpcStatus fb = intruder.Feedback("own", {}, {TenantTraining(0)[0]});
  EXPECT_FALSE(fb.ok);
  EXPECT_EQ(fb.code, ErrorCode::kNotAttached);

  // A refused round on the detector side carries kFeedbackFailed: labels
  // naming an id the top-k window does not retain.
  const RpcStatus bad =
      owner.Feedback("own", {std::uint64_t{999999}}, {});
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.code, ErrorCode::kFeedbackFailed);
  EXPECT_NE(bad.cause.find("not retained"), std::string::npos) << bad.cause;

  // Client-side validation fails fast without touching the wire.
  const std::uint64_t sent = owner.bytes_sent();
  const RpcStatus empty = owner.Feedback("own", {}, {});
  EXPECT_FALSE(empty.ok);
  EXPECT_EQ(empty.code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(owner.bytes_sent(), sent);

  // None of the refusals cost anyone the connection.
  std::vector<SpotResult> verdicts;
  ASSERT_TRUE(owner.Ingest("own", TenantPoints(0, 16)));
  EXPECT_TRUE(owner.Flush("own", &verdicts));
  EXPECT_EQ(verdicts.size(), 16u);
}

// ------------------------------------------------- version negotiation --

// Forward direction: a v2-era server (wire_version = 2) must refuse the
// v3 request types with a machine-readable cause on the open connection —
// never by closing it — and keep serving the v2 surface untouched.
TEST(NetVersioningTest, V2ServerRefusesV3RequestsWithoutClosing) {
  SpotServerConfig ncfg;
  ncfg.wire_version = 2;
  TestServer server(SpotServiceConfig{}, ncfg);

  SpotClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(
      client.CreateSession("v2", SessionConfig(), TenantTraining(0)))
      << client.last_error();

  // The v3 requests degrade to kUnsupportedRequest. The server replies in
  // the v2 error layout (no code on the wire); the client derives the
  // code from the refused request type.
  std::vector<TopKEntry> top;
  const RpcStatus q = client.TopK("v2", 4, &top);
  EXPECT_FALSE(q.ok);
  EXPECT_EQ(q.code, ErrorCode::kUnsupportedRequest);
  EXPECT_NE(q.cause.find("not supported"), std::string::npos) << q.cause;
  const RpcStatus fb = client.Feedback("v2", {}, {TenantTraining(0)[0]});
  EXPECT_FALSE(fb.ok);
  EXPECT_EQ(fb.code, ErrorCode::kUnsupportedRequest);

  // Same connection, full v2 service before and after the refusals.
  std::vector<SpotResult> verdicts;
  ASSERT_TRUE(client.Ingest("v2", TenantPoints(0, 32)));
  ASSERT_TRUE(client.Flush("v2", &verdicts)) << client.last_error();
  EXPECT_EQ(verdicts.size(), 32u);

  server.StopAndJoin();
  EXPECT_EQ(server.stats().unsupported_requests, 2u);
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

// Reverse direction: a v2-era client against a v3 server. The server
// caps every reply at the version the peer demonstrated, so the client
// never sees a v3-layout payload it cannot parse — errors decode in the
// v2 layout (code absent on the wire, kUnknown after decode) and the
// connection survives them.
TEST(NetVersioningTest, V3ServerSpeaksV2ToV2Clients) {
  TestServer server(SpotServiceConfig{}, SpotServerConfig{});

  SpotClient client;
  client.set_wire_version(2);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));

  const RpcStatus resume = client.ResumeSession("ghost");
  EXPECT_FALSE(resume.ok);
  // A v3 client would read kSessionUnknown; the v2 layout cannot carry
  // the code, and ResumeSession is not a v3-only request, so no
  // degradation mapping applies.
  EXPECT_EQ(resume.code, ErrorCode::kUnknown);
  EXPECT_NE(resume.cause.find("ghost"), std::string::npos) << resume.cause;

  // The refusal cost nothing: the same v2 client gets full service.
  ASSERT_TRUE(
      client.CreateSession("old", SessionConfig(), TenantTraining(0)))
      << client.last_error();
  std::vector<SpotResult> verdicts;
  ASSERT_TRUE(client.Ingest("old", TenantPoints(0, 32)));
  ASSERT_TRUE(client.Flush("old", &verdicts)) << client.last_error();
  EXPECT_EQ(verdicts.size(), 32u);

  // A v3 client on the same server reads the full-fidelity code.
  SpotClient modern;
  ASSERT_TRUE(modern.Connect("127.0.0.1", server.port()));
  EXPECT_FALSE(modern.ResumeSession("ghost"));
  EXPECT_EQ(modern.last_code(), ErrorCode::kSessionUnknown);
}

// Every server refusal carries its machine-readable code (the Section 11
// error-code table) — the client branches on codes, never on prose.
TEST(NetVersioningTest, RefusalsCarryMachineReadableCodes) {
  const std::string dir = MakeCheckpointDir("codes");
  SpotServiceConfig scfg;
  scfg.checkpoint_dir = dir;
  TestServer server(scfg, SpotServerConfig{});

  SpotClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  EXPECT_FALSE(client.ResumeSession("nope"));
  EXPECT_EQ(client.last_code(), ErrorCode::kSessionUnknown);

  ASSERT_TRUE(
      client.CreateSession("dup", SessionConfig(), TenantTraining(0)));
  const RpcStatus dup =
      client.CreateSession("dup", SessionConfig(), TenantTraining(0));
  EXPECT_FALSE(dup.ok);
  EXPECT_EQ(dup.code, ErrorCode::kSessionExists);

  SpotClient second;
  ASSERT_TRUE(second.Connect("127.0.0.1", server.port()));
  EXPECT_FALSE(second.ResumeSession("dup"));
  EXPECT_EQ(second.last_code(), ErrorCode::kAttachedElsewhere);
}

}  // namespace
}  // namespace net
}  // namespace spot
