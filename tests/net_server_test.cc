// End-to-end tests of the network ingest layer (src/net/): a real
// SpotServer event loop on a loopback socket, driven by SpotClient and by
// raw sockets. Proves the acceptance criterion of DESIGN.md Section 7:
// server round-trip verdicts (including outlying-subspace findings) are
// byte-identical to in-process SpotService::Ingest on the same stream at
// shards {1, 4} — under randomized client-side chunking and mid-stream
// flush barriers — and that malformed traffic closes the offending
// connection without crashing the server or disturbing other connections.

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <sys/socket.h>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/detector.h"
#include "eval/presets.h"
#include "net/protocol.h"
#include "net/spot_client.h"
#include "net/spot_server.h"
#include "service/spot_service.h"
#include "stream/synthetic.h"

namespace spot {
namespace net {
namespace {

std::string MakeCheckpointDir(const char* tag) {
  const std::string dir = testing::TempDir() + "spot_net_" + tag;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

SpotConfig SessionConfig() {
  SpotConfig cfg = eval::FastTestConfig();
  cfg.os_update_every = 8;
  cfg.evolution_period = 300;
  return cfg;
}

std::vector<DataPoint> TenantPoints(int t, int n) {
  stream::SyntheticConfig scfg;
  scfg.dimension = 6;
  scfg.outlier_probability = 0.03;
  scfg.concept_seed = 300 + static_cast<std::uint64_t>(t);
  scfg.seed = 8100 + static_cast<std::uint64_t>(t);
  stream::GaussianStream gen(scfg);
  std::vector<DataPoint> out;
  for (const LabeledPoint& p : Take(gen, static_cast<std::size_t>(n))) {
    out.push_back(p.point);
  }
  return out;
}

std::vector<std::vector<double>> TenantTraining(int t) {
  stream::SyntheticConfig scfg;
  scfg.dimension = 6;
  scfg.outlier_probability = 0.0;
  scfg.concept_seed = 300 + static_cast<std::uint64_t>(t);
  scfg.seed = 8200 + static_cast<std::uint64_t>(t);
  stream::GaussianStream gen(scfg);
  return ValuesOf(Take(gen, 300));
}

/// A SpotService + SpotServer pair running its event loop on a thread.
class TestServer {
 public:
  TestServer(SpotServiceConfig scfg, SpotServerConfig ncfg)
      : service_(std::make_unique<SpotService>(scfg)) {
    server_ = std::make_unique<SpotServer>(service_.get(), ncfg);
    EXPECT_TRUE(server_->Start());
    thread_ = std::thread([this] { server_->Run(); });
  }

  ~TestServer() { StopAndJoin(); }

  /// Stops the loop and joins; Run() performs the graceful Shutdown()
  /// (drain + CheckpointAll) on its way out. Safe to call twice.
  void StopAndJoin() {
    if (thread_.joinable()) {
      server_->Stop();
      thread_.join();
    }
  }

  std::uint16_t port() const { return server_->port(); }
  SpotService& service() { return *service_; }
  /// Only valid after StopAndJoin() (stats are loop-thread state).
  const SpotServerStats& stats() const { return server_->stats(); }

 private:
  std::unique_ptr<SpotService> service_;
  std::unique_ptr<SpotServer> server_;
  std::thread thread_;
};

/// Feeds `points` through the wire in randomized chunks with occasional
/// mid-stream barriers and returns every verdict, in point order.
std::vector<SpotResult> StreamOverWire(SpotClient& client,
                                       const std::string& id,
                                       const std::vector<DataPoint>& points,
                                       std::uint64_t chunk_seed) {
  Rng rng(chunk_seed);
  std::vector<SpotResult> verdicts;
  std::size_t i = 0;
  while (i < points.size()) {
    const std::size_t n = std::min(
        points.size() - i, 1 + static_cast<std::size_t>(rng.NextInt(0, 96)));
    EXPECT_TRUE(client.Ingest(
        id, std::vector<DataPoint>(points.begin() + static_cast<long>(i),
                                   points.begin() + static_cast<long>(i + n))))
        << client.last_error();
    i += n;
    if (rng.NextDouble() < 0.15) {
      EXPECT_TRUE(client.Flush(id, &verdicts)) << client.last_error();
    }
  }
  EXPECT_TRUE(client.Flush(id, &verdicts)) << client.last_error();
  return verdicts;
}

// The headline differential: two sessions streamed over the wire through
// a server whose service runs at `shards`, against two in-process
// reference services at shard count 1 — randomized framing, randomized
// barriers. VerdictBytes (raw IEEE-754 bit patterns of scores and PCS
// evidence, subspace masks, flags) must match exactly.
void RunDifferential(std::size_t shards, bool use_epoll) {
  SpotServiceConfig scfg;
  scfg.num_shards = shards;
  SpotServerConfig ncfg;
  ncfg.batch_points = 48;  // force multi-chunk coalescing paths
  ncfg.use_epoll = use_epoll;
  TestServer server(scfg, ncfg);

  SpotServiceConfig ref_cfg;  // shards=1: also proves shard invariance
  SpotService reference(ref_cfg);

  SpotClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  for (int t = 0; t < 2; ++t) {
    const std::string id = "tenant-" + std::to_string(t);
    ASSERT_TRUE(client.CreateSession(id, SessionConfig(), TenantTraining(t)))
        << client.last_error();
    ASSERT_TRUE(
        reference.CreateSession(id, SessionConfig(), TenantTraining(t)));
  }

  for (int t = 0; t < 2; ++t) {
    const std::string id = "tenant-" + std::to_string(t);
    const std::vector<DataPoint> points = TenantPoints(t, 700);
    const std::vector<SpotResult> wire_verdicts =
        StreamOverWire(client, id, points, 42 + static_cast<std::uint64_t>(t));
    const IngestResult ref = reference.Ingest(id, points);
    ASSERT_TRUE(ref.ok);
    ASSERT_EQ(wire_verdicts.size(), points.size());
    EXPECT_EQ(VerdictBytes(wire_verdicts), VerdictBytes(ref.verdicts))
        << "shards=" << shards << " session=" << id;
  }
  client.Disconnect();
  server.StopAndJoin();
  EXPECT_GT(server.stats().batches_run, 0u);
  EXPECT_EQ(server.stats().points_ingested, 1400u);
}

TEST(NetDifferentialTest, WireVerdictsByteIdenticalAtOneShard) {
  RunDifferential(/*shards=*/1, /*use_epoll=*/true);
}

TEST(NetDifferentialTest, WireVerdictsByteIdenticalAtFourShards) {
  RunDifferential(/*shards=*/4, /*use_epoll=*/true);
}

TEST(NetDifferentialTest, PollFallbackMatchesEpoll) {
  RunDifferential(/*shards=*/2, /*use_epoll=*/false);
}

// ------------------------------------------------------------ robustness --

int RawConnect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

void SendAll(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

/// Blocks until the peer closes (returns true) — any payload received
/// before the EOF is discarded.
bool WaitForClose(int fd) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return true;
    if (n < 0 && errno != EINTR) return false;
  }
}

TEST(NetRobustnessTest, GarbageClosesConnectionServerSurvives) {
  TestServer server(SpotServiceConfig{}, SpotServerConfig{});

  const int raw = RawConnect(server.port());
  SendAll(raw, std::string(1024, 'Z'));  // not a frame at all
  EXPECT_TRUE(WaitForClose(raw));
  ::close(raw);

  // A well-behaved client on a fresh connection still gets full service.
  SpotClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(client.CreateSession("ok", SessionConfig(), TenantTraining(0)))
      << client.last_error();
  std::vector<SpotResult> verdicts;
  ASSERT_TRUE(client.Ingest("ok", TenantPoints(0, 32)));
  ASSERT_TRUE(client.Flush("ok", &verdicts));
  EXPECT_EQ(verdicts.size(), 32u);

  server.StopAndJoin();
  EXPECT_EQ(server.stats().corrupt_frames, 1u);
}

TEST(NetRobustnessTest, CorruptCrcAndOversizedFramesRejected) {
  SpotServerConfig ncfg;
  ncfg.max_payload_bytes = 1 << 16;
  TestServer server(SpotServiceConfig{}, ncfg);

  // CRC corruption inside an otherwise valid frame.
  {
    const int raw = RawConnect(server.port());
    std::string wire = EncodeFrame(MsgType::kFlush, EncodeFlush({""}));
    wire.back() = static_cast<char>(wire.back() ^ 0x01);
    SendAll(raw, wire);
    EXPECT_TRUE(WaitForClose(raw));
    ::close(raw);
  }
  // Header announcing a payload over the server's cap.
  {
    const int raw = RawConnect(server.port());
    WireWriter w;
    w.U32(kFrameMagic);
    w.U8(kWireVersion);
    w.U8(static_cast<std::uint8_t>(MsgType::kIngest));
    w.U16(0);
    w.U32(1u << 20);
    w.U32(0);
    SendAll(raw, w.bytes());
    EXPECT_TRUE(WaitForClose(raw));
    ::close(raw);
  }
  // Truncated frame then EOF: no crash, connection just goes away.
  {
    const int raw = RawConnect(server.port());
    const std::string wire = EncodeFrame(MsgType::kFlush, EncodeFlush({""}));
    SendAll(raw, wire.substr(0, wire.size() - 2));
    ::close(raw);
  }

  server.StopAndJoin();
  EXPECT_EQ(server.stats().corrupt_frames, 2u);
  EXPECT_EQ(server.stats().connections_closed,
            server.stats().connections_accepted);
}

TEST(NetRobustnessTest, IngestToUnknownSessionReportsErrorAndCloses) {
  TestServer server(SpotServiceConfig{}, SpotServerConfig{});
  SpotClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(client.Ingest("ghost", TenantPoints(0, 4)));  // send succeeds
  std::vector<SpotResult> verdicts;
  EXPECT_FALSE(client.Flush("ghost", &verdicts));  // barrier surfaces it
  EXPECT_NE(client.last_error().find("ghost"), std::string::npos)
      << client.last_error();
}

TEST(NetRobustnessTest, InvalidClientInputFailsFastWithoutTouchingWire) {
  TestServer server(SpotServiceConfig{}, SpotServerConfig{});
  SpotClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));

  // A ragged training matrix cannot be encoded as the wire's rows*dims
  // block; the client must reject it naming the offending row, before
  // any bytes hit the socket (the server could only close the connection
  // on a generically malformed payload).
  std::vector<std::vector<double>> ragged = TenantTraining(0);
  ragged[3].pop_back();
  EXPECT_FALSE(client.CreateSession("rag", SessionConfig(), ragged));
  EXPECT_NE(client.last_error().find("ragged"), std::string::npos)
      << client.last_error();
  EXPECT_NE(client.last_error().find("row 3"), std::string::npos)
      << client.last_error();
  EXPECT_EQ(client.bytes_sent(), 0u);

  // Same for an ingest batch mixing point dimensions.
  std::vector<DataPoint> mixed = TenantPoints(0, 4);
  mixed[2].values.push_back(1.0);
  EXPECT_FALSE(client.Ingest("rag", mixed));
  EXPECT_NE(client.last_error().find("point 2"), std::string::npos)
      << client.last_error();
  EXPECT_EQ(client.bytes_sent(), 0u);

  // A batch whose payload would exceed the 16 MiB wire cap is equally
  // connection-fatal server-side (the decoder latches corrupt); the
  // client refuses to send it and names the cause.
  std::vector<DataPoint> huge(260000);
  for (std::size_t i = 0; i < huge.size(); ++i) {
    huge[i].id = i;
    huge[i].values.assign(8, 0.5);  // 260k * 72 B ~ 18 MB > 16 MiB cap
  }
  EXPECT_FALSE(client.Ingest("rag", huge));
  EXPECT_NE(client.last_error().find("wire cap"), std::string::npos)
      << client.last_error();
  EXPECT_EQ(client.bytes_sent(), 0u);

  // The connection was never touched: the same client still works.
  ASSERT_TRUE(
      client.CreateSession("rag", SessionConfig(), TenantTraining(0)));
  std::vector<SpotResult> verdicts;
  ASSERT_TRUE(client.Ingest("rag", TenantPoints(0, 4)));
  EXPECT_TRUE(client.Flush("rag", &verdicts));
  EXPECT_EQ(verdicts.size(), 4u);
}

TEST(NetRobustnessTest, SessionExclusiveToOneConnection) {
  const std::string dir = MakeCheckpointDir("excl");
  SpotServiceConfig scfg;
  scfg.checkpoint_dir = dir;
  TestServer server(scfg, SpotServerConfig{});

  SpotClient first;
  ASSERT_TRUE(first.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(first.CreateSession("solo", SessionConfig(),
                                  TenantTraining(0)));
  SpotClient second;
  ASSERT_TRUE(second.Connect("127.0.0.1", server.port()));
  EXPECT_FALSE(second.ResumeSession("solo"));
  EXPECT_NE(second.last_error().find("another connection"),
            std::string::npos);

  // Once the owner disconnects, the session can be re-attached.
  first.Disconnect();
  SpotClient third;
  ASSERT_TRUE(third.Connect("127.0.0.1", server.port()));
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (third.ResumeSession("solo")) break;
    // The server may not have reaped the first connection yet.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::vector<SpotResult> verdicts;
  ASSERT_TRUE(third.Ingest("solo", TenantPoints(0, 8)));
  EXPECT_TRUE(third.Flush("solo", &verdicts));
  EXPECT_EQ(verdicts.size(), 8u);
}

// A coalesced run whose verdicts would encode past the wire payload cap
// must be split across multiple kVerdicts frames: the client sizes its
// receive decoder to the agreed cap, so an unsplit over-cap frame is
// latched as corrupt and fails the Flush. Cap and batch_points are chosen
// so every full coalesced run (96 verdicts >= 1265 encoded bytes) exceeds
// the 1200-byte cap, and the split stream must still be byte-identical to
// the in-process reference.
TEST(NetRobustnessTest, VerdictRunsSplitUnderSmallPayloadCap) {
  const SpotConfig cfg = SessionConfig();
  const auto training = TenantTraining(0);
  const std::vector<DataPoint> points = TenantPoints(0, 1500);

  SpotService reference{SpotServiceConfig{}};
  ASSERT_TRUE(reference.CreateSession("v", cfg, training));
  const IngestResult ref = reference.Ingest("v", points);
  ASSERT_TRUE(ref.ok);

  SpotServerConfig ncfg;
  ncfg.max_payload_bytes = 1200;
  ncfg.batch_points = 96;
  TestServer server(SpotServiceConfig{}, ncfg);
  // The CreateSession payload (config + training) cannot fit the tiny
  // cap; create the session directly in the service and attach to it.
  ASSERT_TRUE(server.service().CreateSession("v", cfg, training));

  SpotClient client;
  client.set_max_payload(1200);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(client.ResumeSession("v")) << client.last_error();
  std::vector<SpotResult> verdicts;
  for (std::size_t i = 0; i < points.size(); i += 21) {
    const std::size_t n = std::min<std::size_t>(21, points.size() - i);
    ASSERT_TRUE(client.Ingest(
        "v", std::vector<DataPoint>(points.begin() + static_cast<long>(i),
                                    points.begin() +
                                        static_cast<long>(i + n))))
        << client.last_error();
  }
  ASSERT_TRUE(client.Flush("v", &verdicts)) << client.last_error();
  ASSERT_EQ(verdicts.size(), points.size());
  EXPECT_EQ(VerdictBytes(verdicts), VerdictBytes(ref.verdicts));
}

// A slow consumer must stall only itself: with a tiny outbound cap the
// server pauses reading the connection until the client drains, and every
// verdict still arrives exactly once.
TEST(NetRobustnessTest, BackpressurePausesReadsAndRecovers) {
  SpotServiceConfig scfg;
  SpotServerConfig ncfg;
  // Absurdly small caps so the stall happens with kilobytes of traffic:
  // without them the kernel's multi-megabyte loopback buffers would
  // swallow every verdict before the userspace queue ever backed up.
  ncfg.max_output_bytes = 2048;
  ncfg.sndbuf_bytes = 2048;
  ncfg.batch_points = 32;
  TestServer server(scfg, ncfg);

  SpotClient setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(
      setup.CreateSession("slow", SessionConfig(), TenantTraining(0)));
  setup.Disconnect();

  // Raw socket with a tiny receive window: attach, blast ingest frames +
  // flush, and only then start reading — the worst-behaved legitimate
  // client possible.
  const int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  const int rcvbuf = 2048;  // must precede connect to shrink the window
  ::setsockopt(raw, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(
      ::connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  SendAll(raw, EncodeFrame(MsgType::kResumeSession,
                           EncodeResumeSession({"slow"})));
  const std::vector<DataPoint> points = TenantPoints(0, 3000);
  for (std::size_t i = 0; i < points.size(); i += 100) {
    IngestReq req;
    req.session_id = "slow";
    req.points.assign(points.begin() + static_cast<long>(i),
                      points.begin() + static_cast<long>(i + 100));
    SendAll(raw, EncodeFrame(MsgType::kIngest, EncodeIngest(req)));
  }
  SendAll(raw, EncodeFrame(MsgType::kFlush, EncodeFlush({"slow"})));

  // Stay silent long enough for the server to process every batch and
  // wedge on the ~2 KiB kernel path: the stall must happen while we are
  // not reading (draining immediately would race the event loop and
  // sometimes never back it up).
  std::this_thread::sleep_for(std::chrono::milliseconds(800));

  // Now drain: resume-Ok, verdict frames, then the flush barrier Ok.
  FrameDecoder decoder;
  std::size_t verdicts_seen = 0;
  int oks_seen = 0;
  char buf[4096];
  while (oks_seen < 2) {
    const ssize_t n = ::recv(raw, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "connection died before the barrier";
    decoder.Append(buf, static_cast<std::size_t>(n));
    Frame frame;
    while (decoder.Next(&frame) == FrameDecoder::Status::kFrame) {
      if (frame.type == MsgType::kVerdicts) {
        VerdictsResp resp;
        ASSERT_TRUE(DecodeVerdicts(frame.payload, &resp));
        verdicts_seen += resp.verdicts.size();
      } else if (frame.type == MsgType::kOk) {
        ++oks_seen;
      } else {
        FAIL() << "unexpected frame type";
      }
    }
  }
  ::close(raw);
  EXPECT_EQ(verdicts_seen, points.size());

  server.StopAndJoin();
  EXPECT_GE(server.stats().backpressure_stalls, 1u);

  SessionMetrics m;
  ASSERT_TRUE(server.service().GetMetrics("slow", &m));
  EXPECT_GE(m.stats.backpressure_stalls, 1u);
  EXPECT_GT(m.stats.frames_received, 0u);
  EXPECT_GT(m.stats.bytes_in, 0u);
  EXPECT_GT(m.stats.bytes_out, 0u);
}

// Graceful shutdown: Stop() drains pending batches and checkpoints every
// session, so a new server over the same directory resumes bit-identically
// — the in-process proof of the SIGTERM kill/restart path the CI smoke job
// exercises end-to-end (signal handlers route SIGTERM to exactly this
// Stop()).
TEST(NetShutdownTest, StopCheckpointsAndResumesBitIdentically) {
  const std::string dir = MakeCheckpointDir("resume");
  const std::vector<DataPoint> points = TenantPoints(0, 600);
  const std::size_t kCut = 300;

  // Uninterrupted reference.
  SpotServiceConfig ref_cfg;
  SpotService reference(ref_cfg);
  ASSERT_TRUE(
      reference.CreateSession("s", SessionConfig(), TenantTraining(0)));
  const IngestResult ref = reference.Ingest("s", points);
  ASSERT_TRUE(ref.ok);

  std::vector<SpotResult> wire_verdicts;
  {
    SpotServiceConfig scfg;
    scfg.checkpoint_dir = dir;
    TestServer server(scfg, SpotServerConfig{});
    SpotClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
    ASSERT_TRUE(
        client.CreateSession("s", SessionConfig(), TenantTraining(0)));
    ASSERT_TRUE(client.Ingest(
        "s", std::vector<DataPoint>(points.begin(),
                                    points.begin() + kCut)));
    ASSERT_TRUE(client.Flush("s", &wire_verdicts));
    client.Disconnect();
    server.StopAndJoin();  // graceful: drains + CheckpointAll
  }
  {
    SpotServiceConfig scfg;
    scfg.checkpoint_dir = dir;
    scfg.num_shards = 4;  // the restart may even change the shard count
    TestServer server(scfg, SpotServerConfig{});
    SpotClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
    ASSERT_TRUE(client.ResumeSession("s")) << client.last_error();
    ASSERT_TRUE(client.Ingest(
        "s", std::vector<DataPoint>(points.begin() + kCut, points.end())));
    ASSERT_TRUE(client.Flush("s", &wire_verdicts));
    server.StopAndJoin();
  }
  ASSERT_EQ(wire_verdicts.size(), points.size());
  EXPECT_EQ(VerdictBytes(wire_verdicts), VerdictBytes(ref.verdicts));
}

}  // namespace
}  // namespace net
}  // namespace spot
