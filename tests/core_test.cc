// Unit tests of src/core: configuration validation, reservoir sampling,
// Page-Hinkley drift detection, and SpotDetector behaviour.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/detector.h"
#include "core/drift_detector.h"
#include "core/reservoir.h"
#include "core/spot_config.h"
#include "grid/decay.h"
#include "stream/synthetic.h"

namespace spot {
namespace {

// --------------------------------------------------------- SpotConfig ----

TEST(SpotConfigTest, DefaultIsValid) {
  EXPECT_EQ(SpotConfig{}.Validate(), "");
}

TEST(SpotConfigTest, RejectsBadValues) {
  SpotConfig c;
  c.omega = 0;
  EXPECT_NE(c.Validate(), "");

  c = SpotConfig{};
  c.epsilon = 1.5;
  EXPECT_NE(c.Validate(), "");

  c = SpotConfig{};
  c.epsilon = 0.0;
  EXPECT_NE(c.Validate(), "");

  c = SpotConfig{};
  c.cells_per_dim = 1;
  EXPECT_NE(c.Validate(), "");

  c = SpotConfig{};
  c.rd_threshold = -0.1;
  EXPECT_NE(c.Validate(), "");

  c = SpotConfig{};
  c.unsupervised.moga.population_size = 1;
  EXPECT_NE(c.Validate(), "");
}

// ---------------------------------------------------------- Reservoir ----

TEST(ReservoirTest, FillsToCapacityThenSamples) {
  ReservoirSample r(10, 1);
  for (int i = 0; i < 10; ++i) r.Add({static_cast<double>(i)});
  EXPECT_EQ(r.size(), 10u);
  for (int i = 10; i < 1000; ++i) r.Add({static_cast<double>(i)});
  EXPECT_EQ(r.size(), 10u);
  EXPECT_EQ(r.seen(), 1000u);
}

TEST(ReservoirTest, SampleIsRoughlyUniform) {
  // Feed 0..9999; the mean of a uniform sample should be near 5000.
  ReservoirSample r(200, 7);
  for (int i = 0; i < 10000; ++i) r.Add({static_cast<double>(i)});
  double sum = 0.0;
  for (const auto& item : r.Items()) sum += item[0];
  const double mean = sum / static_cast<double>(r.size());
  EXPECT_NEAR(mean, 5000.0, 700.0);
}

TEST(ReservoirTest, ClearResets) {
  ReservoirSample r(5, 3);
  for (int i = 0; i < 20; ++i) r.Add({1.0});
  r.Clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.seen(), 0u);
}

// --------------------------------------------------------- PageHinkley ----

TEST(PageHinkleyTest, NoDriftOnStationarySignal) {
  PageHinkley ph(0.01, 8.0);
  Rng rng(5);
  bool drift = false;
  for (int i = 0; i < 20000; ++i) {
    drift = ph.Add(rng.NextBernoulli(0.02) ? 1.0 : 0.0) || drift;
  }
  EXPECT_FALSE(drift);
}

TEST(PageHinkleyTest, DetectsRateJump) {
  PageHinkley ph(0.01, 8.0);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) ph.Add(rng.NextBernoulli(0.01) ? 1.0 : 0.0);
  std::uint64_t first_alarm = 0;
  for (std::uint64_t i = 0; i < 5000 && first_alarm == 0; ++i) {
    if (ph.Add(rng.NextBernoulli(0.3) ? 1.0 : 0.0)) first_alarm = i + 1;
  }
  EXPECT_GT(first_alarm, 0u);
  EXPECT_LT(first_alarm, 500u);  // alarms promptly after the jump
  EXPECT_GE(ph.drifts(), 1u);
}

TEST(PageHinkleyTest, ResetsAfterDrift) {
  PageHinkley ph(0.0, 0.5);
  // Deterministic ramp guarantees an alarm.
  bool drift = false;
  for (int i = 0; i < 100 && !drift; ++i) {
    drift = ph.Add(i < 10 ? 0.0 : 1.0);
  }
  ASSERT_TRUE(drift);
  EXPECT_EQ(ph.count(), 0u);  // state cleared
  EXPECT_DOUBLE_EQ(ph.statistic(), 0.0);
}

TEST(PageHinkleyTest, MeanTracksSignal) {
  PageHinkley ph(0.005, 100.0);
  for (int i = 0; i < 100; ++i) ph.Add(0.5);
  EXPECT_NEAR(ph.mean(), 0.5, 1e-9);
}

// -------------------------------------------------------- SpotDetector ----

SpotConfig SmallConfig() {
  SpotConfig cfg;
  cfg.omega = 2000;
  cfg.epsilon = 0.01;
  cfg.cells_per_dim = 5;
  cfg.fs_max_dimension = 1;
  cfg.cs_capacity = 8;
  cfg.os_capacity = 8;
  cfg.unsupervised.moga.population_size = 12;
  cfg.unsupervised.moga.generations = 5;
  cfg.unsupervised.top_outlying_points = 4;
  cfg.unsupervised.top_subspaces_per_run = 4;
  cfg.supervised.moga.population_size = 12;
  cfg.supervised.moga.generations = 5;
  cfg.evolution_period = 0;     // keep unit tests deterministic and fast
  cfg.os_update_every = 0;      // disabled unless a test enables it
  cfg.domain_lo = 0.0;
  cfg.domain_hi = 1.0;  // generators emit unit-cube data
  cfg.drift_detection = false;
  cfg.seed = 101;
  return cfg;
}

std::vector<std::vector<double>> TrainingBatch(int n, int dims,
                                               std::uint64_t seed) {
  stream::SyntheticConfig scfg;
  scfg.dimension = dims;
  scfg.outlier_probability = 0.0;
  scfg.seed = seed;
  stream::GaussianStream gen(scfg);
  return ValuesOf(Take(gen, static_cast<std::size_t>(n)));
}

// Two tight blobs (centers 0.3 and 0.45, sigma 0.02) over the explicit
// [0, 1] domain: training mass stays within cells 1-2 of the default
// 5-cell partition, so a value near 0.95 (cell 4) is at least two cells
// from all mass — outlying and beyond fringe suppression's reach.
std::vector<std::vector<double>> TwoClusterBatch(int n, int dims,
                                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double center = (i % 2 == 0) ? 0.3 : 0.45;
    std::vector<double> row(static_cast<std::size_t>(dims));
    for (double& v : row) v = center + 0.02 * rng.NextGaussian();
    out.push_back(std::move(row));
  }
  return out;
}

TEST(SpotDetectorTest, RequiresLearnBeforeProcess) {
  SpotDetector det(SmallConfig());
  EXPECT_FALSE(det.learned());
  const SpotResult r = det.Process(std::vector<double>{0.5, 0.5, 0.5, 0.5});
  EXPECT_FALSE(r.is_outlier);
  EXPECT_TRUE(r.findings.empty());
}

TEST(SpotDetectorTest, LearnRejectsEmptyTraining) {
  SpotDetector det(SmallConfig());
  EXPECT_FALSE(det.Learn({}));
}

TEST(SpotDetectorTest, LearnRejectsInvalidConfig) {
  SpotConfig cfg = SmallConfig();
  cfg.omega = 0;
  SpotDetector det(cfg);
  EXPECT_FALSE(det.Learn(TrainingBatch(100, 4, 1)));
}

TEST(SpotDetectorTest, LearnRejectsTooManyDims) {
  SpotDetector det(SmallConfig());
  std::vector<std::vector<double>> wide(10, std::vector<double>(80, 0.5));
  EXPECT_FALSE(det.Learn(wide));
}

TEST(SpotDetectorTest, LearnBuildsSstAndWarmStartsSynapses) {
  SpotDetector det(SmallConfig());
  ASSERT_TRUE(det.Learn(TrainingBatch(300, 6, 2)));
  EXPECT_TRUE(det.learned());
  // FS = 6 singletons; CS adds more.
  EXPECT_EQ(det.sst().fixed().size(), 6u);
  EXPECT_GE(det.TrackedSubspaces(), 6u);
  // After 300 warm-start points the decayed total weight equals the
  // partial geometric sum steady * (1 - alpha^300) — well below the raw
  // count and capped by the model's steady state.
  const DecayModel model(det.config().omega, det.config().epsilon);
  const double steady = model.SteadyStateWeight();
  const double expected = steady * (1.0 - model.WeightAtAge(300));
  EXPECT_NEAR(det.synapses().TotalWeight(), expected, 1e-6 * expected);
  EXPECT_LT(det.synapses().TotalWeight(), 300.0);
}

TEST(SpotDetectorTest, NormalPointsMostlyPassClean) {
  SpotDetector det(SmallConfig());
  ASSERT_TRUE(det.Learn(TrainingBatch(500, 6, 3)));
  stream::SyntheticConfig scfg;
  scfg.dimension = 6;
  scfg.outlier_probability = 0.0;
  scfg.seed = 3;  // same concept as training
  stream::GaussianStream gen(scfg);
  int flagged = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    if (det.Process(gen.Next()->point.values).is_outlier) ++flagged;
  }
  EXPECT_LT(static_cast<double>(flagged) / n, 0.15);
}

TEST(SpotDetectorTest, GrossProjectedOutlierIsFlaggedWithSubspace) {
  SpotDetector det(SmallConfig());
  const auto training = TwoClusterBatch(500, 6, 4);
  ASSERT_TRUE(det.Learn(training));
  // Stream more normal two-cluster data, then a point far out in
  // attribute 2 only.
  const auto stream_data = TwoClusterBatch(200, 6, 5);
  for (const auto& row : stream_data) det.Process(row);

  std::vector<double> outlier = training.front();
  outlier[2] = 0.95;  // far from both blobs in attribute 2 alone
  const SpotResult r = det.Process(outlier);
  EXPECT_TRUE(r.is_outlier);
  bool dim2_blamed = false;
  for (const auto& f : r.findings) {
    if (f.subspace.Contains(2)) dim2_blamed = true;
    EXPECT_LE(f.pcs.rd, det.config().rd_threshold);
    EXPECT_LE(f.pcs.irsd, det.config().irsd_threshold);
  }
  EXPECT_TRUE(dim2_blamed);
  EXPECT_GT(r.score, 0.8);
}

TEST(SpotDetectorTest, StatsAccumulate) {
  SpotDetector det(SmallConfig());
  ASSERT_TRUE(det.Learn(TrainingBatch(200, 5, 5)));
  stream::SyntheticConfig scfg;
  scfg.dimension = 5;
  scfg.seed = 5;
  stream::GaussianStream gen(scfg);
  for (int i = 0; i < 100; ++i) det.Process(gen.Next()->point.values);
  EXPECT_EQ(det.stats().points_processed, 100u);
}

TEST(SpotDetectorTest, SupervisedKnowledgePopulatesOs) {
  SpotConfig cfg = SmallConfig();
  SpotDetector det(cfg);
  const auto training = TrainingBatch(300, 5, 6);
  DomainKnowledge knowledge;
  std::vector<double> example = training.front();
  example[3] = 0.999;
  knowledge.outlier_examples.push_back(example);
  ASSERT_TRUE(det.Learn(training, &knowledge));
  EXPECT_FALSE(det.sst().outlier_driven().empty());
}

TEST(SpotDetectorTest, OsGrowsFromDetectedOutliers) {
  SpotConfig cfg = SmallConfig();
  cfg.os_update_every = 1;  // grow on every detection
  SpotDetector det(cfg);
  const auto training = TwoClusterBatch(300, 5, 7);
  ASSERT_TRUE(det.Learn(training));
  const std::size_t os_before = det.sst().outlier_driven().size();
  // Hammer the detector with obvious projected outliers.
  for (int i = 0; i < 10; ++i) {
    std::vector<double> outlier = training.front();
    outlier[1] = 0.95;
    det.Process(outlier);
  }
  EXPECT_GT(det.stats().os_growth_runs, 0u);
  EXPECT_GE(det.sst().outlier_driven().size(), os_before);
}

TEST(SpotDetectorTest, EvolutionRoundsRunOnSchedule) {
  SpotConfig cfg = SmallConfig();
  cfg.evolution_period = 100;
  SpotDetector det(cfg);
  ASSERT_TRUE(det.Learn(TrainingBatch(300, 5, 8)));
  ASSERT_FALSE(det.sst().clustering().empty());
  stream::SyntheticConfig scfg;
  scfg.dimension = 5;
  scfg.seed = 8;
  stream::GaussianStream gen(scfg);
  for (int i = 0; i < 350; ++i) det.Process(gen.Next()->point.values);
  EXPECT_GE(det.stats().evolution_rounds, 3u);
}

TEST(SpotDetectorTest, FsCapSamplesWhenLatticeTooBig) {
  SpotConfig cfg = SmallConfig();
  cfg.fs_max_dimension = 3;
  cfg.fs_cap = 50;  // C(10,1)+C(10,2)+C(10,3) = 175 > 50
  SpotDetector det(cfg);
  ASSERT_TRUE(det.Learn(TrainingBatch(200, 10, 9)));
  EXPECT_EQ(det.sst().fixed().size(), 50u);
}

TEST(SpotDetectorTest, ScoreIsMonotoneWithSparsity) {
  SpotDetector det(SmallConfig());
  const auto training = TwoClusterBatch(500, 5, 10);
  ASSERT_TRUE(det.Learn(training));
  const SpotResult normal = det.Process(training.front());
  std::vector<double> weird = training.front();
  weird[0] = 0.02;
  weird[4] = 0.95;
  const SpotResult anomalous = det.Process(weird);
  EXPECT_GE(anomalous.score, normal.score);
}

TEST(SpotStreamAdapterTest, AdaptsResults) {
  SpotDetector det(SmallConfig());
  const auto training = TwoClusterBatch(300, 5, 11);
  ASSERT_TRUE(det.Learn(training));
  SpotStreamAdapter adapter(&det);
  EXPECT_EQ(adapter.name(), "SPOT");
  DataPoint p;
  p.values = training.front();
  p.values[2] = 0.95;
  const Detection d = adapter.Process(p);
  EXPECT_TRUE(d.is_outlier);
  EXPECT_FALSE(d.outlying_subspaces.empty());
}

}  // namespace
}  // namespace spot
