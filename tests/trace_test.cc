// Tests of the flight recorder (src/obs/trace.h, DESIGN.md Section 10):
// ring wraparound with the reactor id stamped on entry, oldest-first
// snapshots, and the Chrome-trace JSON rendering — complete "X" events,
// shard-probe lanes on tid 1000+shard, batch-id correlation keys shared
// across stages, and JSON-safe session names.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace spot {
namespace obs {
namespace {

TraceEvent Span(TraceStage stage, std::uint64_t ts, std::uint64_t dur,
                std::uint64_t batch = 0, const std::string& session = "") {
  TraceEvent e;
  e.stage = stage;
  e.ts_us = ts;
  e.dur_us = dur;
  e.batch_id = batch;
  e.points = dur;  // arbitrary but distinct per span
  e.session = session;
  return e;
}

// ---------------------------------------------------------------- recorder --

TEST(TraceRecorderTest, StampsReactorAndWrapsOldestFirst) {
  TraceRecorder rec(4, /*reactor=*/3);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.reactor(), 3u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.Record(Span(TraceStage::kProcess, i, 1));
  }
  EXPECT_EQ(rec.dropped(), 6u);
  const std::vector<TraceEvent> snap = rec.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].ts_us, 6 + i);  // the newest window, oldest first
    EXPECT_EQ(snap[i].reactor, 3u);   // stamped by Record, not the caller
  }
}

TEST(TraceRecorderTest, ZeroCapacityDegradesToOne) {
  // The recorder is only constructed when tracing is on, but a zero from a
  // future config path must not divide by zero in the ring arithmetic.
  TraceRecorder rec(0);
  rec.Record(Span(TraceStage::kDecode, 1, 1));
  rec.Record(Span(TraceStage::kDecode, 2, 1));
  EXPECT_EQ(rec.capacity(), 1u);
  ASSERT_EQ(rec.Snapshot().size(), 1u);
  EXPECT_EQ(rec.Snapshot()[0].ts_us, 2u);
}

// ------------------------------------------------------------ chrome trace --

TEST(RenderChromeTraceTest, EmitsCompleteEventsWithStageNames) {
  TraceRecorder rec(16, /*reactor=*/1);
  rec.Record(Span(TraceStage::kDecode, 10, 2));
  rec.Record(Span(TraceStage::kProcess, 20, 5, /*batch=*/77, "lg-0"));
  TraceEvent probe = Span(TraceStage::kShardProbe, 21, 3, 77, "lg-0");
  probe.shard = 2;
  rec.Record(probe);

  const std::string json = RenderChromeTrace({rec.Snapshot()});
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_EQ(json.rfind("]}"), json.size() - 2);
  EXPECT_NE(json.find("\"name\":\"decode\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shard_probe\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":20,\"dur\":5"), std::string::npos);
  EXPECT_NE(json.find("\"session\":\"lg-0\""), std::string::npos);
  // Reactor-thread spans: pid = tid = reactor. Shard probes get their own
  // lane under the same pid.
  EXPECT_NE(json.find("\"pid\":1,\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1,\"tid\":1002"), std::string::npos);
  EXPECT_NE(json.find("\"shard\":2"), std::string::npos);
}

TEST(RenderChromeTraceTest, BatchIdCorrelatesStages) {
  // The serving pipeline gives process, shard_probe and encode spans of
  // one coalesced chunk the same batch id; the renderer must carry it
  // into args.batch verbatim so a Perfetto query can join the stages.
  TraceRecorder rec(16, 0);
  const std::uint64_t batch = (7ull << 48) | 42;  // reactor 7, seq 42
  rec.Record(Span(TraceStage::kProcess, 1, 4, batch, "s"));
  TraceEvent probe = Span(TraceStage::kShardProbe, 1, 2, batch, "s");
  probe.shard = 0;
  rec.Record(probe);
  rec.Record(Span(TraceStage::kEncode, 5, 1, batch, "s"));
  rec.Record(Span(TraceStage::kWrite, 6, 1));  // connection-scoped: batch 0

  const std::string json = RenderChromeTrace({rec.Snapshot()});
  const std::string key = "\"batch\":" + std::to_string(batch);
  std::size_t hits = 0;
  for (std::size_t pos = json.find(key); pos != std::string::npos;
       pos = json.find(key, pos + 1)) {
    ++hits;
  }
  EXPECT_EQ(hits, 3u);
  EXPECT_NE(json.find("\"batch\":0"), std::string::npos);
}

TEST(RenderChromeTraceTest, MergesRecordersAndEscapesSessions) {
  TraceRecorder r0(4, 0);
  TraceRecorder r1(4, 1);
  r0.Record(Span(TraceStage::kDecode, 1, 1));
  r1.Record(Span(TraceStage::kWrite, 2, 1, 0, "we\"ird\\name"));

  const std::string json =
      RenderChromeTrace({r0.Snapshot(), r1.Snapshot()});
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);

  // Empty input is still a valid document.
  EXPECT_EQ(RenderChromeTrace({}), "{\"traceEvents\":[]}");
  EXPECT_EQ(RenderChromeTrace({{}}), "{\"traceEvents\":[]}");
}

}  // namespace
}  // namespace obs
}  // namespace spot
