// Tests of the binary full-state checkpoint (src/core/checkpoint.h): a
// save → load → Process run must be bit-identical to an uninterrupted one —
// same verdict labels, findings, scores (exact double equality) and same
// SpotStats counters — including checkpoints taken right before runs that
// cross CS self-evolution, OS growth, drift-relearn and compaction
// boundaries, and regardless of the shard count on either side of the
// save/load. The ASan/UBSan CI job runs this binary.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/detector.h"
#include "core/drift_detector.h"
#include "core/reservoir.h"
#include "eval/presets.h"
#include "stream/drift.h"
#include "stream/synthetic.h"

namespace spot {
namespace {

std::vector<LabeledPoint> DriftingEvalStream(int dims, int n,
                                             std::uint64_t seed) {
  stream::DriftConfig dcfg;
  dcfg.base.dimension = dims;
  dcfg.base.outlier_probability = 0.02;
  dcfg.base.concept_seed = 900;
  dcfg.base.seed = seed;
  dcfg.kind = stream::DriftKind::kAbrupt;
  dcfg.period = n / 3;
  stream::DriftingStream gen(dcfg);
  return Take(gen, static_cast<std::size_t>(n));
}

std::vector<std::vector<double>> TrainingBatch(int dims, int n) {
  stream::SyntheticConfig scfg;
  scfg.dimension = dims;
  scfg.outlier_probability = 0.0;
  scfg.concept_seed = 900;
  scfg.seed = 901;
  stream::GaussianStream gen(scfg);
  return ValuesOf(Take(gen, static_cast<std::size_t>(n)));
}

/// Config exercising every online state mutator the checkpoint must
/// capture: OS growth, periodic CS self-evolution, drift relearning, and a
/// compaction cadence short enough that the post-restore run crosses
/// several Compact() sweeps (whose FP summation order must not depend on
/// hash-map history — the checkpoint cannot reproduce that history).
SpotConfig EventfulConfig() {
  SpotConfig cfg = eval::FastTestConfig();
  cfg.os_update_every = 8;
  cfg.evolution_period = 400;
  cfg.drift_detection = true;
  cfg.relearn_on_drift = true;
  cfg.drift_lambda = 8.0;
  cfg.compaction_period = 512;
  return cfg;
}

std::unique_ptr<SpotDetector> LearnedDetector(
    const SpotConfig& cfg,
    const std::vector<std::vector<double>>& training) {
  auto det = std::make_unique<SpotDetector>(cfg);
  EXPECT_TRUE(det->Learn(training));
  return det;
}

void ExpectIdentical(const SpotResult& a, const SpotResult& b,
                     std::size_t point_idx, const char* label) {
  EXPECT_EQ(a.is_outlier, b.is_outlier) << label << " point " << point_idx;
  EXPECT_EQ(a.score, b.score) << label << " point " << point_idx;
  ASSERT_EQ(a.findings.size(), b.findings.size())
      << label << " point " << point_idx;
  for (std::size_t f = 0; f < a.findings.size(); ++f) {
    EXPECT_EQ(a.findings[f].subspace.bits(), b.findings[f].subspace.bits())
        << label << " point " << point_idx << " finding " << f;
    EXPECT_EQ(a.findings[f].pcs.rd, b.findings[f].pcs.rd);
    EXPECT_EQ(a.findings[f].pcs.irsd, b.findings[f].pcs.irsd);
    EXPECT_EQ(a.findings[f].pcs.count, b.findings[f].pcs.count);
  }
}

/// All deterministic SpotStats fields (detection_seconds is wall-clock and
/// batches_processed depends on the caller's batching, not the stream).
void ExpectSameStats(const SpotStats& a, const SpotStats& b,
                     const char* label) {
  EXPECT_EQ(a.points_processed, b.points_processed) << label;
  EXPECT_EQ(a.outliers_detected, b.outliers_detected) << label;
  EXPECT_EQ(a.evolution_rounds, b.evolution_rounds) << label;
  EXPECT_EQ(a.os_growth_runs, b.os_growth_runs) << label;
  EXPECT_EQ(a.drifts_detected, b.drifts_detected) << label;
}

std::string SaveToString(const SpotDetector& det) {
  std::ostringstream out;
  EXPECT_TRUE(SaveCheckpoint(det, out));
  return out.str();
}

bool LoadFromString(SpotDetector* det, const std::string& bytes) {
  std::istringstream in(bytes);
  return LoadCheckpoint(det, in);
}

/// Feeds `stream[begin, end)` in batches of `batch` and returns the
/// verdicts.
std::vector<SpotResult> Drive(SpotDetector* det,
                              const std::vector<LabeledPoint>& stream,
                              std::size_t begin, std::size_t end,
                              std::size_t batch) {
  std::vector<SpotResult> results;
  results.reserve(end - begin);
  std::vector<DataPoint> chunk;
  for (std::size_t start = begin; start < end; start += batch) {
    chunk.clear();
    for (std::size_t i = start; i < std::min(start + batch, end); ++i) {
      chunk.push_back(stream[i].point);
    }
    for (auto& r : det->ProcessBatch(chunk)) results.push_back(std::move(r));
  }
  return results;
}

// The headline acceptance test: checkpoint mid-stream, keep the original
// running, restore into a fresh detector, and compare the next 5000
// verdicts point by point — at shard counts {1, 4} on the restored side,
// over a stream that crosses evolution, OS-growth, drift and compaction
// boundaries both before and after the checkpoint.
TEST(CheckpointTest, ResumeIsBitIdenticalAcrossEventBoundaries) {
  const int kDims = 8;
  const std::size_t kWarmup = 1500;  // crosses evolution + OS growth
  const std::size_t kTail = 5000;    // crosses drift + more evolutions
  const auto training = TrainingBatch(kDims, 400);
  const auto stream =
      DriftingEvalStream(kDims, static_cast<int>(kWarmup + kTail), 1);

  auto original = LearnedDetector(EventfulConfig(), training);
  Drive(original.get(), stream, 0, kWarmup, 64);
  const std::string bytes = SaveToString(*original);
  const auto expected = Drive(original.get(), stream, kWarmup,
                              kWarmup + kTail, 64);
  // The warm-up provably crossed state-mutating events (else this test
  // would not cover them).
  EXPECT_GT(original->stats().evolution_rounds, 0u);
  EXPECT_GT(original->stats().os_growth_runs, 0u);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    SpotDetector restored{SpotConfig{}};
    ASSERT_TRUE(LoadFromString(&restored, bytes));
    ASSERT_TRUE(restored.learned());
    restored.set_num_shards(shards);
    const auto got =
        Drive(&restored, stream, kWarmup, kWarmup + kTail, 64);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ExpectIdentical(expected[i], got[i], i, "restored");
    }
    ExpectSameStats(original->stats(), restored.stats(), "restored");
  }
}

// Saving from a sharded detector and restoring must behave exactly like
// saving from a sequential one: the checkpoint is shard-agnostic.
TEST(CheckpointTest, SaveUnderShardedEngineEqualsSequentialSave) {
  const int kDims = 8;
  const auto training = TrainingBatch(kDims, 400);
  const auto stream = DriftingEvalStream(kDims, 3000, 2);

  auto sequential = LearnedDetector(EventfulConfig(), training);
  auto sharded = LearnedDetector(EventfulConfig(), training);
  sharded->set_num_shards(4);
  Drive(sequential.get(), stream, 0, 1000, 64);
  Drive(sharded.get(), stream, 0, 1000, 64);

  // Align the one config field that legitimately differs (the throughput
  // knob itself); every byte of actual detector state must then match.
  sharded->set_num_shards(1);
  EXPECT_EQ(SaveToString(*sequential), SaveToString(*sharded));
}

TEST(CheckpointTest, RepeatedSaveLoadSaveIsByteStable) {
  const auto training = TrainingBatch(6, 300);
  const auto stream = DriftingEvalStream(6, 1200, 3);
  auto det = LearnedDetector(EventfulConfig(), training);
  Drive(det.get(), stream, 0, 1200, 32);

  const std::string first = SaveToString(*det);
  SpotDetector restored{SpotConfig{}};
  ASSERT_TRUE(LoadFromString(&restored, first));
  EXPECT_EQ(SaveToString(restored), first);
}

TEST(CheckpointTest, RoundTripsFullConfigIncludingNestedLearningKnobs) {
  SpotConfig cfg = EventfulConfig();
  cfg.unsupervised.moga.generations = 123;
  cfg.unsupervised.outlying_degree.threshold_scale = 2.25;
  cfg.supervised.top_subspaces_per_example = 7;
  cfg.evolution.offspring = 21;
  cfg.evolution.mutation_prob = 0.125;
  cfg.num_shards = 3;
  auto det = LearnedDetector(cfg, TrainingBatch(5, 200));
  const std::string bytes = SaveToString(*det);

  SpotDetector restored{SpotConfig{}};
  ASSERT_TRUE(LoadFromString(&restored, bytes));
  const SpotConfig& rc = restored.config();
  EXPECT_EQ(rc.unsupervised.moga.generations, 123);
  EXPECT_DOUBLE_EQ(rc.unsupervised.outlying_degree.threshold_scale, 2.25);
  EXPECT_EQ(rc.supervised.top_subspaces_per_example, 7u);
  EXPECT_EQ(rc.evolution.offspring, 21u);
  EXPECT_DOUBLE_EQ(rc.evolution.mutation_prob, 0.125);
  EXPECT_EQ(rc.num_shards, 3u);
  EXPECT_EQ(restored.sst().TotalSize(), det->sst().TotalSize());
  EXPECT_EQ(restored.TrackedSubspaces(), det->TrackedSubspaces());
}

TEST(CheckpointTest, UnlearnedDetectorRoundTrips) {
  SpotConfig cfg;
  cfg.omega = 777;
  SpotDetector det(cfg);
  const std::string bytes = SaveToString(det);

  SpotDetector restored{SpotConfig{}};
  ASSERT_TRUE(LoadFromString(&restored, bytes));
  EXPECT_FALSE(restored.learned());
  EXPECT_EQ(restored.config().omega, 777u);
}

TEST(CheckpointTest, RejectsGarbageAndTruncation) {
  const auto training = TrainingBatch(5, 200);
  auto det = LearnedDetector(EventfulConfig(), training);
  const std::string bytes = SaveToString(*det);

  SpotDetector victim{SpotConfig{}};
  EXPECT_FALSE(LoadFromString(&victim, ""));
  EXPECT_FALSE(victim.learned());
  EXPECT_FALSE(LoadFromString(&victim, "this is not a checkpoint at all"));
  EXPECT_FALSE(victim.learned());
  // Truncations at several depths: header, config, mid-state, trailer.
  for (const std::size_t keep :
       {std::size_t{4}, std::size_t{40}, bytes.size() / 2,
        bytes.size() - 1}) {
    EXPECT_FALSE(LoadFromString(&victim, bytes.substr(0, keep)))
        << "kept " << keep << " of " << bytes.size();
    EXPECT_FALSE(victim.learned());
  }
  // A valid image still loads after all those failures.
  EXPECT_TRUE(LoadFromString(&victim, bytes));
  EXPECT_TRUE(victim.learned());
}

TEST(CheckpointTest, FileRoundTripViaAtomicRename) {
  const std::string path =
      testing::TempDir() + "spot_checkpoint_test.ckpt";
  const auto training = TrainingBatch(5, 200);
  const auto stream = DriftingEvalStream(5, 800, 4);
  auto det = LearnedDetector(EventfulConfig(), training);
  Drive(det.get(), stream, 0, 500, 32);
  ASSERT_TRUE(SaveCheckpointFile(*det, path));

  const auto expected = Drive(det.get(), stream, 500, 800, 32);
  SpotDetector restored{SpotConfig{}};
  ASSERT_TRUE(LoadCheckpointFile(&restored, path));
  const auto got = Drive(&restored, stream, 500, 800, 32);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ExpectIdentical(expected[i], got[i], i, "file");
  }
  std::remove(path.c_str());
  EXPECT_FALSE(LoadCheckpointFile(&restored, path + ".does-not-exist"));
}

/// One supervised round at the current position: label the worst retained
/// outliers by id plus one fresh example (the detector's own dimension).
bool FeedbackRound(SpotDetector* det) {
  std::vector<std::uint64_t> ids;
  for (const TopKEntry& e : det->QueryTopK(4)) ids.push_back(e.point_id);
  const std::vector<double> example(
      static_cast<std::size_t>(det->dimension()), 3.5);
  return det->ApplyFeedback(ids, {example});
}

// The feedback & query plane survives a checkpoint (DESIGN.md Section 11):
// the top-k retention window round-trips entry for entry (ids, ticks, raw
// scores, values, findings), the feedback_rounds counter persists, and a
// post-restore feedback round — whose RNG draw and supervised SST growth
// depend on everything before it — leaves both detectors bit-identical.
TEST(CheckpointTest, TopKWindowAndFeedbackStateRoundTrip) {
  const int kDims = 6;
  const auto training = TrainingBatch(kDims, 300);
  const auto stream = DriftingEvalStream(kDims, 2000, 5);
  auto original = LearnedDetector(EventfulConfig(), training);
  Drive(original.get(), stream, 0, 800, 64);
  ASSERT_TRUE(FeedbackRound(original.get()));
  Drive(original.get(), stream, 800, 1000, 64);
  ASSERT_GT(original->topk().size(), 0u);
  EXPECT_EQ(original->stats().feedback_rounds, 1u);

  const std::string bytes = SaveToString(*original);
  SpotDetector restored{SpotConfig{}};
  ASSERT_TRUE(LoadFromString(&restored, bytes));
  EXPECT_EQ(restored.stats().feedback_rounds, 1u);

  const auto want = original->QueryTopK(16);
  const auto got = restored.QueryTopK(16);
  ASSERT_EQ(got.size(), want.size());
  ASSERT_GT(got.size(), 0u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].point_id, want[i].point_id) << i;
    EXPECT_EQ(got[i].tick, want[i].tick) << i;
    EXPECT_EQ(got[i].score, want[i].score) << i;
    EXPECT_EQ(got[i].decayed_score, want[i].decayed_score) << i;
    EXPECT_EQ(got[i].values, want[i].values) << i;
    ASSERT_EQ(got[i].findings.size(), want[i].findings.size()) << i;
  }
  // Feedback-by-id resolves through the restored window too.
  EXPECT_NE(restored.topk().Values(got[0].point_id), nullptr);

  // A feedback round on each side must consume the same RNG draw and grow
  // the same subspaces: the verdict tails stay identical point by point.
  ASSERT_TRUE(FeedbackRound(original.get()));
  ASSERT_TRUE(FeedbackRound(&restored));
  EXPECT_EQ(restored.stats().feedback_rounds, 2u);
  const auto expected = Drive(original.get(), stream, 1000, 2000, 64);
  const auto tail = Drive(&restored, stream, 1000, 2000, 64);
  ASSERT_EQ(tail.size(), expected.size());
  for (std::size_t i = 0; i < tail.size(); ++i) {
    ExpectIdentical(expected[i], tail[i], i, "post-feedback");
  }
}

// Pre-feedback-plane checkpoints (format v1) must be refused outright:
// the v2 image carries topk_capacity, feedback_rounds and the top-k
// window, and guessing defaults for them would silently fork the verdict
// stream the checkpoint promises to reproduce.
TEST(CheckpointTest, RejectsOtherFormatVersions) {
  const auto training = TrainingBatch(5, 200);
  auto det = LearnedDetector(EventfulConfig(), training);
  std::string bytes = SaveToString(*det);

  // The format version is the byte right after the 8-byte header magic.
  for (const char version : {char{1}, char{3}, char{0}}) {
    std::string forged = bytes;
    forged[8] = version;
    SpotDetector victim{SpotConfig{}};
    EXPECT_FALSE(LoadFromString(&victim, forged))
        << "accepted format version " << static_cast<int>(version);
    EXPECT_FALSE(victim.learned());
  }
}

// ------------------------------------------------- per-layer round trips --

TEST(CheckpointLayerTest, RngResumesItsExactStream) {
  Rng a(42);
  for (int i = 0; i < 100; ++i) a.NextGaussian();  // park a spare gaussian

  std::ostringstream out;
  CheckpointWriter w(&out);
  a.SaveState(w);
  ASSERT_TRUE(w.ok());

  Rng b(7);  // different seed: state must come from the checkpoint alone
  std::istringstream in(out.str());
  CheckpointReader r(&in);
  ASSERT_TRUE(b.LoadState(r));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
    EXPECT_EQ(a.NextGaussian(), b.NextGaussian());
  }
}

TEST(CheckpointLayerTest, ReservoirResumesExactAcceptanceSequence) {
  ReservoirSample a(16, 5);
  Rng data(9);
  std::vector<double> row(3);
  for (int i = 0; i < 200; ++i) {
    for (double& v : row) v = data.NextDouble();
    a.Add(row);
  }

  std::ostringstream out;
  CheckpointWriter w(&out);
  a.SaveState(w);
  ReservoirSample b(16, 999);
  std::istringstream in(out.str());
  CheckpointReader r(&in);
  ASSERT_TRUE(b.LoadState(r));
  EXPECT_EQ(a.Items(), b.Items());
  EXPECT_EQ(a.seen(), b.seen());
  for (int i = 0; i < 200; ++i) {
    for (double& v : row) v = data.NextDouble();
    a.Add(row);
    b.Add(row);
  }
  EXPECT_EQ(a.Items(), b.Items());
}

TEST(CheckpointLayerTest, ReservoirRejectsCapacityMismatch) {
  ReservoirSample a(16, 5);
  std::ostringstream out;
  CheckpointWriter w(&out);
  a.SaveState(w);
  ReservoirSample b(8, 5);
  std::istringstream in(out.str());
  CheckpointReader r(&in);
  EXPECT_FALSE(b.LoadState(r));
}

TEST(CheckpointLayerTest, PageHinkleyResumesAccumulatedStatistic) {
  PageHinkley a(0.01, 4.0);
  Rng noise(3);
  for (int i = 0; i < 500; ++i) a.Add(noise.NextBernoulli(0.05) ? 1.0 : 0.0);

  std::ostringstream out;
  CheckpointWriter w(&out);
  a.SaveState(w);
  PageHinkley b(9.9, 9.9);  // parameters come from the checkpoint
  std::istringstream in(out.str());
  CheckpointReader r(&in);
  ASSERT_TRUE(b.LoadState(r));
  EXPECT_EQ(a.statistic(), b.statistic());
  EXPECT_EQ(a.mean(), b.mean());
  for (int i = 0; i < 300; ++i) {
    const double x = noise.NextBernoulli(0.4) ? 1.0 : 0.0;
    EXPECT_EQ(a.Add(x), b.Add(x)) << "step " << i;
  }
  EXPECT_EQ(a.drifts(), b.drifts());
}

}  // namespace
}  // namespace spot
