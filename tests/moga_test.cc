// Unit tests of src/moga: dominance, fast non-dominated sort, crowding,
// genetic operators, the NSGA-II loop, and MOGA vs exhaustive search.

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "grid/partition.h"
#include "moga/moga_search.h"
#include "moga/nsga2.h"
#include "moga/objectives.h"
#include "moga/operators.h"
#include "stream/synthetic.h"

namespace spot {
namespace {

ObjectiveVector Obj(std::initializer_list<double> v) {
  ObjectiveVector o;
  o.values = v;
  return o;
}

// ---------------------------------------------------------- Dominance ----

TEST(DominanceTest, StrictDominance) {
  EXPECT_TRUE(Dominates(Obj({1.0, 1.0}), Obj({2.0, 2.0})));
  EXPECT_TRUE(Dominates(Obj({1.0, 2.0}), Obj({2.0, 2.0})));
  EXPECT_FALSE(Dominates(Obj({2.0, 2.0}), Obj({1.0, 1.0})));
}

TEST(DominanceTest, IncomparableAndEqual) {
  EXPECT_FALSE(Dominates(Obj({1.0, 3.0}), Obj({3.0, 1.0})));
  EXPECT_FALSE(Dominates(Obj({3.0, 1.0}), Obj({1.0, 3.0})));
  EXPECT_FALSE(Dominates(Obj({2.0, 2.0}), Obj({2.0, 2.0})));
}

// ------------------------------------------------ FastNonDominatedSort ----

TEST(SortTest, TwoFrontsSeparated) {
  const std::vector<ObjectiveVector> objs = {
      Obj({1.0, 4.0}),  // front 0
      Obj({4.0, 1.0}),  // front 0
      Obj({2.0, 2.0}),  // front 0
      Obj({5.0, 5.0}),  // front 1 (dominated by all above)
  };
  std::vector<int> ranks;
  const auto fronts = FastNonDominatedSort(objs, &ranks);
  ASSERT_EQ(fronts.size(), 2u);
  EXPECT_EQ(fronts[0].size(), 3u);
  EXPECT_EQ(fronts[1].size(), 1u);
  EXPECT_EQ(ranks[3], 1);
  EXPECT_EQ(ranks[0], 0);
}

TEST(SortTest, ChainGivesOneFrontPerElement) {
  const std::vector<ObjectiveVector> objs = {
      Obj({1.0, 1.0}), Obj({2.0, 2.0}), Obj({3.0, 3.0})};
  std::vector<int> ranks;
  const auto fronts = FastNonDominatedSort(objs, &ranks);
  ASSERT_EQ(fronts.size(), 3u);
  EXPECT_EQ(ranks, (std::vector<int>{0, 1, 2}));
}

TEST(SortTest, AllIncomparableSingleFront) {
  const std::vector<ObjectiveVector> objs = {
      Obj({1.0, 3.0}), Obj({2.0, 2.0}), Obj({3.0, 1.0})};
  std::vector<int> ranks;
  const auto fronts = FastNonDominatedSort(objs, &ranks);
  ASSERT_EQ(fronts.size(), 1u);
  EXPECT_EQ(fronts[0].size(), 3u);
}

TEST(SortTest, EmptyInput) {
  std::vector<int> ranks;
  const auto fronts = FastNonDominatedSort({}, &ranks);
  EXPECT_EQ(fronts.size(), 1u);
  EXPECT_TRUE(fronts[0].empty());
  EXPECT_TRUE(ranks.empty());
}

TEST(SortTest, RankInvariant_NoMemberDominatedWithinFront) {
  Rng rng(5);
  std::vector<ObjectiveVector> objs;
  for (int i = 0; i < 60; ++i) {
    objs.push_back(Obj({rng.NextDouble(), rng.NextDouble(), rng.NextDouble()}));
  }
  std::vector<int> ranks;
  const auto fronts = FastNonDominatedSort(objs, &ranks);
  for (const auto& front : fronts) {
    for (std::size_t a : front) {
      for (std::size_t b : front) {
        EXPECT_FALSE(Dominates(objs[a], objs[b]));
      }
    }
  }
  // Every front-1+ member is dominated by someone in the previous front.
  for (std::size_t f = 1; f < fronts.size(); ++f) {
    for (std::size_t q : fronts[f]) {
      bool dominated = false;
      for (std::size_t p : fronts[f - 1]) {
        if (Dominates(objs[p], objs[q])) {
          dominated = true;
          break;
        }
      }
      EXPECT_TRUE(dominated);
    }
  }
}

// ----------------------------------------------------------- Crowding ----

TEST(CrowdingTest, BoundariesAreInfinite) {
  const std::vector<ObjectiveVector> objs = {
      Obj({1.0, 4.0}), Obj({2.0, 3.0}), Obj({3.0, 2.0}), Obj({4.0, 1.0})};
  const std::vector<std::size_t> front = {0, 1, 2, 3};
  const auto crowd = CrowdingDistances(objs, front);
  EXPECT_TRUE(std::isinf(crowd[0]));
  EXPECT_TRUE(std::isinf(crowd[3]));
  EXPECT_FALSE(std::isinf(crowd[1]));
  EXPECT_FALSE(std::isinf(crowd[2]));
}

TEST(CrowdingTest, IsolatedPointGetsLargerDistance) {
  // Middle points: one crowded pair, one isolated.
  const std::vector<ObjectiveVector> objs = {
      Obj({0.0, 10.0}), Obj({1.0, 9.0}), Obj({1.1, 8.9}), Obj({5.0, 5.0}),
      Obj({10.0, 0.0})};
  const std::vector<std::size_t> front = {0, 1, 2, 3, 4};
  const auto crowd = CrowdingDistances(objs, front);
  EXPECT_GT(crowd[3], crowd[2]);  // isolated > crowded
}

TEST(CrowdingTest, SmallFrontsAllInfinite) {
  const std::vector<ObjectiveVector> objs = {Obj({1.0}), Obj({2.0})};
  const auto crowd = CrowdingDistances(objs, {0, 1});
  EXPECT_TRUE(std::isinf(crowd[0]));
  EXPECT_TRUE(std::isinf(crowd[1]));
}

// ---------------------------------------------------------- Operators ----

TEST(OperatorsTest, UniformCrossoverBitsComeFromParents) {
  Rng rng(1);
  const Subspace a = Subspace::FromIndices({0, 1, 2});
  const Subspace b = Subspace::FromIndices({4, 5});
  for (int i = 0; i < 50; ++i) {
    const Subspace child = UniformCrossover(a, b, rng);
    // Any set bit of the child is set in a or b.
    EXPECT_EQ(child.bits() & ~(a.bits() | b.bits()), 0u);
  }
}

TEST(OperatorsTest, CrossoverOfIdenticalParentsIsIdentity) {
  Rng rng(2);
  const Subspace a = Subspace::FromIndices({1, 3, 5});
  EXPECT_EQ(UniformCrossover(a, a, rng), a);
  EXPECT_EQ(OnePointCrossover(a, a, 8, rng), a);
}

TEST(OperatorsTest, MutationFlipRateRoughlyRespected) {
  Rng rng(3);
  const int num_dims = 32;
  int flips = 0;
  const int trials = 2000;
  const Subspace s;
  for (int i = 0; i < trials; ++i) {
    flips += BitFlipMutation(s, num_dims, 0.1, rng).Dimension();
  }
  const double rate =
      static_cast<double>(flips) / (static_cast<double>(trials) * num_dims);
  EXPECT_NEAR(rate, 0.1, 0.01);
}

TEST(OperatorsTest, MutationZeroProbIsIdentity) {
  Rng rng(4);
  const Subspace s = Subspace::FromIndices({2, 7});
  EXPECT_EQ(BitFlipMutation(s, 16, 0.0, rng), s);
}

TEST(OperatorsTest, RepairEnforcesBounds) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const Subspace raw(rng.NextUint64());
    const Subspace fixed = Repair(raw, 20, 3, rng);
    EXPECT_GE(fixed.Dimension(), 1);
    EXPECT_LE(fixed.Dimension(), 3);
    EXPECT_EQ(fixed.bits() >> 20, 0u);  // inside the attribute domain
  }
}

TEST(OperatorsTest, RepairOfEmptyAddsOneBit) {
  Rng rng(6);
  const Subspace fixed = Repair(Subspace(), 10, 3, rng);
  EXPECT_EQ(fixed.Dimension(), 1);
}

TEST(OperatorsTest, RepairKeepsValidSubspaceIntact) {
  Rng rng(7);
  const Subspace s = Subspace::FromIndices({2, 5});
  EXPECT_EQ(Repair(s, 10, 3, rng), s);
}

TEST(OperatorsTest, RandomSubspaceWithinBounds) {
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    const Subspace s = RandomSubspace(15, 4, rng);
    EXPECT_GE(s.Dimension(), 1);
    EXPECT_LE(s.Dimension(), 4);
  }
}

// -------------------------------------------- BatchSparsityObjectives ----

class ObjectivesFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // 200 clustered points in dims {0,1}; dim 2 uniform noise. A lone point
    // sits far away in dim 0: subspace {0} should score it sparse.
    Rng rng(42);
    for (int i = 0; i < 200; ++i) {
      data_.push_back({0.2 + 0.02 * rng.NextGaussian(),
                       0.7 + 0.02 * rng.NextGaussian(), rng.NextDouble()});
    }
    data_.push_back({0.95, 0.7, 0.5});  // projected outlier in {0}
    partition_ = std::make_unique<Partition>(3, 10, 0.0, 1.0);
  }

  std::vector<std::vector<double>> data_;
  std::unique_ptr<Partition> partition_;
};

TEST_F(ObjectivesFixture, OutlierSubspaceScoresSparser) {
  const std::vector<std::size_t> target = {data_.size() - 1};
  BatchSparsityObjectives obj(partition_.get(), &data_, target);
  const double score_outlying = obj.SparsityScore(Subspace::FromIndices({0}));
  const double score_normal = obj.SparsityScore(Subspace::FromIndices({1}));
  EXPECT_LT(score_outlying, score_normal);
}

TEST_F(ObjectivesFixture, ObjectiveVectorLayout) {
  BatchSparsityObjectives obj(partition_.get(), &data_);
  const ObjectiveVector v = obj.Evaluate(Subspace::FromIndices({0, 2}));
  ASSERT_EQ(v.values.size(), 3u);
  EXPECT_DOUBLE_EQ(v.values[2], 2.0);  // f3 = |s|
  EXPECT_GE(v.values[0], 0.0);
  EXPECT_GE(v.values[1], 0.0);
}

TEST_F(ObjectivesFixture, MemoizationCountsDistinctOnly) {
  BatchSparsityObjectives obj(partition_.get(), &data_);
  obj.Evaluate(Subspace::FromIndices({0}));
  obj.Evaluate(Subspace::FromIndices({0}));
  obj.Evaluate(Subspace::FromIndices({1}));
  EXPECT_EQ(obj.evaluation_count(), 2u);
}

TEST_F(ObjectivesFixture, DefaultTargetsAreAllPoints) {
  BatchSparsityObjectives obj(partition_.get(), &data_);
  // Mean RD over all points is well-defined and positive.
  const ObjectiveVector v = obj.Evaluate(Subspace::FromIndices({1}));
  EXPECT_GT(v.values[0], 0.0);
}

// --------------------------------------------------------------- Nsga2 ----

TEST_F(ObjectivesFixture, Nsga2FindsThePlantedSubspace) {
  const std::vector<std::size_t> target = {data_.size() - 1};
  BatchSparsityObjectives obj(partition_.get(), &data_, target);
  Nsga2Config cfg;
  cfg.num_dims = 3;
  cfg.max_dimension = 2;
  cfg.population_size = 20;
  cfg.generations = 15;
  cfg.seed = 5;
  Nsga2 nsga2(cfg, &obj);
  const auto pop = nsga2.Run();
  ASSERT_EQ(pop.size(), 20u);
  // The singleton {0} must appear in the final Pareto front.
  const auto front = Nsga2::ParetoFront(pop);
  bool found = false;
  for (const auto& ind : front) {
    if (ind.subspace == Subspace::FromIndices({0})) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ObjectivesFixture, Nsga2RespectsDimensionCap) {
  BatchSparsityObjectives obj(partition_.get(), &data_);
  Nsga2Config cfg;
  cfg.num_dims = 3;
  cfg.max_dimension = 1;
  cfg.population_size = 10;
  cfg.generations = 5;
  Nsga2 nsga2(cfg, &obj);
  for (const auto& ind : nsga2.Run()) {
    EXPECT_EQ(ind.subspace.Dimension(), 1);
  }
}

TEST_F(ObjectivesFixture, Nsga2SeedsSurviveWhenGood) {
  const std::vector<std::size_t> target = {data_.size() - 1};
  BatchSparsityObjectives obj(partition_.get(), &data_, target);
  Nsga2Config cfg;
  cfg.num_dims = 3;
  cfg.max_dimension = 2;
  cfg.population_size = 12;
  cfg.generations = 3;
  Nsga2 nsga2(cfg, &obj);
  const auto pop = nsga2.Run({Subspace::FromIndices({0})});
  bool present = false;
  for (const auto& ind : pop) {
    if (ind.subspace == Subspace::FromIndices({0})) present = true;
  }
  EXPECT_TRUE(present);
}

TEST_F(ObjectivesFixture, ParetoFrontDeduplicates) {
  BatchSparsityObjectives obj(partition_.get(), &data_);
  std::vector<Individual> pop(4);
  pop[0].subspace = Subspace::FromIndices({0});
  pop[0].rank = 0;
  pop[1].subspace = Subspace::FromIndices({0});
  pop[1].rank = 0;
  pop[2].subspace = Subspace::FromIndices({1});
  pop[2].rank = 0;
  pop[3].subspace = Subspace::FromIndices({2});
  pop[3].rank = 1;
  const auto front = Nsga2::ParetoFront(pop);
  EXPECT_EQ(front.size(), 2u);
}

// ---------------------------------------------------------- MogaSearch ----

TEST_F(ObjectivesFixture, MogaMatchesExhaustiveTopChoice) {
  const std::vector<std::size_t> target = {data_.size() - 1};
  BatchSparsityObjectives obj(partition_.get(), &data_, target);
  const auto exhaustive = ExhaustiveTopSparse(&obj, 3, 2, 3);
  ASSERT_FALSE(exhaustive.empty());

  Nsga2Config cfg;
  cfg.num_dims = 3;
  cfg.max_dimension = 2;
  cfg.population_size = 16;
  cfg.generations = 10;
  cfg.seed = 77;
  MogaSearch search(cfg, &obj);
  const auto top = search.FindTopSparse(3);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top.front().subspace, exhaustive.front().subspace);
  EXPECT_NEAR(top.front().score, exhaustive.front().score, 1e-12);
}

TEST_F(ObjectivesFixture, FindTopSparseOrderedAndBounded) {
  BatchSparsityObjectives obj(partition_.get(), &data_);
  Nsga2Config cfg;
  cfg.num_dims = 3;
  cfg.max_dimension = 2;
  cfg.population_size = 16;
  cfg.generations = 5;
  MogaSearch search(cfg, &obj);
  const auto top = search.FindTopSparse(4);
  EXPECT_LE(top.size(), 4u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i - 1].score, top[i].score);
  }
}

TEST(MogaLargeTest, RecoversPlantedSubspaceInTwentyDims) {
  // 20-dim stream with outliers planted in a fixed 2-dim subspace; MOGA
  // over the batch (targeted at a planted outlier) should recover it.
  stream::SyntheticConfig scfg;
  scfg.dimension = 20;
  scfg.outlier_probability = 0.0;
  scfg.seed = 123;
  stream::GaussianStream gen(scfg);
  auto batch = ValuesOf(Take(gen, 400));
  // Plant one outlier anomalous exactly in dims {4, 9}.
  std::vector<double> outlier = batch.front();
  outlier[4] = 0.999;
  outlier[9] = 0.001;
  batch.push_back(outlier);

  const Partition part(20, 10, 0.0, 1.0);
  BatchSparsityObjectives obj(&part, &batch, {batch.size() - 1});
  Nsga2Config cfg;
  cfg.num_dims = 20;
  cfg.max_dimension = 3;
  cfg.population_size = 40;
  cfg.generations = 25;
  cfg.seed = 9;
  MogaSearch search(cfg, &obj);
  const auto top = search.FindTopSparse(8);
  ASSERT_FALSE(top.empty());
  // Some top subspace must involve dim 4 or dim 9.
  bool involves_planted = false;
  for (const auto& ss : top) {
    if (ss.subspace.Contains(4) || ss.subspace.Contains(9)) {
      involves_planted = true;
      break;
    }
  }
  EXPECT_TRUE(involves_planted);
}

}  // namespace
}  // namespace spot
