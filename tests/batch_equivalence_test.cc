// Equivalence tests of the batch detection layer: ProcessBatch must be a
// pure amortization of Process — identical outlier labels, findings and
// scores for every batch size — and the fused synapse path must stay within
// its one-hash-probe-per-subspace budget.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "eval/harness.h"
#include "eval/presets.h"
#include "stream/replay.h"
#include "stream/synthetic.h"

namespace spot {
namespace {

std::vector<LabeledPoint> EvalStream(int dims, int n, std::uint64_t seed) {
  stream::SyntheticConfig scfg;
  scfg.dimension = dims;
  scfg.outlier_probability = 0.02;
  scfg.concept_seed = 700;
  scfg.seed = seed;
  stream::GaussianStream gen(scfg);
  return Take(gen, static_cast<std::size_t>(n));
}

std::vector<std::vector<double>> TrainingBatch(int dims, int n) {
  stream::SyntheticConfig scfg;
  scfg.dimension = dims;
  scfg.outlier_probability = 0.0;
  scfg.concept_seed = 700;
  scfg.seed = 701;
  stream::GaussianStream gen(scfg);
  return ValuesOf(Take(gen, static_cast<std::size_t>(n)));
}

/// Builds a learned detector on the shared concept. Every equivalence run
/// must construct its own (Process mutates the decayed synapses).
std::unique_ptr<SpotDetector> LearnedDetector(
    const std::vector<std::vector<double>>& training) {
  auto det = std::make_unique<SpotDetector>(eval::FastTestConfig());
  EXPECT_TRUE(det->Learn(training));
  return det;
}

void ExpectIdentical(const SpotResult& a, const SpotResult& b,
                     std::size_t point_idx) {
  EXPECT_EQ(a.is_outlier, b.is_outlier) << "point " << point_idx;
  // Bit-identical, not approximately equal: the batch path must run the
  // exact same arithmetic.
  EXPECT_EQ(a.score, b.score) << "point " << point_idx;
  ASSERT_EQ(a.findings.size(), b.findings.size()) << "point " << point_idx;
  for (std::size_t f = 0; f < a.findings.size(); ++f) {
    EXPECT_EQ(a.findings[f].subspace.bits(), b.findings[f].subspace.bits())
        << "point " << point_idx << " finding " << f;
    EXPECT_EQ(a.findings[f].pcs.rd, b.findings[f].pcs.rd);
    EXPECT_EQ(a.findings[f].pcs.irsd, b.findings[f].pcs.irsd);
    EXPECT_EQ(a.findings[f].pcs.count, b.findings[f].pcs.count);
  }
}

TEST(BatchEquivalenceTest, ProcessBatchMatchesSequentialProcess) {
  const int kDims = 10;
  const auto training = TrainingBatch(kDims, 600);
  const auto stream = EvalStream(kDims, 1500, 702);

  auto sequential = LearnedDetector(training);
  auto batched = LearnedDetector(training);

  std::vector<SpotResult> seq_results;
  seq_results.reserve(stream.size());
  for (const auto& p : stream) {
    seq_results.push_back(sequential->Process(p.point));
  }

  // Uneven chunk size so batch boundaries land everywhere in the stream.
  const std::size_t kChunk = 97;
  std::vector<SpotResult> batch_results;
  std::vector<DataPoint> chunk;
  for (std::size_t start = 0; start < stream.size(); start += kChunk) {
    chunk.clear();
    for (std::size_t i = start; i < std::min(start + kChunk, stream.size());
         ++i) {
      chunk.push_back(stream[i].point);
    }
    for (auto& r : batched->ProcessBatch(chunk)) {
      batch_results.push_back(std::move(r));
    }
  }

  ASSERT_EQ(seq_results.size(), batch_results.size());
  for (std::size_t i = 0; i < seq_results.size(); ++i) {
    ExpectIdentical(seq_results[i], batch_results[i], i);
  }
  // Identical side effects too, not just verdicts.
  EXPECT_EQ(sequential->stats().outliers_detected,
            batched->stats().outliers_detected);
  EXPECT_EQ(sequential->stats().os_growth_runs,
            batched->stats().os_growth_runs);
  EXPECT_EQ(sequential->TrackedSubspaces(), batched->TrackedSubspaces());
}

TEST(BatchEquivalenceTest, VerdictsInvariantAcrossBatchSizes) {
  const int kDims = 8;
  const auto training = TrainingBatch(kDims, 500);
  const auto stream = EvalStream(kDims, 800, 703);

  std::vector<std::vector<SpotResult>> runs;
  for (const std::size_t chunk_size : {std::size_t{1}, std::size_t{64},
                                       std::size_t{800}}) {
    auto det = LearnedDetector(training);
    std::vector<SpotResult> results;
    std::vector<DataPoint> chunk;
    for (std::size_t start = 0; start < stream.size(); start += chunk_size) {
      chunk.clear();
      for (std::size_t i = start;
           i < std::min(start + chunk_size, stream.size()); ++i) {
        chunk.push_back(stream[i].point);
      }
      for (auto& r : det->ProcessBatch(chunk)) {
        results.push_back(std::move(r));
      }
    }
    runs.push_back(std::move(results));
  }
  for (std::size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[0].size(), runs[run].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      ExpectIdentical(runs[0][i], runs[run][i], i);
    }
  }
}

TEST(BatchEquivalenceTest, AdapterBatchMatchesAdapterSequential) {
  const int kDims = 8;
  const auto training = TrainingBatch(kDims, 500);
  const auto stream = EvalStream(kDims, 600, 704);

  auto det_a = LearnedDetector(training);
  auto det_b = LearnedDetector(training);
  SpotStreamAdapter seq(det_a.get());
  SpotStreamAdapter bat(det_b.get());

  std::vector<DataPoint> points;
  points.reserve(stream.size());
  for (const auto& p : stream) points.push_back(p.point);

  std::vector<Detection> seq_verdicts;
  for (const auto& p : points) seq_verdicts.push_back(seq.Process(p));
  const std::vector<Detection> bat_verdicts = bat.ProcessBatch(points);

  ASSERT_EQ(seq_verdicts.size(), bat_verdicts.size());
  for (std::size_t i = 0; i < seq_verdicts.size(); ++i) {
    EXPECT_EQ(seq_verdicts[i].is_outlier, bat_verdicts[i].is_outlier);
    EXPECT_EQ(seq_verdicts[i].score, bat_verdicts[i].score);
    ASSERT_EQ(seq_verdicts[i].outlying_subspaces.size(),
              bat_verdicts[i].outlying_subspaces.size());
  }
}

TEST(BatchEquivalenceTest, HarnessMetricsInvariantAcrossBatchSizes) {
  const int kDims = 8;
  const auto training = TrainingBatch(kDims, 500);
  const auto stream = EvalStream(kDims, 900, 705);

  eval::RunResult per_point;
  eval::RunResult batched;
  {
    auto det = LearnedDetector(training);
    SpotStreamAdapter adapter(det.get());
    stream::ReplaySource replay(stream);
    eval::RunOptions opts;
    opts.batch_size = 1;
    opts.collect_scores = true;
    per_point = eval::RunDetection(adapter, replay, stream.size(), opts);
  }
  {
    auto det = LearnedDetector(training);
    SpotStreamAdapter adapter(det.get());
    stream::ReplaySource replay(stream);
    eval::RunOptions opts;
    opts.batch_size = 128;
    opts.collect_scores = true;
    batched = eval::RunDetection(adapter, replay, stream.size(), opts);
  }
  EXPECT_EQ(per_point.confusion.tp(), batched.confusion.tp());
  EXPECT_EQ(per_point.confusion.fp(), batched.confusion.fp());
  EXPECT_EQ(per_point.confusion.fn(), batched.confusion.fn());
  EXPECT_EQ(per_point.confusion.tn(), batched.confusion.tn());
  EXPECT_EQ(per_point.auc, batched.auc);
  ASSERT_EQ(per_point.scores.size(), batched.scores.size());
  for (std::size_t i = 0; i < per_point.scores.size(); ++i) {
    EXPECT_EQ(per_point.scores[i], batched.scores[i]);
  }
}

// Acceptance budget of the fused hot path: with growth/evolution/fringe off,
// every processed point performs exactly one cell-index hash probe per
// tracked subspace (the fused AddAndQuery) — not two (Add + Query).
TEST(BatchEquivalenceTest, HotPathCostsOneProbePerTrackedSubspace) {
  const int kDims = 8;
  SpotConfig cfg = eval::FastTestConfig();
  cfg.os_update_every = 0;   // no OS growth mid-stream
  cfg.evolution_period = 0;  // no CS evolution
  cfg.fringe_factor = 0.0;   // no fringe neighborhood probes
  cfg.compaction_period = 0; // no compaction sweeps mid-measurement
  SpotDetector det(cfg);
  ASSERT_TRUE(det.Learn(TrainingBatch(kDims, 500)));

  const auto stream = EvalStream(kDims, 400, 706);
  const std::size_t tracked = det.TrackedSubspaces();
  ASSERT_GT(tracked, 0u);

  const std::uint64_t probes_before = det.synapses().hash_probes();
  std::vector<DataPoint> points;
  for (const auto& p : stream) points.push_back(p.point);
  det.ProcessBatch(points);
  const std::uint64_t probes_after = det.synapses().hash_probes();

  EXPECT_EQ(probes_after - probes_before, points.size() * tracked);
}

}  // namespace
}  // namespace spot
