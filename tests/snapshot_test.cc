// Tests of the SST / config text snapshot (src/core/snapshot.h).

#include <string>

#include <gtest/gtest.h>

#include "core/snapshot.h"
#include "subspace/lattice.h"

namespace spot {
namespace {

Sst MakeSst() {
  Sst sst(8, 8);
  sst.SetFixed(EnumerateLattice(4, 1));
  sst.AddClustering(Subspace::FromIndices({0, 2}), 0.125);
  sst.AddClustering(Subspace::FromIndices({1, 3}), 0.5);
  sst.AddOutlierDriven(Subspace::FromIndices({2, 3}), 0.001);
  return sst;
}

TEST(SstSnapshotTest, RoundTripPreservesEverything) {
  const Sst original = MakeSst();
  const std::string text = ExportSst(original);

  Sst restored(8, 8);
  ASSERT_TRUE(ImportSst(text, &restored));
  EXPECT_EQ(restored.fixed().size(), original.fixed().size());
  EXPECT_EQ(restored.clustering().size(), original.clustering().size());
  EXPECT_EQ(restored.outlier_driven().size(),
            original.outlier_driven().size());
  EXPECT_TRUE(restored.Contains(Subspace::FromIndices({0, 2})));
  EXPECT_DOUBLE_EQ(
      restored.clustering().ScoreOf(Subspace::FromIndices({0, 2})), 0.125);
  EXPECT_DOUBLE_EQ(
      restored.outlier_driven().ScoreOf(Subspace::FromIndices({2, 3})),
      0.001);
  // Byte-identical re-export.
  EXPECT_EQ(ExportSst(restored), text);
}

TEST(SstSnapshotTest, EmptySstRoundTrips) {
  Sst empty(4, 4);
  Sst restored(4, 4);
  ASSERT_TRUE(ImportSst(ExportSst(empty), &restored));
  EXPECT_EQ(restored.TotalSize(), 0u);
}

TEST(SstSnapshotTest, RejectsMalformedDocuments) {
  Sst sst(4, 4);
  EXPECT_FALSE(ImportSst("", &sst));
  EXPECT_FALSE(ImportSst("wrong-header\n", &sst));
  EXPECT_FALSE(ImportSst("spot-sst v1\nfs 0,1\n", &sst));      // no braces
  EXPECT_FALSE(ImportSst("spot-sst v1\nfs {0,x}\n", &sst));    // bad index
  EXPECT_FALSE(ImportSst("spot-sst v1\nfs {99}\n", &sst));     // out of range
  EXPECT_FALSE(ImportSst("spot-sst v1\ncs {0}\n", &sst));      // missing score
  EXPECT_FALSE(ImportSst("spot-sst v1\ncs {0} abc\n", &sst));  // bad score
  EXPECT_FALSE(ImportSst("spot-sst v1\nzz {0} 1.0\n", &sst));  // bad kind
  EXPECT_FALSE(ImportSst("spot-sst v1\nfs {0} extra\n", &sst));
  EXPECT_FALSE(ImportSst("spot-sst v1\nfs {}\n", &sst));       // empty subspace
}

TEST(SstSnapshotTest, FailedImportLeavesTargetUntouched) {
  Sst sst = MakeSst();
  const std::size_t before = sst.TotalSize();
  EXPECT_FALSE(ImportSst("garbage", &sst));
  EXPECT_EQ(sst.TotalSize(), before);
}

TEST(ConfigSnapshotTest, RoundTripPreservesAllFields) {
  SpotConfig c;
  c.omega = 12345;
  c.epsilon = 0.002;
  c.cells_per_dim = 7;
  c.partition_margin = 0.1;
  c.domain_lo = -2.5;
  c.domain_hi = 4.5;
  c.fs_max_dimension = 3;
  c.fs_cap = 99;
  c.cs_capacity = 11;
  c.os_capacity = 13;
  c.rd_threshold = 0.21;
  c.irsd_threshold = 0.77;
  c.fringe_factor = 3.5;
  c.evolution_period = 777;
  c.reservoir_capacity = 256;
  c.os_update_every = 4;
  c.drift_detection = false;
  c.drift_delta = 0.02;
  c.drift_lambda = 9.0;
  c.relearn_on_drift = false;
  c.prune_threshold = 1e-5;
  c.compaction_period = 1000;
  c.seed = 42424242;

  SpotConfig restored;
  ASSERT_TRUE(ImportConfig(ExportConfig(c), &restored));
  EXPECT_EQ(restored.omega, c.omega);
  EXPECT_DOUBLE_EQ(restored.epsilon, c.epsilon);
  EXPECT_EQ(restored.cells_per_dim, c.cells_per_dim);
  EXPECT_DOUBLE_EQ(restored.partition_margin, c.partition_margin);
  EXPECT_DOUBLE_EQ(restored.domain_lo, c.domain_lo);
  EXPECT_DOUBLE_EQ(restored.domain_hi, c.domain_hi);
  EXPECT_EQ(restored.fs_max_dimension, c.fs_max_dimension);
  EXPECT_EQ(restored.fs_cap, c.fs_cap);
  EXPECT_EQ(restored.cs_capacity, c.cs_capacity);
  EXPECT_EQ(restored.os_capacity, c.os_capacity);
  EXPECT_DOUBLE_EQ(restored.rd_threshold, c.rd_threshold);
  EXPECT_DOUBLE_EQ(restored.irsd_threshold, c.irsd_threshold);
  EXPECT_DOUBLE_EQ(restored.fringe_factor, c.fringe_factor);
  EXPECT_EQ(restored.evolution_period, c.evolution_period);
  EXPECT_EQ(restored.reservoir_capacity, c.reservoir_capacity);
  EXPECT_EQ(restored.os_update_every, c.os_update_every);
  EXPECT_EQ(restored.drift_detection, c.drift_detection);
  EXPECT_DOUBLE_EQ(restored.drift_delta, c.drift_delta);
  EXPECT_DOUBLE_EQ(restored.drift_lambda, c.drift_lambda);
  EXPECT_EQ(restored.relearn_on_drift, c.relearn_on_drift);
  EXPECT_DOUBLE_EQ(restored.prune_threshold, c.prune_threshold);
  EXPECT_EQ(restored.compaction_period, c.compaction_period);
  EXPECT_EQ(restored.seed, c.seed);
}

TEST(ConfigSnapshotTest, DefaultsRoundTripAndValidate) {
  SpotConfig restored;
  ASSERT_TRUE(ImportConfig(ExportConfig(SpotConfig{}), &restored));
  EXPECT_EQ(restored.Validate(), "");
}

TEST(ConfigSnapshotTest, MissingKeysKeepDefaults) {
  SpotConfig restored;
  ASSERT_TRUE(ImportConfig("spot-config v1\nomega 555\n", &restored));
  EXPECT_EQ(restored.omega, 555u);
  EXPECT_DOUBLE_EQ(restored.epsilon, SpotConfig{}.epsilon);
}

TEST(ConfigSnapshotTest, RejectsBadInput) {
  SpotConfig c;
  EXPECT_FALSE(ImportConfig("", &c));
  EXPECT_FALSE(ImportConfig("spot-config v2\n", &c));
  EXPECT_FALSE(ImportConfig("spot-config v1\nunknown_key 5\n", &c));
  EXPECT_FALSE(ImportConfig("spot-config v1\nomega abc\n", &c));
  EXPECT_FALSE(ImportConfig("spot-config v1\nomega 5 extra\n", &c));
}

TEST(ConfigSnapshotTest, FailedImportLeavesTargetUntouched) {
  SpotConfig c;
  c.omega = 999;
  EXPECT_FALSE(ImportConfig("spot-config v1\nomega 5\nbadkey 1\n", &c));
  EXPECT_EQ(c.omega, 999u);
}

}  // namespace
}  // namespace spot
