// Unit tests of the flat open-addressing synapse index (grid/flat_index.h):
// rehash across the load-factor boundary, backward-shift deletion keeping
// probe chains intact, collision-heavy keys, the interaction with the
// ProjectedGrid slab free list, and a randomized differential check against
// std::unordered_map.

#include <algorithm>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "grid/decay.h"
#include "grid/flat_index.h"
#include "grid/partition.h"
#include "grid/projected_grid.h"
#include "subspace/subspace.h"

namespace spot {
namespace {

CellCoords Key1(std::uint32_t a) { return CellCoords{a}; }
CellCoords Key3(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  return CellCoords{a, b, c};
}

// ------------------------------------------------------------- basics ----

TEST(FlatIndexTest, InsertFindEraseRoundTrip) {
  FlatIndex index(3);
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.Find(Key3(1, 2, 3)), FlatIndex::kNoValue);

  EXPECT_TRUE(index.Insert(Key3(1, 2, 3), 7).second);
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.Find(Key3(1, 2, 3)), 7u);

  // Duplicate insert keeps the existing value and reports no insertion.
  const auto [value, inserted] = index.Insert(Key3(1, 2, 3), 99);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(value, 7u);
  EXPECT_EQ(index.size(), 1u);

  EXPECT_TRUE(index.Erase(Key3(1, 2, 3)));
  EXPECT_FALSE(index.Erase(Key3(1, 2, 3)));
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.Find(Key3(1, 2, 3)), FlatIndex::kNoValue);
}

TEST(FlatIndexTest, AssignOverwritesOnlyExistingKeys) {
  FlatIndex index(1);
  index.Insert(Key1(5), 10);
  EXPECT_TRUE(index.Assign(Key1(5).data(), FlatIndex::Hash(Key1(5).data(), 1),
                           20));
  EXPECT_EQ(index.Find(Key1(5)), 20u);
  EXPECT_FALSE(index.Assign(Key1(6).data(),
                            FlatIndex::Hash(Key1(6).data(), 1), 30));
  EXPECT_EQ(index.size(), 1u);
}

// ------------------------------------------------- load-factor growth ----

TEST(FlatIndexTest, GrowsAcrossLoadFactorBoundaryAndKeepsAllKeys) {
  FlatIndex index(1);
  const std::size_t initial_buckets = index.bucket_count();
  EXPECT_EQ(initial_buckets & (initial_buckets - 1), 0u);  // power of two

  // N buckets at max load 3/4 hold 3N/4 entries; the next insert rehashes.
  const std::uint32_t fit =
      static_cast<std::uint32_t>(initial_buckets * 3 / 4);
  for (std::uint32_t i = 0; i < fit; ++i) {
    ASSERT_TRUE(index.Insert(Key1(i), i).second);
  }
  EXPECT_EQ(index.bucket_count(), initial_buckets);
  ASSERT_TRUE(index.Insert(Key1(fit), fit).second);
  EXPECT_GT(index.bucket_count(), initial_buckets);

  // Every key must survive the rehash, through repeated doublings.
  for (std::uint32_t i = fit + 1; i < 5000; ++i) {
    ASSERT_TRUE(index.Insert(Key1(i), i).second);
  }
  EXPECT_EQ(index.size(), 5000u);
  for (std::uint32_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(index.Find(Key1(i)), i) << "key " << i << " lost in rehash";
  }
  // Power-of-two capacity, never past max load.
  const std::size_t buckets = index.bucket_count();
  EXPECT_EQ(buckets & (buckets - 1), 0u);
  EXPECT_LE(index.size() * 4, buckets * 3);
}

TEST(FlatIndexTest, ReservePreventsMidInsertionRehash) {
  FlatIndex index(2);
  index.Reserve(1000);
  const std::size_t buckets = index.bucket_count();
  EXPECT_GE(buckets * 3, 1000u * 4 / 4 * 3);  // holds 1000 under 3/4 load
  for (std::uint32_t i = 0; i < 1000; ++i) {
    index.Insert(CellCoords{i, i + 1}, i);
  }
  EXPECT_EQ(index.bucket_count(), buckets);
  EXPECT_EQ(index.size(), 1000u);
}

// -------------------------------------------- backward-shift deletion ----

/// Keys whose home bucket (hash & mask at the index's CURRENT capacity) is
/// the same — erasing from the middle of such a chain is exactly the case
/// backward-shift deletion must repair.
std::vector<CellCoords> CollidingKeys(const FlatIndex& index,
                                      std::size_t want) {
  std::vector<CellCoords> out;
  const std::size_t mask = index.bucket_count() - 1;
  const std::uint32_t probe0 = 12345;
  const std::size_t target =
      FlatIndex::Hash(&probe0, 1) & mask;
  for (std::uint32_t k = probe0; out.size() < want; ++k) {
    if ((FlatIndex::Hash(&k, 1) & mask) == target) out.push_back(Key1(k));
  }
  return out;
}

TEST(FlatIndexTest, BackwardShiftErasePreservesProbeChains) {
  FlatIndex index(1);
  const std::size_t buckets_before = index.bucket_count();
  // Three keys sharing one home bucket: they occupy home, home+1, home+2.
  const std::vector<CellCoords> chain = CollidingKeys(index, 3);
  for (std::uint32_t i = 0; i < chain.size(); ++i) {
    ASSERT_TRUE(index.Insert(chain[i], 100 + i).second);
  }
  ASSERT_EQ(index.bucket_count(), buckets_before)
      << "grew: chain construction invalid";

  // Erase the chain HEAD: the displaced successors must shift back so they
  // remain reachable (a tombstone-free table has no marker to skip over).
  EXPECT_TRUE(index.Erase(chain[0]));
  EXPECT_EQ(index.Find(chain[1]), 101u);
  EXPECT_EQ(index.Find(chain[2]), 102u);

  // Re-insert and erase the MIDDLE of the chain.
  ASSERT_TRUE(index.Insert(chain[0], 100).second);
  EXPECT_TRUE(index.Erase(chain[2]));
  EXPECT_EQ(index.Find(chain[0]), 100u);
  EXPECT_EQ(index.Find(chain[1]), 101u);
  EXPECT_EQ(index.Find(chain[2]), FlatIndex::kNoValue);
  EXPECT_EQ(index.size(), 2u);
}

TEST(FlatIndexTest, EraseDoesNotDisturbIndependentChains) {
  FlatIndex index(1);
  index.Reserve(64);  // fixed capacity for the whole test
  const std::vector<CellCoords> chain = CollidingKeys(index, 4);
  std::vector<CellCoords> others;
  for (std::uint32_t k = 900000; others.size() < 20; ++k) {
    const CellCoords key = Key1(k);
    if (std::find(chain.begin(), chain.end(), key) == chain.end()) {
      others.push_back(key);
    }
  }
  for (std::uint32_t i = 0; i < chain.size(); ++i) {
    index.Insert(chain[i], i);
  }
  for (std::uint32_t i = 0; i < others.size(); ++i) {
    index.Insert(others[i], 1000 + i);
  }
  // Erase the colliding chain one head at a time; unrelated keys must stay
  // reachable after every single backward shift.
  for (std::size_t e = 0; e < chain.size(); ++e) {
    ASSERT_TRUE(index.Erase(chain[e]));
    for (std::size_t i = e + 1; i < chain.size(); ++i) {
      ASSERT_EQ(index.Find(chain[i]), i);
    }
    for (std::uint32_t i = 0; i < others.size(); ++i) {
      ASSERT_EQ(index.Find(others[i]), 1000 + i);
    }
  }
}

// --------------------------------------------- collision-heavy coords ----

TEST(FlatIndexTest, CollisionHeavySequentialCoords) {
  // Dense sequential coordinates in a tiny box: the regime the FNV-era
  // index clustered on. Every key must stay reachable through growth and
  // interleaved deletion.
  FlatIndex index(3);
  std::vector<CellCoords> keys;
  for (std::uint32_t a = 0; a < 16; ++a) {
    for (std::uint32_t b = 0; b < 16; ++b) {
      for (std::uint32_t c = 0; c < 16; ++c) {
        keys.push_back(Key3(a, b, c));
      }
    }
  }
  for (std::uint32_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(index.Insert(keys[i], i).second);
  }
  for (std::uint32_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(index.Find(keys[i]), i);
  }
  // Erase every other key; the rest must remain reachable.
  for (std::uint32_t i = 0; i < keys.size(); i += 2) {
    ASSERT_TRUE(index.Erase(keys[i]));
  }
  for (std::uint32_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(index.Find(keys[i]),
              i % 2 == 0 ? FlatIndex::kNoValue : i);
  }
  EXPECT_EQ(index.size(), keys.size() / 2);
}

// ------------------------------------------------------- iteration -------

TEST(FlatIndexTest, ForEachVisitsEveryEntryExactlyOnce) {
  FlatIndex index(2);
  std::set<std::pair<std::uint32_t, std::uint32_t>> expected;
  for (std::uint32_t i = 0; i < 500; ++i) {
    index.Insert(CellCoords{i, i * 3}, i);
    expected.insert({i, i * 3});
  }
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  index.ForEach([&](const std::uint32_t* key, std::uint32_t value) {
    EXPECT_EQ(key[1], key[0] * 3);
    EXPECT_EQ(value, key[0]);
    EXPECT_TRUE(seen.insert({key[0], key[1]}).second) << "visited twice";
  });
  EXPECT_EQ(seen, expected);
}

// ------------------------------------- slab free-list interaction --------

TEST(FlatIndexTest, ProjectedGridCompactionRecyclesSlabSlotsThroughIndex) {
  // Erase (via Compact) then reinsert: the index forgets the cell, the slab
  // slot goes on the free list, and the next distinct cell reuses it
  // instead of growing the arena.
  const Partition part(2, 10, 0.0, 1.0);
  // Aggressive decay: omega=10, epsilon=0.1 — points are far below any
  // sane prune threshold a few hundred ticks later.
  ProjectedGrid grid(Subspace::FromIndices({0, 1}), &part,
                     DecayModel(10, 0.1), /*prune_threshold=*/1e-3,
                     /*compaction_period=*/0);
  grid.Add({0.05, 0.05}, 0);
  grid.Add({0.15, 0.15}, 1);
  EXPECT_EQ(grid.PopulatedCells(), 2u);
  EXPECT_EQ(grid.SlabSlots(), 2u);
  EXPECT_EQ(grid.FreeSlots(), 0u);

  // Decay both cells to dust and sweep them out.
  EXPECT_EQ(grid.Compact(500), 2u);
  EXPECT_EQ(grid.PopulatedCells(), 0u);
  EXPECT_EQ(grid.SlabSlots(), 2u);   // the slab itself never shrinks
  EXPECT_EQ(grid.FreeSlots(), 2u);

  // Two new, different cells reuse the freed slots — no slab growth.
  grid.Add({0.55, 0.55}, 501);
  grid.Add({0.65, 0.65}, 502);
  EXPECT_EQ(grid.PopulatedCells(), 2u);
  EXPECT_EQ(grid.SlabSlots(), 2u);
  EXPECT_EQ(grid.FreeSlots(), 0u);

  // A third cell has no free slot left and must grow the slab.
  grid.Add({0.75, 0.75}, 503);
  EXPECT_EQ(grid.SlabSlots(), 3u);
  EXPECT_EQ(grid.FreeSlots(), 0u);

  // The recycled cells answer queries like any other.
  const Pcs pcs = grid.Query({0.55, 0.55}, 10.0);
  EXPECT_GT(pcs.count, 0.0);
}

// ------------------------------------------------ differential test ------

TEST(FlatIndexTest, RandomizedDifferentialAgainstUnorderedMap) {
  Rng rng(20260730);
  FlatIndex index(3);
  std::unordered_map<CellCoords, std::uint32_t, CellCoordsHash> reference;

  // Small coordinate universe so inserts, re-inserts, misses and erases all
  // happen frequently; value is a running counter so stale entries are
  // detectable.
  auto random_key = [&rng]() {
    return Key3(static_cast<std::uint32_t>(rng.NextUint64(12)),
                static_cast<std::uint32_t>(rng.NextUint64(12)),
                static_cast<std::uint32_t>(rng.NextUint64(12)));
  };

  for (std::uint32_t step = 0; step < 50000; ++step) {
    const CellCoords key = random_key();
    const std::size_t op = rng.NextUint64(10);
    if (op < 5) {  // insert-if-absent
      const auto [value, inserted] = index.Insert(key, step);
      const auto [it, ref_inserted] = reference.try_emplace(key, step);
      ASSERT_EQ(inserted, ref_inserted);
      ASSERT_EQ(value, it->second);
    } else if (op < 8) {  // find
      const std::uint32_t value = index.Find(key);
      const auto it = reference.find(key);
      if (it == reference.end()) {
        ASSERT_EQ(value, FlatIndex::kNoValue);
      } else {
        ASSERT_EQ(value, it->second);
      }
    } else {  // erase
      const bool erased = index.Erase(key);
      ASSERT_EQ(erased, reference.erase(key) == 1u);
    }
    ASSERT_EQ(index.size(), reference.size());
  }

  // Final sweep: identical contents, both directions.
  std::size_t visited = 0;
  index.ForEach([&](const std::uint32_t* key, std::uint32_t value) {
    const auto it = reference.find(CellCoords(key, key + 3));
    ASSERT_NE(it, reference.end());
    ASSERT_EQ(value, it->second);
    ++visited;
  });
  EXPECT_EQ(visited, reference.size());
}

}  // namespace
}  // namespace spot
