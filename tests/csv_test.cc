// Tests of the CSV ingestion substrate (src/stream/csv.h).

#include <gtest/gtest.h>

#include "stream/csv.h"

namespace spot {
namespace {

using stream::CsvSource;
using stream::ParseCsvString;

TEST(CsvTest, ParsesPlainNumericRows) {
  const auto r = ParseCsvString("1,2,3\n4,5,6\n");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0], (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(r.rows[1], (std::vector<double>{4, 5, 6}));
  EXPECT_TRUE(r.column_names.empty());
  EXPECT_EQ(r.skipped_lines, 0u);
}

TEST(CsvTest, DetectsHeaderLine) {
  const auto r = ParseCsvString("a,b,c\n1,2,3\n");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.column_names, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, SkipsRaggedAndNonNumericRows) {
  const auto r = ParseCsvString("1,2\n3,4,5\nx,y\n6,7\n");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[1], (std::vector<double>{6, 7}));
  EXPECT_EQ(r.skipped_lines, 2u);
}

TEST(CsvTest, SkipsBlankLinesAndTrimsWhitespace) {
  const auto r = ParseCsvString("\n 1 , 2 \n\n3,4\n");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0], (std::vector<double>{1, 2}));
  EXPECT_EQ(r.skipped_lines, 2u);
}

TEST(CsvTest, HandlesScientificNotationAndNegatives) {
  const auto r = ParseCsvString("-1.5,2e-3,+4.25\n");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0], -1.5);
  EXPECT_DOUBLE_EQ(r.rows[0][1], 0.002);
  EXPECT_DOUBLE_EQ(r.rows[0][2], 4.25);
}

TEST(CsvTest, EmptyDocument) {
  const auto r = ParseCsvString("");
  EXPECT_TRUE(r.rows.empty());
  EXPECT_TRUE(r.column_names.empty());
}

TEST(CsvTest, HeaderOnlyDocument) {
  const auto r = ParseCsvString("a,b\n");
  EXPECT_TRUE(r.rows.empty());
  EXPECT_EQ(r.column_names.size(), 2u);
}

TEST(CsvTest, MissingFileYieldsEmptyResult) {
  const auto r = stream::LoadCsvFile("/nonexistent/path.csv");
  EXPECT_TRUE(r.rows.empty());
}

TEST(CsvSourceTest, StreamsRowsWithIds) {
  CsvSource src(ParseCsvString("h1,h2\n1,2\n3,4\n"));
  EXPECT_EQ(src.dimension(), 2);
  EXPECT_EQ(src.size(), 2u);
  EXPECT_EQ(src.column_names().size(), 2u);
  auto p = src.Next();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->point.id, 0u);
  EXPECT_FALSE(p->is_outlier);  // unlabeled
  p = src.Next();
  EXPECT_EQ(p->point.id, 1u);
  EXPECT_FALSE(src.Next().has_value());
  src.Reset();
  EXPECT_TRUE(src.Next().has_value());
}

TEST(CsvSourceTest, EmptySource) {
  CsvSource src(ParseCsvString(""));
  EXPECT_EQ(src.dimension(), 0);
  EXPECT_FALSE(src.Next().has_value());
}

}  // namespace
}  // namespace spot
