// Unit tests of src/stream: generators, drift, the KDD-style simulator and
// the replay source.

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "stream/data_point.h"
#include "stream/drift.h"
#include "stream/kdd_sim.h"
#include "stream/replay.h"
#include "stream/synthetic.h"

namespace spot {
namespace {

using stream::AttackCategory;
using stream::DriftConfig;
using stream::DriftKind;
using stream::DriftingStream;
using stream::GaussianStream;
using stream::KddConfig;
using stream::KddSimulator;
using stream::ReplaySource;
using stream::SyntheticConfig;

// ------------------------------------------------------ GaussianStream ----

TEST(GaussianStreamTest, EmitsCorrectDimensionAndIds) {
  SyntheticConfig cfg;
  cfg.dimension = 12;
  GaussianStream s(cfg);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto p = s.Next();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->point.dimension(), 12);
    EXPECT_EQ(p->point.id, i);
  }
}

TEST(GaussianStreamTest, ValuesInUnitCube) {
  SyntheticConfig cfg;
  GaussianStream s(cfg);
  for (int i = 0; i < 500; ++i) {
    const auto p = s.Next();
    for (double v : p->point.values) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(GaussianStreamTest, OutlierRateApproximatesConfig) {
  SyntheticConfig cfg;
  cfg.outlier_probability = 0.05;
  cfg.seed = 9;
  GaussianStream s(cfg);
  int outliers = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (s.Next()->is_outlier) ++outliers;
  }
  EXPECT_NEAR(static_cast<double>(outliers) / n, 0.05, 0.01);
}

TEST(GaussianStreamTest, OutliersCarrySubspaceWithinConfiguredDims) {
  SyntheticConfig cfg;
  cfg.outlier_probability = 0.2;
  cfg.min_outlier_subspace_dim = 2;
  cfg.max_outlier_subspace_dim = 3;
  GaussianStream s(cfg);
  int seen = 0;
  for (int i = 0; i < 2000 && seen < 50; ++i) {
    const auto p = s.Next();
    if (!p->is_outlier) continue;
    ++seen;
    const int d = p->outlying_subspace.Dimension();
    EXPECT_GE(d, 2);
    EXPECT_LE(d, 3);
  }
  EXPECT_GE(seen, 50);
}

TEST(GaussianStreamTest, RegularPointsHaveNoSubspace) {
  SyntheticConfig cfg;
  cfg.outlier_probability = 0.0;
  GaussianStream s(cfg);
  for (int i = 0; i < 200; ++i) {
    const auto p = s.Next();
    EXPECT_FALSE(p->is_outlier);
    EXPECT_TRUE(p->outlying_subspace.IsEmpty());
  }
}

TEST(GaussianStreamTest, OutlierIsDisplacedInPlantedDims) {
  SyntheticConfig cfg;
  cfg.outlier_probability = 0.5;
  cfg.seed = 21;
  GaussianStream s(cfg);
  int checked = 0;
  for (int i = 0; i < 500 && checked < 20; ++i) {
    const auto p = s.Next();
    if (!p->is_outlier) continue;
    ++checked;
    for (int d : p->outlying_subspace.Indices()) {
      // The planted value is far from every cluster center in d — the
      // generator is best-effort when the domain is crowded, so assert at
      // least 3 cluster standard deviations (the full displacement target
      // is 8).
      double min_gap = 1.0;
      for (const auto& center : s.centers()) {
        min_gap = std::min(
            min_gap,
            std::fabs(p->point.values[static_cast<std::size_t>(d)] -
                      center[static_cast<std::size_t>(d)]));
      }
      EXPECT_GE(min_gap, 3.0 * cfg.cluster_stddev);
    }
  }
  EXPECT_EQ(checked, 20);
}

TEST(GaussianStreamTest, DeterministicForSeed) {
  SyntheticConfig cfg;
  cfg.seed = 77;
  GaussianStream a(cfg);
  GaussianStream b(cfg);
  for (int i = 0; i < 100; ++i) {
    const auto pa = a.Next();
    const auto pb = b.Next();
    EXPECT_EQ(pa->point.values, pb->point.values);
    EXPECT_EQ(pa->is_outlier, pb->is_outlier);
  }
}

TEST(GaussianStreamTest, TakeHelperCollects) {
  SyntheticConfig cfg;
  GaussianStream s(cfg);
  const auto batch = Take(s, 123);
  EXPECT_EQ(batch.size(), 123u);
  const auto values = ValuesOf(batch);
  EXPECT_EQ(values.size(), 123u);
  EXPECT_EQ(values.front().size(), static_cast<std::size_t>(cfg.dimension));
}

// ------------------------------------------------------ DriftingStream ----

TEST(DriftingStreamTest, GradualDriftMovesCenters) {
  DriftConfig cfg;
  cfg.kind = DriftKind::kGradual;
  cfg.drift_rate = 1e-3;
  DriftingStream s(cfg);
  const auto before = s.centers();
  for (int i = 0; i < 5000; ++i) s.Next();
  const auto after = s.centers();
  double moved = 0.0;
  for (std::size_t c = 0; c < before.size(); ++c) {
    moved += EuclideanDistance(before[c], after[c]);
  }
  EXPECT_GT(moved, 0.01);
}

TEST(DriftingStreamTest, AbruptDriftSwitchesConcepts) {
  DriftConfig cfg;
  cfg.kind = DriftKind::kAbrupt;
  cfg.period = 1000;
  DriftingStream s(cfg);
  for (int i = 0; i < 3500; ++i) s.Next();
  EXPECT_EQ(s.concept_switches(), 3u);
}

TEST(DriftingStreamTest, NoSwitchBeforePeriod) {
  DriftConfig cfg;
  cfg.kind = DriftKind::kAbrupt;
  cfg.period = 100000;
  DriftingStream s(cfg);
  for (int i = 0; i < 500; ++i) s.Next();
  EXPECT_EQ(s.concept_switches(), 0u);
}

TEST(DriftingStreamTest, OutliersStillPlanted) {
  DriftConfig cfg;
  cfg.base.outlier_probability = 0.1;
  DriftingStream s(cfg);
  int outliers = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto p = s.Next();
    if (p->is_outlier) {
      ++outliers;
      EXPECT_FALSE(p->outlying_subspace.IsEmpty());
    }
  }
  EXPECT_GT(outliers, 100);
}

// -------------------------------------------------------- KddSimulator ----

TEST(KddSimulatorTest, DimensionAndRanges) {
  KddSimulator sim(KddConfig{});
  EXPECT_EQ(sim.dimension(), KddSimulator::kNumFeatures);
  for (int i = 0; i < 500; ++i) {
    const auto p = sim.Next();
    ASSERT_EQ(p->point.dimension(), KddSimulator::kNumFeatures);
    for (double v : p->point.values) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(KddSimulatorTest, AttackFractionRespected) {
  KddConfig cfg;
  cfg.attack_fraction = 0.1;
  cfg.seed = 13;
  KddSimulator sim(cfg);
  int attacks = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (sim.Next()->is_outlier) ++attacks;
  }
  EXPECT_NEAR(static_cast<double>(attacks) / n, 0.1, 0.01);
}

TEST(KddSimulatorTest, AllCategoriesAppearWithDosDominant) {
  KddConfig cfg;
  cfg.attack_fraction = 0.3;
  KddSimulator sim(cfg);
  std::vector<int> by_category(5, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto p = sim.Next();
    ASSERT_GE(p->category, 0);
    ASSERT_LE(p->category, 4);
    ++by_category[static_cast<std::size_t>(p->category)];
  }
  EXPECT_GT(by_category[1], 0);  // dos
  EXPECT_GT(by_category[2], 0);  // probe
  EXPECT_GT(by_category[3], 0);  // r2l
  EXPECT_GT(by_category[4], 0);  // u2r
  EXPECT_GT(by_category[1], by_category[2]);
  EXPECT_GT(by_category[2], by_category[3]);
  EXPECT_GT(by_category[3], by_category[4]);
}

TEST(KddSimulatorTest, AttacksCarryCategorySubspace) {
  KddConfig cfg;
  cfg.attack_fraction = 0.5;
  KddSimulator sim(cfg);
  for (int i = 0; i < 1000; ++i) {
    const auto p = sim.Next();
    if (!p->is_outlier) continue;
    const auto expected = KddSimulator::CategorySubspace(
        static_cast<AttackCategory>(p->category));
    EXPECT_EQ(p->outlying_subspace, expected);
    EXPECT_GE(expected.Dimension(), 2);
    EXPECT_LE(expected.Dimension(), 4);
  }
}

TEST(KddSimulatorTest, DosAttackSaturatesItsSubspace) {
  KddConfig cfg;
  cfg.attack_fraction = 0.5;
  cfg.seed = 3;
  KddSimulator sim(cfg);
  int seen = 0;
  for (int i = 0; i < 5000 && seen < 20; ++i) {
    const auto p = sim.Next();
    if (p->category != static_cast<int>(AttackCategory::kDos)) continue;
    ++seen;
    // conn_count (18) and srv_count (19) near saturation.
    EXPECT_GT(p->point.values[18], 0.8);
    EXPECT_GT(p->point.values[19], 0.8);
  }
  EXPECT_EQ(seen, 20);
}

TEST(KddSimulatorTest, CategoryNamesAndFeatureNames) {
  EXPECT_EQ(AttackCategoryName(AttackCategory::kNormal), "normal");
  EXPECT_EQ(AttackCategoryName(AttackCategory::kDos), "dos");
  EXPECT_EQ(AttackCategoryName(AttackCategory::kU2r), "u2r");
  EXPECT_EQ(KddSimulator::FeatureName(0), "duration");
  EXPECT_EQ(KddSimulator::FeatureName(18), "conn_count");
  EXPECT_EQ(KddSimulator::FeatureName(-1), "?");
  EXPECT_EQ(KddSimulator::FeatureName(99), "?");
}

// -------------------------------------------------------- ReplaySource ----

TEST(ReplaySourceTest, ReplaysExactlyAndEnds) {
  SyntheticConfig cfg;
  GaussianStream gen(cfg);
  const auto batch = Take(gen, 30);
  ReplaySource replay(batch);
  EXPECT_EQ(replay.size(), 30u);
  for (std::size_t i = 0; i < 30; ++i) {
    const auto p = replay.Next();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->point.values, batch[i].point.values);
  }
  EXPECT_FALSE(replay.Next().has_value());
}

TEST(ReplaySourceTest, ResetRewinds) {
  SyntheticConfig cfg;
  GaussianStream gen(cfg);
  ReplaySource replay(Take(gen, 5));
  while (replay.Next().has_value()) {
  }
  replay.Reset();
  EXPECT_TRUE(replay.Next().has_value());
}

TEST(ReplaySourceTest, EmptyReplay) {
  ReplaySource replay({});
  EXPECT_EQ(replay.dimension(), 0);
  EXPECT_FALSE(replay.Next().has_value());
}

}  // namespace
}  // namespace spot
