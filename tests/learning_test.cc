// Unit tests of src/learning: lead clustering, outlying degree, SST,
// unsupervised/supervised pipelines and CS self-evolution.

#include <algorithm>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "learning/lead_clustering.h"
#include "learning/outlying_degree.h"
#include "learning/self_evolution.h"
#include "learning/sst.h"
#include "learning/supervised.h"
#include "learning/unsupervised.h"
#include "subspace/lattice.h"

namespace spot {
namespace {

std::vector<std::size_t> IdentityOrder(std::size_t n) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

// ------------------------------------------------------ LeadCluster -------

TEST(LeadClusterTest, TwoWellSeparatedBlobs) {
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 10; ++i) data.push_back({0.1 + 0.001 * i, 0.1});
  for (int i = 0; i < 10; ++i) data.push_back({0.9 + 0.001 * i, 0.9});
  const auto result = LeadCluster(data, IdentityOrder(data.size()), 0.2);
  EXPECT_EQ(result.leaders.size(), 2u);
  EXPECT_EQ(result.sizes[0], 10u);
  EXPECT_EQ(result.sizes[1], 10u);
  // All of blob 1 in one cluster, all of blob 2 in the other.
  for (int i = 1; i < 10; ++i) {
    EXPECT_EQ(result.assignment[static_cast<std::size_t>(i)],
              result.assignment[0]);
  }
}

TEST(LeadClusterTest, IsolatedPointFoundsSingletonCluster) {
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 20; ++i) data.push_back({0.5, 0.5});
  data.push_back({0.99, 0.01});
  const auto result = LeadCluster(data, IdentityOrder(data.size()), 0.1);
  const int outlier_cluster = result.assignment.back();
  EXPECT_EQ(result.sizes[static_cast<std::size_t>(outlier_cluster)], 1u);
}

TEST(LeadClusterTest, TinyThresholdMakesAllSingletons) {
  std::vector<std::vector<double>> data = {
      {0.1, 0.1}, {0.2, 0.2}, {0.3, 0.3}};
  const auto result = LeadCluster(data, IdentityOrder(3), 1e-6);
  EXPECT_EQ(result.leaders.size(), 3u);
}

TEST(LeadClusterTest, HugeThresholdMakesOneCluster) {
  std::vector<std::vector<double>> data = {
      {0.1, 0.1}, {0.9, 0.9}, {0.5, 0.5}};
  const auto result = LeadCluster(data, IdentityOrder(3), 100.0);
  EXPECT_EQ(result.leaders.size(), 1u);
  EXPECT_EQ(result.sizes[0], 3u);
}

TEST(LeadClusterTest, OrderAffectsLeadersNotSeparation) {
  // Separated blobs cluster identically regardless of visiting order.
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 5; ++i) data.push_back({0.0, 0.0});
  for (int i = 0; i < 5; ++i) data.push_back({1.0, 1.0});
  Rng rng(3);
  for (int run = 0; run < 5; ++run) {
    auto order = IdentityOrder(10);
    rng.Shuffle(order);
    const auto result = LeadCluster(data, order, 0.3);
    EXPECT_EQ(result.leaders.size(), 2u);
  }
}

TEST(LeadClusterTest, EstimateThresholdPositiveAndScales) {
  Rng rng(7);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 100; ++i) {
    data.push_back({rng.NextDouble(), rng.NextDouble()});
  }
  Rng r1(1);
  Rng r2(1);
  const double t1 = EstimateLeadThreshold(data, r1, 50, 0.5);
  const double t2 = EstimateLeadThreshold(data, r2, 50, 1.0);
  EXPECT_GT(t1, 0.0);
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

// -------------------------------------------------- Outlying degree -------

TEST(OutlyingDegreeTest, IsolatedPointScoresHighest) {
  std::vector<std::vector<double>> data;
  Rng gen(11);
  for (int i = 0; i < 60; ++i) {
    data.push_back({0.3 + 0.01 * gen.NextGaussian(),
                    0.3 + 0.01 * gen.NextGaussian()});
  }
  data.push_back({0.95, 0.95});
  Rng rng(13);
  OutlyingDegreeConfig cfg;
  const auto degrees = ComputeOutlyingDegrees(data, cfg, rng);
  const auto top = TopOutlyingIndices(degrees, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], data.size() - 1);
}

TEST(OutlyingDegreeTest, DegreesInUnitRange) {
  Rng gen(17);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 50; ++i) {
    data.push_back({gen.NextDouble(), gen.NextDouble()});
  }
  Rng rng(19);
  const auto degrees = ComputeOutlyingDegrees(data, {}, rng);
  for (double d : degrees) {
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(OutlyingDegreeTest, EmptyData) {
  Rng rng(23);
  EXPECT_TRUE(ComputeOutlyingDegrees({}, {}, rng).empty());
}

TEST(OutlyingDegreeTest, TopIndicesSortedByDegree) {
  const std::vector<double> degrees = {0.1, 0.9, 0.5, 0.7};
  const auto top = TopOutlyingIndices(degrees, 3);
  EXPECT_EQ(top, (std::vector<std::size_t>{1, 3, 2}));
}

TEST(OutlyingDegreeTest, TopIndicesTieBreakIsStable) {
  const std::vector<double> degrees = {0.5, 0.5, 0.5};
  const auto top = TopOutlyingIndices(degrees, 2);
  EXPECT_EQ(top, (std::vector<std::size_t>{0, 1}));
}

// ---------------------------------------------------------------- Sst -----

TEST(SstTest, SubsetsAreDistinctAndUnioned) {
  Sst sst(8, 8);
  sst.SetFixed(EnumerateLattice(4, 1));  // {0},{1},{2},{3}
  sst.AddClustering(Subspace::FromIndices({0, 1}), 0.5);
  sst.AddOutlierDriven(Subspace::FromIndices({2, 3}), 0.7);
  EXPECT_EQ(sst.TotalSize(), 6u);
  EXPECT_TRUE(sst.Contains(Subspace::FromIndices({0})));
  EXPECT_TRUE(sst.Contains(Subspace::FromIndices({0, 1})));
  EXPECT_TRUE(sst.Contains(Subspace::FromIndices({2, 3})));
  EXPECT_FALSE(sst.Contains(Subspace::FromIndices({0, 3})));
}

TEST(SstTest, FixedMembersNotDuplicatedInCsOrOs) {
  Sst sst(8, 8);
  sst.SetFixed(EnumerateLattice(4, 1));
  sst.AddClustering(Subspace::FromIndices({0}), 0.1);   // already in FS
  sst.AddOutlierDriven(Subspace::FromIndices({1}), 0.1);  // already in FS
  EXPECT_TRUE(sst.clustering().empty());
  EXPECT_TRUE(sst.outlier_driven().empty());
  EXPECT_EQ(sst.TotalSize(), 4u);
}

TEST(SstTest, AllSubspacesDeduplicatesAcrossSubsets) {
  Sst sst(8, 8);
  sst.AddClustering(Subspace::FromIndices({0, 1}), 0.5);
  sst.AddOutlierDriven(Subspace::FromIndices({0, 1}), 0.6);
  EXPECT_EQ(sst.TotalSize(), 1u);
}

TEST(SstTest, CapacityEnforcedPerSubset) {
  Sst sst(2, 2);
  for (int i = 0; i < 5; ++i) {
    sst.AddClustering(Subspace::FromIndices({i, i + 10}),
                      static_cast<double>(i));
  }
  EXPECT_EQ(sst.clustering().size(), 2u);
  // The two best (lowest score) survive.
  EXPECT_TRUE(sst.Contains(Subspace::FromIndices({0, 10})));
  EXPECT_TRUE(sst.Contains(Subspace::FromIndices({1, 11})));
}

TEST(SstTest, ClearClusteringOnlyTouchesCs) {
  Sst sst(8, 8);
  sst.SetFixed(EnumerateLattice(3, 1));
  sst.AddClustering(Subspace::FromIndices({0, 1}), 0.5);
  sst.AddOutlierDriven(Subspace::FromIndices({1, 2}), 0.5);
  sst.ClearClustering();
  EXPECT_TRUE(sst.clustering().empty());
  EXPECT_EQ(sst.fixed().size(), 3u);
  EXPECT_EQ(sst.outlier_driven().size(), 1u);
}

TEST(SstTest, SummaryMentionsCounts) {
  Sst sst(4, 4);
  sst.SetFixed(EnumerateLattice(3, 1));
  const std::string summary = sst.Summary();
  EXPECT_NE(summary.find("FS (3)"), std::string::npos);
  EXPECT_NE(summary.find("CS (0)"), std::string::npos);
}

// ----------------------------------------------- Unsupervised pipeline ----

class LearningFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // Clustered mass in dims {0,1}; a handful of points anomalous in {2}.
    Rng rng(31);
    for (int i = 0; i < 300; ++i) {
      data_.push_back({0.4 + 0.03 * rng.NextGaussian(),
                       0.6 + 0.03 * rng.NextGaussian(),
                       0.5 + 0.02 * rng.NextGaussian(), rng.NextDouble()});
    }
    for (int i = 0; i < 4; ++i) {
      std::vector<double> p = data_[static_cast<std::size_t>(i)];
      p[2] = 0.98;  // projected outlier in {2}
      data_.push_back(p);
    }
    partition_ = std::make_unique<Partition>(4, 10, 0.0, 1.0);
    cfg_.moga.num_dims = 4;
    cfg_.moga.max_dimension = 2;
    cfg_.moga.population_size = 16;
    cfg_.moga.generations = 8;
    cfg_.top_outlying_points = 6;
    cfg_.top_subspaces_per_run = 6;
  }

  std::vector<std::vector<double>> data_;
  std::unique_ptr<Partition> partition_;
  UnsupervisedConfig cfg_;
};

TEST_F(LearningFixture, LearnsNonEmptyCandidateSet) {
  const auto cs = LearnClusteringSubspaces(data_, *partition_, cfg_, 1);
  EXPECT_FALSE(cs.empty());
  for (const auto& ss : cs) {
    EXPECT_GE(ss.subspace.Dimension(), 1);
    EXPECT_LE(ss.subspace.Dimension(), 2);
  }
}

TEST_F(LearningFixture, CandidatesAreDeduplicated) {
  const auto cs = LearnClusteringSubspaces(data_, *partition_, cfg_, 2);
  std::set<std::uint64_t> seen;
  for (const auto& ss : cs) {
    EXPECT_TRUE(seen.insert(ss.subspace.bits()).second);
  }
}

TEST_F(LearningFixture, EmptyTrainingYieldsNothing) {
  EXPECT_TRUE(LearnClusteringSubspaces({}, *partition_, cfg_, 1).empty());
}

// ------------------------------------------------- Supervised pipeline ----

TEST_F(LearningFixture, SupervisedFindsExampleSubspace) {
  DomainKnowledge knowledge;
  std::vector<double> example = data_.front();
  // Expert example anomalous in dim 2, at the opposite extreme from the
  // fixture's planted outliers (0.98) so its cell holds only itself.
  example[2] = 0.02;
  knowledge.outlier_examples.push_back(example);

  SupervisedConfig scfg;
  scfg.moga.num_dims = 4;
  scfg.moga.max_dimension = 2;
  scfg.moga.population_size = 16;
  scfg.moga.generations = 10;
  scfg.top_subspaces_per_example = 4;
  const auto os =
      LearnOutlierDrivenSubspaces(data_, *partition_, knowledge, scfg, 3);
  ASSERT_FALSE(os.empty());
  bool involves_dim2 = false;
  for (const auto& ss : os) {
    if (ss.subspace.Contains(2)) involves_dim2 = true;
  }
  EXPECT_TRUE(involves_dim2);
}

TEST_F(LearningFixture, AttributeRestrictionHonored) {
  DomainKnowledge knowledge;
  std::vector<double> example = data_.front();
  example[2] = 0.99;
  knowledge.outlier_examples.push_back(example);
  knowledge.relevant_attributes = {1, 2};

  SupervisedConfig scfg;
  scfg.moga.num_dims = 4;
  scfg.moga.max_dimension = 2;
  scfg.moga.population_size = 12;
  scfg.moga.generations = 6;
  const auto os =
      LearnOutlierDrivenSubspaces(data_, *partition_, knowledge, scfg, 4);
  ASSERT_FALSE(os.empty());
  for (const auto& ss : os) {
    for (int d : ss.subspace.Indices()) {
      EXPECT_TRUE(d == 1 || d == 2) << "attribute " << d << " not relevant";
    }
  }
}

TEST_F(LearningFixture, NoExamplesNoSubspaces) {
  DomainKnowledge knowledge;
  SupervisedConfig scfg;
  EXPECT_TRUE(
      LearnOutlierDrivenSubspaces(data_, *partition_, knowledge, scfg, 5)
          .empty());
}

// ------------------------------------------------------ Self-evolution ----

TEST_F(LearningFixture, EvolutionKeepsCapacityAndImprovesOrKeepsScores) {
  Sst sst(6, 6);
  // Seed CS with mediocre random subspaces.
  sst.AddClustering(Subspace::FromIndices({0, 1}), 2.0);
  sst.AddClustering(Subspace::FromIndices({1, 3}), 2.5);
  sst.AddClustering(Subspace::FromIndices({0, 3}), 3.0);

  SelfEvolutionConfig ecfg;
  ecfg.offspring = 12;
  ecfg.max_dimension = 2;
  Rng rng(41);
  EvolveClusteringSubspaces(&sst, *partition_, data_, ecfg, rng);
  EXPECT_LE(sst.clustering().size(), 6u);
  EXPECT_FALSE(sst.clustering().empty());
  for (const auto& ss : sst.clustering().Ranked()) {
    EXPECT_LE(ss.subspace.Dimension(), 2);
  }
}

TEST_F(LearningFixture, EvolutionNoopWithoutCsOrSample) {
  Sst sst(4, 4);
  SelfEvolutionConfig ecfg;
  Rng rng(43);
  EXPECT_EQ(EvolveClusteringSubspaces(&sst, *partition_, data_, ecfg, rng),
            0u);
  sst.AddClustering(Subspace::FromIndices({0, 1}), 1.0);
  EXPECT_EQ(EvolveClusteringSubspaces(&sst, *partition_, {}, ecfg, rng), 0u);
}

TEST_F(LearningFixture, EvolutionRescoresExistingMembers) {
  Sst sst(6, 6);
  // Deliberately wrong initial score: evolution must re-rank by actual
  // sparsity on the sample.
  sst.AddClustering(Subspace::FromIndices({0, 1}), 1000.0);
  sst.AddClustering(Subspace::FromIndices({2, 3}), -1000.0);
  SelfEvolutionConfig ecfg;
  ecfg.offspring = 4;
  ecfg.max_dimension = 2;
  Rng rng(47);
  EvolveClusteringSubspaces(&sst, *partition_, data_, ecfg, rng);
  for (const auto& ss : sst.clustering().Ranked()) {
    EXPECT_GT(ss.score, -100.0);
    EXPECT_LT(ss.score, 300.0);
  }
}

}  // namespace
}  // namespace spot
