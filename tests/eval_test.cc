// Unit tests of src/eval: confusion metrics, ROC/AUC, subspace recovery,
// the table printer and the detection harness.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "stream/replay.h"
#include "stream/synthetic.h"

namespace spot {
namespace {

using eval::BestSubspaceJaccard;
using eval::Confusion;
using eval::RocAuc;
using eval::RocCurve;
using eval::RunDetection;
using eval::RunOptions;
using eval::RunResult;
using eval::SubspaceJaccard;
using eval::Table;

// ----------------------------------------------------------- Confusion ----

TEST(ConfusionTest, CountsAllQuadrants) {
  Confusion c;
  c.Add(true, true);    // tp
  c.Add(true, false);   // fp
  c.Add(false, true);   // fn
  c.Add(false, false);  // tn
  EXPECT_EQ(c.tp(), 1u);
  EXPECT_EQ(c.fp(), 1u);
  EXPECT_EQ(c.fn(), 1u);
  EXPECT_EQ(c.tn(), 1u);
  EXPECT_EQ(c.total(), 4u);
  EXPECT_DOUBLE_EQ(c.Precision(), 0.5);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.5);
  EXPECT_DOUBLE_EQ(c.F1(), 0.5);
  EXPECT_DOUBLE_EQ(c.FalsePositiveRate(), 0.5);
}

TEST(ConfusionTest, DegenerateCasesAreZeroNotNan) {
  Confusion c;
  EXPECT_DOUBLE_EQ(c.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.F1(), 0.0);
  EXPECT_DOUBLE_EQ(c.FalsePositiveRate(), 0.0);
}

TEST(ConfusionTest, PerfectDetector) {
  Confusion c;
  for (int i = 0; i < 10; ++i) c.Add(true, true);
  for (int i = 0; i < 90; ++i) c.Add(false, false);
  EXPECT_DOUBLE_EQ(c.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(c.F1(), 1.0);
  EXPECT_DOUBLE_EQ(c.FalsePositiveRate(), 0.0);
}

// ----------------------------------------------------------------- ROC ----

TEST(RocTest, PerfectSeparationGivesAucOne) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<bool> labels = {true, true, false, false};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 1.0);
}

TEST(RocTest, ReversedScoresGiveAucZero) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<bool> labels = {true, true, false, false};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.0);
}

TEST(RocTest, RandomScoresGiveAucNearHalf) {
  // Scores independent of labels: AUC must hover around chance.
  Rng rng(33);
  std::vector<double> scores;
  std::vector<bool> labels;
  for (int i = 0; i < 4000; ++i) {
    scores.push_back(rng.NextDouble());
    labels.push_back(rng.NextBernoulli(0.3));
  }
  EXPECT_NEAR(RocAuc(scores, labels), 0.5, 0.05);
}

TEST(RocTest, SingleClassFallsBackToHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.5, 0.7}, {true, true}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0.5, 0.7}, {false, false}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({}, {}), 0.5);
}

TEST(RocTest, CurveIsMonotone) {
  std::vector<double> scores;
  std::vector<bool> labels;
  Rng rng;
  for (int i = 0; i < 200; ++i) {
    const bool positive = i % 4 == 0;
    scores.push_back(positive ? 0.5 + 0.5 * (i % 7) / 7.0
                              : 0.5 * (i % 11) / 11.0);
    labels.push_back(positive);
  }
  const auto curve = RocCurve(scores, labels);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
  }
  EXPECT_DOUBLE_EQ(curve.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
}

// ------------------------------------------------------ Subspace match ----

TEST(SubspaceJaccardTest, IdentityAndDisjoint) {
  const Subspace a = Subspace::FromIndices({1, 2, 3});
  EXPECT_DOUBLE_EQ(SubspaceJaccard(a, a), 1.0);
  EXPECT_DOUBLE_EQ(
      SubspaceJaccard(a, Subspace::FromIndices({4, 5})), 0.0);
  EXPECT_DOUBLE_EQ(SubspaceJaccard(Subspace(), Subspace()), 1.0);
}

TEST(SubspaceJaccardTest, PartialOverlap) {
  const Subspace a = Subspace::FromIndices({1, 2});
  const Subspace b = Subspace::FromIndices({2, 3});
  EXPECT_DOUBLE_EQ(SubspaceJaccard(a, b), 1.0 / 3.0);
}

TEST(SubspaceJaccardTest, BestOverReported) {
  const Subspace truth = Subspace::FromIndices({1, 2});
  const std::vector<Subspace> reported = {
      Subspace::FromIndices({5}), Subspace::FromIndices({1, 2, 3}),
      Subspace::FromIndices({1, 2})};
  EXPECT_DOUBLE_EQ(BestSubspaceJaccard(truth, reported), 1.0);
  EXPECT_DOUBLE_EQ(BestSubspaceJaccard(truth, {}), 0.0);
}

// --------------------------------------------------------------- Table ----

TEST(TableTest, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "2.5"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name        | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer-name | 2.5   |"), std::string::npos);
}

TEST(TableTest, MissingCellsPadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"1"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| 1 |"), std::string::npos);
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
  EXPECT_EQ(Table::Int(42), "42");
}

// ------------------------------------------------------------- Harness ----

/// Toy detector: flags any point whose first attribute exceeds a cutoff.
class CutoffDetector : public StreamDetector {
 public:
  explicit CutoffDetector(double cutoff) : cutoff_(cutoff) {}
  Detection Process(const DataPoint& point) override {
    Detection d;
    d.score = point.values[0];
    d.is_outlier = point.values[0] > cutoff_;
    return d;
  }
  std::string name() const override { return "cutoff"; }

 private:
  double cutoff_;
};

std::vector<LabeledPoint> CutoffStream(int n) {
  // First attribute is the outlier indicator by construction.
  std::vector<LabeledPoint> points;
  Rng rng(25);
  for (int i = 0; i < n; ++i) {
    LabeledPoint lp;
    lp.is_outlier = rng.NextBernoulli(0.1);
    lp.point.id = static_cast<std::uint64_t>(i);
    lp.point.values = {lp.is_outlier ? rng.NextDouble(0.8, 1.0)
                                     : rng.NextDouble(0.0, 0.5),
                       rng.NextDouble()};
    if (lp.is_outlier) lp.outlying_subspace = Subspace::Singleton(0);
    points.push_back(std::move(lp));
  }
  return points;
}

TEST(HarnessTest, PerfectDetectorScoresPerfectly) {
  CutoffDetector det(0.7);
  stream::ReplaySource replay(CutoffStream(500));
  RunOptions opts;
  opts.collect_scores = true;
  const RunResult r = RunDetection(det, replay, 500, opts);
  EXPECT_EQ(r.detector_name, "cutoff");
  EXPECT_DOUBLE_EQ(r.confusion.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(r.confusion.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(r.auc, 1.0);
  EXPECT_GT(r.throughput, 0.0);
  EXPECT_EQ(r.scores.size(), 500u);
}

TEST(HarnessTest, WarmupExcludedFromMetrics) {
  CutoffDetector det(0.7);
  stream::ReplaySource replay(CutoffStream(200));
  RunOptions opts;
  opts.warmup = 150;
  const RunResult r = RunDetection(det, replay, 1000, opts);
  EXPECT_EQ(r.confusion.total(), 50u);  // only post-warmup points scored
}

TEST(HarnessTest, ExhaustedSourceStopsEarly) {
  CutoffDetector det(0.7);
  stream::ReplaySource replay(CutoffStream(30));
  const RunResult r = RunDetection(det, replay, 1000);
  EXPECT_EQ(r.confusion.total(), 30u);
}

TEST(HarnessTest, CompareDetectorsFeedsIdenticalData) {
  CutoffDetector strict(0.9);
  CutoffDetector loose(0.1);
  const auto points = CutoffStream(300);
  const auto results = eval::CompareDetectors({&strict, &loose}, points);
  ASSERT_EQ(results.size(), 2u);
  // The loose detector flags everything the strict one flags, plus more.
  EXPECT_GE(results[1].confusion.tp() + results[1].confusion.fp(),
            results[0].confusion.tp() + results[0].confusion.fp());
  EXPECT_EQ(results[0].confusion.total(), results[1].confusion.total());
}

}  // namespace
}  // namespace spot
