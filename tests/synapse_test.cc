// Unit tests of the PCS machinery: ProjectedGrid RD/IRSD semantics and the
// SynapseManager that unifies BCS + PCS maintenance.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "grid/pcs.h"
#include "grid/projected_grid.h"
#include "grid/synapse_manager.h"

namespace spot {
namespace {

Partition UnitPartition(int dims, int cells = 10) {
  return Partition(dims, cells, 0.0, 1.0);
}

// -------------------------------------------------------------- Pcs -------

TEST(PcsTest, SparseCheckRequiresBothThresholds) {
  Pcs pcs;
  pcs.rd = 0.05;
  pcs.irsd = 0.2;
  EXPECT_TRUE(pcs.IsSparse(0.1, 0.5));
  EXPECT_FALSE(pcs.IsSparse(0.01, 0.5));  // rd too high for threshold
  EXPECT_FALSE(pcs.IsSparse(0.1, 0.1));   // irsd too high for threshold
}

// ----------------------------------------------------- ProjectedGrid ------

TEST(ProjectedGridTest, UnpopulatedCellIsMaximallySparse) {
  const Partition part = UnitPartition(3);
  ProjectedGrid grid(Subspace::FromIndices({0, 1}), &part,
                     DecayModel::None());
  const Pcs pcs = grid.Query({0.5, 0.5, 0.5}, 100.0);
  EXPECT_DOUBLE_EQ(pcs.rd, 0.0);
  EXPECT_DOUBLE_EQ(pcs.irsd, 0.0);
  EXPECT_DOUBLE_EQ(pcs.count, 0.0);
}

TEST(ProjectedGridTest, RdIsRelativeToWeightedAverageCellMass) {
  const Partition part = UnitPartition(2);
  ProjectedGrid grid(Subspace::FromIndices({0}), &part, DecayModel::None());
  // Two populated cells: 9 points in cell A, 1 point in cell B.
  std::uint64_t t = 0;
  for (int i = 0; i < 9; ++i) grid.Add({0.05, 0.5}, t++);
  grid.Add({0.95, 0.5}, t++);
  const double total = 10.0;
  const Pcs dense = grid.Query({0.05, 0.0}, total);
  const Pcs sparse = grid.Query({0.95, 0.0}, total);
  // RD = count * W / sum(count^2); sum = 81 + 1 = 82.
  EXPECT_NEAR(dense.rd, 9.0 * 10.0 / 82.0, 1e-9);
  EXPECT_NEAR(sparse.rd, 1.0 * 10.0 / 82.0, 1e-9);
  EXPECT_GT(dense.rd, 1.0);
  EXPECT_LT(sparse.rd, 0.2);
}

TEST(ProjectedGridTest, SumSqDecaysTwiceAsFastAsCounts) {
  const Partition part = UnitPartition(1);
  const DecayModel model(50, 0.01);
  ProjectedGrid grid(Subspace::FromIndices({0}), &part, model);
  grid.Add({0.5}, 0);
  grid.Add({0.5}, 0);  // count 2 at tick 0: sumsq = 4
  EXPECT_NEAR(grid.SumSqAt(0), 4.0, 1e-12);
  const double a10 = model.WeightAtAge(10);
  EXPECT_NEAR(grid.SumSqAt(10), 4.0 * a10 * a10, 1e-9);
}

TEST(ProjectedGridTest, SinglePointCellHasZeroIrsd) {
  const Partition part = UnitPartition(2);
  ProjectedGrid grid(Subspace::FromIndices({0}), &part, DecayModel::None());
  grid.Add({0.95, 0.5}, 0);
  const Pcs pcs = grid.Query({0.95, 0.5}, 1.0);
  EXPECT_DOUBLE_EQ(pcs.irsd, 0.0);
  EXPECT_NEAR(pcs.count, 1.0, 1e-12);
}

TEST(ProjectedGridTest, TightClusterHasHighIrsd) {
  const Partition part = UnitPartition(2);
  ProjectedGrid grid(Subspace::FromIndices({0}), &part, DecayModel::None());
  // All points at nearly the same value inside one cell: tiny sigma.
  std::uint64_t t = 0;
  for (int i = 0; i < 20; ++i) {
    grid.Add({0.5501 + 1e-5 * i, 0.5}, t++);
  }
  const Pcs pcs = grid.Query({0.55, 0.5}, 20.0);
  EXPECT_GT(pcs.irsd, 10.0);
}

TEST(ProjectedGridTest, UniformSpreadHasIrsdNearOne) {
  const Partition part = UnitPartition(1, 1);  // single cell over [0,1]
  ProjectedGrid grid(Subspace::FromIndices({0}), &part, DecayModel::None());
  Rng rng(3);
  std::uint64_t t = 0;
  for (int i = 0; i < 5000; ++i) grid.Add({rng.NextDouble()}, t++);
  const Pcs pcs = grid.Query({0.5}, 5000.0);
  // sigma_uniform / sigma_actual ~ 1 for uniform content (the 0.01*su offset
  // in the denominator biases slightly below 1).
  EXPECT_NEAR(pcs.irsd, 1.0, 0.05);
}

TEST(ProjectedGridTest, IrsdIsCapped) {
  const Partition part = UnitPartition(1);
  ProjectedGrid grid(Subspace::FromIndices({0}), &part, DecayModel::None());
  // Identical points: sigma == 0, ratio would be 100 (1/0.01 == cap).
  for (std::uint64_t t = 0; t < 10; ++t) grid.Add({0.55}, t);
  const Pcs pcs = grid.Query({0.55}, 10.0);
  EXPECT_LE(pcs.irsd, Pcs::kIrsdCap);
  // Floating-point noise keeps sigma marginally above zero, so the value
  // sits just below the cap.
  EXPECT_NEAR(pcs.irsd, Pcs::kIrsdCap, 0.1);
}

TEST(ProjectedGridTest, DecayShrinksOldCells) {
  const Partition part = UnitPartition(1);
  ProjectedGrid grid(Subspace::FromIndices({0}), &part, DecayModel(20, 0.01));
  for (std::uint64_t t = 0; t < 5; ++t) grid.Add({0.05}, t);
  // Advance time with arrivals elsewhere.
  for (std::uint64_t t = 5; t < 100; ++t) grid.Add({0.95}, t);
  const Pcs old_cell = grid.QueryCoords({0}, 50.0);
  EXPECT_LT(old_cell.count, 0.1);  // decayed to near nothing
}

TEST(ProjectedGridTest, CompactDropsDecayedCells) {
  const Partition part = UnitPartition(1);
  ProjectedGrid grid(Subspace::FromIndices({0}), &part, DecayModel(10, 0.001),
                     1e-3, 0);
  grid.Add({0.05}, 0);
  for (std::uint64_t t = 1; t < 300; ++t) grid.Add({0.95}, t);
  EXPECT_EQ(grid.PopulatedCells(), 2u);
  grid.Compact(299);
  EXPECT_EQ(grid.PopulatedCells(), 1u);
}

TEST(ProjectedGridTest, MultiDimSubspaceCoordinates) {
  const Partition part = UnitPartition(4);
  ProjectedGrid grid(Subspace::FromIndices({1, 3}), &part,
                     DecayModel::None());
  grid.Add({0.0, 0.15, 0.0, 0.85}, 0);
  // Same projection in dims {1,3}, wildly different elsewhere: same cell.
  grid.Add({0.9, 0.18, 0.4, 0.88}, 1);
  EXPECT_EQ(grid.PopulatedCells(), 1u);
  const Pcs pcs = grid.Query({0.5, 0.11, 0.99, 0.81}, 2.0);
  EXPECT_NEAR(pcs.count, 2.0, 1e-12);
}

// ---------------------------------------------------- SynapseManager ------

TEST(SynapseManagerTest, TrackUntrackLifecycle) {
  SynapseManager mgr(UnitPartition(3), DecayModel::None());
  const Subspace s = Subspace::FromIndices({0, 2});
  EXPECT_FALSE(mgr.IsTracked(s));
  mgr.Track(s);
  EXPECT_TRUE(mgr.IsTracked(s));
  EXPECT_EQ(mgr.NumTracked(), 1u);
  mgr.Track(s);  // idempotent
  EXPECT_EQ(mgr.NumTracked(), 1u);
  mgr.Untrack(s);
  EXPECT_FALSE(mgr.IsTracked(s));
}

TEST(SynapseManagerTest, EmptySubspaceNotTrackable) {
  SynapseManager mgr(UnitPartition(3), DecayModel::None());
  mgr.Track(Subspace());
  EXPECT_EQ(mgr.NumTracked(), 0u);
}

TEST(SynapseManagerTest, AddUpdatesAllGrids) {
  SynapseManager mgr(UnitPartition(3), DecayModel::None());
  mgr.Track(Subspace::FromIndices({0}));
  mgr.Track(Subspace::FromIndices({1, 2}));
  for (std::uint64_t t = 0; t < 10; ++t) mgr.Add({0.5, 0.5, 0.5}, t);
  EXPECT_NEAR(mgr.TotalWeight(), 10.0, 1e-9);
  const Pcs a = mgr.Query({0.5, 0.5, 0.5}, Subspace::FromIndices({0}));
  const Pcs b = mgr.Query({0.5, 0.5, 0.5}, Subspace::FromIndices({1, 2}));
  EXPECT_NEAR(a.count, 10.0, 1e-9);
  EXPECT_NEAR(b.count, 10.0, 1e-9);
}

TEST(SynapseManagerTest, QueryUntrackedReturnsEmptyPcs) {
  SynapseManager mgr(UnitPartition(3), DecayModel::None());
  mgr.Add({0.5, 0.5, 0.5}, 0);
  const Pcs pcs = mgr.Query({0.5, 0.5, 0.5}, Subspace::FromIndices({0}));
  EXPECT_DOUBLE_EQ(pcs.count, 0.0);
}

TEST(SynapseManagerTest, LateTrackedGridStartsEmpty) {
  SynapseManager mgr(UnitPartition(2), DecayModel::None());
  for (std::uint64_t t = 0; t < 5; ++t) mgr.Add({0.5, 0.5}, t);
  mgr.Track(Subspace::FromIndices({0}));
  const Pcs before = mgr.Query({0.5, 0.5}, Subspace::FromIndices({0}));
  EXPECT_DOUBLE_EQ(before.count, 0.0);
  mgr.Add({0.5, 0.5}, 5);
  const Pcs after = mgr.Query({0.5, 0.5}, Subspace::FromIndices({0}));
  EXPECT_NEAR(after.count, 1.0, 1e-12);
}

TEST(SynapseManagerTest, TotalPopulatedCellsAggregates) {
  SynapseManager mgr(UnitPartition(2), DecayModel::None());
  mgr.Track(Subspace::FromIndices({0}));
  mgr.Add({0.05, 0.05}, 0);
  mgr.Add({0.95, 0.95}, 1);
  // Base grid: 2 cells; projected {0}: 2 cells.
  EXPECT_EQ(mgr.TotalPopulatedCells(), 4u);
}

TEST(SynapseManagerTest, CompactAllSweepsEveryGrid) {
  SynapseManager mgr(UnitPartition(1), DecayModel(10, 0.001), 1e-3, 0);
  mgr.Track(Subspace::FromIndices({0}));
  mgr.Add({0.05}, 0);
  for (std::uint64_t t = 1; t < 300; ++t) mgr.Add({0.95}, t);
  const std::size_t removed = mgr.CompactAll(299);
  EXPECT_GE(removed, 2u);  // stale cell gone from base + projected grid
}

TEST(SynapseManagerTest, CompactAllReclaimsPrunedSlotsAndPreservesPcs) {
  // Strong decay, manual compaction only.
  SynapseManager mgr(UnitPartition(2), DecayModel(10, 0.001), 1e-3, 0);
  const Subspace s0 = Subspace::FromIndices({0});
  const Subspace s01 = Subspace::FromIndices({0, 1});
  mgr.Track(s0);
  mgr.Track(s01);

  // One cell that will decay below the prune threshold, plus two cells kept
  // alive (interleaved, so both stay fresh) until the sweep tick.
  std::uint64_t t = 0;
  mgr.Add({0.05, 0.05}, t++);
  for (int i = 0; i < 150; ++i) {
    mgr.Add({0.55, 0.55}, t++);
    mgr.Add({0.95, 0.95}, t++);
  }
  const std::uint64_t now = t - 1;

  const Pcs mid_s0_before = mgr.Query({0.55, 0.55}, s0);
  const Pcs hi_s0_before = mgr.Query({0.95, 0.95}, s0);
  const Pcs mid_s01_before = mgr.Query({0.55, 0.55}, s01);
  for (std::size_t g = 0; g < mgr.NumTracked(); ++g) {
    ASSERT_EQ(mgr.GridAt(g)->PopulatedCells(), 3u);
    ASSERT_EQ(mgr.GridAt(g)->SlabSlots(), 3u);
    ASSERT_EQ(mgr.GridAt(g)->FreeSlots(), 0u);
  }

  // The stale cell is reclaimed from the base grid and from every projected
  // grid; its slab slots move to the free lists (the slabs never shrink).
  EXPECT_EQ(mgr.CompactAll(now), 3u);
  for (std::size_t g = 0; g < mgr.NumTracked(); ++g) {
    EXPECT_EQ(mgr.GridAt(g)->PopulatedCells(), 2u);
    EXPECT_EQ(mgr.GridAt(g)->SlabSlots(), 3u);
    EXPECT_EQ(mgr.GridAt(g)->FreeSlots(), 1u);
  }

  // Surviving cells answer the same PCS after the sweep (the sweep only
  // recomputes the squared-count sum exactly, cancelling float drift, so
  // equality is up to that correction).
  const Pcs mid_s0_after = mgr.Query({0.55, 0.55}, s0);
  const Pcs hi_s0_after = mgr.Query({0.95, 0.95}, s0);
  const Pcs mid_s01_after = mgr.Query({0.55, 0.55}, s01);
  EXPECT_NEAR(mid_s0_after.rd, mid_s0_before.rd, 1e-9);
  EXPECT_NEAR(mid_s0_after.irsd, mid_s0_before.irsd, 1e-9);
  EXPECT_NEAR(mid_s0_after.count, mid_s0_before.count, 1e-9);
  EXPECT_NEAR(hi_s0_after.rd, hi_s0_before.rd, 1e-9);
  EXPECT_NEAR(hi_s0_after.count, hi_s0_before.count, 1e-9);
  EXPECT_NEAR(mid_s01_after.rd, mid_s01_before.rd, 1e-9);
  EXPECT_NEAR(mid_s01_after.irsd, mid_s01_before.irsd, 1e-9);

  // The pruned cell reads as unpopulated, and its freed slot is recycled by
  // the next insert instead of growing the slab.
  EXPECT_EQ(mgr.Query({0.05, 0.05}, s0).count, 0.0);
  mgr.Add({0.05, 0.05}, now + 1);
  for (std::size_t g = 0; g < mgr.NumTracked(); ++g) {
    EXPECT_EQ(mgr.GridAt(g)->PopulatedCells(), 3u);
    EXPECT_EQ(mgr.GridAt(g)->SlabSlots(), 3u);
    EXPECT_EQ(mgr.GridAt(g)->FreeSlots(), 0u);
  }
}

TEST(SynapseManagerTest, TrackedSubspacesRoundTrip) {
  SynapseManager mgr(UnitPartition(4), DecayModel::None());
  mgr.Track(Subspace::FromIndices({0}));
  mgr.Track(Subspace::FromIndices({1, 2}));
  const auto tracked = mgr.TrackedSubspaces();
  EXPECT_EQ(tracked.size(), 2u);
}

// ------------------------------------------------- Slab store mechanics ---

TEST(SlabStoreTest, FreeListRecyclesPrunedSlots) {
  const Partition part = UnitPartition(1);
  // Strong decay, manual compaction only.
  ProjectedGrid grid(Subspace::FromIndices({0}), &part, DecayModel(10, 0.001),
                     1e-3, 0);
  grid.Add({0.05}, 0);
  for (std::uint64_t t = 1; t < 300; ++t) grid.Add({0.95}, t);
  ASSERT_EQ(grid.PopulatedCells(), 2u);
  ASSERT_EQ(grid.SlabSlots(), 2u);
  ASSERT_EQ(grid.FreeSlots(), 0u);

  // The stale cell is pruned: its slot moves to the free list, the slab
  // itself does not shrink.
  ASSERT_EQ(grid.Compact(299), 1u);
  EXPECT_EQ(grid.PopulatedCells(), 1u);
  EXPECT_EQ(grid.SlabSlots(), 2u);
  EXPECT_EQ(grid.FreeSlots(), 1u);

  // A brand-new cell reuses the freed slot instead of growing the slab.
  grid.Add({0.55}, 300);
  EXPECT_EQ(grid.PopulatedCells(), 2u);
  EXPECT_EQ(grid.SlabSlots(), 2u);
  EXPECT_EQ(grid.FreeSlots(), 0u);

  // The recycled slot starts from a clean record.
  const Pcs fresh = grid.QueryCoords({5}, 1.0);
  EXPECT_NEAR(fresh.count, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(fresh.irsd, 0.0);
}

TEST(SlabStoreTest, SumSqMatchesSurvivingCellsAfterCompaction) {
  const Partition part = UnitPartition(1);
  const DecayModel model(50, 0.01);
  ProjectedGrid grid(Subspace::FromIndices({0}), &part, model, 1e-3, 0);
  std::uint64_t t = 0;
  for (int i = 0; i < 30; ++i) grid.Add({0.05}, t++);
  for (int i = 0; i < 10; ++i) grid.Add({0.55}, t++);
  grid.Add({0.95}, t++);
  // Age everything, then compact: SumSqAt must equal the exact sum of the
  // surviving cells' squared decayed counts (the sweep cancels all drift).
  const std::uint64_t sweep_tick = t + 200;
  grid.Compact(sweep_tick);
  double expected = 0.0;
  for (std::uint32_t c : {0u, 5u, 9u}) {
    const Pcs pcs = grid.QueryCoords({c}, 1.0);
    expected += pcs.count * pcs.count;
  }
  EXPECT_NEAR(grid.SumSqAt(sweep_tick), expected, 1e-12);
  // And it keeps decaying at twice the count rate from there.
  const double a10 = model.WeightAtAge(10);
  EXPECT_NEAR(grid.SumSqAt(sweep_tick + 10), expected * a10 * a10, 1e-12);
}

TEST(SlabStoreTest, FusedAddAndQueryMatchesAddThenQuery) {
  const Partition part = UnitPartition(2);
  const DecayModel model(100, 0.01);
  ProjectedGrid unfused(Subspace::FromIndices({0, 1}), &part, model);
  ProjectedGrid fused(Subspace::FromIndices({0, 1}), &part, model);
  Rng rng(17);
  for (std::uint64_t t = 0; t < 500; ++t) {
    const std::vector<double> p = {rng.NextDouble(), rng.NextDouble()};
    const double w = static_cast<double>(t + 1);
    unfused.Add(p, t);
    const Pcs a = unfused.Query(p, w);
    const Pcs b = fused.AddAndQuery(p, t, w);
    ASSERT_EQ(a.count, b.count) << "tick " << t;
    ASSERT_EQ(a.rd, b.rd) << "tick " << t;
    ASSERT_EQ(a.irsd, b.irsd) << "tick " << t;
  }
  // The fused path pays one index probe per point; Add+Query pays two.
  EXPECT_EQ(fused.hash_probes(), 500u);
  EXPECT_EQ(unfused.hash_probes(), 1000u);
}

TEST(SlabStoreTest, BaseCoordProjectionMatchesRebinning) {
  const Partition part = UnitPartition(4);
  const DecayModel model = DecayModel::None();
  ProjectedGrid rebin(Subspace::FromIndices({1, 3}), &part, model);
  ProjectedGrid projected(Subspace::FromIndices({1, 3}), &part, model);
  Rng rng(23);
  for (std::uint64_t t = 0; t < 200; ++t) {
    std::vector<double> p(4);
    for (double& v : p) v = rng.NextDouble();
    const double w = static_cast<double>(t + 1);
    const Pcs a = rebin.AddAndQuery(p, t, w);
    const Pcs b = projected.AddAndQueryAt(part.BaseCell(p), p, t, w);
    ASSERT_EQ(a.count, b.count) << "tick " << t;
    ASSERT_EQ(a.rd, b.rd) << "tick " << t;
    ASSERT_EQ(a.irsd, b.irsd) << "tick " << t;
  }
  EXPECT_EQ(rebin.PopulatedCells(), projected.PopulatedCells());
}

TEST(SynapseManagerTest, AddAndQueryAlignsWithTrackedOrder) {
  SynapseManager fused(UnitPartition(3), DecayModel(100, 0.01));
  SynapseManager unfused(UnitPartition(3), DecayModel(100, 0.01));
  for (auto* mgr : {&fused, &unfused}) {
    mgr->Track(Subspace::FromIndices({0}));
    mgr->Track(Subspace::FromIndices({1, 2}));
    mgr->Track(Subspace::FromIndices({0, 2}));
  }
  const auto tracked = fused.TrackedSubspaces();
  Rng rng(29);
  std::vector<Pcs> out;
  for (std::uint64_t t = 0; t < 300; ++t) {
    const std::vector<double> p = {rng.NextDouble(), rng.NextDouble(),
                                   rng.NextDouble()};
    fused.AddAndQuery(p, t, &out);
    unfused.Add(p, t);
    ASSERT_EQ(out.size(), tracked.size());
    for (std::size_t i = 0; i < tracked.size(); ++i) {
      const Pcs q = unfused.Query(p, tracked[i]);
      ASSERT_EQ(out[i].count, q.count) << "tick " << t << " grid " << i;
      ASSERT_EQ(out[i].rd, q.rd) << "tick " << t << " grid " << i;
      ASSERT_EQ(out[i].irsd, q.irsd) << "tick " << t << " grid " << i;
    }
  }
}

TEST(SynapseManagerTest, UntrackKeepsDenseOrderConsistent) {
  SynapseManager mgr(UnitPartition(4), DecayModel::None());
  const Subspace a = Subspace::FromIndices({0});
  const Subspace b = Subspace::FromIndices({1});
  const Subspace c = Subspace::FromIndices({2});
  mgr.Track(a);
  mgr.Track(b);
  mgr.Track(c);
  mgr.Untrack(b);  // swap-remove: c takes b's dense slot
  EXPECT_FALSE(mgr.IsTracked(b));
  EXPECT_TRUE(mgr.IsTracked(a));
  EXPECT_TRUE(mgr.IsTracked(c));

  std::vector<Pcs> out;
  mgr.AddAndQuery({0.5, 0.5, 0.5, 0.5}, 0, &out);
  const auto tracked = mgr.TrackedSubspaces();
  ASSERT_EQ(tracked.size(), 2u);
  ASSERT_EQ(out.size(), 2u);
  // Each output slot matches a direct query of the same-index subspace.
  for (std::size_t i = 0; i < tracked.size(); ++i) {
    const Pcs q = mgr.Query({0.5, 0.5, 0.5, 0.5}, tracked[i]);
    EXPECT_EQ(out[i].count, q.count);
  }
}

// PCS consistency: the online ProjectedGrid (no decay) must agree with the
// batch evaluation used by MOGA objectives. Guards against the two code
// paths drifting apart.
TEST(SynapseManagerTest, OnlinePcsMatchesBatchForStaticData) {
  const Partition part = UnitPartition(2);
  SynapseManager mgr(part, DecayModel::None());
  const Subspace s = Subspace::FromIndices({0});
  mgr.Track(s);
  Rng rng(11);
  std::vector<std::vector<double>> data;
  std::uint64_t t = 0;
  for (int i = 0; i < 200; ++i) {
    data.push_back({rng.NextDouble(), rng.NextDouble()});
    mgr.Add(data.back(), t++);
  }
  // Batch recomputation of RD for a probe point.
  const std::vector<double> probe = data.front();
  const Pcs online = mgr.Query(probe, s);
  // Histogram the cell occupancy by hand.
  std::vector<double> counts(10, 0.0);
  for (const auto& row : data) {
    counts[part.IntervalIndex(0, row[0])] += 1.0;
  }
  double sumsq = 0.0;
  for (double c : counts) sumsq += c * c;
  const double expected_rd =
      counts[part.IntervalIndex(0, probe[0])] * 200.0 / sumsq;
  EXPECT_NEAR(online.rd, expected_rd, 1e-9);
}

}  // namespace
}  // namespace spot
