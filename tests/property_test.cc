// Parameterized property tests (TEST_P sweeps) over the library's core
// invariants: the (omega, epsilon) decay contract, BCS additivity, lattice
// cardinalities, NSGA-II front invariants, and PCS semantics across grid
// resolutions.

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "grid/bcs.h"
#include "grid/decay.h"
#include "grid/partition.h"
#include "grid/projected_grid.h"
#include "moga/nsga2.h"
#include "moga/objectives.h"
#include "subspace/lattice.h"

namespace spot {
namespace {

// ----------------------------------------- (omega, epsilon) contract ------

class DecayContractTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(DecayContractTest, ResidualOutOfWindowWeightBounded) {
  const auto [omega, epsilon] = GetParam();
  const DecayModel model(omega, epsilon);
  // Feed exactly omega points, then age them all past the window edge: the
  // surviving total weight must be <= epsilon (the paper's contract).
  DecayedCounter counter(model);
  for (std::uint64_t t = 0; t < omega; ++t) counter.Observe(t);
  const double residual = counter.WeightAt(2 * omega);
  EXPECT_LE(residual, epsilon * (1.0 + 1e-9));
}

TEST_P(DecayContractTest, AlphaWithinUnitInterval) {
  const auto [omega, epsilon] = GetParam();
  const DecayModel model(omega, epsilon);
  EXPECT_GT(model.alpha(), 0.0);
  EXPECT_LT(model.alpha(), 1.0);
}

TEST_P(DecayContractTest, InWindowWeightDominatesOutOfWindow) {
  const auto [omega, epsilon] = GetParam();
  const DecayModel model(omega, epsilon);
  // Weight of the newest omega points vs everything older, at steady state:
  // in-window share must be at least (1 - epsilon) of a window's total.
  const double total = model.SteadyStateWeight();
  double in_window = 0.0;
  for (std::uint64_t a = 0; a < omega; ++a) in_window += model.WeightAtAge(a);
  EXPECT_NEAR(total - in_window, epsilon, 1e-6 * total);
}

INSTANTIATE_TEST_SUITE_P(
    OmegaEpsilonSweep, DecayContractTest,
    ::testing::Combine(::testing::Values(10, 100, 1000, 10000),
                       ::testing::Values(0.1, 0.01, 0.001)));

// ----------------------------------------------------- BCS additivity -----

class BcsAdditivityTest : public ::testing::TestWithParam<int> {};

TEST_P(BcsAdditivityTest, SplitStreamsMergeToWholeAnyDimension) {
  const int dims = GetParam();
  const DecayModel model(64, 0.01);
  Rng rng(static_cast<std::uint64_t>(dims));
  Bcs whole(dims);
  Bcs part_a(dims);
  Bcs part_b(dims);
  Bcs part_c(dims);
  for (std::uint64_t t = 0; t < 150; ++t) {
    std::vector<double> p(static_cast<std::size_t>(dims));
    for (double& v : p) v = rng.NextDouble();
    whole.Add(p, t, model);
    switch (t % 3) {
      case 0:
        part_a.Add(p, t, model);
        break;
      case 1:
        part_b.Add(p, t, model);
        break;
      default:
        part_c.Add(p, t, model);
        break;
    }
  }
  part_a.Merge(part_b, 149, model);
  part_a.Merge(part_c, 149, model);
  EXPECT_NEAR(part_a.count(), whole.count(), 1e-9);
  for (int d = 0; d < dims; ++d) {
    EXPECT_NEAR(part_a.linear_sum()[static_cast<std::size_t>(d)],
                whole.linear_sum()[static_cast<std::size_t>(d)], 1e-9);
    EXPECT_NEAR(part_a.squared_sum()[static_cast<std::size_t>(d)],
                whole.squared_sum()[static_cast<std::size_t>(d)], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(DimSweep, BcsAdditivityTest,
                         ::testing::Values(1, 2, 5, 10, 32, 64));

// ------------------------------------------------ Lattice cardinality -----

class LatticeCardinalityTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LatticeCardinalityTest, EnumerationMatchesClosedForm) {
  const auto [num_dims, max_dim] = GetParam();
  const auto lattice = EnumerateLattice(num_dims, max_dim);
  EXPECT_EQ(lattice.size(), LatticeSize(num_dims, max_dim));
  for (const auto& s : lattice) {
    EXPECT_GE(s.Dimension(), 1);
    EXPECT_LE(s.Dimension(), max_dim);
    EXPECT_LT(s.bits(), 1ULL << num_dims);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizeSweep, LatticeCardinalityTest,
    ::testing::Combine(::testing::Values(3, 6, 10, 14),
                       ::testing::Values(1, 2, 3)));

// --------------------------------------------- Partition quantization -----

class PartitionQuantizationTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionQuantizationTest, EveryValueMapsToValidInterval) {
  const int cells = GetParam();
  const Partition p(1, cells, -3.0, 7.0);
  Rng rng(static_cast<std::uint64_t>(cells));
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.NextDouble(-10.0, 14.0);  // includes out-of-range
    const std::uint32_t idx = p.IntervalIndex(0, v);
    EXPECT_LT(idx, static_cast<std::uint32_t>(cells));
  }
}

TEST_P(PartitionQuantizationTest, IntervalIsMonotoneInValue) {
  const int cells = GetParam();
  const Partition p(1, cells, 0.0, 1.0);
  std::uint32_t prev = 0;
  for (double v = 0.0; v <= 1.0; v += 0.001) {
    const std::uint32_t idx = p.IntervalIndex(0, v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST_P(PartitionQuantizationTest, CellWidthTimesCellsCoversRange) {
  const int cells = GetParam();
  const Partition p(1, cells, -3.0, 7.0);
  EXPECT_NEAR(p.CellWidth(0) * cells, 10.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(CellSweep, PartitionQuantizationTest,
                         ::testing::Values(2, 5, 10, 50, 1000));

// ----------------------------------------- PCS across grid resolutions ----

class PcsResolutionTest : public ::testing::TestWithParam<int> {};

TEST_P(PcsResolutionTest, IsolatedPointSparserThanClusterMember) {
  const int cells = GetParam();
  const Partition part(2, cells, 0.0, 1.0);
  ProjectedGrid grid(Subspace::FromIndices({0}), &part, DecayModel::None());
  Rng rng(7);
  std::uint64_t t = 0;
  for (int i = 0; i < 400; ++i) {
    grid.Add({0.3 + 0.01 * rng.NextGaussian(), 0.5}, t++);
  }
  grid.Add({0.95, 0.5}, t++);
  const Pcs cluster = grid.Query({0.3, 0.5}, 401.0);
  const Pcs isolated = grid.Query({0.95, 0.5}, 401.0);
  EXPECT_LT(isolated.rd, cluster.rd);
  EXPECT_LE(isolated.irsd, cluster.irsd + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ResolutionSweep, PcsResolutionTest,
                         ::testing::Values(4, 8, 10, 16, 32));

// ----------------------------------------------- NSGA-II invariants -------

class Nsga2InvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(Nsga2InvariantTest, PopulationSizeAndBoundsPreserved) {
  const int pop_size = GetParam();
  Rng data_rng(3);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 100; ++i) {
    data.push_back({data_rng.NextDouble(), data_rng.NextDouble(),
                    data_rng.NextDouble(), data_rng.NextDouble(),
                    data_rng.NextDouble()});
  }
  const Partition part(5, 8, 0.0, 1.0);
  BatchSparsityObjectives obj(&part, &data);
  Nsga2Config cfg;
  cfg.num_dims = 5;
  cfg.max_dimension = 3;
  cfg.population_size = pop_size;
  cfg.generations = 4;
  cfg.seed = static_cast<std::uint64_t>(pop_size);
  Nsga2 nsga2(cfg, &obj);
  const auto pop = nsga2.Run();
  ASSERT_EQ(pop.size(), static_cast<std::size_t>(pop_size));
  bool saw_rank0 = false;
  for (const auto& ind : pop) {
    EXPECT_GE(ind.subspace.Dimension(), 1);
    EXPECT_LE(ind.subspace.Dimension(), 3);
    EXPECT_GE(ind.rank, 0);
    if (ind.rank == 0) saw_rank0 = true;
    ASSERT_EQ(ind.objectives.values.size(), 3u);
  }
  EXPECT_TRUE(saw_rank0);
}

TEST_P(Nsga2InvariantTest, FinalFrontIsMutuallyNonDominated) {
  const int pop_size = GetParam();
  Rng data_rng(5);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 80; ++i) {
    data.push_back({data_rng.NextDouble(), data_rng.NextDouble(),
                    data_rng.NextDouble(), data_rng.NextDouble()});
  }
  const Partition part(4, 8, 0.0, 1.0);
  BatchSparsityObjectives obj(&part, &data);
  Nsga2Config cfg;
  cfg.num_dims = 4;
  cfg.max_dimension = 2;
  cfg.population_size = pop_size;
  cfg.generations = 3;
  Nsga2 nsga2(cfg, &obj);
  const auto front = Nsga2::ParetoFront(nsga2.Run());
  for (const auto& a : front) {
    for (const auto& b : front) {
      EXPECT_FALSE(Dominates(a.objectives, b.objectives))
          << a.subspace.ToString() << " dominates " << b.subspace.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PopSweep, Nsga2InvariantTest,
                         ::testing::Values(8, 16, 32));

// -------------------------------------------- Decayed-count coherence -----

class GridDecayCoherenceTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(GridDecayCoherenceTest, CellCountsNeverExceedTotalWeight) {
  const auto [omega, epsilon] = GetParam();
  const Partition part(2, 8, 0.0, 1.0);
  ProjectedGrid grid(Subspace::FromIndices({0, 1}), &part,
                     DecayModel(omega, epsilon));
  Rng rng(omega);
  double total = 0.0;
  const DecayModel model(omega, epsilon);
  std::uint64_t t = 0;
  for (int i = 0; i < 500; ++i) {
    grid.Add({rng.NextDouble(), rng.NextDouble()}, t);
    total = total * model.alpha() + 1.0;
    ++t;
  }
  // Probe a handful of cells; no decayed cell count may exceed the decayed
  // total stream weight.
  for (int i = 0; i < 50; ++i) {
    const Pcs pcs =
        grid.Query({rng.NextDouble(), rng.NextDouble()}, total);
    EXPECT_LE(pcs.count, total * (1.0 + 1e-9));
    EXPECT_GE(pcs.count, 0.0);
    EXPECT_GE(pcs.rd, 0.0);
    EXPECT_GE(pcs.irsd, 0.0);
    EXPECT_LE(pcs.irsd, Pcs::kIrsdCap);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DecaySweep, GridDecayCoherenceTest,
    ::testing::Combine(::testing::Values(50, 500, 5000),
                       ::testing::Values(0.1, 0.001)));

}  // namespace
}  // namespace spot
