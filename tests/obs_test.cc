// Tests of the observability layer (src/obs/, DESIGN.md Section 9): the
// log2 histogram's bucket boundaries and quantile accuracy guarantee
// (within one power-of-two bucket of the exact nearest-rank order
// statistic), exact and associative merging, the registry / snapshot /
// hub plumbing, the Prometheus text renderer, and the standalone HTTP
// exporter over a real socket.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "obs/exposition.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"

namespace spot {
namespace obs {
namespace {

// ---------------------------------------------------------------- buckets --

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 is [0, 1]; bucket i is (2^(i-1), 2^i].
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(0.5), 0);
  EXPECT_EQ(Histogram::BucketIndex(1.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1.0000001), 1);
  EXPECT_EQ(Histogram::BucketIndex(2.0), 1);
  EXPECT_EQ(Histogram::BucketIndex(2.0000001), 2);
  EXPECT_EQ(Histogram::BucketIndex(3.0), 2);
  EXPECT_EQ(Histogram::BucketIndex(4.0), 2);
  EXPECT_EQ(Histogram::BucketIndex(5.0), 3);
  // Exact powers of two land in the bucket they close.
  for (int k = 1; k < 62; ++k) {
    const double v = std::ldexp(1.0, k);  // 2^k
    EXPECT_EQ(Histogram::BucketIndex(v), k) << "2^" << k;
    EXPECT_EQ(Histogram::BucketIndex(std::nextafter(v, 1e300)), k + 1)
        << "just above 2^" << k;
  }
  // Degenerate inputs fall into bucket 0; huge ones into the overflow.
  EXPECT_EQ(Histogram::BucketIndex(-7.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0);
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);

  // Bounds are consistent with the index mapping.
  for (int i = 0; i < Histogram::kNumBuckets - 1; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpperBound(i)), i);
    if (i > 0) {
      EXPECT_EQ(Histogram::BucketLowerBound(i),
                Histogram::BucketUpperBound(i - 1));
    }
  }
}

TEST(HistogramTest, MomentsAndEmptyBehaviour) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  h.Record(10.0);
  h.Record(30.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), 40.0);
  EXPECT_EQ(h.mean(), 20.0);
  EXPECT_EQ(h.min(), 10.0);
  EXPECT_EQ(h.max(), 30.0);
}

// --------------------------------------------------------------- quantile --

/// Exact nearest-rank order statistic — the semantics Histogram::Quantile
/// estimates (NOT the linearly interpolated spot::Quantile, which can
/// straddle two buckets).
double NearestRank(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  std::size_t rank = 0;
  if (q > 0.0) {
    const double scaled = std::ceil(q * static_cast<double>(n)) - 1.0;
    rank = std::min<std::size_t>(
        n - 1, static_cast<std::size_t>(std::max(0.0, scaled)));
  }
  return v[rank];
}

TEST(HistogramTest, QuantileWithinOneBucketOfExact) {
  Rng rng(20260808);
  for (int trial = 0; trial < 30; ++trial) {
    Histogram h;
    std::vector<double> sample;
    const int n = 1 + rng.NextInt(0, 2000);
    for (int i = 0; i < n; ++i) {
      // Mix scales so every few buckets get hit: uniform exponent, then
      // uniform mantissa — plus occasional sub-1 values for bucket 0.
      const double v =
          rng.NextDouble() < 0.1
              ? rng.NextDouble()
              : std::ldexp(1.0 + rng.NextDouble(), rng.NextInt(0, 20));
      h.Record(v);
      sample.push_back(v);
    }
    for (const double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
      const double exact = NearestRank(sample, q);
      const double est = h.Quantile(q);
      if (exact <= 1.0) {
        EXPECT_LE(std::fabs(est - exact), 1.0) << "q=" << q << " n=" << n;
      } else {
        // Same bucket => within a factor of two.
        EXPECT_GE(est, exact / 2.0) << "q=" << q << " n=" << n;
        EXPECT_LE(est, exact * 2.0) << "q=" << q << " n=" << n;
      }
    }
    // The estimate never escapes the observed range.
    EXPECT_GE(h.Quantile(0.0), h.min());
    EXPECT_LE(h.Quantile(1.0), h.max());
  }
}

TEST(HistogramTest, SingleValueQuantilesAreExact) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(37.5);
  // One populated bucket, interpolation clamped to [min, max].
  EXPECT_EQ(h.Quantile(0.0), 37.5);
  EXPECT_EQ(h.Quantile(0.5), 37.5);
  EXPECT_EQ(h.Quantile(1.0), 37.5);
}

// ------------------------------------------------------------------ merge --

TEST(HistogramTest, MergeIsExactAndAssociative) {
  // Integer-valued samples: double sums compare exactly, so equality of
  // merged histograms is bit-for-bit, not approximate.
  Rng rng(99);
  Histogram a, b, c, all;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.NextInt(0, 100000);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).Record(v);
    all.Record(v);
  }

  Histogram left = a;  // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  Histogram bc = b;  // a + (b + c)
  bc.Merge(c);
  Histogram right = a;
  right.Merge(bc);

  EXPECT_EQ(left, right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_EQ(left.sum(), all.sum());
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(left.bucket(i), all.bucket(i)) << "bucket " << i;
  }

  Histogram empty;
  Histogram with_empty = all;
  with_empty.Merge(empty);
  EXPECT_EQ(with_empty, all);
  empty.Merge(all);
  EXPECT_EQ(empty, all);
}

TEST(HistogramTest, RestoreRoundTrips) {
  Rng rng(7);
  Histogram h;
  for (int i = 0; i < 333; ++i) h.Record(rng.NextInt(0, 5000));
  std::uint64_t counts[Histogram::kNumBuckets];
  for (int i = 0; i < Histogram::kNumBuckets; ++i) counts[i] = h.bucket(i);
  const Histogram r = Histogram::Restore(counts, h.sum(), h.min(), h.max());
  EXPECT_EQ(r, h);

  const std::uint64_t zeros[Histogram::kNumBuckets] = {};
  const Histogram e = Histogram::Restore(zeros, 123.0, 4.0, 5.0);
  EXPECT_EQ(e.count(), 0u);  // moments of an empty histogram are dropped
  EXPECT_EQ(e, Histogram());
}

// --------------------------------------------------- registry / hub ------

TEST(RegistryTest, InternsStablePointersAndSnapshots) {
  Registry reg;
  Counter* c = reg.GetCounter("reqs");
  EXPECT_EQ(reg.GetCounter("reqs"), c);  // same name, same instrument
  c->Inc();
  c->Inc(4);
  reg.GetGauge("depth")->Set(3.5);
  reg.GetHistogram("lat")->Record(8.0);

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("reqs"), 5u);
  EXPECT_EQ(snap.gauges.at("depth"), 3.5);
  EXPECT_EQ(snap.histograms.at("lat").count(), 1u);

  // The snapshot is a copy: later mutation does not leak into it.
  c->Inc(100);
  EXPECT_EQ(snap.counters.at("reqs"), 5u);
}

TEST(RegistryTest, SnapshotMergeAddsAndCombines) {
  MetricsSnapshot a, b;
  a.counters["x"] = 2;
  b.counters["x"] = 3;
  b.counters["only_b"] = 7;
  a.gauges["g"] = 1.0;
  b.gauges["g"] = 2.5;
  a.histograms["h"].Record(4.0);
  b.histograms["h"].Record(1000.0);
  a.Merge(b);
  EXPECT_EQ(a.counters.at("x"), 5u);
  EXPECT_EQ(a.counters.at("only_b"), 7u);
  EXPECT_EQ(a.gauges.at("g"), 3.5);
  EXPECT_EQ(a.histograms.at("h").count(), 2u);
  EXPECT_EQ(a.histograms.at("h").max(), 1000.0);
}

TEST(MetricsHubTest, PublishAndScrape) {
  MetricsHub hub(2);
  EXPECT_EQ(hub.size(), 2u);
  EXPECT_TRUE(hub.Slot(0).empty());

  MetricsSnapshot snap;
  snap.counters["n"] = 9;
  hub.Publish(0, snap);
  EXPECT_EQ(hub.Slot(0).counters.at("n"), 9u);
  EXPECT_TRUE(hub.Slot(1).empty());

  snap.counters["n"] = 11;  // republish overwrites, not accumulates
  hub.Publish(0, snap);
  EXPECT_EQ(hub.Slot(0).counters.at("n"), 11u);

  hub.Publish(7, snap);  // out of range: ignored, not UB
  const std::vector<MetricsSnapshot> all = hub.All();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].counters.at("n"), 11u);
}

TEST(ScopedLatencyTest, RecordsElapsedMicros) {
  Histogram h;
  { ScopedLatency timer(&h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.min(), 0.0);
  { ScopedLatency noop(nullptr); }  // must not crash
}

// ------------------------------------------------------------- exposition --

TEST(ExpositionTest, RendersPrometheusTextWithLabels) {
  MetricsSnapshot r0, r1;
  r0.counters["points_ingested"] = 100;
  r1.counters["points_ingested"] = 50;
  r0.gauges["connections"] = 2;
  r0.histograms["pipeline_process_us"].Record(10.0);
  r0.histograms["pipeline_process_us"].Record(300.0);
  MetricsSnapshot global;
  global.counters["sessions_handed_off"] = 1;

  const std::string text = RenderPrometheus(
      {{"reactor=\"0\"", r0}, {"reactor=\"1\"", r1}, {"", global}});

  EXPECT_NE(text.find("# TYPE spot_points_ingested counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("spot_points_ingested{reactor=\"0\"} 100\n"),
            std::string::npos);
  EXPECT_NE(text.find("spot_points_ingested{reactor=\"1\"} 50\n"),
            std::string::npos);
  EXPECT_NE(text.find("spot_sessions_handed_off 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE spot_pipeline_process_us histogram\n"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "spot_pipeline_process_us_bucket{reactor=\"0\",le=\"+Inf\"} 2\n"),
      std::string::npos);
  EXPECT_NE(text.find("spot_pipeline_process_us_count{reactor=\"0\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("spot_pipeline_process_us_sum{reactor=\"0\"} 310\n"),
            std::string::npos);
  // Exactly one TYPE line per family even though two sections carry it.
  std::size_t type_lines = 0;
  for (std::size_t pos = text.find("# TYPE spot_points_ingested");
       pos != std::string::npos;
       pos = text.find("# TYPE spot_points_ingested", pos + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
}

TEST(ExpositionTest, EmbeddedLabelsMergeAfterTheSectionLabel) {
  // Registry keys may embed labels in the name (`perf_cycles{stage=...}`,
  // DESIGN.md Section 12); the renderer must split them back out, put the
  // section label first, and still emit exactly one TYPE line per family.
  MetricsSnapshot r0, r1;
  r0.counters["perf_cycles{stage=\"decode\"}"] = 100;
  r0.counters["perf_cycles{stage=\"process\"}"] = 900;
  r1.counters["perf_cycles{stage=\"decode\"}"] = 50;
  r0.gauges["perf_ipc{stage=\"decode\"}"] = 1.5;
  MetricsSnapshot svc;
  svc.counters["perf_cycles{stage=\"probe\",engine_shard=\"2\"}"] = 7;

  const std::string text = RenderPrometheus(
      {{"reactor=\"0\"", r0}, {"reactor=\"1\"", r1}, {"shard=\"0\"", svc}});

  EXPECT_NE(
      text.find("spot_perf_cycles{reactor=\"0\",stage=\"decode\"} 100\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("spot_perf_cycles{reactor=\"0\",stage=\"process\"} 900\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("spot_perf_cycles{reactor=\"1\",stage=\"decode\"} 50\n"),
      std::string::npos);
  EXPECT_NE(text.find("spot_perf_cycles{shard=\"0\",stage=\"probe\","
                      "engine_shard=\"2\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("spot_perf_ipc{reactor=\"0\",stage=\"decode\"} 1.5\n"),
            std::string::npos);
  // One TYPE line for the whole spot_perf_cycles family despite four
  // series across three sections, and the gauge typed independently.
  std::size_t type_lines = 0;
  for (std::size_t pos = text.find("# TYPE spot_perf_cycles counter");
       pos != std::string::npos;
       pos = text.find("# TYPE spot_perf_cycles counter", pos + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_NE(text.find("# TYPE spot_perf_ipc gauge\n"), std::string::npos);
  // A braced key must never leak into an exposition name verbatim.
  EXPECT_EQ(text.find("spot_perf_cycles{stage=\"decode\"}{"),
            std::string::npos);
}

TEST(ExpositionTest, CumulativeBucketsAreMonotonic) {
  Rng rng(5);
  MetricsSnapshot snap;
  Histogram* h = &snap.histograms["lat"];
  for (int i = 0; i < 400; ++i) {
    h->Record(std::ldexp(1.0 + rng.NextDouble(), rng.NextInt(0, 12)));
  }
  const std::string text = RenderPrometheus({{"", snap}});
  // Parse the _bucket series back and check the cumulative invariant.
  std::uint64_t prev = 0;
  std::size_t buckets_seen = 0;
  std::size_t pos = 0;
  while ((pos = text.find("spot_lat_bucket{", pos)) != std::string::npos) {
    const std::size_t sp = text.find(' ', pos);
    const std::size_t nl = text.find('\n', sp);
    const std::uint64_t cum = std::strtoull(
        text.substr(sp + 1, nl - sp - 1).c_str(), nullptr, 10);
    EXPECT_GE(cum, prev);
    prev = cum;
    ++buckets_seen;
    pos = nl;
  }
  EXPECT_GT(buckets_seen, 2u);
  EXPECT_EQ(prev, h->count());  // the +Inf bucket equals the total count
}

TEST(ExpositionTest, SummaryLineNamesEveryInstrument) {
  MetricsSnapshot snap;
  snap.counters["batches_run"] = 12;
  snap.gauges["connections"] = 3;
  snap.histograms["pipeline_process_us"].Record(100.0);
  const std::string line = SummaryLine(snap);
  EXPECT_NE(line.find("batches_run=12"), std::string::npos);
  EXPECT_NE(line.find("connections=3"), std::string::npos);
  EXPECT_NE(line.find("pipeline_process_us=1/"), std::string::npos);
}

// ----------------------------------------------------------- quantiles ----

TEST(QuantilesTest, MatchesSingleQuantileCalls) {
  Rng rng(13);
  std::vector<double> v;
  for (int i = 0; i < 777; ++i) v.push_back(rng.NextDouble() * 1e4);
  const std::vector<double> qs = {0.0, 0.25, 0.5, 0.95, 0.99, 1.0};
  const std::vector<double> multi = Quantiles(v, qs);
  ASSERT_EQ(multi.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(multi[i], Quantile(v, qs[i])) << "q=" << qs[i];
  }
  const std::vector<double> empty = Quantiles({}, qs);
  ASSERT_EQ(empty.size(), qs.size());
  for (const double x : empty) EXPECT_EQ(x, 0.0);
}

// -------------------------------------------------------- http exporter ---

/// One blocking HTTP/1.0 request against the exporter, returning the full
/// response (headers + body).
std::string HttpGet(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::send(fd, request.data() + off, request.size() - off,
                             MSG_NOSIGNAL);
    EXPECT_GT(n, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpExporterTest, ServesMetricsAndRejectsUnknownPaths) {
  HttpExporter exporter("127.0.0.1", 0, [] {
    MetricsSnapshot snap;
    snap.counters["points_ingested"] = 42;
    return RenderPrometheus({{"reactor=\"0\"", snap}});
  });
  std::string error;
  ASSERT_TRUE(exporter.Start(&error)) << error;
  ASSERT_GT(exporter.port(), 0);

  const std::string ok =
      HttpGet(exporter.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(ok.find("spot_points_ingested{reactor=\"0\"} 42\n"),
            std::string::npos);

  const std::string not_found =
      HttpGet(exporter.port(), "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(not_found.find("404"), std::string::npos);

  const std::string bad_method =
      HttpGet(exporter.port(), "PUT /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(bad_method.find("405"), std::string::npos);

  exporter.Stop();
  exporter.Stop();  // idempotent
}

TEST(HttpExporterTest, AddRouteServesExtraPathsWithOwnContentType) {
  HttpExporter exporter("127.0.0.1", 0, [] { return std::string("prom"); });
  exporter.AddRoute("/trace", [] {
    return std::string("{\"traceEvents\":[]}");
  });
  std::string error;
  ASSERT_TRUE(exporter.Start(&error)) << error;

  // The default renderer answers both / and /metrics.
  const std::string root = HttpGet(exporter.port(), "GET / HTTP/1.0\r\n\r\n");
  EXPECT_NE(root.find("200 OK"), std::string::npos);
  EXPECT_NE(root.find("prom"), std::string::npos);

  const std::string trace =
      HttpGet(exporter.port(), "GET /trace HTTP/1.0\r\n\r\n");
  EXPECT_NE(trace.find("200 OK"), std::string::npos);
  EXPECT_NE(trace.find("application/json"), std::string::npos);
  EXPECT_NE(trace.find("{\"traceEvents\":[]}"), std::string::npos);

  // Query strings are stripped before the exact-path match; unknown paths
  // still 404.
  const std::string with_query =
      HttpGet(exporter.port(), "GET /trace?pretty=1 HTTP/1.0\r\n\r\n");
  EXPECT_NE(with_query.find("200 OK"), std::string::npos);
  const std::string unknown =
      HttpGet(exporter.port(), "GET /tracer HTTP/1.0\r\n\r\n");
  EXPECT_NE(unknown.find("404"), std::string::npos);
  exporter.Stop();
}

TEST(HttpExporterTest, SlowReadingClientCannotWedgeTheExporter) {
  // Regression: the exporter serves connections serially, so a scraper
  // that accepts the response one sip at a time used to reset the
  // per-send timeout on every sip and hold the thread hostage for as
  // long as it cared to trickle. One deadline now bounds the whole
  // exchange. The body must dwarf the socket buffers so the sender
  // actually blocks on the slow reader.
  const std::string big_body(16 * 1024 * 1024, 'm');
  HttpExporter exporter("127.0.0.1", 0,
                        [&big_body] { return big_body; });
  exporter.set_response_deadline_ms(300);
  std::string error;
  ASSERT_TRUE(exporter.Start(&error)) << error;

  // The trickle client: request /metrics, then read one byte every 20 ms
  // without ever draining the socket.
  std::thread slow([port = exporter.port()] {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return;
    }
    const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
    (void)!::send(fd, req, sizeof(req) - 1, MSG_NOSIGNAL);
    char byte;
    for (int i = 0; i < 100; ++i) {
      if (::recv(fd, &byte, 1, 0) <= 0) break;  // server gave up on us
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ::close(fd);
  });

  // Give the trickle client time to occupy the serve loop, then scrape
  // normally: the full body must arrive promptly once the deadline cuts
  // the slow client off.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto t0 = std::chrono::steady_clock::now();
  const std::string response =
      HttpGet(exporter.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  slow.join();

  EXPECT_LT(elapsed_s, 10.0) << "fast scraper waited behind a slow reader";
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  // The Content-Length promise curl relies on, and a body that keeps it.
  const std::string want_len =
      "Content-Length: " + std::to_string(big_body.size());
  EXPECT_NE(response.find(want_len), std::string::npos);
  const std::size_t header_end = response.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  EXPECT_EQ(response.size() - header_end - 4, big_body.size());
  exporter.Stop();
}

}  // namespace
}  // namespace obs
}  // namespace spot
