// Equivalence tests of the sharded detection engine: ShardedSpotEngine
// verdicts (labels, findings, scores) and side-effect counters must be
// bit-identical to sequential SpotDetector processing at every shard count
// and batch size, including runs that cross CS self-evolution and
// drift-relearn boundaries. The TSan CI job runs this binary to prove the
// fan-out/join protocol is race-free at K in {2, 4, 8}.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "engine/sharded_engine.h"
#include "engine/thread_pool.h"
#include "eval/harness.h"
#include "eval/presets.h"
#include "stream/drift.h"
#include "stream/replay.h"
#include "stream/synthetic.h"

namespace spot {
namespace {

/// A stream whose concept is abruptly replaced twice inside the run, so the
/// equivalence sweep crosses Page-Hinkley drift relearns as well as the
/// periodic self-evolution ticks.
std::vector<LabeledPoint> DriftingEvalStream(int dims, int n,
                                             std::uint64_t seed) {
  stream::DriftConfig dcfg;
  dcfg.base.dimension = dims;
  dcfg.base.outlier_probability = 0.02;
  dcfg.base.concept_seed = 900;
  dcfg.base.seed = seed;
  dcfg.kind = stream::DriftKind::kAbrupt;
  dcfg.period = n / 3;
  stream::DriftingStream gen(dcfg);
  return Take(gen, static_cast<std::size_t>(n));
}

std::vector<std::vector<double>> TrainingBatch(int dims, int n) {
  stream::SyntheticConfig scfg;
  scfg.dimension = dims;
  scfg.outlier_probability = 0.0;
  scfg.concept_seed = 900;
  scfg.seed = 901;
  stream::GaussianStream gen(scfg);
  return ValuesOf(Take(gen, static_cast<std::size_t>(n)));
}

/// Config exercising every mid-batch event source: OS growth from detected
/// outliers, periodic CS self-evolution, and drift relearning.
SpotConfig EventfulConfig() {
  SpotConfig cfg = eval::FastTestConfig();
  cfg.os_update_every = 8;
  cfg.evolution_period = 400;
  cfg.drift_detection = true;
  cfg.relearn_on_drift = true;
  cfg.drift_lambda = 8.0;
  return cfg;
}

std::unique_ptr<SpotDetector> LearnedDetector(
    const SpotConfig& cfg,
    const std::vector<std::vector<double>>& training) {
  auto det = std::make_unique<SpotDetector>(cfg);
  EXPECT_TRUE(det->Learn(training));
  return det;
}

void ExpectIdentical(const SpotResult& a, const SpotResult& b,
                     std::size_t point_idx, const char* label) {
  EXPECT_EQ(a.is_outlier, b.is_outlier) << label << " point " << point_idx;
  // Bit-identical, not approximately equal: the sharded path must run the
  // exact same arithmetic as the sequential path.
  EXPECT_EQ(a.score, b.score) << label << " point " << point_idx;
  ASSERT_EQ(a.findings.size(), b.findings.size())
      << label << " point " << point_idx;
  for (std::size_t f = 0; f < a.findings.size(); ++f) {
    EXPECT_EQ(a.findings[f].subspace.bits(), b.findings[f].subspace.bits())
        << label << " point " << point_idx << " finding " << f;
    EXPECT_EQ(a.findings[f].pcs.rd, b.findings[f].pcs.rd);
    EXPECT_EQ(a.findings[f].pcs.irsd, b.findings[f].pcs.irsd);
    EXPECT_EQ(a.findings[f].pcs.count, b.findings[f].pcs.count);
  }
}

void ExpectSameSideEffects(const SpotDetector& a, const SpotDetector& b,
                           const char* label) {
  EXPECT_EQ(a.stats().points_processed, b.stats().points_processed) << label;
  EXPECT_EQ(a.stats().outliers_detected, b.stats().outliers_detected)
      << label;
  EXPECT_EQ(a.stats().os_growth_runs, b.stats().os_growth_runs) << label;
  EXPECT_EQ(a.stats().evolution_rounds, b.stats().evolution_rounds) << label;
  EXPECT_EQ(a.stats().drifts_detected, b.stats().drifts_detected) << label;
  EXPECT_EQ(a.TrackedSubspaces(), b.TrackedSubspaces()) << label;
}

/// Drives `stream` through a ShardedSpotEngine in chunks of `batch_size`.
std::vector<SpotResult> RunEngine(SpotDetector* det, std::size_t num_shards,
                                  const std::vector<LabeledPoint>& stream,
                                  std::size_t batch_size) {
  // The engine borrows its pool (the detector / service owns it in
  // production); here the test owns one of the standalone K-1 size.
  ThreadPool pool(num_shards > 1 ? num_shards - 1 : 0);
  ShardedSpotEngine engine(det, num_shards, &pool);
  std::vector<SpotResult> results;
  results.reserve(stream.size());
  std::vector<DataPoint> chunk;
  for (std::size_t start = 0; start < stream.size(); start += batch_size) {
    chunk.clear();
    for (std::size_t i = start;
         i < std::min(start + batch_size, stream.size()); ++i) {
      chunk.push_back(stream[i].point);
    }
    for (auto& r : engine.ProcessBatch(chunk)) {
      results.push_back(std::move(r));
    }
  }
  return results;
}

TEST(ThreadPoolTest, DispatchRunsEveryJobExactlyOnce) {
  ThreadPool pool(3);
  std::vector<int> hits(257, 0);
  // Repeated dispatches reuse the same workers; stragglers from earlier
  // generations must never double-run or skip a job.
  for (int round = 0; round < 50; ++round) {
    pool.Dispatch(hits.size(),
                  [&](std::size_t i) { hits[i] += 1; });
  }
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 50) << "job " << i;
  }
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  int sum = 0;
  pool.Dispatch(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

// The headline acceptance test: engine verdicts are bit-identical to
// sequential Process() at shard counts {1, 2, 3, 4, 8} x batch sizes
// {1, 7, 64}, on a run that provably crosses OS-growth, self-evolution and
// drift-relearn boundaries.
TEST(ShardedEngineTest, BitIdenticalToSequentialAcrossShardsAndBatches) {
  const int kDims = 8;
  const int kStreamLen = 1500;
  const auto training = TrainingBatch(kDims, 500);
  const auto stream = DriftingEvalStream(kDims, kStreamLen, 902);
  const SpotConfig cfg = EventfulConfig();

  auto sequential = LearnedDetector(cfg, training);
  std::vector<SpotResult> seq_results;
  seq_results.reserve(stream.size());
  for (const auto& p : stream) {
    seq_results.push_back(sequential->Process(p.point));
  }
  // The run must actually cross every kind of tracked-set boundary,
  // otherwise this test proves much less than it claims.
  ASSERT_GT(sequential->stats().os_growth_runs, 0u);
  ASSERT_GT(sequential->stats().evolution_rounds, 0u);
  ASSERT_GT(sequential->stats().drifts_detected, 0u);

  for (const std::size_t num_shards : {std::size_t{1}, std::size_t{2},
                                       std::size_t{3}, std::size_t{4},
                                       std::size_t{8}}) {
    for (const std::size_t batch_size :
         {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
      SCOPED_TRACE(::testing::Message()
                   << "shards=" << num_shards << " batch=" << batch_size);
      auto det = LearnedDetector(cfg, training);
      const std::vector<SpotResult> results =
          RunEngine(det.get(), num_shards, stream, batch_size);
      ASSERT_EQ(results.size(), seq_results.size());
      for (std::size_t i = 0; i < results.size(); ++i) {
        ExpectIdentical(seq_results[i], results[i], i, "engine");
      }
      ExpectSameSideEffects(*sequential, *det, "engine");
    }
  }
}

// SpotConfig::num_shards routes SpotDetector::ProcessBatch through the
// engine transparently; verdicts match the sequential configuration.
TEST(ShardedEngineTest, DetectorDelegatesToEngineViaConfig) {
  const int kDims = 8;
  const auto training = TrainingBatch(kDims, 500);
  const auto stream = DriftingEvalStream(kDims, 900, 903);

  SpotConfig seq_cfg = EventfulConfig();
  auto seq = LearnedDetector(seq_cfg, training);

  SpotConfig sharded_cfg = EventfulConfig();
  sharded_cfg.num_shards = 4;
  auto sharded = LearnedDetector(sharded_cfg, training);
  EXPECT_EQ(sharded->num_shards(), 4u);

  const std::size_t kChunk = 97;
  std::vector<DataPoint> chunk;
  std::vector<SpotResult> seq_results;
  std::vector<SpotResult> sharded_results;
  for (std::size_t start = 0; start < stream.size(); start += kChunk) {
    chunk.clear();
    for (std::size_t i = start; i < std::min(start + kChunk, stream.size());
         ++i) {
      chunk.push_back(stream[i].point);
    }
    for (auto& r : seq->ProcessBatch(chunk)) {
      seq_results.push_back(std::move(r));
    }
    for (auto& r : sharded->ProcessBatch(chunk)) {
      sharded_results.push_back(std::move(r));
    }
  }
  ASSERT_EQ(seq_results.size(), sharded_results.size());
  for (std::size_t i = 0; i < seq_results.size(); ++i) {
    ExpectIdentical(seq_results[i], sharded_results[i], i, "config");
  }
  ExpectSameSideEffects(*seq, *sharded, "config");
}

// Re-sharding mid-stream (set_num_shards) and interleaving single-point
// Process() calls with engine batches must not perturb verdicts: both paths
// update the same synapses, and the shard views resync at every batch.
TEST(ShardedEngineTest, MixedProcessBatchAndReshardingKeepsVerdicts) {
  const int kDims = 8;
  const auto training = TrainingBatch(kDims, 500);
  const auto stream = DriftingEvalStream(kDims, 800, 904);
  const SpotConfig cfg = EventfulConfig();

  auto sequential = LearnedDetector(cfg, training);
  std::vector<SpotResult> seq_results;
  for (const auto& p : stream) {
    seq_results.push_back(sequential->Process(p.point));
  }

  auto mixed = LearnedDetector(cfg, training);
  std::vector<SpotResult> mixed_results;
  std::size_t i = 0;
  // First third: single-point Process.
  for (; i < stream.size() / 3; ++i) {
    mixed_results.push_back(mixed->Process(stream[i].point));
  }
  // Second third: 2-shard batches.
  mixed->set_num_shards(2);
  std::vector<DataPoint> chunk;
  for (; i < 2 * stream.size() / 3; i += chunk.size()) {
    chunk.clear();
    for (std::size_t j = i;
         j < std::min(i + 53, 2 * stream.size() / 3); ++j) {
      chunk.push_back(stream[j].point);
    }
    for (auto& r : mixed->ProcessBatch(chunk)) {
      mixed_results.push_back(std::move(r));
    }
  }
  // Final third: re-shard to 5 mid-stream.
  mixed->set_num_shards(5);
  for (; i < stream.size(); i += chunk.size()) {
    chunk.clear();
    for (std::size_t j = i; j < std::min(i + 64, stream.size()); ++j) {
      chunk.push_back(stream[j].point);
    }
    for (auto& r : mixed->ProcessBatch(chunk)) {
      mixed_results.push_back(std::move(r));
    }
  }

  ASSERT_EQ(seq_results.size(), mixed_results.size());
  for (std::size_t k = 0; k < seq_results.size(); ++k) {
    ExpectIdentical(seq_results[k], mixed_results[k], k, "mixed");
  }
  ExpectSameSideEffects(*sequential, *mixed, "mixed");
}

// RunOptions::num_shards reaches the detector through the harness and the
// stream adapter, and leaves every evaluation metric untouched.
TEST(ShardedEngineTest, HarnessPlumbsNumShards) {
  const int kDims = 8;
  const auto training = TrainingBatch(kDims, 500);
  const auto stream = DriftingEvalStream(kDims, 900, 905);

  eval::RunResult baseline;
  eval::RunResult sharded;
  {
    auto det = LearnedDetector(EventfulConfig(), training);
    SpotStreamAdapter adapter(det.get());
    stream::ReplaySource replay(stream);
    eval::RunOptions opts;
    opts.batch_size = 128;
    opts.collect_scores = true;
    baseline = eval::RunDetection(adapter, replay, stream.size(), opts);
  }
  {
    auto det = LearnedDetector(EventfulConfig(), training);
    SpotStreamAdapter adapter(det.get());
    stream::ReplaySource replay(stream);
    eval::RunOptions opts;
    opts.batch_size = 128;
    opts.collect_scores = true;
    opts.num_shards = 3;
    sharded = eval::RunDetection(adapter, replay, stream.size(), opts);
    EXPECT_EQ(det->num_shards(), 3u);
  }
  EXPECT_EQ(baseline.confusion.tp(), sharded.confusion.tp());
  EXPECT_EQ(baseline.confusion.fp(), sharded.confusion.fp());
  EXPECT_EQ(baseline.confusion.fn(), sharded.confusion.fn());
  EXPECT_EQ(baseline.confusion.tn(), sharded.confusion.tn());
  EXPECT_EQ(baseline.auc, sharded.auc);
  ASSERT_EQ(baseline.scores.size(), sharded.scores.size());
  for (std::size_t i = 0; i < baseline.scores.size(); ++i) {
    EXPECT_EQ(baseline.scores[i], sharded.scores[i]);
  }
}

// The timing counters are maintained by the detection entry points, so
// every consumer (benches, engine reports) reads one source of truth.
TEST(ShardedEngineTest, StatsExposeThroughputCounters) {
  const int kDims = 6;
  const auto training = TrainingBatch(kDims, 400);
  const auto stream = DriftingEvalStream(kDims, 300, 906);
  SpotConfig cfg = EventfulConfig();
  cfg.num_shards = 2;
  auto det = LearnedDetector(cfg, training);
  EXPECT_EQ(det->stats().batches_processed, 0u);
  EXPECT_EQ(det->stats().PointsPerSecond(), 0.0);

  std::vector<DataPoint> points;
  for (const auto& p : stream) points.push_back(p.point);
  det->ProcessBatch(points);
  det->Process(points.front());

  EXPECT_EQ(det->stats().batches_processed, 1u);
  EXPECT_EQ(det->stats().points_processed, stream.size() + 1);
  EXPECT_GT(det->stats().detection_seconds, 0.0);
  EXPECT_GT(det->stats().PointsPerSecond(), 0.0);
}

}  // namespace
}  // namespace spot
