// End-to-end integration tests: the full SPOT pipeline (learning stage →
// detection stage) against the synthetic streams, the comparative harness,
// and the drift / self-evolution machinery working together.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/storm.h"
#include "core/detector.h"
#include "eval/harness.h"
#include "eval/presets.h"
#include "stream/drift.h"
#include "stream/kdd_sim.h"
#include "stream/replay.h"
#include "stream/synthetic.h"

namespace spot {
namespace {

// The shared fast preset (src/eval/presets.h) keeps this setup in lockstep
// with the bench binaries' ExperimentConfig.
SpotConfig FastConfig(int fs_max_dim = 2) {
  return eval::FastTestConfig(fs_max_dim);
}

TEST(IntegrationTest, SpotDetectsPlantedProjectedOutliers) {
  stream::SyntheticConfig scfg;
  scfg.dimension = 10;
  scfg.outlier_probability = 0.0;
  scfg.concept_seed = 500;  // shared concept across training + detection
  scfg.seed = 50;
  stream::GaussianStream train_gen(scfg);
  SpotDetector det(FastConfig());
  ASSERT_TRUE(det.Learn(ValuesOf(Take(train_gen, 800))));

  // Detection stream from the same concept, with planted outliers.
  scfg.outlier_probability = 0.02;
  scfg.seed = 51;
  stream::GaussianStream stream(scfg);
  SpotStreamAdapter adapter(&det);
  const eval::RunResult r = eval::RunDetection(adapter, stream, 3000);

  // The planted outliers are gross (8 sigma): SPOT must catch most of them
  // without drowning in false alarms.
  EXPECT_GT(r.confusion.Recall(), 0.7)
      << "tp=" << r.confusion.tp() << " fn=" << r.confusion.fn();
  EXPECT_LT(r.confusion.FalsePositiveRate(), 0.2);
  EXPECT_GT(r.confusion.F1(), 0.3);
}

TEST(IntegrationTest, SpotReportsMeaningfulOutlyingSubspaces) {
  stream::SyntheticConfig scfg;
  scfg.dimension = 10;
  scfg.outlier_probability = 0.0;
  scfg.concept_seed = 520;
  scfg.seed = 52;
  stream::GaussianStream train_gen(scfg);
  SpotDetector det(FastConfig());
  ASSERT_TRUE(det.Learn(ValuesOf(Take(train_gen, 800))));

  scfg.outlier_probability = 0.02;
  scfg.min_outlier_subspace_dim = 1;
  scfg.max_outlier_subspace_dim = 2;
  scfg.seed = 53;
  stream::GaussianStream stream(scfg);
  SpotStreamAdapter adapter(&det);
  const eval::RunResult r = eval::RunDetection(adapter, stream, 3000);
  // Reported outlying subspaces overlap the planted ones (Jaccard over
  // detected true positives).
  EXPECT_GT(r.mean_subspace_jaccard, 0.3);
}

TEST(IntegrationTest, SpotBeatsStormOnProjectedOutliersInHighDim) {
  // The headline comparison (E3/E4 in miniature): φ=20, planted projected
  // outliers, SPOT vs a full-space distance detector on identical data.
  stream::SyntheticConfig scfg;
  scfg.dimension = 20;
  scfg.outlier_probability = 0.0;
  scfg.concept_seed = 540;
  scfg.seed = 54;
  stream::GaussianStream train_gen(scfg);
  const auto training = ValuesOf(Take(train_gen, 800));

  SpotDetector det(FastConfig());
  ASSERT_TRUE(det.Learn(training));
  SpotStreamAdapter spot_adapter(&det);

  baselines::StormConfig storm_cfg;
  storm_cfg.window = 1000;
  storm_cfg.radius = 0.7;  // generous full-space neighborhood
  storm_cfg.min_neighbors = 5;
  baselines::StormDetector storm(storm_cfg);

  scfg.outlier_probability = 0.02;
  scfg.max_outlier_subspace_dim = 2;
  scfg.seed = 55;
  stream::GaussianStream gen(scfg);
  const auto points = Take(gen, 3000);

  const auto results =
      eval::CompareDetectors({&spot_adapter, &storm}, points);
  const double spot_f1 = results[0].confusion.F1();
  const double storm_f1 = results[1].confusion.F1();
  EXPECT_GT(spot_f1, storm_f1)
      << "SPOT F1=" << spot_f1 << " STORM F1=" << storm_f1;
  EXPECT_GT(spot_f1, 0.3);
}

TEST(IntegrationTest, KddSimulatorAttacksAreDetected) {
  stream::KddConfig kcfg;
  kcfg.attack_fraction = 0.0;
  kcfg.seed = 60;
  stream::KddSimulator train_sim(kcfg);
  SpotConfig cfg = FastConfig(/*fs_max_dim=*/1);
  cfg.fs_cap = 256;
  SpotDetector det(cfg);
  ASSERT_TRUE(det.Learn(ValuesOf(Take(train_sim, 1000))));

  // Attacks are kept rare (1%): recurring identical attacks accumulate
  // decayed mass in their own cells and self-mask, which is intrinsic to
  // density-based stream detection (see EXPERIMENTS.md, E9 discussion).
  kcfg.attack_fraction = 0.01;
  kcfg.seed = 61;
  stream::KddSimulator sim(kcfg);
  SpotStreamAdapter adapter(&det);
  const eval::RunResult r = eval::RunDetection(adapter, sim, 6000);
  EXPECT_GT(r.confusion.Recall(), 0.5);
  EXPECT_LT(r.confusion.FalsePositiveRate(), 0.25);
}

TEST(IntegrationTest, DriftDetectionFiresOnAbruptConceptChange) {
  stream::DriftConfig dcfg;
  dcfg.base.dimension = 8;
  dcfg.base.outlier_probability = 0.005;
  dcfg.base.seed = 70;
  dcfg.kind = stream::DriftKind::kAbrupt;
  dcfg.period = 3000;
  stream::DriftingStream stream(dcfg);

  SpotConfig cfg = FastConfig();
  cfg.drift_detection = true;
  cfg.relearn_on_drift = true;
  cfg.drift_lambda = 8.0;
  SpotDetector det(cfg);
  ASSERT_TRUE(det.Learn(ValuesOf(Take(stream, 1000))));

  for (int i = 0; i < 8000; ++i) {
    det.Process(stream.Next()->point.values);
  }
  // After the concept replacement the old clusters empty out and every new
  // point looks sparse — the outlier-rate jump must trip Page-Hinkley.
  EXPECT_GE(det.stats().drifts_detected, 1u);
}

TEST(IntegrationTest, SelfEvolutionKeepsCsPopulated) {
  stream::SyntheticConfig scfg;
  scfg.dimension = 10;
  scfg.seed = 80;
  stream::GaussianStream gen(scfg);
  SpotConfig cfg = FastConfig();
  cfg.evolution_period = 500;
  SpotDetector det(cfg);
  ASSERT_TRUE(det.Learn(ValuesOf(Take(gen, 600))));
  const std::size_t cs_before = det.sst().clustering().size();
  ASSERT_GT(cs_before, 0u);
  for (int i = 0; i < 2500; ++i) det.Process(gen.Next()->point.values);
  EXPECT_GE(det.stats().evolution_rounds, 4u);
  EXPECT_GT(det.sst().clustering().size(), 0u);
  // Tracked synapses stay in sync with the SST after evolution churn.
  EXPECT_EQ(det.TrackedSubspaces(), det.sst().TotalSize());
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    stream::SyntheticConfig scfg;
    scfg.dimension = 8;
    scfg.outlier_probability = 0.02;
    scfg.seed = 90;
    stream::GaussianStream gen(scfg);
    SpotDetector det(FastConfig());
    det.Learn(ValuesOf(Take(gen, 500)));
    std::uint64_t flagged = 0;
    for (int i = 0; i < 1000; ++i) {
      if (det.Process(gen.Next()->point.values).is_outlier) ++flagged;
    }
    return flagged;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(IntegrationTest, LongRunMemoryStaysBounded) {
  stream::SyntheticConfig scfg;
  scfg.dimension = 8;
  scfg.outlier_probability = 0.01;
  scfg.seed = 95;
  stream::GaussianStream gen(scfg);
  SpotConfig cfg = FastConfig();
  cfg.omega = 500;
  cfg.compaction_period = 512;
  SpotDetector det(cfg);
  ASSERT_TRUE(det.Learn(ValuesOf(Take(gen, 500))));

  std::size_t cells_mid = 0;
  for (int i = 0; i < 6000; ++i) {
    det.Process(gen.Next()->point.values);
    if (i == 3000) cells_mid = det.synapses().TotalPopulatedCells();
  }
  const std::size_t cells_end = det.synapses().TotalPopulatedCells();
  // Populated cells plateau (within 3x) instead of growing with the stream.
  EXPECT_LT(cells_end, cells_mid * 3 + 100);
}

}  // namespace
}  // namespace spot
