// Unit tests of src/grid fundamentals: equi-width partition, the
// (omega, epsilon) decay model, and Base Cell Summaries.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "grid/base_grid.h"
#include "grid/bcs.h"
#include "grid/decay.h"
#include "grid/partition.h"

namespace spot {
namespace {

// ---------------------------------------------------------- Partition ----

TEST(PartitionTest, UniformDomainBasics) {
  const Partition p(3, 10, 0.0, 1.0);
  EXPECT_EQ(p.num_dims(), 3);
  EXPECT_EQ(p.cells_per_dim(), 10);
  EXPECT_DOUBLE_EQ(p.CellWidth(0), 0.1);
  EXPECT_EQ(p.IntervalIndex(0, 0.0), 0u);
  EXPECT_EQ(p.IntervalIndex(0, 0.05), 0u);
  EXPECT_EQ(p.IntervalIndex(0, 0.15), 1u);
  EXPECT_EQ(p.IntervalIndex(0, 0.999), 9u);
}

TEST(PartitionTest, BoundaryValueGoesToLastCell) {
  const Partition p(1, 10, 0.0, 1.0);
  EXPECT_EQ(p.IntervalIndex(0, 1.0), 9u);
}

TEST(PartitionTest, OutOfRangeClamps) {
  const Partition p(1, 10, 0.0, 1.0);
  EXPECT_EQ(p.IntervalIndex(0, -5.0), 0u);
  EXPECT_EQ(p.IntervalIndex(0, 42.0), 9u);
}

TEST(PartitionTest, DegenerateRangeWidened) {
  const Partition p({2.0}, {2.0}, 10);  // hi == lo
  EXPECT_GT(p.hi(0), p.lo(0));
  EXPECT_EQ(p.IntervalIndex(0, 2.0), 0u);
}

TEST(PartitionTest, PerDimensionDomains) {
  const Partition p({0.0, -10.0}, {1.0, 10.0}, 4);
  EXPECT_DOUBLE_EQ(p.CellWidth(0), 0.25);
  EXPECT_DOUBLE_EQ(p.CellWidth(1), 5.0);
  EXPECT_EQ(p.IntervalIndex(1, -10.0), 0u);
  EXPECT_EQ(p.IntervalIndex(1, 0.0), 2u);
  EXPECT_EQ(p.IntervalIndex(1, 9.99), 3u);
}

TEST(PartitionTest, BaseCellCoordinates) {
  const Partition p(3, 10, 0.0, 1.0);
  const CellCoords c = p.BaseCell({0.05, 0.55, 0.95});
  EXPECT_EQ(c, (CellCoords{0, 5, 9}));
}

TEST(PartitionTest, ProjectedCellPicksSubspaceDims) {
  const Partition p(4, 10, 0.0, 1.0);
  const std::vector<double> point = {0.05, 0.15, 0.25, 0.35};
  const Subspace s = Subspace::FromIndices({1, 3});
  EXPECT_EQ(p.ProjectedCell(point, s), (CellCoords{1, 3}));
}

TEST(PartitionTest, ProjectBaseCellConsistentWithProjectedCell) {
  const Partition p(5, 8, 0.0, 1.0);
  const std::vector<double> point = {0.1, 0.3, 0.5, 0.7, 0.9};
  const Subspace s = Subspace::FromIndices({0, 2, 4});
  EXPECT_EQ(p.ProjectBaseCell(p.BaseCell(point), s),
            p.ProjectedCell(point, s));
}

TEST(PartitionTest, FitToDataCoversAllPoints) {
  const std::vector<std::vector<double>> data = {
      {0.0, 5.0}, {1.0, -3.0}, {0.5, 2.0}};
  const Partition p = Partition::FitToData(data, 10);
  for (const auto& row : data) {
    EXPECT_LE(p.lo(0), row[0]);
    EXPECT_GE(p.hi(0), row[0]);
    EXPECT_LE(p.lo(1), row[1]);
    EXPECT_GE(p.hi(1), row[1]);
  }
  // Margin strictly widens the range.
  EXPECT_LT(p.lo(1), -3.0);
  EXPECT_GT(p.hi(1), 5.0);
}

TEST(PartitionTest, FitToEmptyDataYieldsUnitDomain) {
  const Partition p = Partition::FitToData({}, 10);
  EXPECT_EQ(p.num_dims(), 1);
}

TEST(PartitionTest, CellsPerDimClampedToAtLeastOne) {
  const Partition p(2, 0, 0.0, 1.0);
  EXPECT_GE(p.cells_per_dim(), 1);
}

// ----------------------------------------------------------- DecayModel --

TEST(DecayModelTest, SolveAlphaSatisfiesContract) {
  for (std::uint64_t omega : {10u, 100u, 1000u}) {
    for (double epsilon : {0.1, 0.01, 0.001}) {
      const double alpha = DecayModel::SolveAlpha(omega, epsilon);
      ASSERT_GT(alpha, 0.0);
      ASSERT_LT(alpha, 1.0);
      // Residual out-of-window weight: alpha^omega / (1 - alpha) == epsilon.
      const double residual =
          std::pow(alpha, static_cast<double>(omega)) / (1.0 - alpha);
      EXPECT_NEAR(residual, epsilon, 1e-6 * epsilon + 1e-12)
          << "omega=" << omega << " eps=" << epsilon;
    }
  }
}

TEST(DecayModelTest, TighterEpsilonMeansStrongerDecay) {
  const DecayModel loose(1000, 0.1);
  const DecayModel tight(1000, 0.001);
  EXPECT_GT(loose.alpha(), tight.alpha());
}

TEST(DecayModelTest, LargerWindowMeansWeakerDecay) {
  const DecayModel small(100, 0.01);
  const DecayModel large(10000, 0.01);
  EXPECT_LT(small.alpha(), large.alpha());
}

TEST(DecayModelTest, WeightAtAgeIsGeometric) {
  const DecayModel m(100, 0.01);
  EXPECT_DOUBLE_EQ(m.WeightAtAge(0), 1.0);
  EXPECT_NEAR(m.WeightAtAge(2), m.alpha() * m.alpha(), 1e-12);
  EXPECT_GT(m.WeightAtAge(10), m.WeightAtAge(20));
}

TEST(DecayModelTest, NoneModelNeverDecays) {
  const DecayModel m = DecayModel::None();
  EXPECT_DOUBLE_EQ(m.alpha(), 1.0);
  EXPECT_DOUBLE_EQ(m.WeightAtAge(1000000), 1.0);
  EXPECT_TRUE(std::isinf(m.SteadyStateWeight()));
}

TEST(DecayModelTest, SteadyStateWeightMatchesGeometricSum) {
  const DecayModel m(1000, 0.01);
  EXPECT_NEAR(m.SteadyStateWeight(), 1.0 / (1.0 - m.alpha()), 1e-9);
}

TEST(DecayedCounterTest, MatchesBruteForceSum) {
  const DecayModel m(50, 0.01);
  DecayedCounter counter(m);
  for (std::uint64_t t = 0; t < 200; ++t) counter.Observe(t);
  // Brute force: sum of alpha^(199 - t) over all arrivals.
  double expected = 0.0;
  for (std::uint64_t t = 0; t < 200; ++t) {
    expected += m.WeightAtAge(199 - t);
  }
  EXPECT_NEAR(counter.WeightAt(199), expected, 1e-9);
}

TEST(DecayedCounterTest, WeightDecaysBetweenArrivals) {
  const DecayModel m(50, 0.01);
  DecayedCounter counter(m);
  counter.Observe(0);
  EXPECT_DOUBLE_EQ(counter.WeightAt(0), 1.0);
  EXPECT_NEAR(counter.WeightAt(10), m.WeightAtAge(10), 1e-12);
}

TEST(DecayedCounterTest, EmptyCounterIsZero) {
  const DecayModel m(50, 0.01);
  const DecayedCounter counter(m);
  EXPECT_DOUBLE_EQ(counter.WeightAt(123), 0.0);
}

TEST(DecayedCounterTest, WindowResidualBoundHolds) {
  // The (omega, epsilon) contract end-to-end: feed omega points, then let
  // them age out; their surviving weight must be <= epsilon.
  const std::uint64_t omega = 100;
  const double epsilon = 0.01;
  const DecayModel m(omega, epsilon);
  DecayedCounter counter(m);
  for (std::uint64_t t = 0; t < omega; ++t) counter.Observe(t);
  // All observed points now have age >= omega.
  const double residual = counter.WeightAt(2 * omega - 1 + 1);
  EXPECT_LE(residual, epsilon * 1.0000001);
}

// ------------------------------------------------------------------ Bcs --

TEST(BcsTest, EmptySummary) {
  const Bcs bcs(3);
  EXPECT_DOUBLE_EQ(bcs.count(), 0.0);
  EXPECT_EQ(bcs.num_dims(), 3);
  EXPECT_DOUBLE_EQ(bcs.MeanOf(0), 0.0);
  EXPECT_DOUBLE_EQ(bcs.StdDevOf(0), 0.0);
}

TEST(BcsTest, NoDecayAccumulatesExactly) {
  const DecayModel m = DecayModel::None();
  Bcs bcs(2);
  bcs.Add({1.0, 2.0}, 0, m);
  bcs.Add({3.0, 4.0}, 1, m);
  EXPECT_DOUBLE_EQ(bcs.count(), 2.0);
  EXPECT_DOUBLE_EQ(bcs.linear_sum()[0], 4.0);
  EXPECT_DOUBLE_EQ(bcs.linear_sum()[1], 6.0);
  EXPECT_DOUBLE_EQ(bcs.squared_sum()[0], 10.0);
  EXPECT_DOUBLE_EQ(bcs.squared_sum()[1], 20.0);
  EXPECT_DOUBLE_EQ(bcs.MeanOf(0), 2.0);
  EXPECT_DOUBLE_EQ(bcs.StdDevOf(0), 1.0);
}

TEST(BcsTest, DecayMatchesBruteForce) {
  const DecayModel m(20, 0.05);
  Bcs bcs(1);
  const std::vector<double> arrivals = {1.0, 2.0, 3.0, 4.0};
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    bcs.Add({arrivals[i]}, i, m);
  }
  // Expected decayed aggregates at tick 3.
  double count = 0.0;
  double ls = 0.0;
  double ss = 0.0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const double w = m.WeightAtAge(3 - i);
    count += w;
    ls += w * arrivals[i];
    ss += w * arrivals[i] * arrivals[i];
  }
  EXPECT_NEAR(bcs.count(), count, 1e-12);
  EXPECT_NEAR(bcs.linear_sum()[0], ls, 1e-12);
  EXPECT_NEAR(bcs.squared_sum()[0], ss, 1e-12);
}

TEST(BcsTest, CountAtProjectsForward) {
  const DecayModel m(20, 0.05);
  Bcs bcs(1);
  bcs.Add({1.0}, 0, m);
  EXPECT_NEAR(bcs.CountAt(10, m), m.WeightAtAge(10), 1e-12);
  EXPECT_DOUBLE_EQ(bcs.CountAt(0, m), 1.0);
}

TEST(BcsTest, MergeEqualsUnionStream) {
  const DecayModel m(30, 0.02);
  Bcs all(2);
  Bcs left(2);
  Bcs right(2);
  for (std::uint64_t t = 0; t < 20; ++t) {
    const std::vector<double> p = {static_cast<double>(t), 1.0};
    all.Add(p, t, m);
    if (t % 2 == 0) {
      left.Add(p, t, m);
    } else {
      right.Add(p, t, m);
    }
  }
  left.Merge(right, 19, m);
  EXPECT_NEAR(left.count(), all.count(), 1e-9);
  EXPECT_NEAR(left.linear_sum()[0], all.linear_sum()[0], 1e-9);
  EXPECT_NEAR(left.squared_sum()[0], all.squared_sum()[0], 1e-9);
}

TEST(BcsTest, LazyInitFromFirstPoint) {
  const DecayModel m = DecayModel::None();
  Bcs bcs;  // default-constructed, dims unknown
  bcs.Add({1.0, 2.0, 3.0}, 0, m);
  EXPECT_EQ(bcs.num_dims(), 3);
  EXPECT_DOUBLE_EQ(bcs.count(), 1.0);
}

TEST(BcsTest, StdDevRequiresTwoPoints) {
  const DecayModel m = DecayModel::None();
  Bcs bcs(1);
  bcs.Add({5.0}, 0, m);
  EXPECT_DOUBLE_EQ(bcs.StdDevOf(0), 0.0);
  bcs.Add({7.0}, 1, m);
  EXPECT_DOUBLE_EQ(bcs.StdDevOf(0), 1.0);
}

// ------------------------------------------------------------ BaseGrid --

TEST(BaseGridTest, AddAndFind) {
  BaseGrid grid(Partition(2, 10, 0.0, 1.0), DecayModel::None());
  grid.Add({0.05, 0.15}, 0);
  grid.Add({0.05, 0.18}, 1);  // same cell
  grid.Add({0.95, 0.95}, 2);  // different cell
  EXPECT_EQ(grid.PopulatedCells(), 2u);
  const Bcs* cell = grid.Find({0.06, 0.12});
  ASSERT_NE(cell, nullptr);
  EXPECT_DOUBLE_EQ(cell->count(), 2.0);
  EXPECT_EQ(grid.Find({0.5, 0.5}), nullptr);
}

TEST(BaseGridTest, TotalWeightCountsEverything) {
  BaseGrid grid(Partition(2, 10, 0.0, 1.0), DecayModel::None());
  for (std::uint64_t t = 0; t < 10; ++t) {
    grid.Add({0.1 * static_cast<double>(t), 0.5}, t);
  }
  EXPECT_NEAR(grid.TotalWeight(), 10.0, 1e-9);
}

TEST(BaseGridTest, DecayedTotalWeightBelowCount) {
  BaseGrid grid(Partition(1, 10, 0.0, 1.0), DecayModel(50, 0.01));
  for (std::uint64_t t = 0; t < 100; ++t) grid.Add({0.5}, t);
  EXPECT_LT(grid.TotalWeight(), 100.0);
  EXPECT_GT(grid.TotalWeight(), 1.0);
}

TEST(BaseGridTest, CompactRemovesStaleCells) {
  BaseGrid grid(Partition(1, 10, 0.0, 1.0), DecayModel(10, 0.001), 1e-3, 0);
  grid.Add({0.05}, 0);  // one old cell
  for (std::uint64_t t = 1; t < 200; ++t) grid.Add({0.95}, t);
  EXPECT_EQ(grid.PopulatedCells(), 2u);
  const std::size_t removed = grid.Compact(199);
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(grid.PopulatedCells(), 1u);
  EXPECT_EQ(grid.Find({0.05}), nullptr);
}

TEST(BaseGridTest, AutomaticCompactionTriggers) {
  BaseGrid grid(Partition(1, 10, 0.0, 1.0), DecayModel(10, 0.001), 1e-3,
                /*compaction_period=*/50);
  grid.Add({0.05}, 0);
  for (std::uint64_t t = 1; t < 200; ++t) grid.Add({0.95}, t);
  // The old cell decayed away and a sweep has certainly run.
  EXPECT_EQ(grid.PopulatedCells(), 1u);
}

}  // namespace
}  // namespace spot
