// Tests of the SPOT wire protocol (src/net/protocol.h): little-endian
// scalar round-trips (including exact double bit patterns), the CRC-32
// reference vector, frame encode/decode under byte-at-a-time delivery,
// every payload codec, and rejection of truncated / corrupt / oversized
// frames without a crash.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/protocol.h"

namespace spot {
namespace net {
namespace {

TEST(WireBufferTest, ScalarRoundTrip) {
  WireWriter w;
  w.U8(0xAB);
  w.U16(0xBEEF);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFULL);
  w.F64(-1234.5678);
  w.Bool(true);
  w.Str("hello\0world");  // literal truncates at NUL — also covers short str
  WireReader r(w.bytes());
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U16(), 0xBEEF);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.F64(), -1234.5678);
  EXPECT_TRUE(r.Bool());
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireBufferTest, DoubleBitPatternsSurviveExactly) {
  const double values[] = {0.0,
                           -0.0,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           1.0 / 3.0};
  WireWriter w;
  for (double v : values) w.F64(v);
  WireReader r(w.bytes());
  for (double v : values) {
    const double got = r.F64();
    std::uint64_t want_bits = 0, got_bits = 0;
    std::memcpy(&want_bits, &v, 8);
    std::memcpy(&got_bits, &got, 8);
    EXPECT_EQ(want_bits, got_bits);
  }
}

TEST(WireBufferTest, ReaderOverrunIsStickyAndNeutral) {
  WireWriter w;
  w.U32(7);
  WireReader r(w.bytes());
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_EQ(r.U64(), 0u);  // overruns: neutral value
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.Str(), "");  // stays failed
  EXPECT_FALSE(r.AtEnd());
}

TEST(Crc32Test, ReferenceVector) {
  // The canonical CRC-32 check value.
  const std::string data = "123456789";
  EXPECT_EQ(Crc32(data.data(), data.size()), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(FrameTest, RoundTripAndByteAtATimeDelivery) {
  const std::string payload = "some payload bytes";
  const std::string wire = EncodeFrame(MsgType::kFlush, payload);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + payload.size());

  FrameDecoder decoder;
  Frame frame;
  // Feed a single byte at a time: every prefix must report kNeedMore.
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.Append(wire.data() + i, 1);
    EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Status::kNeedMore);
  }
  decoder.Append(wire.data() + wire.size() - 1, 1);
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, MsgType::kFlush);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameTest, BackToBackFramesInOneAppend) {
  const std::string wire =
      EncodeFrame(MsgType::kFlush, EncodeFlush({"a"})) +
      EncodeFrame(MsgType::kCheckpoint, EncodeCheckpoint({"b"}));
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, MsgType::kFlush);
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, MsgType::kCheckpoint);
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Status::kNeedMore);
}

TEST(FrameTest, CorruptMagicIsTerminal) {
  std::string wire = EncodeFrame(MsgType::kFlush, "x");
  wire[0] = 'Z';
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Status::kCorrupt);
  // Latched: further appends / polls stay corrupt.
  decoder.Append(wire.data(), wire.size());
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Status::kCorrupt);
  EXPECT_FALSE(decoder.error().empty());
}

TEST(FrameTest, UnknownVersionRejected) {
  std::string wire = EncodeFrame(MsgType::kFlush, "x");
  wire[4] = 99;  // version byte
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Status::kCorrupt);
}

TEST(FrameTest, NonZeroFlagsRejected) {
  std::string wire = EncodeFrame(MsgType::kFlush, "x");
  wire[6] = 1;  // flags low byte
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Status::kCorrupt);
}

TEST(FrameTest, PayloadCorruptionFailsCrc) {
  std::string wire = EncodeFrame(MsgType::kIngest, "sensitive payload");
  wire[kFrameHeaderBytes + 3] ^= 0x40;
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Status::kCorrupt);
}

TEST(FrameTest, OversizedFrameRejectedBeforeBuffering) {
  // A header announcing a payload beyond the decoder's cap must be
  // rejected from the header alone (no attempt to buffer the payload).
  WireWriter w;
  w.U32(kFrameMagic);
  w.U8(kWireVersion);
  w.U8(static_cast<std::uint8_t>(MsgType::kIngest));
  w.U16(0);
  w.U32(1u << 20);  // 1 MiB payload announced...
  w.U32(0);
  FrameDecoder decoder(/*max_payload=*/1024);  // ...but the cap is 1 KiB
  const std::string& header = w.bytes();
  decoder.Append(header.data(), header.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Status::kCorrupt);
}

TEST(FrameTest, ConsumedPrefixReclaimedWhenFramesStraddleReads) {
  // Regression: the mid-frame kNeedMore path used to skip reclaiming the
  // consumed prefix, so frames straddling recv-sized appends (with a
  // >= 16-byte remainder after each drained frame) retained every byte a
  // connection ever sent — linear RSS growth despite the payload cap.
  // Stream frames sized one byte past the append chunk so every append
  // ends mid-frame with a consumed prefix, and assert the decoder's
  // internal buffer stays bounded by one in-flight frame + one append.
  const std::size_t kChunk = 64 * 1024;
  const std::string payload(kChunk - kFrameHeaderBytes + 1, 'p');
  const std::string wire = EncodeFrame(MsgType::kIngest, payload);
  ASSERT_EQ(wire.size(), kChunk + 1);

  const int kFrames = 64;
  std::string stream;
  stream.reserve(wire.size() * kFrames);
  for (int i = 0; i < kFrames; ++i) stream += wire;

  FrameDecoder decoder;
  Frame frame;
  int got = 0;
  for (std::size_t off = 0; off < stream.size(); off += kChunk) {
    const std::size_t n = std::min(kChunk, stream.size() - off);
    decoder.Append(stream.data() + off, n);
    while (decoder.Next(&frame) == FrameDecoder::Status::kFrame) {
      EXPECT_EQ(frame.payload.size(), payload.size());
      ++got;
    }
    EXPECT_LE(decoder.buffer_bytes(), wire.size() + kChunk);
  }
  EXPECT_EQ(got, kFrames);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameTest, TruncatedFrameIsJustNeedMore) {
  const std::string wire = EncodeFrame(MsgType::kIngest, "partial");
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size() - 3);
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Status::kNeedMore);
}

TEST(CodecTest, CreateSessionRoundTrip) {
  CreateSessionReq req;
  req.session_id = "tenant-42";
  req.config.seed = 77;
  req.config.fs_max_dimension = 3;
  req.config.omega = 1234;
  req.training = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const std::string payload = EncodeCreateSession(req);
  CreateSessionReq got;
  ASSERT_TRUE(DecodeCreateSession(payload, &got));
  EXPECT_EQ(got.session_id, "tenant-42");
  EXPECT_EQ(got.config.seed, 77u);
  EXPECT_EQ(got.config.fs_max_dimension, 3);
  EXPECT_EQ(got.config.omega, req.config.omega);
  EXPECT_EQ(got.training, req.training);

  // The config section reuses the checkpoint encoding: re-encoding the
  // decoded request must reproduce the payload byte-for-byte.
  EXPECT_EQ(EncodeCreateSession(got), payload);
}

TEST(CodecTest, IngestRoundTrip) {
  IngestReq req;
  req.session_id = "s";
  for (int i = 0; i < 5; ++i) {
    DataPoint p;
    p.id = 100 + static_cast<std::uint64_t>(i);
    p.values = {0.1 * i, -0.2 * i, 3.0};
    req.points.push_back(p);
  }
  IngestReq got;
  ASSERT_TRUE(DecodeIngest(EncodeIngest(req), &got));
  ASSERT_EQ(got.points.size(), 5u);
  EXPECT_EQ(got.session_id, "s");
  for (std::size_t i = 0; i < got.points.size(); ++i) {
    EXPECT_EQ(got.points[i].id, req.points[i].id);
    EXPECT_EQ(got.points[i].values, req.points[i].values);
  }
}

TEST(CodecTest, EmptyIngestAndTrailingJunkRejected) {
  IngestReq req;
  req.session_id = "s";
  IngestReq got;
  ASSERT_TRUE(DecodeIngest(EncodeIngest(req), &got));
  EXPECT_TRUE(got.points.empty());

  std::string payload = EncodeIngest(req);
  payload.push_back('\0');
  EXPECT_FALSE(DecodeIngest(payload, &got));
}

TEST(CodecTest, HostileCountsDoNotAllocate) {
  // An ingest payload claiming 2^31 points in 16 bytes must fail cleanly.
  WireWriter w;
  w.Str("s");
  w.U32(0x80000000u);  // count
  w.U32(64);           // dims
  IngestReq got;
  EXPECT_FALSE(DecodeIngest(w.bytes(), &got));

  // count * (8 + 8*dims) chosen to wrap to 0 mod 2^64: the size bound
  // must be computed by division, never by multiplying untrusted counts.
  WireWriter o;
  o.Str("s");
  o.U32(0x40000000u);  // count = 2^30
  o.U32(0x7FFFFFFFu);  // dims: 8 + 8*dims = 2^34 -> product wraps to 0
  EXPECT_FALSE(DecodeIngest(o.bytes(), &got));

  WireWriter v;
  v.Str("s");
  v.U64(0);
  v.U32(0x7FFFFFFFu);  // verdict count
  VerdictsResp verdicts;
  EXPECT_FALSE(DecodeVerdicts(v.bytes(), &verdicts));
}

TEST(CodecTest, HostileTrainingMatrixDoesNotAllocate) {
  CreateSessionReq req;
  req.session_id = "s";
  std::string base = EncodeCreateSession(req);  // rows=0, dims=0 tail
  // Rewrite the trailing rows/dims words with values whose product wraps
  // mod 2^64 (2^31 * 2^31 * 8 = 2^65 = 0): must be rejected, not
  // allocated.
  WireWriter tail;
  tail.U32(0x80000000u);  // rows
  tail.U32(0x80000000u);  // dims
  base.replace(base.size() - 8, 8, tail.bytes());
  CreateSessionReq got;
  EXPECT_FALSE(DecodeCreateSession(base, &got));

  // Zero-width rows are also hostile: they cost one vector allocation
  // each while claiming zero payload bytes.
  WireWriter zero;
  zero.U32(0xFFFFFFFFu);  // rows
  zero.U32(0);            // dims
  base.replace(base.size() - 8, 8, zero.bytes());
  EXPECT_FALSE(DecodeCreateSession(base, &got));
}

TEST(CodecTest, SimpleRequestRoundTrips) {
  ResumeSessionReq resume{"r-1"};
  ResumeSessionReq resume2;
  ASSERT_TRUE(DecodeResumeSession(EncodeResumeSession(resume), &resume2));
  EXPECT_EQ(resume2.session_id, "r-1");

  FlushReq flush{""};
  FlushReq flush2{"nonempty"};
  ASSERT_TRUE(DecodeFlush(EncodeFlush(flush), &flush2));
  EXPECT_EQ(flush2.session_id, "");

  CheckpointReq ckpt{"all-of-them"};
  CheckpointReq ckpt2;
  ASSERT_TRUE(DecodeCheckpoint(EncodeCheckpoint(ckpt), &ckpt2));
  EXPECT_EQ(ckpt2.session_id, "all-of-them");

  CloseSessionReq close{"c", false};
  CloseSessionReq close2;
  ASSERT_TRUE(DecodeCloseSession(EncodeCloseSession(close), &close2));
  EXPECT_EQ(close2.session_id, "c");
  EXPECT_FALSE(close2.persist);

  OkResp ok{static_cast<std::uint8_t>(MsgType::kFlush)};
  OkResp ok2;
  ASSERT_TRUE(DecodeOk(EncodeOk(ok), &ok2));
  EXPECT_EQ(ok2.request_type, static_cast<std::uint8_t>(MsgType::kFlush));

  ErrorResp err;
  err.request_type = static_cast<std::uint8_t>(MsgType::kIngest);
  err.code = ErrorCode::kSessionUnknown;
  err.message = "no session";
  ErrorResp err2;
  ASSERT_TRUE(DecodeError(EncodeError(err), &err2));
  EXPECT_EQ(err2.request_type, static_cast<std::uint8_t>(MsgType::kIngest));
  EXPECT_EQ(err2.code, ErrorCode::kSessionUnknown);
  EXPECT_EQ(err2.message, "no session");
}

TEST(CodecTest, ErrorRespSpeaksBothLayouts) {
  // v3 carries the machine-readable code; the v2 layout lacks the field
  // and decodes with code == kUnknown. Cross-layout decodes must fail
  // (v3 bytes under the v2 layout leave trailing junk or vice versa),
  // never mis-parse.
  ErrorResp err;
  err.request_type = static_cast<std::uint8_t>(MsgType::kFeedback);
  err.code = ErrorCode::kUnsupportedRequest;
  err.message = "nope";

  const std::string v3 = EncodeError(err, /*version=*/3);
  const std::string v2 = EncodeError(err, /*version=*/2);
  EXPECT_EQ(v3.size(), v2.size() + 2);  // the u16 code

  ErrorResp got;
  ASSERT_TRUE(DecodeError(v3, &got, /*version=*/3));
  EXPECT_EQ(got.code, ErrorCode::kUnsupportedRequest);
  EXPECT_EQ(got.message, "nope");

  got = ErrorResp();
  ASSERT_TRUE(DecodeError(v2, &got, /*version=*/2));
  EXPECT_EQ(got.code, ErrorCode::kUnknown);  // no code on the wire
  EXPECT_EQ(got.message, "nope");

  EXPECT_FALSE(DecodeError(v3, &got, /*version=*/2));
  EXPECT_FALSE(DecodeError(v2, &got, /*version=*/3));
}

TEST(CodecTest, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kUnknown), "unknown");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kSessionUnknown),
               "session_unknown");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kUnsupportedRequest),
               "unsupported_request");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kFeedbackFailed),
               "feedback_failed");
  EXPECT_STREQ(ErrorCodeName(static_cast<ErrorCode>(9999)), "unknown");
}

TEST(CodecTest, FeedbackRoundTrip) {
  FeedbackReq req;
  req.session_id = "fb";
  req.point_ids = {42, 7, 1000000007};
  req.examples = {{1.5, -2.5, 0.0}, {3.25, 4.0, 1.0 / 3.0}};
  FeedbackReq got;
  ASSERT_TRUE(DecodeFeedback(EncodeFeedback(req), &got));
  EXPECT_EQ(got.session_id, "fb");
  EXPECT_EQ(got.point_ids, req.point_ids);
  EXPECT_EQ(got.examples, req.examples);

  // Ids-only and examples-only rounds are both legal payloads.
  FeedbackReq ids_only;
  ids_only.session_id = "fb";
  ids_only.point_ids = {1};
  ASSERT_TRUE(DecodeFeedback(EncodeFeedback(ids_only), &got));
  EXPECT_EQ(got.point_ids, ids_only.point_ids);
  EXPECT_TRUE(got.examples.empty());

  // Truncation anywhere must fail cleanly, and trailing junk too.
  const std::string wire = EncodeFeedback(req);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FeedbackReq scratch;
    EXPECT_FALSE(DecodeFeedback(wire.substr(0, cut), &scratch)) << cut;
  }
  FeedbackReq scratch;
  EXPECT_FALSE(DecodeFeedback(wire + "x", &scratch));
}

TEST(CodecTest, HostileFeedbackCountsDoNotAllocate) {
  // 4G point ids announced in a dozen bytes: rejected by the
  // remaining-bytes bound before any allocation.
  WireWriter w;
  w.Str("s");
  w.U32(0xFFFFFFFFu);  // id count
  FeedbackReq got;
  EXPECT_FALSE(DecodeFeedback(w.bytes(), &got));

  // rows * dims chosen to wrap mod 2^64 — the bound must divide, never
  // multiply untrusted counts (same discipline as DecodeIngest).
  WireWriter o;
  o.Str("s");
  o.U32(0);            // no ids
  o.U32(0x40000000u);  // rows = 2^30
  o.U32(0x80000000u);  // dims: 8 * rows * dims = 2^64 -> wraps to 0
  EXPECT_FALSE(DecodeFeedback(o.bytes(), &got));

  // Zero-width rows claim zero payload bytes but cost an allocation each.
  WireWriter z;
  z.Str("s");
  z.U32(0);
  z.U32(0xFFFFFFFFu);  // rows
  z.U32(0);            // dims
  EXPECT_FALSE(DecodeFeedback(z.bytes(), &got));
}

TEST(CodecTest, QueryTopKRoundTrip) {
  QueryTopKReq req;
  req.session_id = "q";
  req.k = 17;
  QueryTopKReq got;
  ASSERT_TRUE(DecodeQueryTopK(EncodeQueryTopK(req), &got));
  EXPECT_EQ(got.session_id, "q");
  EXPECT_EQ(got.k, 17u);

  const std::string wire = EncodeQueryTopK(req);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    QueryTopKReq scratch;
    EXPECT_FALSE(DecodeQueryTopK(wire.substr(0, cut), &scratch)) << cut;
  }
  QueryTopKReq scratch;
  EXPECT_FALSE(DecodeQueryTopK(wire + "x", &scratch));
}

std::vector<TopKEntry> SampleTopK() {
  std::vector<TopKEntry> entries(2);
  entries[0].point_id = 424242;
  entries[0].tick = 99;
  entries[0].score = 0.875;
  entries[0].decayed_score = 0.4375;
  SubspaceFinding f;
  f.subspace = Subspace(0b1011);
  f.pcs.rd = 0.125;
  f.pcs.irsd = 0.5;
  f.pcs.count = 17.25;
  entries[0].findings.push_back(f);
  entries[1].point_id = 7;
  entries[1].tick = 3;
  entries[1].score = 1.0 / 3.0;
  entries[1].decayed_score = 1.0 / 3.0;
  return entries;
}

TEST(CodecTest, TopKRoundTripBitExactly) {
  TopKResp resp;
  resp.session_id = "t";
  resp.entries = SampleTopK();
  TopKResp got;
  ASSERT_TRUE(DecodeTopK(EncodeTopK(resp), &got));
  EXPECT_EQ(got.session_id, "t");
  // Bit-exact round trip == identical canonical top-k bytes.
  EXPECT_EQ(TopKBytes(got.entries), TopKBytes(resp.entries));
  ASSERT_EQ(got.entries.size(), 2u);
  EXPECT_EQ(got.entries[0].point_id, 424242u);
  EXPECT_EQ(got.entries[0].tick, 99u);
  ASSERT_EQ(got.entries[0].findings.size(), 1u);
  EXPECT_EQ(got.entries[0].findings[0].subspace.bits(), 0b1011u);
  // Attribute values never travel (they stay server-side for labeling).
  EXPECT_TRUE(got.entries[0].values.empty());

  // The canonical bytes distinguish any score perturbation.
  std::vector<TopKEntry> other = SampleTopK();
  other[1].decayed_score = std::nextafter(other[1].decayed_score, 1.0);
  EXPECT_NE(TopKBytes(resp.entries), TopKBytes(other));

  // Truncation sweep + trailing junk.
  const std::string wire = EncodeTopK(resp);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    TopKResp scratch;
    EXPECT_FALSE(DecodeTopK(wire.substr(0, cut), &scratch)) << cut;
  }
  TopKResp scratch;
  EXPECT_FALSE(DecodeTopK(wire + "x", &scratch));
}

TEST(CodecTest, HostileTopKCountsDoNotAllocate) {
  WireWriter w;
  w.Str("t");
  w.U32(0xFFFFFFFFu);  // entry count in a 9-byte payload
  TopKResp got;
  EXPECT_FALSE(DecodeTopK(w.bytes(), &got));

  WireWriter f;
  f.Str("t");
  f.U32(1);            // one entry...
  f.U64(1);            // point_id
  f.U64(2);            // tick
  f.F64(1.0);          // score
  f.F64(1.0);          // decayed
  f.U32(0xFFFFFFFFu);  // ...claiming 4G findings
  EXPECT_FALSE(DecodeTopK(f.bytes(), &got));
}

std::vector<SpotResult> SampleVerdicts() {
  std::vector<SpotResult> verdicts(3);
  verdicts[0].is_outlier = true;
  verdicts[0].score = 0.987654321;
  SubspaceFinding f;
  f.subspace = Subspace(0b1011);
  f.pcs.rd = 0.125;
  f.pcs.irsd = 0.5;
  f.pcs.count = 17.25;
  verdicts[0].findings.push_back(f);
  f.subspace = Subspace(0b100000);
  verdicts[0].findings.push_back(f);
  verdicts[2].score = 1.0 / 3.0;
  return verdicts;
}

TEST(CodecTest, VerdictsRoundTripBitExactly) {
  VerdictsResp resp;
  resp.session_id = "v";
  resp.first_point_id = 424242;
  resp.verdicts = SampleVerdicts();
  VerdictsResp got;
  ASSERT_TRUE(DecodeVerdicts(EncodeVerdicts(resp), &got));
  EXPECT_EQ(got.session_id, "v");
  EXPECT_EQ(got.first_point_id, 424242u);
  // Bit-exact round trip == identical canonical verdict bytes.
  EXPECT_EQ(VerdictBytes(got.verdicts), VerdictBytes(resp.verdicts));
  ASSERT_EQ(got.verdicts.size(), 3u);
  EXPECT_TRUE(got.verdicts[0].is_outlier);
  ASSERT_EQ(got.verdicts[0].findings.size(), 2u);
  EXPECT_EQ(got.verdicts[0].findings[1].subspace.bits(), 0b100000u);
}

TEST(CodecTest, VerdictBytesDistinguishesVerdicts) {
  std::vector<SpotResult> a = SampleVerdicts();
  std::vector<SpotResult> b = SampleVerdicts();
  EXPECT_EQ(VerdictBytes(a), VerdictBytes(b));
  b[2].score = std::nextafter(b[2].score, 1.0);
  EXPECT_NE(VerdictBytes(a), VerdictBytes(b));
}

TEST(CodecTest, RequestTypePredicate) {
  EXPECT_TRUE(IsRequestType(static_cast<std::uint8_t>(MsgType::kIngest)));
  EXPECT_TRUE(
      IsRequestType(static_cast<std::uint8_t>(MsgType::kCreateSession)));
  EXPECT_TRUE(IsRequestType(static_cast<std::uint8_t>(MsgType::kStats)));
  EXPECT_TRUE(
      IsRequestType(static_cast<std::uint8_t>(MsgType::kTraceDump)));
  EXPECT_TRUE(IsRequestType(static_cast<std::uint8_t>(MsgType::kFeedback)));
  EXPECT_TRUE(
      IsRequestType(static_cast<std::uint8_t>(MsgType::kQueryTopK)));
  EXPECT_FALSE(IsRequestType(static_cast<std::uint8_t>(MsgType::kOk)));
  EXPECT_FALSE(
      IsRequestType(static_cast<std::uint8_t>(MsgType::kStatsResp)));
  EXPECT_FALSE(
      IsRequestType(static_cast<std::uint8_t>(MsgType::kTraceResp)));
  EXPECT_FALSE(
      IsRequestType(static_cast<std::uint8_t>(MsgType::kTopKResp)));
  EXPECT_FALSE(IsRequestType(0));
  EXPECT_FALSE(IsRequestType(255));
}

TEST(CodecTest, PlausibleRequestTypePredicate) {
  // Every supported request type is plausible; so is the reserved band
  // up to (not including) the response range — those get the
  // kUnsupportedRequest refusal instead of a closed connection.
  for (std::uint8_t t = 1; t <= 10; ++t) {
    EXPECT_TRUE(IsPlausibleRequestType(t)) << int(t);
  }
  EXPECT_TRUE(IsPlausibleRequestType(11));
  EXPECT_TRUE(IsPlausibleRequestType(15));
  EXPECT_FALSE(IsPlausibleRequestType(0));
  EXPECT_FALSE(
      IsPlausibleRequestType(static_cast<std::uint8_t>(MsgType::kOk)));
  EXPECT_FALSE(IsPlausibleRequestType(
      static_cast<std::uint8_t>(MsgType::kTopKResp)));
  EXPECT_FALSE(IsPlausibleRequestType(255));
}

TEST(FrameTest, VersionNegotiationRange) {
  // v2 frames are still accepted (and report their version); v1 and
  // anything above kWireVersion are corrupt.
  FrameDecoder decoder;
  Frame frame;
  const std::string v2 = EncodeFrame(MsgType::kFlush, EncodeFlush({""}),
                                     /*version=*/2);
  decoder.Append(v2.data(), v2.size());
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.version, 2);

  const std::string v3 = EncodeFrame(MsgType::kFlush, EncodeFlush({""}));
  decoder.Append(v3.data(), v3.size());
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.version, kWireVersion);

  for (std::uint8_t bad : {std::uint8_t{1}, std::uint8_t{kWireVersion + 1}}) {
    std::string wire = EncodeFrame(MsgType::kFlush, "x");
    wire[4] = static_cast<char>(bad);
    // Re-stamping the version byte does not touch the payload CRC, so
    // the version check is what must reject it.
    FrameDecoder fresh;
    fresh.Append(wire.data(), wire.size());
    EXPECT_EQ(fresh.Next(&frame), FrameDecoder::Status::kCorrupt)
        << int(bad);
  }
}

TEST(FrameTest, TraceDumpRoundTrip) {
  // The trace request is empty; the response payload is raw Chrome-trace
  // JSON bytes with no codec of its own — the frame CRC is the integrity
  // check, and the bytes must survive verbatim (quotes, braces and all).
  FrameDecoder decoder;
  Frame frame;
  const std::string req = EncodeFrame(MsgType::kTraceDump, "");
  decoder.Append(req.data(), req.size());
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, MsgType::kTraceDump);
  EXPECT_TRUE(frame.payload.empty());

  const std::string json =
      "{\"traceEvents\":[{\"name\":\"process\",\"ph\":\"X\",\"ts\":1,"
      "\"dur\":2,\"pid\":0,\"tid\":0,\"args\":{\"batch\":7}}]}";
  const std::string resp = EncodeFrame(MsgType::kTraceResp, json);
  decoder.Append(resp.data(), resp.size());
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, MsgType::kTraceResp);
  EXPECT_EQ(frame.payload, json);
}

TEST(CodecTest, StatsRoundTrip) {
  StatsResp resp;
  resp.sessions_handed_off = 3;
  obs::MetricsSnapshot r0;
  r0.counters["points_ingested"] = 1234;
  r0.counters["batches_run"] = 17;
  r0.gauges["connections"] = 2.0;
  r0.gauges["pending_points"] = 48.5;
  for (int i = 0; i < 200; ++i) {
    r0.histograms["pipeline_process_us"].Record(i * 37.0);
  }
  obs::MetricsSnapshot r1;  // empty slot: a reactor that never published
  resp.reactors = {r0, r1};
  obs::MetricsSnapshot svc;
  svc.counters["evictions"] = 5;
  svc.histograms["checkpoint_save_us"].Record(900.0);
  resp.services = {svc};

  StatsResp decoded;
  ASSERT_TRUE(DecodeStats(EncodeStats(resp), &decoded));
  EXPECT_EQ(decoded.sessions_handed_off, 3u);
  ASSERT_EQ(decoded.reactors.size(), 2u);
  ASSERT_EQ(decoded.services.size(), 1u);
  EXPECT_EQ(decoded.reactors[0].counters, r0.counters);
  EXPECT_EQ(decoded.reactors[0].gauges, r0.gauges);
  EXPECT_EQ(decoded.reactors[0].histograms.at("pipeline_process_us"),
            r0.histograms.at("pipeline_process_us"));
  EXPECT_TRUE(decoded.reactors[1].empty());
  EXPECT_EQ(decoded.services[0].counters.at("evictions"), 5u);
  EXPECT_EQ(decoded.services[0].histograms.at("checkpoint_save_us"),
            svc.histograms.at("checkpoint_save_us"));

  // Merged() folds every slice plus the hand-off count into one view.
  const obs::MetricsSnapshot merged = decoded.Merged();
  EXPECT_EQ(merged.counters.at("points_ingested"), 1234u);
  EXPECT_EQ(merged.counters.at("evictions"), 5u);
  EXPECT_EQ(merged.counters.at("sessions_handed_off"), 3u);

  // Truncation anywhere must decode to false, never crash or over-read.
  const std::string wire = EncodeStats(resp);
  for (std::size_t cut = 0; cut < wire.size(); cut += 7) {
    StatsResp scratch;
    EXPECT_FALSE(DecodeStats(wire.substr(0, cut), &scratch)) << cut;
  }
  // Trailing junk is rejected too.
  StatsResp scratch;
  EXPECT_FALSE(DecodeStats(wire + "x", &scratch));
}

TEST(CodecTest, StatsSessionQualityRoundTrip) {
  // v2: the stats payload carries per-session detection-quality sections
  // after the reactor/service snapshots. Histograms and the capped
  // per-subspace rows must round-trip exactly, and truncating anywhere
  // inside the new tail must fail cleanly like the v1 sections.
  StatsResp resp;
  resp.sessions_handed_off = 1;
  resp.reactors = {obs::MetricsSnapshot()};
  SessionQuality q;
  q.session_id = "lg-0";
  q.points = 5000;
  q.alarms = 123;
  q.tracked_subspaces = 9;
  q.base_cells = 456;
  q.slab_slots = 1024;
  q.free_slots = 16;
  q.compactions = 3;
  q.cells_reclaimed = 77;
  for (int i = 1; i <= 50; ++i) q.rd_margin.Record(i * 40.0);
  q.irsd_margin.Record(999.0);
  SubspaceQuality sub;
  sub.subspace_bits = 0b1011;
  sub.points = 5000;
  sub.alarms = 100;
  q.subspaces.push_back(sub);
  sub.subspace_bits = 0b0100;
  sub.alarms = 23;
  q.subspaces.push_back(sub);
  resp.sessions.push_back(q);
  SessionQuality empty_q;  // a session that alarmed on nothing yet
  empty_q.session_id = "idle";
  resp.sessions.push_back(empty_q);

  StatsResp decoded;
  ASSERT_TRUE(DecodeStats(EncodeStats(resp), &decoded));
  ASSERT_EQ(decoded.sessions.size(), 2u);
  const SessionQuality& got = decoded.sessions[0];
  EXPECT_EQ(got.session_id, "lg-0");
  EXPECT_EQ(got.points, 5000u);
  EXPECT_EQ(got.alarms, 123u);
  EXPECT_EQ(got.tracked_subspaces, 9u);
  EXPECT_EQ(got.base_cells, 456u);
  EXPECT_EQ(got.slab_slots, 1024u);
  EXPECT_EQ(got.free_slots, 16u);
  EXPECT_EQ(got.compactions, 3u);
  EXPECT_EQ(got.cells_reclaimed, 77u);
  EXPECT_EQ(got.rd_margin, q.rd_margin);
  EXPECT_EQ(got.irsd_margin, q.irsd_margin);
  ASSERT_EQ(got.subspaces.size(), 2u);
  EXPECT_EQ(got.subspaces[0].subspace_bits, 0b1011u);
  EXPECT_EQ(got.subspaces[0].alarms, 100u);
  EXPECT_EQ(got.subspaces[1].subspace_bits, 0b0100u);
  EXPECT_EQ(decoded.sessions[1].session_id, "idle");
  EXPECT_EQ(decoded.sessions[1].rd_margin.count(), 0u);

  const std::string wire = EncodeStats(resp);
  for (std::size_t cut = 0; cut < wire.size(); cut += 5) {
    StatsResp scratch;
    EXPECT_FALSE(DecodeStats(wire.substr(0, cut), &scratch)) << cut;
  }
  StatsResp scratch;
  EXPECT_FALSE(DecodeStats(wire + "x", &scratch));
}

TEST(CodecTest, HostileSessionCountsDoNotAllocate) {
  // A stats tail claiming 4G sessions (or 4G subspace rows inside one
  // session) in a handful of bytes must be rejected by the size bound
  // before any proportional allocation — same discipline as the v1
  // reactor/instrument counts.
  WireWriter w;
  w.U64(0);            // handoffs
  w.U32(0);            // reactors
  w.U32(0);            // services
  w.U32(0xFFFFFFFFu);  // "session count"
  StatsResp scratch;
  EXPECT_FALSE(DecodeStats(w.bytes(), &scratch));

  StatsResp one;
  one.sessions.emplace_back();
  one.sessions.back().session_id = "s";
  std::string wire = EncodeStats(one);
  // The session's trailing subspace count is the last u32: rewrite it.
  WireWriter tail;
  tail.U32(0xFFFFFFFFu);
  wire.replace(wire.size() - 4, 4, tail.bytes());
  EXPECT_FALSE(DecodeStats(wire, &scratch));
}

TEST(CodecTest, HostileStatsCountsDoNotAllocate) {
  // A header announcing 2^32-ish snapshots/instruments must be rejected
  // by the payload-size bound before any proportional allocation.
  WireWriter w;
  w.U64(0);            // handoffs
  w.U32(0xFFFFFFFFu);  // "reactor count"
  StatsResp scratch;
  EXPECT_FALSE(DecodeStats(w.bytes(), &scratch));

  WireWriter w2;
  w2.U64(0);
  w2.U32(1);           // one reactor snapshot...
  w2.U32(0xFFFFFFFFu);  // ...claiming 4G counters
  EXPECT_FALSE(DecodeStats(w2.bytes(), &scratch));
}

}  // namespace
}  // namespace net
}  // namespace spot
