// Tests of the hardware performance-counter profiling plane (src/obs/
// perf_counters.{h,cc}, DESIGN.md Section 12): the perf_event_open group
// wrapper and its graceful-degradation ladder (real denial, forced
// errno, bogus event config), ScopedCounters fold/Cancel/Commit/nesting
// semantics, the spot_perf_* publish helpers (raw counters + always-
// finite derived gauges), process-level gauges, and the merged-snapshot
// readers (MergedPerfMode, RenderPerfSummary) that must not trust the
// summed perf_mode gauge.

#include <cerrno>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/perf_counters.h"

namespace spot {
namespace obs {
namespace {

// Restores the real open path even when a test using the forced-errno
// seam fails mid-body.
struct ForcedErrnoGuard {
  explicit ForcedErrnoGuard(int err) {
    PerfCounterGroup::ForceOpenErrnoForTesting(err);
  }
  ~ForcedErrnoGuard() { PerfCounterGroup::ForceOpenErrnoForTesting(0); }
};

// ------------------------------------------------------------ open modes --

TEST(PerfCounterGroupTest, OpenNeverFailsAndReportsAValidMode) {
  auto group = PerfCounterGroup::Open();
  ASSERT_NE(group, nullptr);
  // Whichever way the kernel answered, the mode is one of the two live
  // rungs — never disabled (that value is reserved for "no group").
  EXPECT_TRUE(group->mode() == PerfMode::kHardware ||
              group->mode() == PerfMode::kSoftware);
}

TEST(PerfCounterGroupTest, ClockAdvancesInEveryMode) {
  auto group = PerfCounterGroup::Open();
  const PerfSample a = group->Read();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const PerfSample b = group->Read();
  EXPECT_GT(b.clock_ns, a.clock_ns);
}

TEST(PerfCounterGroupTest, HardwareModeCountsAreMonotone) {
  auto group = PerfCounterGroup::Open();
  if (group->mode() != PerfMode::kHardware) {
    GTEST_SKIP() << "no PMU in this environment; fallback covered below";
  }
  const PerfSample a = group->Read();
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink += static_cast<double>(i) * 0.5;
  const PerfSample b = group->Read();
  EXPECT_TRUE(b.hardware);
  EXPECT_GT(b.instructions, a.instructions);
  EXPECT_GE(b.cycles, a.cycles);
}

TEST(PerfCounterGroupTest, ForcedEaccesFallsBackToSoftware) {
  ForcedErrnoGuard guard(EACCES);
  auto group = PerfCounterGroup::Open();
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->mode(), PerfMode::kSoftware);
  const PerfSample s = group->Read();
  EXPECT_FALSE(s.hardware);
  EXPECT_EQ(s.cycles, 0u);
  EXPECT_EQ(s.instructions, 0u);
  EXPECT_EQ(s.cache_misses, 0u);
}

TEST(PerfCounterGroupTest, BogusEventConfigFallsBackToSoftware) {
  // The other leg of the ladder: the syscall itself is reachable but the
  // event is one no PMU defines — must land in the same software mode as
  // a permission denial.
  auto group = PerfCounterGroup::OpenWithBogusConfigForTesting();
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->mode(), PerfMode::kSoftware);
  EXPECT_FALSE(group->Read().hardware);
}

TEST(PerfCounterGroupTest, ThreadPerfGroupIsPerThreadAndStable) {
  PerfCounterGroup* mine = ThreadPerfGroup();
  ASSERT_NE(mine, nullptr);
  EXPECT_EQ(ThreadPerfGroup(), mine);  // same thread: same group
  PerfCounterGroup* theirs = nullptr;
  std::thread t([&theirs] { theirs = ThreadPerfGroup(); });
  t.join();
  EXPECT_NE(theirs, nullptr);
  EXPECT_NE(theirs, mine);  // counters follow the opening thread
}

// -------------------------------------------------------- scoped folding --

TEST(ScopedCountersTest, FoldsUnitsSamplesAndClock) {
  auto group = PerfCounterGroup::Open();
  PerfStageTotals totals;
  {
    ScopedCounters scope(group.get(), &totals);
    scope.set_units(42);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(totals.samples, 1u);
  EXPECT_EQ(totals.units, 42u);
  EXPECT_GT(totals.clock_ns, 0u);
}

TEST(ScopedCountersTest, CancelDiscardsTheScope) {
  auto group = PerfCounterGroup::Open();
  PerfStageTotals totals;
  {
    ScopedCounters scope(group.get(), &totals);
    scope.set_units(42);
    scope.Cancel();
  }
  EXPECT_EQ(totals.samples, 0u);
  EXPECT_EQ(totals.units, 0u);
  EXPECT_EQ(totals.clock_ns, 0u);
}

TEST(ScopedCountersTest, CommitEndsTheWindowEarlyAndOnlyOnce) {
  auto group = PerfCounterGroup::Open();
  PerfStageTotals totals;
  std::uint64_t committed_clock = 0;
  {
    ScopedCounters scope(group.get(), &totals);
    scope.set_units(7);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    scope.Commit();
    committed_clock = totals.clock_ns;
    // Work after Commit() must not be attributed to the stage, and the
    // destructor must not fold a second sample.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(totals.samples, 1u);
  EXPECT_EQ(totals.units, 7u);
  EXPECT_EQ(totals.clock_ns, committed_clock);
}

TEST(ScopedCountersTest, NullGroupOrTotalsIsANoOp) {
  PerfStageTotals totals;
  {
    ScopedCounters scope(nullptr, &totals);
    scope.set_units(9);
  }
  EXPECT_EQ(totals.samples, 0u);
  auto group = PerfCounterGroup::Open();
  ScopedCounters scope(group.get(), nullptr);  // must not crash on fold
  scope.set_units(9);
}

TEST(ScopedCountersTest, ScopesNestIndependently) {
  // The reactor's process stage encloses the engine's scopes on the same
  // thread; each must fold its own window into its own totals.
  auto group = PerfCounterGroup::Open();
  PerfStageTotals outer_totals;
  PerfStageTotals inner_totals;
  {
    ScopedCounters outer(group.get(), &outer_totals);
    outer.set_units(10);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      ScopedCounters inner(group.get(), &inner_totals);
      inner.set_units(3);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(outer_totals.samples, 1u);
  EXPECT_EQ(inner_totals.samples, 1u);
  // The outer window contains the inner one.
  EXPECT_GT(outer_totals.clock_ns, inner_totals.clock_ns);
}

TEST(PerfStageTotalsTest, MergeAddsEveryField) {
  PerfStageTotals a;
  a.samples = 1;
  a.hw_samples = 1;
  a.units = 10;
  a.cycles = 100;
  a.instructions = 200;
  a.cache_references = 30;
  a.cache_misses = 4;
  a.branch_misses = 5;
  a.clock_ns = 1000;
  PerfStageTotals b = a;
  b.Merge(a);
  EXPECT_EQ(b.samples, 2u);
  EXPECT_EQ(b.hw_samples, 2u);
  EXPECT_EQ(b.units, 20u);
  EXPECT_EQ(b.cycles, 200u);
  EXPECT_EQ(b.instructions, 400u);
  EXPECT_EQ(b.cache_references, 60u);
  EXPECT_EQ(b.cache_misses, 8u);
  EXPECT_EQ(b.branch_misses, 10u);
  EXPECT_EQ(b.clock_ns, 2000u);
}

// --------------------------------------------------------------- publish --

TEST(PublishPerfTest, TotalsPublishRawCountersAndDerivedGauges) {
  Registry reg;
  PerfStageTotals t;
  t.samples = 2;
  t.hw_samples = 2;
  t.units = 10;
  t.cycles = 500;
  t.instructions = 1000;
  t.cache_references = 80;
  t.cache_misses = 40;
  t.branch_misses = 20;
  t.clock_ns = 12345;
  PublishPerfTotals(&reg, "stage=\"decode\"", t);
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("perf_cycles{stage=\"decode\"}"), 500u);
  EXPECT_EQ(snap.counters.at("perf_instructions{stage=\"decode\"}"), 1000u);
  EXPECT_EQ(snap.counters.at("perf_cache_misses{stage=\"decode\"}"), 40u);
  EXPECT_EQ(snap.counters.at("perf_branch_misses{stage=\"decode\"}"), 20u);
  EXPECT_EQ(snap.counters.at("perf_units{stage=\"decode\"}"), 10u);
  EXPECT_EQ(snap.counters.at("perf_hw_samples{stage=\"decode\"}"), 2u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("perf_ipc{stage=\"decode\"}"), 2.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("perf_instr_per_unit{stage=\"decode\"}"),
                   100.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("perf_miss_per_unit{stage=\"decode\"}"),
                   4.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("perf_cycles_per_unit{stage=\"decode\"}"),
                   50.0);
}

TEST(PublishPerfTest, DerivedRatesStayFiniteInSoftwareFallback) {
  // The fallback invariant the ISSUE pins down: zero hardware counts and
  // even zero units must never produce NaN/Inf in a derived gauge.
  Registry reg;
  PerfStageTotals t;
  t.samples = 3;
  t.units = 0;
  t.clock_ns = 999;
  PublishPerfTotals(&reg, "stage=\"bin\"", t);
  const MetricsSnapshot snap = reg.Snapshot();
  for (const auto& [name, value] : snap.gauges) {
    EXPECT_TRUE(std::isfinite(value)) << name << " = " << value;
    EXPECT_DOUBLE_EQ(value, 0.0) << name;
  }
}

TEST(PublishPerfTest, ModeGaugeCoversTheWholeLadder) {
  Registry reg;
  PublishPerfMode(&reg, nullptr);
  EXPECT_DOUBLE_EQ(reg.Snapshot().gauges.at("perf_mode"),
                   static_cast<double>(PerfMode::kDisabled));
  ForcedErrnoGuard guard(EPERM);
  auto sw = PerfCounterGroup::Open();
  PublishPerfMode(&reg, sw.get());
  EXPECT_DOUBLE_EQ(reg.Snapshot().gauges.at("perf_mode"),
                   static_cast<double>(PerfMode::kSoftware));
}

TEST(PublishPerfTest, ProcessGaugesReadProc) {
  Registry reg;
  PublishProcessGauges(&reg);
  const MetricsSnapshot snap = reg.Snapshot();
#if defined(__linux__)
  EXPECT_GT(snap.gauges.at("process_rss_bytes"), 0.0);
  EXPECT_GT(snap.gauges.at("process_open_fds"), 0.0);
#endif
  EXPECT_GE(snap.gauges.at("process_uptime_seconds"), 0.0);
}

// ------------------------------------------------------- merged snapshot --

TEST(MergedPerfModeTest, DerivesFromSampleCountersNotTheSummedGauge) {
  // Two software-mode sections: the merged perf_mode gauge sums to 2,
  // which would misread as "hardware" — MergedPerfMode must say software.
  Registry a;
  Registry b;
  PerfStageTotals t;
  t.samples = 5;
  PublishPerfTotals(&a, "stage=\"decode\"", t);
  a.GetGauge("perf_mode")->Set(static_cast<double>(PerfMode::kSoftware));
  PublishPerfTotals(&b, "stage=\"decode\"", t);
  b.GetGauge("perf_mode")->Set(static_cast<double>(PerfMode::kSoftware));
  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  ASSERT_DOUBLE_EQ(merged.gauges.at("perf_mode"), 2.0);  // the trap
  EXPECT_EQ(MergedPerfMode(merged), PerfMode::kSoftware);
}

TEST(MergedPerfModeTest, AnyHardwareSampleMeansHardware) {
  Registry reg;
  PerfStageTotals t;
  t.samples = 5;
  t.hw_samples = 1;
  PublishPerfTotals(&reg, "stage=\"probe\",engine_shard=\"0\"", t);
  EXPECT_EQ(MergedPerfMode(reg.Snapshot()), PerfMode::kHardware);
}

TEST(MergedPerfModeTest, NoPerfSeriesMeansDisabled) {
  Registry reg;
  reg.GetCounter("frames_decoded")->Inc(3);
  EXPECT_EQ(MergedPerfMode(reg.Snapshot()), PerfMode::kDisabled);
}

TEST(RenderPerfSummaryTest, EmptyWithoutPerfSeries) {
  Registry reg;
  reg.GetCounter("frames_decoded")->Inc(3);
  EXPECT_EQ(RenderPerfSummary(reg.Snapshot()), "");
}

TEST(RenderPerfSummaryTest, RendersModeAndPerStageRates) {
  Registry reg;
  PerfStageTotals t;
  t.samples = 2;
  t.hw_samples = 2;
  t.units = 10;
  t.cycles = 500;
  t.instructions = 1000;
  t.cache_misses = 40;
  t.branch_misses = 20;
  PublishPerfTotals(&reg, "stage=\"decode\"", t);
  PerfStageTotals probe;
  probe.samples = 1;
  probe.units = 4;
  probe.instructions = 8;
  PublishPerfTotals(&reg, "stage=\"probe\",engine_shard=\"2\"", probe);
  const std::string line = RenderPerfSummary(reg.Snapshot());
  EXPECT_NE(line.find("perf[hw]"), std::string::npos) << line;
  EXPECT_NE(line.find("decode: ipc=2.00 instr/u=100.0"), std::string::npos)
      << line;
  EXPECT_NE(line.find("probe/2:"), std::string::npos) << line;
}

TEST(RenderPerfSummaryTest, SoftwareFallbackRendersSwTag) {
  Registry reg;
  PerfStageTotals t;
  t.samples = 2;
  t.units = 10;
  PublishPerfTotals(&reg, "stage=\"encode\"", t);
  const std::string line = RenderPerfSummary(reg.Snapshot());
  EXPECT_NE(line.find("perf[sw]"), std::string::npos) << line;
  EXPECT_NE(line.find("encode:"), std::string::npos) << line;
}

}  // namespace
}  // namespace obs
}  // namespace spot
