// Unit tests of src/subspace: Subspace algebra, lattice enumeration,
// ranked subspace sets.

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "subspace/lattice.h"
#include "subspace/subspace.h"
#include "subspace/subspace_set.h"

namespace spot {
namespace {

// ----------------------------------------------------------- Subspace ----

TEST(SubspaceTest, EmptyByDefault) {
  Subspace s;
  EXPECT_TRUE(s.IsEmpty());
  EXPECT_EQ(s.Dimension(), 0);
  EXPECT_EQ(s.FirstIndex(), -1);
  EXPECT_EQ(s.ToString(), "{}");
}

TEST(SubspaceTest, FromIndicesRoundTrips) {
  const Subspace s = Subspace::FromIndices({3, 0, 17});
  EXPECT_EQ(s.Dimension(), 3);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(17));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_EQ(s.Indices(), (std::vector<int>{0, 3, 17}));
  EXPECT_EQ(s.ToString(), "{0,3,17}");
}

TEST(SubspaceTest, FromIndicesIgnoresOutOfRange) {
  const Subspace s = Subspace::FromIndices({-1, 2, 64, 99});
  EXPECT_EQ(s.Indices(), (std::vector<int>{2}));
}

TEST(SubspaceTest, FullSpace) {
  EXPECT_EQ(Subspace::Full(0).Dimension(), 0);
  EXPECT_EQ(Subspace::Full(5).Dimension(), 5);
  EXPECT_EQ(Subspace::Full(64).Dimension(), 64);
  EXPECT_EQ(Subspace::Full(5).Indices(), (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SubspaceTest, SingletonAndAddRemove) {
  Subspace s = Subspace::Singleton(7);
  EXPECT_EQ(s.Dimension(), 1);
  EXPECT_EQ(s.FirstIndex(), 7);
  s.Add(2).Add(7);  // adding twice is idempotent
  EXPECT_EQ(s.Dimension(), 2);
  s.Remove(7);
  EXPECT_EQ(s.Indices(), (std::vector<int>{2}));
  s.Remove(63);  // removing absent bit is a no-op
  EXPECT_EQ(s.Dimension(), 1);
}

TEST(SubspaceTest, SetAlgebra) {
  const Subspace a = Subspace::FromIndices({0, 1, 2});
  const Subspace b = Subspace::FromIndices({2, 3});
  EXPECT_EQ(a.Union(b).Indices(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(a.Intersection(b).Indices(), (std::vector<int>{2}));
  EXPECT_EQ(a.Difference(b).Indices(), (std::vector<int>{0, 1}));
  EXPECT_TRUE(a.IsSupersetOf(Subspace::FromIndices({0, 2})));
  EXPECT_FALSE(a.IsSupersetOf(b));
  EXPECT_TRUE(a.IsSupersetOf(Subspace()));  // empty subset of everything
}

TEST(SubspaceTest, OrderingIsDimensionFirst) {
  const Subspace low_dim = Subspace::FromIndices({63});
  const Subspace high_dim = Subspace::FromIndices({0, 1});
  EXPECT_TRUE(low_dim < high_dim);
  EXPECT_FALSE(high_dim < low_dim);
  // Same dimension: mask order.
  EXPECT_TRUE(Subspace::FromIndices({0}) < Subspace::FromIndices({1}));
}

TEST(SubspaceTest, HashDistinguishesSubspaces) {
  SubspaceHash h;
  std::unordered_set<std::size_t> hashes;
  for (int i = 0; i < 64; ++i) {
    hashes.insert(h(Subspace::Singleton(i)));
  }
  EXPECT_EQ(hashes.size(), 64u);
}

// ------------------------------------------------------------ Lattice ----

TEST(LatticeTest, EnumerateSingleDimension) {
  const auto subs = EnumerateSubspacesOfDim(5, 1);
  ASSERT_EQ(subs.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(subs[static_cast<std::size_t>(i)], Subspace::Singleton(i));
  }
}

TEST(LatticeTest, EnumerateCountsMatchBinomials) {
  for (int n : {4, 6, 10}) {
    for (int k = 1; k <= n; ++k) {
      EXPECT_EQ(EnumerateSubspacesOfDim(n, k).size(),
                BinomialCoefficient(n, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(LatticeTest, EnumerateEdgeCases) {
  EXPECT_TRUE(EnumerateSubspacesOfDim(5, 0).empty());
  EXPECT_TRUE(EnumerateSubspacesOfDim(5, 6).empty());
  EXPECT_TRUE(EnumerateSubspacesOfDim(0, 1).empty());
  EXPECT_EQ(EnumerateSubspacesOfDim(5, 5).size(), 1u);
}

TEST(LatticeTest, AllEnumeratedDistinctAndCorrectDim) {
  const auto subs = EnumerateSubspacesOfDim(8, 3);
  std::set<std::uint64_t> seen;
  for (const auto& s : subs) {
    EXPECT_EQ(s.Dimension(), 3);
    EXPECT_TRUE(seen.insert(s.bits()).second) << "duplicate " << s.ToString();
    EXPECT_LT(s.bits(), 1ULL << 8);
  }
}

TEST(LatticeTest, EnumerateLatticeIsLowDimFirst) {
  const auto subs = EnumerateLattice(5, 3);
  EXPECT_EQ(subs.size(), LatticeSize(5, 3));
  for (std::size_t i = 1; i < subs.size(); ++i) {
    EXPECT_LE(subs[i - 1].Dimension(), subs[i].Dimension());
  }
}

TEST(LatticeTest, EnumerateLatticeRespectsLimit) {
  const auto subs = EnumerateLattice(10, 3, 7);
  EXPECT_EQ(subs.size(), 7u);
}

TEST(LatticeTest, NextSameDimensionTerminates) {
  Subspace s = Subspace::FromIndices({2, 3});  // last 2-subspace of 4 dims
  EXPECT_TRUE(NextSameDimension(s, 4).IsEmpty() ||
              NextSameDimension(s, 4).Dimension() == 2);
  // The true last one:
  EXPECT_TRUE(NextSameDimension(Subspace::FromIndices({2, 3}), 4).IsEmpty());
}

TEST(LatticeTest, SampleLatticeDistinctWithinBounds) {
  Rng rng(5);
  const auto subs = SampleLattice(20, 3, 50, rng);
  ASSERT_EQ(subs.size(), 50u);
  std::set<std::uint64_t> seen;
  for (const auto& s : subs) {
    EXPECT_GE(s.Dimension(), 1);
    EXPECT_LE(s.Dimension(), 3);
    EXPECT_TRUE(seen.insert(s.bits()).second);
  }
}

TEST(LatticeTest, SampleLatticeFallsBackToEnumeration) {
  Rng rng(5);
  // Lattice of 4/2 has 10 members; asking for 50 returns all 10.
  const auto subs = SampleLattice(4, 2, 50, rng);
  EXPECT_EQ(subs.size(), 10u);
}

// ----------------------------------------------------- RankedSubspaceSet --

TEST(RankedSetTest, InsertAndRank) {
  RankedSubspaceSet set(0);
  set.Insert(Subspace::Singleton(0), 3.0);
  set.Insert(Subspace::Singleton(1), 1.0);
  set.Insert(Subspace::Singleton(2), 2.0);
  const auto ranked = set.Ranked();
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].subspace, Subspace::Singleton(1));
  EXPECT_EQ(ranked[1].subspace, Subspace::Singleton(2));
  EXPECT_EQ(ranked[2].subspace, Subspace::Singleton(0));
}

TEST(RankedSetTest, RejectsEmptySubspace) {
  RankedSubspaceSet set(0);
  EXPECT_FALSE(set.Insert(Subspace(), 0.0));
  EXPECT_TRUE(set.empty());
}

TEST(RankedSetTest, CapacityEvictsWorst) {
  RankedSubspaceSet set(2);
  set.Insert(Subspace::Singleton(0), 3.0);
  set.Insert(Subspace::Singleton(1), 1.0);
  set.Insert(Subspace::Singleton(2), 2.0);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(Subspace::Singleton(1)));
  EXPECT_TRUE(set.Contains(Subspace::Singleton(2)));
  EXPECT_FALSE(set.Contains(Subspace::Singleton(0)));  // worst evicted
}

TEST(RankedSetTest, InsertWorseThanCapacityBoundFails) {
  RankedSubspaceSet set(2);
  set.Insert(Subspace::Singleton(0), 1.0);
  set.Insert(Subspace::Singleton(1), 2.0);
  EXPECT_FALSE(set.Insert(Subspace::Singleton(2), 5.0));
  EXPECT_EQ(set.size(), 2u);
}

TEST(RankedSetTest, UpdateScoreReRanks) {
  RankedSubspaceSet set(0);
  set.Insert(Subspace::Singleton(0), 3.0);
  set.Insert(Subspace::Singleton(1), 1.0);
  set.Insert(Subspace::Singleton(0), 0.5);  // improve
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.Ranked().front().subspace, Subspace::Singleton(0));
  EXPECT_DOUBLE_EQ(set.ScoreOf(Subspace::Singleton(0)), 0.5);
}

TEST(RankedSetTest, TopKAndMembers) {
  RankedSubspaceSet set(0);
  for (int i = 0; i < 5; ++i) {
    set.Insert(Subspace::Singleton(i), static_cast<double>(i));
  }
  const auto top2 = set.TopK(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], Subspace::Singleton(0));
  EXPECT_EQ(top2[1], Subspace::Singleton(1));
  EXPECT_EQ(set.Members().size(), 5u);
  EXPECT_EQ(set.TopK(99).size(), 5u);
}

TEST(RankedSetTest, EraseAndClear) {
  RankedSubspaceSet set(0);
  set.Insert(Subspace::Singleton(3), 1.0);
  EXPECT_TRUE(set.Erase(Subspace::Singleton(3)));
  EXPECT_FALSE(set.Erase(Subspace::Singleton(3)));
  set.Insert(Subspace::Singleton(1), 1.0);
  set.Clear();
  EXPECT_TRUE(set.empty());
}

TEST(RankedSetTest, ScoreOfFallback) {
  RankedSubspaceSet set(0);
  EXPECT_DOUBLE_EQ(set.ScoreOf(Subspace::Singleton(9), 42.0), 42.0);
}

}  // namespace
}  // namespace spot
