// Tests of the SpotService session manager (src/service/spot_service.h):
// interleaved multi-session routing, LRU eviction to disk with transparent
// reload (a session's verdict sequence must be independent of how often it
// was evicted), kill/restore via OpenSession, and the metrics registry.
// The ASan/UBSan CI job runs this binary.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <vector>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "eval/presets.h"
#include "service/spot_service.h"
#include "stream/synthetic.h"

namespace spot {
namespace {

/// Fresh per-test checkpoint directory under the gtest temp root.
std::string MakeCheckpointDir(const char* tag) {
  const std::string dir = testing::TempDir() + "spot_service_" + tag;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

SpotConfig SessionConfig() {
  SpotConfig cfg = eval::FastTestConfig();
  cfg.os_update_every = 8;
  cfg.evolution_period = 300;
  return cfg;
}

/// Tenant `t`'s private stream: a distinct cluster concept per tenant, so
/// cross-session state leakage would change verdicts.
std::vector<LabeledPoint> TenantStream(int t, int n, std::uint64_t salt) {
  stream::SyntheticConfig scfg;
  scfg.dimension = 6;
  scfg.outlier_probability = 0.02;
  scfg.concept_seed = 100 + static_cast<std::uint64_t>(t);
  scfg.seed = 7000 + salt;
  stream::GaussianStream gen(scfg);
  return Take(gen, static_cast<std::size_t>(n));
}

std::vector<std::vector<double>> TenantTraining(int t) {
  stream::SyntheticConfig scfg;
  scfg.dimension = 6;
  scfg.outlier_probability = 0.0;
  scfg.concept_seed = 100 + static_cast<std::uint64_t>(t);
  scfg.seed = 8000 + static_cast<std::uint64_t>(t);
  stream::GaussianStream gen(scfg);
  return ValuesOf(Take(gen, 300));
}

std::vector<DataPoint> Chunk(const std::vector<LabeledPoint>& stream,
                             std::size_t begin, std::size_t end) {
  std::vector<DataPoint> out;
  out.reserve(end - begin);
  for (std::size_t i = begin; i < end && i < stream.size(); ++i) {
    out.push_back(stream[i].point);
  }
  return out;
}

void ExpectSameVerdicts(const std::vector<SpotResult>& a,
                        const std::vector<SpotResult>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].is_outlier, b[i].is_outlier) << label << " point " << i;
    EXPECT_EQ(a[i].score, b[i].score) << label << " point " << i;
    ASSERT_EQ(a[i].findings.size(), b[i].findings.size())
        << label << " point " << i;
    for (std::size_t f = 0; f < a[i].findings.size(); ++f) {
      EXPECT_EQ(a[i].findings[f].subspace.bits(),
                b[i].findings[f].subspace.bits())
          << label << " point " << i;
    }
  }
}

TEST(SessionIdTest, ValidatesFilenameSafety) {
  EXPECT_TRUE(SpotService::ValidSessionId("tenant-a"));
  EXPECT_TRUE(SpotService::ValidSessionId("Sensor_12.north"));
  EXPECT_FALSE(SpotService::ValidSessionId(""));
  EXPECT_FALSE(SpotService::ValidSessionId(".hidden"));
  EXPECT_FALSE(SpotService::ValidSessionId("../escape"));
  EXPECT_FALSE(SpotService::ValidSessionId("a/b"));
  EXPECT_FALSE(SpotService::ValidSessionId("white space"));
  EXPECT_FALSE(SpotService::ValidSessionId(std::string(200, 'x')));
}

// The headline acceptance test: three interleaved sessions on a service
// that can hold only two resident, so every round trips LRU eviction +
// transparent reload — and each session's verdicts must equal a dedicated
// standalone detector fed the same stream uninterrupted.
TEST(SpotServiceTest, InterleavedSessionsSurviveLruEvictionBitIdentically) {
  const std::string dir = MakeCheckpointDir("lru");
  const int kTenants = 3;
  const std::size_t kBatch = 64;
  const std::size_t kBatches = 8;

  SpotServiceConfig scfg;
  scfg.max_resident = 2;  // < kTenants: forces continuous eviction traffic
  scfg.checkpoint_dir = dir;
  SpotService service(scfg);

  // Reference: one standalone detector per tenant, never evicted.
  std::vector<std::unique_ptr<SpotDetector>> reference;
  std::vector<std::vector<LabeledPoint>> streams;
  for (int t = 0; t < kTenants; ++t) {
    streams.push_back(TenantStream(t, static_cast<int>(kBatch * kBatches), 1));
    reference.push_back(std::make_unique<SpotDetector>(SessionConfig()));
    ASSERT_TRUE(reference.back()->Learn(TenantTraining(t)));
    const std::string id = "tenant-" + std::to_string(t);
    ASSERT_TRUE(service.CreateSession(id, SessionConfig(), TenantTraining(t)));
  }

  for (std::size_t b = 0; b < kBatches; ++b) {
    for (int t = 0; t < kTenants; ++t) {
      const std::string id = "tenant-" + std::to_string(t);
      const auto batch = Chunk(streams[t], b * kBatch, (b + 1) * kBatch);
      const auto expected = reference[t]->ProcessBatch(batch);
      const IngestResult got = service.Ingest(id, batch);
      ASSERT_TRUE(got.ok) << id << " batch " << b;
      ExpectSameVerdicts(expected, got.verdicts,
                         id + " batch " + std::to_string(b));
    }
  }

  const ServiceMetrics total = service.TotalMetrics();
  EXPECT_EQ(total.sessions, static_cast<std::size_t>(kTenants));
  EXPECT_LE(total.resident_sessions, 2u);
  EXPECT_GT(total.evictions, 0u) << "LRU eviction never triggered";
  EXPECT_GT(total.reloads, 0u) << "transparent reload never triggered";
  EXPECT_EQ(total.points_processed,
            static_cast<std::uint64_t>(kTenants) * kBatch * kBatches);

  for (int t = 0; t < kTenants; ++t) {
    SessionMetrics m;
    ASSERT_TRUE(service.GetMetrics("tenant-" + std::to_string(t), &m));
    EXPECT_EQ(m.stats.points_processed, kBatch * kBatches);
    EXPECT_EQ(m.stats.outliers_detected,
              reference[t]->stats().outliers_detected);
    EXPECT_EQ(m.batches_ingested, kBatches);
  }
}

// Kill/restore: a second service instance on the same checkpoint dir picks
// the sessions up via OpenSession and continues them bit-identically.
TEST(SpotServiceTest, KillAndRestoreContinuesBitIdentically) {
  const std::string dir = MakeCheckpointDir("restore");
  const auto stream = TenantStream(0, 1200, 2);
  const auto training = TenantTraining(0);

  SpotDetector reference(SessionConfig());
  ASSERT_TRUE(reference.Learn(training));
  reference.ProcessBatch(Chunk(stream, 0, 600));

  std::vector<SpotResult> continued;
  {
    SpotServiceConfig scfg;
    scfg.checkpoint_dir = dir;
    SpotService service(scfg);
    ASSERT_TRUE(service.CreateSession("victim", SessionConfig(), training));
    ASSERT_TRUE(service.Ingest("victim", Chunk(stream, 0, 600)).ok);
    ASSERT_TRUE(service.CheckpointAll());
    // Service destroyed here: the "kill".
  }
  {
    SpotServiceConfig scfg;
    scfg.checkpoint_dir = dir;
    SpotService service(scfg);
    EXPECT_FALSE(service.HasSession("victim"));
    ASSERT_TRUE(service.OpenSession("victim"));
    EXPECT_FALSE(service.OpenSession("victim"));  // duplicate
    const IngestResult got = service.Ingest("victim", Chunk(stream, 600, 1200));
    ASSERT_TRUE(got.ok);
    continued = got.verdicts;

    SessionMetrics m;
    ASSERT_TRUE(service.GetMetrics("victim", &m));
    EXPECT_EQ(m.stats.points_processed, 1200u);  // counters survived the kill
  }
  const auto expected = reference.ProcessBatch(Chunk(stream, 600, 1200));
  ExpectSameVerdicts(expected, continued, "restored service");
}

// The shared pool: many sessions, one service-owned worker pool, sharded
// batches — verdicts still equal the sequential standalone reference.
TEST(SpotServiceTest, SharedPoolShardsBatchesWithoutChangingVerdicts) {
  const std::string dir = MakeCheckpointDir("pool");
  SpotServiceConfig scfg;
  scfg.max_resident = 2;
  scfg.num_shards = 4;
  scfg.checkpoint_dir = dir;
  SpotService service(scfg);

  for (int t = 0; t < 3; ++t) {
    const std::string id = "shard-tenant-" + std::to_string(t);
    ASSERT_TRUE(service.CreateSession(id, SessionConfig(), TenantTraining(t)));
  }
  for (int t = 0; t < 3; ++t) {
    const std::string id = "shard-tenant-" + std::to_string(t);
    const auto stream = TenantStream(t, 512, 3);
    SpotDetector reference(SessionConfig());
    ASSERT_TRUE(reference.Learn(TenantTraining(t)));
    for (std::size_t b = 0; b < 4; ++b) {
      const auto batch = Chunk(stream, b * 128, (b + 1) * 128);
      const auto expected = reference.ProcessBatch(batch);
      const IngestResult got = service.Ingest(id, batch);
      ASSERT_TRUE(got.ok);
      ExpectSameVerdicts(expected, got.verdicts, id);
    }
  }
}

TEST(SpotServiceTest, RefusesOverCapacityWithoutCheckpointDir) {
  SpotServiceConfig scfg;
  scfg.max_resident = 1;  // and no checkpoint_dir: eviction impossible
  SpotService service(scfg);
  ASSERT_TRUE(service.CreateSession("only", SessionConfig(),
                                    TenantTraining(0)));
  EXPECT_FALSE(service.CreateSession("too-many", SessionConfig(),
                                     TenantTraining(1)));
  EXPECT_TRUE(service.HasSession("only"));
  EXPECT_FALSE(service.HasSession("too-many"));
  EXPECT_FALSE(service.Evict("only"));  // nowhere to evict to
  EXPECT_TRUE(service.IsResident("only"));
}

// A failed admission (failed Learn, missing checkpoint file) must not cost
// a resident session its slot: the fallible step runs BEFORE any eviction.
TEST(SpotServiceTest, FailedAdmissionEvictsNobody) {
  const std::string dir = MakeCheckpointDir("failed_admission");
  SpotServiceConfig scfg;
  scfg.max_resident = 1;
  scfg.checkpoint_dir = dir;
  SpotService service(scfg);
  ASSERT_TRUE(service.CreateSession("hot", SessionConfig(),
                                    TenantTraining(0)));
  ASSERT_TRUE(service.IsResident("hot"));

  // Learn() fails on an empty training batch.
  EXPECT_FALSE(service.CreateSession("bad-training", SessionConfig(), {}));
  EXPECT_TRUE(service.IsResident("hot"));

  // No checkpoint file exists for this id.
  EXPECT_FALSE(service.OpenSession("no-such-checkpoint"));
  EXPECT_TRUE(service.IsResident("hot"));
}

TEST(SpotServiceTest, RejectsUnknownAndInvalidSessions) {
  SpotService service(SpotServiceConfig{});
  EXPECT_FALSE(service.Ingest("ghost", std::vector<DataPoint>{}).ok);
  EXPECT_FALSE(service.CreateSession("bad/id", SessionConfig(),
                                     TenantTraining(0)));
  EXPECT_FALSE(service.OpenSession("ghost"));
  EXPECT_FALSE(service.Checkpoint("ghost"));
  EXPECT_FALSE(service.CloseSession("ghost"));
  SessionMetrics m;
  EXPECT_FALSE(service.GetMetrics("ghost", &m));
  EXPECT_FALSE(service.CreateSession("dup", SessionConfig(),
                                     TenantTraining(0)) &&
               service.CreateSession("dup", SessionConfig(),
                                     TenantTraining(0)));
}

// Service routing of the feedback & query plane (DESIGN.md Section 11):
// ApplyFeedback/QueryTopK reach the session's detector — including a
// session that was LRU-evicted to disk in between — and behave exactly
// like the detector called directly.
TEST(SpotServiceTest, RoutesFeedbackAndTopKThroughEvictionBitIdentically) {
  const std::string dir = MakeCheckpointDir("feedback");
  SpotServiceConfig scfg;
  scfg.checkpoint_dir = dir;
  scfg.max_resident = 1;  // every alternation forces an eviction round trip
  SpotService service(scfg);
  ASSERT_TRUE(service.CreateSession("a", SessionConfig(), TenantTraining(0)));
  ASSERT_TRUE(service.CreateSession("b", SessionConfig(), TenantTraining(1)));

  SpotDetector reference{SessionConfig()};
  ASSERT_TRUE(reference.Learn(TenantTraining(0)));

  const auto stream = TenantStream(0, 600, 1);
  const auto decoy = TenantStream(1, 600, 2);
  std::vector<SpotResult> got, want;
  for (std::size_t i = 0; i < 600; i += 100) {
    const std::vector<DataPoint> batch = Chunk(stream, i, i + 100);
    const IngestResult r = service.Ingest("a", batch);
    ASSERT_TRUE(r.ok);
    got.insert(got.end(), r.verdicts.begin(), r.verdicts.end());
    for (auto& v : reference.ProcessBatch(batch)) want.push_back(v);
    // Touch the other session so "a" is evicted before its feedback.
    ASSERT_TRUE(service.Ingest("b", Chunk(decoy, i, i + 100)).ok);
    ASSERT_FALSE(service.IsResident("a"));

    std::vector<TopKEntry> top;
    ASSERT_TRUE(service.QueryTopK("a", 4, &top));
    const auto ref_top = reference.QueryTopK(4);
    ASSERT_EQ(top.size(), ref_top.size());
    for (std::size_t e = 0; e < top.size(); ++e) {
      EXPECT_EQ(top[e].point_id, ref_top[e].point_id);
      EXPECT_EQ(top[e].decayed_score, ref_top[e].decayed_score);
    }
    std::vector<std::uint64_t> ids;
    for (const TopKEntry& e : top) ids.push_back(e.point_id);
    std::string error;
    const bool ok =
        service.ApplyFeedback("a", ids, {batch.front().values}, &error);
    EXPECT_EQ(ok, reference.ApplyFeedback(ids, {batch.front().values}))
        << error;
  }
  ExpectSameVerdicts(got, want, "feedback through eviction");

  SessionMetrics m;
  ASSERT_TRUE(service.GetMetrics("a", &m));
  EXPECT_EQ(m.stats.feedback_rounds, reference.stats().feedback_rounds);
  EXPECT_GT(m.stats.feedback_rounds, 0u);

  // Unknown sessions are refused with a named cause.
  std::string error;
  EXPECT_FALSE(service.ApplyFeedback("ghost", {}, {{1.0}}, &error));
  EXPECT_NE(error.find("ghost"), std::string::npos) << error;
  std::vector<TopKEntry> top;
  EXPECT_FALSE(service.QueryTopK("ghost", 4, &top, &error));
  EXPECT_NE(error.find("ghost"), std::string::npos) << error;
}

TEST(SpotServiceTest, CloseWithoutPersistDiscardsAndWithPersistKeeps) {
  const std::string dir = MakeCheckpointDir("close");
  SpotServiceConfig scfg;
  scfg.checkpoint_dir = dir;
  SpotService service(scfg);
  ASSERT_TRUE(service.CreateSession("a", SessionConfig(), TenantTraining(0)));
  ASSERT_TRUE(service.CreateSession("b", SessionConfig(), TenantTraining(1)));
  ASSERT_TRUE(service.CloseSession("a", /*persist=*/true));
  ASSERT_TRUE(service.CloseSession("b", /*persist=*/false));
  EXPECT_FALSE(service.HasSession("a"));
  // "a" was persisted: a new service can reopen it. "b" was not.
  EXPECT_TRUE(service.OpenSession("a"));
  EXPECT_FALSE(service.OpenSession("b"));
}

// Points whose width disagrees with the session's trained dimensionality
// must be refused whole (never partially processed): they would index out
// of the partition. This is the service-level guard the network ingest
// layer relies on for wire batches.
TEST(SpotServiceTest, RejectsWrongWidthPoints) {
  SpotServiceConfig scfg;
  SpotService service(scfg);
  ASSERT_TRUE(service.CreateSession("a", SessionConfig(),
                                    TenantTraining(0)));  // 6-dim
  EXPECT_FALSE(service.Ingest("a", {{1.0, 2.0}}).ok);
  EXPECT_FALSE(
      service.Ingest("a", std::vector<std::vector<double>>{{}}).ok);
  std::vector<DataPoint> mixed = Chunk(TenantStream(0, 4, 9), 0, 4);
  mixed.back().values.push_back(0.5);  // one ragged point poisons the batch
  EXPECT_FALSE(service.Ingest("a", mixed).ok);
  SessionMetrics m;
  ASSERT_TRUE(service.GetMetrics("a", &m));
  EXPECT_EQ(m.stats.points_processed, 0u);  // nothing leaked through
  EXPECT_TRUE(service.Ingest("a", Chunk(TenantStream(0, 4, 9), 0, 4)).ok);
}

// The network transport counters live in the session registry — not the
// detector — so they must accumulate across RecordNetwork calls, fold
// queue depth as a peak, survive eviction + reload, and aggregate into
// TotalMetrics without ever entering a checkpoint.
TEST(SpotServiceTest, NetworkCountersSurfaceAndSurviveEviction) {
  const std::string dir = MakeCheckpointDir("net");
  SpotServiceConfig scfg;
  scfg.checkpoint_dir = dir;
  SpotService service(scfg);
  ASSERT_TRUE(service.CreateSession("a", SessionConfig(), TenantTraining(0)));
  ASSERT_TRUE(service.CreateSession("b", SessionConfig(), TenantTraining(1)));

  SessionNetActivity delta;
  delta.frames_received = 3;
  delta.bytes_in = 1000;
  delta.bytes_out = 500;
  delta.queue_depth = 128;
  ASSERT_TRUE(service.RecordNetwork("a", delta));
  delta.queue_depth = 64;  // lower observation must not shrink the peak
  delta.backpressure_stalls = 1;
  ASSERT_TRUE(service.RecordNetwork("a", delta));
  delta = SessionNetActivity{};
  delta.frames_received = 1;
  delta.bytes_in = 10;
  ASSERT_TRUE(service.RecordNetwork("b", delta));
  EXPECT_FALSE(service.RecordNetwork("ghost", delta));

  SessionMetrics m;
  ASSERT_TRUE(service.GetMetrics("a", &m));
  EXPECT_EQ(m.stats.frames_received, 6u);
  EXPECT_EQ(m.stats.bytes_in, 2000u);
  EXPECT_EQ(m.stats.bytes_out, 1000u);
  EXPECT_EQ(m.stats.backpressure_stalls, 1u);
  EXPECT_EQ(m.stats.net_queue_peak, 128u);

  // Evict + transparently reload: counters are registry state, not
  // detector state, so they must be unchanged.
  ASSERT_TRUE(service.Evict("a"));
  ASSERT_TRUE(service.GetMetrics("a", &m));
  EXPECT_EQ(m.stats.frames_received, 6u);
  EXPECT_EQ(m.stats.net_queue_peak, 128u);
  ASSERT_TRUE(service.Ingest("a", Chunk(TenantStream(0, 8, 2), 0, 8)).ok);
  ASSERT_TRUE(service.GetMetrics("a", &m));
  EXPECT_EQ(m.stats.frames_received, 6u);
  EXPECT_EQ(m.stats.bytes_in, 2000u);

  const ServiceMetrics total = service.TotalMetrics();
  EXPECT_EQ(total.frames_received, 7u);
  EXPECT_EQ(total.bytes_in, 2010u);
  EXPECT_EQ(total.bytes_out, 1000u);
  EXPECT_EQ(total.backpressure_stalls, 1u);
  EXPECT_EQ(total.net_queue_peak, 128u);
}

TEST(SpotServiceTest, MergeServiceMetricsSumsAndKeepsPeakMax) {
  ServiceMetrics a;
  a.sessions = 2;
  a.resident_sessions = 1;
  a.points_processed = 100;
  a.outliers_detected = 3;
  a.drifts_detected = 1;
  a.batches_ingested = 10;
  a.evictions = 2;
  a.reloads = 1;
  a.checkpoints_written = 4;
  a.detection_seconds = 0.5;
  a.frames_received = 7;
  a.bytes_in = 2010;
  a.bytes_out = 1000;
  a.backpressure_stalls = 1;
  a.net_queue_peak = 128;

  ServiceMetrics b;
  b.sessions = 1;
  b.points_processed = 50;
  b.detection_seconds = 0.25;
  b.net_queue_peak = 64;  // smaller peak must not win

  MergeServiceMetrics(&a, b);
  EXPECT_EQ(a.sessions, 3u);
  EXPECT_EQ(a.resident_sessions, 1u);
  EXPECT_EQ(a.points_processed, 150u);
  EXPECT_EQ(a.outliers_detected, 3u);
  EXPECT_EQ(a.batches_ingested, 10u);
  EXPECT_EQ(a.evictions, 2u);
  EXPECT_EQ(a.checkpoints_written, 4u);
  EXPECT_DOUBLE_EQ(a.detection_seconds, 0.75);
  EXPECT_EQ(a.frames_received, 7u);
  EXPECT_EQ(a.net_queue_peak, 128u);

  ServiceMetrics c;
  c.net_queue_peak = 512;  // larger peak replaces
  MergeServiceMetrics(&a, c);
  EXPECT_EQ(a.net_queue_peak, 512u);
  EXPECT_EQ(a.points_processed, 150u);
}

}  // namespace
}  // namespace spot
