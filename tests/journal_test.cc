// Tests of the detector event journal (src/obs/journal.h, DESIGN.md
// Section 10): ring wraparound with honest drop accounting, global event
// ordering across interleaved sessions, session-name interning, the JSON
// rendering, and — the contract everything else rests on — that attaching
// a sink to a live detector changes neither its verdicts nor its
// checkpoint bytes while still journaling the engine's state transitions.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "core/detector.h"
#include "eval/presets.h"
#include "net/protocol.h"
#include "obs/journal.h"

namespace spot {
namespace obs {
namespace {

DetectorEvent Event(DetectorEventKind kind, std::uint64_t tick,
                    std::uint64_t a = 0) {
  DetectorEvent e;
  e.kind = kind;
  e.tick = tick;
  e.a = a;
  return e;
}

// ------------------------------------------------------------------- ring --

TEST(JournalTest, RetainsNewestWindowAfterWraparound) {
  Journal journal(8);
  const std::uint32_t s = journal.InternSession("lg-0");
  for (std::uint64_t i = 0; i < 20; ++i) {
    journal.Append(s, Event(DetectorEventKind::kEvolutionRound, i, i));
  }
  EXPECT_EQ(journal.appended(), 20u);
  EXPECT_EQ(journal.dropped(), 12u);

  const std::vector<JournalEntry> snap = journal.Snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // Oldest-first, ascending contiguous seq, and exactly the 12..19 tail.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].seq, 12 + i);
    EXPECT_EQ(snap[i].event.tick, 12 + i);
    EXPECT_EQ(snap[i].event.a, 12 + i);
  }
}

TEST(JournalTest, NoDropsBelowCapacity) {
  Journal journal(16);
  const std::uint32_t s = journal.InternSession("a");
  for (std::uint64_t i = 0; i < 16; ++i) {
    journal.Append(s, Event(DetectorEventKind::kDriftDetected, i));
  }
  EXPECT_EQ(journal.dropped(), 0u);
  EXPECT_EQ(journal.Snapshot().size(), 16u);
  journal.Append(s, Event(DetectorEventKind::kDriftDetected, 16));
  EXPECT_EQ(journal.dropped(), 1u);
  EXPECT_EQ(journal.Snapshot().front().seq, 1u);
}

TEST(JournalTest, OrderingIsGlobalAcrossSessions) {
  Journal journal(32);
  const std::uint32_t a = journal.InternSession("a");
  const std::uint32_t b = journal.InternSession("b");
  // Interleave two sessions; the journal's seq must reflect arrival order
  // regardless of which session emitted.
  for (std::uint64_t i = 0; i < 10; ++i) {
    journal.Append(i % 2 == 0 ? a : b,
                   Event(DetectorEventKind::kSstInsert, i));
  }
  const std::vector<JournalEntry> snap = journal.Snapshot();
  ASSERT_EQ(snap.size(), 10u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].seq, i);
    EXPECT_EQ(snap[i].event.tick, i);
    EXPECT_EQ(snap[i].session, i % 2 == 0 ? a : b);
  }
}

TEST(JournalTest, InternIsIdempotentAndNamesResolve) {
  Journal journal(4);
  const std::uint32_t a = journal.InternSession("alpha");
  const std::uint32_t b = journal.InternSession("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(journal.InternSession("alpha"), a);
  EXPECT_EQ(journal.SessionName(a), "alpha");
  EXPECT_EQ(journal.SessionName(b), "beta");
  EXPECT_EQ(journal.SessionName(999), "?");
}

// ------------------------------------------------------------------- json --

TEST(JournalTest, RenderJsonCarriesCountsAndEvents) {
  Journal journal(4);
  const std::uint32_t s = journal.InternSession("sess-1");
  DetectorEvent tracked;
  tracked.kind = DetectorEventKind::kSubspaceTracked;
  tracked.tick = 7;
  tracked.subspace = Subspace(0b1001);  // dims {0, 3}
  journal.Append(s, tracked);
  journal.Append(s, Event(DetectorEventKind::kDriftDetected, 9, 2));

  const std::string json = journal.RenderJson();
  EXPECT_NE(json.find("\"capacity\":4"), std::string::npos);
  EXPECT_NE(json.find("\"appended\":2"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(json.find("\"session\":\"sess-1\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"subspace_tracked\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"drift_detected\""), std::string::npos);
  // The tracked event carries its subspace; the drift event has none and
  // must omit the key entirely rather than render an empty one.
  EXPECT_NE(json.find("\"subspace\":"), std::string::npos);
  const std::size_t drift = json.find("\"kind\":\"drift_detected\"");
  EXPECT_EQ(json.find("\"subspace\":", drift), std::string::npos);
}

TEST(JournalTest, SinkAdapterTagsItsSession) {
  Journal journal(8);
  const std::uint32_t s = journal.InternSession("tagged");
  JournalSink sink(&journal, s);
  EXPECT_EQ(sink.session(), s);
  DetectorEventSink* as_sink = &sink;
  as_sink->OnDetectorEvent(Event(DetectorEventKind::kSstClear, 42, 3));
  const std::vector<JournalEntry> snap = journal.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].session, s);
  EXPECT_EQ(snap[0].event.kind, DetectorEventKind::kSstClear);
}

// ----------------------------------------------------------- differential --

/// The detector's full serialized state as bytes.
std::string CheckpointBytes(const SpotDetector& detector) {
  std::ostringstream out;
  EXPECT_TRUE(detector.SaveState(out));
  return out.str();
}

TEST(JournalTest, SinkChangesNeitherVerdictsNorCheckpointBytes) {
  // Same config, training and stream through two detectors — one silent,
  // one journaled. Events are pure reporting: canonical verdict bytes and
  // checkpoint bytes must match exactly, while the journaled run actually
  // produced events (the stream is long enough to trigger OS growth and
  // evolution under FastTestConfig).
  SpotConfig cfg = eval::FastTestConfig();
  cfg.os_update_every = 8;
  cfg.evolution_period = 150;
  const std::vector<std::vector<double>> training =
      bench::MakeTraining(6, 200, /*concept_seed=*/11, /*seed=*/21);
  const std::vector<LabeledPoint> labeled = bench::MakeEvalStream(
      6, 600, /*outlier_prob=*/0.05, /*concept_seed=*/11, /*seed=*/22);

  SpotDetector silent(cfg);
  SpotDetector journaled(cfg);
  Journal journal(4096);
  JournalSink sink(&journal, journal.InternSession("diff"));
  journaled.set_event_sink(&sink);

  ASSERT_TRUE(silent.Learn(training));
  ASSERT_TRUE(journaled.Learn(training));

  std::vector<SpotResult> a, b;
  std::vector<DataPoint> batch;
  for (const LabeledPoint& p : labeled) {
    batch.push_back(p.point);
    if (batch.size() == 64) {
      const std::vector<SpotResult> ra = silent.ProcessBatch(batch);
      const std::vector<SpotResult> rb = journaled.ProcessBatch(batch);
      a.insert(a.end(), ra.begin(), ra.end());
      b.insert(b.end(), rb.begin(), rb.end());
      batch.clear();
    }
  }

  EXPECT_GT(journal.appended(), 0u) << "stream produced no events at all";
  EXPECT_EQ(net::VerdictBytes(a), net::VerdictBytes(b));
  EXPECT_EQ(CheckpointBytes(silent), CheckpointBytes(journaled));

  // Detaching mid-life is safe and the detector goes silent again.
  const std::uint64_t seen = journal.appended();
  journaled.set_event_sink(nullptr);
  for (int i = 0; i < 3; ++i) {
    journaled.ProcessBatch(std::vector<DataPoint>(
        batch.begin(), batch.end()));
  }
  EXPECT_EQ(journal.appended(), seen);
}

TEST(JournalTest, ReloadedDetectorKeepsJournaling) {
  // LoadState rebinds the sink (restores themselves are silent): a
  // detector reloaded from a checkpoint must keep emitting afterwards.
  SpotConfig cfg = eval::FastTestConfig();
  cfg.os_update_every = 8;
  cfg.evolution_period = 150;
  const std::vector<std::vector<double>> training =
      bench::MakeTraining(6, 200, /*concept_seed=*/5, /*seed=*/6);
  const std::vector<LabeledPoint> labeled = bench::MakeEvalStream(
      6, 400, /*outlier_prob=*/0.05, /*concept_seed=*/5, /*seed=*/7);

  SpotDetector detector(cfg);
  Journal journal(4096);
  JournalSink sink(&journal, journal.InternSession("reload"));
  detector.set_event_sink(&sink);
  ASSERT_TRUE(detector.Learn(training));

  std::vector<DataPoint> points;
  for (const LabeledPoint& p : labeled) points.push_back(p.point);
  detector.ProcessBatch(points);
  const std::string bytes = CheckpointBytes(detector);
  const std::uint64_t before = journal.appended();

  std::istringstream in(bytes);
  ASSERT_TRUE(detector.LoadState(in));
  EXPECT_EQ(journal.appended(), before) << "a restore must emit nothing";
  detector.ProcessBatch(points);
  EXPECT_GT(journal.appended(), before)
      << "the reloaded detector stopped journaling";
}

}  // namespace
}  // namespace obs
}  // namespace spot
