// Unit tests of the full-space baselines: STORM, incremental LOF, and the
// largest-cluster detector — including the projected-outlier blindness that
// motivates SPOT.

#include <vector>

#include <gtest/gtest.h>

#include "baselines/incremental_lof.h"
#include "baselines/largest_cluster.h"
#include "baselines/storm.h"
#include "common/rng.h"
#include "stream/synthetic.h"

namespace spot {
namespace {

using baselines::IncrementalLofConfig;
using baselines::IncrementalLofDetector;
using baselines::LargestClusterConfig;
using baselines::LargestClusterDetector;
using baselines::StormConfig;
using baselines::StormDetector;

DataPoint Point(std::vector<double> values) {
  DataPoint p;
  p.values = std::move(values);
  return p;
}

// --------------------------------------------------------------- STORM ----

TEST(StormTest, FirstPointsAreOutliersUntilWindowFills) {
  StormConfig cfg;
  cfg.min_neighbors = 3;
  cfg.radius = 0.1;
  StormDetector det(cfg);
  // With an empty window, no neighbors exist.
  EXPECT_TRUE(det.Process(Point({0.5, 0.5})).is_outlier);
}

TEST(StormTest, DensePointBecomesInlier) {
  StormConfig cfg;
  cfg.min_neighbors = 3;
  cfg.radius = 0.1;
  StormDetector det(cfg);
  for (int i = 0; i < 10; ++i) det.Process(Point({0.5, 0.5}));
  EXPECT_FALSE(det.Process(Point({0.5, 0.5})).is_outlier);
}

TEST(StormTest, FarPointIsOutlier) {
  StormConfig cfg;
  cfg.min_neighbors = 3;
  cfg.radius = 0.1;
  StormDetector det(cfg);
  for (int i = 0; i < 20; ++i) det.Process(Point({0.5, 0.5}));
  const Detection d = det.Process(Point({0.9, 0.9}));
  EXPECT_TRUE(d.is_outlier);
  EXPECT_GT(d.score, 0.0);
  EXPECT_TRUE(d.outlying_subspaces.empty());  // full-space: no attribution
}

TEST(StormTest, WindowEvictsOldPoints) {
  StormConfig cfg;
  cfg.window = 5;
  cfg.min_neighbors = 3;
  cfg.radius = 0.1;
  StormDetector det(cfg);
  for (int i = 0; i < 10; ++i) det.Process(Point({0.2, 0.2}));
  EXPECT_EQ(det.window_size(), 5u);
  // Flood with far points; the old neighborhood ages out.
  for (int i = 0; i < 5; ++i) det.Process(Point({0.8, 0.8}));
  EXPECT_TRUE(det.Process(Point({0.2, 0.2})).is_outlier);
}

TEST(StormTest, BlindToProjectedOutliersInHighDim) {
  // A point anomalous in 2 of 30 dims stays within full-space radius of the
  // cluster; STORM cannot see it. This is the paper's core motivation.
  const int dims = 30;
  StormConfig cfg;
  cfg.min_neighbors = 3;
  cfg.radius = 1.0;  // calibrated to accept cluster members in 30-d
  StormDetector det(cfg);
  Rng rng(3);
  std::vector<double> center(dims, 0.5);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> p(dims);
    for (int d = 0; d < dims; ++d) {
      p[static_cast<std::size_t>(d)] =
          center[static_cast<std::size_t>(d)] + 0.05 * rng.NextGaussian();
    }
    det.Process(Point(std::move(p)));
  }
  // Projected outlier: 2 attributes displaced by 0.45 — squared distance
  // contribution 2 * 0.2 ≈ 0.4 < radius^2 = 1.
  std::vector<double> sneaky(dims, 0.5);
  sneaky[7] = 0.95;
  sneaky[21] = 0.05;
  EXPECT_FALSE(det.Process(Point(std::move(sneaky))).is_outlier);
}

// ---------------------------------------------------------------- iLOF ----

TEST(IncrementalLofTest, WarmupIsNotFlagged) {
  IncrementalLofConfig cfg;
  cfg.k = 5;
  IncrementalLofDetector det(cfg);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(det.Process(Point({0.1 * i, 0.5})).is_outlier);
  }
}

TEST(IncrementalLofTest, UniformDensityGivesLofNearOne) {
  IncrementalLofConfig cfg;
  cfg.k = 5;
  cfg.lof_threshold = 1.5;
  IncrementalLofDetector det(cfg);
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    det.Process(Point({rng.NextDouble(0.4, 0.6), rng.NextDouble(0.4, 0.6)}));
  }
  const Detection d =
      det.Process(Point({0.5, 0.5}));
  EXPECT_FALSE(d.is_outlier);
  EXPECT_NEAR(det.last_lof(), 1.0, 0.5);
}

TEST(IncrementalLofTest, IsolatedPointHasHighLof) {
  IncrementalLofConfig cfg;
  cfg.k = 5;
  cfg.lof_threshold = 1.8;
  IncrementalLofDetector det(cfg);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    det.Process(Point({0.5 + 0.02 * rng.NextGaussian(),
                       0.5 + 0.02 * rng.NextGaussian()}));
  }
  const Detection d = det.Process(Point({0.95, 0.95}));
  EXPECT_TRUE(d.is_outlier);
  EXPECT_GT(det.last_lof(), 1.8);
  EXPECT_GT(d.score, 1.8);  // score carries the LOF value
}

TEST(IncrementalLofTest, WindowBoundRespected) {
  IncrementalLofConfig cfg;
  cfg.window = 50;
  cfg.k = 3;
  IncrementalLofDetector det(cfg);
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    det.Process(Point({rng.NextDouble(), rng.NextDouble()}));
  }
  SUCCEED();  // bound enforced internally; this is a no-crash/perf test
}

// ------------------------------------------------------- LargestCluster ----

TEST(LargestClusterTest, DominantClusterMembersAreNormal) {
  LargestClusterConfig cfg;
  cfg.radius = 0.2;
  cfg.small_cluster_fraction = 0.05;
  LargestClusterDetector det(cfg);
  Rng rng(15);
  Detection last;
  for (int i = 0; i < 300; ++i) {
    last = det.Process(Point({0.5 + 0.02 * rng.NextGaussian(),
                              0.5 + 0.02 * rng.NextGaussian()}));
  }
  EXPECT_FALSE(last.is_outlier);
}

TEST(LargestClusterTest, NewFarPointIsAnomalous) {
  LargestClusterConfig cfg;
  cfg.radius = 0.2;
  LargestClusterDetector det(cfg);
  Rng rng(17);
  for (int i = 0; i < 300; ++i) {
    det.Process(Point({0.5 + 0.02 * rng.NextGaussian(),
                       0.5 + 0.02 * rng.NextGaussian()}));
  }
  const Detection d = det.Process(Point({0.95, 0.05}));
  EXPECT_TRUE(d.is_outlier);
  EXPECT_GT(d.score, 0.9);
}

TEST(LargestClusterTest, ClusterCountBounded) {
  LargestClusterConfig cfg;
  cfg.max_clusters = 10;
  cfg.radius = 0.01;  // every random point founds a cluster
  LargestClusterDetector det(cfg);
  Rng rng(19);
  for (int i = 0; i < 200; ++i) {
    det.Process(Point({rng.NextDouble(), rng.NextDouble()}));
  }
  EXPECT_LE(det.num_clusters(), 10u);
}

TEST(LargestClusterTest, CentroidTracksAbsorbedPoints) {
  LargestClusterConfig cfg;
  cfg.radius = 0.5;
  LargestClusterDetector det(cfg);
  for (int i = 0; i < 50; ++i) det.Process(Point({0.3, 0.3}));
  // All points identical: one cluster, its members normal.
  EXPECT_EQ(det.num_clusters(), 1u);
  EXPECT_FALSE(det.Process(Point({0.3, 0.3})).is_outlier);
}

// The shared failure mode: all three baselines miss a projected outlier
// hidden in a high-dimensional stream that SPOT's problem statement targets.
TEST(BaselineBlindnessTest, AllFullSpaceDetectorsMissProjectedOutlier) {
  const int dims = 30;
  Rng rng(21);

  StormConfig scfg;
  scfg.radius = 1.0;
  scfg.min_neighbors = 3;
  StormDetector storm(scfg);

  IncrementalLofConfig lcfg;
  lcfg.k = 8;
  lcfg.lof_threshold = 2.0;
  IncrementalLofDetector lof(lcfg);

  LargestClusterConfig ccfg;
  ccfg.radius = 1.0;
  ccfg.small_cluster_fraction = 0.02;
  LargestClusterDetector cluster(ccfg);

  for (int i = 0; i < 200; ++i) {
    std::vector<double> p(dims);
    for (int d = 0; d < dims; ++d) {
      p[static_cast<std::size_t>(d)] = 0.5 + 0.05 * rng.NextGaussian();
    }
    storm.Process(Point(p));
    lof.Process(Point(p));
    cluster.Process(Point(p));
  }
  std::vector<double> sneaky(dims, 0.5);
  sneaky[3] = 0.95;
  sneaky[17] = 0.05;
  EXPECT_FALSE(storm.Process(Point(sneaky)).is_outlier);
  EXPECT_FALSE(lof.Process(Point(sneaky)).is_outlier);
  EXPECT_FALSE(cluster.Process(Point(sneaky)).is_outlier);
}

// ----------------------------------------------- set_num_shards contract ----

/// set_num_shards on the single-threaded baselines is a documented no-op:
/// the StreamDetector contract forbids verdicts from depending on the shard
/// count, and the baselines have no parallel path, so the call must change
/// nothing — not window sizes, not scores, not labels. Each detector runs
/// twice over the same stream, one copy poked with shard requests mid-run.
TEST(BaselineShardContractTest, SetNumShardsIsAVerdictNoOp) {
  StormConfig scfg;
  scfg.min_neighbors = 3;
  scfg.radius = 0.2;
  IncrementalLofConfig lcfg;
  LargestClusterConfig ccfg;

  StormDetector storm_plain(scfg);
  StormDetector storm_poked(scfg);
  IncrementalLofDetector lof_plain(lcfg);
  IncrementalLofDetector lof_poked(lcfg);
  LargestClusterDetector cluster_plain(ccfg);
  LargestClusterDetector cluster_poked(ccfg);

  std::vector<StreamDetector*> plain{&storm_plain, &lof_plain,
                                     &cluster_plain};
  std::vector<StreamDetector*> poked{&storm_poked, &lof_poked,
                                     &cluster_poked};

  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    if (i % 50 == 0) {
      // Shard requests at varying counts, mid-stream: all must be inert.
      for (StreamDetector* det : poked) {
        det->set_num_shards(static_cast<std::size_t>(1 + i % 7));
      }
    }
    std::vector<double> p(4);
    for (double& v : p) v = 0.5 + 0.1 * rng.NextGaussian();
    if (i % 37 == 0) p[2] = 0.95;  // occasional spike
    for (std::size_t d = 0; d < plain.size(); ++d) {
      const Detection a = plain[d]->Process(Point(p));
      const Detection b = poked[d]->Process(Point(p));
      EXPECT_EQ(a.is_outlier, b.is_outlier)
          << plain[d]->name() << " point " << i;
      EXPECT_EQ(a.score, b.score) << plain[d]->name() << " point " << i;
    }
  }
  EXPECT_EQ(storm_plain.window_size(), storm_poked.window_size());
  EXPECT_EQ(cluster_plain.num_clusters(), cluster_poked.num_clusters());
}

}  // namespace
}  // namespace spot
