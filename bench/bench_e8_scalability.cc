// E8 — Scalability over stream length (figure).
//
// Paper claim: one-pass processing with bounded state — "only the latest
// snapshot needs to be kept". We stream up to 200k points and report
// throughput and the populated-cell count (the memory proxy) at
// checkpoints. Expected shape: throughput flat, populated cells plateau.

#include "bench/bench_util.h"
#include "common/timer.h"
#include "eval/table.h"
#include "stream/synthetic.h"

namespace spot {
namespace {

void Run(bench::JsonReporter& reporter) {
  SpotConfig cfg = bench::ExperimentConfig(31);
  cfg.compaction_period = 2048;
  SpotDetector det(cfg);
  det.Learn(bench::MakeTraining(16, 1000, /*concept=*/800));

  stream::SyntheticConfig scfg;
  scfg.dimension = 16;
  scfg.outlier_probability = 0.01;
  scfg.concept_seed = 800;
  scfg.seed = 801;
  stream::GaussianStream gen(scfg);

  eval::Table table({"points", "pts/s (segment)", "populated cells",
                     "outliers flagged"});
  const std::size_t kBatch = 1000;  // ProcessBatch chunk (the batch path)
  const std::size_t kCheckpoint = 25000;
  const std::size_t kTotal = 200000;
  std::vector<DataPoint> chunk;
  chunk.reserve(kBatch);
  Timer timer;
  for (std::size_t fed = 0; fed < kTotal;) {
    chunk.clear();
    while (chunk.size() < kBatch) chunk.push_back(gen.Next()->point);
    det.ProcessBatch(chunk);
    fed += chunk.size();
    if (fed % kCheckpoint == 0) {
      const double seg_rate =
          static_cast<double>(kCheckpoint) / timer.ElapsedSeconds();
      timer.Reset();
      table.AddRow({eval::Table::Int(fed), eval::Table::Num(seg_rate, 0),
                    eval::Table::Int(det.synapses().TotalPopulatedCells()),
                    eval::Table::Int(det.stats().outliers_detected)});
    }
  }
  reporter.Print(table, "E8: long-stream scalability (phi=16, one pass)");
}

}  // namespace
}  // namespace spot

int main(int argc, char** argv) {
  spot::bench::JsonReporter reporter(argc, argv, "e8");
  spot::Run(reporter);
  return 0;
}
