// E3 — Effectiveness vs full-space baselines (table).
//
// Paper claim (Section III): "SPOT outperforms the existing method in terms
// of efficiency and effectiveness". Planted projected outliers at phi=20;
// SPOT vs STORM, incremental LOF and the largest-cluster detector on
// identical data. Expected shape: SPOT leads on recall and F1 because the
// outliers are visible only in 1-2 dimensional projections.

#include "baselines/incremental_lof.h"
#include "baselines/largest_cluster.h"
#include "baselines/storm.h"
#include "bench/bench_util.h"
#include "eval/harness.h"
#include "eval/table.h"

namespace spot {
namespace {

void Run(bench::JsonReporter& reporter) {
  const int kDims = 20;
  const auto training = bench::MakeTraining(kDims, 800, /*concept=*/300);
  const auto points = bench::MakeEvalStream(kDims, 6000, 0.02, /*concept=*/300);

  SpotDetector det(bench::ExperimentConfig(17));
  det.Learn(training);
  SpotStreamAdapter spot(&det);

  baselines::StormConfig storm_cfg;
  storm_cfg.window = 1000;
  storm_cfg.radius = 0.7;
  storm_cfg.min_neighbors = 5;
  baselines::StormDetector storm(storm_cfg);

  baselines::IncrementalLofConfig lof_cfg;
  lof_cfg.window = 400;
  lof_cfg.k = 10;
  lof_cfg.lof_threshold = 1.8;
  baselines::IncrementalLofDetector lof(lof_cfg);

  baselines::LargestClusterConfig lc_cfg;
  lc_cfg.radius = 0.7;
  lc_cfg.small_cluster_fraction = 0.02;
  baselines::LargestClusterDetector largest(lc_cfg);

  const auto results =
      eval::CompareDetectors({&spot, &storm, &lof, &largest}, points);

  eval::Table table(
      {"detector", "precision", "recall", "F1", "FPR", "subspace-J", "pts/s"});
  for (const auto& r : results) {
    table.AddRow({r.detector_name, eval::Table::Num(r.confusion.Precision()),
                  eval::Table::Num(r.confusion.Recall()),
                  eval::Table::Num(r.confusion.F1()),
                  eval::Table::Num(r.confusion.FalsePositiveRate()),
                  eval::Table::Num(r.mean_subspace_jaccard),
                  eval::Table::Num(r.throughput, 0)});
  }
  reporter.Print(table, "E3: effectiveness on planted projected outliers (phi=20)");
}

}  // namespace
}  // namespace spot

int main(int argc, char** argv) {
  spot::bench::JsonReporter reporter(argc, argv, "e3");
  spot::Run(reporter);
  return 0;
}
