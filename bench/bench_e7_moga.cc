// E7 — MOGA vs exhaustive subspace search (table).
//
// Paper claim (Section I): exhaustive search of the subspace lattice "is
// rather computationally demanding and totally infeasible when the
// dimensionality of data is high"; MOGA makes the search tractable. For
// dimensionalities where exhaustive search is still feasible we report
// whether MOGA finds the single sparsest subspace, how close its top-8's
// mean sparsity comes to the true optimum (quality ratio), and how many
// objective evaluations each method spends. Expected shape: top-1 always
// found and quality ratio near 1 with a sub-lattice evaluation budget whose
// advantage grows with phi.

#include "bench/bench_util.h"
#include "common/math_util.h"
#include "eval/table.h"
#include "grid/partition.h"
#include "moga/moga_search.h"
#include "moga/objectives.h"
#include "subspace/subspace.h"

namespace spot {
namespace {

void Run(bench::JsonReporter& reporter) {
  eval::Table table({"phi", "lattice size", "exhaustive evals", "MOGA evals",
                     "best-8 mean (exact)", "best-8 mean (MOGA)",
                     "top-1 hit"});
  const int kMaxDim = 3;
  const std::size_t kTopK = 8;

  for (int dims : {8, 10, 12, 14, 16}) {
    // Training batch with one planted projected outlier as the MOGA target.
    auto batch = bench::MakeTraining(dims, 500, /*concept=*/700 + dims);
    std::vector<double> outlier = batch.front();
    outlier[1] = 0.98;
    outlier[4] = 0.02;
    batch.push_back(outlier);
    const Partition part(dims, 5, 0.0, 1.0);

    // Exhaustive reference.
    BatchSparsityObjectives exact_obj(&part, &batch, {batch.size() - 1});
    const auto truth = ExhaustiveTopSparse(&exact_obj, dims, kMaxDim, kTopK);
    const std::size_t exact_evals = exact_obj.evaluation_count();

    // MOGA with a fixed budget.
    BatchSparsityObjectives moga_obj(&part, &batch, {batch.size() - 1});
    Nsga2Config cfg;
    cfg.num_dims = dims;
    cfg.max_dimension = kMaxDim;
    cfg.population_size = 32;
    cfg.generations = 20;
    cfg.seed = 29;
    MogaSearch search(cfg, &moga_obj);
    const auto found = search.FindTopSparse(kTopK);

    // Mean sparsity score (minimized) of the true top-8 vs MOGA's top-8:
    // close values mean MOGA's set is as sparse as the optimum. Exact
    // set-recall is meaningless here — many near-tied subspaces share the
    // optimum's score.
    auto mean_score = [](const std::vector<ScoredSubspace>& v) {
      double s = 0.0;
      for (const auto& ss : v) s += ss.score;
      return v.empty() ? 0.0 : s / static_cast<double>(v.size());
    };
    const bool top1 =
        !found.empty() && found.front().subspace == truth.front().subspace;

    table.AddRow(
        {eval::Table::Int(static_cast<std::uint64_t>(dims)),
         eval::Table::Int(LatticeSize(dims, kMaxDim)),
         eval::Table::Int(exact_evals),
         eval::Table::Int(moga_obj.evaluation_count()),
         eval::Table::Num(mean_score(truth), 4),
         eval::Table::Num(mean_score(found), 4),
         top1 ? "yes" : "no"});
  }
  reporter.Print(table, "E7: MOGA vs exhaustive lattice search (max dim 3)");
}

}  // namespace
}  // namespace spot

int main(int argc, char** argv) {
  spot::bench::JsonReporter reporter(argc, argv, "e7");
  spot::Run(reporter);
  return 0;
}
