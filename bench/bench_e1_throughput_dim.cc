// E1 — Efficiency vs dimensionality (figure).
//
// Paper claim: SPOT handles fast high-dimensional streams because the
// per-point cost is governed by the SST size, not by the raw attribute
// count. We sweep phi with the SST held at a fixed size and report
// detection-stage throughput. Expected shape: roughly flat (mild decline
// from the O(phi) base-grid update), versus STORM whose full-space distance
// cost grows linearly in phi on top of the window scan.

#include <cstdio>

#include "baselines/storm.h"
#include "bench/bench_util.h"
#include "eval/harness.h"
#include "eval/table.h"
#include "stream/replay.h"

namespace spot {
namespace {

void Run(bench::JsonReporter& reporter) {
  eval::Table table({"phi", "SST size", "SPOT pts/s", "STORM pts/s"});
  const int kStreamLen = 6000;

  for (int dims : {10, 20, 30, 40, 50}) {
    SpotConfig cfg = bench::ExperimentConfig(11);
    cfg.fs_max_dimension = 2;
    cfg.fs_cap = 50;  // SST frozen at exactly 50 subspaces for every phi
    cfg.unsupervised.top_subspaces_per_run = 0;  // CS off
    cfg.os_update_every = 0;                     // OS growth off
    SpotDetector det(cfg);
    det.Learn(bench::MakeTraining(dims, 600, /*concept=*/100 + dims));
    SpotStreamAdapter spot(&det);

    baselines::StormConfig storm_cfg;
    storm_cfg.window = 1000;
    storm_cfg.radius = 0.5;
    baselines::StormDetector storm(storm_cfg);

    const auto points =
        bench::MakeEvalStream(dims, kStreamLen, 0.01, /*concept=*/100 + dims);
    const auto results = eval::CompareDetectors({&spot, &storm}, points);

    table.AddRow({eval::Table::Int(static_cast<std::uint64_t>(dims)),
                  eval::Table::Int(det.TrackedSubspaces()),
                  eval::Table::Num(results[0].throughput, 0),
                  eval::Table::Num(results[1].throughput, 0)});
  }
  reporter.Print(table, "E1: throughput vs dimensionality (fixed SST)");
}

}  // namespace
}  // namespace spot

int main(int argc, char** argv) {
  spot::bench::JsonReporter reporter(argc, argv, "e1");
  spot::Run(reporter);
  return 0;
}
