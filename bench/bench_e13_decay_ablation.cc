// E13 — Decay ablation (table): the (omega, epsilon) time model vs a
// landmark window (no decay) on a drifting stream.
//
// Companion to E5: E5 showed that the decaying summaries themselves provide
// most of SPOT's drift robustness. Here the mechanism is isolated — the
// same detector with decay replaced by an ever-growing landmark window.
// Expected shape: comparable F1 on the first (stationary) segment, then a
// widening gap as stale concept mass pins the landmark variant's summaries;
// memory (populated cells) also grows without decay.

#include <algorithm>

#include "bench/bench_util.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "stream/drift.h"

namespace spot {
namespace {

struct SegmentRow {
  std::vector<double> f1;
  std::size_t cells_end = 0;
};

SegmentRow RunVariant(bool decay, const std::vector<LabeledPoint>& pts,
                      const std::vector<std::vector<double>>& training) {
  SpotConfig cfg = bench::ExperimentConfig(53);
  if (!decay) {
    cfg.use_decay = false;       // landmark summaries: nothing ever expires
    cfg.prune_threshold = 0.0;   // and nothing is ever reclaimed
  }
  SpotDetector det(cfg);
  det.Learn(training);

  SegmentRow row;
  const std::size_t segment = 3000;
  eval::Confusion conf;
  std::vector<DataPoint> chunk;
  chunk.reserve(segment);
  for (std::size_t start = 0; start < pts.size(); start += segment) {
    const std::size_t end = std::min(start + segment, pts.size());
    chunk.clear();
    for (std::size_t i = start; i < end; ++i) chunk.push_back(pts[i].point);
    const std::vector<SpotResult> verdicts = det.ProcessBatch(chunk);
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      conf.Add(verdicts[i].is_outlier, pts[start + i].is_outlier);
    }
    row.f1.push_back(conf.F1());
    conf = eval::Confusion();
  }
  row.cells_end = det.synapses().TotalPopulatedCells();
  return row;
}

void Run(bench::JsonReporter& reporter) {
  stream::DriftConfig dcfg;
  dcfg.base.dimension = 12;
  dcfg.base.outlier_probability = 0.02;
  dcfg.base.seed = 1300;
  dcfg.kind = stream::DriftKind::kAbrupt;
  dcfg.period = 6000;
  stream::DriftingStream gen(dcfg);

  const auto training = ValuesOf(Take(gen, 1200));
  const auto points = Take(gen, 18000);

  const SegmentRow decayed = RunVariant(true, points, training);
  const SegmentRow landmark = RunVariant(false, points, training);

  eval::Table table({"segment", "F1 (omega,eps decay)", "F1 (landmark)"});
  for (std::size_t i = 0; i < decayed.f1.size(); ++i) {
    table.AddRow({eval::Table::Int(i + 1), eval::Table::Num(decayed.f1[i]),
                  eval::Table::Num(landmark.f1[i])});
  }
  table.AddRow({"cells at end", eval::Table::Int(decayed.cells_end),
                eval::Table::Int(landmark.cells_end)});
  reporter.Print(table, 
      "E13: (omega,epsilon) decay vs landmark window on an abruptly "
      "drifting stream (concept switch every 2 segments)");
}

}  // namespace
}  // namespace spot

int main(int argc, char** argv) {
  spot::bench::JsonReporter reporter(argc, argv, "e13");
  spot::Run(reporter);
  return 0;
}
