// E5 — Self-evolution under concept drift (figure).
//
// Paper claim (Section II-C2): online self-evolution of CS and drift-driven
// relearning let SPOT "cope with dynamics of data streams". We run SPOT with
// and without adaptation over a stream whose concept is replaced abruptly,
// and report F1 per stream segment. Expected shape: both start similar; the
// adaptive run recovers after each switch, the frozen run degrades.

#include <algorithm>

#include "bench/bench_util.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "stream/drift.h"

namespace spot {
namespace {

struct SegmentScores {
  std::vector<double> f1;
};

SegmentScores RunVariant(bool adaptive, const std::vector<LabeledPoint>& pts,
                         const std::vector<std::vector<double>>& training) {
  SpotConfig cfg = bench::ExperimentConfig(23);
  cfg.evolution_period = adaptive ? 1000 : 0;
  cfg.drift_detection = adaptive;
  cfg.relearn_on_drift = adaptive;
  cfg.drift_lambda = 6.0;
  cfg.os_update_every = adaptive ? 16 : 0;
  SpotDetector det(cfg);
  det.Learn(training);

  SegmentScores out;
  const std::size_t segment = 2500;
  eval::Confusion conf;
  std::vector<DataPoint> chunk;
  chunk.reserve(segment);
  for (std::size_t start = 0; start < pts.size(); start += segment) {
    const std::size_t end = std::min(start + segment, pts.size());
    chunk.clear();
    for (std::size_t i = start; i < end; ++i) chunk.push_back(pts[i].point);
    const std::vector<SpotResult> verdicts = det.ProcessBatch(chunk);
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      conf.Add(verdicts[i].is_outlier, pts[start + i].is_outlier);
    }
    out.f1.push_back(conf.F1());
    conf = eval::Confusion();
  }
  return out;
}

void Run(bench::JsonReporter& reporter) {
  stream::DriftConfig dcfg;
  dcfg.base.dimension = 12;
  dcfg.base.outlier_probability = 0.02;
  dcfg.base.seed = 600;
  dcfg.kind = stream::DriftKind::kAbrupt;
  dcfg.period = 5000;
  stream::DriftingStream gen(dcfg);

  const auto training = ValuesOf(Take(gen, 1000));
  const auto points = Take(gen, 15000);

  const SegmentScores adaptive = RunVariant(true, points, training);
  const SegmentScores frozen = RunVariant(false, points, training);

  eval::Table table({"segment", "F1 (adaptive)", "F1 (frozen)"});
  for (std::size_t i = 0; i < adaptive.f1.size(); ++i) {
    table.AddRow({eval::Table::Int(i + 1),
                  eval::Table::Num(adaptive.f1[i]),
                  eval::Table::Num(frozen.f1[i])});
  }
  reporter.Print(table, 
      "E5: self-evolution + drift relearning on an abruptly drifting stream "
      "(concept switch every 2 segments)");
}

}  // namespace
}  // namespace spot

int main(int argc, char** argv) {
  spot::bench::JsonReporter reporter(argc, argv, "e5");
  spot::Run(reporter);
  return 0;
}
