// E9 — Network-intrusion case study (table).
//
// The paper's demo plan evaluates SPOT on real-life streams; the authors'
// application domain is KDD-Cup'99-style network traffic. We use the
// KddSimulator substitute (DESIGN.md Section 1) and report detection rate
// per attack category plus the overall false-positive rate, for SPOT and
// the full-space baselines. Expected shape: SPOT detects every category
// (each is anomalous in a low-dim subspace); full-space methods miss the
// subtler categories (r2l, u2r) whose full-space displacement is tiny.

#include <array>

#include "baselines/incremental_lof.h"
#include "baselines/storm.h"
#include "bench/bench_util.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "stream/kdd_sim.h"
#include "stream/replay.h"

namespace spot {
namespace {

struct CategoryScore {
  std::array<int, 5> detected = {0, 0, 0, 0, 0};
  std::array<int, 5> total = {0, 0, 0, 0, 0};
  eval::Confusion confusion;
};

std::string Rate(const CategoryScore& s, stream::AttackCategory c) {
  const std::size_t i = static_cast<std::size_t>(c);
  if (s.total[i] == 0) return "n/a";
  return eval::Table::Num(
      static_cast<double>(s.detected[i]) / static_cast<double>(s.total[i]), 2);
}

void Run(bench::JsonReporter& reporter) {
  stream::KddConfig train_cfg;
  train_cfg.attack_fraction = 0.0;
  train_cfg.seed = 900;
  stream::KddSimulator train_sim(train_cfg);
  SpotConfig cfg = bench::ExperimentConfig(37);
  cfg.fs_max_dimension = 1;  // 38 attributes: singletons + learned CS/OS
  cfg.fs_cap = 256;
  SpotDetector det(cfg);
  det.Learn(ValuesOf(Take(train_sim, 2000)));
  SpotStreamAdapter spot(&det);

  baselines::StormConfig storm_cfg;
  storm_cfg.window = 1000;
  storm_cfg.radius = 0.6;
  storm_cfg.min_neighbors = 5;
  baselines::StormDetector storm(storm_cfg);

  baselines::IncrementalLofConfig lof_cfg;
  lof_cfg.window = 400;
  lof_cfg.k = 10;
  lof_cfg.lof_threshold = 1.8;
  baselines::IncrementalLofDetector lof(lof_cfg);

  stream::KddConfig eval_cfg;
  eval_cfg.attack_fraction = 0.01;
  eval_cfg.seed = 901;
  stream::KddSimulator eval_sim(eval_cfg);
  const auto points = Take(eval_sim, 12000);

  eval::Table table({"detector", "dos", "probe", "r2l", "u2r", "FPR", "F1"});
  std::vector<StreamDetector*> detectors = {&spot, &storm, &lof};
  for (StreamDetector* d : detectors) {
    stream::ReplaySource replay(points);
    CategoryScore s;
    for (std::size_t i = 0; i < points.size(); ++i) {
      // Drive via the replayed copy so all detectors see identical data.
      const auto lp = replay.Next();
      const Detection verdict = d->Process(lp->point);
      s.confusion.Add(verdict.is_outlier, lp->is_outlier);
      const std::size_t c = static_cast<std::size_t>(lp->category);
      ++s.total[c];
      if (verdict.is_outlier) ++s.detected[c];
    }
    table.AddRow({d->name(), Rate(s, stream::AttackCategory::kDos),
                  Rate(s, stream::AttackCategory::kProbe),
                  Rate(s, stream::AttackCategory::kR2l),
                  Rate(s, stream::AttackCategory::kU2r),
                  eval::Table::Num(s.confusion.FalsePositiveRate()),
                  eval::Table::Num(s.confusion.F1())});
  }
  reporter.Print(table, 
      "E9: intrusion-detection case study (detection rate per category, "
      "1% attacks)");
}

}  // namespace
}  // namespace spot

int main(int argc, char** argv) {
  spot::bench::JsonReporter reporter(argc, argv, "e9");
  spot::Run(reporter);
  return 0;
}
