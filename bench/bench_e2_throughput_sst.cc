// E2 — Efficiency vs SST size (figure).
//
// Paper claim: the detection-stage cost is one PCS update + check per SST
// subspace, so throughput should fall roughly as 1/|SST|. We hold phi = 20
// and sweep the FS cap.

#include "bench/bench_util.h"
#include "eval/harness.h"
#include "eval/table.h"
#include "stream/replay.h"

namespace spot {
namespace {

void Run(bench::JsonReporter& reporter) {
  eval::Table table({"SST size", "pts/s", "us/pt"});
  const int kDims = 20;
  const int kStreamLen = 6000;
  const auto points = bench::MakeEvalStream(kDims, kStreamLen, 0.01, /*concept=*/40);
  const auto training = bench::MakeTraining(kDims, 600, /*concept=*/40);

  for (std::size_t cap : {8u, 16u, 32u, 64u, 128u, 256u}) {
    SpotConfig cfg = bench::ExperimentConfig(13);
    cfg.fs_max_dimension = 3;
    cfg.fs_cap = cap;
    cfg.unsupervised.top_subspaces_per_run = 0;  // CS off: isolate FS cost
    cfg.os_update_every = 0;                     // OS growth off
    SpotDetector det(cfg);
    det.Learn(training);
    SpotStreamAdapter spot(&det);

    stream::ReplaySource replay(points);
    const eval::RunResult r =
        eval::RunDetection(spot, replay, points.size());
    table.AddRow({eval::Table::Int(det.TrackedSubspaces()),
                  eval::Table::Num(r.throughput, 0),
                  eval::Table::Num(1e6 / r.throughput, 1)});
  }
  reporter.Print(table, "E2: throughput vs SST size (phi=20)");
}

}  // namespace
}  // namespace spot

int main(int argc, char** argv) {
  spot::bench::JsonReporter reporter(argc, argv, "e2");
  spot::Run(reporter);
  return 0;
}
