// E4 — Effectiveness vs dimensionality (figure).
//
// Paper claim (Section I): as dimensionality grows, "data tend to be
// equally distant from each other", so full-space detectors lose contrast
// while SPOT, checking low-dimensional projections, stays effective.
// We sweep phi and report F1 per detector. Expected shape: the baselines'
// F1 decays toward 0 with phi; SPOT's stays roughly level.

#include <cmath>

#include "baselines/incremental_lof.h"
#include "baselines/storm.h"
#include "bench/bench_util.h"
#include "eval/harness.h"
#include "eval/table.h"

namespace spot {
namespace {

void Run(bench::JsonReporter& reporter) {
  eval::Table table({"phi", "SPOT F1", "STORM F1", "iLOF F1"});
  for (int dims : {5, 10, 20, 30, 40, 50}) {
    const auto training = bench::MakeTraining(dims, 800, /*concept=*/400 + dims);
    const auto points =
        bench::MakeEvalStream(dims, 5000, 0.02, /*concept=*/400 + dims);

    SpotDetector det(bench::ExperimentConfig(19));
    det.Learn(training);
    SpotStreamAdapter spot(&det);

    // Baseline radii scale with sqrt(phi) so each stays calibrated to the
    // cluster spread of its own dimensionality (fairest-possible setting).
    baselines::StormConfig storm_cfg;
    storm_cfg.window = 1000;
    storm_cfg.radius = 0.16 * std::sqrt(static_cast<double>(dims));
    storm_cfg.min_neighbors = 5;
    baselines::StormDetector storm(storm_cfg);

    baselines::IncrementalLofConfig lof_cfg;
    lof_cfg.window = 400;
    lof_cfg.k = 10;
    lof_cfg.lof_threshold = 1.8;
    baselines::IncrementalLofDetector lof(lof_cfg);

    const auto results =
        eval::CompareDetectors({&spot, &storm, &lof}, points);
    table.AddRow({eval::Table::Int(static_cast<std::uint64_t>(dims)),
                  eval::Table::Num(results[0].confusion.F1()),
                  eval::Table::Num(results[1].confusion.F1()),
                  eval::Table::Num(results[2].confusion.F1())});
  }
  reporter.Print(table, "E4: F1 vs dimensionality (projected outliers)");
}

}  // namespace
}  // namespace spot

int main(int argc, char** argv) {
  spot::bench::JsonReporter reporter(argc, argv, "e4");
  spot::Run(reporter);
  return 0;
}
