// E10 — Threshold sensitivity / ROC (figure).
//
// The demo plan promises evaluation "under a wide spectrum of settings".
// Detectors emit anomaly scores; sweeping the decision threshold over the
// scores yields the ROC curve. We print sampled operating points and the
// AUC per detector. Expected shape: SPOT's AUC well above the full-space
// baselines' on projected-outlier workloads.

#include <algorithm>

#include "baselines/incremental_lof.h"
#include "baselines/storm.h"
#include "bench/bench_util.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace spot {
namespace {

void Run(bench::JsonReporter& reporter) {
  const int kDims = 20;
  const auto training = bench::MakeTraining(kDims, 1000, /*concept=*/1000);
  const auto points = bench::MakeEvalStream(kDims, 6000, 0.02,
                                            /*concept=*/1000);

  SpotDetector det(bench::ExperimentConfig(41));
  det.Learn(training);
  SpotStreamAdapter spot(&det);

  baselines::StormConfig storm_cfg;
  storm_cfg.window = 1000;
  storm_cfg.radius = 0.7;
  baselines::StormDetector storm(storm_cfg);

  baselines::IncrementalLofConfig lof_cfg;
  lof_cfg.window = 400;
  lof_cfg.k = 10;
  baselines::IncrementalLofDetector lof(lof_cfg);

  eval::RunOptions opts;
  opts.collect_scores = true;
  const auto results =
      eval::CompareDetectors({&spot, &storm, &lof}, points, opts);

  eval::Table auc_table({"detector", "ROC AUC"});
  for (const auto& r : results) {
    auc_table.AddRow({r.detector_name, eval::Table::Num(r.auc)});
  }
  reporter.Print(auc_table, "E10a: ROC AUC per detector (phi=20, projected outliers)");

  // Sampled SPOT ROC operating points (the "figure" series).
  const auto curve = eval::RocCurve(results[0].scores, results[0].labels);
  eval::Table roc_table({"threshold", "TPR", "FPR"});
  const std::size_t step = std::max<std::size_t>(1, curve.size() / 12);
  for (std::size_t i = 0; i < curve.size(); i += step) {
    roc_table.AddRow({eval::Table::Num(curve[i].threshold),
                      eval::Table::Num(curve[i].tpr),
                      eval::Table::Num(curve[i].fpr)});
  }
  reporter.Print(roc_table, "E10b: SPOT ROC curve (sampled operating points)");
}

}  // namespace
}  // namespace spot

int main(int argc, char** argv) {
  spot::bench::JsonReporter reporter(argc, argv, "e10");
  spot::Run(reporter);
  return 0;
}
