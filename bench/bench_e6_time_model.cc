// E6 — (omega, epsilon) time-model fidelity (table).
//
// Paper claim (Section II-A): the model approximates a conventional sliding
// window of size omega with approximation factor epsilon, without storing
// per-point data. Decayed summaries approximate the window's *distribution*
// (total decayed mass is ~omega/ln(1/epsilon), not omega), so we compare
// each cell's share of the decayed mass against its share of an exact
// sliding window over the same drifting stream, and report the share error
// plus the memory footprint (values stored). Expected shape: share errors
// of a few percentage points throughout; the error grows mildly as epsilon
// tightens, because stronger decay weights the newest points more than the
// hard window's uniform weighting. Memory is O(populated cells) for the
// decayed summaries vs O(omega) raw values for the exact window.

#include <cmath>
#include <deque>

#include "common/rng.h"
#include "bench/bench_util.h"
#include "eval/table.h"
#include "grid/base_grid.h"
#include "eval/metrics.h"

namespace spot {
namespace {

void Run(bench::JsonReporter& reporter) {
  const std::uint64_t kOmega = 1000;
  const int kCells = 10;
  const std::size_t kStream = 20000;

  eval::Table table({"epsilon", "alpha", "mean share err (pp)",
                     "p95 share err (pp)", "decayed values stored",
                     "exact values stored"});

  for (double epsilon : {0.1, 0.01, 0.001}) {
    const DecayModel model(kOmega, epsilon);
    BaseGrid grid(Partition(1, kCells, 0.0, 1.0), model, 1e-4, 0);
    std::deque<double> window;  // exact sliding window of raw values
    Rng rng(77);

    std::vector<double> rel_errors;
    for (std::size_t t = 0; t < kStream; ++t) {
      // Slowly moving mixture so cell occupancy changes over time.
      const double phase =
          0.25 + 0.5 * (static_cast<double>(t) / kStream);
      const double v = rng.NextBernoulli(0.7)
                           ? std::clamp(phase + 0.05 * rng.NextGaussian(),
                                        0.0, 0.999)
                           : rng.NextDouble();
      grid.Add({v}, t);
      window.push_back(v);
      if (window.size() > kOmega) window.pop_front();

      if (t > kOmega && t % 500 == 0) {
        // Compare each cell's share of the decayed mass against its share
        // of the exact window.
        std::vector<double> exact(kCells, 0.0);
        for (double w : window) {
          exact[grid.partition().IntervalIndex(0, w)] += 1.0;
        }
        const double total = grid.TotalWeight();
        for (int c = 0; c < kCells; ++c) {
          const Bcs* bcs = grid.FindByCoords({static_cast<std::uint32_t>(c)});
          const double decayed_share =
              total > 0.0 ? (bcs ? bcs->CountAt(t, model) : 0.0) / total : 0.0;
          const double exact_share =
              exact[c] / static_cast<double>(window.size());
          rel_errors.push_back(std::fabs(decayed_share - exact_share));
        }
      }
    }

    double sum = 0.0;
    for (double e : rel_errors) sum += e;
    const double mean =
        rel_errors.empty() ? 0.0 : sum / static_cast<double>(rel_errors.size());
    std::sort(rel_errors.begin(), rel_errors.end());
    const double p95 =
        rel_errors.empty()
            ? 0.0
            : rel_errors[static_cast<std::size_t>(0.95 *
                                                   (rel_errors.size() - 1))];

    // Memory proxy: decayed model stores (1 count + 2 sums) per populated
    // cell; the exact window stores omega raw values.
    const std::uint64_t decayed_values = grid.PopulatedCells() * 3;
    table.AddRow({eval::Table::Num(epsilon, 3),
                  eval::Table::Num(model.alpha(), 6),
                  eval::Table::Num(mean * 100.0, 3),
                  eval::Table::Num(p95 * 100.0, 3),
                  eval::Table::Int(decayed_values),
                  eval::Table::Int(kOmega)});
  }
  reporter.Print(table, "E6: (omega,epsilon)-model vs exact sliding window (omega=1000)");
}

}  // namespace
}  // namespace spot

int main(int argc, char** argv) {
  spot::bench::JsonReporter reporter(argc, argv, "e6");
  spot::Run(reporter);
  return 0;
}
