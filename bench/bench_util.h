#ifndef SPOT_BENCH_BENCH_UTIL_H_
#define SPOT_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment binaries (bench/bench_e*.cc). Each
// binary reproduces one table/figure from DESIGN.md Section 6 and prints it
// via eval::Table so EXPERIMENTS.md can quote the rows verbatim.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/detector.h"
#include "core/spot_config.h"
#include "eval/presets.h"
#include "eval/table.h"
#include "stream/data_point.h"
#include "stream/synthetic.h"

namespace spot {
namespace bench {

/// Machine-readable result emission for the experiment binaries.
///
/// Every bench accepts `--json out.json` (or `--json=out.json`); when
/// given, the tables it prints are ALSO written as one JSON document
///
///     {"schema": "spot-bench-v1", "bench": "<binary name>",
///      "tables": [{"title": ..., "headers": [...], "rows": [[...]]}],
///      "counters": {"instr/pt": 512.3, ...}}        // when any were set
///
/// so the perf trajectory can be tracked across PRs by diffing artifacts
/// instead of scraping stdout. Cells are emitted as the exact strings the
/// ASCII table shows (they are already formatted numbers), keeping the two
/// outputs trivially consistent.
///
/// Usage: construct from (argc, argv), route every table through
/// Print(table, title) instead of table.Print(title), and let the
/// destructor write the file.
class JsonReporter {
 public:
  JsonReporter(int argc, char** argv, const std::string& bench_name)
      : bench_name_(bench_name) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        path_ = argv[++i];
      } else if (arg.rfind("--json=", 0) == 0) {
        path_ = arg.substr(sizeof("--json=") - 1);
      }
    }
  }

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  ~JsonReporter() {
    if (path_.empty()) return;
    std::ofstream out(path_, std::ios::trunc);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot write JSON results to %s\n",
                   path_.c_str());
      return;
    }
    out << json_doc();
  }

  /// Prints the table to stdout (exactly as Table::Print) and records it
  /// for the JSON document.
  void Print(const eval::Table& table, const std::string& title) {
    table.Print(title);
    titles_.push_back(title);
    tables_.push_back(table);
  }

  /// Records one scalar into the document's `counters` block (hardware
  /// profiling rates like instructions-per-point ride here — named
  /// scalars, not table cells, so downstream tooling reads them without
  /// knowing any table's shape). Last write per name wins.
  void SetCounter(const std::string& name, double value) {
    for (auto& [n, v] : counters_) {
      if (n == name) {
        v = value;
        return;
      }
    }
    counters_.emplace_back(name, value);
  }

  /// The assembled JSON document (exposed for tests; the destructor writes
  /// it to the `--json` path).
  std::string json_doc() const {
    std::string doc = "{\"schema\": \"spot-bench-v1\", \"bench\": " +
                      Quote(bench_name_) + ", \"tables\": [";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      if (t > 0) doc += ", ";
      doc += "{\"title\": " + Quote(titles_[t]) + ", \"headers\": ";
      doc += CellList(tables_[t].headers());
      doc += ", \"rows\": [";
      const auto& rows = tables_[t].rows();
      for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i > 0) doc += ", ";
        doc += CellList(rows[i]);
      }
      doc += "]}";
    }
    doc += "]";
    if (!counters_.empty()) {
      doc += ", \"counters\": {";
      for (std::size_t i = 0; i < counters_.size(); ++i) {
        if (i > 0) doc += ", ";
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", counters_[i].second);
        doc += Quote(counters_[i].first) + ": " + buf;
      }
      doc += "}";
    }
    doc += "}\n";
    return doc;
  }

  bool enabled() const { return !path_.empty(); }

 private:
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += "\"";
    return out;
  }

  static std::string CellList(const std::vector<std::string>& cells) {
    std::string out = "[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out += ", ";
      out += Quote(cells[i]);
    }
    out += "]";
    return out;
  }

  std::string bench_name_;
  std::string path_;
  std::vector<std::string> titles_;
  std::vector<eval::Table> tables_;
  /// Insertion-ordered named scalars for the `counters` block.
  std::vector<std::pair<std::string, double>> counters_;
};

/// The shared experiment configuration (see src/eval/presets.h — one
/// definition serves benches and tests so the setups cannot drift apart).
using eval::ExperimentConfig;

/// Training batch of `n` normal points from a `dims`-dimensional Gaussian
/// stream. `concept_seed` fixes the cluster layout so the evaluation stream can
/// be drawn from the same concept with a different sampling seed.
inline std::vector<std::vector<double>> MakeTraining(int dims, int n,
                                                     std::uint64_t concept_seed,
                                                     std::uint64_t seed = 1) {
  stream::SyntheticConfig scfg;
  scfg.dimension = dims;
  scfg.outlier_probability = 0.0;
  scfg.concept_seed = concept_seed;
  scfg.seed = seed;
  stream::GaussianStream gen(scfg);
  return ValuesOf(Take(gen, static_cast<std::size_t>(n)));
}

/// Labeled evaluation stream with planted projected outliers, drawn from
/// the concept fixed by `concept_seed`.
inline std::vector<LabeledPoint> MakeEvalStream(int dims, int n,
                                                double outlier_prob,
                                                std::uint64_t concept_seed,
                                                std::uint64_t seed = 2,
                                                int max_subspace_dim = 2) {
  stream::SyntheticConfig scfg;
  scfg.dimension = dims;
  scfg.outlier_probability = outlier_prob;
  scfg.max_outlier_subspace_dim = max_subspace_dim;
  scfg.concept_seed = concept_seed;
  scfg.seed = seed;
  stream::GaussianStream gen(scfg);
  return Take(gen, static_cast<std::size_t>(n));
}

}  // namespace bench
}  // namespace spot

#endif  // SPOT_BENCH_BENCH_UTIL_H_
