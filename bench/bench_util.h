#ifndef SPOT_BENCH_BENCH_UTIL_H_
#define SPOT_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment binaries (bench/bench_e*.cc). Each
// binary reproduces one table/figure from DESIGN.md Section 5 and prints it
// via eval::Table so EXPERIMENTS.md can quote the rows verbatim.

#include <cstdint>
#include <vector>

#include "core/detector.h"
#include "core/spot_config.h"
#include "eval/presets.h"
#include "stream/data_point.h"
#include "stream/synthetic.h"

namespace spot {
namespace bench {

/// The shared experiment configuration (see src/eval/presets.h — one
/// definition serves benches and tests so the setups cannot drift apart).
using eval::ExperimentConfig;

/// Training batch of `n` normal points from a `dims`-dimensional Gaussian
/// stream. `concept_seed` fixes the cluster layout so the evaluation stream can
/// be drawn from the same concept with a different sampling seed.
inline std::vector<std::vector<double>> MakeTraining(int dims, int n,
                                                     std::uint64_t concept_seed,
                                                     std::uint64_t seed = 1) {
  stream::SyntheticConfig scfg;
  scfg.dimension = dims;
  scfg.outlier_probability = 0.0;
  scfg.concept_seed = concept_seed;
  scfg.seed = seed;
  stream::GaussianStream gen(scfg);
  return ValuesOf(Take(gen, static_cast<std::size_t>(n)));
}

/// Labeled evaluation stream with planted projected outliers, drawn from
/// the concept fixed by `concept_seed`.
inline std::vector<LabeledPoint> MakeEvalStream(int dims, int n,
                                                double outlier_prob,
                                                std::uint64_t concept_seed,
                                                std::uint64_t seed = 2,
                                                int max_subspace_dim = 2) {
  stream::SyntheticConfig scfg;
  scfg.dimension = dims;
  scfg.outlier_probability = outlier_prob;
  scfg.max_outlier_subspace_dim = max_subspace_dim;
  scfg.concept_seed = concept_seed;
  scfg.seed = seed;
  stream::GaussianStream gen(scfg);
  return Take(gen, static_cast<std::size_t>(n));
}

}  // namespace bench
}  // namespace spot

#endif  // SPOT_BENCH_BENCH_UTIL_H_
