// E12 — SST composition ablation (table).
//
// Paper claim (Section II-C1): FS, CS and OS "supplement each other in
// terms of towards capturing the right subspaces where projected outliers
// are hidden". Workload: *mixed-marginal* outliers — every attribute value
// is individually normal, only the 2-attribute combination is unseen — so
// 1-dimensional projections cannot reveal them. With FS capped at depth 1,
// detection requires the learned subsets: CS (unsupervised) and OS (expert
// examples + online growth) must supply the discriminating 2-d subspaces.
// A final row disables fringe suppression, ablating the detection rule
// itself. Expected shape: FS-only recall near 0; OS recovers most of it;
// the full SST leads; no-fringe floods precision.

#include "bench/bench_util.h"
#include "eval/harness.h"
#include "eval/table.h"
#include "learning/supervised.h"
#include "stream/replay.h"
#include "stream/synthetic.h"

namespace spot {
namespace {

struct Variant {
  std::string name;
  bool use_cs = false;
  bool use_os = false;
  bool fringe = true;
};

void Run(bench::JsonReporter& reporter) {
  const int kDims = 16;

  // Training is *unlabeled stream data* and therefore contains the same 2%
  // mixed-marginal outliers as the live stream — the material the paper's
  // unsupervised learning mines for CS ("SPOT takes in unlabeled training
  // data from the data stream").
  stream::SyntheticConfig scfg;
  scfg.dimension = kDims;
  scfg.concept_seed = 1200;
  scfg.outlier_probability = 0.02;
  scfg.mixed_outlier_fraction = 1.0;
  scfg.min_outlier_subspace_dim = 2;
  scfg.max_outlier_subspace_dim = 2;
  scfg.outlier_subspace_pool = 6;  // anomalies recur in 6 characteristic pairs
  scfg.seed = 3;
  stream::GaussianStream train_gen(scfg);
  const auto training = ValuesOf(Take(train_gen, 1200));

  // Evaluation stream: same concept, same outlier mix, fresh points.
  scfg.seed = 4;
  stream::GaussianStream eval_gen(scfg);
  const auto points = Take(eval_gen, 6000);

  // Expert examples for OS: labeled mixed outliers from the same concept.
  scfg.seed = 5;
  stream::GaussianStream example_gen(scfg);
  DomainKnowledge knowledge;
  for (int i = 0; i < 4000 &&
                  knowledge.outlier_examples.size() < 8; ++i) {
    const auto lp = example_gen.Next();
    if (lp->is_outlier) {
      knowledge.outlier_examples.push_back(lp->point.values);
    }
  }

  const std::vector<Variant> variants = {
      {"FS only", false, false, true},
      {"FS + CS", true, false, true},
      {"FS + OS", false, true, true},
      {"full SST", true, true, true},
      {"full, no fringe veto", true, true, false},
  };

  eval::Table table(
      {"variant", "SST size", "precision", "recall", "F1", "subspace-J"});
  for (const auto& v : variants) {
    SpotConfig cfg = bench::ExperimentConfig(47);
    cfg.fs_max_dimension = 1;  // singletons only: blind to mixed outliers
    cfg.cs_capacity = 24;
    if (!v.use_cs) cfg.unsupervised.top_subspaces_per_run = 0;
    cfg.os_update_every = v.use_os ? 8 : 0;
    if (!v.fringe) cfg.fringe_factor = 0.0;
    SpotDetector det(cfg);
    det.Learn(training, v.use_os ? &knowledge : nullptr);
    SpotStreamAdapter spot(&det);

    stream::ReplaySource replay(points);
    const eval::RunResult r =
        eval::RunDetection(spot, replay, points.size());
    table.AddRow({v.name, eval::Table::Int(det.TrackedSubspaces()),
                  eval::Table::Num(r.confusion.Precision()),
                  eval::Table::Num(r.confusion.Recall()),
                  eval::Table::Num(r.confusion.F1()),
                  eval::Table::Num(r.mean_subspace_jaccard)});
  }
  reporter.Print(table, 
      "E12: SST composition + fringe-suppression ablation "
      "(phi=16, mixed-marginal 2-d outliers, FS depth 1)");
}

}  // namespace
}  // namespace spot

int main(int argc, char** argv) {
  spot::bench::JsonReporter reporter(argc, argv, "e12");
  spot::Run(reporter);
  return 0;
}
