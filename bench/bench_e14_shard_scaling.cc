// E14 — Shard scaling (figure).
//
// The sharded engine's claim: batch size and shard count are the two
// first-class scaling knobs, and verdicts are bit-identical at every shard
// count, so throughput is free to scale with cores. We hold phi = 20, pin
// the SST at two sizes (the per-arrival cost is one PCS update + check per
// tracked subspace), and sweep the shard count. Speedup columns are
// relative to the 1-shard run of the same SST size.
//
// Throughput is read from SpotStats::PointsPerSecond() — the counters the
// detection entry points maintain — so this experiment reports from the
// same source as every other consumer instead of re-deriving rates.
//
// Note: shard speedup requires physical cores; on a single-core host the
// sweep degenerates to measuring the engine's coordination overhead.

#include <cstddef>
#include <vector>

#include "bench/bench_util.h"
#include "eval/table.h"

namespace spot {
namespace {

void Run(bench::JsonReporter& reporter) {
  eval::Table table({"SST size", "shards", "pts/s", "us/pt", "speedup"});
  const int kDims = 20;
  const int kStreamLen = 12000;
  const std::size_t kBatch = 256;
  const auto points = bench::MakeEvalStream(kDims, kStreamLen, 0.01,
                                            /*concept=*/41);
  const auto training = bench::MakeTraining(kDims, 600, /*concept=*/41);

  for (const std::size_t cap : {std::size_t{32}, std::size_t{128}}) {
    double base_pps = 0.0;
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      SpotConfig cfg = bench::ExperimentConfig(14);
      cfg.fs_max_dimension = 3;
      cfg.fs_cap = cap;
      cfg.unsupervised.top_subspaces_per_run = 0;  // CS off: pin the SST
      cfg.os_update_every = 0;                     // OS growth off
      cfg.num_shards = shards;
      SpotDetector det(cfg);
      det.Learn(training);

      std::vector<DataPoint> chunk;
      chunk.reserve(kBatch);
      for (std::size_t start = 0; start < points.size(); start += kBatch) {
        chunk.clear();
        for (std::size_t i = start;
             i < std::min(start + kBatch, points.size()); ++i) {
          chunk.push_back(points[i].point);
        }
        det.ProcessBatch(chunk);
      }

      const double pps = det.stats().PointsPerSecond();
      if (shards == 1) base_pps = pps;
      table.AddRow({eval::Table::Int(det.TrackedSubspaces()),
                    eval::Table::Int(shards), eval::Table::Num(pps, 0),
                    eval::Table::Num(1e6 / pps, 1),
                    eval::Table::Num(base_pps > 0.0 ? pps / base_pps : 0.0,
                                     2)});
    }
  }
  reporter.Print(table, "E14: throughput vs shard count (phi=20, batch=256)");
}

}  // namespace
}  // namespace spot

int main(int argc, char** argv) {
  spot::bench::JsonReporter reporter(argc, argv, "e14");
  spot::Run(reporter);
  return 0;
}
