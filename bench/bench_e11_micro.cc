// E11 — Microbenchmarks of the hot-path primitives (google-benchmark).
//
// Paper claim (Section II-C2): "BCS and PCS can be updated incrementally
// and thus will be very quickly. Also, the outlier-ness check of each data
// in the stream is also very efficient." These benches measure the
// individual operations: BCS update, projected-grid update, PCS query,
// fringe check, decay solve, and the full per-point detection step.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "grid/base_grid.h"
#include "grid/projected_grid.h"
#include "grid/synapse_manager.h"
#include "obs/perf_counters.h"

namespace spot {
namespace {

std::vector<double> RandomPoint(Rng& rng, int dims) {
  std::vector<double> p(static_cast<std::size_t>(dims));
  for (double& v : p) v = rng.NextDouble();
  return p;
}

/// Hardware-counter window around a benchmark's measured loop (DESIGN.md
/// Section 12): snapshot the calling thread's perf group before the loop,
/// then report instructions-per-item — and, when the bench counts probes,
/// cache-misses-per-probe — beside google-benchmark's time/op. Where
/// perf_event_open is denied the columns read 0 (the clock-only fallback
/// has no counts), keeping the table shape identical everywhere.
class PerfWindow {
 public:
  PerfWindow() : start_(obs::ThreadPerfGroup()->Read()) {}

  void Report(benchmark::State& state, double items,
              double probes = -1.0) const {
    const obs::PerfSample end = obs::ThreadPerfGroup()->Read();
    const bool hw = start_.hardware && end.hardware;
    const double instr =
        hw ? static_cast<double>(end.instructions - start_.instructions) : 0;
    const double miss =
        hw ? static_cast<double>(end.cache_misses - start_.cache_misses) : 0;
    state.counters["instr/pt"] = items > 0 ? instr / items : 0.0;
    if (probes >= 0.0) {
      state.counters["miss/probe"] = probes > 0 ? miss / probes : 0.0;
    } else {
      state.counters["miss/pt"] = items > 0 ? miss / items : 0.0;
    }
  }

 private:
  obs::PerfSample start_;
};

void BM_BcsAdd(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  const DecayModel model(2000, 0.01);
  Bcs bcs(dims);
  Rng rng(1);
  const std::vector<double> p = RandomPoint(rng, dims);
  std::uint64_t tick = 0;
  for (auto _ : state) {
    bcs.Add(p, tick++, model);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BcsAdd)->Arg(10)->Arg(20)->Arg(50);

void BM_BaseGridAdd(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  BaseGrid grid(Partition(dims, 5, 0.0, 1.0), DecayModel(2000, 0.01));
  Rng rng(2);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 512; ++i) points.push_back(RandomPoint(rng, dims));
  std::uint64_t tick = 0;
  for (auto _ : state) {
    grid.Add(points[tick % points.size()], tick);
    ++tick;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BaseGridAdd)->Arg(10)->Arg(20)->Arg(50);

void BM_ProjectedGridAddAndQuery(benchmark::State& state) {
  const int subspace_dim = static_cast<int>(state.range(0));
  const int dims = 20;
  const Partition part(dims, 5, 0.0, 1.0);
  std::vector<int> idx;
  for (int i = 0; i < subspace_dim; ++i) idx.push_back(i * 2);
  ProjectedGrid grid(Subspace::FromIndices(idx), &part,
                     DecayModel(2000, 0.01));
  Rng rng(3);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 512; ++i) points.push_back(RandomPoint(rng, dims));
  std::uint64_t tick = 0;
  const PerfWindow perf;
  for (auto _ : state) {
    const auto& p = points[tick % points.size()];
    grid.Add(p, tick);
    benchmark::DoNotOptimize(grid.Query(p, 100.0));
    ++tick;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["probes/pt"] =
      static_cast<double>(grid.hash_probes()) /
      static_cast<double>(state.iterations());
  perf.Report(state, static_cast<double>(state.iterations()),
              static_cast<double>(grid.hash_probes()));
}
BENCHMARK(BM_ProjectedGridAddAndQuery)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

// The fused single-probe variant of the same workload: update and PCS
// retrieval served from one slot lookup (compare probes/pt and time/op with
// BM_ProjectedGridAddAndQuery above).
void BM_ProjectedGridFusedAddQuery(benchmark::State& state) {
  const int subspace_dim = static_cast<int>(state.range(0));
  const int dims = 20;
  const Partition part(dims, 5, 0.0, 1.0);
  std::vector<int> idx;
  for (int i = 0; i < subspace_dim; ++i) idx.push_back(i * 2);
  ProjectedGrid grid(Subspace::FromIndices(idx), &part,
                     DecayModel(2000, 0.01));
  Rng rng(3);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 512; ++i) points.push_back(RandomPoint(rng, dims));
  std::uint64_t tick = 0;
  const PerfWindow perf;
  for (auto _ : state) {
    const auto& p = points[tick % points.size()];
    benchmark::DoNotOptimize(grid.AddAndQuery(p, tick, 100.0));
    ++tick;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["probes/pt"] =
      static_cast<double>(grid.hash_probes()) /
      static_cast<double>(state.iterations());
  perf.Report(state, static_cast<double>(state.iterations()),
              static_cast<double>(grid.hash_probes()));
}
BENCHMARK(BM_ProjectedGridFusedAddQuery)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

// Whole-synapse update + per-subspace query, the un-fused way the detector
// used to drive it: Add() into every grid, then Query() per subspace — two
// cell probes per subspace plus a grid-table probe.
void BM_SynapseUnfusedAddThenQuery(benchmark::State& state) {
  const int dims = 20;
  const int tracked = static_cast<int>(state.range(0));
  SynapseManager mgr(Partition(dims, 5, 0.0, 1.0), DecayModel(2000, 0.01));
  int added = 0;
  for (int a = 0; a < dims && added < tracked; ++a) {
    for (int b = a + 1; b < dims && added < tracked; ++b) {
      mgr.Track(Subspace::FromIndices({a, b}));
      ++added;
    }
  }
  const std::vector<Subspace> subspaces = mgr.TrackedSubspaces();
  Rng rng(5);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 512; ++i) points.push_back(RandomPoint(rng, dims));
  std::uint64_t tick = 0;
  const PerfWindow perf;
  for (auto _ : state) {
    const auto& p = points[tick % points.size()];
    mgr.Add(p, tick);
    for (const Subspace& s : subspaces) {
      benchmark::DoNotOptimize(mgr.Query(p, s));
    }
    ++tick;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["probes/pt"] =
      static_cast<double>(mgr.hash_probes()) /
      static_cast<double>(state.iterations());
  perf.Report(state, static_cast<double>(state.iterations()),
              static_cast<double>(mgr.hash_probes()));
}
BENCHMARK(BM_SynapseUnfusedAddThenQuery)->Arg(8)->Arg(32)->Arg(128);

// The fused detection hot path: one AddAndQuery call bins the point once,
// projects per subspace by index selection, and serves update + PCS from a
// single probe per subspace.
void BM_SynapseFusedAddAndQuery(benchmark::State& state) {
  const int dims = 20;
  const int tracked = static_cast<int>(state.range(0));
  SynapseManager mgr(Partition(dims, 5, 0.0, 1.0), DecayModel(2000, 0.01));
  int added = 0;
  for (int a = 0; a < dims && added < tracked; ++a) {
    for (int b = a + 1; b < dims && added < tracked; ++b) {
      mgr.Track(Subspace::FromIndices({a, b}));
      ++added;
    }
  }
  Rng rng(5);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 512; ++i) points.push_back(RandomPoint(rng, dims));
  std::vector<Pcs> out;
  std::uint64_t tick = 0;
  const PerfWindow perf;
  for (auto _ : state) {
    const auto& p = points[tick % points.size()];
    mgr.AddAndQuery(p, tick, &out);
    benchmark::DoNotOptimize(out.data());
    ++tick;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["probes/pt"] =
      static_cast<double>(mgr.hash_probes()) /
      static_cast<double>(state.iterations());
  perf.Report(state, static_cast<double>(state.iterations()),
              static_cast<double>(mgr.hash_probes()));
}
BENCHMARK(BM_SynapseFusedAddAndQuery)->Arg(8)->Arg(32)->Arg(128);

void BM_DecayModelSolve(benchmark::State& state) {
  std::uint64_t omega = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecayModel::SolveAlpha(omega, 0.01));
    omega = omega == 100 ? 10000 : 100;
  }
}
BENCHMARK(BM_DecayModelSolve);

void BM_SpotProcess(benchmark::State& state) {
  const int dims = 20;
  SpotConfig cfg = bench::ExperimentConfig(43);
  cfg.fs_cap = static_cast<std::size_t>(state.range(0));
  cfg.os_update_every = 0;
  SpotDetector det(cfg);
  det.Learn(bench::MakeTraining(dims, 500, /*concept=*/1100));
  Rng rng(4);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 1024; ++i) points.push_back(RandomPoint(rng, dims));
  std::size_t i = 0;
  const PerfWindow perf;
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.Process(points[i % points.size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  perf.Report(state, static_cast<double>(state.iterations()));
}
BENCHMARK(BM_SpotProcess)->Arg(32)->Arg(128)->Arg(512);

// The full per-point detection step through the batch API (chunks of
// state.range(1) points, SST frozen at state.range(0) subspaces). Compare
// items/s with BM_SpotProcess at the same SST size.
void BM_SpotProcessBatch(benchmark::State& state) {
  const int dims = 20;
  SpotConfig cfg = bench::ExperimentConfig(43);
  cfg.fs_cap = static_cast<std::size_t>(state.range(0));
  cfg.os_update_every = 0;
  SpotDetector det(cfg);
  det.Learn(bench::MakeTraining(dims, 500, /*concept=*/1100));
  const std::size_t batch = static_cast<std::size_t>(state.range(1));
  // Pre-built chunks: the benchmark measures detection, not batch assembly.
  Rng rng(4);
  std::vector<std::vector<DataPoint>> chunks(8);
  std::uint64_t id = 0;
  for (auto& chunk : chunks) {
    chunk.resize(batch);
    for (auto& p : chunk) {
      p.id = id++;
      p.values = RandomPoint(rng, dims);
    }
  }
  std::size_t pos = 0;
  const PerfWindow perf;
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.ProcessBatch(chunks[pos % chunks.size()]));
    ++pos;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch));
  perf.Report(state,
              static_cast<double>(state.iterations()) *
                  static_cast<double>(batch));
}
BENCHMARK(BM_SpotProcessBatch)
    ->Args({128, 64})
    ->Args({128, 256})
    ->Args({512, 64})
    ->Args({512, 256});

}  // namespace
}  // namespace spot

// Same `--json out.json` contract as the plain experiment binaries
// (bench_util.h JsonReporter), shimmed onto google-benchmark's native JSON
// reporter: the flag is rewritten to --benchmark_out before Initialize().
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string path;
    if (arg == "--json" && i + 1 < argc) {
      path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(sizeof("--json=") - 1);
    } else {
      args.push_back(arg);
      continue;
    }
    args.push_back("--benchmark_out=" + path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (auto& a : args) argv2.push_back(a.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
