// E11 — Microbenchmarks of the hot-path primitives (google-benchmark).
//
// Paper claim (Section II-C2): "BCS and PCS can be updated incrementally
// and thus will be very quickly. Also, the outlier-ness check of each data
// in the stream is also very efficient." These benches measure the
// individual operations: BCS update, projected-grid update, PCS query,
// fringe check, decay solve, and the full per-point detection step.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "grid/base_grid.h"
#include "grid/projected_grid.h"
#include "grid/synapse_manager.h"

namespace spot {
namespace {

std::vector<double> RandomPoint(Rng& rng, int dims) {
  std::vector<double> p(static_cast<std::size_t>(dims));
  for (double& v : p) v = rng.NextDouble();
  return p;
}

void BM_BcsAdd(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  const DecayModel model(2000, 0.01);
  Bcs bcs(dims);
  Rng rng(1);
  const std::vector<double> p = RandomPoint(rng, dims);
  std::uint64_t tick = 0;
  for (auto _ : state) {
    bcs.Add(p, tick++, model);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BcsAdd)->Arg(10)->Arg(20)->Arg(50);

void BM_BaseGridAdd(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  BaseGrid grid(Partition(dims, 5, 0.0, 1.0), DecayModel(2000, 0.01));
  Rng rng(2);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 512; ++i) points.push_back(RandomPoint(rng, dims));
  std::uint64_t tick = 0;
  for (auto _ : state) {
    grid.Add(points[tick % points.size()], tick);
    ++tick;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BaseGridAdd)->Arg(10)->Arg(20)->Arg(50);

void BM_ProjectedGridAddAndQuery(benchmark::State& state) {
  const int subspace_dim = static_cast<int>(state.range(0));
  const int dims = 20;
  const Partition part(dims, 5, 0.0, 1.0);
  std::vector<int> idx;
  for (int i = 0; i < subspace_dim; ++i) idx.push_back(i * 2);
  ProjectedGrid grid(Subspace::FromIndices(idx), &part,
                     DecayModel(2000, 0.01));
  Rng rng(3);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 512; ++i) points.push_back(RandomPoint(rng, dims));
  std::uint64_t tick = 0;
  for (auto _ : state) {
    const auto& p = points[tick % points.size()];
    grid.Add(p, tick);
    benchmark::DoNotOptimize(grid.Query(p, 100.0));
    ++tick;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProjectedGridAddAndQuery)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_DecayModelSolve(benchmark::State& state) {
  std::uint64_t omega = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecayModel::SolveAlpha(omega, 0.01));
    omega = omega == 100 ? 10000 : 100;
  }
}
BENCHMARK(BM_DecayModelSolve);

void BM_SpotProcess(benchmark::State& state) {
  const int dims = 20;
  SpotConfig cfg = bench::ExperimentConfig(43);
  cfg.fs_cap = static_cast<std::size_t>(state.range(0));
  cfg.os_update_every = 0;
  SpotDetector det(cfg);
  det.Learn(bench::MakeTraining(dims, 500, /*concept=*/1100));
  Rng rng(4);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 1024; ++i) points.push_back(RandomPoint(rng, dims));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.Process(points[i % points.size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpotProcess)->Arg(32)->Arg(128)->Arg(512);

}  // namespace
}  // namespace spot

BENCHMARK_MAIN();
