// Multi-connection load generator for the SPOT network ingest layer
// (DESIGN.md Section 7). Replays synthetic or CSV streams over the wire
// protocol at a target rate and reports end-to-end points/sec plus flush
// round-trip latency percentiles — the serving-boundary counterpart of
// the in-process experiment binaries, emitting the same spot-bench-v1
// JSON (`--json out.json`) so tools/bench_regression.py can track an
// end-to-end trajectory across PRs.
//
//   spot_loadgen --port 7077 [--host H] [--connections C] [--points N]
//                [--batch B] [--flush-every F] [--rate R] [--dims D]
//                [--training T] [--shards S] [--reactors R]
//                [--mix alarm-heavy|feedback-heavy|query-heavy]
//                [--session-prefix lg] [--csv FILE] [--skip K] [--resume]
//                [--keep-open] [--verify] [--spawn-server]
//                [--checkpoint-dir DIR] [--json OUT] [--trace-out FILE]
//                [--prof]
//
// --prof turns on the hardware-counter profiling plane (DESIGN.md
// Section 12) on the spawned server (with --spawn-server) and renders a
// stage x counter attribution table (IPC, instructions/unit,
// cache-misses/unit) from the post-run scrape; against an external
// server the table appears whenever that server runs with --prof. The
// overall instructions-per-point also lands in the JSON document's
// `counters` block as `instr/pt` for the bench-regression trajectory.
//
// --mix selects the request blend on top of the ingest stream (wire v3,
// DESIGN.md Section 11):
//   alarm-heavy    pure ingest + flush (the default; the pre-v3 workload)
//   feedback-heavy a supervised kFeedback round every 4th batch (labeling
//                  the current top-k outliers by id plus one fresh
//                  example), plus an occasional kQueryTopK
//   query-heavy    a kQueryTopK every 2nd batch, with an occasional
//                  feedback round
// The feedback/query schedule is a pure function of the absolute batch
// index, so a --skip/--resume replay re-applies exactly the rounds the
// killed run already ran (keep --skip a multiple of --batch). Under
// --verify every top-k answer is compared byte-for-byte (TopKBytes)
// against the in-process reference and every feedback round must agree
// with the reference's ApplyFeedback outcome — on top of the usual
// bit-identical verdict-stream check.
//
// --trace-out FILE pulls the server's flight recorder after the run (a
// kTraceDump round trip on a dedicated connection) and writes the
// Chrome-trace JSON to FILE — load it in Perfetto or chrome://tracing.
// Skipped gracefully against servers without tracing.
//
// Each of the C connections owns one session ("<prefix>-<c>") and streams
// N points in ingest batches of B, flushing every F batches (the flush is
// the latency probe: one round trip covering F*B points). --rate R caps
// each connection at R points/sec (0 = as fast as possible). After the
// run a kStats scrape on a dedicated connection prints the server's own
// pipeline-stage latency table (skipped gracefully against servers that
// predate the stats protocol).
//
// --verify runs an in-process reference detector per session on the same
// stream and requires the canonical verdict encodings to match byte for
// byte ("BIT-IDENTICAL VERDICTS: OK", exit 0). With --skip K the stream's
// first K points are assumed already served in an earlier run (the
// SIGTERM kill/restart flow): the wire sends points [K, K+N) against a
// session resumed with --resume, while the reference replays [0, K) to
// warm up and then compares [K, K+N). Flags defining the stream and the
// config (--dims, --training, --shards, --csv) must match the earlier run.
//
// --spawn-server hosts the multi-reactor server in-process on an
// ephemeral loopback port (real sockets, zero orchestration) with
// --reactors event-loop shards — how the bench regression job measures
// end-to-end throughput. Against an external server, pass the server's
// --reactors value so the report records it.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/log.h"
#include "common/timer.h"
#include "core/detector.h"
#include "eval/presets.h"
#include "examples/example_flags.h"
#include "net/protocol.h"
#include "net/spot_client.h"
#include "net/spot_server.h"
#include "obs/metrics.h"
#include "service/spot_service.h"
#include "stream/csv.h"
#include "stream/synthetic.h"

namespace {

struct Flags {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7077;
  std::size_t connections = 2;
  std::size_t points = 2000;
  std::size_t batch = 100;
  std::size_t flush_every = 1;
  std::size_t rate = 0;  // points/sec per connection; 0 = unthrottled
  int dims = 8;
  std::size_t training = 400;
  std::size_t shards = 1;
  std::size_t reactors = 1;
  std::string session_prefix = "lg";
  std::string csv;
  std::size_t skip = 0;
  bool resume = false;
  bool keep_open = false;
  bool verify = false;
  bool spawn_server = false;
  bool prof = false;
  std::string checkpoint_dir;
  std::string trace_out;
  std::string mix = "alarm-heavy";
};

/// Cadences of the scheduled v3 requests, per workload class. A cadence
/// of 0 disables the request; otherwise the request runs after every
/// batch whose absolute index b satisfies (b + 1) % cadence == 0 — a
/// pure function of b, so resumed runs replay the identical schedule.
struct MixPlan {
  std::size_t feedback_every = 0;
  std::size_t query_every = 0;
  std::uint32_t feedback_k = 4;  // label the current k worst outliers
  std::uint32_t query_k = 8;
};

bool PlanFor(const std::string& mix, MixPlan* plan) {
  if (mix == "alarm-heavy") {
    *plan = MixPlan{};  // pure ingest
    return true;
  }
  if (mix == "feedback-heavy") {
    plan->feedback_every = 4;
    plan->query_every = 16;
    return true;
  }
  if (mix == "query-heavy") {
    plan->feedback_every = 32;
    plan->query_every = 2;
    return true;
  }
  return false;
}

bool FeedbackDue(const MixPlan& plan, std::uint64_t batch_index) {
  return plan.feedback_every != 0 &&
         (batch_index + 1) % plan.feedback_every == 0;
}

bool QueryDue(const MixPlan& plan, std::uint64_t batch_index) {
  return plan.query_every != 0 && (batch_index + 1) % plan.query_every == 0;
}

/// The feedback round due after batch b: label whatever the session's
/// top-k window currently retains (ids from `top`) plus one fresh labeled
/// example — the first point of the batch, known to the wire worker and
/// the in-process reference alike.
std::vector<std::uint64_t> FeedbackIds(
    const std::vector<spot::TopKEntry>& top) {
  std::vector<std::uint64_t> ids;
  ids.reserve(top.size());
  for (const spot::TopKEntry& e : top) ids.push_back(e.point_id);
  return ids;
}

/// Replays the scheduled state-mutating rounds on the in-process
/// reference for one batch (the query itself is read-only; it matters
/// only as the id source of a due feedback round). Shared between the
/// skipped-prefix warm-up and the served portion so both walk the same
/// schedule.
void ReplayScheduledOps(spot::SpotDetector* reference, const MixPlan& plan,
                        std::uint64_t batch_index,
                        const std::vector<double>& fresh_example) {
  if (!FeedbackDue(plan, batch_index)) return;
  const std::vector<spot::TopKEntry> top =
      reference->QueryTopK(plan.feedback_k);
  std::string error;
  // Failure (e.g. a still-filling reservoir) is as deterministic as
  // success; the served portion asserts the wire outcome matches.
  reference->ApplyFeedback(FeedbackIds(top), {fresh_example}, &error);
}

/// The session config: derived only from the flags, so a --resume run
/// reconstructs the identical reference the original run used.
spot::SpotConfig SessionConfig(const Flags& flags) {
  spot::SpotConfig cfg = spot::eval::FastTestConfig();
  cfg.os_update_every = 8;
  cfg.evolution_period = 300;
  cfg.num_shards = flags.shards;
  return cfg;
}

/// Connection c's training batch (deterministic per connection).
std::vector<std::vector<double>> Training(const Flags& flags, std::size_t c,
                                          const spot::stream::CsvParseResult*
                                              csv) {
  if (csv != nullptr) {
    const std::size_t n = std::min(flags.training, csv->rows.size());
    return std::vector<std::vector<double>>(csv->rows.begin(),
                                            csv->rows.begin() +
                                                static_cast<long>(n));
  }
  return spot::bench::MakeTraining(flags.dims,
                                   static_cast<int>(flags.training),
                                   /*concept_seed=*/500 + c,
                                   /*seed=*/9100 + c);
}

/// Connection c's full evaluation stream: `skip + points` points with
/// stable ids, so a resumed run regenerates exactly the tail it needs.
std::vector<spot::DataPoint> Stream(const Flags& flags, std::size_t c,
                                    const spot::stream::CsvParseResult* csv) {
  std::vector<spot::DataPoint> out;
  const std::size_t need = flags.skip + flags.points;
  if (csv != nullptr) {
    for (std::size_t i = 0; i < need; ++i) {
      // Replay CSV rows after the training prefix, wrapping around so any
      // --points works with any file size.
      const std::size_t base = flags.training;
      const std::size_t span =
          csv->rows.size() > base ? csv->rows.size() - base : 1;
      spot::DataPoint p;
      p.id = i;
      p.values = csv->rows[base + (i % span)];
      out.push_back(std::move(p));
    }
    return out;
  }
  const std::vector<spot::LabeledPoint> labeled = spot::bench::MakeEvalStream(
      flags.dims, static_cast<int>(need), /*outlier_prob=*/0.02,
      /*concept_seed=*/500 + c, /*seed=*/9200 + c);
  out.reserve(labeled.size());
  for (const spot::LabeledPoint& p : labeled) out.push_back(p.point);
  return out;
}

struct WorkerResult {
  bool ok = false;
  bool verified = true;
  std::string error;
  double span_seconds = 0.0;  // detection span: first ingest -> last flush
  std::size_t points_sent = 0;
  std::size_t feedback_rounds = 0;   // wire kFeedback rounds attempted
  std::size_t feedback_applied = 0;  // ... that the server accepted
  std::size_t topk_queries = 0;      // wire kQueryTopK round trips
  /// Flush round-trip latencies in microseconds. A log2 histogram instead
  /// of a per-flush vector: O(1) memory however long the run, mergeable
  /// across workers, and still good for the p50/p95/p99 columns (within
  /// one power-of-two bucket of the exact order statistic).
  spot::obs::Histogram latency_us;
};

void RunWorker(const Flags& flags, std::size_t c, std::uint16_t port,
               const spot::stream::CsvParseResult* csv,
               WorkerResult* result) {
  const std::string id =
      flags.session_prefix + "-" + std::to_string(c);
  MixPlan plan;
  if (!PlanFor(flags.mix, &plan)) {
    result->error = "unknown --mix '" + flags.mix + "'";
    return;
  }
  spot::net::SpotClient client;
  bool connected = false;
  for (int attempt = 0; attempt < 50 && !connected; ++attempt) {
    connected = client.Connect(flags.host, port).ok;
    if (!connected) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  if (!connected) {
    result->error = "cannot connect: " + client.last_error();
    return;
  }

  const std::vector<std::vector<double>> training = Training(flags, c, csv);
  const std::vector<spot::DataPoint> stream = Stream(flags, c, csv);

  if (flags.resume ? !client.ResumeSession(id).ok
                   : !client.CreateSession(id, SessionConfig(flags),
                                           training)
                          .ok) {
    result->error = (flags.resume ? "resume: " : "create: ") +
                    client.last_error();
    return;
  }

  // In-process reference: same config, same training, same stream —
  // including a silent replay of the [0, skip) prefix an earlier run
  // already served (with its scheduled feedback rounds, which mutate the
  // detector), so the comparison picks up exactly where it left off.
  std::unique_ptr<spot::SpotDetector> reference;
  std::vector<spot::SpotResult> expected;
  std::uint64_t batch_index = 0;
  if (flags.verify) {
    reference =
        std::make_unique<spot::SpotDetector>(SessionConfig(flags));
    if (!reference->Learn(training)) {
      result->error = "reference learning failed";
      return;
    }
    for (std::size_t i = 0; i < flags.skip; i += flags.batch) {
      const std::size_t n = std::min(flags.batch, flags.skip - i);
      reference->ProcessBatch(std::vector<spot::DataPoint>(
          stream.begin() + static_cast<long>(i),
          stream.begin() + static_cast<long>(i + n)));
      ReplayScheduledOps(reference.get(), plan, batch_index,
                         stream[i].values);
      ++batch_index;
    }
  } else {
    batch_index = (flags.skip + flags.batch - 1) / flags.batch;
  }

  std::vector<spot::SpotResult> verdicts;
  verdicts.reserve(flags.points);
  const double batch_interval =
      flags.rate > 0 ? static_cast<double>(flags.batch) /
                           static_cast<double>(flags.rate)
                     : 0.0;
  spot::Timer span;
  spot::Timer group;  // covers the batches since the last flush
  double next_send = 0.0;
  std::size_t batches_since_flush = 0;
  for (std::size_t i = flags.skip; i < stream.size(); i += flags.batch) {
    if (batch_interval > 0.0) {
      while (span.ElapsedSeconds() < next_send) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      next_send += batch_interval;
    }
    const std::size_t n = std::min(flags.batch, stream.size() - i);
    const std::vector<spot::DataPoint> batch(
        stream.begin() + static_cast<long>(i),
        stream.begin() + static_cast<long>(i + n));
    if (batches_since_flush == 0) group.Reset();
    if (!client.Ingest(id, batch)) {
      result->error = "ingest: " + client.last_error();
      return;
    }
    if (flags.verify) {
      const std::vector<spot::SpotResult> ref =
          reference->ProcessBatch(batch);
      expected.insert(expected.end(), ref.begin(), ref.end());
    }
    result->points_sent += n;

    // Scheduled v3 requests (--mix): query first, then the feedback
    // round, in a fixed order so the wire and the reference walk the
    // same sequence. Both requests force a server-side batch boundary,
    // which is exactly where the reference sits after ProcessBatch.
    if (QueryDue(plan, batch_index)) {
      std::vector<spot::TopKEntry> got;
      if (!client.TopK(id, plan.query_k, &got)) {
        result->error = "top-k query: " + client.last_error();
        return;
      }
      ++result->topk_queries;
      if (flags.verify &&
          spot::net::TopKBytes(got) !=
              spot::net::TopKBytes(reference->QueryTopK(plan.query_k))) {
        result->verified = false;
        result->error = "top-k bytes diverge from in-process reference "
                        "at batch " + std::to_string(batch_index);
        return;
      }
    }
    if (FeedbackDue(plan, batch_index)) {
      std::vector<spot::TopKEntry> top;
      if (!client.TopK(id, plan.feedback_k, &top)) {
        result->error = "top-k (feedback ids): " + client.last_error();
        return;
      }
      ++result->topk_queries;
      const std::vector<std::uint64_t> ids = FeedbackIds(top);
      const spot::net::RpcStatus fb =
          client.Feedback(id, ids, {batch.front().values});
      // kFeedbackFailed is a legitimate deterministic outcome (e.g. a
      // reservoir still filling early in the stream); anything else —
      // transport, unsupported, not attached — fails the run.
      if (!fb && fb.code != spot::net::ErrorCode::kFeedbackFailed) {
        result->error = "feedback: " + client.last_error();
        return;
      }
      ++result->feedback_rounds;
      if (fb.ok) ++result->feedback_applied;
      if (flags.verify) {
        if (spot::net::TopKBytes(top) !=
            spot::net::TopKBytes(reference->QueryTopK(plan.feedback_k))) {
          result->verified = false;
          result->error = "feedback-id top-k bytes diverge at batch " +
                          std::to_string(batch_index);
          return;
        }
        std::string ref_error;
        const bool ref_ok = reference->ApplyFeedback(
            ids, {batch.front().values}, &ref_error);
        if (ref_ok != fb.ok) {
          result->verified = false;
          result->error = "feedback outcome diverges at batch " +
                          std::to_string(batch_index) + ": wire " +
                          (fb.ok ? "ok" : "failed") + ", reference " +
                          (ref_ok ? "ok" : "failed");
          return;
        }
      }
    }
    ++batch_index;

    if (++batches_since_flush >= flags.flush_every) {
      if (!client.Flush(id, &verdicts)) {
        result->error = "flush: " + client.last_error();
        return;
      }
      result->latency_us.Record(group.ElapsedMillis() * 1000.0);
      batches_since_flush = 0;
    }
  }
  if (batches_since_flush > 0) {
    if (!client.Flush(id, &verdicts)) {
      result->error = "flush: " + client.last_error();
      return;
    }
    result->latency_us.Record(group.ElapsedMillis() * 1000.0);
  }
  result->span_seconds = span.ElapsedSeconds();

  // persist=true is a no-op on a server without a checkpoint dir, so a
  // failure here is a real checkpoint error — surface it rather than
  // retrying with persist=false, which would silently discard the
  // session state and report a green run.
  if (!flags.keep_open &&
      !client.CloseSession(id, /*persist=*/true, &verdicts)) {
    result->error = "close: " + client.last_error();
    return;
  }

  if (flags.verify) {
    if (verdicts.size() != flags.points) {
      result->error = "verdict count mismatch: got " +
                      std::to_string(verdicts.size()) + ", want " +
                      std::to_string(flags.points);
      result->verified = false;
      return;
    }
    result->verified = spot::net::VerdictBytes(verdicts) ==
                       spot::net::VerdictBytes(expected);
    if (!result->verified) {
      result->error = "verdict bytes diverge from in-process reference";
      return;
    }
  }
  result->ok = true;
}

/// Post-run server-side observability scrape (DESIGN.md Section 9): a
/// kStats round trip on a dedicated connection, rendered as a
/// pipeline-stage latency table beside the client-side numbers. Reactors
/// publish their snapshots once per loop turn, so the scrape retries
/// briefly until the server-side ingest count has caught up with what
/// this run sent (an external server may carry counts from earlier runs,
/// hence >=). Pre-stats servers close the connection on the unknown
/// request type; that skips the table gracefully without failing the run.
void ScrapeServerStats(const Flags& flags, std::uint16_t port,
                       std::size_t expected_points,
                       spot::bench::JsonReporter* json) {
  spot::net::SpotClient client;
  if (!client.Connect(flags.host, port)) {
    std::printf("server scrape: skipped (%s)\n", client.last_error().c_str());
    return;
  }
  spot::net::StatsResp stats;
  for (int attempt = 0; attempt < 40; ++attempt) {
    if (!client.Stats(&stats)) {
      std::printf("server scrape: unsupported by this server (%s)\n",
                  client.last_error().c_str());
      return;
    }
    const spot::obs::MetricsSnapshot merged = stats.Merged();
    const auto it = merged.counters.find("points_ingested");
    if (it != merged.counters.end() && it->second >= expected_points) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  const spot::obs::MetricsSnapshot merged = stats.Merged();
  const auto counter = [&merged](const char* name) -> std::uint64_t {
    const auto it = merged.counters.find(name);
    return it == merged.counters.end() ? 0 : it->second;
  };
  std::printf("server scrape: %llu points in %llu batches across %zu "
              "reactor(s), %llu checkpoints, %llu hand-offs\n",
              static_cast<unsigned long long>(counter("points_ingested")),
              static_cast<unsigned long long>(counter("batches_run")),
              stats.reactors.size(),
              static_cast<unsigned long long>(counter("checkpoints_written")),
              static_cast<unsigned long long>(counter("sessions_handed_off")));

  // Fixed stage list (absent stages show count 0) so every run emits the
  // same table shape — bench_regression merges runs by table index.
  const struct {
    const char* stage;
    const char* metric;
  } kStages[] = {{"decode", "pipeline_decode_us"},
                 {"coalesce", "pipeline_coalesce_us"},
                 {"process", "pipeline_process_us"},
                 {"encode", "pipeline_encode_us"},
                 {"write", "pipeline_write_us"}};
  spot::eval::Table table(
      {"stage", "reactors", "count", "p50 us", "p95 us", "p99 us"});
  for (const auto& s : kStages) {
    const auto it = merged.histograms.find(s.metric);
    const spot::obs::Histogram hist =
        it == merged.histograms.end() ? spot::obs::Histogram() : it->second;
    table.AddRow({s.stage,
                  spot::eval::Table::Int(stats.reactors.size()),
                  spot::eval::Table::Int(hist.count()),
                  spot::eval::Table::Num(hist.Quantile(0.50), 1),
                  spot::eval::Table::Num(hist.Quantile(0.95), 1),
                  spot::eval::Table::Num(hist.Quantile(0.99), 1)});
  }
  json->Print(table, "SERVER: pipeline stage latency (scraped)");

  // Stage x counter attribution (DESIGN.md Section 12), present whenever
  // the server ran with profiling on (--prof here with --spawn-server, or
  // the external server's own switch). The perf series ride the same
  // kStats snapshot as the latency table, keyed by their embedded labels.
  constexpr const char kUnitsPrefix[] = "perf_units{";
  bool any_perf = false;
  spot::eval::Table perf_table({"stage", "units", "ipc", "instr/u",
                                "miss/u", "bmiss/u"});
  for (const auto& [name, units] : merged.counters) {
    if (name.rfind(kUnitsPrefix, 0) != 0) continue;
    any_perf = true;
    const std::string labels = name.substr(sizeof(kUnitsPrefix) - 1,
                                           name.size() - sizeof(kUnitsPrefix));
    const auto raw = [&merged, &labels](const char* base) -> double {
      const auto it = merged.counters.find(std::string(base) + "{" + labels +
                                           "}");
      return it == merged.counters.end() ? 0.0
                                         : static_cast<double>(it->second);
    };
    const double u = static_cast<double>(units);
    const double cycles = raw("perf_cycles");
    const double instr = raw("perf_instructions");
    // Human-readable stage tag: the quoted label values, slash-joined
    // (`stage="probe",engine_shard="2"` -> probe/2).
    std::string stage;
    for (std::size_t at = 0; (at = labels.find('"', at)) != std::string::npos;
         ) {
      const std::size_t close = labels.find('"', at + 1);
      if (close == std::string::npos) break;
      if (!stage.empty()) stage += "/";
      stage += labels.substr(at + 1, close - at - 1);
      at = close + 1;
    }
    const auto per = [u](double v) { return u > 0.0 ? v / u : 0.0; };
    perf_table.AddRow(
        {stage, spot::eval::Table::Int(units),
         spot::eval::Table::Num(cycles > 0.0 ? instr / cycles : 0.0, 2),
         spot::eval::Table::Num(per(instr), 1),
         spot::eval::Table::Num(per(raw("perf_cache_misses")), 3),
         spot::eval::Table::Num(per(raw("perf_branch_misses")), 3)});
    if (labels == "stage=\"process\"") {
      // The whole-batch service call, per point: the trajectory scalar
      // tools/bench_regression.py tracks (gates better than pts/s on
      // shared hardware — see DESIGN.md Section 12).
      json->SetCounter("instr/pt", per(instr));
    }
  }
  if (any_perf) {
    // Derived from the raw sample counters, not the summed-gauge
    // perf_mode (see obs::MergedPerfMode).
    const spot::obs::PerfMode mode = spot::obs::MergedPerfMode(merged);
    std::printf("perf mode: %s\n",
                mode == spot::obs::PerfMode::kHardware
                    ? "hardware"
                    : mode == spot::obs::PerfMode::kSoftware
                          ? "software fallback"
                          : "disabled");
    json->Print(perf_table, "SERVER: stage x counter attribution (scraped)");
  }
}

/// --trace-out: pulls the server's flight recorder over the wire (a
/// kTraceDump round trip on its own connection, like the stats scrape)
/// and writes the Chrome-trace JSON to `path`. A server with tracing
/// disabled answers kError; a pre-trace server closes the connection —
/// both skip with a message instead of failing the run.
void DumpServerTrace(const Flags& flags, std::uint16_t port,
                     const std::string& path) {
  spot::net::SpotClient client;
  if (!client.Connect(flags.host, port)) {
    std::printf("trace dump: skipped (%s)\n", client.last_error().c_str());
    return;
  }
  std::string trace_json;
  if (!client.TraceDump(&trace_json)) {
    std::printf("trace dump: unsupported by this server (%s)\n",
                client.last_error().c_str());
    return;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out || !out.write(trace_json.data(),
                         static_cast<std::streamsize>(trace_json.size()))) {
    SPOT_LOG(Error) << "cannot write trace to " << path;
    return;
  }
  std::printf("trace dumped to %s (%zu bytes)\n", path.c_str(),
              trace_json.size());
}

}  // namespace

int main(int argc, char** argv) {
  spot::bench::JsonReporter json(argc, argv, "spot_loadgen");
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  namespace ex = spot::examples;
  Flags flags;
  flags.host = ex::TakeStringFlag(&args, "host", flags.host);
  flags.port = static_cast<std::uint16_t>(
      ex::TakeSizeFlag(&args, "port", flags.port));
  flags.connections =
      std::max<std::size_t>(1, ex::TakeSizeFlag(&args, "connections", 2));
  flags.points = ex::TakeSizeFlag(&args, "points", 2000);
  flags.batch =
      std::max<std::size_t>(1, ex::TakeSizeFlag(&args, "batch", 100));
  flags.flush_every =
      std::max<std::size_t>(1, ex::TakeSizeFlag(&args, "flush-every", 1));
  flags.rate = ex::TakeSizeFlag(&args, "rate", 0);
  flags.dims = static_cast<int>(ex::TakeSizeFlag(&args, "dims", 8));
  flags.training = ex::TakeSizeFlag(&args, "training", 400);
  flags.shards = std::max<std::size_t>(1, ex::TakeSizeFlag(&args, "shards", 1));
  flags.reactors =
      std::max<std::size_t>(1, ex::TakeSizeFlag(&args, "reactors", 1));
  flags.session_prefix =
      ex::TakeStringFlag(&args, "session-prefix", flags.session_prefix);
  flags.csv = ex::TakeStringFlag(&args, "csv", "");
  flags.skip = ex::TakeSizeFlag(&args, "skip", 0);
  flags.resume = ex::TakeBoolFlag(&args, "resume");
  flags.keep_open = ex::TakeBoolFlag(&args, "keep-open");
  flags.verify = ex::TakeBoolFlag(&args, "verify");
  flags.spawn_server = ex::TakeBoolFlag(&args, "spawn-server");
  flags.prof = ex::TakeBoolFlag(&args, "prof");
  flags.checkpoint_dir = ex::TakeStringFlag(&args, "checkpoint-dir", "");
  flags.trace_out = ex::TakeStringFlag(&args, "trace-out", "");
  flags.mix = ex::TakeStringFlag(&args, "mix", flags.mix);
  // Swallow the reporter's flag, already parsed from argv.
  ex::TakeStringFlag(&args, "json", "");
  if (!args.empty()) {
    SPOT_LOG(Error) << "unknown argument '" << args.front() << "'";
    return 2;
  }
  MixPlan plan;
  if (!PlanFor(flags.mix, &plan)) {
    SPOT_LOG(Error) << "unknown --mix '" << flags.mix
                    << "' (alarm-heavy | feedback-heavy | query-heavy)";
    return 2;
  }
  if ((plan.feedback_every != 0 || plan.query_every != 0) &&
      flags.skip % flags.batch != 0) {
    SPOT_LOG(Error) << "--mix " << flags.mix << " needs --skip to be a "
                    << "multiple of --batch (the request schedule is keyed "
                    << "to batch boundaries)";
    return 2;
  }

  spot::stream::CsvParseResult csv;
  const bool use_csv = !flags.csv.empty();
  if (use_csv) {
    csv = spot::stream::LoadCsvFile(flags.csv);
    if (csv.rows.size() <= flags.training) {
      SPOT_LOG(Error) << flags.csv << ": need more than " << flags.training
                      << " rows";
      return 2;
    }
  }

  // Optional in-process server: real sockets on an ephemeral port.
  std::unique_ptr<spot::net::SpotServer> server;
  std::thread server_thread;
  std::uint16_t port = flags.port;
  if (flags.spawn_server) {
    spot::SpotServiceConfig scfg;
    scfg.num_shards = flags.shards;
    scfg.max_resident = std::max<std::size_t>(8, flags.connections);
    scfg.checkpoint_dir = flags.checkpoint_dir;
    if (!scfg.checkpoint_dir.empty()) {
      ::mkdir(scfg.checkpoint_dir.c_str(), 0755);
    }
    // Shard-probe trace lanes cost two clock reads per shard per batch, so
    // collect them only when a dump is actually requested.
    scfg.collect_shard_timings = !flags.trace_out.empty();
    spot::net::SpotServerConfig ncfg;
    ncfg.port = 0;
    ncfg.num_reactors = flags.reactors;
    ncfg.profile_counters = flags.prof;  // mirrored into the service tier
    server = std::make_unique<spot::net::SpotServer>(scfg, ncfg);
    if (!server->Start()) {
      SPOT_LOG(Error) << "cannot start in-process server";
      return 1;
    }
    port = server->port();
    server_thread = std::thread([&server] { server->Run(); });
    std::printf("spawned in-process server on 127.0.0.1:%u (%zu reactors)\n",
                port, server->num_reactors());
  }

  std::printf("loadgen: %zu connection(s) x %zu points (batch %zu, flush "
              "every %zu, rate %zu pts/s/conn, skip %zu, mix %s)%s\n",
              flags.connections, flags.points, flags.batch,
              flags.flush_every, flags.rate, flags.skip, flags.mix.c_str(),
              flags.verify ? " with --verify" : "");

  std::vector<WorkerResult> results(flags.connections);
  {
    std::vector<std::thread> workers;
    for (std::size_t c = 0; c < flags.connections; ++c) {
      workers.emplace_back(RunWorker, std::cref(flags), c, port,
                           use_csv ? &csv : nullptr, &results[c]);
    }
    for (std::thread& t : workers) t.join();
  }

  // Scrape the server's own pipeline view while it is still up (the
  // spawned server dies with Stop() below).
  std::size_t sent_total = 0;
  for (const WorkerResult& r : results) sent_total += r.points_sent;
  ScrapeServerStats(flags, port, sent_total, &json);
  if (!flags.trace_out.empty()) {
    DumpServerTrace(flags, port, flags.trace_out);
  }

  if (server != nullptr) {
    server->Stop();
    server_thread.join();
  }

  bool all_ok = true;
  bool all_verified = true;
  double max_span = 0.0;
  std::size_t total_points = 0;
  std::size_t feedback_rounds = 0;
  std::size_t feedback_applied = 0;
  std::size_t topk_queries = 0;
  // Per-connection throughput spread: with multiple reactors, skew
  // between the fastest and slowest connection is the first sign of an
  // unbalanced accept spread or a stalled reactor.
  double conn_min = 0.0;
  double conn_max = 0.0;
  spot::obs::Histogram latency_us;
  for (std::size_t c = 0; c < results.size(); ++c) {
    const WorkerResult& r = results[c];
    if (!r.ok) {
      SPOT_LOG(Error) << "connection " << c << " failed: " << r.error;
      all_ok = false;
    }
    all_verified &= r.verified;
    max_span = std::max(max_span, r.span_seconds);
    total_points += r.points_sent;
    feedback_rounds += r.feedback_rounds;
    feedback_applied += r.feedback_applied;
    topk_queries += r.topk_queries;
    const double conn_rate =
        r.span_seconds > 0.0
            ? static_cast<double>(r.points_sent) / r.span_seconds
            : 0.0;
    conn_min = c == 0 ? conn_rate : std::min(conn_min, conn_rate);
    conn_max = std::max(conn_max, conn_rate);
    latency_us.Merge(r.latency_us);
  }

  const double pts_per_sec =
      max_span > 0.0 ? static_cast<double>(total_points) / max_span : 0.0;
  spot::eval::Table table({"mix", "connections", "points", "batch", "shards",
                           "reactors", "pts/s", "conn min", "conn max",
                           "p50 ms", "p95 ms", "p99 ms"});
  table.AddRow({flags.mix,
                spot::eval::Table::Int(flags.connections),
                spot::eval::Table::Int(total_points),
                spot::eval::Table::Int(flags.batch),
                spot::eval::Table::Int(flags.shards),
                spot::eval::Table::Int(server != nullptr
                                           ? server->num_reactors()
                                           : flags.reactors),
                spot::eval::Table::Int(
                    static_cast<std::uint64_t>(pts_per_sec)),
                spot::eval::Table::Int(static_cast<std::uint64_t>(conn_min)),
                spot::eval::Table::Int(static_cast<std::uint64_t>(conn_max)),
                spot::eval::Table::Num(latency_us.Quantile(0.50) / 1000.0, 2),
                spot::eval::Table::Num(latency_us.Quantile(0.95) / 1000.0, 2),
                spot::eval::Table::Num(latency_us.Quantile(0.99) / 1000.0, 2)});
  json.Print(table, "LOADGEN: end-to-end server throughput");

  if (plan.feedback_every != 0 || plan.query_every != 0) {
    std::printf("mix %s: %zu top-k queries, %zu feedback rounds "
                "(%zu applied)\n",
                flags.mix.c_str(), topk_queries, feedback_rounds,
                feedback_applied);
  }

  if (flags.verify) {
    std::printf("\nBIT-IDENTICAL VERDICTS: %s\n",
                all_ok && all_verified ? "OK" : "FAIL");
  }
  return all_ok && all_verified ? 0 : 1;
}
