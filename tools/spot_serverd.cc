// Standalone SPOT network ingest server (DESIGN.md Sections 7-8).
//
//   spot_serverd [--port P] [--bind ADDR] [--checkpoint-dir DIR]
//                [--reactors N] [--shards N] [--max-resident N]
//                [--batch N] [--no-reuseport] [--no-epoll]
//                [--metrics-port P] [--stats-interval SECS]
//                [--slow-batch-ms MS] [--log-level LEVEL]
//                [--trace-capacity N] [--trace-file PATH]
//                [--wire-version V] [--prof] [--prof-interval SECS]
//
// Observability (DESIGN.md Sections 9-10): --metrics-port serves the
// live Prometheus text scrape — plus GET /trace (Chrome-trace JSON) and
// GET /journal (detector event journal) — on a dedicated thread (0 =
// ephemeral port; the bound port is printed as "metrics on
// <addr>:<port>"); --stats-interval logs a merged per-interval summary
// line to stdout; --slow-batch-ms warns on any engine batch slower than
// MS milliseconds (0 disables, default 250); --log-level picks the
// minimum emitted severity (debug|info|warning|error, default info
// here — the library default is warning); --trace-capacity sizes the
// per-reactor flight-recorder rings (0 disables tracing, default 2048);
// SIGUSR2 dumps the flight recorder to --trace-file (default
// spot_trace.json) without disturbing the ingest pipeline; --prof turns
// on the hardware-counter profiling plane (DESIGN.md Section 12 — the
// `spot_perf_*` families appear on every scrape surface, falling back to
// clock-only mode where perf_event_open is denied); --prof-interval
// (implies --prof) additionally logs a one-line per-stage IPC/cache-miss
// summary every SECS seconds, mirroring --stats-interval.
//
// Hosts --reactors event-loop shards (default: min(hardware cores, 8)),
// each with its own SpotService (N-shard fork-join pool per service)
// behind the binary wire protocol. Clients create or resume sessions by
// name; with --checkpoint-dir, SIGTERM/SIGINT shuts down gracefully —
// every reactor processes its pending coalesced batches and saves its
// sessions via CheckpointAll — so `kill -TERM` followed by a restart over
// the same directory resumes every stream bit-identically, even at a
// different reactor count (the CI server-smoke job proves it with
// spot_loadgen --verify).
//
// Prints "listening on <addr>:<port>" once ready (scripts wait for it).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include "common/log.h"
#include "examples/example_flags.h"
#include "net/spot_server.h"
#include "obs/exposition.h"
#include "obs/perf_counters.h"
#include "service/spot_service.h"

namespace {

/// Parses --log-level values; unknown text keeps `fallback`.
spot::LogLevel ParseLogLevel(const std::string& text,
                             spot::LogLevel fallback) {
  if (text == "debug") return spot::LogLevel::kDebug;
  if (text == "info") return spot::LogLevel::kInfo;
  if (text == "warning") return spot::LogLevel::kWarning;
  if (text == "error") return spot::LogLevel::kError;
  if (!text.empty()) {
    SPOT_LOG(Warning) << "unknown --log-level '" << text
                      << "' (want debug|info|warning|error)";
  }
  return fallback;
}

std::size_t DefaultReactors() {
  // hardware_concurrency() may legitimately report 0 (unknown).
  const unsigned cores = std::thread::hardware_concurrency();
  const std::size_t capped = cores == 0 ? 1 : static_cast<std::size_t>(cores);
  return capped < 8 ? capped : 8;
}

void PrintStatsLine(const char* label, const spot::net::SpotServerStats& s) {
  std::printf(
      "%s: %llu points in %llu batches over %llu connections "
      "(%llu frames in, %llu/%llu bytes in/out, %llu stalls, "
      "%llu listener pauses)\n",
      label, static_cast<unsigned long long>(s.points_ingested),
      static_cast<unsigned long long>(s.batches_run),
      static_cast<unsigned long long>(s.connections_accepted),
      static_cast<unsigned long long>(s.frames_received),
      static_cast<unsigned long long>(s.bytes_in),
      static_cast<unsigned long long>(s.bytes_out),
      static_cast<unsigned long long>(s.backpressure_stalls),
      static_cast<unsigned long long>(s.listener_pauses));
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);

  spot::SpotServiceConfig scfg;
  scfg.checkpoint_dir =
      spot::examples::TakeStringFlag(&args, "checkpoint-dir", "");
  scfg.num_shards = spot::examples::TakeSizeFlag(&args, "shards", 1);
  scfg.max_resident = spot::examples::TakeSizeFlag(&args, "max-resident", 64);

  spot::net::SpotServerConfig ncfg;
  ncfg.bind_address =
      spot::examples::TakeStringFlag(&args, "bind", "127.0.0.1");
  ncfg.port = static_cast<std::uint16_t>(
      spot::examples::TakeSizeFlag(&args, "port", 7077));
  ncfg.num_reactors =
      spot::examples::TakeSizeFlag(&args, "reactors", DefaultReactors());
  if (ncfg.num_reactors == 0) ncfg.num_reactors = 1;
  ncfg.use_reuseport = !spot::examples::TakeBoolFlag(&args, "no-reuseport");
  ncfg.batch_points = spot::examples::TakeSizeFlag(&args, "batch", 256);
  ncfg.use_epoll = !spot::examples::TakeBoolFlag(&args, "no-epoll");
  // --wire-version 2 emulates a pre-feedback server: the v3 request
  // types are refused with a kUnsupportedRequest cause and every reply
  // is spoken in the v2 dialect (the negotiation tests drive this).
  ncfg.wire_version = static_cast<std::uint8_t>(spot::examples::TakeSizeFlag(
      &args, "wire-version", spot::net::kWireVersion));
  const std::string metrics_port_text =
      spot::examples::TakeStringFlag(&args, "metrics-port");
  if (!metrics_port_text.empty()) {
    ncfg.metrics_port = std::atoi(metrics_port_text.c_str());
  }
  const std::string slow_ms_text =
      spot::examples::TakeStringFlag(&args, "slow-batch-ms");
  ncfg.slow_batch_warn_ms =
      slow_ms_text.empty() ? 250.0 : std::atof(slow_ms_text.c_str());
  ncfg.trace_capacity =
      spot::examples::TakeSizeFlag(&args, "trace-capacity", 2048);
  const std::string trace_file = spot::examples::TakeStringFlag(
      &args, "trace-file", "spot_trace.json");
  const std::size_t stats_interval =
      spot::examples::TakeSizeFlag(&args, "stats-interval", 0);
  const std::size_t prof_interval =
      spot::examples::TakeSizeFlag(&args, "prof-interval", 0);
  const bool prof =
      spot::examples::TakeBoolFlag(&args, "prof") || prof_interval > 0;
  // A server is interactive enough to default chattier than the library's
  // kWarning: startup/shutdown landmarks come through SPOT_LOG(Info).
  spot::SetLogLevel(
      ParseLogLevel(spot::examples::TakeStringFlag(&args, "log-level"),
                    spot::LogLevel::kInfo));

  if (!args.empty()) {
    SPOT_LOG(Error) << "unknown argument '" << args.front() << "'";
    return 2;
  }
  if (!scfg.checkpoint_dir.empty()) {
    ::mkdir(scfg.checkpoint_dir.c_str(), 0755);
  }
  // Shard-probe lanes ride the flight recorder; collecting them without
  // it would pay two clock reads per shard per batch for nothing.
  scfg.collect_shard_timings = ncfg.trace_capacity > 0;
  // One switch for both profiling tiers (the server mirrors it into each
  // service shard's collect_perf_counters).
  ncfg.profile_counters = prof;

  spot::net::SpotServer server(scfg, ncfg);
  if (!server.Start()) {
    SPOT_LOG(Error) << "cannot listen on " << ncfg.bind_address << ":"
                    << ncfg.port;
    return 1;
  }
  spot::net::SpotServer::InstallSignalHandlers(&server);
  if (server.metrics_port() >= 0) {
    std::printf("metrics on %s:%d/metrics\n", ncfg.bind_address.c_str(),
                server.metrics_port());
  }
  std::printf("listening on %s:%u (reactors=%zu%s, shards=%zu, batch=%zu%s%s)\n",
              ncfg.bind_address.c_str(), server.port(), server.num_reactors(),
              server.reuseport_active() ? " via SO_REUSEPORT" : "",
              scfg.num_shards, ncfg.batch_points,
              scfg.checkpoint_dir.empty() ? "" : ", checkpoints in ",
              scfg.checkpoint_dir.c_str());
  std::fflush(stdout);

  // Periodic stats dump: one merged summary line per interval, built from
  // the same published snapshots the scrape surfaces read — safe to run
  // beside the reactors.
  std::thread dumper;
  if (stats_interval > 0) {
    dumper = std::thread([&server, stats_interval] {
      auto next = std::chrono::steady_clock::now() +
                  std::chrono::seconds(stats_interval);
      while (!server.stopping()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        if (std::chrono::steady_clock::now() < next) continue;
        next += std::chrono::seconds(stats_interval);
        const spot::net::StatsResp snap = server.StatsSnapshot();
        std::printf("stats: %s\n",
                    spot::obs::SummaryLine(snap.Merged()).c_str());
        std::fflush(stdout);
      }
    });
  }

  // Periodic profiling dump (--prof-interval): one per-stage IPC /
  // instructions-per-unit / cache-miss line per interval, rendered from
  // the same merged snapshot as the stats line.
  std::thread prof_dumper;
  if (prof_interval > 0) {
    prof_dumper = std::thread([&server, prof_interval] {
      auto next = std::chrono::steady_clock::now() +
                  std::chrono::seconds(prof_interval);
      while (!server.stopping()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        if (std::chrono::steady_clock::now() < next) continue;
        next += std::chrono::seconds(prof_interval);
        const spot::net::StatsResp snap = server.StatsSnapshot();
        const std::string line =
            spot::obs::RenderPerfSummary(snap.Merged());
        if (!line.empty()) SPOT_LOG(Info) << line;
      }
    });
  }

  // SIGUSR2 trace dumps: the signal handler only latches a flag; this
  // watcher renders the flight recorder and writes the Chrome-trace file
  // outside signal context, far from the reactors' loops.
  std::thread tracer;
  if (ncfg.trace_capacity > 0) {
    tracer = std::thread([&server, trace_file] {
      while (!server.stopping()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        if (!spot::net::SpotServer::TraceRequested()) continue;
        const std::string json = server.TraceJson();
        std::ofstream out(trace_file,
                          std::ios::binary | std::ios::trunc);
        if (out && out.write(json.data(),
                             static_cast<std::streamsize>(json.size()))) {
          std::printf("trace dumped to %s (%zu bytes)\n",
                      trace_file.c_str(), json.size());
          std::fflush(stdout);
        } else {
          SPOT_LOG(Error) << "cannot write trace to " << trace_file;
        }
      }
    });
  }

  server.Run();  // until SIGTERM/SIGINT; drains + checkpoints on the way out
  if (dumper.joinable()) dumper.join();
  if (prof_dumper.joinable()) prof_dumper.join();
  if (tracer.joinable()) tracer.join();

  // Shutdown summary: one line per reactor, then the total, then the
  // service-side aggregates across all shards.
  char label[32];
  for (std::size_t i = 0; i < server.num_reactors(); ++i) {
    std::snprintf(label, sizeof(label), "reactor %zu", i);
    PrintStatsLine(label, server.reactor_stats(i));
  }
  PrintStatsLine("total", server.stats());
  const spot::ServiceMetrics metrics = server.TotalServiceMetrics();
  std::printf(
      "service totals: %zu sessions, %llu points processed, "
      "%llu outliers, %llu drifts, %llu checkpoints written\n",
      metrics.sessions,
      static_cast<unsigned long long>(metrics.points_processed),
      static_cast<unsigned long long>(metrics.outliers_detected),
      static_cast<unsigned long long>(metrics.drifts_detected),
      static_cast<unsigned long long>(metrics.checkpoints_written));
  spot::net::SpotServer::InstallSignalHandlers(nullptr);
  return 0;
}
