// Standalone SPOT network ingest server (DESIGN.md Section 7).
//
//   spot_serverd [--port P] [--bind ADDR] [--checkpoint-dir DIR]
//                [--shards N] [--max-resident N] [--batch N] [--no-epoll]
//
// Hosts one SpotService (N-shard fork-join pool shared by every session)
// behind the binary wire protocol. Clients create or resume sessions by
// name; with --checkpoint-dir, SIGTERM/SIGINT shuts down gracefully —
// pending coalesced batches are processed and every session is saved via
// CheckpointAll — so `kill -TERM` followed by a restart over the same
// directory resumes every stream bit-identically (the CI server-smoke job
// proves it with spot_loadgen --verify).
//
// Prints "listening on <addr>:<port>" once ready (scripts wait for it).

#include <cstdio>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "examples/example_flags.h"
#include "net/spot_server.h"
#include "service/spot_service.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);

  spot::SpotServiceConfig scfg;
  scfg.checkpoint_dir =
      spot::examples::TakeStringFlag(&args, "checkpoint-dir", "");
  scfg.num_shards = spot::examples::TakeSizeFlag(&args, "shards", 1);
  scfg.max_resident = spot::examples::TakeSizeFlag(&args, "max-resident", 64);

  spot::net::SpotServerConfig ncfg;
  ncfg.bind_address =
      spot::examples::TakeStringFlag(&args, "bind", "127.0.0.1");
  ncfg.port = static_cast<std::uint16_t>(
      spot::examples::TakeSizeFlag(&args, "port", 7077));
  ncfg.batch_points = spot::examples::TakeSizeFlag(&args, "batch", 256);
  ncfg.use_epoll = !spot::examples::TakeBoolFlag(&args, "no-epoll");

  if (!args.empty()) {
    std::fprintf(stderr, "unknown argument '%s'\n", args.front().c_str());
    return 2;
  }
  if (!scfg.checkpoint_dir.empty()) {
    ::mkdir(scfg.checkpoint_dir.c_str(), 0755);
  }

  spot::SpotService service(scfg);
  spot::net::SpotServer server(&service, ncfg);
  if (!server.Start()) {
    std::fprintf(stderr, "cannot listen on %s:%u\n",
                 ncfg.bind_address.c_str(), ncfg.port);
    return 1;
  }
  spot::net::SpotServer::InstallSignalHandlers(&server);
  std::printf("listening on %s:%u (shards=%zu, batch=%zu%s%s)\n",
              ncfg.bind_address.c_str(), server.port(), scfg.num_shards,
              ncfg.batch_points,
              scfg.checkpoint_dir.empty() ? "" : ", checkpoints in ",
              scfg.checkpoint_dir.c_str());
  std::fflush(stdout);

  server.Run();  // until SIGTERM/SIGINT; drains + checkpoints on the way out

  const spot::net::SpotServerStats& stats = server.stats();
  std::printf("served %llu points in %llu batches over %llu connections "
              "(%llu frames in, %llu/%llu bytes in/out, %llu stalls)\n",
              static_cast<unsigned long long>(stats.points_ingested),
              static_cast<unsigned long long>(stats.batches_run),
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.frames_received),
              static_cast<unsigned long long>(stats.bytes_in),
              static_cast<unsigned long long>(stats.bytes_out),
              static_cast<unsigned long long>(stats.backpressure_stalls));
  spot::net::SpotServer::InstallSignalHandlers(nullptr);
  return 0;
}
