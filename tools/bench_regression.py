#!/usr/bin/env python3
"""Perf-regression gate: run the hot-path benches, record the trajectory.

Runs ``bench_e11_micro`` (fused/unfused synapse probe micro-bench,
google-benchmark), ``bench_e2_throughput_sst`` (whole-detector throughput
vs SST size) and ``spot_loadgen --spawn-server`` (end-to-end pts/s +
latency through the network ingest layer, real loopback sockets) with
``--json``, normalizes everything into one spot-bench-v1 document, and
compares the fused-probe pts/s counters against the latest checked-in
``BENCH_*.json``: a drop of more than ``--threshold`` (default 15%) on any
fused-probe row fails the run.

Only the fused-probe table gates — it is the purpose-built hot-path counter
with the least noise. The E2 whole-detector and loadgen end-to-end tables
ride along in the document for trend reading but never fail the job.

Usage:
    tools/bench_regression.py --build-dir build --out BENCH_pr5.json
    tools/bench_regression.py --validate BENCH_pr4.json

Exit codes: 0 ok, 1 regression detected, 2 usage/environment error.
"""

import argparse
import glob
import json
import os
import re
import subprocess
import sys
import tempfile

SCHEMA = "spot-bench-v1"
FUSED_TABLE = "E11: fused synapse AddAndQuery (hot-path gate)"
UNFUSED_TABLE = "E11: unfused synapse Add+Query (context)"
GATE_COLUMN = "pts/s"


def fail(msg: str, code: int = 2) -> "NoReturn":  # noqa: F821
    print(f"bench_regression: {msg}", file=sys.stderr)
    sys.exit(code)


def run_e11(build_dir: str) -> list:
    """Runs the synapse micro-benches; returns the two normalized tables."""
    binary = os.path.join(build_dir, "bench", "bench_e11_micro")
    if not os.path.exists(binary):
        fail(f"{binary} not found (build with SPOT_BUILD_BENCH=ON and "
             "google-benchmark installed)")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        raw_path = tmp.name
    try:
        subprocess.run(
            [binary, "--benchmark_filter=BM_Synapse", f"--json={raw_path}"],
            check=True, stdout=subprocess.DEVNULL)
        with open(raw_path) as f:
            raw = json.load(f)
    finally:
        os.unlink(raw_path)

    tables = {FUSED_TABLE: [], UNFUSED_TABLE: []}
    for bench in raw.get("benchmarks", []):
        name = bench.get("name", "")
        match = re.fullmatch(
            r"BM_Synapse(Fused|Unfused)\w*/(\d+)", name)
        if not match:
            continue
        title = FUSED_TABLE if match.group(1) == "Fused" else UNFUSED_TABLE
        tables[title].append([
            match.group(2),                                   # SST size
            str(int(round(bench["items_per_second"]))),       # pts/s
            f"{bench.get('probes/pt', 0):.0f}",
            # Hardware-counter rates (0 when perf_event_open is
            # unavailable and the bench fell back to the software clock).
            # Trend columns only — never gated: instructions-per-point is
            # far more stable than pts/s on shared CI hardware, so read it
            # when a pts/s wiggle needs a verdict.
            f"{bench.get('instr/pt', 0):.0f}",
            f"{bench.get('miss/probe', 0):.3f}",
        ])
    for title, rows in tables.items():
        if not rows:
            fail(f"no rows extracted for {title!r} — bench output changed?")
        rows.sort(key=lambda r: int(r[0]))
    return [
        {"title": title,
         "headers": ["SST size", GATE_COLUMN, "probes/pt", "instr/pt",
                     "miss/probe"],
         "rows": rows}
        for title, rows in tables.items()
    ]


def run_e2(build_dir: str) -> list:
    """Runs the E2 throughput sweep; returns its tables verbatim."""
    binary = os.path.join(build_dir, "bench", "bench_e2_throughput_sst")
    if not os.path.exists(binary):
        fail(f"{binary} not found (build with SPOT_BUILD_BENCH=ON)")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        raw_path = tmp.name
    try:
        subprocess.run([binary, f"--json={raw_path}"], check=True,
                       stdout=subprocess.DEVNULL)
        with open(raw_path) as f:
            raw = json.load(f)
    finally:
        os.unlink(raw_path)
    if raw.get("schema") != SCHEMA:
        fail(f"{binary} emitted schema {raw.get('schema')!r}, "
             f"expected {SCHEMA!r}")
    return raw["tables"]


def run_loadgen(build_dir: str) -> list:
    """Runs the network loadgen against in-process servers it spawns.

    The end-to-end serving-boundary metric: pts/s and flush round-trip
    latency percentiles through real loopback sockets, with --verify
    asserting the wire verdicts are byte-identical to an in-process
    reference. Three passes — a single reactor, a two-reactor server,
    and a two-reactor feedback-heavy mix (supervised kFeedback rounds +
    kQueryTopK interleaved with the ingest, still under --verify) —
    merged into one table (the "mix" and "reactors" columns tell them
    apart), so the trajectory records the serving tier at both scales
    and the cost of the wire-v3 request plane. Context only — it never
    gates.

    Runs with --prof so the spawned servers profile their pipeline stages;
    the scraped instructions-per-point of the process stage comes back in
    the loadgen document's ``counters`` block (merged into the trajectory
    document, 0/absent when perf_event_open is unavailable). --prof is
    exercised under --verify here, so this doubles as a regression check
    that profiling never perturbs verdict bytes.
    """
    binary = os.path.join(build_dir, "tools", "spot_loadgen")
    if not os.path.exists(binary):
        fail(f"{binary} not found (build with SPOT_BUILD_TOOLS=ON)")
    merged = None
    counters = {}
    for reactors, mix in (("1", "alarm-heavy"), ("2", "alarm-heavy"),
                          ("2", "feedback-heavy")):
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
            raw_path = tmp.name
        try:
            subprocess.run(
                [binary, "--spawn-server", "--connections", "2",
                 "--points", "6000", "--batch", "200", "--dims", "8",
                 "--reactors", reactors, "--mix", mix, "--verify",
                 "--prof", f"--json={raw_path}"],
                check=True, stdout=subprocess.DEVNULL)
            with open(raw_path) as f:
                raw = json.load(f)
        finally:
            os.unlink(raw_path)
        if raw.get("schema") != SCHEMA:
            fail(f"{binary} emitted schema {raw.get('schema')!r}, "
                 f"expected {SCHEMA!r}")
        counters.update(raw.get("counters", {}))
        if merged is None:
            merged = raw["tables"]
        else:
            for into, more in zip(merged, raw["tables"]):
                into["rows"].extend(more["rows"])
    return merged, counters


def validate(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if not isinstance(doc.get("tables"), list) or not doc["tables"]:
        fail(f"{path}: no tables")
    for table in doc["tables"]:
        for key in ("title", "headers", "rows"):
            if key not in table:
                fail(f"{path}: table missing {key!r}")
    return doc


def find_baseline(baseline_dir: str, out_path: str) -> "str | None":
    """Latest checked-in BENCH_*.json other than the file being written."""
    out_abs = os.path.abspath(out_path) if out_path else None
    candidates = []
    for path in glob.glob(os.path.join(baseline_dir, "BENCH_*.json")):
        if out_abs and os.path.abspath(path) == out_abs:
            continue
        match = re.search(r"BENCH_pr(\d+)\.json$", path)
        order = int(match.group(1)) if match else -1
        candidates.append((order, path))
    if not candidates:
        return None
    return max(candidates)[1]


def gate_rows(doc: dict) -> dict:
    """{(row key): pts/s} for every fused-probe row of the document."""
    rows = {}
    for table in doc.get("tables", []):
        if table["title"] != FUSED_TABLE:
            continue
        if GATE_COLUMN not in table["headers"]:
            continue
        col = table["headers"].index(GATE_COLUMN)
        for row in table["rows"]:
            rows[row[0]] = float(row[col])
    return rows


def check(current: dict, baseline: dict, baseline_name: str,
          threshold: float) -> bool:
    base_rows = gate_rows(baseline)
    cur_rows = gate_rows(current)
    if not base_rows:
        print(f"baseline {baseline_name} has no fused-probe table; "
              "nothing to gate against")
        return True
    ok = True
    for key, base in sorted(base_rows.items(), key=lambda kv: int(kv[0])):
        cur = cur_rows.get(key)
        if cur is None:
            print(f"  SST={key}: missing from current run — FAIL")
            ok = False
            continue
        delta = (cur - base) / base
        verdict = "ok"
        if cur < base * (1.0 - threshold):
            verdict = f"FAIL (allowed -{threshold:.0%})"
            ok = False
        print(f"  SST={key}: {base:.0f} -> {cur:.0f} pts/s "
              f"({delta:+.1%}) {verdict}")
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="",
                        help="write the normalized spot-bench-v1 document "
                             "here (e.g. BENCH_pr5.json)")
    parser.add_argument("--baseline-dir", default=".",
                        help="directory holding checked-in BENCH_*.json")
    parser.add_argument("--threshold", type=float,
                        default=float(os.environ.get(
                            "BENCH_REGRESSION_THRESHOLD", "0.15")),
                        help="max allowed fractional pts/s drop "
                             "(default 0.15)")
    parser.add_argument("--validate", metavar="FILE",
                        help="only validate FILE against the schema and "
                             "exit")
    args = parser.parse_args()

    if args.validate:
        validate(args.validate)
        print(f"{args.validate}: valid {SCHEMA}")
        return 0

    loadgen_tables, loadgen_counters = run_loadgen(args.build_dir)
    current = {
        "schema": SCHEMA,
        "bench": "bench_regression",
        "tables": run_e11(args.build_dir) + run_e2(args.build_dir) +
                  loadgen_tables,
    }
    if loadgen_counters:
        # End-to-end hardware rates scraped from the spawned server
        # (e.g. the process stage's instructions-per-point). Trend data
        # only — never gated.
        current["counters"] = loadgen_counters

    if args.out:
        with open(args.out, "w") as f:
            json.dump(current, f, indent=1)
            f.write("\n")
        print(f"wrote {args.out}")

    baseline_path = find_baseline(args.baseline_dir, args.out)
    if baseline_path is None:
        print("no checked-in BENCH_*.json baseline yet — starting the "
              "trajectory, nothing to compare")
        return 0
    print(f"comparing fused-probe pts/s against {baseline_path} "
          f"(threshold {args.threshold:.0%}):")
    if not check(current, validate(baseline_path),
                 os.path.basename(baseline_path), args.threshold):
        print("performance regression on the fused-probe hot path",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
