#include "grid/base_grid.h"

#include <algorithm>

#include "core/checkpoint.h"

namespace spot {

BaseGrid::BaseGrid(Partition partition, DecayModel model,
                   double prune_threshold, std::uint64_t compaction_period)
    : partition_(std::move(partition)),
      model_(model),
      prune_threshold_(prune_threshold),
      compaction_period_(compaction_period),
      total_(model_) {}

void BaseGrid::Add(const std::vector<double>& point, std::uint64_t tick) {
  AddAt(partition_.BaseCell(point), point, tick);
}

void BaseGrid::AddAt(const CellCoords& coords,
                     const std::vector<double>& point, std::uint64_t tick) {
  last_tick_ = tick;
  total_.Observe(tick);
  auto [it, inserted] = cells_.try_emplace(coords, partition_.num_dims());
  it->second.Add(point, tick, model_);
  if (compaction_period_ != 0 &&
      ++arrivals_since_compaction_ >= compaction_period_) {
    Compact(tick);
    arrivals_since_compaction_ = 0;
  }
}

const Bcs* BaseGrid::Find(const std::vector<double>& point) const {
  return FindByCoords(partition_.BaseCell(point));
}

const Bcs* BaseGrid::FindByCoords(const CellCoords& coords) const {
  auto it = cells_.find(coords);
  return it == cells_.end() ? nullptr : &it->second;
}

double BaseGrid::TotalWeight() const { return total_.WeightAt(last_tick_); }

void BaseGrid::SaveState(CheckpointWriter& w) const {
  w.U64(last_tick_);
  w.U64(arrivals_since_compaction_);
  total_.SaveState(w);
  std::vector<const CellCoords*> order;
  order.reserve(cells_.size());
  for (const auto& [coords, bcs] : cells_) order.push_back(&coords);
  std::sort(order.begin(), order.end(),
            [](const CellCoords* a, const CellCoords* b) { return *a < *b; });
  w.U64(order.size());
  for (const CellCoords* coords : order) {
    w.Coords(*coords);
    cells_.at(*coords).SaveState(w);
  }
}

bool BaseGrid::LoadState(CheckpointReader& r) {
  last_tick_ = r.U64();
  arrivals_since_compaction_ = r.U64();
  if (!total_.LoadState(r)) return false;
  const std::uint64_t count = r.U64();
  if (count > (1u << 24)) return r.Fail();  // corrupt count prefix
  cells_.clear();
  // Reserve conservatively: a corrupt-but-in-cap count must fail on the
  // per-cell reads below, not abort inside an oversized allocation.
  cells_.reserve(
      static_cast<std::size_t>(count < (1u << 20) ? count : (1u << 20)));
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    CellCoords coords = r.Coords();
    if (coords.size() != static_cast<std::size_t>(partition_.num_dims())) {
      return r.Fail();
    }
    Bcs bcs;
    if (!bcs.LoadState(r)) return false;
    // The payload must describe a cell of this grid's dimensionality, or
    // later Add/MeanOf calls would index past the summary's vectors.
    if (bcs.num_dims() != partition_.num_dims()) return r.Fail();
    if (!cells_.emplace(std::move(coords), std::move(bcs)).second) {
      return r.Fail();  // duplicate cell: corrupt checkpoint
    }
  }
  return r.ok();
}

std::size_t BaseGrid::Compact(std::uint64_t tick) {
  std::size_t removed = 0;
  for (auto it = cells_.begin(); it != cells_.end();) {
    if (it->second.CountAt(tick, model_) < prune_threshold_) {
      it = cells_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace spot
