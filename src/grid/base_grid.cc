#include "grid/base_grid.h"

#include <algorithm>

#include "core/checkpoint.h"

namespace spot {

BaseGrid::BaseGrid(Partition partition, DecayModel model,
                   double prune_threshold, std::uint64_t compaction_period)
    : partition_(std::move(partition)),
      model_(model),
      prune_threshold_(prune_threshold),
      compaction_period_(compaction_period),
      total_(model_),
      index_(static_cast<std::size_t>(partition_.num_dims())) {}

void BaseGrid::Add(const std::vector<double>& point, std::uint64_t tick) {
  AddAt(partition_.BaseCell(point), point, tick);
}

void BaseGrid::AddAt(const CellCoords& coords, std::uint64_t hash,
                     const std::vector<double>& point, std::uint64_t tick) {
  last_tick_ = tick;
  total_.Observe(tick);
  const std::uint32_t candidate =
      free_cells_.empty() ? static_cast<std::uint32_t>(cell_bcs_.size())
                          : free_cells_.back();
  const auto [slot, inserted] = index_.Insert(coords.data(), hash, candidate);
  if (inserted) {
    if (free_cells_.empty()) {
      cell_coords_.push_back(coords);
      cell_bcs_.emplace_back(partition_.num_dims());
    } else {
      free_cells_.pop_back();
      cell_coords_[slot] = coords;
      cell_bcs_[slot] = Bcs(partition_.num_dims());
    }
  }
  cell_bcs_[slot].Add(point, tick, model_);
  if (compaction_period_ != 0 &&
      ++arrivals_since_compaction_ >= compaction_period_) {
    Compact(tick);
    arrivals_since_compaction_ = 0;
  }
}

const Bcs* BaseGrid::Find(const std::vector<double>& point) const {
  return FindByCoords(partition_.BaseCell(point));
}

const Bcs* BaseGrid::FindByCoords(const CellCoords& coords) const {
  const std::uint32_t slot = index_.Find(coords.data(), index_.Hash(coords));
  return slot == FlatIndex::kNoValue ? nullptr : &cell_bcs_[slot];
}

double BaseGrid::TotalWeight() const { return total_.WeightAt(last_tick_); }

std::vector<std::pair<const CellCoords*, const Bcs*>> BaseGrid::OrderedCells()
    const {
  std::vector<std::pair<const CellCoords*, const Bcs*>> out;
  out.reserve(index_.size());
  index_.ForEach([&](const std::uint32_t*, std::uint32_t slot) {
    out.emplace_back(&cell_coords_[slot], &cell_bcs_[slot]);
  });
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  return out;
}

void BaseGrid::SaveState(CheckpointWriter& w) const {
  w.U64(last_tick_);
  w.U64(arrivals_since_compaction_);
  total_.SaveState(w);
  const auto ordered = OrderedCells();
  w.U64(ordered.size());
  for (const auto& [coords, bcs] : ordered) {
    w.Coords(*coords);
    bcs->SaveState(w);
  }
}

bool BaseGrid::LoadState(CheckpointReader& r) {
  last_tick_ = r.U64();
  arrivals_since_compaction_ = r.U64();
  if (!total_.LoadState(r)) return false;
  const std::uint64_t count = r.U64();
  if (count > (1u << 24)) return r.Fail();  // corrupt count prefix
  index_.Clear();
  cell_coords_.clear();
  cell_bcs_.clear();
  free_cells_.clear();
  // Reserve conservatively: a corrupt-but-in-cap count must fail on the
  // per-cell reads below, not abort inside an oversized allocation.
  const std::size_t reserve =
      static_cast<std::size_t>(count < (1u << 20) ? count : (1u << 20));
  index_.Reserve(reserve);
  cell_coords_.reserve(reserve);
  cell_bcs_.reserve(reserve);
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    CellCoords coords = r.Coords();
    if (coords.size() != static_cast<std::size_t>(partition_.num_dims())) {
      return r.Fail();
    }
    Bcs bcs;
    if (!bcs.LoadState(r)) return false;
    // The payload must describe a cell of this grid's dimensionality, or
    // later Add/MeanOf calls would index past the summary's vectors.
    if (bcs.num_dims() != partition_.num_dims()) return r.Fail();
    const std::uint32_t slot = static_cast<std::uint32_t>(i);
    if (!index_.Insert(coords.data(), index_.Hash(coords), slot).second) {
      return r.Fail();  // duplicate cell: corrupt checkpoint
    }
    cell_coords_.push_back(std::move(coords));
    cell_bcs_.push_back(std::move(bcs));
  }
  return r.ok();
}

std::size_t BaseGrid::Compact(std::uint64_t tick) {
  // Two-pass: backward-shift erasure relocates inline keys, so collect the
  // doomed coordinates first, then erase them.
  std::vector<CellCoords> doomed;
  index_.ForEach([&](const std::uint32_t*, std::uint32_t slot) {
    if (cell_bcs_[slot].CountAt(tick, model_) < prune_threshold_) {
      doomed.push_back(cell_coords_[slot]);
      free_cells_.push_back(slot);
    }
  });
  for (const CellCoords& coords : doomed) index_.Erase(coords);
  ++compactions_;
  cells_reclaimed_ += doomed.size();
  return doomed.size();
}

}  // namespace spot
