#include "grid/base_grid.h"

namespace spot {

BaseGrid::BaseGrid(Partition partition, DecayModel model,
                   double prune_threshold, std::uint64_t compaction_period)
    : partition_(std::move(partition)),
      model_(model),
      prune_threshold_(prune_threshold),
      compaction_period_(compaction_period),
      total_(model_) {}

void BaseGrid::Add(const std::vector<double>& point, std::uint64_t tick) {
  AddAt(partition_.BaseCell(point), point, tick);
}

void BaseGrid::AddAt(const CellCoords& coords,
                     const std::vector<double>& point, std::uint64_t tick) {
  last_tick_ = tick;
  total_.Observe(tick);
  auto [it, inserted] = cells_.try_emplace(coords, partition_.num_dims());
  it->second.Add(point, tick, model_);
  if (compaction_period_ != 0 &&
      ++arrivals_since_compaction_ >= compaction_period_) {
    Compact(tick);
    arrivals_since_compaction_ = 0;
  }
}

const Bcs* BaseGrid::Find(const std::vector<double>& point) const {
  return FindByCoords(partition_.BaseCell(point));
}

const Bcs* BaseGrid::FindByCoords(const CellCoords& coords) const {
  auto it = cells_.find(coords);
  return it == cells_.end() ? nullptr : &it->second;
}

double BaseGrid::TotalWeight() const { return total_.WeightAt(last_tick_); }

std::size_t BaseGrid::Compact(std::uint64_t tick) {
  std::size_t removed = 0;
  for (auto it = cells_.begin(); it != cells_.end();) {
    if (it->second.CountAt(tick, model_) < prune_threshold_) {
      it = cells_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace spot
