#include "grid/synapse_shard.h"

#include <utility>

namespace spot {

void SynapseShard::ProcessColumn(ShardColumn* column, const BatchFrame& frame,
                                 std::size_t begin, std::size_t end,
                                 const ShardRunParams& params) {
  ProjectedGrid& grid = *column->grid;
  const std::vector<DataPoint>& points = *frame.points;

  // Software-pipelined batch probe: while point j's fused update+query
  // executes, point j+1's projected coordinates are already hashed and its
  // index bucket prefetched — consecutive probes against the same grid
  // overlap their cache misses instead of serializing (the prefetched
  // address can go stale across a rehash; that only costs the hint).
  const std::size_t width = grid.subspace().Indices().size();
  CellCoords cur(width);
  CellCoords next(width);
  if (begin >= end) return;
  grid.ProjectBaseInto(frame.base_coords[begin], &cur);
  std::uint64_t cur_hash = grid.PrefetchCoords(cur);
  for (std::size_t j = begin; j < end; ++j) {
    std::uint64_t next_hash = 0;
    if (j + 1 < end) {
      grid.ProjectBaseInto(frame.base_coords[j + 1], &next);
      next_hash = grid.PrefetchCoords(next);
    }
    const std::vector<double>& values = points[j].values;
    const Pcs pcs = grid.AddAndQueryCoords(cur, cur_hash, values,
                                           frame.ticks[j],
                                           frame.total_weights[j]);
    column->pcs[j] = pcs;
    // Mirror the sequential detection policy exactly: the fringe
    // neighborhood is probed only for sparse cells, against the grid state
    // with points <= j folded in (the next point is not added until this
    // verdict is recorded).
    bool veto = false;
    if (params.fringe_factor > 0.0 &&
        pcs.IsSparse(params.rd_threshold, params.irsd_threshold)) {
      veto = grid.IsClusterFringe(cur, pcs.count, params.fringe_factor);
    }
    column->vetoed[j] = veto ? 1 : 0;
    std::swap(cur, next);
    cur_hash = next_hash;
  }
}

}  // namespace spot
