#include "grid/synapse_shard.h"

namespace spot {

void SynapseShard::ProcessColumn(ShardColumn* column, const BatchFrame& frame,
                                 std::size_t begin, std::size_t end,
                                 const ShardRunParams& params) {
  ProjectedGrid& grid = *column->grid;
  const std::vector<DataPoint>& points = *frame.points;
  const std::vector<int> dims = grid.subspace().Indices();
  CellCoords projected(dims.size());
  for (std::size_t j = begin; j < end; ++j) {
    const std::vector<double>& values = points[j].values;
    const Pcs pcs = grid.AddAndQueryAt(frame.base_coords[j], values,
                                       frame.ticks[j],
                                       frame.total_weights[j]);
    column->pcs[j] = pcs;
    // Mirror the sequential detection policy exactly: the fringe
    // neighborhood is probed only for sparse cells, against the grid state
    // with points <= j folded in (the next point is not added until this
    // verdict is recorded).
    bool veto = false;
    if (params.fringe_factor > 0.0 &&
        pcs.IsSparse(params.rd_threshold, params.irsd_threshold)) {
      for (std::size_t k = 0; k < dims.size(); ++k) {
        projected[k] =
            frame.base_coords[j][static_cast<std::size_t>(dims[k])];
      }
      veto = grid.IsClusterFringe(projected, pcs.count,
                                  params.fringe_factor);
    }
    column->vetoed[j] = veto ? 1 : 0;
  }
}

}  // namespace spot
