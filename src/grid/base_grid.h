#ifndef SPOT_GRID_BASE_GRID_H_
#define SPOT_GRID_BASE_GRID_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "grid/bcs.h"
#include "grid/decay.h"
#include "grid/flat_index.h"
#include "grid/partition.h"

namespace spot {

class CheckpointReader;
class CheckpointWriter;

/// Sparse hypercube of Base Cell Summaries at the finest granularity.
///
/// Only populated cells are materialized: summaries live densely in a
/// recycled-slot vector, located through a flat open-addressing coordinate
/// index (FlatIndex — one contiguous probe per lookup, DESIGN.md Section
/// 3.9). With decay, cells whose weight falls below `prune_threshold` are
/// reclaimed during periodic compaction, which bounds memory by the
/// effective window content rather than the stream length.
class BaseGrid {
 public:
  /// `prune_threshold`: decayed count below which a cell is dropped during
  /// compaction. `compaction_period`: number of arrivals between sweeps
  /// (0 disables automatic compaction).
  BaseGrid(Partition partition, DecayModel model,
           double prune_threshold = 1e-3,
           std::uint64_t compaction_period = 4096);

  /// Folds a point in at tick `tick` (non-decreasing), updating its base
  /// cell's BCS, the decayed total weight, and (periodically) compacting.
  void Add(const std::vector<double>& point, std::uint64_t tick);

  /// Add() with precomputed base-cell coordinates (the batch path bins each
  /// point once and shares the coordinates across all grids).
  void AddAt(const CellCoords& coords, const std::vector<double>& point,
             std::uint64_t tick) {
    AddAt(coords, index_.Hash(coords), point, tick);
  }

  /// AddAt() with the coordinate hash staged by PrefetchCoords — the batch
  /// pipeline hashes each base cell exactly once.
  void AddAt(const CellCoords& coords, std::uint64_t hash,
             const std::vector<double>& point, std::uint64_t tick);

  /// Prefetches the index bucket of `coords` and returns its hash for the
  /// matching AddAt — the batch path hints the next point's base cell while
  /// folding the current one, so consecutive AddAt misses overlap.
  std::uint64_t PrefetchCoords(const CellCoords& coords) const {
    const std::uint64_t hash = index_.Hash(coords);
    index_.Prefetch(hash);
    return hash;
  }

  /// BCS of the base cell containing `point`, or nullptr if unpopulated.
  const Bcs* Find(const std::vector<double>& point) const;

  /// BCS by explicit coordinates, or nullptr.
  const Bcs* FindByCoords(const CellCoords& coords) const;

  /// Decayed total stream weight as of the last Add().
  double TotalWeight() const;

  /// Number of materialized cells (after lazy pruning at compaction time).
  std::size_t PopulatedCells() const { return index_.size(); }

  /// Removes every cell whose decayed count (as of `tick`) is below the
  /// prune threshold. Returns the number of removed cells.
  std::size_t Compact(std::uint64_t tick);

  /// Cell-store occupancy: total summary slots ever allocated (live +
  /// free) and the slots currently awaiting recycling.
  std::size_t SlabSlots() const { return cell_bcs_.size(); }
  std::size_t FreeSlots() const { return free_cells_.size(); }

  /// Compaction sweeps run, and cells they reclaimed, since construction.
  /// Observability counters only — never checkpointed.
  std::uint64_t compactions() const { return compactions_; }
  std::uint64_t cells_reclaimed() const { return cells_reclaimed_; }

  std::uint64_t last_tick() const { return last_tick_; }
  const Partition& partition() const { return partition_; }
  const DecayModel& decay_model() const { return model_; }

  /// Every populated cell (coordinates + summary) in ascending coordinate
  /// order. This is the ONLY iteration surface the grid exposes: callers
  /// (checkpointing, tests, diagnostics) cannot observe — and so cannot
  /// come to depend on — the index's internal hash order, which varies
  /// with insertion/erase history and is never reproduced by a restore.
  /// Pointers are valid until the next mutating call.
  std::vector<std::pair<const CellCoords*, const Bcs*>> OrderedCells() const;

  /// Checkpointing: the populated cells (serialized in ascending coordinate
  /// order so equal grids produce byte-identical sections), the decayed
  /// total-weight counter, the clock and the compaction cadence all
  /// round-trip. Partition and decay model come from the constructor.
  void SaveState(CheckpointWriter& w) const;
  bool LoadState(CheckpointReader& r);

 private:
  Partition partition_;
  DecayModel model_;
  double prune_threshold_;
  std::uint64_t compaction_period_;
  std::uint64_t arrivals_since_compaction_ = 0;
  std::uint64_t last_tick_ = 0;
  DecayedCounter total_;
  // Dense recycled-slot cell store: coordinates and summaries parallel by
  // slot, located via the flat coordinate index; freed slots are reused.
  FlatIndex index_;
  std::vector<CellCoords> cell_coords_;
  std::vector<Bcs> cell_bcs_;
  std::vector<std::uint32_t> free_cells_;
  std::uint64_t compactions_ = 0;  // not checkpointed (see accessor)
  std::uint64_t cells_reclaimed_ = 0;
};

}  // namespace spot

#endif  // SPOT_GRID_BASE_GRID_H_
