#ifndef SPOT_GRID_BASE_GRID_H_
#define SPOT_GRID_BASE_GRID_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "grid/bcs.h"
#include "grid/decay.h"
#include "grid/partition.h"

namespace spot {

class CheckpointReader;
class CheckpointWriter;

/// Sparse hypercube of Base Cell Summaries at the finest granularity.
///
/// Only populated cells are materialized (hash map keyed by base-cell
/// coordinates); with decay, cells whose weight falls below
/// `prune_threshold` are reclaimed during periodic compaction, which bounds
/// memory by the effective window content rather than the stream length.
class BaseGrid {
 public:
  /// `prune_threshold`: decayed count below which a cell is dropped during
  /// compaction. `compaction_period`: number of arrivals between sweeps
  /// (0 disables automatic compaction).
  BaseGrid(Partition partition, DecayModel model,
           double prune_threshold = 1e-3,
           std::uint64_t compaction_period = 4096);

  /// Folds a point in at tick `tick` (non-decreasing), updating its base
  /// cell's BCS, the decayed total weight, and (periodically) compacting.
  void Add(const std::vector<double>& point, std::uint64_t tick);

  /// Add() with precomputed base-cell coordinates (the batch path bins each
  /// point once and shares the coordinates across all grids).
  void AddAt(const CellCoords& coords, const std::vector<double>& point,
             std::uint64_t tick);

  /// BCS of the base cell containing `point`, or nullptr if unpopulated.
  const Bcs* Find(const std::vector<double>& point) const;

  /// BCS by explicit coordinates, or nullptr.
  const Bcs* FindByCoords(const CellCoords& coords) const;

  /// Decayed total stream weight as of the last Add().
  double TotalWeight() const;

  /// Number of materialized cells (after lazy pruning at compaction time).
  std::size_t PopulatedCells() const { return cells_.size(); }

  /// Removes every cell whose decayed count (as of `tick`) is below the
  /// prune threshold. Returns the number of removed cells.
  std::size_t Compact(std::uint64_t tick);

  std::uint64_t last_tick() const { return last_tick_; }
  const Partition& partition() const { return partition_; }
  const DecayModel& decay_model() const { return model_; }

  /// Read-only access to every populated cell (coordinates + summary).
  const std::unordered_map<CellCoords, Bcs, CellCoordsHash>& cells() const {
    return cells_;
  }

  /// Checkpointing: the populated cells (serialized in sorted coordinate
  /// order so equal grids produce byte-identical sections), the decayed
  /// total-weight counter, the clock and the compaction cadence all
  /// round-trip. Partition and decay model come from the constructor.
  void SaveState(CheckpointWriter& w) const;
  bool LoadState(CheckpointReader& r);

 private:
  Partition partition_;
  DecayModel model_;
  double prune_threshold_;
  std::uint64_t compaction_period_;
  std::uint64_t arrivals_since_compaction_ = 0;
  std::uint64_t last_tick_ = 0;
  DecayedCounter total_;
  std::unordered_map<CellCoords, Bcs, CellCoordsHash> cells_;
};

}  // namespace spot

#endif  // SPOT_GRID_BASE_GRID_H_
