#include "grid/partition.h"

#include <algorithm>
#include <cmath>

namespace spot {

namespace {
constexpr double kMinRange = 1e-12;
}  // namespace

Partition::Partition(int num_dims, int cells_per_dim, double lo, double hi)
    : Partition(std::vector<double>(static_cast<std::size_t>(num_dims), lo),
                std::vector<double>(static_cast<std::size_t>(num_dims), hi),
                cells_per_dim) {}

Partition::Partition(std::vector<double> lo, std::vector<double> hi,
                     int cells_per_dim)
    : lo_(std::move(lo)),
      hi_(std::move(hi)),
      cells_per_dim_(std::max(1, cells_per_dim)) {
  inv_width_.resize(lo_.size());
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    if (hi_[i] - lo_[i] < kMinRange) hi_[i] = lo_[i] + 1.0;
    inv_width_[i] = static_cast<double>(cells_per_dim_) / (hi_[i] - lo_[i]);
  }
}

Partition Partition::FitToData(const std::vector<std::vector<double>>& data,
                               int cells_per_dim, double margin) {
  if (data.empty()) return Partition(1, cells_per_dim, 0.0, 1.0);
  const std::size_t dims = data.front().size();
  std::vector<double> lo(dims, 0.0);
  std::vector<double> hi(dims, 0.0);
  for (std::size_t d = 0; d < dims; ++d) {
    double mn = data.front()[d];
    double mx = mn;
    for (const auto& row : data) {
      mn = std::min(mn, row[d]);
      mx = std::max(mx, row[d]);
    }
    const double range = std::max(mx - mn, kMinRange);
    lo[d] = mn - margin * range;
    hi[d] = mx + margin * range;
  }
  return Partition(std::move(lo), std::move(hi), cells_per_dim);
}

double Partition::CellWidth(int dim) const {
  const std::size_t d = static_cast<std::size_t>(dim);
  return (hi_[d] - lo_[d]) / static_cast<double>(cells_per_dim_);
}

std::uint32_t Partition::IntervalIndex(int dim, double value) const {
  const std::size_t d = static_cast<std::size_t>(dim);
  const double scaled = (value - lo_[d]) * inv_width_[d];
  if (scaled <= 0.0) return 0;
  const std::uint32_t idx = static_cast<std::uint32_t>(scaled);
  const std::uint32_t last = static_cast<std::uint32_t>(cells_per_dim_ - 1);
  return idx > last ? last : idx;
}

CellCoords Partition::BaseCell(const std::vector<double>& point) const {
  CellCoords coords;
  BaseCellInto(point, &coords);
  return coords;
}

void Partition::BaseCellInto(const std::vector<double>& point,
                             CellCoords* out) const {
  out->resize(lo_.size());
  for (std::size_t d = 0; d < lo_.size(); ++d) {
    (*out)[d] = IntervalIndex(static_cast<int>(d), point[d]);
  }
}

CellCoords Partition::ProjectedCell(const std::vector<double>& point,
                                    const Subspace& s) const {
  CellCoords coords;
  coords.reserve(static_cast<std::size_t>(s.Dimension()));
  for (int d : s.Indices()) {
    coords.push_back(IntervalIndex(d, point[static_cast<std::size_t>(d)]));
  }
  return coords;
}

CellCoords Partition::ProjectBaseCell(const CellCoords& base,
                                      const Subspace& s) const {
  CellCoords coords;
  coords.reserve(static_cast<std::size_t>(s.Dimension()));
  for (int d : s.Indices()) {
    coords.push_back(base[static_cast<std::size_t>(d)]);
  }
  return coords;
}

}  // namespace spot
