#ifndef SPOT_GRID_PCS_H_
#define SPOT_GRID_PCS_H_

namespace spot {

/// Projected Cell Summary (paper, Definition 2).
///
/// PCS(c, s) = (RD, IRSD) for a cell c of subspace s:
///
/// * RD — Relative Density: the cell's decayed count relative to the
///   count-weighted average cell mass of the subspace,
///   RD = D_c * W / sum_i(D_i^2). RD << 1 marks a sparse cell.
///   (Relative-to-average rather than relative-to-uniform keeps RD
///   comparable across subspace dimensionalities, and count-weighting makes
///   it robust to nearly-empty decayed cells; see DESIGN.md Section 3.3.)
/// * IRSD — Inverse Relative Standard Deviation: mean over the retained
///   dimensions of sigma_uniform / sigma_cell, where sigma_uniform =
///   cell_width / sqrt(12) is the spread of a uniform distribution over the
///   cell. IRSD is ~1 for uniformly spread content, large for tightly
///   clustered content, 0 when the cell holds fewer than 2 (decayed) points,
///   and capped at kIrsdCap.
///
/// Small RD *and* small IRSD together indicate a sparse projected cell — the
/// signature of a projected outlier.
struct Pcs {
  /// Cap applied to IRSD so near-zero spreads do not produce infinities.
  static constexpr double kIrsdCap = 100.0;

  double rd = 0.0;
  double irsd = 0.0;

  /// Decayed count of the cell (not part of the paper's pair, but needed by
  /// callers to reason about evidence mass).
  double count = 0.0;

  /// The outlier-ness check of the detection stage: both measures at or
  /// under their thresholds.
  bool IsSparse(double rd_threshold, double irsd_threshold) const {
    return rd <= rd_threshold && irsd <= irsd_threshold;
  }
};

}  // namespace spot

#endif  // SPOT_GRID_PCS_H_
