#include "grid/projected_grid.h"

#include <cmath>
#include <cstdint>

namespace spot {

void ProjectedCellStats::DecayTo(std::uint64_t tick, const DecayModel& model) {
  if (tick <= last_tick) return;
  const double factor = model.WeightAtAge(tick - last_tick);
  if (factor != 1.0) {
    count *= factor;
    for (double& v : ls) v *= factor;
    for (double& v : ss) v *= factor;
  }
  last_tick = tick;
}

ProjectedGrid::ProjectedGrid(Subspace subspace, const Partition* partition,
                             DecayModel model, double prune_threshold,
                             std::uint64_t compaction_period)
    : subspace_(subspace),
      dims_(subspace.Indices()),
      partition_(partition),
      model_(model),
      prune_threshold_(prune_threshold),
      compaction_period_(compaction_period) {
  sigma_uniform_.reserve(dims_.size());
  for (int d : dims_) {
    sigma_uniform_.push_back(partition_->CellWidth(d) / std::sqrt(12.0));
  }
}

double ProjectedGrid::SumSqAt(std::uint64_t tick) const {
  if (tick <= sumsq_tick_) return sumsq_;
  // Squared counts decay twice as fast as counts.
  return sumsq_ * model_.WeightAtAge(2 * (tick - sumsq_tick_));
}

void ProjectedGrid::Add(const std::vector<double>& point, std::uint64_t tick) {
  last_tick_ = tick;
  sumsq_ = SumSqAt(tick);
  sumsq_tick_ = tick;

  CellCoords coords;
  coords.reserve(dims_.size());
  for (int d : dims_) {
    coords.push_back(
        partition_->IntervalIndex(d, point[static_cast<std::size_t>(d)]));
  }
  auto [it, inserted] = cells_.try_emplace(std::move(coords));
  ProjectedCellStats& cell = it->second;
  if (inserted) {
    cell.ls.assign(dims_.size(), 0.0);
    cell.ss.assign(dims_.size(), 0.0);
    cell.last_tick = tick;
  }
  cell.DecayTo(tick, model_);
  const double old_count = cell.count;
  cell.count += 1.0;
  sumsq_ += cell.count * cell.count - old_count * old_count;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const double v = point[static_cast<std::size_t>(dims_[i])];
    cell.ls[i] += v;
    cell.ss[i] += v * v;
  }
  if (compaction_period_ != 0 &&
      ++arrivals_since_compaction_ >= compaction_period_) {
    Compact(tick);
    arrivals_since_compaction_ = 0;
  }
}

Pcs ProjectedGrid::Query(const std::vector<double>& point,
                         double total_weight) const {
  CellCoords coords;
  coords.reserve(dims_.size());
  for (int d : dims_) {
    coords.push_back(
        partition_->IntervalIndex(d, point[static_cast<std::size_t>(d)]));
  }
  return QueryCoords(coords, total_weight);
}

Pcs ProjectedGrid::QueryCoords(const CellCoords& coords,
                               double total_weight) const {
  auto it = cells_.find(coords);
  if (it == cells_.end()) return Pcs{};
  ProjectedCellStats cell = it->second;  // copy: decay without mutating
  cell.DecayTo(last_tick_, model_);
  return ComputePcs(cell, total_weight);
}

Pcs ProjectedGrid::ComputePcs(const ProjectedCellStats& cell,
                              double total_weight) const {
  Pcs pcs;
  pcs.count = cell.count;
  if (cell.count <= 0.0 || total_weight <= 0.0) return pcs;

  // RD: density relative to the count-weighted average cell mass.
  const double sumsq = SumSqAt(last_tick_);
  pcs.rd = sumsq > 0.0 ? cell.count * total_weight / sumsq : 0.0;

  // IRSD: 0 when fewer than 2 decayed points (no spread evidence).
  if (cell.count < 2.0) {
    pcs.irsd = 0.0;
    return pcs;
  }
  double irsd_sum = 0.0;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const double mean = cell.ls[i] / cell.count;
    const double var = cell.ss[i] / cell.count - mean * mean;
    const double sigma = var > 0.0 ? std::sqrt(var) : 0.0;
    const double su = sigma_uniform_[i];
    const double ratio = su / (sigma + 0.01 * su);
    irsd_sum += ratio > Pcs::kIrsdCap ? Pcs::kIrsdCap : ratio;
  }
  pcs.irsd = irsd_sum / static_cast<double>(dims_.size());
  return pcs;
}

bool ProjectedGrid::IsClusterFringe(const CellCoords& coords,
                                    double cell_count, double factor) const {
  const double heavy = factor * (cell_count > 1.0 ? cell_count : 1.0);
  const std::uint32_t max_coord =
      static_cast<std::uint32_t>(partition_->cells_per_dim() - 1);
  auto neighbor_is_heavy = [&](const CellCoords& c) {
    auto it = cells_.find(c);
    if (it == cells_.end()) return false;
    ProjectedCellStats cell = it->second;
    cell.DecayTo(last_tick_, model_);
    return cell.count >= heavy;
  };

  const std::size_t n = coords.size();
  if (n <= 3) {
    // Full Moore neighborhood via odometer over {-1, 0, +1}^n.
    std::vector<int> offset(n, -1);
    for (;;) {
      bool all_zero = true;
      bool in_range = true;
      CellCoords probe(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (offset[i] != 0) all_zero = false;
        const std::int64_t v =
            static_cast<std::int64_t>(coords[i]) + offset[i];
        if (v < 0 || v > static_cast<std::int64_t>(max_coord)) {
          in_range = false;
          break;
        }
        probe[i] = static_cast<std::uint32_t>(v);
      }
      if (!all_zero && in_range && neighbor_is_heavy(probe)) return true;
      // Advance the odometer.
      std::size_t pos = 0;
      while (pos < n && offset[pos] == 1) {
        offset[pos] = -1;
        ++pos;
      }
      if (pos == n) break;
      ++offset[pos];
    }
    return false;
  }

  // High-dimensional subspaces: axis-aligned neighbors only.
  for (std::size_t i = 0; i < n; ++i) {
    for (int delta : {-1, 1}) {
      const std::int64_t v = static_cast<std::int64_t>(coords[i]) + delta;
      if (v < 0 || v > static_cast<std::int64_t>(max_coord)) continue;
      CellCoords probe = coords;
      probe[i] = static_cast<std::uint32_t>(v);
      if (neighbor_is_heavy(probe)) return true;
    }
  }
  return false;
}

std::size_t ProjectedGrid::Compact(std::uint64_t tick) {
  std::size_t removed = 0;
  double sumsq = 0.0;
  for (auto it = cells_.begin(); it != cells_.end();) {
    ProjectedCellStats& cell = it->second;
    cell.DecayTo(tick, model_);
    if (cell.count < prune_threshold_) {
      it = cells_.erase(it);
      ++removed;
    } else {
      sumsq += cell.count * cell.count;
      ++it;
    }
  }
  // Sweeping visits every cell anyway: recompute the squared-count sum
  // exactly, cancelling any accumulated floating-point drift.
  sumsq_ = sumsq;
  sumsq_tick_ = tick;
  if (tick > last_tick_) last_tick_ = tick;
  return removed;
}

}  // namespace spot
