#include "grid/projected_grid.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "core/checkpoint.h"

namespace spot {

ProjectedGrid::ProjectedGrid(Subspace subspace, const Partition* partition,
                             DecayModel model, double prune_threshold,
                             std::uint64_t compaction_period)
    : subspace_(subspace),
      dims_(subspace.Indices()),
      partition_(partition),
      model_(model),
      prune_threshold_(prune_threshold),
      compaction_period_(compaction_period),
      stride_(2 * subspace.Indices().size() + 2),
      index_(subspace.Indices().size()) {
  sigma_uniform_.reserve(dims_.size());
  for (int d : dims_) {
    sigma_uniform_.push_back(partition_->CellWidth(d) / std::sqrt(12.0));
  }
  coords_scratch_.resize(dims_.size());
}

double ProjectedGrid::SumSqAt(std::uint64_t tick) const {
  if (tick <= sumsq_tick_) return sumsq_;
  // Squared counts decay twice as fast as counts.
  return sumsq_ * model_.WeightAtAge(2 * (tick - sumsq_tick_));
}

void ProjectedGrid::BinPoint(const std::vector<double>& point) {
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    coords_scratch_[i] = partition_->IntervalIndex(
        dims_[i], point[static_cast<std::size_t>(dims_[i])]);
  }
}

void ProjectedGrid::ProjectBase(const CellCoords& base) {
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    coords_scratch_[i] = base[static_cast<std::size_t>(dims_[i])];
  }
}

void ProjectedGrid::DecayRecord(double* rec, std::uint64_t tick) const {
  const std::uint64_t rec_tick = static_cast<std::uint64_t>(rec[TickOff()]);
  if (tick <= rec_tick) return;
  const double factor = model_.WeightAtAge(tick - rec_tick);
  if (factor != 1.0) {
    // count + ls + ss occupy the first 2k+1 doubles of the record.
    for (std::size_t i = 0; i < TickOff(); ++i) rec[i] *= factor;
  }
  rec[TickOff()] = static_cast<double>(tick);
}

std::uint32_t ProjectedGrid::UpsertSlot(const CellCoords& coords,
                                        std::uint64_t hash,
                                        std::uint64_t tick) {
  ++hash_probes_;
  // Candidate slot chosen before the insert so the index stores the final
  // value in one pass; it is only consumed when the key is new.
  const std::uint32_t candidate =
      free_slots_.empty() ? static_cast<std::uint32_t>(slab_.size() / stride_)
                          : free_slots_.back();
  const auto [slot, inserted] = index_.Insert(coords.data(), hash, candidate);
  if (!inserted) return slot;
  if (!free_slots_.empty()) {
    free_slots_.pop_back();
  } else {
    slab_.resize(slab_.size() + stride_);
  }
  double* rec = Record(slot);
  for (std::size_t i = 0; i < TickOff(); ++i) rec[i] = 0.0;
  rec[TickOff()] = static_cast<double>(tick);
  return slot;
}

double* ProjectedGrid::FoldPoint(const CellCoords& coords, std::uint64_t hash,
                                 const std::vector<double>& point,
                                 std::uint64_t tick) {
  last_tick_ = tick;
  sumsq_ = SumSqAt(tick);
  sumsq_tick_ = tick;

  double* rec = Record(UpsertSlot(coords, hash, tick));
  DecayRecord(rec, tick);
  const double old_count = rec[kCount];
  rec[kCount] += 1.0;
  sumsq_ += rec[kCount] * rec[kCount] - old_count * old_count;
  double* ls = rec + LsOff();
  double* ss = rec + SsOff();
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const double v = point[static_cast<std::size_t>(dims_[i])];
    ls[i] += v;
    ss[i] += v * v;
  }
  return rec;
}

void ProjectedGrid::MaybeCompact(std::uint64_t tick) {
  if (compaction_period_ != 0 &&
      ++arrivals_since_compaction_ >= compaction_period_) {
    Compact(tick);
    arrivals_since_compaction_ = 0;
  }
}

void ProjectedGrid::Add(const std::vector<double>& point,
                        std::uint64_t tick) {
  BinPoint(point);
  FoldPoint(coords_scratch_, index_.Hash(coords_scratch_), point, tick);
  MaybeCompact(tick);
}

void ProjectedGrid::AddAt(const CellCoords& base,
                          const std::vector<double>& point,
                          std::uint64_t tick) {
  ProjectBase(base);
  FoldPoint(coords_scratch_, index_.Hash(coords_scratch_), point, tick);
  MaybeCompact(tick);
}

Pcs ProjectedGrid::AddAndQuery(const std::vector<double>& point,
                               std::uint64_t tick, double total_weight) {
  BinPoint(point);
  return AddAndQueryCoords(coords_scratch_, index_.Hash(coords_scratch_),
                           point, tick, total_weight);
}

Pcs ProjectedGrid::AddAndQueryAt(const CellCoords& base,
                                 const std::vector<double>& point,
                                 std::uint64_t tick, double total_weight) {
  ProjectBase(base);
  return AddAndQueryCoords(coords_scratch_, index_.Hash(coords_scratch_),
                           point, tick, total_weight);
}

Pcs ProjectedGrid::AddAndQueryCoords(const CellCoords& coords,
                                     std::uint64_t hash,
                                     const std::vector<double>& point,
                                     std::uint64_t tick, double total_weight) {
  const Pcs pcs =
      PcsFromRecord(FoldPoint(coords, hash, point, tick), 1.0, total_weight);
  MaybeCompact(tick);
  return pcs;
}

Pcs ProjectedGrid::Query(const std::vector<double>& point,
                         double total_weight) const {
  // Stack-local coordinates: the const query path must not touch the
  // update scratch (see the threading note in the class comment).
  CellCoords coords(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    coords[i] = partition_->IntervalIndex(
        dims_[i], point[static_cast<std::size_t>(dims_[i])]);
  }
  return QueryCoords(coords, total_weight);
}

Pcs ProjectedGrid::QueryCoords(const CellCoords& coords,
                               double total_weight) const {
  ++hash_probes_;
  const std::uint32_t slot = index_.Find(coords.data(), index_.Hash(coords));
  if (slot == FlatIndex::kNoValue) return Pcs{};
  const double* rec = Record(slot);
  const std::uint64_t rec_tick = static_cast<std::uint64_t>(rec[TickOff()]);
  const double factor =
      rec_tick < last_tick_ ? model_.WeightAtAge(last_tick_ - rec_tick) : 1.0;
  return PcsFromRecord(rec, factor, total_weight);
}

Pcs ProjectedGrid::PcsFromRecord(const double* rec, double factor,
                                 double total_weight) const {
  Pcs pcs;
  pcs.count = rec[kCount] * factor;
  if (pcs.count <= 0.0 || total_weight <= 0.0) return pcs;

  // RD: density relative to the count-weighted average cell mass.
  const double sumsq = SumSqAt(last_tick_);
  pcs.rd = sumsq > 0.0 ? pcs.count * total_weight / sumsq : 0.0;

  // IRSD: 0 when fewer than 2 decayed points (no spread evidence). The
  // per-dimension mean and variance are ratios of same-age aggregates, so
  // the decay factor cancels and the stored (stale) values can be used
  // directly.
  if (pcs.count < 2.0) {
    pcs.irsd = 0.0;
    return pcs;
  }
  const double count = rec[kCount];
  const double* ls = rec + LsOff();
  const double* ss = rec + SsOff();
  double irsd_sum = 0.0;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const double mean = ls[i] / count;
    const double var = ss[i] / count - mean * mean;
    const double sigma = var > 0.0 ? std::sqrt(var) : 0.0;
    const double su = sigma_uniform_[i];
    const double ratio = su / (sigma + 0.01 * su);
    irsd_sum += ratio > Pcs::kIrsdCap ? Pcs::kIrsdCap : ratio;
  }
  pcs.irsd = irsd_sum / static_cast<double>(dims_.size());
  return pcs;
}

bool ProjectedGrid::IsClusterFringe(const CellCoords& coords,
                                    double cell_count, double factor) const {
  const double heavy = factor * (cell_count > 1.0 ? cell_count : 1.0);
  const std::uint32_t max_coord =
      static_cast<std::uint32_t>(partition_->cells_per_dim() - 1);
  auto neighbor_is_heavy = [&](const CellCoords& c) {
    ++hash_probes_;
    const std::uint32_t slot = index_.Find(c.data(), index_.Hash(c));
    if (slot == FlatIndex::kNoValue) return false;
    const double* rec = Record(slot);
    const std::uint64_t rec_tick = static_cast<std::uint64_t>(rec[TickOff()]);
    const double decay =
        rec_tick < last_tick_ ? model_.WeightAtAge(last_tick_ - rec_tick)
                              : 1.0;
    return rec[kCount] * decay >= heavy;
  };

  const std::size_t n = coords.size();
  if (n <= 3) {
    // Full Moore neighborhood via odometer over {-1, 0, +1}^n.
    std::vector<int> offset(n, -1);
    for (;;) {
      bool all_zero = true;
      bool in_range = true;
      CellCoords probe(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (offset[i] != 0) all_zero = false;
        const std::int64_t v =
            static_cast<std::int64_t>(coords[i]) + offset[i];
        if (v < 0 || v > static_cast<std::int64_t>(max_coord)) {
          in_range = false;
          break;
        }
        probe[i] = static_cast<std::uint32_t>(v);
      }
      if (!all_zero && in_range && neighbor_is_heavy(probe)) return true;
      // Advance the odometer.
      std::size_t pos = 0;
      while (pos < n && offset[pos] == 1) {
        offset[pos] = -1;
        ++pos;
      }
      if (pos == n) break;
      ++offset[pos];
    }
    return false;
  }

  // High-dimensional subspaces: axis-aligned neighbors only.
  for (std::size_t i = 0; i < n; ++i) {
    for (int delta : {-1, 1}) {
      const std::int64_t v = static_cast<std::int64_t>(coords[i]) + delta;
      if (v < 0 || v > static_cast<std::int64_t>(max_coord)) continue;
      CellCoords probe = coords;
      probe[i] = static_cast<std::uint32_t>(v);
      if (neighbor_is_heavy(probe)) return true;
    }
  }
  return false;
}

std::size_t ProjectedGrid::Compact(std::uint64_t tick) {
  // Backward-shift erasure relocates inline keys, so the sweep is two-pass:
  // decay every record, sum the survivors through their (still stable) key
  // pointers, and only then erase the doomed cells — whose coordinates are
  // the one thing that must be copied out.
  std::vector<CellCoords> doomed;
  std::vector<std::pair<const std::uint32_t*, double>> survivors;
  survivors.reserve(index_.size());
  index_.ForEach([&](const std::uint32_t* key, std::uint32_t slot) {
    double* rec = Record(slot);
    DecayRecord(rec, tick);
    if (rec[kCount] < prune_threshold_) {
      free_slots_.push_back(slot);
      doomed.emplace_back(key, key + index_.key_width());
    } else {
      survivors.emplace_back(key, rec[kCount]);
    }
  });
  // Sweeping visits every cell anyway: recompute the squared-count sum
  // exactly, cancelling any accumulated floating-point drift. The sum runs
  // in sorted-coordinate order, NOT index iteration order: bucket order
  // depends on insertion/erase history, which a checkpoint restore cannot
  // reproduce, and a different FP summation order would break the
  // bit-identical-resume guarantee (DESIGN.md Section 4.3).
  const std::size_t width = index_.key_width();
  std::sort(survivors.begin(), survivors.end(),
            [width](const auto& a, const auto& b) {
              return std::lexicographical_compare(
                  a.first, a.first + width, b.first, b.first + width);
            });
  double sumsq = 0.0;
  for (const auto& [key, count] : survivors) sumsq += count * count;
  sumsq_ = sumsq;
  sumsq_tick_ = tick;
  if (tick > last_tick_) last_tick_ = tick;
  for (const CellCoords& coords : doomed) index_.Erase(coords);
  ++compactions_;
  cells_reclaimed_ += doomed.size();
  return doomed.size();
}

void ProjectedGrid::SaveState(CheckpointWriter& w) const {
  w.U64(subspace_.bits());
  w.U64(last_tick_);
  w.U64(arrivals_since_compaction_);
  w.F64(sumsq_);
  w.U64(sumsq_tick_);
  w.U64(hash_probes_);
  std::vector<std::pair<CellCoords, std::uint32_t>> order;
  order.reserve(index_.size());
  index_.ForEach([&](const std::uint32_t* key, std::uint32_t slot) {
    order.emplace_back(CellCoords(key, key + index_.key_width()), slot);
  });
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.U64(order.size());
  for (const auto& [coords, slot] : order) {
    w.Coords(coords);
    const double* rec = Record(slot);
    for (std::size_t i = 0; i < stride_; ++i) w.F64(rec[i]);
  }
}

bool ProjectedGrid::LoadState(CheckpointReader& r) {
  if (r.U64() != subspace_.bits()) return r.Fail();
  last_tick_ = r.U64();
  arrivals_since_compaction_ = r.U64();
  sumsq_ = r.F64();
  sumsq_tick_ = r.U64();
  hash_probes_ = r.U64();
  const std::uint64_t count = r.U64();
  if (count > (1u << 24)) return r.Fail();  // corrupt count prefix
  index_.Clear();
  slab_.clear();
  free_slots_.clear();
  // Reserve conservatively: a corrupt-but-in-cap count must fail on the
  // per-cell reads below, not abort inside an oversized allocation.
  const std::size_t reserve =
      static_cast<std::size_t>(count < (1u << 20) ? count : (1u << 20));
  index_.Reserve(reserve);
  slab_.reserve(reserve * stride_);
  // The stream is sorted by coordinates (SaveState's canonical order), and
  // slots are assigned densely in that order: restored slab layout — and
  // therefore every later sorted-order fold — is deterministic.
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    CellCoords coords = r.Coords();
    if (coords.size() != dims_.size()) return r.Fail();
    const std::uint32_t slot = static_cast<std::uint32_t>(i);
    slab_.resize(slab_.size() + stride_);
    double* rec = Record(slot);
    for (std::size_t k = 0; k < stride_; ++k) rec[k] = r.F64();
    if (!index_.Insert(coords.data(), index_.Hash(coords), slot).second) {
      return r.Fail();  // duplicate cell: corrupt checkpoint
    }
  }
  return r.ok();
}

}  // namespace spot
