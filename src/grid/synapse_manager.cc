#include "grid/synapse_manager.h"

#include "core/checkpoint.h"
#include "core/detector_events.h"

namespace spot {

namespace {

/// FlatIndex key of a subspace: the 64-bit attribute mask split into two
/// 32-bit words (low word first).
inline void SubspaceKey(const Subspace& s, std::uint32_t out[2]) {
  out[0] = static_cast<std::uint32_t>(s.bits() & 0xFFFFFFFFULL);
  out[1] = static_cast<std::uint32_t>(s.bits() >> 32);
}

}  // namespace

SynapseManager::SynapseManager(Partition partition, DecayModel model,
                               double prune_threshold,
                               std::uint64_t compaction_period)
    : partition_(std::move(partition)),
      model_(model),
      prune_threshold_(prune_threshold),
      compaction_period_(compaction_period),
      base_(partition_, model_, prune_threshold_, compaction_period_),
      by_subspace_(2) {}

std::uint32_t SynapseManager::IndexOf(const Subspace& s) const {
  std::uint32_t key[2];
  SubspaceKey(s, key);
  return by_subspace_.Find(key, FlatIndex::Hash(key, 2));
}

void SynapseManager::Track(const Subspace& s) {
  if (s.IsEmpty() || IsTracked(s)) return;
  ++revision_;
  std::uint32_t key[2];
  SubspaceKey(s, key);
  by_subspace_.Insert(key, FlatIndex::Hash(key, 2),
                      static_cast<std::uint32_t>(grids_.size()));
  grids_.push_back(
      {s, revision_,
       std::make_unique<ProjectedGrid>(s, &partition_, model_,
                                       prune_threshold_,
                                       compaction_period_)});
  if (sink_ != nullptr) {
    DetectorEvent event;
    event.kind = DetectorEventKind::kSubspaceTracked;
    event.tick = revision_;  // == the new grid's serial
    event.subspace = s;
    event.a = grids_.size();
    sink_->OnDetectorEvent(event);
  }
}

void SynapseManager::Untrack(const Subspace& s) {
  std::uint32_t key[2];
  SubspaceKey(s, key);
  const std::uint32_t idx = by_subspace_.Find(key, FlatIndex::Hash(key, 2));
  if (idx == FlatIndex::kNoValue) return;
  ++revision_;
  if (sink_ != nullptr) {
    DetectorEvent event;
    event.kind = DetectorEventKind::kSubspaceUntracked;
    event.tick = revision_;
    event.subspace = s;
    event.a = grids_.size() - 1;
    sink_->OnDetectorEvent(event);
  }
  by_subspace_.Erase(key, FlatIndex::Hash(key, 2));
  if (idx != grids_.size() - 1) {
    grids_[idx] = std::move(grids_.back());
    SubspaceKey(grids_[idx].subspace, key);
    by_subspace_.Assign(key, FlatIndex::Hash(key, 2), idx);
  }
  grids_.pop_back();
}

bool SynapseManager::IsTracked(const Subspace& s) const {
  return IndexOf(s) != FlatIndex::kNoValue;
}

void SynapseManager::Add(const std::vector<double>& point,
                         std::uint64_t tick) {
  partition_.BaseCellInto(point, &base_scratch_);
  base_.AddAt(base_scratch_, point, tick);
  for (auto& entry : grids_) entry.grid->AddAt(base_scratch_, point, tick);
}

void SynapseManager::AddAndQuery(const std::vector<double>& point,
                                 std::uint64_t tick, std::vector<Pcs>* out) {
  partition_.BaseCellInto(point, &base_scratch_);
  base_.AddAt(base_scratch_, point, tick);
  const double total_weight = base_.TotalWeight();
  const std::size_t k = grids_.size();
  out->resize(k);
  if (probe_coords_.size() < k) probe_coords_.resize(k);
  probe_hashes_.resize(k);
  // Pass 1 — project + hash each tracked subspace's coordinates once and
  // prefetch their home buckets: K independent cache misses start flowing
  // before any probe executes.
  for (std::size_t i = 0; i < k; ++i) {
    const ProjectedGrid& grid = *grids_[i].grid;
    grid.ProjectBaseInto(base_scratch_, &probe_coords_[i]);
    probe_hashes_[i] = grid.PrefetchCoords(probe_coords_[i]);
  }
  // Pass 2 — execute the fused update+queries with the staged coords+hash.
  for (std::size_t i = 0; i < k; ++i) {
    (*out)[i] = grids_[i].grid->AddAndQueryCoords(
        probe_coords_[i], probe_hashes_[i], point, tick, total_weight);
  }
}

double SynapseManager::AddBase(const CellCoords& coords, std::uint64_t hash,
                               const std::vector<double>& point,
                               std::uint64_t tick) {
  base_.AddAt(coords, hash, point, tick);
  return base_.TotalWeight();
}

Pcs SynapseManager::Query(const std::vector<double>& point,
                          const Subspace& s) const {
  const std::uint32_t idx = IndexOf(s);
  if (idx == FlatIndex::kNoValue) return Pcs{};
  return grids_[idx].grid->Query(point, base_.TotalWeight());
}

bool SynapseManager::IsClusterFringe(const std::vector<double>& point,
                                     const Subspace& s, double cell_count,
                                     double factor) const {
  const std::uint32_t idx = IndexOf(s);
  if (idx == FlatIndex::kNoValue) return false;
  CellCoords coords;
  const std::vector<int> dims = s.Indices();
  coords.reserve(dims.size());
  for (int d : dims) {
    coords.push_back(
        partition_.IntervalIndex(d, point[static_cast<std::size_t>(d)]));
  }
  return grids_[idx].grid->IsClusterFringe(coords, cell_count, factor);
}

std::vector<Subspace> SynapseManager::TrackedSubspaces() const {
  std::vector<Subspace> out;
  out.reserve(grids_.size());
  for (const auto& entry : grids_) out.push_back(entry.subspace);
  return out;
}

std::size_t SynapseManager::TotalPopulatedCells() const {
  std::size_t total = base_.PopulatedCells();
  for (const auto& entry : grids_) total += entry.grid->PopulatedCells();
  return total;
}

std::size_t SynapseManager::TotalSlabSlots() const {
  std::size_t total = base_.SlabSlots();
  for (const auto& entry : grids_) total += entry.grid->SlabSlots();
  return total;
}

std::size_t SynapseManager::TotalFreeSlots() const {
  std::size_t total = base_.FreeSlots();
  for (const auto& entry : grids_) total += entry.grid->FreeSlots();
  return total;
}

std::uint64_t SynapseManager::TotalCompactions() const {
  std::uint64_t total = base_.compactions();
  for (const auto& entry : grids_) total += entry.grid->compactions();
  return total;
}

std::uint64_t SynapseManager::TotalCellsReclaimed() const {
  std::uint64_t total = base_.cells_reclaimed();
  for (const auto& entry : grids_) total += entry.grid->cells_reclaimed();
  return total;
}

std::size_t SynapseManager::CompactAll(std::uint64_t tick) {
  std::size_t removed = base_.Compact(tick);
  for (auto& entry : grids_) removed += entry.grid->Compact(tick);
  return removed;
}

std::uint64_t SynapseManager::hash_probes() const {
  std::uint64_t total = 0;
  for (const auto& entry : grids_) total += entry.grid->hash_probes();
  return total;
}

void SynapseManager::SaveState(CheckpointWriter& w) const {
  // Decay parameters, for cross-validation at load time: a checkpoint can
  // only be restored into a manager built for the same time model.
  w.U64(model_.omega());
  w.F64(model_.epsilon());
  w.F64(model_.alpha());
  w.U64(revision_);
  base_.SaveState(w);
  w.U64(grids_.size());
  for (const auto& entry : grids_) {
    w.U64(entry.subspace.bits());
    w.U64(entry.serial);
    entry.grid->SaveState(w);
  }
}

bool SynapseManager::LoadState(CheckpointReader& r) {
  if (r.U64() != model_.omega()) return r.Fail();
  if (r.F64() != model_.epsilon()) return r.Fail();
  if (r.F64() != model_.alpha()) return r.Fail();
  revision_ = r.U64();
  if (!base_.LoadState(r)) return false;
  const std::uint64_t count = r.U64();
  if (count > (1u << 24)) return r.Fail();
  grids_.clear();
  by_subspace_.Clear();
  // Reserve conservatively: a corrupt-but-in-cap count must fail on the
  // per-grid reads below, not abort inside an oversized allocation.
  grids_.reserve(
      static_cast<std::size_t>(count < (1u << 16) ? count : (1u << 16)));
  // Subspaces must only retain attributes the partition actually has —
  // the ProjectedGrid constructor indexes partition bounds by retained
  // dimension, so an out-of-range bit would read past them.
  const int num_dims = partition_.num_dims();
  const std::uint64_t valid_mask =
      num_dims >= 64 ? ~0ULL : ((1ULL << num_dims) - 1);
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    const Subspace s(r.U64());
    const std::uint64_t serial = r.U64();
    if (s.IsEmpty() || (s.bits() & ~valid_mask) != 0) return r.Fail();
    std::uint32_t key[2];
    SubspaceKey(s, key);
    if (!by_subspace_
             .Insert(key, FlatIndex::Hash(key, 2),
                     static_cast<std::uint32_t>(grids_.size()))
             .second) {
      return r.Fail();  // duplicate tracked subspace
    }
    grids_.push_back(
        {s, serial,
         std::make_unique<ProjectedGrid>(s, &partition_, model_,
                                         prune_threshold_,
                                         compaction_period_)});
    if (!grids_.back().grid->LoadState(r)) return false;
  }
  return r.ok();
}

}  // namespace spot
