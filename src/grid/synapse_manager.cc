#include "grid/synapse_manager.h"

namespace spot {

SynapseManager::SynapseManager(Partition partition, DecayModel model,
                               double prune_threshold,
                               std::uint64_t compaction_period)
    : partition_(std::move(partition)),
      model_(model),
      prune_threshold_(prune_threshold),
      compaction_period_(compaction_period),
      base_(partition_, model_, prune_threshold_, compaction_period_) {}

void SynapseManager::Track(const Subspace& s) {
  if (s.IsEmpty() || IsTracked(s)) return;
  grids_.emplace(s, std::make_unique<ProjectedGrid>(
                        s, &partition_, model_, prune_threshold_,
                        compaction_period_));
}

void SynapseManager::Untrack(const Subspace& s) { grids_.erase(s); }

bool SynapseManager::IsTracked(const Subspace& s) const {
  return grids_.find(s) != grids_.end();
}

void SynapseManager::Add(const std::vector<double>& point,
                         std::uint64_t tick) {
  base_.Add(point, tick);
  for (auto& [subspace, grid] : grids_) grid->Add(point, tick);
}

Pcs SynapseManager::Query(const std::vector<double>& point,
                          const Subspace& s) const {
  auto it = grids_.find(s);
  if (it == grids_.end()) return Pcs{};
  return it->second->Query(point, base_.TotalWeight());
}

bool SynapseManager::IsClusterFringe(const std::vector<double>& point,
                                     const Subspace& s, double cell_count,
                                     double factor) const {
  auto it = grids_.find(s);
  if (it == grids_.end()) return false;
  CellCoords coords;
  const std::vector<int> dims = s.Indices();
  coords.reserve(dims.size());
  for (int d : dims) {
    coords.push_back(
        partition_.IntervalIndex(d, point[static_cast<std::size_t>(d)]));
  }
  return it->second->IsClusterFringe(coords, cell_count, factor);
}

std::vector<Subspace> SynapseManager::TrackedSubspaces() const {
  std::vector<Subspace> out;
  out.reserve(grids_.size());
  for (const auto& [subspace, grid] : grids_) out.push_back(subspace);
  return out;
}

std::size_t SynapseManager::TotalPopulatedCells() const {
  std::size_t total = base_.PopulatedCells();
  for (const auto& [subspace, grid] : grids_) total += grid->PopulatedCells();
  return total;
}

std::size_t SynapseManager::CompactAll(std::uint64_t tick) {
  std::size_t removed = base_.Compact(tick);
  for (auto& [subspace, grid] : grids_) removed += grid->Compact(tick);
  return removed;
}

}  // namespace spot
