#ifndef SPOT_GRID_FLAT_INDEX_H_
#define SPOT_GRID_FLAT_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace spot {

/// Open-addressing flat hash index from fixed-width `std::uint32_t` keys to
/// `std::uint32_t` values, purpose-built for the synapse hot path
/// (DESIGN.md Section 3.9).
///
/// The three cell/subspace indices SPOT probes once per tracked subspace per
/// arrival used to be `std::unordered_map`, whose per-node allocations and
/// pointer-chasing defeat the contiguous slab the cell records already live
/// in. This index stores keys and values inline in ONE contiguous bucket
/// array:
///
///     bucket b = [ key[0..width) | value ]      (stride = width + 1 u32s)
///
/// so a probe touches exactly one cache line for the common key widths
/// (width <= 14 fits a 64-byte line), with:
///
///  - linear probing over a power-of-two capacity (mask, no modulo);
///  - a strong 64-bit mixer (murmur3-style avalanche per word) computed
///    ONCE per logical operation and reusable across Prefetch/Find/Upsert,
///    which is what lets callers issue `Prefetch(hash)` for a whole batch of
///    probes before executing any of them;
///  - tombstone-free BACKWARD-SHIFT deletion: erasing moves displaced
///    successors back toward their home buckets, so probe chains never
///    accumulate dead entries and lookup cost stays bounded by the load
///    factor alone (capacity doubles before an insert crosses 3/4 load).
///
/// Keys are opaque u32 runs: cell coordinates use their interval indices
/// verbatim; `Subspace` keys split the 64-bit attribute mask into two words.
/// Values are caller-defined (slab slot, dense array index); the all-ones
/// value `kNoValue` is reserved as the empty-bucket marker, which costs
/// nothing because every caller indexes arrays far smaller than 2^32 - 1.
///
/// Iteration order is bucket order, i.e. HASH order: callers that fold
/// floating-point values or serialize state must sort by key first, exactly
/// as they had to with `unordered_map` (see ProjectedGrid::Compact and the
/// checkpoint writers). ForEach visits a stable snapshot only as long as no
/// mutation happens during the walk; erase during iteration is not
/// supported — collect doomed keys, then erase.
class FlatIndex {
 public:
  /// Reserved value marking an empty bucket; never store it.
  static constexpr std::uint32_t kNoValue = 0xFFFFFFFFu;

  /// `key_width`: number of u32 words per key (> 0, fixed for the lifetime).
  explicit FlatIndex(std::size_t key_width, std::size_t min_capacity = 8)
      : width_(key_width), stride_(key_width + 1) {
    Rehash(BucketCountFor(min_capacity));
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t key_width() const { return width_; }

  /// Bucket count (power of two); exposed for load-factor tests.
  std::size_t bucket_count() const { return mask_ + 1; }

  /// Strong 64-bit hash of a `width`-word key: every word is folded through
  /// a murmur3-style avalanche so single-coordinate deltas (the common case
  /// for neighboring grid cells) diffuse across the whole word before the
  /// power-of-two mask truncates it. This replaces the plain FNV-1a the
  /// `unordered_map` era used, whose low-bit clustering linear probing —
  /// unlike chaining — cannot tolerate.
  static std::uint64_t Hash(const std::uint32_t* key, std::size_t width) {
    std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ (width * 0xFF51AFD7ED558CCDULL);
    for (std::size_t i = 0; i < width; ++i) {
      h ^= key[i];
      h *= 0xFF51AFD7ED558CCDULL;
      h ^= h >> 33;
    }
    h *= 0xC4CEB9FE1A85EC53ULL;
    h ^= h >> 33;
    return h;
  }

  std::uint64_t Hash(const std::vector<std::uint32_t>& key) const {
    return Hash(key.data(), width_);
  }

  /// Issues a prefetch for the home bucket of `hash`. Pass 1 of the batch
  /// probe pipeline calls this for every tracked subspace before pass 2
  /// executes any Find/Upsert, so the (almost certain) cache misses of K
  /// independent probes overlap instead of serializing.
  void Prefetch(std::uint64_t hash) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(buckets_.data() + (hash & mask_) * stride_, 1, 3);
#else
    (void)hash;
#endif
  }

  /// Value stored under `key`, or kNoValue. `hash` must be Hash(key, width).
  std::uint32_t Find(const std::uint32_t* key, std::uint64_t hash) const {
    std::size_t b = hash & mask_;
    for (;;) {
      const std::uint32_t* bucket = BucketAt(b);
      if (bucket[width_] == kNoValue) return kNoValue;
      if (KeyEquals(bucket, key)) return bucket[width_];
      b = (b + 1) & mask_;
    }
  }

  std::uint32_t Find(const std::vector<std::uint32_t>& key) const {
    return Find(key.data(), Hash(key.data(), width_));
  }

  /// Inserts `key` with `value` unless present; returns {current value,
  /// inserted}. `hash` must be Hash(key, width). The table only grows when
  /// a genuinely new key would cross the 3/4 load boundary — an upsert of
  /// an existing key (the common hot-path case) never rehashes.
  std::pair<std::uint32_t, bool> Insert(const std::uint32_t* key,
                                        std::uint64_t hash,
                                        std::uint32_t value) {
    for (;;) {
      std::size_t b = hash & mask_;
      for (;;) {
        std::uint32_t* bucket = BucketAt(b);
        if (bucket[width_] == kNoValue) {
          if ((size_ + 1) * 4 > bucket_count() * 3) {
            Rehash(bucket_count() * 2);
            break;  // re-probe against the grown table
          }
          for (std::size_t i = 0; i < width_; ++i) bucket[i] = key[i];
          bucket[width_] = value;
          ++size_;
          return {value, true};
        }
        if (KeyEquals(bucket, key)) return {bucket[width_], false};
        b = (b + 1) & mask_;
      }
    }
  }

  std::pair<std::uint32_t, bool> Insert(const std::vector<std::uint32_t>& key,
                                        std::uint32_t value) {
    return Insert(key.data(), Hash(key.data(), width_), value);
  }

  /// Overwrites the value of an existing key (no-op when absent); returns
  /// whether the key was found.
  bool Assign(const std::uint32_t* key, std::uint64_t hash,
              std::uint32_t value) {
    std::size_t b = hash & mask_;
    for (;;) {
      std::uint32_t* bucket = BucketAt(b);
      if (bucket[width_] == kNoValue) return false;
      if (KeyEquals(bucket, key)) {
        bucket[width_] = value;
        return true;
      }
      b = (b + 1) & mask_;
    }
  }

  /// Removes `key` via backward-shift: every displaced successor of the
  /// vacated bucket is moved back toward its home bucket, so no tombstone is
  /// left and unrelated probe chains crossing the gap stay intact. Returns
  /// whether the key was present.
  bool Erase(const std::uint32_t* key, std::uint64_t hash) {
    std::size_t b = hash & mask_;
    for (;;) {
      std::uint32_t* bucket = BucketAt(b);
      if (bucket[width_] == kNoValue) return false;
      if (KeyEquals(bucket, key)) break;
      b = (b + 1) & mask_;
    }
    // b holds the doomed entry: shift successors back until a bucket that is
    // empty or already home closes the chain.
    std::size_t gap = b;
    std::size_t j = b;
    for (;;) {
      j = (j + 1) & mask_;
      std::uint32_t* bucket = BucketAt(j);
      if (bucket[width_] == kNoValue) break;
      const std::size_t home = Hash(bucket, width_) & mask_;
      // Move j into the gap iff its home bucket lies cyclically at or before
      // the gap (i.e. the gap sits inside j's probe chain).
      if (((j - home) & mask_) >= ((j - gap) & mask_)) {
        std::uint32_t* g = BucketAt(gap);
        for (std::size_t i = 0; i < stride_; ++i) g[i] = bucket[i];
        gap = j;
      }
    }
    BucketAt(gap)[width_] = kNoValue;
    --size_;
    return true;
  }

  bool Erase(const std::vector<std::uint32_t>& key) {
    return Erase(key.data(), Hash(key.data(), width_));
  }

  /// Drops every entry, keeping the current bucket array.
  void Clear() {
    for (std::size_t b = 0; b <= mask_; ++b) BucketAt(b)[width_] = kNoValue;
    size_ = 0;
  }

  /// Grows the bucket array (if needed) to hold `n` entries without
  /// rehashing mid-insertion — checkpoint loads size this up front.
  void Reserve(std::size_t n) {
    const std::size_t want = BucketCountFor(n);
    if (want > bucket_count()) Rehash(want);
  }

  /// Visits every occupied bucket as fn(key pointer, value), in bucket
  /// (hash) order — sort by key before any order-sensitive fold.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t b = 0; b <= mask_; ++b) {
      const std::uint32_t* bucket = BucketAt(b);
      if (bucket[width_] != kNoValue) fn(bucket, bucket[width_]);
    }
  }

 private:
  std::uint32_t* BucketAt(std::size_t b) { return buckets_.data() + b * stride_; }
  const std::uint32_t* BucketAt(std::size_t b) const {
    return buckets_.data() + b * stride_;
  }

  bool KeyEquals(const std::uint32_t* bucket, const std::uint32_t* key) const {
    for (std::size_t i = 0; i < width_; ++i) {
      if (bucket[i] != key[i]) return false;
    }
    return true;
  }

  /// Smallest power-of-two bucket count holding `n` entries under max load
  /// 3/4 (and never below 8).
  static std::size_t BucketCountFor(std::size_t n) {
    std::size_t cap = 8;
    while (n * 4 > cap * 3) cap <<= 1;
    return cap;
  }

  void Rehash(std::size_t new_buckets) {
    std::vector<std::uint32_t> old = std::move(buckets_);
    const std::size_t old_buckets = old.empty() ? 0 : (mask_ + 1);
    buckets_.assign(new_buckets * stride_, 0);
    mask_ = new_buckets - 1;
    for (std::size_t b = 0; b < new_buckets; ++b) {
      BucketAt(b)[width_] = kNoValue;
    }
    for (std::size_t b = 0; b < old_buckets; ++b) {
      const std::uint32_t* bucket = old.data() + b * stride_;
      if (bucket[width_] == kNoValue) continue;
      std::size_t dst = Hash(bucket, width_) & mask_;
      while (BucketAt(dst)[width_] != kNoValue) dst = (dst + 1) & mask_;
      std::uint32_t* d = BucketAt(dst);
      for (std::size_t i = 0; i < stride_; ++i) d[i] = bucket[i];
    }
  }

  std::size_t width_;
  std::size_t stride_;               // u32 words per bucket: width_ + 1
  std::size_t mask_ = 0;             // bucket_count - 1 (power of two)
  std::size_t size_ = 0;
  std::vector<std::uint32_t> buckets_;  // inline [key | value] records
};

}  // namespace spot

#endif  // SPOT_GRID_FLAT_INDEX_H_
