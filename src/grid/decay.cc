#include "grid/decay.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/checkpoint.h"

namespace spot {

DecayModel::DecayModel(std::uint64_t omega, double epsilon) {
  omega_ = std::max<std::uint64_t>(1, omega);
  epsilon_ = std::clamp(epsilon, 1e-12, 0.999999);
  alpha_ = SolveAlpha(omega_, epsilon_);
}

DecayModel DecayModel::None() {
  DecayModel m;
  m.omega_ = 0;
  m.epsilon_ = 0.0;
  m.alpha_ = 1.0;
  return m;
}

double DecayModel::WeightAtAge(std::uint64_t age) const {
  if (alpha_ >= 1.0) return 1.0;
  // alpha^age via exp/log is precise enough and O(1); std::pow handles the
  // integral exponent internally.
  return std::pow(alpha_, static_cast<double>(age));
}

double DecayModel::SteadyStateWeight() const {
  if (alpha_ >= 1.0) return std::numeric_limits<double>::infinity();
  return 1.0 / (1.0 - alpha_);
}

double DecayModel::SolveAlpha(std::uint64_t omega, double epsilon) {
  // f(alpha) = alpha^omega / (1 - alpha) - epsilon is strictly increasing on
  // (0, 1): numerator grows, denominator shrinks. Bisect.
  const double w = static_cast<double>(omega);
  auto f = [&](double a) {
    return std::exp(w * std::log(a)) / (1.0 - a) - epsilon;
  };
  double lo = 1e-9;
  double hi = 1.0 - 1e-12;
  if (f(hi) < 0.0) return hi;  // epsilon so large that no decay is needed
  if (f(lo) > 0.0) return lo;  // omega == tiny and epsilon tiny: max decay
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (f(mid) < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

void DecayedCounter::Observe(std::uint64_t tick) {
  if (!seen_any_) {
    weight_ = 1.0;
    last_tick_ = tick;
    seen_any_ = true;
    return;
  }
  const std::uint64_t delta = tick >= last_tick_ ? tick - last_tick_ : 0;
  weight_ = weight_ * model_->WeightAtAge(delta) + 1.0;
  last_tick_ = tick;
}

double DecayedCounter::WeightAt(std::uint64_t tick) const {
  if (!seen_any_) return 0.0;
  const std::uint64_t delta = tick >= last_tick_ ? tick - last_tick_ : 0;
  return weight_ * model_->WeightAtAge(delta);
}

void DecayedCounter::SaveState(CheckpointWriter& w) const {
  w.F64(weight_);
  w.U64(last_tick_);
  w.Bool(seen_any_);
}

bool DecayedCounter::LoadState(CheckpointReader& r) {
  weight_ = r.F64();
  last_tick_ = r.U64();
  seen_any_ = r.Bool();
  return r.ok();
}

}  // namespace spot
