#ifndef SPOT_GRID_BCS_H_
#define SPOT_GRID_BCS_H_

#include <cstdint>
#include <vector>

#include "grid/decay.h"

namespace spot {

class CheckpointReader;
class CheckpointWriter;

/// Base Cell Summary (paper, Definition 1).
///
/// For a base cell c, BCS(c) = (D_c, LS_c, SS_c): the decayed point count,
/// the per-dimension decayed sum, and the per-dimension decayed squared sum
/// of the points that fell into c. All three components decay by the same
/// geometric factor under the (omega, epsilon) time model, which preserves
/// the additive / incremental properties the paper relies on: a BCS can be
/// updated per arrival in O(dims) and two BCSs over disjoint point sets can
/// be merged by component-wise addition (after aligning their tick stamps).
class Bcs {
 public:
  Bcs() = default;

  /// An empty summary for a cell holding `num_dims`-dimensional points.
  explicit Bcs(int num_dims);

  /// Folds one point in at tick `tick`, decaying the stored aggregates
  /// first. Ticks must be non-decreasing across calls.
  void Add(const std::vector<double>& point, std::uint64_t tick,
           const DecayModel& model);

  /// Decays this summary to tick `tick` in place (no point added).
  void DecayTo(std::uint64_t tick, const DecayModel& model);

  /// Merges `other` into this summary; both are first decayed to `tick`.
  void Merge(const Bcs& other, std::uint64_t tick, const DecayModel& model);

  /// Decayed count as of tick `tick` (no mutation).
  double CountAt(std::uint64_t tick, const DecayModel& model) const;

  /// Decayed count at the summary's own last-update tick.
  double count() const { return count_; }

  /// Per-dimension decayed linear sum at the last-update tick.
  const std::vector<double>& linear_sum() const { return ls_; }

  /// Per-dimension decayed squared sum at the last-update tick.
  const std::vector<double>& squared_sum() const { return ss_; }

  std::uint64_t last_tick() const { return last_tick_; }
  int num_dims() const { return static_cast<int>(ls_.size()); }

  /// Mean of dimension `dim` over the (decayed) cell content; 0 when empty.
  double MeanOf(int dim) const;

  /// Population standard deviation of dimension `dim` over the cell content;
  /// 0 when the decayed count is below 2 (no spread evidence).
  double StdDevOf(int dim) const;

  /// Checkpointing: all aggregates plus the tick stamp round-trip exactly
  /// (doubles are stored as raw bit patterns).
  void SaveState(CheckpointWriter& w) const;
  bool LoadState(CheckpointReader& r);

 private:
  double count_ = 0.0;
  std::vector<double> ls_;
  std::vector<double> ss_;
  std::uint64_t last_tick_ = 0;
};

}  // namespace spot

#endif  // SPOT_GRID_BCS_H_
