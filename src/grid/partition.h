#ifndef SPOT_GRID_PARTITION_H_
#define SPOT_GRID_PARTITION_H_

#include <cstdint>
#include <vector>

#include "subspace/subspace.h"

namespace spot {

/// Coordinates of a cell: one interval index per retained attribute, in
/// ascending attribute order.
using CellCoords = std::vector<std::uint32_t>;

/// Hash functor for CellCoords (FNV-1a over the raw indices).
struct CellCoordsHash {
  std::size_t operator()(const CellCoords& c) const {
    std::uint64_t h = 1469598103934665603ULL;
    for (std::uint32_t v : c) {
      h ^= v;
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Equi-width partition of the (clamped) attribute domain.
///
/// Quantization of BCS and PCS "entails an equi-width partition of domain
/// space" (paper, Section II-B): every attribute's range [lo_i, hi_i] is cut
/// into `cells_per_dim` equal intervals. Values outside the declared range
/// are clamped into the boundary interval, so a stream that wanders slightly
/// outside its training range still maps to valid cells.
class Partition {
 public:
  /// Uniform domain [lo, hi] for all `num_dims` attributes.
  Partition(int num_dims, int cells_per_dim, double lo, double hi);

  /// Per-attribute domains. `lo.size() == hi.size()` defines the
  /// dimensionality; any degenerate range (hi <= lo) is widened to unit size.
  Partition(std::vector<double> lo, std::vector<double> hi, int cells_per_dim);

  /// Builds a partition whose per-attribute ranges cover `data` with a
  /// small relative margin (so in-stream values near training extremes do
  /// not all clamp to the boundary interval).
  static Partition FitToData(const std::vector<std::vector<double>>& data,
                             int cells_per_dim, double margin = 0.05);

  int num_dims() const { return static_cast<int>(lo_.size()); }
  int cells_per_dim() const { return cells_per_dim_; }
  double lo(int dim) const { return lo_[static_cast<std::size_t>(dim)]; }
  double hi(int dim) const { return hi_[static_cast<std::size_t>(dim)]; }

  /// Width of one interval along `dim`.
  double CellWidth(int dim) const;

  /// Interval index of `value` along `dim`, clamped to [0, cells_per_dim).
  std::uint32_t IntervalIndex(int dim, double value) const;

  /// Base-cell coordinates of a full-dimensional point (paper: "a base cell
  /// is a cell in hypercube with the finest granularity").
  CellCoords BaseCell(const std::vector<double>& point) const;

  /// Allocation-free BaseCell: writes into `out` (resized as needed). The
  /// batch detection path bins each point exactly once through this and
  /// projects per subspace by index selection.
  void BaseCellInto(const std::vector<double>& point, CellCoords* out) const;

  /// Projected-cell coordinates of `point` in subspace `s`: interval indices
  /// of the retained attributes only, ascending attribute order.
  CellCoords ProjectedCell(const std::vector<double>& point,
                           const Subspace& s) const;

  /// Projects base-cell coordinates onto subspace `s` without re-quantizing.
  CellCoords ProjectBaseCell(const CellCoords& base, const Subspace& s) const;

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
  std::vector<double> inv_width_;  // cells_per_dim / (hi - lo), cached
  int cells_per_dim_;
};

}  // namespace spot

#endif  // SPOT_GRID_PARTITION_H_
