#include "grid/bcs.h"

#include <cmath>

#include "core/checkpoint.h"

namespace spot {

Bcs::Bcs(int num_dims)
    : ls_(static_cast<std::size_t>(num_dims), 0.0),
      ss_(static_cast<std::size_t>(num_dims), 0.0) {}

void Bcs::Add(const std::vector<double>& point, std::uint64_t tick,
              const DecayModel& model) {
  if (ls_.empty()) {
    ls_.assign(point.size(), 0.0);
    ss_.assign(point.size(), 0.0);
  }
  DecayTo(tick, model);
  count_ += 1.0;
  for (std::size_t d = 0; d < point.size() && d < ls_.size(); ++d) {
    ls_[d] += point[d];
    ss_[d] += point[d] * point[d];
  }
}

void Bcs::DecayTo(std::uint64_t tick, const DecayModel& model) {
  if (tick <= last_tick_) {
    last_tick_ = tick > last_tick_ ? tick : last_tick_;
    return;
  }
  const double factor = model.WeightAtAge(tick - last_tick_);
  if (factor != 1.0) {
    count_ *= factor;
    for (double& v : ls_) v *= factor;
    for (double& v : ss_) v *= factor;
  }
  last_tick_ = tick;
}

void Bcs::Merge(const Bcs& other, std::uint64_t tick, const DecayModel& model) {
  Bcs aligned = other;
  aligned.DecayTo(tick, model);
  DecayTo(tick, model);
  if (ls_.empty()) {
    ls_.assign(aligned.ls_.size(), 0.0);
    ss_.assign(aligned.ss_.size(), 0.0);
  }
  count_ += aligned.count_;
  for (std::size_t d = 0; d < ls_.size() && d < aligned.ls_.size(); ++d) {
    ls_[d] += aligned.ls_[d];
    ss_[d] += aligned.ss_[d];
  }
}

double Bcs::CountAt(std::uint64_t tick, const DecayModel& model) const {
  if (tick <= last_tick_) return count_;
  return count_ * model.WeightAtAge(tick - last_tick_);
}

void Bcs::SaveState(CheckpointWriter& w) const {
  w.F64(count_);
  w.U64(last_tick_);
  w.U64(ls_.size());
  for (double v : ls_) w.F64(v);
  for (double v : ss_) w.F64(v);
}

bool Bcs::LoadState(CheckpointReader& r) {
  count_ = r.F64();
  last_tick_ = r.U64();
  const std::uint64_t dims = r.U64();
  if (dims > (1u << 20)) return r.Fail();
  ls_.resize(static_cast<std::size_t>(dims));
  ss_.resize(static_cast<std::size_t>(dims));
  for (double& v : ls_) v = r.F64();
  for (double& v : ss_) v = r.F64();
  return r.ok();
}

double Bcs::MeanOf(int dim) const {
  if (count_ <= 0.0) return 0.0;
  return ls_[static_cast<std::size_t>(dim)] / count_;
}

double Bcs::StdDevOf(int dim) const {
  if (count_ < 2.0) return 0.0;
  const std::size_t d = static_cast<std::size_t>(dim);
  const double mean = ls_[d] / count_;
  const double var = ss_[d] / count_ - mean * mean;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

}  // namespace spot
