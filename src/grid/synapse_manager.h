#ifndef SPOT_GRID_SYNAPSE_MANAGER_H_
#define SPOT_GRID_SYNAPSE_MANAGER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "grid/base_grid.h"
#include "grid/decay.h"
#include "grid/flat_index.h"
#include "grid/partition.h"
#include "grid/pcs.h"
#include "grid/projected_grid.h"
#include "subspace/subspace.h"

namespace spot {

class CheckpointReader;
class CheckpointWriter;
class DetectorEventSink;

/// Owns the complete set of data synapses: the BaseGrid (BCS hypercube) plus
/// one ProjectedGrid per tracked SST subspace, all sharing one partition and
/// one (omega, epsilon) decay model.
///
/// This is the state the paper's detection stage updates per arrival
/// ("data synapses (BCS and PCS) are first updated dynamically") and then
/// queries ("retrieve PCS of the projected cell to which each data belongs
/// in subspace of SST").
///
/// Tracked grids live in a dense vector with a stable, deterministic order
/// (insertion order, perturbed only by Untrack's swap-remove); TrackedSubspaces()
/// reports that order and AddAndQuery() fills its output in it, so callers
/// can iterate the grids without any per-subspace hash lookup.
class SynapseManager {
 public:
  SynapseManager(Partition partition, DecayModel model,
                 double prune_threshold = 1e-3,
                 std::uint64_t compaction_period = 4096);

  // Projected grids hold pointers into partition_, so the manager is pinned
  // in memory: neither copyable nor movable. Hold it via unique_ptr when a
  // movable handle is needed.
  SynapseManager(const SynapseManager&) = delete;
  SynapseManager& operator=(const SynapseManager&) = delete;
  SynapseManager(SynapseManager&&) = delete;
  SynapseManager& operator=(SynapseManager&&) = delete;

  /// Starts tracking a subspace (idempotent). New grids start empty; their
  /// summaries fill in as the stream flows.
  void Track(const Subspace& s);

  /// Stops tracking a subspace and frees its grid.
  void Untrack(const Subspace& s);

  bool IsTracked(const Subspace& s) const;

  /// Folds one point into the base grid and every tracked projected grid,
  /// advancing the clock to `tick` (non-decreasing).
  void Add(const std::vector<double>& point, std::uint64_t tick);

  /// Fused update + query, the detection hot path: folds `point` into the
  /// base grid and every tracked grid, and fills `out` with the PCS of the
  /// point's cell in each tracked subspace — out[i] corresponds to
  /// TrackedSubspaces()[i]. The point is binned into base-cell coordinates
  /// exactly once; each grid projects those coordinates by index selection
  /// and serves update + query from a single slot lookup, so the whole call
  /// performs exactly one cell-index hash probe per tracked subspace where
  /// Add() followed by per-subspace Query() performs two (plus a grid-table
  /// probe).
  ///
  /// The probe loop runs as a two-pass pipeline: pass 1 projects and hashes
  /// every tracked subspace's coordinates and prefetches their index
  /// buckets; pass 2 executes the fused update+queries against
  /// already-inbound cache lines — the K independent probe misses overlap
  /// instead of serializing (DESIGN.md Section 3.9).
  void AddAndQuery(const std::vector<double>& point, std::uint64_t tick,
                   std::vector<Pcs>* out);

  /// Bins `point` into base-cell coordinates (allocation-free once `out`
  /// has capacity). The sharded engine bins each point exactly once and
  /// shares the coordinates across every shard's grids.
  void BinBase(const std::vector<double>& point, CellCoords* out) const {
    partition_.BaseCellInto(point, out);
  }

  /// Folds one point into the base grid only — the sharded engine fans the
  /// projected-grid updates out to shard workers — and returns the decayed
  /// total stream weight right after the fold, which is the authoritative W
  /// that every subspace query for this point must use. `hash` is the value
  /// BaseGrid::PrefetchCoords staged one point ahead, so the batch path
  /// hashes each base cell exactly once.
  double AddBase(const CellCoords& coords, std::uint64_t hash,
                 const std::vector<double>& point, std::uint64_t tick);

  /// PCS of `point`'s cell in tracked subspace `s` (PCS{} if untracked).
  Pcs Query(const std::vector<double>& point, const Subspace& s) const;

  /// Fringe test for `point`'s cell in `s` (see
  /// ProjectedGrid::IsClusterFringe). False when `s` is untracked.
  bool IsClusterFringe(const std::vector<double>& point, const Subspace& s,
                       double cell_count, double factor) const;

  /// Decayed total stream weight at the current tick.
  double TotalWeight() const { return base_.TotalWeight(); }

  std::uint64_t last_tick() const { return base_.last_tick(); }
  const Partition& partition() const { return partition_; }
  const DecayModel& decay_model() const { return model_; }
  const BaseGrid& base_grid() const { return base_; }

  /// Tracked subspaces in dense (iteration) order — the order AddAndQuery
  /// fills its output in.
  std::vector<Subspace> TrackedSubspaces() const;

  std::size_t NumTracked() const { return grids_.size(); }

  /// Grid and subspace at dense index `i` (i < NumTracked()). The mutable
  /// grid pointer is what SynapseShard views borrow; it is invalidated by
  /// Untrack of that subspace (shard views resync via revision()).
  ProjectedGrid* GridAt(std::size_t i) { return grids_[i].grid.get(); }
  const Subspace& SubspaceAt(std::size_t i) const {
    return grids_[i].subspace;
  }

  /// Unique, monotonically increasing id of the grid at dense index `i`,
  /// assigned at Track time. Lets shard views tell a re-tracked (fresh,
  /// empty) grid apart from the grid they last saw for the same subspace
  /// even when the allocator reuses the old grid's address.
  std::uint64_t SerialAt(std::size_t i) const { return grids_[i].serial; }

  /// Bumped by every Track/Untrack that changes the tracked set. Shard
  /// views compare revisions to decide when to resync their grid slices.
  std::uint64_t revision() const { return revision_; }

  /// Total populated projected cells across all tracked grids (memory
  /// proxy reported by the scalability experiments).
  std::size_t TotalPopulatedCells() const;

  /// Slab occupancy across the base grid and every tracked grid: total
  /// allocated record slots and how many of them sit on free lists.
  /// Scrape-time gauges (DESIGN.md Section 10) — never on the hot path.
  std::size_t TotalSlabSlots() const;
  std::size_t TotalFreeSlots() const;

  /// Compaction sweeps run (and cells they reclaimed) across the base grid
  /// and every tracked grid since construction. Monotone except when
  /// Untrack frees a grid, taking its contribution with it — consumers
  /// sampling deltas (the service's journal) clamp at zero.
  std::uint64_t TotalCompactions() const;
  std::uint64_t TotalCellsReclaimed() const;

  /// Attaches an observability sink (borrowed; nullptr detaches):
  /// Track/Untrack emit kSubspaceTracked/kSubspaceUntracked with the grid
  /// serial / revision. LoadState rebuilds the tracked set without events.
  /// Pure reporting; grid state never depends on the sink.
  void set_event_sink(DetectorEventSink* sink) { sink_ = sink; }

  /// Compacts the base grid and every projected grid at `tick`.
  std::size_t CompactAll(std::uint64_t tick);

  /// Cell-index hash probes performed by the tracked grids so far (see
  /// ProjectedGrid::hash_probes); the fused-vs-unfused micro-bench reads
  /// this to demonstrate the halved probe count.
  std::uint64_t hash_probes() const;

  /// Checkpointing: the base grid, every tracked projected grid — in dense
  /// order, with per-grid serials — and the revision counter round-trip,
  /// so the restored manager reports the same tracked order (verdict
  /// `findings` are assembled in it) and shard views resync identically.
  /// Partition, decay model and maintenance knobs come from the
  /// constructor; LoadState validates the stored decay parameters against
  /// them and fails on mismatch.
  void SaveState(CheckpointWriter& w) const;
  bool LoadState(CheckpointReader& r);

 private:
  struct TrackedGrid {
    Subspace subspace;
    std::uint64_t serial = 0;
    std::unique_ptr<ProjectedGrid> grid;
  };

  /// Dense index of `s` in grids_, or FlatIndex::kNoValue when untracked.
  std::uint32_t IndexOf(const Subspace& s) const;

  Partition partition_;
  DecayModel model_;
  double prune_threshold_;
  std::uint64_t compaction_period_;
  BaseGrid base_;
  std::vector<TrackedGrid> grids_;  // dense, iterated on the hot path
  FlatIndex by_subspace_;    // subspace mask (2 words) -> dense grid index
  CellCoords base_scratch_;  // base-cell coords, binned once per point
  // Staging buffers of the two-pass probe pipeline: per tracked grid, the
  // projected coordinates and their hash from pass 1, consumed by pass 2.
  std::vector<CellCoords> probe_coords_;
  std::vector<std::uint64_t> probe_hashes_;
  std::uint64_t revision_ = 0;
  DetectorEventSink* sink_ = nullptr;
};

}  // namespace spot

#endif  // SPOT_GRID_SYNAPSE_MANAGER_H_
