#ifndef SPOT_GRID_SYNAPSE_MANAGER_H_
#define SPOT_GRID_SYNAPSE_MANAGER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "grid/base_grid.h"
#include "grid/decay.h"
#include "grid/partition.h"
#include "grid/pcs.h"
#include "grid/projected_grid.h"
#include "subspace/subspace.h"

namespace spot {

/// Owns the complete set of data synapses: the BaseGrid (BCS hypercube) plus
/// one ProjectedGrid per tracked SST subspace, all sharing one partition and
/// one (omega, epsilon) decay model.
///
/// This is the state the paper's detection stage updates per arrival
/// ("data synapses (BCS and PCS) are first updated dynamically") and then
/// queries ("retrieve PCS of the projected cell to which each data belongs
/// in subspace of SST").
///
/// Tracked grids live in a dense vector with a stable, deterministic order
/// (insertion order, perturbed only by Untrack's swap-remove); TrackedSubspaces()
/// reports that order and AddAndQuery() fills its output in it, so callers
/// can iterate the grids without any per-subspace hash lookup.
class SynapseManager {
 public:
  SynapseManager(Partition partition, DecayModel model,
                 double prune_threshold = 1e-3,
                 std::uint64_t compaction_period = 4096);

  // Projected grids hold pointers into partition_, so the manager is pinned
  // in memory: neither copyable nor movable. Hold it via unique_ptr when a
  // movable handle is needed.
  SynapseManager(const SynapseManager&) = delete;
  SynapseManager& operator=(const SynapseManager&) = delete;
  SynapseManager(SynapseManager&&) = delete;
  SynapseManager& operator=(SynapseManager&&) = delete;

  /// Starts tracking a subspace (idempotent). New grids start empty; their
  /// summaries fill in as the stream flows.
  void Track(const Subspace& s);

  /// Stops tracking a subspace and frees its grid.
  void Untrack(const Subspace& s);

  bool IsTracked(const Subspace& s) const;

  /// Folds one point into the base grid and every tracked projected grid,
  /// advancing the clock to `tick` (non-decreasing).
  void Add(const std::vector<double>& point, std::uint64_t tick);

  /// Fused update + query, the detection hot path: folds `point` into the
  /// base grid and every tracked grid, and fills `out` with the PCS of the
  /// point's cell in each tracked subspace — out[i] corresponds to
  /// TrackedSubspaces()[i]. The point is binned into base-cell coordinates
  /// exactly once; each grid projects those coordinates by index selection
  /// and serves update + query from a single slot lookup, so the whole call
  /// performs exactly one cell-index hash probe per tracked subspace where
  /// Add() followed by per-subspace Query() performs two (plus a grid-table
  /// probe).
  void AddAndQuery(const std::vector<double>& point, std::uint64_t tick,
                   std::vector<Pcs>* out);

  /// PCS of `point`'s cell in tracked subspace `s` (PCS{} if untracked).
  Pcs Query(const std::vector<double>& point, const Subspace& s) const;

  /// Fringe test for `point`'s cell in `s` (see
  /// ProjectedGrid::IsClusterFringe). False when `s` is untracked.
  bool IsClusterFringe(const std::vector<double>& point, const Subspace& s,
                       double cell_count, double factor) const;

  /// Decayed total stream weight at the current tick.
  double TotalWeight() const { return base_.TotalWeight(); }

  std::uint64_t last_tick() const { return base_.last_tick(); }
  const Partition& partition() const { return partition_; }
  const DecayModel& decay_model() const { return model_; }
  const BaseGrid& base_grid() const { return base_; }

  /// Tracked subspaces in dense (iteration) order — the order AddAndQuery
  /// fills its output in.
  std::vector<Subspace> TrackedSubspaces() const;

  std::size_t NumTracked() const { return grids_.size(); }

  /// Total populated projected cells across all tracked grids (memory
  /// proxy reported by the scalability experiments).
  std::size_t TotalPopulatedCells() const;

  /// Compacts the base grid and every projected grid at `tick`.
  std::size_t CompactAll(std::uint64_t tick);

  /// Cell-index hash probes performed by the tracked grids so far (see
  /// ProjectedGrid::hash_probes); the fused-vs-unfused micro-bench reads
  /// this to demonstrate the halved probe count.
  std::uint64_t hash_probes() const;

 private:
  struct TrackedGrid {
    Subspace subspace;
    std::unique_ptr<ProjectedGrid> grid;
  };

  Partition partition_;
  DecayModel model_;
  double prune_threshold_;
  std::uint64_t compaction_period_;
  BaseGrid base_;
  std::vector<TrackedGrid> grids_;  // dense, iterated on the hot path
  std::unordered_map<Subspace, std::size_t, SubspaceHash> by_subspace_;
  CellCoords base_scratch_;  // base-cell coords, binned once per point
};

}  // namespace spot

#endif  // SPOT_GRID_SYNAPSE_MANAGER_H_
