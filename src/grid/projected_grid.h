#ifndef SPOT_GRID_PROJECTED_GRID_H_
#define SPOT_GRID_PROJECTED_GRID_H_

#include <cstdint>
#include <vector>

#include "grid/decay.h"
#include "grid/flat_index.h"
#include "grid/partition.h"
#include "grid/pcs.h"
#include "subspace/subspace.h"

namespace spot {

class CheckpointReader;
class CheckpointWriter;

/// Sparse grid of decayed cell aggregates for a single subspace of the SST.
///
/// Mirrors BaseGrid but keyed by projected-cell coordinates, and able to
/// answer PCS queries. One ProjectedGrid exists per SST subspace; the
/// per-arrival update cost is O(|s|) plus one hash probe, which is what lets
/// SPOT keep up with fast streams.
///
/// Storage is a slab: one contiguous arena of fixed-stride records
///
///     [count, ls[0..k), ss[0..k), last_tick]     (stride = 2k + 2)
///
/// indexed by a FlatIndex (open-addressing CellCoords -> slot table with
/// inline keys, DESIGN.md Section 3.9), with a free list recycling the
/// slots of pruned cells. Cell updates and queries therefore touch one
/// contiguous record and never allocate per cell (DESIGN.md Section 3.5).
/// Ticks are stored as doubles, exact for streams shorter than 2^53 points.
///
/// The batch probe pipeline: callers that update many grids per point (the
/// SynapseManager hot path) or many points per grid (the shard fold) split
/// each probe into PrefetchCoords — hash once, prefetch the home bucket —
/// and AddAndQueryCoords — execute the fused update+query with the staged
/// hash — so independent probes overlap their cache misses instead of
/// serializing them.
///
/// Threading: a grid instance is single-threaded. Update paths reuse a
/// coordinate scratch buffer, and every probe (including const queries)
/// bumps the hash_probes() counter, so concurrent access — even concurrent
/// const queries — is a data race. Shard whole grids across threads via the
/// sharded engine instead, which gives each grid exactly one owning worker
/// (DESIGN.md Section 3.8).
class ProjectedGrid {
 public:
  ProjectedGrid(Subspace subspace, const Partition* partition,
                DecayModel model, double prune_threshold = 1e-3,
                std::uint64_t compaction_period = 4096);

  /// Folds a full-dimensional point in at tick `tick` (non-decreasing).
  void Add(const std::vector<double>& point, std::uint64_t tick);

  /// Fused update + query: folds `point` in at `tick` and returns the PCS of
  /// its (just-updated) cell against `total_weight`, from the same slot
  /// lookup — one hash probe where Add() followed by Query() costs two.
  Pcs AddAndQuery(const std::vector<double>& point, std::uint64_t tick,
                  double total_weight);

  /// Fused update + query from precomputed *base-cell* coordinates: the
  /// projected coordinates are selected from `base` by dimension index
  /// instead of re-binning the raw values. `point` still supplies the raw
  /// values folded into the linear/squared sums. This is the batch hot path:
  /// the caller bins the full-dimensional point once and every subspace grid
  /// reuses it.
  Pcs AddAndQueryAt(const CellCoords& base, const std::vector<double>& point,
                    std::uint64_t tick, double total_weight);

  /// Update-only variant of AddAndQueryAt.
  void AddAt(const CellCoords& base, const std::vector<double>& point,
             std::uint64_t tick);

  // --- Batch probe pipeline (pass 1 / pass 2) ----------------------------

  /// Projects base-cell coordinates onto this grid's subspace into `out`
  /// (resized as needed) — the caller-owned staging buffer of the probe
  /// pipeline.
  void ProjectBaseInto(const CellCoords& base, CellCoords* out) const {
    out->resize(dims_.size());
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      (*out)[i] = base[static_cast<std::size_t>(dims_[i])];
    }
  }

  /// Pass 1: hashes caller-projected coordinates once and prefetches their
  /// home bucket. Returns the hash for the matching AddAndQueryCoords call.
  /// Purely a cache hint — performs no probe and bumps no counter.
  std::uint64_t PrefetchCoords(const CellCoords& coords) const {
    const std::uint64_t hash = index_.Hash(coords);
    index_.Prefetch(hash);
    return hash;
  }

  /// Pass 2: fused update + query from caller-projected coordinates and
  /// their PrefetchCoords hash — the hash is computed exactly once per
  /// probe across the whole pipeline.
  Pcs AddAndQueryCoords(const CellCoords& coords, std::uint64_t hash,
                        const std::vector<double>& point, std::uint64_t tick,
                        double total_weight);

  /// PCS of the cell containing `point`, computed against the decayed total
  /// weight `total_weight` of the stream (supplied by the caller so every
  /// subspace grid shares one authoritative W). An unpopulated cell yields
  /// PCS{rd=0, irsd=0, count=0} — maximally sparse.
  ///
  /// RD is the cell's decayed count relative to the *count-weighted average
  /// cell mass* of this subspace: RD = D_c * W / sum_i(D_i^2). Weighting by
  /// count makes the reference robust to swarms of nearly-empty decayed
  /// cells, and sum_i(D_i^2) decays by alpha^(2*delta) per tick, so it stays
  /// incrementally maintainable (DESIGN.md Section 3.3).
  Pcs Query(const std::vector<double>& point, double total_weight) const;

  /// PCS from explicit projected coordinates.
  Pcs QueryCoords(const CellCoords& coords, double total_weight) const;

  /// Removes cells whose decayed count at `tick` is below the prune
  /// threshold; returns the number removed. Freed slots go on the free list
  /// and are recycled by later inserts — the slab itself never shrinks.
  std::size_t Compact(std::uint64_t tick);

  const Subspace& subspace() const { return subspace_; }
  std::size_t PopulatedCells() const { return index_.size(); }
  std::uint64_t last_tick() const { return last_tick_; }

  /// Decayed sum of squared cell counts (see Query): the basis of the
  /// count-weighted average cell mass that RD is measured against.
  double SumSqAt(std::uint64_t tick) const;

  /// True when the cell at `coords` (holding `cell_count` decayed weight)
  /// has a neighboring cell at Chebyshev distance 1 whose decayed count is
  /// at least `factor * max(1, cell_count)` — i.e. the cell is the *fringe*
  /// of a dense cluster rather than a genuinely isolated region. The
  /// detection stage uses this to veto sparse-cell findings that are merely
  /// cluster tails (DESIGN.md Section 3.4, fringe suppression).
  ///
  /// The full Moore neighborhood (3^|s|-1 probes) is scanned for subspaces
  /// of dimension <= 3; beyond that only axis-aligned neighbors (2|s|) are
  /// probed to bound the cost.
  bool IsClusterFringe(const CellCoords& coords, double cell_count,
                       double factor) const;

  // --- Slab introspection (tests, capacity planning) ---------------------

  /// Total record slots ever allocated in the slab (live + free).
  std::size_t SlabSlots() const { return slab_.size() / stride_; }

  /// Slots currently on the free list, awaiting recycling.
  std::size_t FreeSlots() const { return free_slots_.size(); }

  /// Cell-index hash probes performed so far (Add / Query / fused / fringe).
  /// The fused path costs one probe per point where Add+Query costs two.
  /// Prefetches are hints, not probes, and are not counted — the pipeline
  /// leaves this trajectory identical to the unpipelined path.
  std::uint64_t hash_probes() const { return hash_probes_; }

  /// Compaction sweeps run, and cells they reclaimed, since construction.
  /// Observability counters only: unlike hash_probes they are NOT
  /// checkpointed (the journal samples deltas; a restored grid restarts
  /// them at zero without changing any serialized byte).
  std::uint64_t compactions() const { return compactions_; }
  std::uint64_t cells_reclaimed() const { return cells_reclaimed_; }

  /// Checkpointing: live cell records (in sorted coordinate order, so equal
  /// grids serialize byte-identically), the clock, the incremental
  /// squared-count sum and the compaction cadence all round-trip exactly.
  /// Slot numbering, the free list and the flat index's bucket layout are
  /// *not* preserved — they are storage bookkeeping with no observable
  /// effect (LoadState rebuilds a dense slab from the sorted stream; every
  /// verdict-relevant computation is keyed by cell coordinates or iterated
  /// in a coordinate-canonical order).
  void SaveState(CheckpointWriter& w) const;
  bool LoadState(CheckpointReader& r);

 private:
  // Record field offsets within a slot: [kCount | ls x k | ss x k | tick].
  static constexpr std::size_t kCount = 0;
  std::size_t LsOff() const { return 1; }
  std::size_t SsOff() const { return 1 + dims_.size(); }
  std::size_t TickOff() const { return 1 + 2 * dims_.size(); }

  double* Record(std::uint32_t slot) {
    return slab_.data() + static_cast<std::size_t>(slot) * stride_;
  }
  const double* Record(std::uint32_t slot) const {
    return slab_.data() + static_cast<std::size_t>(slot) * stride_;
  }

  /// Decays every aggregate of `rec` in place to `tick`.
  void DecayRecord(double* rec, std::uint64_t tick) const;

  /// Slot of the cell at `coords` (whose hash is `hash`), allocating (from
  /// the free list, else by growing the slab) when absent. One hash probe.
  std::uint32_t UpsertSlot(const CellCoords& coords, std::uint64_t hash,
                           std::uint64_t tick);

  /// Fused core shared by every update entry point: upserts the cell of
  /// `coords`, decays it, folds `point` in, and returns its record.
  double* FoldPoint(const CellCoords& coords, std::uint64_t hash,
                    const std::vector<double>& point, std::uint64_t tick);

  /// PCS of a record whose stored aggregates are `factor` away from being
  /// current (factor = alpha^(last_tick_ - record tick); 1 when fresh).
  Pcs PcsFromRecord(const double* rec, double factor,
                    double total_weight) const;

  /// Fills coords_scratch_ by re-binning `point`.
  void BinPoint(const std::vector<double>& point);

  /// Fills coords_scratch_ by index-selecting from base-cell coords.
  void ProjectBase(const CellCoords& base);

  void MaybeCompact(std::uint64_t tick);

  Subspace subspace_;
  std::vector<int> dims_;          // cached subspace.Indices()
  std::vector<double> sigma_uniform_;  // per retained dim: width / sqrt(12)
  const Partition* partition_;     // not owned
  DecayModel model_;
  double prune_threshold_;
  std::uint64_t compaction_period_;
  std::uint64_t arrivals_since_compaction_ = 0;
  std::uint64_t last_tick_ = 0;
  // Sum over cells of (decayed count)^2, maintained lazily: every cell
  // decays by the same alpha^delta, so the sum decays by alpha^(2*delta).
  double sumsq_ = 0.0;
  std::uint64_t sumsq_tick_ = 0;

  std::size_t stride_;                   // doubles per record: 2|s| + 2
  std::vector<double> slab_;             // record arena
  std::vector<std::uint32_t> free_slots_;
  FlatIndex index_;                      // coords -> slot, keys inline
  CellCoords coords_scratch_;            // reused across update calls
  mutable std::uint64_t hash_probes_ = 0;
  std::uint64_t compactions_ = 0;        // not checkpointed (see accessor)
  std::uint64_t cells_reclaimed_ = 0;
};

}  // namespace spot

#endif  // SPOT_GRID_PROJECTED_GRID_H_
