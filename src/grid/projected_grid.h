#ifndef SPOT_GRID_PROJECTED_GRID_H_
#define SPOT_GRID_PROJECTED_GRID_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "grid/decay.h"
#include "grid/partition.h"
#include "grid/pcs.h"
#include "subspace/subspace.h"

namespace spot {

/// Decayed aggregates of one projected cell: count plus linear/squared sums
/// of the retained dimensions only (the minimum needed to derive a PCS).
struct ProjectedCellStats {
  double count = 0.0;
  std::vector<double> ls;  // per retained dimension, subspace index order
  std::vector<double> ss;
  std::uint64_t last_tick = 0;

  /// Decays the aggregates in place to `tick`.
  void DecayTo(std::uint64_t tick, const DecayModel& model);
};

/// Sparse grid of decayed cell aggregates for a single subspace of the SST.
///
/// Mirrors BaseGrid but keyed by projected-cell coordinates, and able to
/// answer PCS queries. One ProjectedGrid exists per SST subspace; the
/// per-arrival update cost is O(|s|) plus one hash probe, which is what lets
/// SPOT keep up with fast streams.
class ProjectedGrid {
 public:
  ProjectedGrid(Subspace subspace, const Partition* partition,
                DecayModel model, double prune_threshold = 1e-3,
                std::uint64_t compaction_period = 4096);

  /// Folds a full-dimensional point in at tick `tick` (non-decreasing).
  void Add(const std::vector<double>& point, std::uint64_t tick);

  /// PCS of the cell containing `point`, computed against the decayed total
  /// weight `total_weight` of the stream (supplied by the caller so every
  /// subspace grid shares one authoritative W). An unpopulated cell yields
  /// PCS{rd=0, irsd=0, count=0} — maximally sparse.
  ///
  /// RD is the cell's decayed count relative to the *count-weighted average
  /// cell mass* of this subspace: RD = D_c * W / sum_i(D_i^2). Weighting by
  /// count makes the reference robust to swarms of nearly-empty decayed
  /// cells, and sum_i(D_i^2) decays by alpha^(2*delta) per tick, so it stays
  /// incrementally maintainable (DESIGN.md Section 3.3).
  Pcs Query(const std::vector<double>& point, double total_weight) const;

  /// PCS from explicit projected coordinates.
  Pcs QueryCoords(const CellCoords& coords, double total_weight) const;

  /// Removes cells whose decayed count at `tick` is below the prune
  /// threshold; returns the number removed.
  std::size_t Compact(std::uint64_t tick);

  const Subspace& subspace() const { return subspace_; }
  std::size_t PopulatedCells() const { return cells_.size(); }
  std::uint64_t last_tick() const { return last_tick_; }

  /// Decayed sum of squared cell counts (see Query): the basis of the
  /// count-weighted average cell mass that RD is measured against.
  double SumSqAt(std::uint64_t tick) const;

  /// True when the cell at `coords` (holding `cell_count` decayed weight)
  /// has a neighboring cell at Chebyshev distance 1 whose decayed count is
  /// at least `factor * max(1, cell_count)` — i.e. the cell is the *fringe*
  /// of a dense cluster rather than a genuinely isolated region. The
  /// detection stage uses this to veto sparse-cell findings that are merely
  /// cluster tails (DESIGN.md Section 3.3, fringe suppression).
  ///
  /// The full Moore neighborhood (3^|s|-1 probes) is scanned for subspaces
  /// of dimension <= 3; beyond that only axis-aligned neighbors (2|s|) are
  /// probed to bound the cost.
  bool IsClusterFringe(const CellCoords& coords, double cell_count,
                       double factor) const;

 private:
  Pcs ComputePcs(const ProjectedCellStats& cell, double total_weight) const;

  Subspace subspace_;
  std::vector<int> dims_;          // cached subspace.Indices()
  std::vector<double> sigma_uniform_;  // per retained dim: width / sqrt(12)
  const Partition* partition_;     // not owned
  DecayModel model_;
  double prune_threshold_;
  std::uint64_t compaction_period_;
  std::uint64_t arrivals_since_compaction_ = 0;
  std::uint64_t last_tick_ = 0;
  // Sum over cells of (decayed count)^2, maintained lazily: every cell
  // decays by the same alpha^delta, so the sum decays by alpha^(2*delta).
  double sumsq_ = 0.0;
  std::uint64_t sumsq_tick_ = 0;
  std::unordered_map<CellCoords, ProjectedCellStats, CellCoordsHash> cells_;
};

}  // namespace spot

#endif  // SPOT_GRID_PROJECTED_GRID_H_
