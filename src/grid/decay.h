#ifndef SPOT_GRID_DECAY_H_
#define SPOT_GRID_DECAY_H_

#include <cstdint>

namespace spot {

class CheckpointReader;
class CheckpointWriter;

/// The paper's (omega, epsilon) window-based time model.
///
/// Each arriving point defines one tick. A point of age `a` ticks carries
/// weight `alpha^a`, where `alpha` is chosen so that the total weight of all
/// points that have slid out of a window of size `omega` never exceeds
/// `epsilon`:
///
///     sum_{a >= omega} alpha^a = alpha^omega / (1 - alpha) = epsilon.
///
/// This approximates a hard sliding window of size `omega` without keeping
/// any per-point data or historical snapshots — only the latest decayed
/// summaries are stored, and decay is applied lazily via tick stamps.
class DecayModel {
 public:
  /// Builds the model for a window of `omega` points and residual bound
  /// `epsilon` in (0, 1). Invalid arguments are clamped to sane values.
  DecayModel(std::uint64_t omega, double epsilon);

  /// A model with no decay (alpha = 1): an infinite landmark window.
  static DecayModel None();

  double alpha() const { return alpha_; }
  std::uint64_t omega() const { return omega_; }
  double epsilon() const { return epsilon_; }

  /// alpha^age, computed in O(log age).
  double WeightAtAge(std::uint64_t age) const;

  /// Total steady-state window weight: sum_{a>=0} alpha^a = 1/(1-alpha)
  /// (infinite for the no-decay model; callers use it only for reporting).
  double SteadyStateWeight() const;

  /// Solves alpha^omega / (1 - alpha) = epsilon for alpha in (0,1) by
  /// bisection. Exposed for testing.
  static double SolveAlpha(std::uint64_t omega, double epsilon);

 private:
  DecayModel() = default;

  std::uint64_t omega_ = 0;
  double epsilon_ = 0.0;
  double alpha_ = 1.0;
};

/// Helper that maintains the decayed total weight of everything seen so far:
/// W(t) = sum_i alpha^(t - t_i). Advancing by one tick and adding the new
/// point is O(1).
class DecayedCounter {
 public:
  explicit DecayedCounter(const DecayModel& model) : model_(&model) {}

  /// Registers the arrival of one point at tick `tick` (ticks must be
  /// non-decreasing across calls).
  void Observe(std::uint64_t tick);

  /// Decayed total weight as of tick `tick`.
  double WeightAt(std::uint64_t tick) const;

  std::uint64_t last_tick() const { return last_tick_; }

  /// Checkpointing of the running weight (the model reference is supplied
  /// by the owner at construction and is not serialized).
  void SaveState(CheckpointWriter& w) const;
  bool LoadState(CheckpointReader& r);

 private:
  const DecayModel* model_;
  double weight_ = 0.0;
  std::uint64_t last_tick_ = 0;
  bool seen_any_ = false;
};

}  // namespace spot

#endif  // SPOT_GRID_DECAY_H_
