#include "grid/pcs.h"

// Pcs is a header-only value type; this TU exists so the module always has
// at least one object file and the header stays self-contained-checked.

namespace spot {}  // namespace spot
