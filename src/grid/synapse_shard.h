#ifndef SPOT_GRID_SYNAPSE_SHARD_H_
#define SPOT_GRID_SYNAPSE_SHARD_H_

#include <cstdint>
#include <vector>

#include "grid/partition.h"
#include "grid/pcs.h"
#include "grid/projected_grid.h"
#include "stream/data_point.h"
#include "subspace/subspace.h"

namespace spot {

/// The per-batch inputs every shard shares read-only: the points, their
/// base-cell coordinates (binned once by the coordinator), their ticks, and
/// the decayed total stream weight right after each point's base-grid fold —
/// the authoritative W that every subspace query for that point uses in the
/// sequential path.
struct BatchFrame {
  const std::vector<DataPoint>* points = nullptr;
  std::vector<CellCoords> base_coords;
  std::vector<std::uint64_t> ticks;
  std::vector<double> total_weights;
};

/// One subspace's output lane of a batch run: the PCS of every point's cell
/// in this subspace, plus the fringe-veto verdicts. Exactly one shard worker
/// writes a column; the coordinating thread reads it only after the workers
/// have been joined.
struct ShardColumn {
  Subspace subspace;
  ProjectedGrid* grid = nullptr;  // borrowed from SynapseManager
  std::uint64_t serial = 0;       // SynapseManager::SerialAt of `grid`
  std::vector<Pcs> pcs;           // pcs[j] = PCS of point j in `subspace`
  std::vector<unsigned char> vetoed;  // fringe-vetoed sparse findings
  std::uint64_t stamp = 0;        // resync generation (engine-internal)
};

/// Detection thresholds a shard run needs to decide, per (point, subspace),
/// whether the fringe neighborhood must be probed.
struct ShardRunParams {
  double rd_threshold = 0.0;
  double irsd_threshold = 0.0;
  double fringe_factor = 0.0;
};

/// A view over a disjoint subset of the SynapseManager's projected grids,
/// owned by one worker thread of the sharded engine.
///
/// The shard does not own grid storage — it borrows ProjectedGrid pointers
/// from the manager's dense list, so the sequential per-point path and the
/// sharded batch path update the very same synapses. Slices are rebuilt
/// (from the manager's current dense order) whenever the tracked set changes
/// — Track/Untrack from OS growth, self-evolution, or drift relearning —
/// which the engine detects via SynapseManager::revision().
///
/// Determinism: a ProjectedGrid's state depends only on its own input
/// sequence (coordinates, ticks, per-point total weights), never on sibling
/// grids. Each grid is updated by exactly one shard, in arrival order, with
/// the same ticks and weights the sequential path would use — so every cell
/// aggregate, compaction sweep, PCS and fringe verdict is bit-identical to
/// sequential processing at every shard count.
class SynapseShard {
 public:
  void Clear() { columns_.clear(); }
  void Adopt(ShardColumn* column) { columns_.push_back(column); }
  std::size_t NumGrids() const { return columns_.size(); }

  /// Folds points [begin, end) of the frame into every owned grid in
  /// arrival order, recording per-(subspace, point) PCS and fringe verdicts
  /// into the owned columns.
  void ProcessRun(const BatchFrame& frame, std::size_t begin, std::size_t end,
                  const ShardRunParams& params) const {
    for (ShardColumn* column : columns_) {
      ProcessColumn(column, frame, begin, end, params);
    }
  }

  /// One column's share of a run — also used directly by the engine to
  /// replay batch tails into grids tracked mid-batch.
  static void ProcessColumn(ShardColumn* column, const BatchFrame& frame,
                            std::size_t begin, std::size_t end,
                            const ShardRunParams& params);

 private:
  std::vector<ShardColumn*> columns_;
};

}  // namespace spot

#endif  // SPOT_GRID_SYNAPSE_SHARD_H_
