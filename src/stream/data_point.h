#ifndef SPOT_STREAM_DATA_POINT_H_
#define SPOT_STREAM_DATA_POINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "subspace/subspace.h"

namespace spot {

/// One streaming observation: a dense numeric attribute vector plus a
/// monotonically increasing arrival id (which doubles as the tick of the
/// (omega, epsilon) time model).
struct DataPoint {
  std::uint64_t id = 0;
  std::vector<double> values;

  int dimension() const { return static_cast<int>(values.size()); }
};

/// A stream observation with generator-side ground truth attached. The
/// truth fields are used only by the evaluation harness — detectors never
/// see them.
struct LabeledPoint {
  DataPoint point;

  /// True when the generator planted this point as a projected outlier.
  bool is_outlier = false;

  /// The subspace in which the planted outlier is anomalous (empty for
  /// regular points or when not applicable).
  Subspace outlying_subspace;

  /// Generator-specific class label (e.g. attack category); 0 = normal.
  int category = 0;
};

/// Abstract pull-based source of labeled stream data.
///
/// Sources are single-pass by contract, matching the paper's streaming
/// constraint; those that can rewind expose Reset().
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// Next point, or nullopt when the source is exhausted.
  virtual std::optional<LabeledPoint> Next() = 0;

  /// Attribute count of every emitted point.
  virtual int dimension() const = 0;

  /// Human-readable source name for reports.
  virtual std::string name() const = 0;
};

/// Pulls up to `count` points into a vector (fewer if the source ends).
std::vector<LabeledPoint> Take(StreamSource& source, std::size_t count);

/// Strips labels, keeping only the raw points (e.g. to build an unlabeled
/// training batch for unsupervised learning).
std::vector<std::vector<double>> ValuesOf(const std::vector<LabeledPoint>& pts);

}  // namespace spot

#endif  // SPOT_STREAM_DATA_POINT_H_
