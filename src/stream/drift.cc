#include "stream/drift.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace spot {
namespace stream {

DriftingStream::DriftingStream(const DriftConfig& config)
    : config_(config), rng_(config.base.seed) {
  RedrawCenters();
}

void DriftingStream::RedrawCenters() {
  const std::size_t k = static_cast<std::size_t>(config_.base.num_clusters);
  const std::size_t dims = static_cast<std::size_t>(config_.base.dimension);
  centers_.assign(k, std::vector<double>(dims, 0.0));
  velocities_.assign(k, std::vector<double>(dims, 0.0));
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t d = 0; d < dims; ++d) {
      centers_[c][d] = rng_.NextDouble(0.15, 0.85);
      velocities_[c][d] = rng_.NextGaussian() * config_.drift_rate;
    }
  }
}

std::vector<double> DriftingStream::SampleNormalPoint() {
  const std::size_t c =
      static_cast<std::size_t>(rng_.NextUint64(centers_.size()));
  std::vector<double> v(centers_[c].size());
  for (std::size_t d = 0; d < v.size(); ++d) {
    v[d] = Clamp(
        rng_.NextGaussian(centers_[c][d], config_.base.cluster_stddev), 0.0,
        1.0);
  }
  return v;
}

LabeledPoint DriftingStream::MakeOutlier() {
  LabeledPoint lp;
  lp.is_outlier = true;
  lp.category = 1;
  lp.point.values = SampleNormalPoint();
  const int max_dim =
      std::min(config_.base.max_outlier_subspace_dim, config_.base.dimension);
  const int dim_count =
      rng_.NextInt(config_.base.min_outlier_subspace_dim, std::max(1, max_dim));
  std::vector<std::size_t> dims = rng_.SampleIndices(
      static_cast<std::size_t>(config_.base.dimension),
      static_cast<std::size_t>(std::max(1, dim_count)));
  const double shift =
      config_.base.outlier_displacement * config_.base.cluster_stddev;
  for (std::size_t d : dims) {
    lp.outlying_subspace.Add(static_cast<int>(d));
    auto min_gap = [&](double value) {
      double gap = 1.0;
      for (const auto& center : centers_) {
        gap = std::min(gap, std::fabs(value - center[d]));
      }
      return gap;
    };
    double best = 0.0;
    double best_gap = min_gap(0.0);
    if (min_gap(1.0) > best_gap) {
      best = 1.0;
      best_gap = min_gap(1.0);
    }
    for (int attempt = 0; attempt < 64 && best_gap < shift; ++attempt) {
      const double candidate = rng_.NextDouble();
      const double gap = min_gap(candidate);
      if (gap > best_gap) {
        best = candidate;
        best_gap = gap;
      }
    }
    lp.point.values[d] = best;
  }
  return lp;
}

std::optional<LabeledPoint> DriftingStream::Next() {
  // Advance the concept.
  if (config_.kind == DriftKind::kGradual) {
    for (std::size_t c = 0; c < centers_.size(); ++c) {
      for (std::size_t d = 0; d < centers_[c].size(); ++d) {
        centers_[c][d] += velocities_[c][d];
        // Bounce off a safety margin so clusters stay inside the domain.
        if (centers_[c][d] < 0.1 || centers_[c][d] > 0.9) {
          velocities_[c][d] = -velocities_[c][d];
          centers_[c][d] = Clamp(centers_[c][d], 0.1, 0.9);
        }
      }
    }
  } else if (config_.period != 0 && next_id_ != 0 &&
             next_id_ % config_.period == 0) {
    RedrawCenters();
    ++concept_switches_;
  }

  LabeledPoint lp;
  if (rng_.NextBernoulli(config_.base.outlier_probability)) {
    lp = MakeOutlier();
  } else {
    lp.point.values = SampleNormalPoint();
  }
  lp.point.id = next_id_++;
  return lp;
}

}  // namespace stream
}  // namespace spot
