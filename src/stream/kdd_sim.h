#ifndef SPOT_STREAM_KDD_SIM_H_
#define SPOT_STREAM_KDD_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "stream/data_point.h"
#include "subspace/subspace.h"

namespace spot {
namespace stream {

/// Attack archetypes of the simulated network-connection stream, mirroring
/// the KDD-Cup'99 taxonomy the SPOT authors' application domain uses.
enum class AttackCategory : int {
  kNormal = 0,
  kDos = 1,    // flooding: extreme rate/count features
  kProbe = 2,  // scanning: many distinct services, tiny payloads
  kR2l = 3,    // remote-to-local: odd login/auth features
  kU2r = 4,    // user-to-root: odd shell/file-creation features
};

/// Name of a category ("normal", "dos", ...).
std::string AttackCategoryName(AttackCategory c);

/// Configuration of the network-intrusion stream simulator.
struct KddConfig {
  /// Fraction of connections that are attacks, split across categories in
  /// ratio dos:probe:r2l:u2r = 8:4:2:1 (DoS dominates, U2R is rare, echoing
  /// the real trace's imbalance).
  double attack_fraction = 0.02;
  std::uint64_t seed = 7;
};

/// Synthetic substitute for the KDD-Cup'99 network-connection stream
/// (substitution documented in DESIGN.md Section 1).
///
/// Emits 38 numeric connection features. Normal traffic is a mixture of
/// three service profiles (web / mail / dns). Each attack category perturbs
/// only a small characteristic subset of features — so attacks are
/// *projected* outliers: invisible to full-space distance measures (most of
/// the 38 features stay nominal) yet extreme inside their category's
/// subspace, which is recorded as ground truth.
class KddSimulator : public StreamSource {
 public:
  /// Number of numeric features emitted per connection.
  static constexpr int kNumFeatures = 38;

  explicit KddSimulator(const KddConfig& config);

  std::optional<LabeledPoint> Next() override;
  int dimension() const override { return kNumFeatures; }
  std::string name() const override { return "kdd-sim"; }

  /// The characteristic (ground truth) subspace of an attack category.
  static Subspace CategorySubspace(AttackCategory c);

  /// Feature index -> short descriptive name (for reports).
  static std::string FeatureName(int index);

 private:
  std::vector<double> SampleNormal();
  LabeledPoint SampleAttack(AttackCategory c);

  KddConfig config_;
  Rng rng_;
  std::uint64_t next_id_ = 0;
};

}  // namespace stream
}  // namespace spot

#endif  // SPOT_STREAM_KDD_SIM_H_
