#include "stream/kdd_sim.h"

#include <array>
#include <cmath>

#include "common/math_util.h"

namespace spot {
namespace stream {

namespace {

// Feature layout (all values normalized to [0, 1]):
//   0 duration          1 src_bytes         2 dst_bytes        3 wrong_frag
//   4 urgent            5 hot               6 failed_logins    7 logged_in
//   8 num_compromised   9 root_shell       10 su_attempted    11 num_root
//  12 file_creations   13 num_shells      14 access_files    15 outbound_cmds
//  16 is_host_login    17 is_guest_login  18 conn_count      19 srv_count
//  20 serror_rate      21 srv_serror_rate 22 rerror_rate     23 srv_rerror_rate
//  24 same_srv_rate    25 diff_srv_rate   26 srv_diff_host   27 dst_host_count
//  28 dst_host_srv     29 dst_same_srv    30 dst_diff_srv    31 dst_same_port
//  32 dst_srv_diff_host 33 dst_serror     34 dst_srv_serror  35 dst_rerror
//  36 dst_srv_rerror   37 srv_rate
constexpr std::array<const char*, KddSimulator::kNumFeatures> kFeatureNames = {
    "duration",        "src_bytes",       "dst_bytes",      "wrong_frag",
    "urgent",          "hot",             "failed_logins",  "logged_in",
    "num_compromised", "root_shell",      "su_attempted",   "num_root",
    "file_creations",  "num_shells",      "access_files",   "outbound_cmds",
    "is_host_login",   "is_guest_login",  "conn_count",     "srv_count",
    "serror_rate",     "srv_serror_rate", "rerror_rate",    "srv_rerror_rate",
    "same_srv_rate",   "diff_srv_rate",   "srv_diff_host",  "dst_host_count",
    "dst_host_srv",    "dst_same_srv",    "dst_diff_srv",   "dst_same_port",
    "dst_srv_diff_host", "dst_serror",    "dst_srv_serror", "dst_rerror",
    "dst_srv_rerror",  "srv_rate"};

// Characteristic subspaces per category. Each is low-dimensional (2-4
// attributes), per the projected-outlier premise.
const std::vector<int> kDosDims = {18, 19, 20, 21};   // counts + syn-error rates
const std::vector<int> kProbeDims = {25, 30, 31};     // diff-service rates
const std::vector<int> kR2lDims = {6, 17};            // failed logins, guest
const std::vector<int> kU2rDims = {9, 12, 13};        // root shell, files, shells

}  // namespace

std::string AttackCategoryName(AttackCategory c) {
  switch (c) {
    case AttackCategory::kNormal:
      return "normal";
    case AttackCategory::kDos:
      return "dos";
    case AttackCategory::kProbe:
      return "probe";
    case AttackCategory::kR2l:
      return "r2l";
    case AttackCategory::kU2r:
      return "u2r";
  }
  return "?";
}

Subspace KddSimulator::CategorySubspace(AttackCategory c) {
  switch (c) {
    case AttackCategory::kNormal:
      return Subspace();
    case AttackCategory::kDos:
      return Subspace::FromIndices(kDosDims);
    case AttackCategory::kProbe:
      return Subspace::FromIndices(kProbeDims);
    case AttackCategory::kR2l:
      return Subspace::FromIndices(kR2lDims);
    case AttackCategory::kU2r:
      return Subspace::FromIndices(kU2rDims);
  }
  return Subspace();
}

std::string KddSimulator::FeatureName(int index) {
  if (index < 0 || index >= kNumFeatures) return "?";
  return kFeatureNames[static_cast<std::size_t>(index)];
}

KddSimulator::KddSimulator(const KddConfig& config)
    : config_(config), rng_(config.seed) {}

std::vector<double> KddSimulator::SampleNormal() {
  std::vector<double> f(kNumFeatures, 0.0);
  // Three service profiles: web (short, bursty), mail (medium), dns (tiny).
  const int profile = static_cast<int>(rng_.NextUint64(3));
  auto g = [&](double mean, double sd) {
    return Clamp(rng_.NextGaussian(mean, sd), 0.0, 1.0);
  };
  switch (profile) {
    case 0:  // web
      f[0] = g(0.05, 0.02);   // duration
      f[1] = g(0.30, 0.08);   // src_bytes
      f[2] = g(0.45, 0.10);   // dst_bytes
      f[7] = 1.0;             // logged_in
      f[18] = g(0.25, 0.05);  // conn_count
      f[19] = g(0.25, 0.05);  // srv_count
      f[24] = g(0.85, 0.05);  // same_srv_rate
      break;
    case 1:  // mail
      f[0] = g(0.15, 0.04);
      f[1] = g(0.40, 0.08);
      f[2] = g(0.20, 0.06);
      f[7] = 1.0;
      f[18] = g(0.15, 0.04);
      f[19] = g(0.15, 0.04);
      f[24] = g(0.75, 0.06);
      break;
    default:  // dns
      f[0] = g(0.01, 0.005);
      f[1] = g(0.05, 0.02);
      f[2] = g(0.05, 0.02);
      f[18] = g(0.35, 0.06);
      f[19] = g(0.35, 0.06);
      f[24] = g(0.90, 0.04);
      break;
  }
  // Shared low-level noise on the remaining rate features.
  for (int i : {20, 21, 22, 23, 25, 26, 37}) {
    f[static_cast<std::size_t>(i)] = g(0.05, 0.02);
  }
  for (int i = 27; i <= 36; ++i) {
    f[static_cast<std::size_t>(i)] = g(0.20, 0.06);
  }
  // Rare-but-benign flags.
  f[5] = rng_.NextBernoulli(0.02) ? g(0.2, 0.05) : 0.0;  // hot
  f[6] = rng_.NextBernoulli(0.01) ? g(0.1, 0.03) : 0.0;  // failed_logins
  return f;
}

LabeledPoint KddSimulator::SampleAttack(AttackCategory c) {
  LabeledPoint lp;
  lp.is_outlier = true;
  lp.category = static_cast<int>(c);
  lp.outlying_subspace = CategorySubspace(c);
  lp.point.values = SampleNormal();  // attack hides inside normal traffic
  auto g = [&](double mean, double sd) {
    return Clamp(rng_.NextGaussian(mean, sd), 0.0, 1.0);
  };
  std::vector<double>& f = lp.point.values;
  switch (c) {
    case AttackCategory::kDos:
      f[18] = g(0.95, 0.03);  // conn_count saturated
      f[19] = g(0.95, 0.03);  // srv_count saturated
      f[20] = g(0.90, 0.05);  // serror_rate
      f[21] = g(0.90, 0.05);  // srv_serror_rate
      break;
    case AttackCategory::kProbe:
      f[25] = g(0.92, 0.04);  // diff_srv_rate: touches many services
      f[30] = g(0.90, 0.05);  // dst_diff_srv
      f[31] = g(0.02, 0.01);  // dst_same_port: never repeats a port
      break;
    case AttackCategory::kR2l:
      f[6] = g(0.85, 0.06);   // failed_logins spike
      f[17] = 1.0;            // is_guest_login
      break;
    case AttackCategory::kU2r:
      f[9] = 1.0;             // root_shell obtained
      f[12] = g(0.80, 0.08);  // file_creations
      f[13] = g(0.75, 0.08);  // num_shells
      break;
    case AttackCategory::kNormal:
      lp.is_outlier = false;
      lp.outlying_subspace = Subspace();
      break;
  }
  return lp;
}

std::optional<LabeledPoint> KddSimulator::Next() {
  LabeledPoint lp;
  if (rng_.NextBernoulli(config_.attack_fraction)) {
    // dos : probe : r2l : u2r = 8 : 4 : 2 : 1.
    const std::uint64_t r = rng_.NextUint64(15);
    AttackCategory c = AttackCategory::kDos;
    if (r >= 8 && r < 12) {
      c = AttackCategory::kProbe;
    } else if (r >= 12 && r < 14) {
      c = AttackCategory::kR2l;
    } else if (r >= 14) {
      c = AttackCategory::kU2r;
    }
    lp = SampleAttack(c);
  } else {
    lp.point.values = SampleNormal();
  }
  lp.point.id = next_id_++;
  return lp;
}

}  // namespace stream
}  // namespace spot
