#ifndef SPOT_STREAM_REPLAY_H_
#define SPOT_STREAM_REPLAY_H_

#include <string>
#include <vector>

#include "stream/data_point.h"

namespace spot {
namespace stream {

/// Replays a pre-materialized vector of labeled points as a stream. Used by
/// tests (deterministic fixtures) and by experiments that must feed the
/// exact same data to several detectors.
class ReplaySource : public StreamSource {
 public:
  explicit ReplaySource(std::vector<LabeledPoint> points);

  std::optional<LabeledPoint> Next() override;
  int dimension() const override;
  std::string name() const override { return "replay"; }

  /// Rewinds to the beginning.
  void Reset() { pos_ = 0; }

  std::size_t size() const { return points_.size(); }
  const std::vector<LabeledPoint>& points() const { return points_; }

 private:
  std::vector<LabeledPoint> points_;
  std::size_t pos_ = 0;
};

}  // namespace stream
}  // namespace spot

#endif  // SPOT_STREAM_REPLAY_H_
