#ifndef SPOT_STREAM_DETECTOR_IFACE_H_
#define SPOT_STREAM_DETECTOR_IFACE_H_

#include <string>
#include <vector>

#include "stream/data_point.h"
#include "subspace/subspace.h"

namespace spot {

/// Verdict of a stream detector on one point.
struct Detection {
  bool is_outlier = false;

  /// Outlying subspaces, when the detector can attribute them (SPOT can;
  /// full-space baselines leave this empty).
  std::vector<Subspace> outlying_subspaces;

  /// Detector-specific anomaly score (higher = more anomalous); used by the
  /// ROC sweep. Detectors that are purely binary may report 0/1.
  double score = 0.0;
};

/// Common interface of all one-pass stream outlier detectors (SPOT and the
/// full-space baselines), so the evaluation harness and the comparative
/// experiments can drive them uniformly.
class StreamDetector {
 public:
  virtual ~StreamDetector() = default;

  /// Ingests one point and returns the verdict for it.
  virtual Detection Process(const DataPoint& point) = 0;

  /// Ingests a batch of points and returns one verdict per point, in order.
  /// Semantically identical to calling Process() point by point — batching
  /// exists so detectors can amortize per-point overheads (SPOT bins each
  /// point's cell coordinates once for all subspaces) and as the seam for
  /// future sharding. The default simply loops Process(), so every detector
  /// is batch-drivable.
  virtual std::vector<Detection> ProcessBatch(
      const std::vector<DataPoint>& points) {
    std::vector<Detection> verdicts;
    verdicts.reserve(points.size());
    for (const DataPoint& p : points) verdicts.push_back(Process(p));
    return verdicts;
  }

  /// Requests that ProcessBatch spread its work over `num_shards` worker
  /// threads, for detectors that support sharding (SPOT does). CONTRACT:
  /// verdicts must not depend on the setting — it is purely a throughput
  /// knob, and a detector without a parallel path must treat the call as a
  /// no-op rather than approximating one (the single-threaded baselines
  /// override this with documented no-ops, pinned by tests). The default
  /// implementation ignores the request.
  virtual void set_num_shards(std::size_t num_shards) { (void)num_shards; }

  virtual std::string name() const = 0;
};

}  // namespace spot

#endif  // SPOT_STREAM_DETECTOR_IFACE_H_
