#ifndef SPOT_STREAM_DRIFT_H_
#define SPOT_STREAM_DRIFT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "stream/data_point.h"
#include "stream/synthetic.h"

namespace spot {
namespace stream {

/// How the underlying concept changes over the stream.
enum class DriftKind {
  /// Cluster centers move continuously (incremental drift).
  kGradual,
  /// The whole cluster configuration is re-drawn every `period` points
  /// (sudden drift / concept replacement).
  kAbrupt,
};

/// Configuration of the drifting stream.
struct DriftConfig {
  SyntheticConfig base;
  DriftKind kind = DriftKind::kGradual;

  /// Gradual: per-point center displacement magnitude.
  double drift_rate = 2e-5;

  /// Abrupt: points between concept replacements.
  std::uint64_t period = 10000;
};

/// Gaussian-mixture stream whose concept drifts over time — the workload
/// behind the paper's self-evolution / concept-drift claims. Ground-truth
/// projected outliers are planted exactly as in GaussianStream, relative to
/// the *current* concept.
class DriftingStream : public StreamSource {
 public:
  explicit DriftingStream(const DriftConfig& config);

  std::optional<LabeledPoint> Next() override;
  int dimension() const override { return config_.base.dimension; }
  std::string name() const override { return "drifting-gaussian"; }

  /// Number of abrupt concept switches that have occurred so far.
  std::uint64_t concept_switches() const { return concept_switches_; }

  const std::vector<std::vector<double>>& centers() const { return centers_; }

 private:
  void RedrawCenters();
  std::vector<double> SampleNormalPoint();
  LabeledPoint MakeOutlier();

  DriftConfig config_;
  Rng rng_;
  std::vector<std::vector<double>> centers_;
  std::vector<std::vector<double>> velocities_;  // gradual drift directions
  std::uint64_t next_id_ = 0;
  std::uint64_t concept_switches_ = 0;
};

}  // namespace stream
}  // namespace spot

#endif  // SPOT_STREAM_DRIFT_H_
