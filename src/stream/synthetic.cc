#include "stream/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace spot {
namespace stream {

GaussianStream::GaussianStream(const SyntheticConfig& config)
    : config_(config), rng_(config.seed) {
  // The concept (cluster layout) comes from concept_seed when given, so
  // several streams can share one concept while sampling independently.
  Rng concept_rng(config_.concept_seed != 0 ? config_.concept_seed
                                            : config_.seed);
  Rng* center_source = config_.concept_seed != 0 ? &concept_rng : &rng_;
  centers_.reserve(static_cast<std::size_t>(config_.num_clusters));
  for (int c = 0; c < config_.num_clusters; ++c) {
    std::vector<double> center(static_cast<std::size_t>(config_.dimension));
    for (double& v : center) v = center_source->NextDouble(0.15, 0.85);
    centers_.push_back(std::move(center));
  }
  // Fixed outlying-subspace pool (part of the concept when configured).
  for (int i = 0; i < config_.outlier_subspace_pool; ++i) {
    const int dim_count = center_source->NextInt(
        std::max(1, config_.min_outlier_subspace_dim),
        std::max(1, std::min(config_.max_outlier_subspace_dim,
                             config_.dimension)));
    subspace_pool_.push_back(center_source->SampleIndices(
        static_cast<std::size_t>(config_.dimension),
        static_cast<std::size_t>(dim_count)));
  }
}

std::vector<std::size_t> GaussianStream::PickOutlierDims() {
  if (!subspace_pool_.empty()) {
    return subspace_pool_[static_cast<std::size_t>(
        rng_.NextUint64(subspace_pool_.size()))];
  }
  const int dim_count = rng_.NextInt(
      std::max(1, config_.min_outlier_subspace_dim),
      std::max(1, std::min(config_.max_outlier_subspace_dim,
                           config_.dimension)));
  return rng_.SampleIndices(static_cast<std::size_t>(config_.dimension),
                            static_cast<std::size_t>(dim_count));
}

std::vector<double> GaussianStream::SampleNormalPoint() {
  if (config_.noise_fraction > 0.0 &&
      rng_.NextBernoulli(config_.noise_fraction)) {
    std::vector<double> v(static_cast<std::size_t>(config_.dimension));
    for (double& x : v) x = rng_.NextDouble();
    return v;
  }
  const std::size_t c =
      static_cast<std::size_t>(rng_.NextUint64(centers_.size()));
  std::vector<double> v(static_cast<std::size_t>(config_.dimension));
  for (std::size_t d = 0; d < v.size(); ++d) {
    v[d] = Clamp(rng_.NextGaussian(centers_[c][d], config_.cluster_stddev),
                 0.0, 1.0);
  }
  return v;
}

LabeledPoint GaussianStream::MakeOutlier() {
  LabeledPoint lp;
  lp.is_outlier = true;
  lp.category = 1;
  lp.point.values = SampleNormalPoint();

  const std::vector<std::size_t> dims = PickOutlierDims();

  for (std::size_t d : dims) {
    lp.outlying_subspace.Add(static_cast<int>(d));
    // Displace this attribute far from *every* cluster's projection. The
    // candidate pool is a batch of uniform draws plus both domain
    // boundaries; keep the candidate maximizing the distance to the nearest
    // cluster center (early exit once `outlier_displacement` sigmas away).
    const double shift = config_.outlier_displacement * config_.cluster_stddev;
    auto min_gap = [&](double value) {
      double gap = 1.0;
      for (const auto& center : centers_) {
        gap = std::min(gap, std::fabs(value - center[d]));
      }
      return gap;
    };
    double best = 0.0;
    double best_gap = min_gap(0.0);
    if (min_gap(1.0) > best_gap) {
      best = 1.0;
      best_gap = min_gap(1.0);
    }
    for (int attempt = 0; attempt < 64 && best_gap < shift; ++attempt) {
      const double candidate = rng_.NextDouble();
      const double gap = min_gap(candidate);
      if (gap > best_gap) {
        best = candidate;
        best_gap = gap;
      }
    }
    lp.point.values[d] = best;
  }
  return lp;
}

LabeledPoint GaussianStream::MakeMixedOutlier() {
  LabeledPoint lp;
  lp.is_outlier = true;
  lp.category = 2;

  // Base the point on one cluster, then give a few attributes the values a
  // *different* cluster would produce there. Marginally every attribute is
  // normal; the combination never occurs in regular traffic.
  const std::size_t base =
      static_cast<std::size_t>(rng_.NextUint64(centers_.size()));
  lp.point.values.resize(static_cast<std::size_t>(config_.dimension));
  for (std::size_t d = 0; d < lp.point.values.size(); ++d) {
    lp.point.values[d] = Clamp(
        rng_.NextGaussian(centers_[base][d], config_.cluster_stddev), 0.0,
        1.0);
  }

  const std::vector<std::size_t> dims = PickOutlierDims();
  for (std::size_t d : dims) {
    // Pick a donor cluster whose projection in d is far from the base
    // cluster's (at least 4 sigma), so the borrowed value lands in a
    // different cell.
    std::size_t donor = base;
    double best_gap = 0.0;
    for (std::size_t c = 0; c < centers_.size(); ++c) {
      const double gap = std::fabs(centers_[c][d] - centers_[base][d]);
      if (gap > best_gap) {
        best_gap = gap;
        donor = c;
      }
    }
    lp.outlying_subspace.Add(static_cast<int>(d));
    lp.point.values[d] = Clamp(
        rng_.NextGaussian(centers_[donor][d], config_.cluster_stddev), 0.0,
        1.0);
  }
  return lp;
}

std::optional<LabeledPoint> GaussianStream::Next() {
  LabeledPoint lp;
  if (rng_.NextBernoulli(config_.outlier_probability)) {
    if (rng_.NextBernoulli(config_.mixed_outlier_fraction)) {
      lp = MakeMixedOutlier();
    } else {
      lp = MakeOutlier();
    }
  } else {
    lp.point.values = SampleNormalPoint();
  }
  lp.point.id = next_id_++;
  return lp;
}

}  // namespace stream
}  // namespace spot
