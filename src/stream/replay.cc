#include "stream/replay.h"

namespace spot {
namespace stream {

ReplaySource::ReplaySource(std::vector<LabeledPoint> points)
    : points_(std::move(points)) {}

std::optional<LabeledPoint> ReplaySource::Next() {
  if (pos_ >= points_.size()) return std::nullopt;
  return points_[pos_++];
}

int ReplaySource::dimension() const {
  return points_.empty() ? 0 : points_.front().point.dimension();
}

}  // namespace stream
}  // namespace spot
