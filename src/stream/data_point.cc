#include "stream/data_point.h"

namespace spot {

std::vector<LabeledPoint> Take(StreamSource& source, std::size_t count) {
  std::vector<LabeledPoint> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::optional<LabeledPoint> p = source.Next();
    if (!p.has_value()) break;
    out.push_back(std::move(*p));
  }
  return out;
}

std::vector<std::vector<double>> ValuesOf(
    const std::vector<LabeledPoint>& pts) {
  std::vector<std::vector<double>> out;
  out.reserve(pts.size());
  for (const auto& p : pts) out.push_back(p.point.values);
  return out;
}

}  // namespace spot
