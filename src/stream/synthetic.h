#ifndef SPOT_STREAM_SYNTHETIC_H_
#define SPOT_STREAM_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "stream/data_point.h"
#include "subspace/subspace.h"

namespace spot {
namespace stream {

/// Configuration of the synthetic high-dimensional stream generator.
struct SyntheticConfig {
  int dimension = 20;

  /// Number of Gaussian clusters forming the "normal" population.
  int num_clusters = 5;

  /// Per-dimension standard deviation of each cluster (domain is [0, 1]).
  double cluster_stddev = 0.04;

  /// Probability that an emitted point is a planted projected outlier.
  double outlier_probability = 0.01;

  /// Dimensionality range of the planted outlying subspaces.
  int min_outlier_subspace_dim = 1;
  int max_outlier_subspace_dim = 3;

  /// How far (in cluster standard deviations) the outlying attributes are
  /// displaced from the nearest cluster's projection.
  double outlier_displacement = 8.0;

  /// Fraction of uniform background noise mixed into the normal population
  /// (full-space noise, not labeled as projected outliers).
  double noise_fraction = 0.0;

  /// Fraction of planted outliers that are *mixed-marginal*: instead of
  /// displacing attributes away from every cluster, each chosen attribute
  /// takes the value another cluster would have there. Every attribute is
  /// then individually normal — only the joint combination is unseen — so
  /// these outliers are invisible to 1-dimensional projections and require
  /// multi-dimensional subspaces to detect (the E12 ablation workload).
  double mixed_outlier_fraction = 0.0;

  /// When positive, outlying subspaces are drawn from a fixed pool of this
  /// many candidate subspaces (derived from the concept) instead of fresh
  /// random ones per outlier — real anomalies recur in characteristic
  /// attribute combinations, which is what lets the learned SST subsets
  /// (CS/OS) generalize from training to the live stream.
  int outlier_subspace_pool = 0;

  std::uint64_t seed = 42;

  /// Seed controlling the cluster configuration (the "concept") only.
  /// 0 = derive from `seed`. Two streams sharing a concept_seed draw the
  /// same clusters while emitting different point sequences — e.g. a
  /// training batch and the evaluation stream of the same concept.
  std::uint64_t concept_seed = 0;
};

/// Synthetic stream of Gaussian-mixture "normal" traffic with planted
/// *projected* outliers.
///
/// A planted outlier copies a regular cluster member — so it looks perfectly
/// normal in the full space and in most projections — and then displaces a
/// small random subset of attributes (1..max dim) far from every cluster's
/// projection onto those attributes. That subset is recorded as the ground-
/// truth outlying subspace, mirroring the paper's problem statement: the
/// result set is "projected outliers and their associated outlying
/// subspace(s)".
class GaussianStream : public StreamSource {
 public:
  explicit GaussianStream(const SyntheticConfig& config);

  std::optional<LabeledPoint> Next() override;
  int dimension() const override { return config_.dimension; }
  std::string name() const override { return "gaussian-projected"; }

  /// Cluster centers (exposed for tests and partition fitting).
  const std::vector<std::vector<double>>& centers() const { return centers_; }

 private:
  std::vector<double> SampleNormalPoint();
  /// Attribute indices of the next outlier's subspace (from the pool when
  /// configured, otherwise freshly sampled).
  std::vector<std::size_t> PickOutlierDims();
  LabeledPoint MakeOutlier();
  LabeledPoint MakeMixedOutlier();

  SyntheticConfig config_;
  Rng rng_;
  std::vector<std::vector<double>> centers_;
  std::vector<std::vector<std::size_t>> subspace_pool_;
  std::uint64_t next_id_ = 0;
};

}  // namespace stream
}  // namespace spot

#endif  // SPOT_STREAM_SYNTHETIC_H_
