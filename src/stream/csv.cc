#include "stream/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace spot {
namespace stream {

namespace {

// Splits a CSV line on commas (no quoting support — numeric exports) and
// trims surrounding whitespace from each field.
std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, ',')) {
    const std::size_t begin = field.find_first_not_of(" \t\r");
    const std::size_t end = field.find_last_not_of(" \t\r");
    fields.push_back(begin == std::string::npos
                         ? std::string()
                         : field.substr(begin, end - begin + 1));
  }
  return fields;
}

bool ParseRow(const std::vector<std::string>& fields,
              std::vector<double>* out) {
  out->clear();
  out->reserve(fields.size());
  for (const auto& f : fields) {
    if (f.empty()) return false;
    char* end = nullptr;
    const double v = std::strtod(f.c_str(), &end);
    if (end == f.c_str() || *end != '\0') return false;
    out->push_back(v);
  }
  return !out->empty();
}

}  // namespace

CsvParseResult ParseCsv(std::istream& in) {
  CsvParseResult result;
  std::string line;
  bool first_content_line = true;
  std::size_t width = 0;
  std::vector<double> row;

  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      ++result.skipped_lines;
      continue;
    }
    const std::vector<std::string> fields = SplitFields(line);
    const bool ok = ParseRow(fields, &row);
    if (first_content_line) {
      first_content_line = false;
      if (!ok) {
        result.column_names = fields;  // header
        continue;
      }
    }
    if (!ok || (width != 0 && row.size() != width)) {
      ++result.skipped_lines;
      continue;
    }
    width = row.size();
    result.rows.push_back(row);
  }
  return result;
}

CsvParseResult ParseCsvString(const std::string& text) {
  std::istringstream in(text);
  return ParseCsv(in);
}

CsvParseResult LoadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return CsvParseResult{};
  return ParseCsv(in);
}

CsvSource::CsvSource(CsvParseResult parsed) : parsed_(std::move(parsed)) {}

std::optional<LabeledPoint> CsvSource::Next() {
  if (pos_ >= parsed_.rows.size()) return std::nullopt;
  LabeledPoint lp;
  lp.point.id = pos_;
  lp.point.values = parsed_.rows[pos_];
  ++pos_;
  return lp;
}

int CsvSource::dimension() const {
  return parsed_.rows.empty() ? 0
                              : static_cast<int>(parsed_.rows.front().size());
}

}  // namespace stream
}  // namespace spot
