#ifndef SPOT_STREAM_CSV_H_
#define SPOT_STREAM_CSV_H_

#include <istream>
#include <string>
#include <vector>

#include "stream/data_point.h"

namespace spot {
namespace stream {

/// Result of parsing a numeric CSV document.
struct CsvParseResult {
  /// Parsed numeric rows (all the same width).
  std::vector<std::vector<double>> rows;

  /// Column names when the document had a non-numeric header line.
  std::vector<std::string> column_names;

  /// Input lines dropped because they were empty, ragged, or non-numeric.
  std::size_t skipped_lines = 0;
};

/// Parses comma-separated numeric data from a stream.
///
/// The first line is treated as a header (captured into `column_names`)
/// when any of its fields fails to parse as a number. Rows whose width
/// disagrees with the first accepted row, or that contain non-numeric
/// fields, are counted in `skipped_lines` and dropped — a pragmatic policy
/// for real-world exports with trailing junk.
CsvParseResult ParseCsv(std::istream& in);

/// Convenience overload over an in-memory document.
CsvParseResult ParseCsvString(const std::string& text);

/// Loads a CSV file; returns an empty result (rows empty, skipped 0) when
/// the file cannot be opened.
CsvParseResult LoadCsvFile(const std::string& path);

/// StreamSource over parsed CSV rows (unlabeled: is_outlier is false for
/// every point; use the evaluation harness only with labeled sources).
class CsvSource : public StreamSource {
 public:
  explicit CsvSource(CsvParseResult parsed);

  std::optional<LabeledPoint> Next() override;
  int dimension() const override;
  std::string name() const override { return "csv"; }

  void Reset() { pos_ = 0; }
  std::size_t size() const { return parsed_.rows.size(); }
  const std::vector<std::string>& column_names() const {
    return parsed_.column_names;
  }

 private:
  CsvParseResult parsed_;
  std::size_t pos_ = 0;
};

}  // namespace stream
}  // namespace spot

#endif  // SPOT_STREAM_CSV_H_
