#include "service/spot_service.h"

#include <algorithm>
#include <utility>

#include "common/log.h"
#include "core/checkpoint.h"

namespace spot {

SpotService::SpotService(SpotServiceConfig config)
    : config_(std::move(config)) {
  if (config_.max_resident == 0) config_.max_resident = 1;
  if (config_.num_shards == 0) config_.num_shards = 1;
  if (config_.num_shards > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_shards - 1);
  }
}

SpotService::~SpotService() {
  // Detectors borrow pool_; destroy them first so no engine can outlive
  // the pool it dispatches onto.
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.clear();
}

bool SpotService::ValidSessionId(const std::string& id) {
  if (id.empty() || id.size() > 128 || id.front() == '.') return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string SpotService::CheckpointPath(const std::string& id) const {
  return config_.checkpoint_dir + "/" + id + ".ckpt";
}

std::size_t SpotService::ResidentCountLocked() const {
  std::size_t n = 0;
  for (const auto& [id, session] : sessions_) {
    if (session.detector != nullptr) ++n;
  }
  return n;
}

bool SpotService::SaveTimedLocked(const SpotDetector& detector,
                                  const std::string& path) {
  obs::ScopedLatency timer(h_ckpt_save_us_);
  return SaveCheckpointFile(detector, path);
}

bool SpotService::LoadTimedLocked(SpotDetector* detector,
                                  const std::string& path) {
  obs::ScopedLatency timer(h_ckpt_load_us_);
  return LoadCheckpointFile(detector, path);
}

void SpotService::ApplyPoolLocked(SpotDetector* detector) {
  detector->set_thread_pool(pool_.get());
  detector->set_num_shards(config_.num_shards);
}

bool SpotService::EvictLocked(const std::string& id, Session& session) {
  if (session.detector == nullptr) return true;
  if (config_.checkpoint_dir.empty()) return false;
  session.last_stats = session.detector->stats();
  if (!SaveTimedLocked(*session.detector, CheckpointPath(id))) {
    SPOT_LOG(Error) << "eviction checkpoint for session '" << id
                    << "' failed; keeping it resident";
    return false;
  }
  ++checkpoints_written_;
  session.detector.reset();
  session.on_disk = true;
  ++session.evictions;
  ++evictions_;
  return true;
}

bool SpotService::MakeRoomLocked(const Session* spare) {
  while (ResidentCountLocked() >= config_.max_resident) {
    // LRU scan over resident sessions; the ordered map makes ties (which
    // cannot happen — the use clock is strictly increasing) and iteration
    // deterministic anyway.
    std::string victim_id;
    Session* victim = nullptr;
    for (auto& [id, session] : sessions_) {
      if (session.detector == nullptr || &session == spare) continue;
      if (victim == nullptr || session.last_used < victim->last_used) {
        victim = &session;
        victim_id = id;
      }
    }
    if (victim == nullptr || !EvictLocked(victim_id, *victim)) return false;
  }
  return true;
}

SpotService::Session* SpotService::ResidentLocked(const std::string& id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return nullptr;
  Session& session = it->second;
  if (session.detector == nullptr) {
    if (!session.on_disk) return nullptr;
    // Load before evicting anyone (see OpenSession): a corrupt checkpoint
    // must not cost a resident session its slot.
    auto detector = std::make_unique<SpotDetector>(SpotConfig{});
    if (!LoadTimedLocked(detector.get(), CheckpointPath(id))) {
      SPOT_LOG(Error) << "reload of session '" << id << "' from "
                      << CheckpointPath(id) << " failed";
      return nullptr;
    }
    if (!MakeRoomLocked(&session)) return nullptr;
    session.detector = std::move(detector);
    ApplyPoolLocked(session.detector.get());
    ++session.reloads;
    ++reloads_;
  }
  session.last_used = ++use_clock_;
  return &session;
}

bool SpotService::CreateSession(
    const std::string& id, const SpotConfig& config,
    const std::vector<std::vector<double>>& training,
    const DomainKnowledge* knowledge) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ValidSessionId(id)) {
    SPOT_LOG(Error) << "invalid session id '" << id << "'";
    return false;
  }
  if (sessions_.find(id) != sessions_.end()) {
    SPOT_LOG(Error) << "session '" << id << "' already exists";
    return false;
  }
  // Learn BEFORE evicting anyone: a failed admission must not knock a hot
  // session out of memory. (Residency transiently exceeds max_resident by
  // the one detector being built, which is the admission itself.)
  auto detector = std::make_unique<SpotDetector>(config);
  if (!detector->Learn(training, knowledge)) return false;
  if (!MakeRoomLocked(nullptr)) {
    SPOT_LOG(Error) << "no residency slot for new session '" << id
                    << "' (max_resident=" << config_.max_resident
                    << ", eviction "
                    << (config_.checkpoint_dir.empty() ? "disabled"
                                                       : "failed")
                    << ")";
    return false;
  }
  ApplyPoolLocked(detector.get());
  Session session;
  session.detector = std::move(detector);
  session.last_used = ++use_clock_;
  sessions_.emplace(id, std::move(session));
  return true;
}

bool SpotService::OpenSession(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ValidSessionId(id) || config_.checkpoint_dir.empty()) return false;
  if (sessions_.find(id) != sessions_.end()) return false;
  // Load before evicting anyone: a missing/corrupt checkpoint must not
  // cost a resident session its slot.
  auto detector = std::make_unique<SpotDetector>(SpotConfig{});
  if (!LoadTimedLocked(detector.get(), CheckpointPath(id))) {
    SPOT_LOG(Error) << "cannot open session '" << id << "' from "
                    << CheckpointPath(id);
    return false;
  }
  if (!MakeRoomLocked(nullptr)) return false;
  ApplyPoolLocked(detector.get());
  Session session;
  session.detector = std::move(detector);
  session.on_disk = true;
  session.last_used = ++use_clock_;
  sessions_.emplace(id, std::move(session));
  return true;
}

bool SpotService::HasSession(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.find(id) != sessions_.end();
}

bool SpotService::IsResident(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it != sessions_.end() && it->second.detector != nullptr;
}

std::vector<std::string> SpotService::SessionIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) ids.push_back(id);
  return ids;
}

namespace {

std::size_t PointWidth(const DataPoint& p) { return p.values.size(); }
std::size_t PointWidth(const std::vector<double>& v) { return v.size(); }

}  // namespace

template <typename Batch>
IngestResult SpotService::IngestImpl(const std::string& id,
                                     const Batch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  IngestResult result;
  Session* session = ResidentLocked(id);
  if (session == nullptr) return result;
  // Width guard: points of the wrong dimensionality (possible when the
  // batch crossed a process boundary, e.g. the network ingest layer)
  // would index out of the session's partition — refuse the batch whole
  // instead of feeding the detector undefined behavior.
  const std::size_t dims =
      static_cast<std::size_t>(session->detector->dimension());
  for (const auto& point : batch) {
    if (PointWidth(point) != dims) {
      SPOT_LOG(Error) << "Ingest('" << id << "'): point width "
                      << PointWidth(point) << " != session dimensionality "
                      << dims;
      return result;
    }
  }
  result.verdicts = session->detector->ProcessBatch(batch);
  result.ok = true;
  ++session->batches_ingested;
  session->last_stats = session->detector->stats();
  return result;
}

IngestResult SpotService::Ingest(const std::string& id,
                                 const std::vector<DataPoint>& batch) {
  return IngestImpl(id, batch);
}

IngestResult SpotService::Ingest(
    const std::string& id, const std::vector<std::vector<double>>& batch) {
  return IngestImpl(id, batch);
}

bool SpotService::Checkpoint(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  Session& session = it->second;
  if (session.detector == nullptr) return session.on_disk;
  if (config_.checkpoint_dir.empty()) return false;
  session.last_stats = session.detector->stats();
  if (!SaveTimedLocked(*session.detector, CheckpointPath(id))) {
    return false;
  }
  ++checkpoints_written_;
  session.on_disk = true;
  return true;
}

bool SpotService::CheckpointAll() {
  std::lock_guard<std::mutex> lock(mu_);
  bool all_ok = true;
  for (auto& [id, session] : sessions_) {
    if (session.detector == nullptr) continue;
    if (config_.checkpoint_dir.empty()) return false;
    session.last_stats = session.detector->stats();
    if (SaveTimedLocked(*session.detector, CheckpointPath(id))) {
      ++checkpoints_written_;
      session.on_disk = true;
    } else {
      all_ok = false;
    }
  }
  return all_ok;
}

bool SpotService::Evict(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  return EvictLocked(id, it->second);
}

bool SpotService::CloseSession(const std::string& id, bool persist) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  Session& session = it->second;
  if (persist && session.detector != nullptr &&
      !config_.checkpoint_dir.empty()) {
    session.last_stats = session.detector->stats();
    if (!SaveTimedLocked(*session.detector, CheckpointPath(id))) {
      return false;
    }
    ++checkpoints_written_;
  }
  sessions_.erase(it);
  return true;
}

void SpotService::FillNetStats(const Session& session, SpotStats* stats) {
  stats->frames_received = session.net.frames_received;
  stats->bytes_in = session.net.bytes_in;
  stats->bytes_out = session.net.bytes_out;
  stats->backpressure_stalls = session.net.backpressure_stalls;
  stats->net_queue_peak = session.net.queue_depth;
}

bool SpotService::RecordNetwork(const std::string& id,
                                const SessionNetActivity& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  SessionNetActivity& net = it->second.net;
  net.frames_received += delta.frames_received;
  net.bytes_in += delta.bytes_in;
  net.bytes_out += delta.bytes_out;
  net.backpressure_stalls += delta.backpressure_stalls;
  net.queue_depth = std::max(net.queue_depth, delta.queue_depth);
  return true;
}

bool SpotService::GetMetrics(const std::string& id,
                             SessionMetrics* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  const Session& session = it->second;
  out->id = id;
  out->resident = session.detector != nullptr;
  out->on_disk = session.on_disk;
  out->stats = session.detector != nullptr ? session.detector->stats()
                                           : session.last_stats;
  FillNetStats(session, &out->stats);
  out->batches_ingested = session.batches_ingested;
  out->evictions = session.evictions;
  out->reloads = session.reloads;
  return true;
}

ServiceMetrics SpotService::TotalMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceMetrics total;
  total.sessions = sessions_.size();
  total.evictions = evictions_;
  total.reloads = reloads_;
  total.checkpoints_written = checkpoints_written_;
  for (const auto& [id, session] : sessions_) {
    const SpotStats& stats = session.detector != nullptr
                                 ? session.detector->stats()
                                 : session.last_stats;
    if (session.detector != nullptr) ++total.resident_sessions;
    total.points_processed += stats.points_processed;
    total.outliers_detected += stats.outliers_detected;
    total.drifts_detected += stats.drifts_detected;
    total.batches_ingested += session.batches_ingested;
    total.detection_seconds += stats.detection_seconds;
    total.frames_received += session.net.frames_received;
    total.bytes_in += session.net.bytes_in;
    total.bytes_out += session.net.bytes_out;
    total.backpressure_stalls += session.net.backpressure_stalls;
    total.net_queue_peak =
        std::max(total.net_queue_peak, session.net.queue_depth);
  }
  return total;
}

obs::MetricsSnapshot SpotService::ObsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  obs::MetricsSnapshot snap = obs_.Snapshot();
  snap.counters["evictions"] = evictions_;
  snap.counters["reloads"] = reloads_;
  snap.counters["checkpoints_written"] = checkpoints_written_;
  snap.gauges["sessions"] = static_cast<double>(sessions_.size());
  snap.gauges["resident_sessions"] =
      static_cast<double>(ResidentCountLocked());
  return snap;
}

void MergeServiceMetrics(ServiceMetrics* into, const ServiceMetrics& from) {
  into->sessions += from.sessions;
  into->resident_sessions += from.resident_sessions;
  into->points_processed += from.points_processed;
  into->outliers_detected += from.outliers_detected;
  into->drifts_detected += from.drifts_detected;
  into->batches_ingested += from.batches_ingested;
  into->evictions += from.evictions;
  into->reloads += from.reloads;
  into->checkpoints_written += from.checkpoints_written;
  into->detection_seconds += from.detection_seconds;
  into->frames_received += from.frames_received;
  into->bytes_in += from.bytes_in;
  into->bytes_out += from.bytes_out;
  into->backpressure_stalls += from.backpressure_stalls;
  into->net_queue_peak = std::max(into->net_queue_peak, from.net_queue_peak);
}

}  // namespace spot
