#include "service/spot_service.h"

#include <algorithm>
#include <utility>

#include "common/log.h"
#include "core/checkpoint.h"
#include "grid/synapse_manager.h"

namespace spot {

SpotService::SpotService(SpotServiceConfig config)
    : config_(std::move(config)) {
  if (config_.max_resident == 0) config_.max_resident = 1;
  if (config_.num_shards == 0) config_.num_shards = 1;
  if (config_.num_shards > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_shards - 1);
  }
  if (config_.journal_capacity > 0) {
    journal_ = std::make_unique<obs::Journal>(config_.journal_capacity);
  }
}

SpotService::~SpotService() {
  // Detectors borrow pool_; destroy them first so no engine can outlive
  // the pool it dispatches onto.
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.clear();
}

bool SpotService::ValidSessionId(const std::string& id) {
  if (id.empty() || id.size() > 128 || id.front() == '.') return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string SpotService::CheckpointPath(const std::string& id) const {
  return config_.checkpoint_dir + "/" + id + ".ckpt";
}

std::size_t SpotService::ResidentCountLocked() const {
  std::size_t n = 0;
  for (const auto& [id, session] : sessions_) {
    if (session.detector != nullptr) ++n;
  }
  return n;
}

bool SpotService::SaveTimedLocked(const SpotDetector& detector,
                                  const std::string& path) {
  obs::ScopedLatency timer(h_ckpt_save_us_);
  return SaveCheckpointFile(detector, path);
}

bool SpotService::LoadTimedLocked(SpotDetector* detector,
                                  const std::string& path) {
  obs::ScopedLatency timer(h_ckpt_load_us_);
  return LoadCheckpointFile(detector, path);
}

void SpotService::ApplyPoolLocked(SpotDetector* detector) {
  detector->set_thread_pool(pool_.get());
  detector->set_num_shards(config_.num_shards);
  detector->set_collect_shard_timings(config_.collect_shard_timings);
  detector->set_collect_perf_counters(config_.collect_perf_counters);
}

void SpotService::BindSinkLocked(const std::string& id, Session* session) {
  if (journal_ == nullptr) return;
  if (session->sink == nullptr) {
    session->sink = std::make_unique<obs::JournalSink>(
        journal_.get(), journal_->InternSession(id));
  }
  if (session->detector != nullptr) {
    session->detector->set_event_sink(session->sink.get());
  }
}

void SpotService::JournalLifecycleLocked(Session& session,
                                         DetectorEventKind kind,
                                         std::uint64_t a, double value) {
  if (session.sink == nullptr) return;
  DetectorEvent event;
  event.kind = kind;
  event.tick = session.last_stats.points_processed;
  event.a = a;
  event.value = value;
  session.sink->OnDetectorEvent(event);
}

bool SpotService::EvictLocked(const std::string& id, Session& session) {
  if (session.detector == nullptr) return true;
  if (config_.checkpoint_dir.empty()) return false;
  session.last_stats = session.detector->stats();
  if (!SaveTimedLocked(*session.detector, CheckpointPath(id))) {
    SPOT_LOG(Error) << "eviction checkpoint for session '" << id
                    << "' failed; keeping it resident";
    return false;
  }
  ++checkpoints_written_;
  session.detector.reset();
  session.on_disk = true;
  ++session.evictions;
  ++evictions_;
  JournalLifecycleLocked(session, DetectorEventKind::kCheckpointSave, 0);
  JournalLifecycleLocked(session, DetectorEventKind::kSessionEvict,
                         session.evictions);
  return true;
}

bool SpotService::MakeRoomLocked(const Session* spare) {
  while (ResidentCountLocked() >= config_.max_resident) {
    // LRU scan over resident sessions; the ordered map makes ties (which
    // cannot happen — the use clock is strictly increasing) and iteration
    // deterministic anyway.
    std::string victim_id;
    Session* victim = nullptr;
    for (auto& [id, session] : sessions_) {
      if (session.detector == nullptr || &session == spare) continue;
      if (victim == nullptr || session.last_used < victim->last_used) {
        victim = &session;
        victim_id = id;
      }
    }
    if (victim == nullptr || !EvictLocked(victim_id, *victim)) return false;
  }
  return true;
}

SpotService::Session* SpotService::ResidentLocked(const std::string& id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return nullptr;
  Session& session = it->second;
  if (session.detector == nullptr) {
    if (!session.on_disk) return nullptr;
    // Load before evicting anyone (see OpenSession): a corrupt checkpoint
    // must not cost a resident session its slot.
    auto detector = std::make_unique<SpotDetector>(SpotConfig{});
    if (!LoadTimedLocked(detector.get(), CheckpointPath(id))) {
      SPOT_LOG(Error) << "reload of session '" << id << "' from "
                      << CheckpointPath(id) << " failed";
      return nullptr;
    }
    if (!MakeRoomLocked(&session)) return nullptr;
    session.detector = std::move(detector);
    ApplyPoolLocked(session.detector.get());
    BindSinkLocked(id, &session);
    ++session.reloads;
    ++reloads_;
    JournalLifecycleLocked(session, DetectorEventKind::kCheckpointLoad, 0);
    JournalLifecycleLocked(session, DetectorEventKind::kSessionReload,
                           session.reloads);
  }
  session.last_used = ++use_clock_;
  return &session;
}

bool SpotService::CreateSession(
    const std::string& id, const SpotConfig& config,
    const std::vector<std::vector<double>>& training,
    const DomainKnowledge* knowledge) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ValidSessionId(id)) {
    SPOT_LOG(Error) << "invalid session id '" << id << "'";
    return false;
  }
  if (sessions_.find(id) != sessions_.end()) {
    SPOT_LOG(Error) << "session '" << id << "' already exists";
    return false;
  }
  // Learn BEFORE evicting anyone: a failed admission must not knock a hot
  // session out of memory. (Residency transiently exceeds max_resident by
  // the one detector being built, which is the admission itself.)
  auto detector = std::make_unique<SpotDetector>(config);
  // Sink before Learn so the initial Track() sweep journals the session's
  // starting SST.
  std::unique_ptr<obs::JournalSink> sink;
  if (journal_ != nullptr) {
    sink = std::make_unique<obs::JournalSink>(journal_.get(),
                                              journal_->InternSession(id));
    detector->set_event_sink(sink.get());
  }
  if (!detector->Learn(training, knowledge)) return false;
  if (!MakeRoomLocked(nullptr)) {
    SPOT_LOG(Error) << "no residency slot for new session '" << id
                    << "' (max_resident=" << config_.max_resident
                    << ", eviction "
                    << (config_.checkpoint_dir.empty() ? "disabled"
                                                       : "failed")
                    << ")";
    return false;
  }
  ApplyPoolLocked(detector.get());
  Session session;
  session.detector = std::move(detector);
  session.sink = std::move(sink);
  session.last_used = ++use_clock_;
  sessions_.emplace(id, std::move(session));
  return true;
}

bool SpotService::OpenSession(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ValidSessionId(id) || config_.checkpoint_dir.empty()) return false;
  if (sessions_.find(id) != sessions_.end()) return false;
  // Load before evicting anyone: a missing/corrupt checkpoint must not
  // cost a resident session its slot.
  auto detector = std::make_unique<SpotDetector>(SpotConfig{});
  if (!LoadTimedLocked(detector.get(), CheckpointPath(id))) {
    SPOT_LOG(Error) << "cannot open session '" << id << "' from "
                    << CheckpointPath(id);
    return false;
  }
  if (!MakeRoomLocked(nullptr)) return false;
  ApplyPoolLocked(detector.get());
  Session session;
  session.detector = std::move(detector);
  session.on_disk = true;
  session.last_used = ++use_clock_;
  session.last_stats = session.detector->stats();
  auto [it, inserted] = sessions_.emplace(id, std::move(session));
  BindSinkLocked(id, &it->second);
  JournalLifecycleLocked(it->second, DetectorEventKind::kCheckpointLoad, 0);
  return true;
}

bool SpotService::HasSession(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.find(id) != sessions_.end();
}

bool SpotService::IsResident(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it != sessions_.end() && it->second.detector != nullptr;
}

std::vector<std::string> SpotService::SessionIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) ids.push_back(id);
  return ids;
}

namespace {

std::size_t PointWidth(const DataPoint& p) { return p.values.size(); }
std::size_t PointWidth(const std::vector<double>& v) { return v.size(); }

}  // namespace

template <typename Batch>
IngestResult SpotService::IngestImpl(const std::string& id,
                                     const Batch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  IngestResult result;
  Session* session = ResidentLocked(id);
  if (session == nullptr) return result;
  // Width guard: points of the wrong dimensionality (possible when the
  // batch crossed a process boundary, e.g. the network ingest layer)
  // would index out of the session's partition — refuse the batch whole
  // instead of feeding the detector undefined behavior.
  const std::size_t dims =
      static_cast<std::size_t>(session->detector->dimension());
  for (const auto& point : batch) {
    if (PointWidth(point) != dims) {
      SPOT_LOG(Error) << "Ingest('" << id << "'): point width "
                      << PointWidth(point) << " != session dimensionality "
                      << dims;
      return result;
    }
  }
  result.verdicts = session->detector->ProcessBatch(batch);
  result.ok = true;
  if (config_.collect_shard_timings) {
    result.shard_spans = session->detector->shard_spans();
  }
  if (config_.collect_perf_counters) HarvestPerfLocked(*session->detector);
  ++session->batches_ingested;
  session->last_stats = session->detector->stats();
  if (config_.collect_quality || session->sink != nullptr) {
    AccumulateQualityLocked(session, result.verdicts);
  }
  return result;
}

void SpotService::AccumulateQualityLocked(
    Session* session, const std::vector<SpotResult>& verdicts) {
  const SpotDetector& detector = *session->detector;
  if (config_.collect_quality) {
    const double rd_t = detector.config().rd_threshold;
    const double irsd_t = detector.config().irsd_threshold;
    for (const SpotResult& v : verdicts) {
      ++session->q_points;
      if (!v.is_outlier) continue;
      ++session->q_alarms;
      for (const SubspaceFinding& f : v.findings) {
        auto [it, inserted] = session->per_subspace.try_emplace(f.subspace);
        if (inserted) it->second.first_points = session->q_points - 1;
        ++it->second.alarms;
        // Ratio-to-threshold x1000 (shared ratio-metric convention): mass
        // just under 1000 = borderline verdicts.
        if (rd_t > 0.0) {
          session->rd_margin.Record(f.pcs.rd / rd_t * 1000.0);
        }
        if (irsd_t > 0.0) {
          session->irsd_margin.Record(f.pcs.irsd / irsd_t * 1000.0);
        }
      }
    }
  }
  // Journal this batch's grid-compaction delta. The synapse totals can
  // shrink when Untrack drops a grid's contribution, so only a growth is
  // an event; either way resample so the next delta starts clean.
  const std::uint64_t comp = detector.synapses().TotalCompactions();
  const std::uint64_t rec = detector.synapses().TotalCellsReclaimed();
  if (comp > session->last_compactions && session->sink != nullptr) {
    DetectorEvent event;
    event.kind = DetectorEventKind::kGridCompaction;
    event.tick = detector.stats().points_processed;
    event.a = comp - session->last_compactions;
    event.value = rec >= session->last_reclaimed
                      ? static_cast<double>(rec - session->last_reclaimed)
                      : 0.0;
    session->sink->OnDetectorEvent(event);
  }
  session->last_compactions = comp;
  session->last_reclaimed = rec;
}

void SpotService::HarvestPerfLocked(const SpotDetector& detector) {
  // The detector overwrites its totals every *sharded* batch, so each
  // harvest folds exactly one batch's deltas. Sequential sessions
  // (num_shards <= 1) produce all-zero totals — the families still render,
  // with zero samples, which is itself the signal that the engine tier ran
  // unsharded.
  perf_bin_total_.Merge(detector.bin_perf());
  const std::vector<obs::PerfStageTotals>& per_shard = detector.shard_perf();
  if (perf_probe_totals_.size() < per_shard.size()) {
    perf_probe_totals_.resize(per_shard.size());
  }
  for (std::size_t k = 0; k < per_shard.size(); ++k) {
    perf_probe_totals_[k].Merge(per_shard[k]);
  }
  obs::PublishPerfTotals(&obs_, "stage=\"bin\"", perf_bin_total_);
  std::uint64_t hw_samples = perf_bin_total_.hw_samples;
  for (std::size_t k = 0; k < perf_probe_totals_.size(); ++k) {
    obs::PublishPerfTotals(
        &obs_,
        "stage=\"probe\",engine_shard=\"" + std::to_string(k) + "\"",
        perf_probe_totals_[k]);
    hw_samples += perf_probe_totals_[k].hw_samples;
  }
  // Engine-tier mode, derived from what the pool threads actually
  // measured (the service cannot reach their thread-local groups): any
  // hardware sample means the PMU is live.
  obs_.GetGauge("perf_mode")
      ->Set(static_cast<double>(
          hw_samples > 0 ? static_cast<int>(obs::PerfMode::kHardware)
                         : static_cast<int>(obs::PerfMode::kSoftware)));
}

IngestResult SpotService::Ingest(const std::string& id,
                                 const std::vector<DataPoint>& batch) {
  return IngestImpl(id, batch);
}

IngestResult SpotService::Ingest(
    const std::string& id, const std::vector<std::vector<double>>& batch) {
  return IngestImpl(id, batch);
}

bool SpotService::ApplyFeedback(
    const std::string& id, const std::vector<std::uint64_t>& point_ids,
    const std::vector<std::vector<double>>& examples, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  Session* session = ResidentLocked(id);
  if (session == nullptr) {
    if (error != nullptr) {
      *error = "unknown session '" + id + "' (or reload failed)";
    }
    return false;
  }
  if (!session->detector->ApplyFeedback(point_ids, examples, error)) {
    return false;
  }
  session->last_stats = session->detector->stats();
  return true;
}

bool SpotService::QueryTopK(const std::string& id, std::size_t k,
                            std::vector<TopKEntry>* out, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  Session* session = ResidentLocked(id);
  if (session == nullptr) {
    if (error != nullptr) {
      *error = "unknown session '" + id + "' (or reload failed)";
    }
    return false;
  }
  *out = session->detector->QueryTopK(k);
  return true;
}

bool SpotService::Checkpoint(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  Session& session = it->second;
  if (session.detector == nullptr) return session.on_disk;
  if (config_.checkpoint_dir.empty()) return false;
  session.last_stats = session.detector->stats();
  if (!SaveTimedLocked(*session.detector, CheckpointPath(id))) {
    return false;
  }
  ++checkpoints_written_;
  session.on_disk = true;
  JournalLifecycleLocked(session, DetectorEventKind::kCheckpointSave, 0);
  return true;
}

bool SpotService::CheckpointAll() {
  std::lock_guard<std::mutex> lock(mu_);
  bool all_ok = true;
  for (auto& [id, session] : sessions_) {
    if (session.detector == nullptr) continue;
    if (config_.checkpoint_dir.empty()) return false;
    session.last_stats = session.detector->stats();
    if (SaveTimedLocked(*session.detector, CheckpointPath(id))) {
      ++checkpoints_written_;
      session.on_disk = true;
      JournalLifecycleLocked(session, DetectorEventKind::kCheckpointSave, 0);
    } else {
      all_ok = false;
    }
  }
  return all_ok;
}

bool SpotService::Evict(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  return EvictLocked(id, it->second);
}

bool SpotService::CloseSession(const std::string& id, bool persist) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  Session& session = it->second;
  if (persist && session.detector != nullptr &&
      !config_.checkpoint_dir.empty()) {
    session.last_stats = session.detector->stats();
    if (!SaveTimedLocked(*session.detector, CheckpointPath(id))) {
      return false;
    }
    ++checkpoints_written_;
    JournalLifecycleLocked(session, DetectorEventKind::kCheckpointSave, 0);
  }
  sessions_.erase(it);
  return true;
}

void SpotService::FillNetStats(const Session& session, SpotStats* stats) {
  stats->frames_received = session.net.frames_received;
  stats->bytes_in = session.net.bytes_in;
  stats->bytes_out = session.net.bytes_out;
  stats->backpressure_stalls = session.net.backpressure_stalls;
  stats->net_queue_peak = session.net.queue_depth;
}

bool SpotService::RecordNetwork(const std::string& id,
                                const SessionNetActivity& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  SessionNetActivity& net = it->second.net;
  net.frames_received += delta.frames_received;
  net.bytes_in += delta.bytes_in;
  net.bytes_out += delta.bytes_out;
  net.backpressure_stalls += delta.backpressure_stalls;
  net.queue_depth = std::max(net.queue_depth, delta.queue_depth);
  return true;
}

bool SpotService::GetMetrics(const std::string& id,
                             SessionMetrics* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  const Session& session = it->second;
  out->id = id;
  out->resident = session.detector != nullptr;
  out->on_disk = session.on_disk;
  out->stats = session.detector != nullptr ? session.detector->stats()
                                           : session.last_stats;
  FillNetStats(session, &out->stats);
  out->batches_ingested = session.batches_ingested;
  out->evictions = session.evictions;
  out->reloads = session.reloads;
  return true;
}

ServiceMetrics SpotService::TotalMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceMetrics total;
  total.sessions = sessions_.size();
  total.evictions = evictions_;
  total.reloads = reloads_;
  total.checkpoints_written = checkpoints_written_;
  for (const auto& [id, session] : sessions_) {
    const SpotStats& stats = session.detector != nullptr
                                 ? session.detector->stats()
                                 : session.last_stats;
    if (session.detector != nullptr) ++total.resident_sessions;
    total.points_processed += stats.points_processed;
    total.outliers_detected += stats.outliers_detected;
    total.drifts_detected += stats.drifts_detected;
    total.batches_ingested += session.batches_ingested;
    total.detection_seconds += stats.detection_seconds;
    total.frames_received += session.net.frames_received;
    total.bytes_in += session.net.bytes_in;
    total.bytes_out += session.net.bytes_out;
    total.backpressure_stalls += session.net.backpressure_stalls;
    total.net_queue_peak =
        std::max(total.net_queue_peak, session.net.queue_depth);
  }
  return total;
}

std::vector<obs::SessionQuality> SpotService::QualitySnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<obs::SessionQuality> out;
  if (!config_.collect_quality) return out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    obs::SessionQuality q;
    q.session_id = id;
    q.points = session.q_points;
    q.alarms = session.q_alarms;
    q.rd_margin = session.rd_margin;
    q.irsd_margin = session.irsd_margin;
    if (session.detector != nullptr) {
      const SynapseManager& synapses = session.detector->synapses();
      q.tracked_subspaces = session.detector->TrackedSubspaces();
      q.base_cells = synapses.base_grid().PopulatedCells();
      q.slab_slots = synapses.TotalSlabSlots();
      q.free_slots = synapses.TotalFreeSlots();
      q.compactions = synapses.TotalCompactions();
      q.cells_reclaimed = synapses.TotalCellsReclaimed();
    }
    // Top subspaces by alarms; ties break on the subspace mask so the
    // snapshot is deterministic.
    q.subspaces.reserve(session.per_subspace.size());
    for (const auto& [subspace, tally] : session.per_subspace) {
      obs::SubspaceQuality row;
      row.subspace_bits = subspace.bits();
      row.points = session.q_points - tally.first_points;
      row.alarms = tally.alarms;
      q.subspaces.push_back(row);
    }
    std::sort(q.subspaces.begin(), q.subspaces.end(),
              [](const obs::SubspaceQuality& a, const obs::SubspaceQuality& b) {
                if (a.alarms != b.alarms) return a.alarms > b.alarms;
                return a.subspace_bits < b.subspace_bits;
              });
    if (q.subspaces.size() > kQualityTopSubspaces) {
      q.subspaces.resize(kQualityTopSubspaces);
    }
    out.push_back(std::move(q));
  }
  return out;
}

obs::MetricsSnapshot SpotService::ObsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  obs::MetricsSnapshot snap = obs_.Snapshot();
  snap.counters["evictions"] = evictions_;
  snap.counters["reloads"] = reloads_;
  snap.counters["checkpoints_written"] = checkpoints_written_;
  snap.gauges["sessions"] = static_cast<double>(sessions_.size());
  snap.gauges["resident_sessions"] =
      static_cast<double>(ResidentCountLocked());
  return snap;
}

void MergeServiceMetrics(ServiceMetrics* into, const ServiceMetrics& from) {
  into->sessions += from.sessions;
  into->resident_sessions += from.resident_sessions;
  into->points_processed += from.points_processed;
  into->outliers_detected += from.outliers_detected;
  into->drifts_detected += from.drifts_detected;
  into->batches_ingested += from.batches_ingested;
  into->evictions += from.evictions;
  into->reloads += from.reloads;
  into->checkpoints_written += from.checkpoints_written;
  into->detection_seconds += from.detection_seconds;
  into->frames_received += from.frames_received;
  into->bytes_in += from.bytes_in;
  into->bytes_out += from.bytes_out;
  into->backpressure_stalls += from.backpressure_stalls;
  into->net_queue_peak = std::max(into->net_queue_peak, from.net_queue_peak);
}

}  // namespace spot
