#ifndef SPOT_SERVICE_SPOT_SERVICE_H_
#define SPOT_SERVICE_SPOT_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/spot_config.h"
#include "engine/thread_pool.h"
#include "learning/supervised.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "stream/data_point.h"

namespace spot {

/// Configuration of a SpotService instance.
struct SpotServiceConfig {
  /// Maximum number of detector sessions resident in memory at once. When
  /// admitting one more would exceed this, the least-recently-used
  /// resident session is checkpointed to `checkpoint_dir` and dropped;
  /// the next Ingest for it transparently reloads it.
  std::size_t max_resident = 8;

  /// Shard count applied to every session's ProcessBatch. All sessions
  /// share ONE fork-join pool owned by the service (`num_shards - 1`
  /// workers); verdicts never depend on this — it is purely a throughput
  /// knob, exactly as for a standalone detector.
  std::size_t num_shards = 1;

  /// Directory for session checkpoints (`<dir>/<id>.ckpt`, written via the
  /// binary full-state format of src/core/checkpoint.h). Must already
  /// exist. When empty, eviction and persistence are disabled: sessions
  /// beyond max_resident are refused instead of evicted.
  std::string checkpoint_dir;

  /// Capacity of the service's detector event journal (DESIGN.md Section
  /// 10): the bounded ring of engine state transitions (SST churn, drift,
  /// evolution, compactions, checkpoint lifecycle) across all sessions.
  /// 0 disables journaling entirely — detectors run unsinked and pay
  /// nothing.
  std::size_t journal_capacity = 8192;

  /// Accumulate per-session detection-quality metrics (per-subspace alarm
  /// tallies + verdict-margin histograms) from every ingest. On by
  /// default: the cost is one map update per *finding* (findings are rare)
  /// plus two histogram records per finding — never per clean point.
  bool collect_quality = true;

  /// Collect per-shard wall-clock spans for each ProcessBatch (two
  /// SteadyMicrosSinceStart() reads per shard per batch) and surface them
  /// in IngestResult::shard_spans. The serving layer turns these into
  /// `shard_probe` flight-recorder lanes; off by default for embedded use.
  bool collect_shard_timings = false;

  /// Collect hardware-counter deltas for each sharded ProcessBatch's
  /// phase-0 binning pass and per-shard probe loops (DESIGN.md Section
  /// 12) and accumulate them into the service's ObsSnapshot as labeled
  /// `perf_*` families (`stage="bin"`, `stage="probe",engine_shard="k"`).
  /// Degrades to a clock-only software fallback where perf_event_open is
  /// denied. Off by default; verdicts and checkpoint bytes are
  /// bit-identical either way.
  bool collect_perf_counters = false;
};

/// Point-in-time view of one session (the per-session half of the metrics
/// registry). `stats` is the session detector's SpotStats — live when the
/// session is resident, the values captured at eviction otherwise, so the
/// registry stays meaningful for evicted sessions too.
struct SessionMetrics {
  std::string id;
  bool resident = false;
  bool on_disk = false;
  SpotStats stats;
  std::uint64_t batches_ingested = 0;
  std::uint64_t evictions = 0;
  std::uint64_t reloads = 0;
};

/// Aggregate view over every known session plus service-level counters
/// (the global half of the metrics registry).
struct ServiceMetrics {
  std::size_t sessions = 0;
  std::size_t resident_sessions = 0;
  std::uint64_t points_processed = 0;
  std::uint64_t outliers_detected = 0;
  std::uint64_t drifts_detected = 0;
  std::uint64_t batches_ingested = 0;
  std::uint64_t evictions = 0;
  std::uint64_t reloads = 0;
  std::uint64_t checkpoints_written = 0;
  double detection_seconds = 0.0;

  /// Network-ingest aggregates over all sessions (see the matching
  /// SpotStats fields): sums, except net_queue_peak which is the max.
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t backpressure_stalls = 0;
  std::uint64_t net_queue_peak = 0;
};

/// Folds `from` into `into`, field by field: sums everywhere except
/// net_queue_peak, which keeps the max (it is itself a peak). Used by the
/// multi-reactor server to aggregate its per-reactor service shards.
void MergeServiceMetrics(ServiceMetrics* into, const ServiceMetrics& from);

/// One observation of a session's network activity, reported by the
/// serving layer (src/net/spot_server.cc) after it handles traffic for the
/// session. Counter fields are *deltas* accumulated into the session's
/// running totals; `queue_depth` is an *observation* folded in as a peak.
struct SessionNetActivity {
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t backpressure_stalls = 0;
  /// Pending coalesced points observed for the session (max-folded into
  /// SpotStats::net_queue_peak).
  std::uint64_t queue_depth = 0;
};

/// Result of one Ingest call. `ok` is false when the session is unknown,
/// its reload from disk failed, or the service could not admit it.
struct IngestResult {
  bool ok = false;
  std::vector<SpotResult> verdicts;
  /// Per-shard wall-clock spans of the batch's probe phase, indexed by
  /// shard. Empty unless SpotServiceConfig::collect_shard_timings is set.
  std::vector<ShardSpan> shard_spans;
};

/// Long-lived detection service multiplexing many independent SPOT
/// sessions onto one shared worker pool (DESIGN.md Section 4).
///
/// Each *session* is a named, fully independent detector: its own config,
/// partition, SST and synapses. The service routes interleaved
/// `Ingest(session_id, batch)` calls to the right session, keeps at most
/// `max_resident` of them in memory (LRU-evicting the rest to binary
/// checkpoints and reloading them transparently on their next batch), and
/// maintains a per-session + global metrics registry built on SpotStats.
///
/// Because eviction uses the full-state checkpoint format, an evicted
/// session resumes *bit-identically*: the verdict sequence of a session is
/// independent of how often it was evicted, reloaded, or interleaved with
/// other sessions (tests/service_test.cc proves this).
///
/// Thread-safety: all public methods are safe to call from multiple
/// threads; calls are serialized by an internal mutex. Parallelism comes
/// from the shard pool *inside* a batch, not from concurrent batches —
/// a session's stream is inherently ordered anyway.
class SpotService {
 public:
  explicit SpotService(SpotServiceConfig config);
  ~SpotService();

  SpotService(const SpotService&) = delete;
  SpotService& operator=(const SpotService&) = delete;

  /// True when `id` is usable as a session name (and hence a checkpoint
  /// file stem): non-empty, at most 128 chars, `[A-Za-z0-9._-]` only, and
  /// not starting with a dot.
  static bool ValidSessionId(const std::string& id);

  /// Creates and learns a new session. Fails (false) on an invalid or
  /// duplicate id, a failed Learn(), or when no residency slot can be
  /// freed. The training batch is the session's offline learning stage.
  bool CreateSession(const std::string& id, const SpotConfig& config,
                     const std::vector<std::vector<double>>& training,
                     const DomainKnowledge* knowledge = nullptr);

  /// Registers a session persisted by an earlier service instance (e.g.
  /// after a process restart) from `checkpoint_dir/<id>.ckpt`. The
  /// checkpoint embeds the full config, so nothing else is needed. The
  /// session is admitted resident immediately.
  bool OpenSession(const std::string& id);

  bool HasSession(const std::string& id) const;
  bool IsResident(const std::string& id) const;

  /// All known session ids, sorted.
  std::vector<std::string> SessionIds() const;

  /// Routes one batch to `id`'s detector, transparently reloading it from
  /// disk (and LRU-evicting another session) when it is not resident.
  IngestResult Ingest(const std::string& id,
                      const std::vector<DataPoint>& batch);

  /// Convenience overload for raw value vectors.
  IngestResult Ingest(const std::string& id,
                      const std::vector<std::vector<double>>& batch);

  /// Routes one supervised feedback round to `id`'s detector (reloading it
  /// if needed): labels retained points by id and/or submits fresh labeled
  /// examples (see SpotDetector::ApplyFeedback). Must be called at a batch
  /// boundary of the session's stream — feedback consumes one RNG draw, so
  /// its position relative to Ingest calls determines all later verdicts.
  /// False with `error` (may be nullptr) set when the session is unknown,
  /// cannot be made resident, or the detector refused the round.
  bool ApplyFeedback(const std::string& id,
                     const std::vector<std::uint64_t>& point_ids,
                     const std::vector<std::vector<double>>& examples,
                     std::string* error = nullptr);

  /// The k worst outliers in `id`'s current (omega, epsilon) window, best
  /// first (reloads the session if needed; the query itself never mutates
  /// detection state). False with `error` set when the session is unknown
  /// or cannot be made resident.
  bool QueryTopK(const std::string& id, std::size_t k,
                 std::vector<TopKEntry>* out, std::string* error = nullptr);

  /// Writes `id`'s checkpoint without evicting it. True for a session that
  /// is already (only) on disk.
  bool Checkpoint(const std::string& id);

  /// Checkpoints every resident session (e.g. before shutdown). True only
  /// when all writes succeeded.
  bool CheckpointAll();

  /// Checkpoints `id` and drops its detector from memory.
  bool Evict(const std::string& id);

  /// Forgets the session. With `persist` (and a checkpoint_dir) its final
  /// state is written first; otherwise any previous checkpoint file is
  /// left as-is and the in-memory state is discarded.
  bool CloseSession(const std::string& id, bool persist = true);

  /// Folds one round of network activity into `id`'s transport counters
  /// (surfaced through the SpotStats fields of GetMetrics/TotalMetrics).
  /// The counters live in the session registry — not the detector — so
  /// they survive eviction, reload and kill/restore, and never leak into
  /// checkpoints. False when `id` is unknown.
  bool RecordNetwork(const std::string& id, const SessionNetActivity& delta);

  /// Per-session metrics; false when `id` is unknown.
  bool GetMetrics(const std::string& id, SessionMetrics* out) const;

  /// Global metrics over all known sessions.
  ServiceMetrics TotalMetrics() const;

  /// Observability snapshot (DESIGN.md Section 9): checkpoint save/load
  /// duration histograms plus eviction/reload/checkpoint counters and
  /// session-count gauges. Safe from any thread (locks internally); the
  /// serving layer scrapes one snapshot per shard.
  obs::MetricsSnapshot ObsSnapshot() const;

  /// Per-session detection-quality snapshots (DESIGN.md Section 10), one
  /// per known session in id order: alarm tallies per subspace (top
  /// `kQualityTopSubspaces` by alarms), verdict-margin histograms, and —
  /// for resident sessions — live grid occupancy gauges. Empty when
  /// collect_quality is off. Safe from any thread.
  std::vector<obs::SessionQuality> QualitySnapshot() const;

  /// The detector event journal shared by every session of this service,
  /// or nullptr when journal_capacity == 0.
  obs::Journal* journal() const { return journal_.get(); }

  /// Per-subspace rows retained in a QualitySnapshot entry (the map keeps
  /// every alarming subspace; only the snapshot is capped).
  static constexpr std::size_t kQualityTopSubspaces = 64;

  const SpotServiceConfig& config() const { return config_; }

 private:
  /// Per-subspace alarm tally (see obs::SubspaceQuality): `first_points`
  /// is the session's q_points value when the subspace first alarmed, so
  /// the snapshot's alarm-rate denominator is q_points - first_points.
  struct SubspaceTally {
    std::uint64_t first_points = 0;
    std::uint64_t alarms = 0;
  };

  struct Session {
    std::unique_ptr<SpotDetector> detector;  // null while evicted
    SpotStats last_stats;  // captured at eviction / refreshed per batch
    bool on_disk = false;
    std::uint64_t last_used = 0;
    std::uint64_t batches_ingested = 0;
    std::uint64_t evictions = 0;
    std::uint64_t reloads = 0;
    /// Accumulated network counters (queue_depth holds the peak).
    SessionNetActivity net;

    /// Journal binding (set once at create/open when the journal exists;
    /// survives eviction so lifecycle events keep their session tag).
    std::unique_ptr<obs::JournalSink> sink;

    /// Detection-quality accumulation (survives eviction — these describe
    /// the session's served stream, not the resident detector).
    std::uint64_t q_points = 0;
    std::uint64_t q_alarms = 0;
    obs::Histogram rd_margin;
    obs::Histogram irsd_margin;
    std::map<Subspace, SubspaceTally> per_subspace;
    /// Last sampled synapse compaction totals (for per-batch deltas; the
    /// totals can shrink when Untrack removes a grid, so deltas clamp).
    std::uint64_t last_compactions = 0;
    std::uint64_t last_reclaimed = 0;
  };

  /// Copies the session's accumulated network counters into the SpotStats
  /// view reported by the metrics registry.
  static void FillNetStats(const Session& session, SpotStats* stats);

  /// Shared body of both Ingest overloads (they differ only in the batch
  /// type SpotDetector::ProcessBatch accepts).
  template <typename Batch>
  IngestResult IngestImpl(const std::string& id, const Batch& batch);

  std::string CheckpointPath(const std::string& id) const;
  std::size_t ResidentCountLocked() const;
  /// SaveCheckpointFile / LoadCheckpointFile with the duration recorded
  /// into the checkpoint histograms (call with mu_ held, like everything
  /// else touching obs_).
  bool SaveTimedLocked(const SpotDetector& detector, const std::string& path);
  bool LoadTimedLocked(SpotDetector* detector, const std::string& path);
  /// Evicts LRU resident sessions (sparing `spare`) until one more can be
  /// admitted; false when that is impossible (no checkpoint_dir or a
  /// checkpoint write failed).
  bool MakeRoomLocked(const Session* spare);
  bool EvictLocked(const std::string& id, Session& session);
  /// Returns `id`'s session resident (reloading if needed), else nullptr.
  Session* ResidentLocked(const std::string& id);
  void ApplyPoolLocked(SpotDetector* detector);
  /// Creates the session's journal sink (no-op without a journal) and
  /// attaches it to the detector.
  void BindSinkLocked(const std::string& id, Session* session);
  /// Emits a service-lifecycle event (checkpoint save/load, evict,
  /// reload) into the journal under the session's tag; no-op unsinked.
  void JournalLifecycleLocked(Session& session, DetectorEventKind kind,
                              std::uint64_t a, double value = 0.0);
  /// Folds one batch's verdicts into the session's quality tallies and
  /// journals the batch's grid-compaction delta.
  void AccumulateQualityLocked(Session* session,
                               const std::vector<SpotResult>& verdicts);
  /// Merges the detector's per-batch counter deltas (bin pass + per-shard
  /// probe loops) into the service running totals and republishes the
  /// labeled `perf_*` families into obs_ (mu_ held).
  void HarvestPerfLocked(const SpotDetector& detector);

  SpotServiceConfig config_;
  /// The one pool every session's sharded engine borrows (null when
  /// num_shards <= 1). Owning it here — instead of one pool per detector —
  /// is what lets N sessions share a fixed worker budget.
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex mu_;
  /// Ordered map: SessionIds() and LRU scans are deterministic.
  std::map<std::string, Session> sessions_;
  std::uint64_t use_clock_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t reloads_ = 0;
  std::uint64_t checkpoints_written_ = 0;

  /// Service-level instruments; written only with mu_ held (the service
  /// is mutex-serialized anyway, so this adds no locking of its own) and
  /// exported as a copy by ObsSnapshot().
  obs::Registry obs_;
  obs::Histogram* h_ckpt_save_us_ = obs_.GetHistogram("checkpoint_save_us");
  obs::Histogram* h_ckpt_load_us_ = obs_.GetHistogram("checkpoint_load_us");

  /// Engine-tier perf accumulation (collect_perf_counters): detectors
  /// overwrite their bin/shard totals every sharded batch; IngestImpl
  /// merges those deltas here (mu_ held) and republishes the labeled
  /// families into obs_. `engine_shard=` (not `shard=`) because the
  /// serving tier already sections service snapshots under shard="i".
  obs::PerfStageTotals perf_bin_total_;
  std::vector<obs::PerfStageTotals> perf_probe_totals_;

  /// Event journal shared by every session (null when disabled). Created
  /// once in the constructor; sinks hand out stable pointers to it.
  std::unique_ptr<obs::Journal> journal_;
};

}  // namespace spot

#endif  // SPOT_SERVICE_SPOT_SERVICE_H_
