#ifndef SPOT_ENGINE_SHARDED_ENGINE_H_
#define SPOT_ENGINE_SHARDED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/detector.h"
#include "engine/thread_pool.h"
#include "grid/synapse_shard.h"
#include "subspace/subspace.h"

namespace spot {

/// Shard-parallel batch detection over a SpotDetector's synapses.
///
/// The engine partitions the tracked SST subspaces into `num_shards`
/// disjoint SynapseShard views, each owned by one worker of a reusable
/// fork-join pool, and processes a batch in three phases:
///
///   0. Coordinator: bin every point's base-cell coordinates once, fold it
///      into the (single-owner) base grid, and snapshot the decayed total
///      weight after each fold — the authoritative per-point W.
///   1. Fan-out: every shard folds the whole batch into its own grids in
///      arrival order, recording per-(subspace, point) PCS and fringe
///      verdicts. A grid's state depends only on its own input sequence, so
///      this is bit-identical to interleaved sequential updates.
///   2. Serial join, in arrival order: assemble each point's verdict from
///      the recorded columns in the manager's dense tracked order, then run
///      the sequential side-effect machinery (reservoir, OS growth, CS
///      self-evolution, drift detection) at exactly the same ticks as
///      SpotDetector::Process would. When a side effect changes the tracked
///      set mid-batch, the shard views resync and the newly tracked grids
///      replay the remaining batch tail (they start empty at the event
///      point, exactly like sequential processing); verdicts past the event
///      are assembled from the new tracked order.
///
/// Verdicts (labels, findings, scores) and side-effect counters are
/// bit-identical to sequential SpotDetector::ProcessBatch at every shard
/// count; K=1 degenerates to today's path run inline without threads.
class ShardedSpotEngine {
 public:
  /// Borrows `detector` and `pool`, both of which must outlive the engine.
  /// `num_shards` >= 1. The engine never owns its pool: the detector owns
  /// one lazily for standalone use, and the SpotService shares one pool
  /// across every session's engine (the pool's worker count is independent
  /// of K — Dispatch hands shard jobs to whoever is free, the calling
  /// thread included). `pool` may be null when num_shards == 1, where the
  /// engine degenerates to inline processing.
  ShardedSpotEngine(SpotDetector* detector, std::size_t num_shards,
                    ThreadPool* pool);
  ~ShardedSpotEngine();

  ShardedSpotEngine(const ShardedSpotEngine&) = delete;
  ShardedSpotEngine& operator=(const ShardedSpotEngine&) = delete;

  std::size_t num_shards() const { return num_shards_; }
  ThreadPool* pool() const { return pool_; }

  /// Processes `points` in arrival order; one verdict per point,
  /// bit-identical to sequential SpotDetector::ProcessBatch. (Raw value
  /// vectors go through SpotDetector::ProcessBatch, which also maintains
  /// the timing stats.)
  std::vector<SpotResult> ProcessBatch(const std::vector<DataPoint>& points);

 private:
  /// Rebuilds the dense column view (and the subspace -> column store)
  /// against the manager's current tracked set. Columns for untracked
  /// subspaces are dropped (their grids are gone); columns for newly
  /// tracked subspaces are created with `n`-point lanes and appended to
  /// `fresh` when given. With `reset_all`, every column's lanes are cleared
  /// for a new batch.
  void Resync(std::size_t n, bool reset_all,
              std::vector<ShardColumn*>* fresh);

  /// Deterministically slices the dense columns round-robin across shards.
  void SliceShards();

  SpotDetector* detector_;
  std::size_t num_shards_;
  ThreadPool* pool_;  // borrowed; unused (may be null) when num_shards_ == 1

  BatchFrame frame_;
  std::unordered_map<Subspace, ShardColumn, SubspaceHash> columns_;
  std::vector<ShardColumn*> dense_columns_;  // manager dense order
  std::vector<SynapseShard> shards_;
  std::uint64_t resync_stamp_ = 0;
};

}  // namespace spot

#endif  // SPOT_ENGINE_SHARDED_ENGINE_H_
