#include "engine/sharded_engine.h"

#include <algorithm>

#include "common/log.h"
#include "common/math_util.h"
#include "common/timer.h"
#include "grid/synapse_manager.h"
#include "obs/perf_counters.h"

namespace spot {

ShardedSpotEngine::ShardedSpotEngine(SpotDetector* detector,
                                     std::size_t num_shards, ThreadPool* pool)
    : detector_(detector),
      num_shards_(num_shards == 0 ? 1 : num_shards),
      pool_(num_shards_ > 1 ? pool : nullptr) {
  shards_.resize(num_shards_);
}

ShardedSpotEngine::~ShardedSpotEngine() = default;

void ShardedSpotEngine::Resync(std::size_t n, bool reset_all,
                               std::vector<ShardColumn*>* fresh) {
  SynapseManager& synapses = *detector_->synapses_;
  ++resync_stamp_;
  dense_columns_.clear();
  const std::size_t tracked = synapses.NumTracked();
  dense_columns_.reserve(tracked);
  for (std::size_t i = 0; i < tracked; ++i) {
    auto [it, inserted] = columns_.try_emplace(synapses.SubspaceAt(i));
    ShardColumn& column = it->second;
    // A serial mismatch means the subspace was untracked and re-tracked
    // since this column last saw it: the grid is fresh and empty, so the
    // column restarts (and replays the batch tail) exactly as a new one.
    if (inserted || reset_all || column.serial != synapses.SerialAt(i)) {
      column.subspace = synapses.SubspaceAt(i);
      column.grid = synapses.GridAt(i);
      column.serial = synapses.SerialAt(i);
      column.pcs.assign(n, Pcs{});
      column.vetoed.assign(n, 0);
      if (fresh != nullptr) fresh->push_back(&column);
    }
    column.stamp = resync_stamp_;
    dense_columns_.push_back(&column);
  }
  // Sweep columns of untracked subspaces — their grids no longer exist.
  if (columns_.size() != dense_columns_.size()) {
    for (auto it = columns_.begin(); it != columns_.end();) {
      it = it->second.stamp == resync_stamp_ ? std::next(it)
                                             : columns_.erase(it);
    }
  }
}

void ShardedSpotEngine::SliceShards() {
  for (SynapseShard& shard : shards_) shard.Clear();
  for (std::size_t i = 0; i < dense_columns_.size(); ++i) {
    shards_[i % num_shards_].Adopt(dense_columns_[i]);
  }
}

std::vector<SpotResult> ShardedSpotEngine::ProcessBatch(
    const std::vector<DataPoint>& points) {
  SpotDetector& detector = *detector_;
  std::vector<SpotResult> results;
  if (!detector.learned()) {
    SPOT_LOG(Error) << "ProcessBatch() called before a successful Learn()";
    results.resize(points.size());
    return results;
  }
  const std::size_t n = points.size();
  if (n == 0) return results;
  results.reserve(n);

  SynapseManager& synapses = *detector.synapses_;
  const SpotConfig& config = detector.config_;
  const ShardRunParams params{config.rd_threshold, config.irsd_threshold,
                              config.fringe_factor};
  // Counter attribution (DESIGN.md Section 12): per-batch overwrite,
  // mirroring shard_spans_ — the service harvests the deltas right after
  // ProcessBatch returns. Pure measurement on the side: the measured code
  // is untouched, so verdicts stay bit-identical with profiling on.
  const bool perf = detector.collect_perf_counters_;
  if (perf) {
    detector.bin_perf_ = obs::PerfStageTotals{};
    detector.shard_perf_.assign(num_shards_, obs::PerfStageTotals{});
  }

  // Phase 0 — coordinator: bin each point once, fold it into the
  // single-owner base grid, and snapshot the per-point total weight. The
  // base grid never depends on the tracked set, so it can run ahead of the
  // join; every weight is exactly the W the sequential path would read.
  // Binning the whole batch first lets the fold loop prefetch point j+1's
  // base-cell bucket while folding point j (DESIGN.md Section 3.9).
  {
    obs::ScopedCounters bin_perf(perf ? obs::ThreadPerfGroup() : nullptr,
                                 &detector.bin_perf_);
    bin_perf.set_units(n);
    frame_.points = &points;
    frame_.base_coords.resize(n);
    frame_.ticks.resize(n);
    frame_.total_weights.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      frame_.ticks[j] = detector.tick_++;
      synapses.BinBase(points[j].values, &frame_.base_coords[j]);
    }
    const BaseGrid& base = synapses.base_grid();
    std::uint64_t hash = base.PrefetchCoords(frame_.base_coords[0]);
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t next_hash =
          j + 1 < n ? base.PrefetchCoords(frame_.base_coords[j + 1]) : 0;
      frame_.total_weights[j] =
          synapses.AddBase(frame_.base_coords[j], hash, points[j].values,
                           frame_.ticks[j]);
      hash = next_hash;
    }
  }

  // Phase 1 — fan the per-subspace work out to the shards. When the flight
  // recorder asks for shard timings, each worker clocks its own span into a
  // distinct slot (no contention; Dispatch joins before anyone reads them).
  // The tail replays below are deliberately untimed: they are rare
  // correction work, not the steady-state probe cost.
  Resync(n, /*reset_all=*/true, nullptr);
  SliceShards();
  const bool timed = detector.collect_shard_timings_;
  if (timed) detector.shard_spans_.assign(num_shards_, ShardSpan{});
  if (pool_ != nullptr) {
    pool_->Dispatch(shards_.size(), [&](std::size_t k) {
      const std::uint64_t t0 = timed ? SteadyMicrosSinceStart() : 0;
      {
        // Each worker thread measures with its own group into its own
        // slot — no contention; Dispatch joins before anyone reads them.
        obs::ScopedCounters probe_perf(
            perf ? obs::ThreadPerfGroup() : nullptr,
            perf ? &detector.shard_perf_[k] : nullptr);
        probe_perf.set_units(n * shards_[k].NumGrids());  // logical probes
        shards_[k].ProcessRun(frame_, 0, n, params);
      }
      if (timed) {
        detector.shard_spans_[k] = {t0, SteadyMicrosSinceStart() - t0};
      }
    });
  } else {
    const std::uint64_t t0 = timed ? SteadyMicrosSinceStart() : 0;
    {
      obs::ScopedCounters probe_perf(perf ? obs::ThreadPerfGroup() : nullptr,
                                     perf ? &detector.shard_perf_[0] : nullptr);
      probe_perf.set_units(n * shards_[0].NumGrids());
      shards_[0].ProcessRun(frame_, 0, n, params);
    }
    if (timed) {
      detector.shard_spans_[0] = {t0, SteadyMicrosSinceStart() - t0};
    }
  }

  // Phase 2 — serial join in arrival order, with the side-effect machinery
  // (reservoir, OS growth, self-evolution, drift) running at the same ticks
  // as sequential processing.
  std::uint64_t revision = synapses.revision();
  std::vector<ShardColumn*> fresh;
  for (std::size_t j = 0; j < n; ++j) {
    detector.AddToReservoir(points[j].values);
    SpotResult result;
    double min_rd = 1.0;
    for (ShardColumn* column : dense_columns_) {
      const Pcs& pcs = column->pcs[j];
      min_rd = std::min(min_rd, pcs.rd);
      if (pcs.IsSparse(config.rd_threshold, config.irsd_threshold) &&
          column->vetoed[j] == 0) {
        result.findings.push_back({column->subspace, pcs});
      }
    }
    result.is_outlier = !result.findings.empty();
    result.score = Clamp(1.0 - min_rd, 0.0, 1.0);

    detector.ApplyPointSideEffects(points[j].id, frame_.ticks[j],
                                   points[j].values, result);

    if (synapses.revision() != revision) {
      // The tracked set changed (OS growth, self-evolution or drift
      // relearning): resync the shard views and replay the batch tail into
      // the newly tracked grids — they start empty at this event point,
      // exactly as sequential processing would leave them.
      revision = synapses.revision();
      fresh.clear();
      Resync(n, /*reset_all=*/false, &fresh);
      const std::size_t begin = j + 1;
      if (begin < n && !fresh.empty()) {
        if (pool_ != nullptr) {
          pool_->Dispatch(fresh.size(), [&](std::size_t f) {
            SynapseShard::ProcessColumn(fresh[f], frame_, begin, n, params);
          });
        } else {
          for (ShardColumn* column : fresh) {
            SynapseShard::ProcessColumn(column, frame_, begin, n, params);
          }
        }
      }
    }
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace spot
