#ifndef SPOT_ENGINE_THREAD_POOL_H_
#define SPOT_ENGINE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spot {

/// Reusable fork-join pool for the sharded engine.
///
/// Dispatch(num_jobs, job) runs job(0..num_jobs) across the pool's worker
/// threads plus the calling thread, blocking until every job has finished.
/// Jobs are pulled from a shared atomic counter, so which thread runs a
/// given job is not deterministic — callers must hand out jobs whose results
/// do not depend on their executor (the engine's jobs are whole shards /
/// whole grids, each internally sequential and touching disjoint state).
///
/// The mutex handshake around each dispatch establishes happens-before in
/// both directions: workers see all coordinator writes preceding Dispatch(),
/// and the coordinator sees all worker writes once Dispatch() returns.
/// Dispatch() does not return while any worker is still inside the job loop
/// (participants are counted), so a dispatch's state can never be read by a
/// straggler after the call completed; workers that wake up late find a null
/// job and go straight back to sleep.
class ThreadPool {
 public:
  /// Spawns `num_threads` persistent workers (0 = run everything inline on
  /// the dispatching thread).
  explicit ThreadPool(std::size_t num_threads) {
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Runs job(i) for every i in [0, num_jobs) and returns once all have
  /// completed. The calling thread participates.
  void Dispatch(std::size_t num_jobs,
                const std::function<void(std::size_t)>& job) {
    if (num_jobs == 0) return;
    if (workers_.empty() || num_jobs == 1) {
      for (std::size_t i = 0; i < num_jobs; ++i) job(i);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &job;
      num_jobs_ = num_jobs;
      next_job_.store(0, std::memory_order_relaxed);
      completed_ = 0;
      ++generation_;
    }
    work_ready_.notify_all();
    const std::size_t ran = RunJobs();
    std::unique_lock<std::mutex> lock(mutex_);
    completed_ += ran;
    all_done_.wait(lock, [this] {
      return completed_ == num_jobs_ && active_workers_ == 0;
    });
    job_ = nullptr;
  }

 private:
  /// Pulls and runs jobs until none remain. Returns the number executed by
  /// this thread. Only called between the generation handshake (workers) or
  /// the dispatch setup (coordinator) and the matching completion bookkeeping,
  /// so the unlocked reads of job_/num_jobs_ cannot race a later dispatch.
  std::size_t RunJobs() {
    std::size_t ran = 0;
    for (;;) {
      const std::size_t i = next_job_.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_jobs_) break;
      (*job_)(i);
      ++ran;
    }
    return ran;
  }

  void WorkerLoop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_ready_.wait(lock, [&] {
          return stop_ || generation_ != seen_generation;
        });
        if (stop_) return;
        seen_generation = generation_;
        // A straggler can observe the generation bump after the dispatch
        // already completed; the job is null by then — nothing to join.
        if (job_ == nullptr) continue;
        ++active_workers_;
      }
      const std::size_t ran = RunJobs();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        completed_ += ran;
        --active_workers_;
        if (active_workers_ == 0 && completed_ == num_jobs_) {
          all_done_.notify_all();
        }
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t num_jobs_ = 0;
  std::atomic<std::size_t> next_job_{0};
  std::size_t completed_ = 0;        // guarded by mutex_
  std::size_t active_workers_ = 0;   // guarded by mutex_
  std::uint64_t generation_ = 0;     // guarded by mutex_
  bool stop_ = false;                // guarded by mutex_
};

}  // namespace spot

#endif  // SPOT_ENGINE_THREAD_POOL_H_
