#include "subspace/lattice.h"

#include <unordered_set>

#include "common/math_util.h"

namespace spot {

namespace {

// Smallest mask with `dim` low bits set.
std::uint64_t FirstOfDim(int dim) {
  if (dim <= 0) return 0;
  if (dim >= 64) return ~0ULL;
  return (1ULL << static_cast<unsigned>(dim)) - 1ULL;
}

}  // namespace

Subspace NextSameDimension(const Subspace& s, int num_dims) {
  const std::uint64_t v = s.bits();
  if (v == 0) return Subspace();
  // Gosper's hack: next integer with the same popcount.
  const std::uint64_t c = v & (~v + 1);
  const std::uint64_t r = v + c;
  if (r == 0) return Subspace();  // overflowed 64 bits
  const std::uint64_t next = (((r ^ v) >> 2) / c) | r;
  const std::uint64_t domain =
      num_dims >= 64 ? ~0ULL : (1ULL << static_cast<unsigned>(num_dims)) - 1ULL;
  if ((next & ~domain) != 0) return Subspace();
  return Subspace(next);
}

std::vector<Subspace> EnumerateSubspacesOfDim(int num_dims, int dim) {
  std::vector<Subspace> out;
  if (dim <= 0 || dim > num_dims || num_dims > Subspace::kMaxDimensions) {
    return out;
  }
  const std::uint64_t count = BinomialCoefficient(num_dims, dim);
  out.reserve(static_cast<std::size_t>(count));
  Subspace s(FirstOfDim(dim));
  while (!s.IsEmpty()) {
    out.push_back(s);
    s = NextSameDimension(s, num_dims);
  }
  return out;
}

std::vector<Subspace> EnumerateLattice(int num_dims, int max_dim,
                                       std::size_t limit) {
  std::vector<Subspace> out;
  for (int d = 1; d <= max_dim && d <= num_dims; ++d) {
    Subspace s(FirstOfDim(d));
    while (!s.IsEmpty()) {
      out.push_back(s);
      if (limit != 0 && out.size() >= limit) return out;
      s = NextSameDimension(s, num_dims);
    }
  }
  return out;
}

std::vector<Subspace> SampleLattice(int num_dims, int max_dim,
                                    std::size_t count, Rng& rng) {
  const std::uint64_t total = LatticeSize(num_dims, max_dim);
  if (total <= count) return EnumerateLattice(num_dims, max_dim);

  // Rejection-sample distinct subspaces: draw a dimension proportionally to
  // the number of subspaces of that dimension, then a uniform combination.
  std::vector<double> cumulative;
  cumulative.reserve(static_cast<std::size_t>(max_dim));
  double acc = 0.0;
  for (int d = 1; d <= max_dim && d <= num_dims; ++d) {
    acc += static_cast<double>(BinomialCoefficient(num_dims, d));
    cumulative.push_back(acc);
  }

  std::unordered_set<Subspace, SubspaceHash> seen;
  std::vector<Subspace> out;
  while (out.size() < count) {
    const double u = rng.NextDouble() * acc;
    int dim = 1;
    for (std::size_t i = 0; i < cumulative.size(); ++i) {
      if (u <= cumulative[i]) {
        dim = static_cast<int>(i) + 1;
        break;
      }
    }
    std::vector<std::size_t> picked =
        rng.SampleIndices(static_cast<std::size_t>(num_dims),
                          static_cast<std::size_t>(dim));
    Subspace s;
    for (std::size_t idx : picked) s.Add(static_cast<int>(idx));
    if (seen.insert(s).second) out.push_back(s);
  }
  return out;
}

}  // namespace spot
