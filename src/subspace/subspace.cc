#include "subspace/subspace.h"

#include "common/bits.h"

namespace spot {

Subspace Subspace::FromIndices(const std::vector<int>& indices) {
  std::uint64_t bits = 0;
  for (int i : indices) {
    if (i >= 0 && i < kMaxDimensions) bits |= (1ULL << static_cast<unsigned>(i));
  }
  return Subspace(bits);
}

Subspace Subspace::Full(int num_dims) {
  if (num_dims <= 0) return Subspace();
  if (num_dims >= kMaxDimensions) return Subspace(~0ULL);
  return Subspace((1ULL << static_cast<unsigned>(num_dims)) - 1ULL);
}

Subspace Subspace::Singleton(int dim) {
  if (dim < 0 || dim >= kMaxDimensions) return Subspace();
  return Subspace(1ULL << static_cast<unsigned>(dim));
}

int Subspace::Dimension() const { return PopCount64(bits_); }

Subspace& Subspace::Add(int dim) {
  if (dim >= 0 && dim < kMaxDimensions) {
    bits_ |= (1ULL << static_cast<unsigned>(dim));
  }
  return *this;
}

Subspace& Subspace::Remove(int dim) {
  if (dim >= 0 && dim < kMaxDimensions) {
    bits_ &= ~(1ULL << static_cast<unsigned>(dim));
  }
  return *this;
}

std::vector<int> Subspace::Indices() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(Dimension()));
  std::uint64_t b = bits_;
  while (b != 0) {
    const int i = CountTrailingZeros64(b);
    out.push_back(i);
    b &= b - 1;
  }
  return out;
}

int Subspace::FirstIndex() const {
  if (bits_ == 0) return -1;
  return CountTrailingZeros64(bits_);
}

std::string Subspace::ToString() const {
  std::string out = "{";
  bool first = true;
  for (int i : Indices()) {
    if (!first) out += ",";
    out += std::to_string(i);
    first = false;
  }
  out += "}";
  return out;
}

bool operator<(const Subspace& a, const Subspace& b) {
  const int da = a.Dimension();
  const int db = b.Dimension();
  if (da != db) return da < db;
  return a.bits_ < b.bits_;
}

}  // namespace spot
