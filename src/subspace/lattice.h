#ifndef SPOT_SUBSPACE_LATTICE_H_
#define SPOT_SUBSPACE_LATTICE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "subspace/subspace.h"

namespace spot {

/// Enumerates all subspaces over `num_dims` attributes with dimensionality
/// exactly `dim`, in deterministic (colex) order.
std::vector<Subspace> EnumerateSubspacesOfDim(int num_dims, int dim);

/// Enumerates all subspaces with dimensionality in [1, max_dim] — the
/// paper's Fixed SST Subspaces (FS) set — low dimensions first.
/// `limit` truncates enumeration (0 = unlimited); callers that need an
/// unbiased cap should use SampleLattice instead.
std::vector<Subspace> EnumerateLattice(int num_dims, int max_dim,
                                       std::size_t limit = 0);

/// Draws `count` distinct subspaces uniformly from the lattice of
/// dimensionality 1..max_dim. Falls back to full enumeration when the
/// lattice is no bigger than `count`.
std::vector<Subspace> SampleLattice(int num_dims, int max_dim,
                                    std::size_t count, Rng& rng);

/// Next subspace of the same dimensionality in colex order (Gosper's hack),
/// or the empty subspace when `s` is the last one under `num_dims` bits.
Subspace NextSameDimension(const Subspace& s, int num_dims);

}  // namespace spot

#endif  // SPOT_SUBSPACE_LATTICE_H_
