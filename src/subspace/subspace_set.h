#ifndef SPOT_SUBSPACE_SUBSPACE_SET_H_
#define SPOT_SUBSPACE_SUBSPACE_SET_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "subspace/subspace.h"

namespace spot {

/// A subspace together with its sparsity score (lower = sparser = more
/// promising for projected-outlier detection).
struct ScoredSubspace {
  Subspace subspace;
  double score = 0.0;
};

/// An ordered, deduplicated, capacity-bounded collection of scored
/// subspaces. Used for the CS and OS subsets of the SST: insertion keeps the
/// best (lowest-score) `capacity` members; re-scoring supports the online
/// self-evolution re-ranking step.
class RankedSubspaceSet {
 public:
  /// `capacity` = 0 means unbounded.
  explicit RankedSubspaceSet(std::size_t capacity = 0);

  /// Inserts (or updates the score of) a subspace, then enforces capacity by
  /// evicting the worst-scored members. Returns true when `s` is present
  /// after the call.
  bool Insert(const Subspace& s, double score);

  /// Removes a subspace if present; returns whether it was present.
  bool Erase(const Subspace& s);

  bool Contains(const Subspace& s) const;

  /// Score lookup; returns `fallback` when absent.
  double ScoreOf(const Subspace& s, double fallback = 0.0) const;

  /// Members sorted ascending by score (best first), ties broken by the
  /// deterministic Subspace ordering.
  std::vector<ScoredSubspace> Ranked() const;

  /// The `k` best members (fewer if the set is smaller).
  std::vector<Subspace> TopK(std::size_t k) const;

  /// All member subspaces in unspecified order.
  std::vector<Subspace> Members() const;

  std::size_t size() const { return scores_.size(); }
  bool empty() const { return scores_.empty(); }
  std::size_t capacity() const { return capacity_; }

  void Clear() { scores_.clear(); }

 private:
  void EnforceCapacity();

  std::size_t capacity_;
  std::unordered_map<Subspace, double, SubspaceHash> scores_;
};

}  // namespace spot

#endif  // SPOT_SUBSPACE_SUBSPACE_SET_H_
