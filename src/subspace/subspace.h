#ifndef SPOT_SUBSPACE_SUBSPACE_H_
#define SPOT_SUBSPACE_SUBSPACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace spot {

/// A subspace of the attribute lattice: a non-empty subset of the stream's
/// attributes, represented as a 64-bit mask (bit i set = attribute i
/// retained). SPOT evaluates the outlier-ness of each streaming point inside
/// every subspace of its Sparse Subspace Template (SST).
///
/// Supports streams of up to 64 attributes, which covers the paper's
/// "dozens, even hundreds" regime for the dimensionalities its experiments
/// exercise; the mask representation keeps lattice operations (union,
/// intersection, containment) O(1).
class Subspace {
 public:
  /// Maximum number of attributes representable.
  static constexpr int kMaxDimensions = 64;

  /// The empty subspace (used as a sentinel; not a valid detection target).
  constexpr Subspace() = default;

  /// Subspace from a raw attribute bitmask.
  constexpr explicit Subspace(std::uint64_t bits) : bits_(bits) {}

  /// Subspace retaining exactly the listed attribute indices.
  static Subspace FromIndices(const std::vector<int>& indices);

  /// The full space over `num_dims` attributes.
  static Subspace Full(int num_dims);

  /// A single-attribute subspace.
  static Subspace Singleton(int dim);

  std::uint64_t bits() const { return bits_; }

  /// Number of retained attributes (the subspace's dimensionality).
  int Dimension() const;

  bool IsEmpty() const { return bits_ == 0; }

  bool Contains(int dim) const {
    return (bits_ >> static_cast<unsigned>(dim)) & 1ULL;
  }

  /// True when every attribute of `other` is also retained by this subspace.
  bool IsSupersetOf(const Subspace& other) const {
    return (bits_ & other.bits_) == other.bits_;
  }

  Subspace& Add(int dim);
  Subspace& Remove(int dim);

  Subspace Union(const Subspace& other) const {
    return Subspace(bits_ | other.bits_);
  }
  Subspace Intersection(const Subspace& other) const {
    return Subspace(bits_ & other.bits_);
  }
  Subspace Difference(const Subspace& other) const {
    return Subspace(bits_ & ~other.bits_);
  }

  /// Retained attribute indices in ascending order.
  std::vector<int> Indices() const;

  /// Index of the lowest retained attribute, or -1 when empty.
  int FirstIndex() const;

  /// Human-readable form, e.g. "{0,3,17}".
  std::string ToString() const;

  friend bool operator==(const Subspace& a, const Subspace& b) {
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(const Subspace& a, const Subspace& b) {
    return a.bits_ != b.bits_;
  }
  /// Orders by dimensionality first, then by mask; gives a deterministic,
  /// low-dimension-first traversal order.
  friend bool operator<(const Subspace& a, const Subspace& b);

 private:
  std::uint64_t bits_ = 0;
};

/// Hash functor for unordered containers keyed by Subspace.
struct SubspaceHash {
  std::size_t operator()(const Subspace& s) const {
    // SplitMix64 finalizer: full-avalanche mixing of the mask.
    std::uint64_t z = s.bits() + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

}  // namespace spot

#endif  // SPOT_SUBSPACE_SUBSPACE_H_
