#include "subspace/subspace_set.h"

#include <algorithm>

namespace spot {

RankedSubspaceSet::RankedSubspaceSet(std::size_t capacity)
    : capacity_(capacity) {}

bool RankedSubspaceSet::Insert(const Subspace& s, double score) {
  if (s.IsEmpty()) return false;
  scores_[s] = score;
  EnforceCapacity();
  return Contains(s);
}

bool RankedSubspaceSet::Erase(const Subspace& s) {
  return scores_.erase(s) > 0;
}

bool RankedSubspaceSet::Contains(const Subspace& s) const {
  return scores_.find(s) != scores_.end();
}

double RankedSubspaceSet::ScoreOf(const Subspace& s, double fallback) const {
  auto it = scores_.find(s);
  return it == scores_.end() ? fallback : it->second;
}

std::vector<ScoredSubspace> RankedSubspaceSet::Ranked() const {
  std::vector<ScoredSubspace> out;
  out.reserve(scores_.size());
  for (const auto& [subspace, score] : scores_) {
    out.push_back({subspace, score});
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredSubspace& a, const ScoredSubspace& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.subspace < b.subspace;
            });
  return out;
}

std::vector<Subspace> RankedSubspaceSet::TopK(std::size_t k) const {
  std::vector<ScoredSubspace> ranked = Ranked();
  if (ranked.size() > k) ranked.resize(k);
  std::vector<Subspace> out;
  out.reserve(ranked.size());
  for (const auto& ss : ranked) out.push_back(ss.subspace);
  return out;
}

std::vector<Subspace> RankedSubspaceSet::Members() const {
  std::vector<Subspace> out;
  out.reserve(scores_.size());
  for (const auto& [subspace, score] : scores_) out.push_back(subspace);
  return out;
}

void RankedSubspaceSet::EnforceCapacity() {
  if (capacity_ == 0 || scores_.size() <= capacity_) return;
  std::vector<ScoredSubspace> ranked = Ranked();
  for (std::size_t i = capacity_; i < ranked.size(); ++i) {
    scores_.erase(ranked[i].subspace);
  }
}

}  // namespace spot
