#ifndef SPOT_BASELINES_INCREMENTAL_LOF_H_
#define SPOT_BASELINES_INCREMENTAL_LOF_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "stream/detector_iface.h"

namespace spot {
namespace baselines {

/// Configuration of the incremental LOF detector.
struct IncrementalLofConfig {
  /// Sliding-window size.
  std::size_t window = 500;

  /// Neighborhood size k.
  std::size_t k = 10;

  /// LOF value above which a point is declared an outlier.
  double lof_threshold = 1.8;
};

/// Density-based stream outlier detection: LOF computed over a sliding
/// window (windowed variant of incremental LOF). Full-space kNN distances
/// are used, so like every full-space method its contrast collapses in
/// high dimensions — the behaviour experiment E4 quantifies.
///
/// Complexity per point is O(window * k) distance scans; exact (no index),
/// suitable for the window sizes the experiments use.
class IncrementalLofDetector : public StreamDetector {
 public:
  explicit IncrementalLofDetector(const IncrementalLofConfig& config);

  Detection Process(const DataPoint& point) override;
  std::string name() const override { return "iLOF"; }

  /// Documented no-op: iLOF is a single-threaded reference baseline. The
  /// StreamDetector contract says verdicts must never depend on the shard
  /// count, so the request is ignored explicitly here (not silently varied
  /// per detector); tests/baselines_test.cc pins this behavior.
  void set_num_shards(std::size_t num_shards) override { (void)num_shards; }

  /// LOF of the most recent point (for tests).
  double last_lof() const { return last_lof_; }

 private:
  /// Distances from `values` to every window member, k-smallest first.
  std::vector<std::pair<double, std::size_t>> KnnOf(
      const std::vector<double>& values, std::size_t exclude) const;

  double KDistance(std::size_t index) const;
  double LocalReachabilityDensity(std::size_t index) const;

  IncrementalLofConfig config_;
  std::deque<std::vector<double>> window_;
  double last_lof_ = 0.0;
};

}  // namespace baselines
}  // namespace spot

#endif  // SPOT_BASELINES_INCREMENTAL_LOF_H_
