#ifndef SPOT_BASELINES_LARGEST_CLUSTER_H_
#define SPOT_BASELINES_LARGEST_CLUSTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stream/detector_iface.h"

namespace spot {
namespace baselines {

/// Configuration of the micro-cluster ("largest cluster") detector.
struct LargestClusterConfig {
  /// Maximum number of maintained micro-clusters.
  std::size_t max_clusters = 50;

  /// A point joins its nearest cluster when within this full-space radius.
  double radius = 0.4;

  /// Clusters holding less than this fraction of the (decayed) total weight
  /// are anomalous: members of large clusters are normal traffic.
  double small_cluster_fraction = 0.02;

  /// Exponential decay applied to cluster weights per arrival (stream
  /// recency, mirroring SPOT's decaying summaries).
  double decay = 0.9995;
};

/// Cluster-based full-space stream anomaly detection ("largest cluster"
/// strategy): maintain decaying micro-clusters; points that fall in (or
/// found) small clusters are anomalies, points absorbed by the dominant
/// clusters are normal. This is the clustering-family comparator from the
/// paper's related work, again operating on full-space distances only.
class LargestClusterDetector : public StreamDetector {
 public:
  explicit LargestClusterDetector(const LargestClusterConfig& config);

  Detection Process(const DataPoint& point) override;
  std::string name() const override { return "LargestCluster"; }

  /// Documented no-op: this baseline is a single-threaded reference
  /// implementation. The StreamDetector contract says verdicts must never
  /// depend on the shard count, so the request is ignored explicitly here
  /// (not silently varied per detector); tests/baselines_test.cc pins it.
  void set_num_shards(std::size_t num_shards) override { (void)num_shards; }

  std::size_t num_clusters() const { return clusters_.size(); }

 private:
  struct MicroCluster {
    std::vector<double> centroid;
    double weight = 0.0;
  };

  LargestClusterConfig config_;
  std::vector<MicroCluster> clusters_;
  double total_weight_ = 0.0;
};

}  // namespace baselines
}  // namespace spot

#endif  // SPOT_BASELINES_LARGEST_CLUSTER_H_
