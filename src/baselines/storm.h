#ifndef SPOT_BASELINES_STORM_H_
#define SPOT_BASELINES_STORM_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "stream/detector_iface.h"

namespace spot {
namespace baselines {

/// Configuration of the distance-based sliding-window detector.
struct StormConfig {
  /// Sliding-window size (points kept).
  std::size_t window = 1000;

  /// Neighborhood radius (full-space Euclidean distance).
  double radius = 0.5;

  /// Minimum neighbors within `radius` for a point to be an inlier.
  std::size_t min_neighbors = 5;
};

/// Exact distance-based outlier detection over a sliding window (the STORM
/// family): a point is an outlier when fewer than `min_neighbors` window
/// points lie within `radius` in the *full* attribute space.
///
/// This is the classic full-space stream detector SPOT is compared against:
/// because distances concentrate as dimensionality grows, projected
/// outliers — anomalous in 2-3 attributes, nominal in the rest — become
/// indistinguishable from inliers, which experiments E3/E4 demonstrate.
class StormDetector : public StreamDetector {
 public:
  explicit StormDetector(const StormConfig& config);

  Detection Process(const DataPoint& point) override;
  std::string name() const override { return "STORM"; }

  /// Documented no-op: STORM is a single-threaded reference baseline. The
  /// StreamDetector contract says verdicts must never depend on the shard
  /// count, so the request is ignored explicitly here (not silently varied
  /// per detector); tests/baselines_test.cc pins this behavior.
  void set_num_shards(std::size_t num_shards) override { (void)num_shards; }

  std::size_t window_size() const { return window_.size(); }

 private:
  StormConfig config_;
  std::deque<std::vector<double>> window_;
};

}  // namespace baselines
}  // namespace spot

#endif  // SPOT_BASELINES_STORM_H_
