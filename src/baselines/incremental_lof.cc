#include "baselines/incremental_lof.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace spot {
namespace baselines {

namespace {
constexpr std::size_t kNoExclude = static_cast<std::size_t>(-1);
}  // namespace

IncrementalLofDetector::IncrementalLofDetector(
    const IncrementalLofConfig& config)
    : config_(config) {}

std::vector<std::pair<double, std::size_t>> IncrementalLofDetector::KnnOf(
    const std::vector<double>& values, std::size_t exclude) const {
  std::vector<std::pair<double, std::size_t>> dists;
  dists.reserve(window_.size());
  for (std::size_t i = 0; i < window_.size(); ++i) {
    if (i == exclude) continue;
    dists.emplace_back(EuclideanDistance(values, window_[i]), i);
  }
  const std::size_t k = std::min(config_.k, dists.size());
  std::partial_sort(dists.begin(), dists.begin() + static_cast<long>(k),
                    dists.end());
  dists.resize(k);
  return dists;
}

double IncrementalLofDetector::KDistance(std::size_t index) const {
  const auto knn = KnnOf(window_[index], index);
  return knn.empty() ? 0.0 : knn.back().first;
}

double IncrementalLofDetector::LocalReachabilityDensity(
    std::size_t index) const {
  const auto knn = KnnOf(window_[index], index);
  if (knn.empty()) return 0.0;
  double reach_sum = 0.0;
  for (const auto& [dist, nbr] : knn) {
    reach_sum += std::max(dist, KDistance(nbr));
  }
  const double mean_reach = reach_sum / static_cast<double>(knn.size());
  return mean_reach > 1e-12 ? 1.0 / mean_reach : 1e12;
}

Detection IncrementalLofDetector::Process(const DataPoint& point) {
  Detection d;
  // Need enough history for a meaningful neighborhood.
  if (window_.size() >= config_.k + 1) {
    const auto knn = KnnOf(point.values, kNoExclude);
    double reach_sum = 0.0;
    double lrd_sum = 0.0;
    for (const auto& [dist, nbr] : knn) {
      reach_sum += std::max(dist, KDistance(nbr));
      lrd_sum += LocalReachabilityDensity(nbr);
    }
    const double n = static_cast<double>(knn.size());
    const double mean_reach = reach_sum / n;
    const double lrd_p = mean_reach > 1e-12 ? 1.0 / mean_reach : 1e12;
    const double lof = (lrd_sum / n) / lrd_p;
    last_lof_ = lof;
    d.is_outlier = lof > config_.lof_threshold;
    d.score = lof;
  }
  window_.push_back(point.values);
  if (window_.size() > config_.window) window_.pop_front();
  return d;
}

}  // namespace baselines
}  // namespace spot
