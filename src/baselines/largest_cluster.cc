#include "baselines/largest_cluster.h"

#include <algorithm>
#include <limits>

#include "common/math_util.h"

namespace spot {
namespace baselines {

LargestClusterDetector::LargestClusterDetector(
    const LargestClusterConfig& config)
    : config_(config) {}

Detection LargestClusterDetector::Process(const DataPoint& point) {
  Detection d;

  // Decay all cluster weights (stream recency).
  total_weight_ = 0.0;
  for (auto& c : clusters_) {
    c.weight *= config_.decay;
    total_weight_ += c.weight;
  }

  // Nearest cluster.
  std::size_t best = clusters_.size();
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    const double dist = EuclideanDistance(point.values, clusters_[i].centroid);
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }

  double member_weight = 0.0;
  if (best < clusters_.size() && best_dist <= config_.radius) {
    // Absorb: move the centroid toward the point proportionally.
    MicroCluster& c = clusters_[best];
    const double lr = 1.0 / (c.weight + 1.0);
    for (std::size_t j = 0; j < c.centroid.size(); ++j) {
      c.centroid[j] += lr * (point.values[j] - c.centroid[j]);
    }
    c.weight += 1.0;
    member_weight = c.weight;
  } else {
    // Found a new cluster, evicting the lightest when full.
    if (clusters_.size() >= config_.max_clusters) {
      std::size_t lightest = 0;
      for (std::size_t i = 1; i < clusters_.size(); ++i) {
        if (clusters_[i].weight < clusters_[lightest].weight) lightest = i;
      }
      clusters_.erase(clusters_.begin() + static_cast<long>(lightest));
    }
    clusters_.push_back({point.values, 1.0});
    member_weight = 1.0;
  }
  total_weight_ += 1.0;

  const double fraction = member_weight / std::max(total_weight_, 1.0);
  d.is_outlier = fraction < config_.small_cluster_fraction;
  d.score = 1.0 - fraction;
  return d;
}

}  // namespace baselines
}  // namespace spot
