#include "baselines/storm.h"

#include "common/math_util.h"

namespace spot {
namespace baselines {

StormDetector::StormDetector(const StormConfig& config) : config_(config) {}

Detection StormDetector::Process(const DataPoint& point) {
  Detection d;
  const double radius_sq = config_.radius * config_.radius;
  std::size_t neighbors = 0;
  double nearest = radius_sq * 1e6;
  for (const auto& other : window_) {
    const double dist = SquaredDistance(point.values, other);
    nearest = dist < nearest ? dist : nearest;
    if (dist <= radius_sq) {
      if (++neighbors >= config_.min_neighbors) break;
    }
  }
  d.is_outlier = neighbors < config_.min_neighbors;
  // Score: shortfall of neighbors, softened by how far the nearest window
  // point is. Purely full-space — no subspace attribution is possible.
  const double shortfall =
      1.0 - static_cast<double>(neighbors) /
                static_cast<double>(config_.min_neighbors);
  d.score = d.is_outlier ? shortfall : 0.0;

  window_.push_back(point.values);
  if (window_.size() > config_.window) window_.pop_front();
  return d;
}

}  // namespace baselines
}  // namespace spot
