#include "eval/metrics.h"

#include <algorithm>
#include "common/bits.h"
#include <numeric>

namespace spot {
namespace eval {

void Confusion::Add(bool predicted, bool actual) {
  if (predicted && actual) {
    ++tp_;
  } else if (predicted && !actual) {
    ++fp_;
  } else if (!predicted && actual) {
    ++fn_;
  } else {
    ++tn_;
  }
}

double Confusion::Precision() const {
  const std::uint64_t denom = tp_ + fp_;
  return denom == 0 ? 0.0 : static_cast<double>(tp_) / static_cast<double>(denom);
}

double Confusion::Recall() const {
  const std::uint64_t denom = tp_ + fn_;
  return denom == 0 ? 0.0 : static_cast<double>(tp_) / static_cast<double>(denom);
}

double Confusion::F1() const {
  const double p = Precision();
  const double r = Recall();
  return (p + r) <= 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double Confusion::FalsePositiveRate() const {
  const std::uint64_t denom = fp_ + tn_;
  return denom == 0 ? 0.0 : static_cast<double>(fp_) / static_cast<double>(denom);
}

std::vector<RocPoint> RocCurve(const std::vector<double>& scores,
                               const std::vector<bool>& labels) {
  std::vector<RocPoint> curve;
  const std::size_t n = std::min(scores.size(), labels.size());
  std::uint64_t positives = 0;
  std::uint64_t negatives = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (labels[i]) {
      ++positives;
    } else {
      ++negatives;
    }
  }
  if (positives == 0 || negatives == 0) return curve;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  curve.push_back({scores[order.front()] + 1.0, 0.0, 0.0});
  for (std::size_t i = 0; i < n;) {
    const double threshold = scores[order[i]];
    // Consume all points with this score together (threshold granularity).
    while (i < n && scores[order[i]] == threshold) {
      if (labels[order[i]]) {
        ++tp;
      } else {
        ++fp;
      }
      ++i;
    }
    curve.push_back({threshold,
                     static_cast<double>(tp) / static_cast<double>(positives),
                     static_cast<double>(fp) / static_cast<double>(negatives)});
  }
  return curve;
}

double RocAuc(const std::vector<double>& scores,
              const std::vector<bool>& labels) {
  const std::vector<RocPoint> curve = RocCurve(scores, labels);
  if (curve.size() < 2) return 0.5;
  double auc = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double dx = curve[i].fpr - curve[i - 1].fpr;
    auc += dx * 0.5 * (curve[i].tpr + curve[i - 1].tpr);
  }
  return auc;
}

double SubspaceJaccard(const Subspace& a, const Subspace& b) {
  const std::uint64_t uni = a.bits() | b.bits();
  if (uni == 0) return 1.0;
  const std::uint64_t inter = a.bits() & b.bits();
  return static_cast<double>(PopCount64(inter)) /
         static_cast<double>(PopCount64(uni));
}

double BestSubspaceJaccard(const Subspace& truth,
                           const std::vector<Subspace>& reported) {
  double best = 0.0;
  for (const auto& s : reported) {
    best = std::max(best, SubspaceJaccard(truth, s));
  }
  return best;
}

}  // namespace eval
}  // namespace spot
