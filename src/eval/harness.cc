#include "eval/harness.h"

#include "common/timer.h"
#include "stream/replay.h"

namespace spot {
namespace eval {

RunResult RunDetection(StreamDetector& detector, StreamSource& source,
                       std::size_t count, const RunOptions& options) {
  RunResult result;
  result.detector_name = detector.name();

  for (std::size_t i = 0; i < options.warmup; ++i) {
    std::optional<LabeledPoint> p = source.Next();
    if (!p.has_value()) break;
    detector.Process(p->point);
  }

  double jaccard_sum = 0.0;
  std::uint64_t jaccard_count = 0;
  Timer timer;
  std::size_t processed = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::optional<LabeledPoint> p = source.Next();
    if (!p.has_value()) break;
    const Detection d = detector.Process(p->point);
    ++processed;
    result.confusion.Add(d.is_outlier, p->is_outlier);
    if (d.is_outlier && p->is_outlier && !p->outlying_subspace.IsEmpty()) {
      jaccard_sum += BestSubspaceJaccard(p->outlying_subspace,
                                         d.outlying_subspaces);
      ++jaccard_count;
    }
    if (options.collect_scores) {
      result.scores.push_back(d.score);
      result.labels.push_back(p->is_outlier);
    }
  }
  const double elapsed = timer.ElapsedSeconds();
  result.throughput =
      elapsed > 0.0 ? static_cast<double>(processed) / elapsed : 0.0;
  result.mean_subspace_jaccard =
      jaccard_count == 0 ? 0.0 : jaccard_sum / static_cast<double>(jaccard_count);
  if (options.collect_scores) {
    result.auc = RocAuc(result.scores, result.labels);
  }
  return result;
}

std::vector<RunResult> CompareDetectors(
    const std::vector<StreamDetector*>& detectors,
    const std::vector<LabeledPoint>& points, const RunOptions& options) {
  std::vector<RunResult> results;
  results.reserve(detectors.size());
  for (StreamDetector* detector : detectors) {
    stream::ReplaySource replay(points);
    results.push_back(
        RunDetection(*detector, replay, points.size(), options));
  }
  return results;
}

}  // namespace eval
}  // namespace spot
