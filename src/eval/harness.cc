#include "eval/harness.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/timer.h"
#include "stream/replay.h"

namespace spot {
namespace eval {

namespace {

/// Pulls up to `limit` points from `source` into the chunk buffers (cleared
/// first). Returns false when the source is exhausted before yielding any.
bool PullChunk(StreamSource& source, std::size_t limit,
               std::vector<LabeledPoint>* truth,
               std::vector<DataPoint>* points) {
  truth->clear();
  points->clear();
  while (points->size() < limit) {
    std::optional<LabeledPoint> p = source.Next();
    if (!p.has_value()) break;
    truth->push_back(std::move(*p));
    // Move the values into the detector-facing chunk instead of copying:
    // the scoring loop only reads the truth labels, never the values.
    points->push_back(std::move(truth->back().point));
  }
  return !points->empty();
}

}  // namespace

RunResult RunDetection(StreamDetector& detector, StreamSource& source,
                       std::size_t count, const RunOptions& options) {
  RunResult result;
  result.detector_name = detector.name();
  if (options.num_shards > 0) detector.set_num_shards(options.num_shards);
  const std::size_t batch =
      options.batch_size == 0 ? 1 : options.batch_size;

  std::vector<LabeledPoint> truth;
  std::vector<DataPoint> points;
  truth.reserve(batch);
  points.reserve(batch);

  for (std::size_t fed = 0; fed < options.warmup;) {
    const std::size_t want = std::min(batch, options.warmup - fed);
    if (!PullChunk(source, want, &truth, &points)) break;
    detector.ProcessBatch(points);
    fed += points.size();
  }

  double jaccard_sum = 0.0;
  std::uint64_t jaccard_count = 0;
  Timer timer;
  std::size_t processed = 0;
  while (processed < count) {
    const std::size_t want = std::min(batch, count - processed);
    if (!PullChunk(source, want, &truth, &points)) break;
    const std::vector<Detection> verdicts = detector.ProcessBatch(points);
    processed += points.size();
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      const Detection& d = verdicts[i];
      const LabeledPoint& p = truth[i];
      result.confusion.Add(d.is_outlier, p.is_outlier);
      if (d.is_outlier && p.is_outlier && !p.outlying_subspace.IsEmpty()) {
        jaccard_sum += BestSubspaceJaccard(p.outlying_subspace,
                                           d.outlying_subspaces);
        ++jaccard_count;
      }
      if (options.collect_scores) {
        result.scores.push_back(d.score);
        result.labels.push_back(p.is_outlier);
      }
    }
  }
  const double elapsed = timer.ElapsedSeconds();
  result.throughput =
      elapsed > 0.0 ? static_cast<double>(processed) / elapsed : 0.0;
  result.mean_subspace_jaccard =
      jaccard_count == 0 ? 0.0 : jaccard_sum / static_cast<double>(jaccard_count);
  if (options.collect_scores) {
    result.auc = RocAuc(result.scores, result.labels);
  }
  return result;
}

std::vector<RunResult> CompareDetectors(
    const std::vector<StreamDetector*>& detectors,
    const std::vector<LabeledPoint>& points, const RunOptions& options) {
  std::vector<RunResult> results;
  results.reserve(detectors.size());
  for (StreamDetector* detector : detectors) {
    stream::ReplaySource replay(points);
    results.push_back(
        RunDetection(*detector, replay, points.size(), options));
  }
  return results;
}

}  // namespace eval
}  // namespace spot
