#ifndef SPOT_EVAL_TABLE_H_
#define SPOT_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace spot {
namespace eval {

/// Minimal fixed-width ASCII table printer used by every bench binary to
/// emit its experiment's rows in a uniform, diff-friendly format.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; missing cells print empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Formats a double with `precision` decimals.
  static std::string Num(double v, int precision = 3);

  /// Formats an integer count.
  static std::string Int(std::uint64_t v);

  /// Renders the table (header, separator, rows).
  std::string ToString() const;

  /// Renders with a title line on top and prints to stdout.
  void Print(const std::string& title) const;

  /// Raw cell access (the bench JSON reporter serializes tables from it).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eval
}  // namespace spot

#endif  // SPOT_EVAL_TABLE_H_
