#ifndef SPOT_EVAL_HARNESS_H_
#define SPOT_EVAL_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "stream/data_point.h"
#include "stream/detector_iface.h"

namespace spot {
namespace eval {

/// Options of a detection run.
struct RunOptions {
  /// Points fed before metrics start accumulating (lets windows and
  /// summaries fill; verdicts during warmup are discarded).
  std::size_t warmup = 0;

  /// Collect per-point scores/labels for ROC analysis (costs memory).
  bool collect_scores = false;

  /// Points per StreamDetector::ProcessBatch call. Verdicts are identical
  /// for every batch size (batching amortizes overhead, it does not change
  /// semantics); 0 or 1 drives the per-point Process path.
  std::size_t batch_size = 64;

  /// Worker shards per batch, forwarded to the detector via
  /// StreamDetector::set_num_shards before the run (0 = leave the detector
  /// as configured). Verdicts are identical at every shard count; this is
  /// the throughput knob the shard-scaling experiments sweep.
  std::size_t num_shards = 0;
};

/// Outcome of driving one detector over one labeled stream.
struct RunResult {
  std::string detector_name;
  Confusion confusion;

  /// Points per second over the measured (post-warmup) phase.
  double throughput = 0.0;

  /// Mean best-Jaccard between each detected true outlier's planted
  /// subspace and the detector's reported subspaces (0 for detectors that
  /// report none; only true positives with a planted subspace count).
  double mean_subspace_jaccard = 0.0;

  /// Per-point scores / truth labels (when collect_scores was set).
  std::vector<double> scores;
  std::vector<bool> labels;

  /// ROC AUC over the collected scores (0.5 when not collected).
  double auc = 0.5;
};

/// Feeds `count` points of `source` through `detector`, scoring verdicts
/// against the stream's ground truth.
RunResult RunDetection(StreamDetector& detector, StreamSource& source,
                       std::size_t count, const RunOptions& options = {});

/// Feeds the same pre-materialized stream through several detectors
/// (each sees identical data).
std::vector<RunResult> CompareDetectors(
    const std::vector<StreamDetector*>& detectors,
    const std::vector<LabeledPoint>& points, const RunOptions& options = {});

}  // namespace eval
}  // namespace spot

#endif  // SPOT_EVAL_HARNESS_H_
