#ifndef SPOT_EVAL_METRICS_H_
#define SPOT_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "subspace/subspace.h"

namespace spot {
namespace eval {

/// Binary confusion-matrix accumulator with the derived detection metrics.
class Confusion {
 public:
  /// Records one (prediction, truth) pair.
  void Add(bool predicted, bool actual);

  std::uint64_t tp() const { return tp_; }
  std::uint64_t fp() const { return fp_; }
  std::uint64_t tn() const { return tn_; }
  std::uint64_t fn() const { return fn_; }
  std::uint64_t total() const { return tp_ + fp_ + tn_ + fn_; }

  /// tp / (tp + fp); 0 when no positives were predicted.
  double Precision() const;

  /// tp / (tp + fn); also the detection rate. 0 when no actual positives.
  double Recall() const;

  /// Harmonic mean of precision and recall.
  double F1() const;

  /// fp / (fp + tn); the false-alarm rate.
  double FalsePositiveRate() const;

 private:
  std::uint64_t tp_ = 0;
  std::uint64_t fp_ = 0;
  std::uint64_t tn_ = 0;
  std::uint64_t fn_ = 0;
};

/// One ROC operating point.
struct RocPoint {
  double threshold = 0.0;
  double tpr = 0.0;
  double fpr = 0.0;
};

/// ROC curve from per-point anomaly scores and ground-truth labels,
/// computed by sweeping the threshold over every distinct score. Points are
/// ordered by increasing FPR.
std::vector<RocPoint> RocCurve(const std::vector<double>& scores,
                               const std::vector<bool>& labels);

/// Area under the ROC curve (trapezoidal). 0.5 = chance; 1.0 = perfect.
/// Returns 0.5 when either class is absent.
double RocAuc(const std::vector<double>& scores,
              const std::vector<bool>& labels);

/// Jaccard similarity |a ∩ b| / |a ∪ b| of two subspaces (1 when both are
/// empty). Measures how well a reported outlying subspace matches the
/// planted one.
double SubspaceJaccard(const Subspace& a, const Subspace& b);

/// Best Jaccard between the planted subspace and any reported one
/// (0 when nothing was reported).
double BestSubspaceJaccard(const Subspace& truth,
                           const std::vector<Subspace>& reported);

}  // namespace eval
}  // namespace spot

#endif  // SPOT_EVAL_METRICS_H_
