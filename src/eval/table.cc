#include "eval/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace spot {
namespace eval {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(std::uint64_t v) { return std::to_string(v); }

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << " " << cells[c]
          << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::Print(const std::string& title) const {
  std::printf("\n== %s ==\n%s", title.c_str(), ToString().c_str());
  std::fflush(stdout);
}

}  // namespace eval
}  // namespace spot
