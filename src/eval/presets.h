#ifndef SPOT_EVAL_PRESETS_H_
#define SPOT_EVAL_PRESETS_H_

// Shared SpotConfig presets used by both the experiment binaries
// (bench/bench_e*.cc) and the integration tests. The two call sites used to
// carry near-identical hand-rolled configs; keeping the common skeleton here
// means a change to the reference setup cannot silently diverge tests from
// benches (they differ only in the explicit deltas below).

#include <cstdint>

#include "core/spot_config.h"

namespace spot {
namespace eval {

/// Common skeleton of every small-stream run: unit-cube domain, the paper's
/// default (omega, epsilon) window, a coarse 5-cell grid, and all background
/// dynamics (self-evolution, drift handling) off so individual experiments
/// opt in explicitly.
inline SpotConfig StreamConfigSkeleton() {
  SpotConfig cfg;
  cfg.omega = 2000;
  cfg.epsilon = 0.01;
  cfg.cells_per_dim = 5;
  cfg.domain_lo = 0.0;
  cfg.domain_hi = 1.0;  // experiment streams emit unit-cube data
  cfg.evolution_period = 0;
  cfg.drift_detection = false;
  return cfg;
}

/// A SPOT configuration sized for experiment runs: moderate MOGA budget,
/// FS depth 2, self-evolution off unless the experiment studies it.
inline SpotConfig ExperimentConfig(std::uint64_t seed = 7) {
  SpotConfig cfg = StreamConfigSkeleton();
  cfg.fs_max_dimension = 2;
  cfg.fs_cap = 512;
  cfg.cs_capacity = 16;
  cfg.os_capacity = 24;
  cfg.unsupervised.moga.population_size = 24;
  cfg.unsupervised.moga.generations = 10;
  cfg.unsupervised.top_outlying_points = 8;
  cfg.unsupervised.top_subspaces_per_run = 8;
  cfg.supervised.moga.population_size = 24;
  cfg.supervised.moga.generations = 8;
  cfg.os_update_every = 32;
  cfg.seed = seed;
  return cfg;
}

/// The cheaper variant the integration tests run on: smaller MOGA budget and
/// SST capacities, faster OS growth cadence.
inline SpotConfig FastTestConfig(int fs_max_dim = 2,
                                 std::uint64_t seed = 2024) {
  SpotConfig cfg = StreamConfigSkeleton();
  cfg.fs_max_dimension = fs_max_dim;
  cfg.cs_capacity = 12;
  cfg.os_capacity = 16;
  cfg.unsupervised.moga.population_size = 16;
  cfg.unsupervised.moga.generations = 8;
  cfg.unsupervised.top_outlying_points = 6;
  cfg.unsupervised.top_subspaces_per_run = 6;
  cfg.supervised.moga.population_size = 16;
  cfg.supervised.moga.generations = 6;
  cfg.os_update_every = 16;
  cfg.seed = seed;
  return cfg;
}

}  // namespace eval
}  // namespace spot

#endif  // SPOT_EVAL_PRESETS_H_
