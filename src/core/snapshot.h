#ifndef SPOT_CORE_SNAPSHOT_H_
#define SPOT_CORE_SNAPSHOT_H_

#include <string>

#include "core/spot_config.h"
#include "learning/sst.h"

namespace spot {

/// Plain-text export/import of a learned Sparse Subspace Template and of a
/// SpotConfig — the artifacts worth persisting across process restarts.
/// (Data synapses are deliberately not persisted: they are decayed stream
/// state and refill within one window of fresh data; the SST is the product
/// of the expensive learning stage.)
///
/// SST format, one entry per line:
///
///     spot-sst v1
///     fs {0,3}
///     cs {1,2} 0.125
///     os {4} 0.001
///
/// Config format: `key value` pairs, one per line, headed by `spot-config
/// v1`. Unknown keys are rejected; missing keys keep their defaults.

/// Serializes the SST (FS members, CS/OS members with scores).
std::string ExportSst(const Sst& sst);

/// Parses an ExportSst() document into `sst` (which keeps its capacities;
/// prior contents are cleared on success). Returns false — leaving `sst`
/// untouched — on any syntax error.
bool ImportSst(const std::string& text, Sst* sst);

/// Serializes every field of a SpotConfig.
std::string ExportConfig(const SpotConfig& config);

/// Parses an ExportConfig() document. Returns false on any syntax error or
/// unknown key; `config` keeps defaults for keys absent from the document.
bool ImportConfig(const std::string& text, SpotConfig* config);

}  // namespace spot

#endif  // SPOT_CORE_SNAPSHOT_H_
