#include "core/drift_detector.h"

#include <algorithm>

#include "core/checkpoint.h"

namespace spot {

PageHinkley::PageHinkley(double delta, double lambda)
    : delta_(delta), lambda_(lambda) {}

bool PageHinkley::Add(double x) {
  ++count_;
  mean_ += (x - mean_) / static_cast<double>(count_);
  m_ += x - mean_ - delta_;
  m_min_ = std::min(m_min_, m_);
  if (m_ - m_min_ > lambda_) {
    ++drifts_;
    const std::uint64_t keep = drifts_;
    Reset();
    drifts_ = keep;
    return true;
  }
  return false;
}

void PageHinkley::Reset() {
  mean_ = 0.0;
  m_ = 0.0;
  m_min_ = 0.0;
  count_ = 0;
}

void PageHinkley::SaveState(CheckpointWriter& w) const {
  w.F64(delta_);
  w.F64(lambda_);
  w.F64(mean_);
  w.F64(m_);
  w.F64(m_min_);
  w.U64(count_);
  w.U64(drifts_);
}

bool PageHinkley::LoadState(CheckpointReader& r) {
  delta_ = r.F64();
  lambda_ = r.F64();
  mean_ = r.F64();
  m_ = r.F64();
  m_min_ = r.F64();
  count_ = r.U64();
  drifts_ = r.U64();
  return r.ok();
}

}  // namespace spot
