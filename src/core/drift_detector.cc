#include "core/drift_detector.h"

#include <algorithm>

namespace spot {

PageHinkley::PageHinkley(double delta, double lambda)
    : delta_(delta), lambda_(lambda) {}

bool PageHinkley::Add(double x) {
  ++count_;
  mean_ += (x - mean_) / static_cast<double>(count_);
  m_ += x - mean_ - delta_;
  m_min_ = std::min(m_min_, m_);
  if (m_ - m_min_ > lambda_) {
    ++drifts_;
    const std::uint64_t keep = drifts_;
    Reset();
    drifts_ = keep;
    return true;
  }
  return false;
}

void PageHinkley::Reset() {
  mean_ = 0.0;
  m_ = 0.0;
  m_min_ = 0.0;
  count_ = 0;
}

}  // namespace spot
