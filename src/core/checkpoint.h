#ifndef SPOT_CORE_CHECKPOINT_H_
#define SPOT_CORE_CHECKPOINT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace spot {

class SpotDetector;
struct SpotConfig;

/// Binary full-state checkpointing of a SpotDetector (DESIGN.md Section 4.3).
///
/// The text snapshot (src/core/snapshot.h) persists only the SST and the
/// top-level config — it deliberately discards the decayed data synapses.
/// The checkpoint persists *everything*: config (including the nested
/// learning configs the text snapshot cannot express), partition, SST,
/// every BCS/PCS grid cell, the reservoir, the drift statistic, the RNG
/// stream and all tick/cadence counters — such that
///
///     SaveCheckpoint(A); LoadCheckpoint(&B); B.Process(stream...)
///
/// yields verdicts and stats bit-identical to A processing the same stream
/// uninterrupted (tests/checkpoint_test.cc proves it across evolution,
/// drift, compaction and shard-count boundaries). This is also the on-disk
/// eviction format of the SpotService session manager (src/service/), and
/// it turns the paper's "bounded state" claim for the (omega, epsilon)
/// time model into a number you can measure with `ls -l`.
///
/// Format: little-endian, fixed-width fields behind the magic "SPOTCKP1",
/// closed by the trailer "SPOTEND1" (truncation detection). Doubles are
/// stored as raw IEEE-754 bit patterns, so state round-trips exactly.
/// Versioning rule: the final format byte is a version number; readers
/// reject versions they do not know, and any layout change bumps it —
/// there are no optional fields or skippable sections inside a version.

/// Little-endian binary writer over an ostream. All writes funnel through
/// U8/U64/F64 so the byte layout is defined in exactly one place.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::ostream* out) : out_(out) {}

  void U8(std::uint8_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  /// Raw IEEE-754 bit pattern: the value reloads bit-identically.
  void F64(double v);
  void Bool(bool v) { U8(v ? 1 : 0); }
  /// Length-prefixed byte string.
  void Str(const std::string& s);
  /// Length-prefixed u32 coordinate list (grid cell coordinates).
  void Coords(const std::vector<std::uint32_t>& c);

  bool ok() const;

 private:
  std::ostream* out_;
};

/// Little-endian binary reader mirroring CheckpointWriter. Every accessor
/// returns a neutral value once the stream fails or a validation check
/// trips; callers test ok() (or Fail()'s return) at section boundaries.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::istream* in) : in_(in) {}

  std::uint8_t U8();
  std::uint32_t U32();
  std::uint64_t U64();
  double F64();
  bool Bool() { return U8() != 0; }
  std::string Str();
  std::vector<std::uint32_t> Coords();

  /// Marks the load as failed (validation error); always returns false so
  /// `return reader.Fail();` reads naturally in bool-returning loaders.
  bool Fail();

  bool ok() const;

 private:
  std::istream* in_;
  bool failed_ = false;
};

/// Serializes every field of a SpotConfig, including the nested learning
/// configs (MOGA budgets, outlying-degree knobs, self-evolution knobs)
/// that the text snapshot's ExportConfig does not cover.
void WriteConfigBinary(CheckpointWriter& w, const SpotConfig& config);

/// Mirrors WriteConfigBinary. Returns false (failing the reader) on a
/// malformed section.
bool ReadConfigBinary(CheckpointReader& r, SpotConfig* config);

/// Writes a complete detector checkpoint (header, config, full state,
/// trailer). Works for unlearned detectors too (the flag round-trips).
/// Returns false when the stream errors.
bool SaveCheckpoint(const SpotDetector& detector, std::ostream& out);

/// Restores a detector from a checkpoint stream. The detector's current
/// config is irrelevant: the checkpoint embeds the full config it was
/// saved under. On failure returns false and leaves the detector
/// *unlearned* (a partially applied state is never exposed).
bool LoadCheckpoint(SpotDetector* detector, std::istream& in);

/// File convenience wrappers. SaveCheckpointFile writes to `path + ".tmp"`
/// and renames into place, so a crash mid-write never clobbers the
/// previous checkpoint.
bool SaveCheckpointFile(const SpotDetector& detector, const std::string& path);
bool LoadCheckpointFile(SpotDetector* detector, const std::string& path);

}  // namespace spot

#endif  // SPOT_CORE_CHECKPOINT_H_
