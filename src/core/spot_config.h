#ifndef SPOT_CORE_SPOT_CONFIG_H_
#define SPOT_CORE_SPOT_CONFIG_H_

#include <cstdint>
#include <string>

#include "learning/self_evolution.h"
#include "learning/supervised.h"
#include "learning/unsupervised.h"

namespace spot {

/// Complete configuration of a SpotDetector. Defaults follow DESIGN.md
/// Section 5 and are sensible for unit-hypercube data with a few dozen
/// attributes.
struct SpotConfig {
  // --- (omega, epsilon) time model -----------------------------------
  /// Sliding-window size, in points. The effective (decayed) window mass
  /// is roughly omega / 10 for epsilon = 0.01; detection contrast needs
  /// that mass to be large relative to the populated cells per subspace.
  std::uint64_t omega = 2000;

  /// Residual out-of-window weight bound.
  double epsilon = 0.01;

  /// Master switch for the (omega, epsilon) time model. When false the
  /// detector keeps landmark (never-decaying) summaries — only useful for
  /// ablations (E13) and strictly stationary streams.
  bool use_decay = true;

  // --- Equi-width partition ------------------------------------------
  /// Intervals per attribute. Coarse grids are deliberate: each cluster
  /// should span about one cell so that cluster fringes stay heavy and
  /// genuinely outlying cells stay empty.
  int cells_per_dim = 5;

  /// Margin added around the training data's range when fitting the
  /// partition (fraction of each attribute's range).
  double partition_margin = 0.05;

  /// Optional explicit attribute domain, applied to every attribute. When
  /// domain_lo < domain_hi the partition uses these bounds; otherwise it is
  /// fitted to the training batch with partition_margin headroom. Explicit
  /// bounds are strongly preferred when the domain is known: fitted bounds
  /// clamp genuinely out-of-range stream values into boundary cells that
  /// may already hold training mass, hiding exactly the outliers SPOT is
  /// meant to find.
  double domain_lo = 0.0;
  double domain_hi = 0.0;

  // --- SST ------------------------------------------------------------
  /// FS lattice depth (MaxDimension in the paper).
  int fs_max_dimension = 2;

  /// Hard cap on |FS|; when the lattice is larger, FS is a uniform sample
  /// of that size (0 = unlimited).
  std::size_t fs_cap = 1024;

  /// CS / OS capacity bounds.
  std::size_t cs_capacity = 32;
  std::size_t os_capacity = 64;

  // --- Outlier-ness thresholds ----------------------------------------
  /// A point is a projected outlier in subspace s when its cell's
  /// RD <= rd_threshold and IRSD <= irsd_threshold. The defaults flag cells
  /// holding under a quarter of the average cell mass whose content is
  /// either near-empty or widely scattered.
  double rd_threshold = 0.1;
  double irsd_threshold = 0.5;

  /// Fringe suppression: a sparse cell is vetoed when a neighboring cell
  /// (Chebyshev distance 1 in the projected grid) holds at least
  /// `fringe_factor * max(1, cell_count)` decayed weight — such cells are
  /// the statistical tail of an adjacent dense cluster, not projected
  /// outliers. Set to 0 to disable (the E12 ablation measures the effect).
  double fringe_factor = 8.0;

  // --- Learning stage --------------------------------------------------
  UnsupervisedConfig unsupervised;
  SupervisedConfig supervised;

  // --- Detection stage dynamics ----------------------------------------
  /// Points between CS self-evolution rounds (0 disables evolution).
  std::uint64_t evolution_period = 2000;
  SelfEvolutionConfig evolution;

  /// Reservoir-sample capacity (recent stream points used by evolution,
  /// OS growth and drift relearning).
  std::size_t reservoir_capacity = 512;

  /// Run MOGA-driven OS growth on every k-th detected outlier
  /// (0 disables OS growth; 1 = every detected outlier).
  std::uint64_t os_update_every = 8;

  // --- Concept-drift detection -----------------------------------------
  /// Enables the Page-Hinkley drift test on the outlier-rate signal.
  bool drift_detection = true;

  /// Page-Hinkley tolerance (delta) and alarm threshold (lambda) on the
  /// outlier-rate signal. Sized for a 0/1 indicator: lambda large enough
  /// that stationary Bernoulli noise never accumulates an alarm, small
  /// enough that an outlier-rate jump of ~0.3 alarms within ~50 points.
  double drift_delta = 0.01;
  double drift_lambda = 15.0;

  /// Relearn CS from the reservoir when drift fires.
  bool relearn_on_drift = true;

  // --- Grid maintenance -------------------------------------------------
  /// Cells below this decayed weight are reclaimed at compaction.
  double prune_threshold = 1e-3;

  /// Arrivals between compaction sweeps (0 disables).
  std::uint64_t compaction_period = 4096;

  // --- Top-k outlier retention -------------------------------------------
  /// Worst-outlier entries retained for kQueryTopK / QueryTopK() and
  /// feedback-by-id, ranked by (omega, epsilon)-decayed score
  /// (0 disables retention; queries then always return empty).
  std::size_t topk_capacity = 64;

  // --- Batch sharding ----------------------------------------------------
  /// Shards the tracked SST subspaces across this many worker threads
  /// during ProcessBatch (1 = sequential in-place processing, the default).
  /// Verdicts are bit-identical at every shard count — sharding is a
  /// throughput knob, not a semantic one. Single-point Process() always
  /// runs in place regardless.
  std::size_t num_shards = 1;

  // --- Reproducibility ---------------------------------------------------
  std::uint64_t seed = 1234;

  /// Returns an empty string when the configuration is usable, otherwise a
  /// description of the first problem found.
  std::string Validate() const;
};

}  // namespace spot

#endif  // SPOT_CORE_SPOT_CONFIG_H_
