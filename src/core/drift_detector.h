#ifndef SPOT_CORE_DRIFT_DETECTOR_H_
#define SPOT_CORE_DRIFT_DETECTOR_H_

#include <cstdint>

namespace spot {

class CheckpointReader;
class CheckpointWriter;

/// Page-Hinkley change detector over a real-valued signal.
///
/// SPOT feeds it the per-point outlier indicator (0/1): a sustained rise of
/// the outlier rate above its running mean by more than `delta` accumulates
/// in the PH statistic; when the statistic exceeds `lambda`, drift is
/// declared (the detection stage then relearns CS from the reservoir).
class PageHinkley {
 public:
  /// `delta`: magnitude tolerance; `lambda`: alarm threshold.
  PageHinkley(double delta, double lambda);

  /// Feeds one observation; returns true when drift is declared. The
  /// detector resets itself after declaring drift.
  bool Add(double x);

  /// Running mean of the signal since the last reset.
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Current PH statistic (m_t - min m_t).
  double statistic() const { return m_ - m_min_; }

  std::uint64_t count() const { return count_; }
  std::uint64_t drifts() const { return drifts_; }

  /// Forgets all state (fresh concept).
  void Reset();

  /// Checkpointing: parameters and the accumulated PH statistic both
  /// round-trip, so a restored detector alarms at exactly the same tick.
  void SaveState(CheckpointWriter& w) const;
  bool LoadState(CheckpointReader& r);

 private:
  double delta_;
  double lambda_;
  double mean_ = 0.0;
  double m_ = 0.0;
  double m_min_ = 0.0;
  std::uint64_t count_ = 0;
  std::uint64_t drifts_ = 0;
};

}  // namespace spot

#endif  // SPOT_CORE_DRIFT_DETECTOR_H_
