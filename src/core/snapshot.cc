#include "core/snapshot.h"

#include <cstdlib>
#include <sstream>
#include <vector>

namespace spot {

namespace {

// Parses "{0,3,17}" back into a Subspace; returns false on malformed input.
bool ParseSubspace(const std::string& token, Subspace* out) {
  if (token.size() < 2 || token.front() != '{' || token.back() != '}') {
    return false;
  }
  Subspace s;
  const std::string inner = token.substr(1, token.size() - 2);
  if (inner.empty()) {
    *out = s;
    return true;
  }
  std::stringstream ss(inner);
  std::string part;
  while (std::getline(ss, part, ',')) {
    char* end = nullptr;
    const long v = std::strtol(part.c_str(), &end, 10);
    if (end == part.c_str() || *end != '\0' || v < 0 ||
        v >= Subspace::kMaxDimensions) {
      return false;
    }
    s.Add(static_cast<int>(v));
  }
  *out = s;
  return true;
}

bool ParseDouble(const std::string& token, double* out) {
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end != token.c_str() && *end == '\0';
}

bool ParseUint(const std::string& token, std::uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(token.c_str(), &end, 10);
  return end != token.c_str() && *end == '\0';
}

}  // namespace

std::string ExportSst(const Sst& sst) {
  std::ostringstream out;
  out << "spot-sst v1\n";
  for (const auto& s : sst.fixed()) {
    out << "fs " << s.ToString() << "\n";
  }
  for (const auto& ss : sst.clustering().Ranked()) {
    out << "cs " << ss.subspace.ToString() << " " << ss.score << "\n";
  }
  for (const auto& ss : sst.outlier_driven().Ranked()) {
    out << "os " << ss.subspace.ToString() << " " << ss.score << "\n";
  }
  return out.str();
}

bool ImportSst(const std::string& text, Sst* sst) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "spot-sst v1") return false;

  std::vector<Subspace> fs;
  std::vector<ScoredSubspace> cs;
  std::vector<ScoredSubspace> os;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    std::string subspace_token;
    if (!(ls >> kind >> subspace_token)) return false;
    Subspace s;
    if (!ParseSubspace(subspace_token, &s) || s.IsEmpty()) return false;
    if (kind == "fs") {
      std::string extra;
      if (ls >> extra) return false;
      fs.push_back(s);
    } else if (kind == "cs" || kind == "os") {
      std::string score_token;
      if (!(ls >> score_token)) return false;
      double score = 0.0;
      if (!ParseDouble(score_token, &score)) return false;
      (kind == "cs" ? cs : os).push_back({s, score});
    } else {
      return false;
    }
  }

  sst->SetFixed(std::move(fs));
  sst->ClearClustering();
  for (const auto& ss : cs) sst->AddClustering(ss.subspace, ss.score);
  for (const auto& ss : os) sst->AddOutlierDriven(ss.subspace, ss.score);
  return true;
}

std::string ExportConfig(const SpotConfig& c) {
  std::ostringstream out;
  out.precision(17);
  out << "spot-config v1\n";
  out << "omega " << c.omega << "\n";
  out << "epsilon " << c.epsilon << "\n";
  out << "use_decay " << (c.use_decay ? 1 : 0) << "\n";
  out << "cells_per_dim " << c.cells_per_dim << "\n";
  out << "partition_margin " << c.partition_margin << "\n";
  out << "domain_lo " << c.domain_lo << "\n";
  out << "domain_hi " << c.domain_hi << "\n";
  out << "fs_max_dimension " << c.fs_max_dimension << "\n";
  out << "fs_cap " << c.fs_cap << "\n";
  out << "cs_capacity " << c.cs_capacity << "\n";
  out << "os_capacity " << c.os_capacity << "\n";
  out << "rd_threshold " << c.rd_threshold << "\n";
  out << "irsd_threshold " << c.irsd_threshold << "\n";
  out << "fringe_factor " << c.fringe_factor << "\n";
  out << "evolution_period " << c.evolution_period << "\n";
  out << "reservoir_capacity " << c.reservoir_capacity << "\n";
  out << "os_update_every " << c.os_update_every << "\n";
  out << "drift_detection " << (c.drift_detection ? 1 : 0) << "\n";
  out << "drift_delta " << c.drift_delta << "\n";
  out << "drift_lambda " << c.drift_lambda << "\n";
  out << "relearn_on_drift " << (c.relearn_on_drift ? 1 : 0) << "\n";
  out << "prune_threshold " << c.prune_threshold << "\n";
  out << "compaction_period " << c.compaction_period << "\n";
  out << "num_shards " << c.num_shards << "\n";
  out << "seed " << c.seed << "\n";
  return out.str();
}

bool ImportConfig(const std::string& text, SpotConfig* config) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "spot-config v1") return false;

  SpotConfig c = *config;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    std::string value;
    if (!(ls >> key >> value)) return false;
    std::string extra;
    if (ls >> extra) return false;

    double d = 0.0;
    std::uint64_t u = 0;
    if (key == "omega" && ParseUint(value, &u)) {
      c.omega = u;
    } else if (key == "epsilon" && ParseDouble(value, &d)) {
      c.epsilon = d;
    } else if (key == "use_decay" && ParseUint(value, &u)) {
      c.use_decay = u != 0;
    } else if (key == "cells_per_dim" && ParseUint(value, &u)) {
      c.cells_per_dim = static_cast<int>(u);
    } else if (key == "partition_margin" && ParseDouble(value, &d)) {
      c.partition_margin = d;
    } else if (key == "domain_lo" && ParseDouble(value, &d)) {
      c.domain_lo = d;
    } else if (key == "domain_hi" && ParseDouble(value, &d)) {
      c.domain_hi = d;
    } else if (key == "fs_max_dimension" && ParseUint(value, &u)) {
      c.fs_max_dimension = static_cast<int>(u);
    } else if (key == "fs_cap" && ParseUint(value, &u)) {
      c.fs_cap = u;
    } else if (key == "cs_capacity" && ParseUint(value, &u)) {
      c.cs_capacity = u;
    } else if (key == "os_capacity" && ParseUint(value, &u)) {
      c.os_capacity = u;
    } else if (key == "rd_threshold" && ParseDouble(value, &d)) {
      c.rd_threshold = d;
    } else if (key == "irsd_threshold" && ParseDouble(value, &d)) {
      c.irsd_threshold = d;
    } else if (key == "fringe_factor" && ParseDouble(value, &d)) {
      c.fringe_factor = d;
    } else if (key == "evolution_period" && ParseUint(value, &u)) {
      c.evolution_period = u;
    } else if (key == "reservoir_capacity" && ParseUint(value, &u)) {
      c.reservoir_capacity = u;
    } else if (key == "os_update_every" && ParseUint(value, &u)) {
      c.os_update_every = u;
    } else if (key == "drift_detection" && ParseUint(value, &u)) {
      c.drift_detection = u != 0;
    } else if (key == "drift_delta" && ParseDouble(value, &d)) {
      c.drift_delta = d;
    } else if (key == "drift_lambda" && ParseDouble(value, &d)) {
      c.drift_lambda = d;
    } else if (key == "relearn_on_drift" && ParseUint(value, &u)) {
      c.relearn_on_drift = u != 0;
    } else if (key == "prune_threshold" && ParseDouble(value, &d)) {
      c.prune_threshold = d;
    } else if (key == "compaction_period" && ParseUint(value, &u)) {
      c.compaction_period = u;
    } else if (key == "num_shards" && ParseUint(value, &u)) {
      c.num_shards = u == 0 ? 1 : u;
    } else if (key == "seed" && ParseUint(value, &u)) {
      c.seed = u;
    } else {
      return false;
    }
  }
  *config = c;
  return true;
}

}  // namespace spot
