#include "core/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/log.h"
#include "core/detector.h"
#include "engine/sharded_engine.h"  // LoadState resets the (complete) engine

namespace spot {

namespace {

// "SPOTCKP1" / "SPOTEND1" as little-endian u64s.
constexpr std::uint64_t kHeaderMagic = 0x31504B43544F5053ULL;
constexpr std::uint64_t kTrailerMagic = 0x31444E45544F5053ULL;
// v2 added topk_capacity to the config, feedback_rounds to the stats and
// the top-k retention section after the synapses (PR 9). Strict equality
// stays the rule: v1 images are rejected, not migrated.
constexpr std::uint8_t kFormatVersion = 2;

}  // namespace

// ---------------------------------------------------------------- writer --

void CheckpointWriter::U8(std::uint8_t v) {
  out_->put(static_cast<char>(v));
}

void CheckpointWriter::U32(std::uint32_t v) {
  unsigned char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = (v >> (8 * i)) & 0xFF;
  out_->write(reinterpret_cast<const char*>(buf), 4);
}

void CheckpointWriter::U64(std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = (v >> (8 * i)) & 0xFF;
  out_->write(reinterpret_cast<const char*>(buf), 8);
}

void CheckpointWriter::F64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void CheckpointWriter::Str(const std::string& s) {
  U64(s.size());
  out_->write(s.data(), static_cast<std::streamsize>(s.size()));
}

void CheckpointWriter::Coords(const std::vector<std::uint32_t>& c) {
  U32(static_cast<std::uint32_t>(c.size()));
  for (std::uint32_t v : c) U32(v);
}

bool CheckpointWriter::ok() const { return out_->good(); }

// ---------------------------------------------------------------- reader --

std::uint8_t CheckpointReader::U8() {
  if (failed_) return 0;
  const int c = in_->get();
  if (c == std::char_traits<char>::eof()) {
    failed_ = true;
    return 0;
  }
  return static_cast<std::uint8_t>(c);
}

std::uint32_t CheckpointReader::U32() {
  if (failed_) return 0;
  unsigned char buf[4];
  in_->read(reinterpret_cast<char*>(buf), 4);
  if (in_->gcount() != 4) {
    failed_ = true;
    return 0;
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  return v;
}

std::uint64_t CheckpointReader::U64() {
  if (failed_) return 0;
  unsigned char buf[8];
  in_->read(reinterpret_cast<char*>(buf), 8);
  if (in_->gcount() != 8) {
    failed_ = true;
    return 0;
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}

double CheckpointReader::F64() {
  const std::uint64_t bits = U64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string CheckpointReader::Str() {
  const std::uint64_t size = U64();
  if (failed_ || size > (1u << 30)) {
    failed_ = true;
    return std::string();
  }
  std::string s(static_cast<std::size_t>(size), '\0');
  in_->read(s.data(), static_cast<std::streamsize>(size));
  if (in_->gcount() != static_cast<std::streamsize>(size)) {
    failed_ = true;
    return std::string();
  }
  return s;
}

std::vector<std::uint32_t> CheckpointReader::Coords() {
  const std::uint32_t size = U32();
  if (failed_ || size > (1u << 20)) {
    failed_ = true;
    return {};
  }
  std::vector<std::uint32_t> c(size);
  for (std::uint32_t& v : c) v = U32();
  if (failed_) c.clear();
  return c;
}

bool CheckpointReader::Fail() {
  failed_ = true;
  return false;
}

bool CheckpointReader::ok() const { return !failed_ && in_->good(); }

// ---------------------------------------------------------------- config --

namespace {

void WriteNsga2(CheckpointWriter& w, const Nsga2Config& c) {
  w.U32(static_cast<std::uint32_t>(c.num_dims));
  w.U32(static_cast<std::uint32_t>(c.max_dimension));
  w.U32(static_cast<std::uint32_t>(c.population_size));
  w.U32(static_cast<std::uint32_t>(c.generations));
  w.F64(c.crossover_prob);
  w.F64(c.mutation_prob);
  w.U64(c.seed);
}

void ReadNsga2(CheckpointReader& r, Nsga2Config* c) {
  c->num_dims = static_cast<int>(r.U32());
  c->max_dimension = static_cast<int>(r.U32());
  c->population_size = static_cast<int>(r.U32());
  c->generations = static_cast<int>(r.U32());
  c->crossover_prob = r.F64();
  c->mutation_prob = r.F64();
  c->seed = r.U64();
}

}  // namespace

void WriteConfigBinary(CheckpointWriter& w, const SpotConfig& c) {
  w.U64(c.omega);
  w.F64(c.epsilon);
  w.Bool(c.use_decay);
  w.U32(static_cast<std::uint32_t>(c.cells_per_dim));
  w.F64(c.partition_margin);
  w.F64(c.domain_lo);
  w.F64(c.domain_hi);
  w.U32(static_cast<std::uint32_t>(c.fs_max_dimension));
  w.U64(c.fs_cap);
  w.U64(c.cs_capacity);
  w.U64(c.os_capacity);
  w.F64(c.rd_threshold);
  w.F64(c.irsd_threshold);
  w.F64(c.fringe_factor);
  WriteNsga2(w, c.unsupervised.moga);
  w.U32(static_cast<std::uint32_t>(c.unsupervised.outlying_degree.num_runs));
  w.F64(c.unsupervised.outlying_degree.threshold);
  w.F64(c.unsupervised.outlying_degree.threshold_scale);
  w.U64(c.unsupervised.top_outlying_points);
  w.U64(c.unsupervised.top_subspaces_per_run);
  WriteNsga2(w, c.supervised.moga);
  w.U64(c.supervised.top_subspaces_per_example);
  w.U64(c.evolution_period);
  w.U64(c.evolution.offspring);
  w.U64(c.evolution.parent_pool);
  w.F64(c.evolution.mutation_prob);
  w.U32(static_cast<std::uint32_t>(c.evolution.max_dimension));
  w.U64(c.reservoir_capacity);
  w.U64(c.os_update_every);
  w.Bool(c.drift_detection);
  w.F64(c.drift_delta);
  w.F64(c.drift_lambda);
  w.Bool(c.relearn_on_drift);
  w.F64(c.prune_threshold);
  w.U64(c.compaction_period);
  w.U64(c.topk_capacity);
  w.U64(c.num_shards);
  w.U64(c.seed);
}

bool ReadConfigBinary(CheckpointReader& r, SpotConfig* config) {
  SpotConfig c;
  c.omega = r.U64();
  c.epsilon = r.F64();
  c.use_decay = r.Bool();
  c.cells_per_dim = static_cast<int>(r.U32());
  c.partition_margin = r.F64();
  c.domain_lo = r.F64();
  c.domain_hi = r.F64();
  c.fs_max_dimension = static_cast<int>(r.U32());
  c.fs_cap = r.U64();
  c.cs_capacity = r.U64();
  c.os_capacity = r.U64();
  c.rd_threshold = r.F64();
  c.irsd_threshold = r.F64();
  c.fringe_factor = r.F64();
  ReadNsga2(r, &c.unsupervised.moga);
  c.unsupervised.outlying_degree.num_runs = static_cast<int>(r.U32());
  c.unsupervised.outlying_degree.threshold = r.F64();
  c.unsupervised.outlying_degree.threshold_scale = r.F64();
  c.unsupervised.top_outlying_points = r.U64();
  c.unsupervised.top_subspaces_per_run = r.U64();
  ReadNsga2(r, &c.supervised.moga);
  c.supervised.top_subspaces_per_example = r.U64();
  c.evolution_period = r.U64();
  c.evolution.offspring = r.U64();
  c.evolution.parent_pool = r.U64();
  c.evolution.mutation_prob = r.F64();
  c.evolution.max_dimension = static_cast<int>(r.U32());
  c.reservoir_capacity = r.U64();
  c.os_update_every = r.U64();
  c.drift_detection = r.Bool();
  c.drift_delta = r.F64();
  c.drift_lambda = r.F64();
  c.relearn_on_drift = r.Bool();
  c.prune_threshold = r.F64();
  c.compaction_period = r.U64();
  c.topk_capacity = r.U64();
  c.num_shards = r.U64();
  c.seed = r.U64();
  if (!r.ok()) return false;
  *config = c;
  return true;
}

// -------------------------------------------------------------- detector --

bool SpotDetector::SaveState(std::ostream& out) const {
  CheckpointWriter w(&out);
  w.U64(kHeaderMagic);
  w.U8(kFormatVersion);
  WriteConfigBinary(w, config_);
  w.Bool(learned());
  if (learned()) {
    // Partition (lo/hi as raw bit patterns: reconstruction is exact even
    // for a FitToData partition).
    const Partition& p = *partition_;
    w.U32(static_cast<std::uint32_t>(p.num_dims()));
    w.U32(static_cast<std::uint32_t>(p.cells_per_dim()));
    for (int d = 0; d < p.num_dims(); ++d) w.F64(p.lo(d));
    for (int d = 0; d < p.num_dims(); ++d) w.F64(p.hi(d));

    w.U64(tick_);
    w.U64(outliers_since_os_update_);

    // All deterministic SpotStats counters. detection_seconds is
    // deliberately NOT part of the image: it is a wall-clock measurement
    // of the saving process, not detector state — two detectors in
    // bit-identical states would serialize differently through it, and a
    // restored process should measure its own timing from zero.
    w.U64(stats_.points_processed);
    w.U64(stats_.outliers_detected);
    w.U64(stats_.evolution_rounds);
    w.U64(stats_.os_growth_runs);
    w.U64(stats_.drifts_detected);
    w.U64(stats_.feedback_rounds);
    w.U64(stats_.batches_processed);

    rng_.SaveState(w);
    reservoir_.SaveState(w);
    drift_.SaveState(w);
    sst_.SaveState(w);
    synapses_->SaveState(w);
    topk_.SaveState(w);
  }
  w.U64(kTrailerMagic);
  out.flush();
  return w.ok();
}

bool SpotDetector::LoadState(std::istream& in) {
  CheckpointReader r(&in);

  // Tear the current state down first: a failed load must leave the
  // detector unlearned, never half-restored.
  engine_.reset();
  synapses_.reset();
  partition_.reset();
  tracked_cache_.clear();
  pcs_cache_.clear();
  topk_.Clear();
  stats_ = SpotStats{};
  tick_ = 0;
  outliers_since_os_update_ = 0;

  if (r.U64() != kHeaderMagic) return r.Fail();
  if (r.U8() != kFormatVersion) return r.Fail();

  SpotConfig config;
  if (!ReadConfigBinary(r, &config)) return false;
  if (!config.Validate().empty()) return r.Fail();
  config_ = config;
  config_.num_shards = config_.num_shards == 0 ? 1 : config_.num_shards;

  // Re-seat the config-derived members exactly as the constructor would;
  // their checkpointed state (when learned) overwrites this below.
  rng_ = Rng(config_.seed);
  sst_ = Sst(config_.cs_capacity, config_.os_capacity);
  reservoir_ = ReservoirSample(config_.reservoir_capacity,
                               config_.seed ^ 0xABCDEF);
  topk_ = TopKOutliers(config_.topk_capacity,
                       config_.use_decay
                           ? DecayModel(config_.omega, config_.epsilon)
                           : DecayModel::None());
  drift_ = PageHinkley(config_.drift_delta, config_.drift_lambda);

  const bool was_learned = r.Bool();
  if (was_learned) {
    const std::uint32_t num_dims = r.U32();
    const std::uint32_t cells_per_dim = r.U32();
    if (!r.ok() || num_dims == 0 ||
        num_dims > static_cast<std::uint32_t>(Subspace::kMaxDimensions) ||
        cells_per_dim != static_cast<std::uint32_t>(config_.cells_per_dim)) {
      return r.Fail();
    }
    std::vector<double> lo(num_dims);
    std::vector<double> hi(num_dims);
    for (double& v : lo) v = r.F64();
    for (double& v : hi) v = r.F64();
    if (!r.ok()) return false;
    partition_ = Partition(std::move(lo), std::move(hi),
                           static_cast<int>(cells_per_dim));

    tick_ = r.U64();
    outliers_since_os_update_ = r.U64();

    stats_.points_processed = r.U64();
    stats_.outliers_detected = r.U64();
    stats_.evolution_rounds = r.U64();
    stats_.os_growth_runs = r.U64();
    stats_.drifts_detected = r.U64();
    stats_.feedback_rounds = r.U64();
    stats_.batches_processed = r.U64();

    if (!rng_.LoadState(r) ||
        !reservoir_.LoadState(r, static_cast<std::size_t>(num_dims)) ||
        !drift_.LoadState(r) || !sst_.LoadState(r)) {
      partition_.reset();
      return false;
    }
    // Every SST subspace must retain only attributes the partition has:
    // SyncTrackedSubspaces hands these to ProjectedGrid constructors,
    // which index partition bounds by retained dimension.
    const std::uint64_t valid_mask =
        num_dims >= 64 ? ~0ULL : ((1ULL << num_dims) - 1);
    for (const Subspace& s : sst_.AllSubspaces()) {
      if ((s.bits() & ~valid_mask) != 0) {
        partition_.reset();
        return r.Fail();
      }
    }

    synapses_ = std::make_unique<SynapseManager>(
        *partition_,
        config_.use_decay ? DecayModel(config_.omega, config_.epsilon)
                          : DecayModel::None(),
        config_.prune_threshold, config_.compaction_period);
    if (!synapses_->LoadState(r)) {
      synapses_.reset();
      partition_.reset();
      return false;
    }
    if (!topk_.LoadState(r)) {
      synapses_.reset();
      partition_.reset();
      return false;
    }
  }

  if (r.U64() != kTrailerMagic || !r.ok()) {
    synapses_.reset();
    partition_.reset();
    return r.Fail();
  }

  if (was_learned) {
    tracked_cache_ = synapses_->TrackedSubspaces();
    pcs_cache_.resize(tracked_cache_.size());
  }
  // The sink outlives restores (it belongs to the serving layer, not the
  // checkpoint). Re-seat it on the rebuilt members; the restore itself is
  // silent — LoadState paths bypass Track()/Add*() by construction.
  set_event_sink(event_sink_);
  reservoir_replacements_ = 0;
  return true;
}

bool SaveCheckpoint(const SpotDetector& detector, std::ostream& out) {
  return detector.SaveState(out);
}

bool LoadCheckpoint(SpotDetector* detector, std::istream& in) {
  return detector->LoadState(in);
}

bool SaveCheckpointFile(const SpotDetector& detector,
                        const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      SPOT_LOG(Error) << "cannot open checkpoint file " << tmp;
      return false;
    }
    if (!detector.SaveState(out)) {
      SPOT_LOG(Error) << "checkpoint write to " << tmp << " failed";
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    SPOT_LOG(Error) << "cannot rename " << tmp << " to " << path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool LoadCheckpointFile(SpotDetector* detector, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  return detector->LoadState(in);
}

}  // namespace spot
