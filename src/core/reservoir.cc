#include "core/reservoir.h"

#include "core/checkpoint.h"

namespace spot {

ReservoirSample::ReservoirSample(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  items_.reserve(capacity_);
}

bool ReservoirSample::Add(const std::vector<double>& values) {
  ++seen_;
  if (items_.size() < capacity_) {
    items_.push_back(values);
    return true;
  }
  const std::uint64_t j = rng_.NextUint64(seen_);
  if (j < capacity_) {
    items_[static_cast<std::size_t>(j)] = values;
    return true;
  }
  return false;
}

void ReservoirSample::Clear() {
  items_.clear();
  seen_ = 0;
}

void ReservoirSample::SaveState(CheckpointWriter& w) const {
  w.U64(capacity_);
  rng_.SaveState(w);
  w.U64(seen_);
  w.U64(items_.size());
  for (const auto& item : items_) {
    w.U64(item.size());
    for (double v : item) w.F64(v);
  }
}

bool ReservoirSample::LoadState(CheckpointReader& r,
                                std::size_t expected_dim) {
  if (r.U64() != capacity_) return r.Fail();
  if (!rng_.LoadState(r)) return false;
  seen_ = r.U64();
  const std::uint64_t count = r.U64();
  if (count > capacity_ || count > seen_) return r.Fail();
  items_.clear();
  items_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    const std::uint64_t dim = r.U64();
    if (dim > (1u << 20)) return r.Fail();  // corrupt length prefix
    if (expected_dim != 0 && dim != expected_dim) return r.Fail();
    std::vector<double> item(static_cast<std::size_t>(dim));
    for (double& v : item) v = r.F64();
    items_.push_back(std::move(item));
  }
  return r.ok();
}

}  // namespace spot
