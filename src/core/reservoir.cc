#include "core/reservoir.h"

namespace spot {

ReservoirSample::ReservoirSample(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  items_.reserve(capacity_);
}

void ReservoirSample::Add(const std::vector<double>& values) {
  ++seen_;
  if (items_.size() < capacity_) {
    items_.push_back(values);
    return;
  }
  const std::uint64_t j = rng_.NextUint64(seen_);
  if (j < capacity_) {
    items_[static_cast<std::size_t>(j)] = values;
  }
}

void ReservoirSample::Clear() {
  items_.clear();
  seen_ = 0;
}

}  // namespace spot
