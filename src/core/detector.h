#ifndef SPOT_CORE_DETECTOR_H_
#define SPOT_CORE_DETECTOR_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/detector_events.h"
#include "core/drift_detector.h"
#include "core/finding.h"
#include "core/reservoir.h"
#include "core/spot_config.h"
#include "core/topk_outliers.h"
#include "grid/pcs.h"
#include "grid/synapse_manager.h"
#include "learning/sst.h"
#include "learning/supervised.h"
#include "obs/perf_counters.h"
#include "stream/detector_iface.h"

namespace spot {

class CheckpointReader;
class CheckpointWriter;
class ShardedSpotEngine;
class ThreadPool;

/// Wall-clock window one shard worker spent folding its slice of the last
/// sharded batch: start and duration in µs on the SteadyMicrosSinceStart
/// timebase. Collected only when shard-timing collection is enabled (the
/// serving tier's flight recorder turns the spans into per-shard probe
/// trace events).
struct ShardSpan {
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
};

// SubspaceFinding lives in core/finding.h (included above) so the top-k
// retention structure can share it without a header cycle.

/// Verdict of SPOT on one streaming point: the label plus the outlying
/// subspace(s) — "the context where these projected outliers exist"
/// (paper, Section I).
struct SpotResult {
  bool is_outlier = false;
  std::vector<SubspaceFinding> findings;

  /// Anomaly score in [0, 1]: 1 - min cell RD over all checked subspaces,
  /// clamped. Monotone in sparsity; used for ROC sweeps.
  double score = 0.0;
};

/// Running counters of the detection stage.
struct SpotStats {
  std::uint64_t points_processed = 0;
  std::uint64_t outliers_detected = 0;
  std::uint64_t evolution_rounds = 0;
  std::uint64_t os_growth_runs = 0;
  std::uint64_t drifts_detected = 0;
  /// ApplyFeedback rounds that reached the supervised learner (part of the
  /// deterministic detector state: each round consumes one RNG draw, so the
  /// count is checkpointed alongside the RNG stream).
  std::uint64_t feedback_rounds = 0;

  /// Wall-clock seconds spent inside Process()/ProcessBatch() since
  /// Learn(), and the number of ProcessBatch() calls completed. These are
  /// the one source benches and the sharded engine report throughput from
  /// (instead of each re-deriving rates around the call sites).
  double detection_seconds = 0.0;
  std::uint64_t batches_processed = 0;

  /// Mean detection throughput since Learn(): points per wall-clock second
  /// spent in the detection entry points (0 before any point is timed).
  double PointsPerSecond() const {
    return detection_seconds > 0.0
               ? static_cast<double>(points_processed) / detection_seconds
               : 0.0;
  }

  /// Network-ingest transport counters, maintained by the serving layer
  /// (src/net/spot_server.cc via SpotService::RecordNetwork) when the
  /// detector backs a wire session; a standalone detector leaves them
  /// zero. Like detection_seconds these are transport measurement, not
  /// detector state: they are excluded from checkpoints and survive
  /// session eviction at the service layer.
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  /// Times the server paused reading the session's connection because its
  /// outbound verdict queue hit the backpressure cap.
  std::uint64_t backpressure_stalls = 0;
  /// Peak number of coalesced points pending for the session before a
  /// batch was cut (the server-side queue-depth high-water mark).
  std::uint64_t net_queue_peak = 0;
};

/// The Stream Projected Outlier deTector.
///
/// Lifecycle: construct with a SpotConfig, call Learn() once with a batch
/// of training data (plus optional expert knowledge), then call Process()
/// for every streaming point. Learn() builds the partition and the SST
/// (FS + CS + OS); Process() updates the decaying data synapses, checks the
/// point's PCS in every SST subspace, grows OS from detected outliers,
/// periodically self-evolves CS, and watches for concept drift.
class SpotDetector {
 public:
  explicit SpotDetector(const SpotConfig& config);
  ~SpotDetector();

  SpotDetector(const SpotDetector&) = delete;
  SpotDetector& operator=(const SpotDetector&) = delete;

  /// Offline learning stage. `knowledge` may be nullptr (pure unsupervised).
  /// Training points also warm-start the data synapses. Returns false (and
  /// leaves the detector unlearned) when the config is invalid or the
  /// training batch is empty.
  bool Learn(const std::vector<std::vector<double>>& training_data,
             const DomainKnowledge* knowledge = nullptr);

  /// Online detection stage: one-pass processing of the next point.
  /// Requires Learn() to have succeeded.
  SpotResult Process(const DataPoint& point);

  /// Convenience overload for raw value vectors (ids auto-assigned).
  SpotResult Process(const std::vector<double>& values);

  /// Batch detection: processes `points` in arrival order and returns one
  /// verdict per point. Produces results identical to calling Process() on
  /// each point in sequence (same synapse updates, OS growth, evolution and
  /// drift side effects at the same ticks) — batching amortizes per-point
  /// overhead, it is not a semantic change. With config.num_shards > 1 the
  /// batch is delegated to a ShardedSpotEngine that fans the per-subspace
  /// synapse work out across worker threads; verdicts stay bit-identical at
  /// every shard count.
  std::vector<SpotResult> ProcessBatch(const std::vector<DataPoint>& points);

  /// Convenience overload for raw value vectors (ids auto-assigned).
  std::vector<SpotResult> ProcessBatch(
      const std::vector<std::vector<double>>& batch);

  /// Supervised feedback entry point (the wire kFeedback request lands
  /// here): labels previously seen points by id — resolved against the
  /// top-k retention window — and/or submits fresh labeled outlier
  /// examples, then routes them through the supervised outlier-driven
  /// learner against the reservoir sample and grows OS with the result.
  /// Must be called at a batch boundary (never mid-batch): each successful
  /// round consumes one RNG draw, so call order relative to Process()
  /// determines all subsequent verdicts. Returns false without touching
  /// any state (or the RNG stream) when the detector is unlearned, no
  /// labels were given, an id is not retained, an example's width does not
  /// match the stream, or the reservoir is still too small; `error` (may
  /// be nullptr) then names the problem.
  bool ApplyFeedback(const std::vector<std::uint64_t>& point_ids,
                     const std::vector<std::vector<double>>& examples,
                     std::string* error = nullptr);

  /// Up to k worst outliers in the current (omega, epsilon) window, best
  /// first, with decayed scores stamped at the current tick. Const: query
  /// timing can never perturb detection state.
  std::vector<TopKEntry> QueryTopK(std::size_t k) const {
    return topk_.Query(k, tick_);
  }

  bool learned() const { return synapses_ != nullptr; }
  /// Attribute count the detector was trained on (0 before Learn()).
  /// Callers feeding externally sourced points (e.g. the network ingest
  /// layer) validate widths against this before Process/ProcessBatch.
  int dimension() const {
    return partition_.has_value() ? partition_->num_dims() : 0;
  }
  const Sst& sst() const { return sst_; }
  const SynapseManager& synapses() const { return *synapses_; }
  const SpotStats& stats() const { return stats_; }
  const SpotConfig& config() const { return config_; }
  const ReservoirSample& reservoir() const { return reservoir_; }
  const TopKOutliers& topk() const { return topk_; }

  /// Number of SST subspaces currently tracked by the synapses.
  std::size_t TrackedSubspaces() const;

  /// Reconfigures the shard count used by ProcessBatch (see
  /// SpotConfig::num_shards). Takes effect from the next batch; verdicts do
  /// not depend on the setting.
  void set_num_shards(std::size_t num_shards);
  std::size_t num_shards() const { return config_.num_shards; }

  /// Makes sharded batches run on `pool` (borrowed; must outlive this
  /// detector or be cleared with nullptr first) instead of a privately
  /// owned worker pool. This is how the SpotService multiplexes many
  /// detector sessions onto one shared pool: the fork-join engine only
  /// ever *borrows* a pool, and the detector owns one lazily when no
  /// external pool is supplied. Passing nullptr reverts to the owned pool.
  /// Verdicts never depend on which pool executes the work.
  void set_thread_pool(ThreadPool* pool);

  /// Full-state binary checkpointing (see src/core/checkpoint.h): writes /
  /// restores config, partition, SST, synapses, reservoir, drift state,
  /// RNG and all deterministic counters, such that save → load → Process is
  /// bit-identical to an uninterrupted run. (SpotStats::detection_seconds
  /// is wall-clock measurement, not detector state; it restarts at zero on
  /// restore.) SaveState returns false on stream errors;
  /// LoadState returns false on malformed or incompatible input and leaves
  /// the detector unlearned (never half-restored). Prefer the
  /// SaveCheckpointFile/LoadCheckpointFile wrappers for files.
  bool SaveState(std::ostream& out) const;
  bool LoadState(std::istream& in);

  /// Attaches an observability sink (borrowed; must outlive the detector
  /// or be detached with nullptr) that receives the engine's rare state
  /// transitions — subspace churn, evolution/OS-growth rounds, drift,
  /// reservoir turnover (DESIGN.md Section 10). Propagated into the SST
  /// and the synapse manager, and re-applied when Learn()/LoadState()
  /// rebuild the latter. Pure reporting: verdicts, stats and checkpoint
  /// bytes are bit-identical with or without a sink, and the per-point
  /// hot path pays one pointer test.
  void set_event_sink(DetectorEventSink* sink);
  DetectorEventSink* event_sink() const { return event_sink_; }

  /// Enables per-shard timing of sharded batches: after each sharded
  /// ProcessBatch, shard_spans() holds one wall-clock span per shard.
  /// Off by default (the spans cost two clock reads per shard per batch);
  /// sequential batches never produce spans.
  void set_collect_shard_timings(bool on) { collect_shard_timings_ = on; }
  bool collect_shard_timings() const { return collect_shard_timings_; }
  const std::vector<ShardSpan>& shard_spans() const { return shard_spans_; }

  /// Enables hardware-counter attribution of sharded batches (DESIGN.md
  /// Section 12): after each sharded ProcessBatch, bin_perf() holds the
  /// counter deltas of the phase-0 binning pass and shard_perf() one
  /// entry per shard for its probe loop (both overwritten per batch,
  /// mirroring shard_spans). Off by default; pure measurement — verdicts,
  /// stats and checkpoint bytes are bit-identical either way, and
  /// sequential (num_shards == 1) batches never produce totals.
  void set_collect_perf_counters(bool on) { collect_perf_counters_ = on; }
  bool collect_perf_counters() const { return collect_perf_counters_; }
  const obs::PerfStageTotals& bin_perf() const { return bin_perf_; }
  const std::vector<obs::PerfStageTotals>& shard_perf() const {
    return shard_perf_;
  }

 private:
  // The sharded engine drives the same per-point pipeline from its batch
  // join (reservoir, verdict assembly, ApplyPointSideEffects) and borrows
  // the synapses for its shard views.
  friend class ShardedSpotEngine;

  /// The pool sharded batches will run on: the external pool when set,
  /// otherwise a lazily (re)built owned pool sized num_shards - 1.
  ThreadPool* EnsurePool();

  void SyncTrackedSubspaces();
  /// Shared per-point detection step (Process and sequential ProcessBatch
  /// both land here, which is what keeps them bit-identical).
  SpotResult ProcessOne(const DataPoint& point);
  /// Post-verdict machinery of one point: stats, top-k retention, OS
  /// growth cadence, CS self-evolution, drift watch. Shared verbatim by
  /// ProcessOne and the sharded engine's serial join so the two paths
  /// cannot drift apart. `point_id`/`tick` identify the point for the
  /// top-k window (tick is the value the point's synapse update used).
  void ApplyPointSideEffects(std::uint64_t point_id, std::uint64_t tick,
                             const std::vector<double>& values,
                             const SpotResult& result);
  void GrowOutlierDriven(const std::vector<double>& values);
  void RunSelfEvolution();
  void RelearnAfterDrift();
  /// Reservoir offer shared by ProcessOne and the sharded engine's serial
  /// join: counts post-warm-up replacements and emits kReservoirRefresh
  /// once per full turnover (~capacity replacements).
  void AddToReservoir(const std::vector<double>& values);
  /// Emits a detector-scoped event at the current tick (no-op unsinked).
  void Emit(DetectorEventKind kind, std::uint64_t a, double value = 0.0);

  SpotConfig config_;
  Rng rng_;
  Sst sst_;
  /// Tracked-subspace list cached across Process() calls (refreshed by
  /// SyncTrackedSubspaces, aligned with SynapseManager's dense grid order)
  /// so the hot path does not allocate.
  std::vector<Subspace> tracked_cache_;
  /// Per-subspace PCS scratch filled by SynapseManager::AddAndQuery;
  /// pcs_cache_[i] belongs to tracked_cache_[i].
  std::vector<Pcs> pcs_cache_;
  std::optional<Partition> partition_;
  std::unique_ptr<SynapseManager> synapses_;
  /// Lazily built when config_.num_shards > 1; reset by Learn(), by
  /// set_num_shards() and by set_thread_pool() so it always matches the
  /// live synapses, count and pool. The engine borrows its pool: either
  /// external_pool_ (service-shared) or the lazily owned owned_pool_.
  std::unique_ptr<ShardedSpotEngine> engine_;
  ThreadPool* external_pool_ = nullptr;
  std::unique_ptr<ThreadPool> owned_pool_;
  ReservoirSample reservoir_;
  /// Worst-outlier retention for QueryTopK / feedback-by-id; rebuilt by
  /// Learn() and LoadState() so it always matches the live config's
  /// capacity and decay model.
  TopKOutliers topk_;
  PageHinkley drift_;
  SpotStats stats_;
  std::uint64_t tick_ = 0;
  std::uint64_t outliers_since_os_update_ = 0;
  DetectorEventSink* event_sink_ = nullptr;
  /// Post-warm-up reservoir replacements (observability cadence only —
  /// never checkpointed, so a restored detector restarts the count).
  std::uint64_t reservoir_replacements_ = 0;
  bool collect_shard_timings_ = false;
  /// Filled by the sharded engine when timing collection is on (one entry
  /// per shard, overwritten each sharded batch).
  std::vector<ShardSpan> shard_spans_;
  bool collect_perf_counters_ = false;
  /// Filled by the sharded engine when counter collection is on
  /// (overwritten each sharded batch, like shard_spans_).
  obs::PerfStageTotals bin_perf_;
  std::vector<obs::PerfStageTotals> shard_perf_;
};

/// Adapter exposing SpotDetector through the generic StreamDetector
/// interface used by the comparative-evaluation harness.
class SpotStreamAdapter : public StreamDetector {
 public:
  /// Borrows `detector`, which must be learned and outlive the adapter.
  explicit SpotStreamAdapter(SpotDetector* detector) : detector_(detector) {}

  Detection Process(const DataPoint& point) override;
  std::vector<Detection> ProcessBatch(
      const std::vector<DataPoint>& points) override;
  void set_num_shards(std::size_t num_shards) override {
    detector_->set_num_shards(num_shards);
  }
  std::string name() const override { return "SPOT"; }

 private:
  static Detection ToDetection(const SpotResult& r);

  SpotDetector* detector_;
};

}  // namespace spot

#endif  // SPOT_CORE_DETECTOR_H_
