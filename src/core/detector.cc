#include "core/detector.h"

#include <algorithm>

#include "common/log.h"
#include "common/math_util.h"
#include "common/timer.h"
#include "engine/sharded_engine.h"
#include "learning/self_evolution.h"
#include "moga/moga_search.h"
#include "moga/objectives.h"
#include "subspace/lattice.h"

namespace spot {

namespace {

/// The decay model the top-k retention shares with the data synapses.
DecayModel TopKDecay(const SpotConfig& config) {
  return config.use_decay ? DecayModel(config.omega, config.epsilon)
                          : DecayModel::None();
}

}  // namespace

SpotDetector::SpotDetector(const SpotConfig& config)
    : config_(config),
      rng_(config.seed),
      sst_(config.cs_capacity, config.os_capacity),
      reservoir_(config.reservoir_capacity, config.seed ^ 0xABCDEF),
      topk_(config.topk_capacity, TopKDecay(config)),
      drift_(config.drift_delta, config.drift_lambda) {}

SpotDetector::~SpotDetector() = default;

bool SpotDetector::Learn(const std::vector<std::vector<double>>& training_data,
                         const DomainKnowledge* knowledge) {
  const std::string problem = config_.Validate();
  if (!problem.empty()) {
    SPOT_LOG(Error) << "invalid SpotConfig: " << problem;
    return false;
  }
  if (training_data.empty()) {
    SPOT_LOG(Error) << "Learn() requires a non-empty training batch";
    return false;
  }

  const int num_dims = static_cast<int>(training_data.front().size());
  if (num_dims > Subspace::kMaxDimensions) {
    SPOT_LOG(Error) << "dimensionality " << num_dims << " exceeds "
                    << Subspace::kMaxDimensions;
    return false;
  }

  if (config_.domain_lo < config_.domain_hi) {
    partition_ = Partition(num_dims, config_.cells_per_dim,
                           config_.domain_lo, config_.domain_hi);
  } else {
    partition_ = Partition::FitToData(training_data, config_.cells_per_dim,
                                      config_.partition_margin);
  }

  // --- FS: the lattice up to MaxDimension, capped by uniform sampling. ---
  const int max_dim = std::min(config_.fs_max_dimension, num_dims);
  std::vector<Subspace> fs;
  if (max_dim > 0) {
    const std::uint64_t lattice = LatticeSize(num_dims, max_dim);
    if (config_.fs_cap != 0 && lattice > config_.fs_cap) {
      SPOT_LOG(Warning) << "FS lattice has " << lattice
                        << " subspaces; sampling " << config_.fs_cap;
      fs = SampleLattice(num_dims, max_dim, config_.fs_cap, rng_);
    } else {
      fs = EnumerateLattice(num_dims, max_dim);
    }
  }
  sst_.SetFixed(std::move(fs));

  // --- CS: unsupervised learning (MOGA + lead clustering + MOGA). ---
  UnsupervisedConfig ucfg = config_.unsupervised;
  ucfg.moga.num_dims = num_dims;
  ucfg.moga.max_dimension = std::min(ucfg.moga.max_dimension, num_dims);
  if (ucfg.top_subspaces_per_run > 0) {
    // Candidates already present in FS are deduplicated away by
    // AddClustering; over-request so CS still receives novel subspaces.
    ucfg.top_subspaces_per_run +=
        std::min<std::size_t>(sst_.fixed().size(), 64);
  }
  std::size_t cs_added = 0;
  for (const auto& ss : LearnClusteringSubspaces(training_data, *partition_,
                                                 ucfg, rng_.NextUint64())) {
    if (cs_added >= config_.unsupervised.top_subspaces_per_run) break;
    const std::size_t before = sst_.clustering().size();
    sst_.AddClustering(ss.subspace, ss.score);
    if (sst_.clustering().size() > before) ++cs_added;
  }

  // --- OS: supervised learning from expert examples, when provided. ---
  if (knowledge != nullptr && !knowledge->outlier_examples.empty()) {
    SupervisedConfig scfg = config_.supervised;
    scfg.moga.num_dims = num_dims;
    scfg.moga.max_dimension = std::min(scfg.moga.max_dimension, num_dims);
    for (const auto& ss : LearnOutlierDrivenSubspaces(
             training_data, *partition_, *knowledge, scfg,
             rng_.NextUint64())) {
      sst_.AddOutlierDriven(ss.subspace, ss.score);
    }
  }

  // --- Synapses: track the SST and warm-start from the training batch. ---
  synapses_ = std::make_unique<SynapseManager>(
      *partition_,
      config_.use_decay ? DecayModel(config_.omega, config_.epsilon)
                        : DecayModel::None(),
      config_.prune_threshold, config_.compaction_period);
  // The sink survives a re-Learn: re-apply it before SyncTrackedSubspaces
  // so the initial Track() calls journal the starting SST.
  synapses_->set_event_sink(event_sink_);
  engine_.reset();  // shard views must not outlive the old synapses
  // Fresh detection state: a re-Learn starts the stream over, so no stats,
  // OS-growth cadence or accumulated drift signal may carry across.
  stats_ = SpotStats{};
  outliers_since_os_update_ = 0;
  topk_ = TopKOutliers(config_.topk_capacity, TopKDecay(config_));
  drift_ = PageHinkley(config_.drift_delta, config_.drift_lambda);
  SyncTrackedSubspaces();
  tick_ = 0;
  reservoir_replacements_ = 0;
  for (const auto& row : training_data) {
    synapses_->Add(row, tick_++);
    reservoir_.Add(row);
  }
  return true;
}

void SpotDetector::set_event_sink(DetectorEventSink* sink) {
  event_sink_ = sink;
  sst_.set_event_sink(sink);
  if (synapses_ != nullptr) synapses_->set_event_sink(sink);
}

void SpotDetector::Emit(DetectorEventKind kind, std::uint64_t a,
                        double value) {
  if (event_sink_ == nullptr) return;
  DetectorEvent event;
  event.kind = kind;
  event.tick = tick_;
  event.a = a;
  event.value = value;
  event_sink_->OnDetectorEvent(event);
}

void SpotDetector::AddToReservoir(const std::vector<double>& values) {
  const bool warm = reservoir_.size() == reservoir_.capacity();
  if (!reservoir_.Add(values) || !warm) return;
  ++reservoir_replacements_;
  if (event_sink_ != nullptr && reservoir_.capacity() != 0 &&
      reservoir_replacements_ % reservoir_.capacity() == 0) {
    // One full turnover: on average every slot has been replaced since the
    // last refresh event, i.e. the drift/relearn sample has rolled over.
    Emit(DetectorEventKind::kReservoirRefresh,
         reservoir_replacements_ / reservoir_.capacity());
  }
}

void SpotDetector::SyncTrackedSubspaces() {
  const std::vector<Subspace> wanted = sst_.AllSubspaces();
  // Track additions.
  for (const auto& s : wanted) synapses_->Track(s);
  // Untrack removals (subspaces evicted from CS/OS).
  for (const auto& s : synapses_->TrackedSubspaces()) {
    if (!sst_.Contains(s)) synapses_->Untrack(s);
  }
  tracked_cache_ = synapses_->TrackedSubspaces();
}

SpotResult SpotDetector::Process(const DataPoint& point) {
  if (!learned()) {
    SPOT_LOG(Error) << "Process() called before a successful Learn()";
    return SpotResult{};
  }
  Timer timer;
  SpotResult result = ProcessOne(point);
  stats_.detection_seconds += timer.ElapsedSeconds();
  return result;
}

void SpotDetector::set_num_shards(std::size_t num_shards) {
  config_.num_shards = num_shards == 0 ? 1 : num_shards;
  if (engine_ != nullptr && engine_->num_shards() != config_.num_shards) {
    // The next ProcessBatch rebuilds the engine lazily against the pool
    // EnsurePool() hands out for the new count.
    engine_.reset();
  }
  if (config_.num_shards == 1) {
    // Dropping to sequential would otherwise strand the owned workers.
    engine_.reset();
    owned_pool_.reset();
  }
}

void SpotDetector::set_thread_pool(ThreadPool* pool) {
  if (external_pool_ == pool) return;
  external_pool_ = pool;
  engine_.reset();      // must not keep dispatching onto the old pool
  owned_pool_.reset();  // an external pool replaces the owned workers
}

ThreadPool* SpotDetector::EnsurePool() {
  if (external_pool_ != nullptr) return external_pool_;
  const std::size_t workers = config_.num_shards - 1;
  if (owned_pool_ == nullptr || owned_pool_->num_threads() != workers) {
    owned_pool_ = std::make_unique<ThreadPool>(workers);
  }
  return owned_pool_.get();
}

std::vector<SpotResult> SpotDetector::ProcessBatch(
    const std::vector<DataPoint>& points) {
  std::vector<SpotResult> results;
  if (!learned()) {
    SPOT_LOG(Error) << "ProcessBatch() called before a successful Learn()";
    results.resize(points.size());
    return results;
  }
  Timer timer;
  if (config_.num_shards > 1) {
    if (engine_ == nullptr || engine_->num_shards() != config_.num_shards) {
      engine_ = std::make_unique<ShardedSpotEngine>(this, config_.num_shards,
                                                    EnsurePool());
    }
    results = engine_->ProcessBatch(points);
  } else {
    results.reserve(points.size());
    for (const DataPoint& p : points) results.push_back(ProcessOne(p));
  }
  stats_.detection_seconds += timer.ElapsedSeconds();
  ++stats_.batches_processed;
  return results;
}

std::vector<SpotResult> SpotDetector::ProcessBatch(
    const std::vector<std::vector<double>>& batch) {
  std::vector<SpotResult> results;
  if (!learned()) {
    SPOT_LOG(Error) << "ProcessBatch() called before a successful Learn()";
    results.resize(batch.size());
    return results;
  }
  if (config_.num_shards > 1) {
    std::vector<DataPoint> points(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      points[i].id = tick_ + i;
      points[i].values = batch[i];
    }
    return ProcessBatch(points);
  }
  Timer timer;
  results.reserve(batch.size());
  DataPoint p;
  for (const auto& values : batch) {
    p.id = tick_;
    p.values = values;
    results.push_back(ProcessOne(p));
  }
  stats_.detection_seconds += timer.ElapsedSeconds();
  ++stats_.batches_processed;
  return results;
}

SpotResult SpotDetector::ProcessOne(const DataPoint& point) {
  SpotResult result;

  // 1+2 fused. Update data synapses (BCS + every tracked PCS grid) and
  // retrieve the PCS of the point's cell in every SST subspace from the
  // same slot lookups: one hash probe per tracked subspace. The point's
  // base-cell coordinates are computed once and projected per subspace by
  // index selection.
  synapses_->AddAndQuery(point.values, tick_++, &pcs_cache_);
  AddToReservoir(point.values);

  // Outlier-ness check over the retrieved PCSs.
  double min_rd = 1.0;
  for (std::size_t i = 0; i < tracked_cache_.size(); ++i) {
    const Subspace& s = tracked_cache_[i];
    const Pcs& pcs = pcs_cache_[i];
    min_rd = std::min(min_rd, pcs.rd);
    if (pcs.IsSparse(config_.rd_threshold, config_.irsd_threshold)) {
      // Veto sparse cells that are merely the fringe of an adjacent dense
      // cluster (statistical tails revisit such cells forever; genuinely
      // projected outliers sit in isolated cells).
      if (config_.fringe_factor > 0.0 &&
          synapses_->IsClusterFringe(point.values, s, pcs.count,
                                     config_.fringe_factor)) {
        continue;
      }
      result.findings.push_back({s, pcs});
    }
  }
  result.is_outlier = !result.findings.empty();
  result.score = Clamp(1.0 - min_rd, 0.0, 1.0);

  ApplyPointSideEffects(point.id, tick_ - 1, point.values, result);
  return result;
}

void SpotDetector::ApplyPointSideEffects(std::uint64_t point_id,
                                         std::uint64_t tick,
                                         const std::vector<double>& values,
                                         const SpotResult& result) {
  ++stats_.points_processed;
  if (result.is_outlier) {
    ++stats_.outliers_detected;
    // Retain for top-k queries and feedback-by-id before any growth runs:
    // retention is a pure function of the verdict, not of what OS growth
    // does with it.
    if (topk_.capacity() != 0) {
      TopKEntry entry;
      entry.point_id = point_id;
      entry.tick = tick;
      entry.score = result.score;
      entry.values = values;
      entry.findings = result.findings;
      topk_.Offer(std::move(entry));
    }
    // 3. OS growth: the detected outlier's top sparse subspaces join OS.
    if (config_.os_update_every != 0 &&
        ++outliers_since_os_update_ >= config_.os_update_every) {
      outliers_since_os_update_ = 0;
      GrowOutlierDriven(values);
    }
  }

  // 4. Periodic CS self-evolution.
  if (config_.evolution_period != 0 &&
      stats_.points_processed % config_.evolution_period == 0) {
    RunSelfEvolution();
  }

  // 5. Concept-drift watch on the outlier-rate signal.
  if (config_.drift_detection &&
      drift_.Add(result.is_outlier ? 1.0 : 0.0)) {
    ++stats_.drifts_detected;
    Emit(DetectorEventKind::kDriftDetected, stats_.drifts_detected);
    if (config_.relearn_on_drift) RelearnAfterDrift();
  }
}

SpotResult SpotDetector::Process(const std::vector<double>& values) {
  DataPoint p;
  p.id = tick_;
  p.values = values;
  return Process(p);
}

void SpotDetector::GrowOutlierDriven(const std::vector<double>& values) {
  const std::vector<std::vector<double>>& sample = reservoir_.Items();
  if (sample.size() < 8) return;
  ++stats_.os_growth_runs;
  Emit(DetectorEventKind::kOsGrowthRun, stats_.os_growth_runs);

  // Mini-MOGA targeted at this outlier against the recent sample.
  std::vector<std::vector<double>> batch = sample;
  batch.push_back(values);
  BatchSparsityObjectives obj(&*partition_, &batch, {batch.size() - 1});
  Nsga2Config cfg = config_.supervised.moga;
  cfg.num_dims = partition_->num_dims();
  cfg.max_dimension = std::min(cfg.max_dimension, cfg.num_dims);
  // A light budget: OS growth runs inside the detection loop.
  cfg.population_size = std::min(cfg.population_size, 24);
  cfg.generations = std::min(cfg.generations, 10);
  cfg.seed = rng_.NextUint64();
  MogaSearch search(cfg, &obj);
  for (const auto& ss :
       search.FindTopSparse(config_.supervised.top_subspaces_per_example)) {
    sst_.AddOutlierDriven(ss.subspace, ss.score);
  }
  SyncTrackedSubspaces();
}

bool SpotDetector::ApplyFeedback(
    const std::vector<std::uint64_t>& point_ids,
    const std::vector<std::vector<double>>& examples, std::string* error) {
  const auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  // Every failure path returns before the RNG draw below, so a refused
  // round leaves the verdict stream untouched — and both the wire and the
  // in-process reference refuse for the same reason at the same position.
  if (!learned()) return fail("feedback before a successful Learn()");
  if (point_ids.empty() && examples.empty()) {
    return fail("feedback carries no labels");
  }
  const std::size_t dims = static_cast<std::size_t>(partition_->num_dims());
  DomainKnowledge knowledge;
  knowledge.outlier_examples.reserve(point_ids.size() + examples.size());
  for (std::uint64_t id : point_ids) {
    const std::vector<double>* values = topk_.Values(id);
    if (values == nullptr) {
      return fail("point id " + std::to_string(id) +
                  " is not retained in the top-k window");
    }
    knowledge.outlier_examples.push_back(*values);
  }
  for (const auto& example : examples) {
    if (example.size() != dims) {
      return fail("labeled example has " + std::to_string(example.size()) +
                  " attributes; the stream has " + std::to_string(dims));
    }
    knowledge.outlier_examples.push_back(example);
  }
  if (reservoir_.size() < 8) {
    return fail("reservoir too small to learn from feedback");
  }

  // Same supervised learner as Learn()'s expert-knowledge branch, run
  // against the reservoir's stand-in for recent data.
  SupervisedConfig scfg = config_.supervised;
  scfg.moga.num_dims = partition_->num_dims();
  scfg.moga.max_dimension =
      std::min(scfg.moga.max_dimension, scfg.moga.num_dims);
  for (const auto& ss : LearnOutlierDrivenSubspaces(
           reservoir_.Items(), *partition_, knowledge, scfg,
           rng_.NextUint64())) {
    sst_.AddOutlierDriven(ss.subspace, ss.score);
  }
  SyncTrackedSubspaces();
  ++stats_.feedback_rounds;
  Emit(DetectorEventKind::kFeedbackApplied, knowledge.outlier_examples.size(),
       static_cast<double>(stats_.feedback_rounds));
  return true;
}

void SpotDetector::RunSelfEvolution() {
  if (sst_.clustering().empty() || reservoir_.size() < 8) return;
  ++stats_.evolution_rounds;
  Emit(DetectorEventKind::kEvolutionRound, stats_.evolution_rounds);
  SelfEvolutionConfig ecfg = config_.evolution;
  ecfg.max_dimension = std::min(ecfg.max_dimension, partition_->num_dims());
  EvolveClusteringSubspaces(&sst_, *partition_, reservoir_.Items(), ecfg,
                            rng_);
  SyncTrackedSubspaces();
}

void SpotDetector::RelearnAfterDrift() {
  if (reservoir_.size() < 32) return;
  SPOT_LOG(Info) << "concept drift at tick " << tick_ << "; relearning CS";
  Emit(DetectorEventKind::kDriftRelearn, reservoir_.size());
  sst_.ClearClustering();
  UnsupervisedConfig ucfg = config_.unsupervised;
  ucfg.moga.num_dims = partition_->num_dims();
  ucfg.moga.max_dimension =
      std::min(ucfg.moga.max_dimension, partition_->num_dims());
  // Lighter budget than offline learning: this runs mid-stream.
  ucfg.moga.generations = std::max(5, ucfg.moga.generations / 3);
  for (const auto& ss : LearnClusteringSubspaces(
           reservoir_.Items(), *partition_, ucfg, rng_.NextUint64())) {
    sst_.AddClustering(ss.subspace, ss.score);
  }
  SyncTrackedSubspaces();
}

std::size_t SpotDetector::TrackedSubspaces() const {
  return learned() ? synapses_->NumTracked() : 0;
}

Detection SpotStreamAdapter::ToDetection(const SpotResult& r) {
  Detection d;
  d.is_outlier = r.is_outlier;
  d.score = r.score;
  d.outlying_subspaces.reserve(r.findings.size());
  for (const auto& f : r.findings) d.outlying_subspaces.push_back(f.subspace);
  return d;
}

Detection SpotStreamAdapter::Process(const DataPoint& point) {
  return ToDetection(detector_->Process(point));
}

std::vector<Detection> SpotStreamAdapter::ProcessBatch(
    const std::vector<DataPoint>& points) {
  const std::vector<SpotResult> results = detector_->ProcessBatch(points);
  std::vector<Detection> verdicts;
  verdicts.reserve(results.size());
  for (const SpotResult& r : results) verdicts.push_back(ToDetection(r));
  return verdicts;
}

}  // namespace spot
