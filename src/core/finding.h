#ifndef SPOT_CORE_FINDING_H_
#define SPOT_CORE_FINDING_H_

#include "grid/pcs.h"
#include "subspace/subspace.h"

namespace spot {

/// One subspace in which a point was found outlying, with the PCS evidence.
/// (Lives in its own header so the top-k retention structure can hold
/// findings without pulling in the full detector interface.)
struct SubspaceFinding {
  Subspace subspace;
  Pcs pcs;
};

}  // namespace spot

#endif  // SPOT_CORE_FINDING_H_
