#ifndef SPOT_CORE_DETECTOR_EVENTS_H_
#define SPOT_CORE_DETECTOR_EVENTS_H_

// Structured engine events (DESIGN.md Section 10). The detector, the SST
// and the synapse manager report their *rare* state transitions — subspace
// churn, evolution rounds, drift, reservoir turnover, grid compactions —
// through a pluggable sink so the core stays free of any observability
// dependency. The per-point hot path never emits an event: every emission
// site sits on a path that runs at most once per batch (and usually far
// less often), so an attached sink costs one pointer test there and
// nothing anywhere else. Events are pure reporting — verdicts, stats and
// checkpoint bytes are bit-identical with or without a sink attached.

#include <cstdint>

#include "subspace/subspace.h"

namespace spot {

enum class DetectorEventKind : std::uint8_t {
  /// SynapseManager started tracking `subspace` (tick = grid serial).
  kSubspaceTracked = 0,
  /// SynapseManager dropped `subspace` (tick = revision at removal).
  kSubspaceUntracked = 1,
  /// Sst accepted `subspace` into CS or OS (a = subset, value = score).
  kSstInsert = 2,
  /// Sst::ClearClustering dropped the whole CS (a = subspaces dropped).
  kSstClear = 3,
  /// One CS self-evolution round ran (a = evolution_rounds so far).
  kEvolutionRound = 4,
  /// One outlier-driven OS growth run (a = os_growth_runs so far).
  kOsGrowthRun = 5,
  /// PageHinkley fired (a = drifts_detected so far).
  kDriftDetected = 6,
  /// Post-drift CS relearning ran (a = reservoir points it learned from).
  kDriftRelearn = 7,
  /// The reservoir replaced ~capacity items since the last refresh event
  /// (a = completed turnover count): Vitter's-R churn made visible
  /// without a per-replacement event.
  kReservoirRefresh = 8,
  /// Decayed grids pruned dead cells (a = compaction sweeps since the
  /// last event, value = cells reclaimed by them).
  kGridCompaction = 9,
  /// Service-layer lifecycle (emitted by SpotService, not the core):
  kCheckpointSave = 10,
  kCheckpointLoad = 11,
  kSessionEvict = 12,
  kSessionReload = 13,
  /// One ApplyFeedback round ran (a = labeled examples it learned from,
  /// value = feedback_rounds so far).
  kFeedbackApplied = 14,
};

/// Stable lower-case name used by the journal's JSON rendering.
inline const char* DetectorEventKindName(DetectorEventKind kind) {
  switch (kind) {
    case DetectorEventKind::kSubspaceTracked:
      return "subspace_tracked";
    case DetectorEventKind::kSubspaceUntracked:
      return "subspace_untracked";
    case DetectorEventKind::kSstInsert:
      return "sst_insert";
    case DetectorEventKind::kSstClear:
      return "sst_clear";
    case DetectorEventKind::kEvolutionRound:
      return "evolution_round";
    case DetectorEventKind::kOsGrowthRun:
      return "os_growth_run";
    case DetectorEventKind::kDriftDetected:
      return "drift_detected";
    case DetectorEventKind::kDriftRelearn:
      return "drift_relearn";
    case DetectorEventKind::kReservoirRefresh:
      return "reservoir_refresh";
    case DetectorEventKind::kGridCompaction:
      return "grid_compaction";
    case DetectorEventKind::kCheckpointSave:
      return "checkpoint_save";
    case DetectorEventKind::kCheckpointLoad:
      return "checkpoint_load";
    case DetectorEventKind::kSessionEvict:
      return "session_evict";
    case DetectorEventKind::kSessionReload:
      return "session_reload";
    case DetectorEventKind::kFeedbackApplied:
      return "feedback_applied";
  }
  return "unknown";
}

/// One engine event. `tick` is the detector tick at emission (or the
/// synapse revision for tracking events, which fire from the manager);
/// `subspace` is empty when the event is not subspace-scoped; `a` and
/// `value` carry the kind-specific detail documented on the enum.
struct DetectorEvent {
  DetectorEventKind kind = DetectorEventKind::kSubspaceTracked;
  std::uint64_t tick = 0;
  Subspace subspace;
  std::uint64_t a = 0;
  double value = 0.0;
};

/// Receives events from one detector (or one of its sub-objects). The
/// sink must tolerate being called from whichever thread drives the
/// detector — for the serving tier that is the session's home reactor,
/// so a per-session sink sees a single writer.
class DetectorEventSink {
 public:
  virtual ~DetectorEventSink() = default;
  virtual void OnDetectorEvent(const DetectorEvent& event) = 0;
};

}  // namespace spot

#endif  // SPOT_CORE_DETECTOR_EVENTS_H_
