#ifndef SPOT_CORE_TOPK_OUTLIERS_H_
#define SPOT_CORE_TOPK_OUTLIERS_H_

#include <cstdint>
#include <vector>

#include "core/finding.h"
#include "grid/decay.h"

namespace spot {

class CheckpointReader;
class CheckpointWriter;

/// One retained outlier: the point's identity, arrival tick, raw anomaly
/// score, the raw attribute values (kept server-side so feedback can label
/// a point by id without the client re-sending it) and the outlying
/// subspaces with their PCS evidence at detection time.
struct TopKEntry {
  std::uint64_t point_id = 0;
  std::uint64_t tick = 0;
  /// Raw anomaly score in [0, 1] as assigned at detection time.
  double score = 0.0;
  /// score * alpha^(now - tick): filled by Query() for the query's
  /// reference tick, never stored.
  double decayed_score = 0.0;
  std::vector<double> values;
  std::vector<SubspaceFinding> findings;
};

/// Bounded, decay-aware retention of the worst outliers in the current
/// (omega, epsilon) window (ROADMAP item: streaming top-k outlier queries).
///
/// Entries are kept sorted by *decayed* score under the same exponential
/// (omega, epsilon) model the data synapses use. Exponential decay makes
/// that order time-invariant: for entries a and b evaluated at any tick t,
///
///     score_a * alpha^(t - tick_a)  vs  score_b * alpha^(t - tick_b)
///
/// differ only by the common factor alpha^(t - ref), so the comparison is
/// done once at ref = max(tick_a, tick_b) (keeping both exponents
/// non-negative) and never needs revisiting as time advances. Ties break
/// to the older tick, then the smaller point id — a total order, so the
/// retained set and its order are a pure function of the offered entries.
///
/// Offer() is called only for detected outliers; it lazily expires entries
/// older than omega (when decay is on), inserts in rank order and evicts
/// past capacity. Query() is const — it filters expired entries and stamps
/// decayed scores without mutating state, so *when* a client queries can
/// never perturb subsequent results (the determinism argument of DESIGN.md
/// Section 11 depends on this).
///
/// The structure is part of the detector's checkpointed state: entries
/// round-trip bit-exactly, so top-k answers are identical across a
/// save → load boundary.
class TopKOutliers {
 public:
  /// `capacity` bounds the retained set (0 disables retention entirely);
  /// `model` is the session's (omega, epsilon) decay model — pass
  /// DecayModel::None() to keep entries un-decayed and un-windowed.
  TopKOutliers(std::size_t capacity, const DecayModel& model);

  /// Offers one detected outlier. Values and findings are moved in.
  void Offer(TopKEntry entry);

  /// Up to k entries, best first, as of tick `now_tick`: expired entries
  /// (age > omega under decay) are filtered out and each returned entry's
  /// decayed_score is stamped for `now_tick`. Non-mutating.
  std::vector<TopKEntry> Query(std::size_t k, std::uint64_t now_tick) const;

  /// The retained values of the entry with this point id, or nullptr when
  /// the id is not (or no longer) retained. Feedback-by-id resolves the
  /// labeled point's attribute vector through this.
  const std::vector<double>* Values(std::uint64_t point_id) const;

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  void Clear() { entries_.clear(); }

  /// Checkpointing of the retained entries (capacity and decay model come
  /// from the owner's config and are not serialized). Entries are written
  /// in rank order, so the byte stream is canonical for a given state.
  void SaveState(CheckpointWriter& w) const;
  bool LoadState(CheckpointReader& r);

 private:
  /// True when a outranks b (strictly better decayed score at the shared
  /// reference tick; ties to older tick, then smaller id).
  bool RanksBefore(const TopKEntry& a, const TopKEntry& b) const;
  bool Expired(const TopKEntry& e, std::uint64_t now_tick) const;

  std::size_t capacity_;
  DecayModel model_;
  /// Window expiry only applies under real decay; DecayModel::None()
  /// (alpha = 1) retains entries indefinitely.
  bool windowed_;
  /// Sorted best-first under RanksBefore (time-invariant, see above).
  std::vector<TopKEntry> entries_;
};

}  // namespace spot

#endif  // SPOT_CORE_TOPK_OUTLIERS_H_
