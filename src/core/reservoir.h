#ifndef SPOT_CORE_RESERVOIR_H_
#define SPOT_CORE_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace spot {

class CheckpointReader;
class CheckpointWriter;

/// Uniform reservoir sample (Vitter's algorithm R) of the stream seen so
/// far. The detection stage keeps one as its stand-in for "recent data":
/// self-evolution scoring, OS growth and drift relearning all evaluate
/// against it, because the raw stream cannot be stored.
class ReservoirSample {
 public:
  explicit ReservoirSample(std::size_t capacity, std::uint64_t seed = 99);

  /// Offers one point to the reservoir. Returns true when the point was
  /// stored (always during warm-up, with probability capacity/seen after)
  /// — callers observing reservoir churn branch on this instead of
  /// re-deriving the sampler's decision.
  bool Add(const std::vector<double>& values);

  /// Current sample contents (size <= capacity).
  const std::vector<std::vector<double>>& Items() const { return items_; }

  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t seen() const { return seen_; }

  void Clear();

  /// Checkpointing: items, the seen-counter and the sampler's RNG all
  /// round-trip, so the restored reservoir accepts/evicts exactly as the
  /// uninterrupted one would. The stored capacity must match this
  /// instance's (it comes from the same config the caller restored), and
  /// with `expected_dim` != 0 every restored item must have exactly that
  /// many attributes (the consumers — evolution, OS growth, relearning —
  /// index items by the stream's dimensionality).
  void SaveState(CheckpointWriter& w) const;
  bool LoadState(CheckpointReader& r, std::size_t expected_dim = 0);

 private:
  std::size_t capacity_;
  Rng rng_;
  std::vector<std::vector<double>> items_;
  std::uint64_t seen_ = 0;
};

}  // namespace spot

#endif  // SPOT_CORE_RESERVOIR_H_
