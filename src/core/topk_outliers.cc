#include "core/topk_outliers.h"

#include <algorithm>

#include "core/checkpoint.h"

namespace spot {

TopKOutliers::TopKOutliers(std::size_t capacity, const DecayModel& model)
    : capacity_(capacity), model_(model), windowed_(model.alpha() < 1.0) {}

bool TopKOutliers::RanksBefore(const TopKEntry& a, const TopKEntry& b) const {
  // Evaluate both decayed scores at ref = max tick: one weight is exactly 1
  // and the other alpha^diff <= 1, so the comparison never overflows and —
  // decay being a common positive factor — holds at every later tick too.
  const std::uint64_t ref = a.tick > b.tick ? a.tick : b.tick;
  const double wa = a.score * model_.WeightAtAge(ref - a.tick);
  const double wb = b.score * model_.WeightAtAge(ref - b.tick);
  if (wa != wb) return wa > wb;
  if (a.tick != b.tick) return a.tick < b.tick;
  return a.point_id < b.point_id;
}

bool TopKOutliers::Expired(const TopKEntry& e,
                           std::uint64_t now_tick) const {
  return windowed_ && now_tick - e.tick > model_.omega();
}

void TopKOutliers::Offer(TopKEntry entry) {
  if (capacity_ == 0) return;
  // Lazy expiry against the arriving tick (ticks are non-decreasing).
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const TopKEntry& e) {
                                  return Expired(e, entry.tick);
                                }),
                 entries_.end());
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), entry,
      [this](const TopKEntry& a, const TopKEntry& b) {
        return RanksBefore(a, b);
      });
  if (pos == entries_.end() && entries_.size() >= capacity_) return;
  entries_.insert(pos, std::move(entry));
  if (entries_.size() > capacity_) entries_.pop_back();
}

std::vector<TopKEntry> TopKOutliers::Query(std::size_t k,
                                           std::uint64_t now_tick) const {
  std::vector<TopKEntry> out;
  out.reserve(std::min(k, entries_.size()));
  for (const TopKEntry& e : entries_) {
    if (out.size() >= k) break;
    if (Expired(e, now_tick)) continue;
    TopKEntry copy = e;
    copy.decayed_score =
        copy.score * model_.WeightAtAge(now_tick >= copy.tick
                                            ? now_tick - copy.tick
                                            : 0);
    out.push_back(std::move(copy));
  }
  return out;
}

const std::vector<double>* TopKOutliers::Values(
    std::uint64_t point_id) const {
  for (const TopKEntry& e : entries_) {
    if (e.point_id == point_id) return &e.values;
  }
  return nullptr;
}

void TopKOutliers::SaveState(CheckpointWriter& w) const {
  w.U64(entries_.size());
  for (const TopKEntry& e : entries_) {
    w.U64(e.point_id);
    w.U64(e.tick);
    w.F64(e.score);
    w.U64(e.values.size());
    for (double v : e.values) w.F64(v);
    w.U32(static_cast<std::uint32_t>(e.findings.size()));
    for (const SubspaceFinding& f : e.findings) {
      w.U64(f.subspace.bits());
      w.F64(f.pcs.rd);
      w.F64(f.pcs.irsd);
      w.F64(f.pcs.count);
    }
  }
}

bool TopKOutliers::LoadState(CheckpointReader& r) {
  const std::uint64_t count = r.U64();
  if (count > capacity_) return r.Fail();
  entries_.clear();
  entries_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    TopKEntry e;
    e.point_id = r.U64();
    e.tick = r.U64();
    e.score = r.F64();
    const std::uint64_t dim = r.U64();
    if (dim > (1u << 20)) return r.Fail();  // corrupt length prefix
    e.values.resize(static_cast<std::size_t>(dim));
    for (double& v : e.values) v = r.F64();
    const std::uint32_t nfindings = r.U32();
    if (nfindings > (1u << 20)) return r.Fail();
    e.findings.resize(nfindings);
    for (SubspaceFinding& f : e.findings) {
      f.subspace = Subspace(r.U64());
      f.pcs.rd = r.F64();
      f.pcs.irsd = r.F64();
      f.pcs.count = r.F64();
    }
    entries_.push_back(std::move(e));
  }
  return r.ok();
}

}  // namespace spot
