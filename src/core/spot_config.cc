#include "core/spot_config.h"

namespace spot {

std::string SpotConfig::Validate() const {
  if (omega == 0) return "omega must be positive";
  if (epsilon <= 0.0 || epsilon >= 1.0) return "epsilon must be in (0, 1)";
  if (cells_per_dim < 2) return "cells_per_dim must be at least 2";
  if (fs_max_dimension < 0) return "fs_max_dimension must be non-negative";
  if (rd_threshold < 0.0) return "rd_threshold must be non-negative";
  if (irsd_threshold < 0.0) return "irsd_threshold must be non-negative";
  if (partition_margin < 0.0) return "partition_margin must be non-negative";
  if (prune_threshold < 0.0) return "prune_threshold must be non-negative";
  if (drift_detection && drift_lambda <= 0.0) {
    return "drift_lambda must be positive when drift detection is enabled";
  }
  if (unsupervised.moga.population_size < 2) {
    return "moga population_size must be at least 2";
  }
  if (unsupervised.moga.generations < 1) {
    return "moga generations must be at least 1";
  }
  return "";
}

}  // namespace spot
