#ifndef SPOT_COMMON_TIMER_H_
#define SPOT_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace spot {

/// Microseconds on the process-wide steady clock, anchored at its first
/// use. The shared timebase of every trace span (reactor pipeline stages,
/// engine shard probes), so spans recorded by different threads land on
/// one comparable axis in the flight-recorder dump.
inline std::uint64_t SteadyMicrosSinceStart() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point anchor = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            anchor)
          .count());
}

/// Monotonic wall-clock stopwatch used by the throughput harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace spot

#endif  // SPOT_COMMON_TIMER_H_
