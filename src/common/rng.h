#ifndef SPOT_COMMON_RNG_H_
#define SPOT_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace spot {

class CheckpointReader;
class CheckpointWriter;

/// Deterministic, seedable pseudo-random number generator (xoshiro256++).
///
/// All stochastic components of the library (stream generators, MOGA,
/// clustering orders, reservoir sampling) draw from an explicitly passed Rng
/// so every experiment is reproducible from a single seed. The generator is
/// cheap to copy; distinct components should use `Fork()` to obtain
/// statistically independent sub-streams.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed via SplitMix64 expansion.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so the result is unbiased.
  std::uint64_t NextUint64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal deviate (Box-Muller, cached spare).
  double NextGaussian();

  /// Normal deviate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// True with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Returns an independent generator derived from this one's stream.
  Rng Fork();

  /// Fisher-Yates shuffle of `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextUint64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in uniformly random order.
  std::vector<std::size_t> SampleIndices(std::size_t n, std::size_t k);

  /// Checkpointing: the full generator state (xoshiro words + the cached
  /// Box-Muller spare) round-trips, so a restored stream continues with
  /// exactly the draws the uninterrupted one would have made.
  void SaveState(CheckpointWriter& w) const;
  bool LoadState(CheckpointReader& r);

 private:
  std::uint64_t s_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace spot

#endif  // SPOT_COMMON_RNG_H_
