#include "common/rng.h"

#include <cmath>

#include "core/checkpoint.h"

namespace spot {

namespace {

constexpr double kPi = 3.14159265358979323846;

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextUint64(std::uint64_t bound) {
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::NextInt(int lo, int hi) {
  return lo + static_cast<int>(
                  NextUint64(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * kPi * u2;
  spare_gaussian_ = r * std::sin(theta);
  has_spare_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

void Rng::SaveState(CheckpointWriter& w) const {
  for (std::uint64_t s : s_) w.U64(s);
  w.Bool(has_spare_gaussian_);
  w.F64(spare_gaussian_);
}

bool Rng::LoadState(CheckpointReader& r) {
  for (auto& s : s_) s = r.U64();
  has_spare_gaussian_ = r.Bool();
  spare_gaussian_ = r.F64();
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) return r.Fail();
  return r.ok();
}

std::vector<std::size_t> Rng::SampleIndices(std::size_t n, std::size_t k) {
  if (k > n) k = n;
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: the first k slots become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(NextUint64(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace spot
