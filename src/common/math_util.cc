#include "common/math_util.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace spot {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double s = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double SquaredDistanceInDims(const std::vector<double>& a,
                             const std::vector<double>& b,
                             const std::vector<int>& dims) {
  double s = 0.0;
  for (int dim : dims) {
    const double d = a[static_cast<std::size_t>(dim)] -
                     b[static_cast<std::size_t>(dim)];
    s += d * d;
  }
  return s;
}

std::uint64_t BinomialCoefficient(int n, int k) {
  if (k < 0 || k > n) return 0;
  if (k > n - k) k = n - k;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    const std::uint64_t numerator = static_cast<std::uint64_t>(n - k + i);
    if (result > kMax / numerator) return kMax;
    result = result * numerator / static_cast<std::uint64_t>(i);
  }
  return result;
}

std::uint64_t LatticeSize(int n, int max_dim) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t total = 0;
  for (int k = 1; k <= std::min(n, max_dim); ++k) {
    const std::uint64_t c = BinomialCoefficient(n, k);
    if (total > kMax - c) return kMax;
    total += c;
  }
  return total;
}

double Clamp(double x, double lo, double hi) {
  return std::max(lo, std::min(hi, x));
}

bool ApproxEqual(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace spot
