#ifndef SPOT_COMMON_LOG_H_
#define SPOT_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace spot {

/// Log severity, in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity that is actually emitted.
/// Defaults to kWarning so library internals stay quiet in benchmarks.
void SetLogLevel(LogLevel level);

/// Current global minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits to stderr on destruction when enabled.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace spot

#define SPOT_LOG(severity)                                              \
  ::spot::internal::LogMessage(::spot::LogLevel::k##severity, __FILE__, \
                               __LINE__)

#endif  // SPOT_COMMON_LOG_H_
