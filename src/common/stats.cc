#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace spot {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  RunningStats rs;
  for (double x : v) rs.Add(x);
  return rs.stddev();
}

namespace {

/// Interpolated quantile of an already-sorted non-empty vector.
double SortedQuantile(const std::vector<double>& v, double q) {
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return SortedQuantile(v, q);
}

std::vector<double> Quantiles(std::vector<double> v,
                              const std::vector<double>& qs) {
  std::vector<double> out(qs.size(), 0.0);
  if (v.empty()) return out;
  std::sort(v.begin(), v.end());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    out[i] = SortedQuantile(v, qs[i]);
  }
  return out;
}

double Median(std::vector<double> v) { return Quantile(std::move(v), 0.5); }

}  // namespace spot
