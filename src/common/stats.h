#ifndef SPOT_COMMON_STATS_H_
#define SPOT_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace spot {

/// Numerically stable running mean/variance accumulator (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (Chan's parallel update).
  void Merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Population variance (divides by n). Zero for fewer than 2 samples.
  double variance() const;

  /// Sample variance (divides by n-1). Zero for fewer than 2 samples.
  double sample_variance() const;

  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of `v`; 0 for an empty vector.
double Mean(const std::vector<double>& v);

/// Population standard deviation of `v`; 0 for fewer than 2 elements.
double StdDev(const std::vector<double>& v);

/// Linear-interpolation quantile, q in [0,1]. `v` need not be sorted.
/// Returns 0 for an empty vector.
double Quantile(std::vector<double> v, double q);

/// Several quantiles from one sorting pass — answers element-for-element
/// what Quantile(v, qs[i]) would, without re-copying and re-sorting the
/// sample set per q. Returns all zeros for an empty vector.
std::vector<double> Quantiles(std::vector<double> v,
                              const std::vector<double>& qs);

/// Median convenience wrapper over Quantile(v, 0.5).
double Median(std::vector<double> v);

}  // namespace spot

#endif  // SPOT_COMMON_STATS_H_
