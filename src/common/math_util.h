#ifndef SPOT_COMMON_MATH_UTIL_H_
#define SPOT_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spot {

/// Squared Euclidean distance between equal-length vectors.
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Euclidean distance between equal-length vectors.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Squared Euclidean distance restricted to the dimensions listed in `dims`.
double SquaredDistanceInDims(const std::vector<double>& a,
                             const std::vector<double>& b,
                             const std::vector<int>& dims);

/// Binomial coefficient C(n, k) computed with overflow saturation
/// (returns UINT64_MAX on overflow). Used for lattice sizing.
std::uint64_t BinomialCoefficient(int n, int k);

/// Number of subspaces of dimension 1..max_dim over `n` attributes,
/// saturating at UINT64_MAX.
std::uint64_t LatticeSize(int n, int max_dim);

/// x clamped to [lo, hi].
double Clamp(double x, double lo, double hi);

/// True when |a - b| <= tol, with tol scaled by magnitude for large values.
bool ApproxEqual(double a, double b, double tol = 1e-9);

}  // namespace spot

#endif  // SPOT_COMMON_MATH_UTIL_H_
