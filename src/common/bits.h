#ifndef SPOT_COMMON_BITS_H_
#define SPOT_COMMON_BITS_H_

// C++17-portable bit operations (std::popcount / std::countr_zero are
// C++20). GCC and Clang lower the builtins to single instructions; the
// fallbacks keep other toolchains working.

#include <cstdint>

namespace spot {

inline int PopCount64(std::uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_popcountll(v);
#else
  int n = 0;
  while (v != 0) {
    v &= v - 1;
    ++n;
  }
  return n;
#endif
}

/// Index of the lowest set bit; undefined for v == 0 (callers must check).
inline int CountTrailingZeros64(std::uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_ctzll(v);
#else
  int n = 0;
  while ((v & 1ULL) == 0ULL) {
    v >>= 1;
    ++n;
  }
  return n;
#endif
}

}  // namespace spot

#endif  // SPOT_COMMON_BITS_H_
