#ifndef SPOT_MOGA_NSGA2_H_
#define SPOT_MOGA_NSGA2_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "moga/objectives.h"
#include "subspace/subspace.h"

namespace spot {

/// One member of the NSGA-II population.
struct Individual {
  Subspace subspace;
  ObjectiveVector objectives;
  int rank = 0;              // non-domination rank (0 = Pareto front)
  double crowding = 0.0;     // crowding distance within its front
};

/// NSGA-II knobs.
struct Nsga2Config {
  int num_dims = 20;           // attribute count of the data
  int max_dimension = 4;       // dimensionality cap of candidate subspaces
  int population_size = 48;
  int generations = 30;
  double crossover_prob = 0.9;
  double mutation_prob = 0.0;  // 0 = auto (1 / num_dims per bit)
  std::uint64_t seed = 1;
};

/// Partitions `objs` into non-dominated fronts; returns per-front index
/// lists (front 0 first) and writes each element's rank into `ranks`.
std::vector<std::vector<std::size_t>> FastNonDominatedSort(
    const std::vector<ObjectiveVector>& objs, std::vector<int>* ranks);

/// Crowding distance of every member of `front` (indices into `objs`).
/// Boundary members get +infinity.
std::vector<double> CrowdingDistances(const std::vector<ObjectiveVector>& objs,
                                      const std::vector<std::size_t>& front);

/// The Multi-Objective Genetic Algorithm at SPOT's core: elitist NSGA-II
/// over the subspace lattice, minimizing the criteria supplied by a
/// SubspaceObjectives implementation.
class Nsga2 {
 public:
  /// `objectives` must outlive Run().
  Nsga2(const Nsga2Config& config, SubspaceObjectives* objectives);

  /// Evolves the population from a random initialization (optionally seeded
  /// with `seeds` — e.g. the current CS during self-evolution) and returns
  /// the final population, ranks and crowding assigned.
  std::vector<Individual> Run(const std::vector<Subspace>& seeds = {});

  /// The non-dominated (rank 0) members of `population`, deduplicated.
  static std::vector<Individual> ParetoFront(
      const std::vector<Individual>& population);

 private:
  std::vector<Individual> MakeOffspring(
      const std::vector<Individual>& parents);
  const Individual& Tournament(const std::vector<Individual>& pop);
  void Assign(std::vector<Individual>* pop);

  Nsga2Config config_;
  SubspaceObjectives* objectives_;
  Rng rng_;
};

}  // namespace spot

#endif  // SPOT_MOGA_NSGA2_H_
