#ifndef SPOT_MOGA_OBJECTIVES_H_
#define SPOT_MOGA_OBJECTIVES_H_

#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "grid/partition.h"
#include "subspace/subspace.h"

namespace spot {

/// A vector of objective values, all to be *minimized*.
struct ObjectiveVector {
  std::vector<double> values;
};

/// Pareto dominance: `a` dominates `b` iff a is no worse in every objective
/// and strictly better in at least one (minimization).
bool Dominates(const ObjectiveVector& a, const ObjectiveVector& b);

/// Interface the genetic search optimizes against. SPOT uses "multiple
/// measurements" of outlier-ness (paper, Section III): implementations
/// return one value per criterion.
class SubspaceObjectives {
 public:
  virtual ~SubspaceObjectives() = default;

  /// Objective values of candidate subspace `s` (lower = sparser = better).
  virtual ObjectiveVector Evaluate(const Subspace& s) = 0;

  virtual int num_objectives() const = 0;

  /// Scalarized sparsity score used for ranking SST members
  /// (RD-mean + IRSD-mean; dimension excluded). Lower is sparser.
  virtual double SparsityScore(const Subspace& s) = 0;

  /// Appends every subspace this object has evaluated so far, with its
  /// sparsity score — the search archive. Implementations without a memo
  /// table may leave this empty; MogaSearch then ranks only the final
  /// population.
  virtual void AppendEvaluated(std::vector<std::pair<Subspace, double>>* out) {
    (void)out;
  }
};

/// Sparsity objectives of a candidate subspace measured over a static batch
/// of points (the learning stage's training data, or the detection stage's
/// reservoir sample during self-evolution).
///
/// Objectives, all minimized:
///   f1 = mean over target points of RD of the point's projected cell
///   f2 = mean over target points of IRSD of the point's projected cell
///   f3 = |s| (prefer low-dimensional, interpretable outlying subspaces)
///
/// RD / IRSD use the same definitions as the online PCS (DESIGN.md 3.3),
/// computed over an un-decayed histogram of the batch. Evaluations are
/// memoized: MOGA revisits subspaces freely at no extra cost.
class BatchSparsityObjectives : public SubspaceObjectives {
 public:
  /// `partition` and `data` must outlive this object. `targets` restricts
  /// the points whose sparsity is averaged (empty = all points); the
  /// histogram is always built from the whole batch.
  BatchSparsityObjectives(const Partition* partition,
                          const std::vector<std::vector<double>>* data,
                          std::vector<std::size_t> targets = {});

  ObjectiveVector Evaluate(const Subspace& s) override;
  int num_objectives() const override { return 3; }
  double SparsityScore(const Subspace& s) override;
  void AppendEvaluated(
      std::vector<std::pair<Subspace, double>>* out) override;

  /// Number of distinct subspaces evaluated so far (memoization hits do not
  /// count). Reported by the MOGA-vs-exhaustive experiment.
  std::size_t evaluation_count() const { return eval_count_; }

 private:
  const ObjectiveVector& EvaluateCached(const Subspace& s);

  const Partition* partition_;
  const std::vector<std::vector<double>>* data_;
  std::vector<std::size_t> targets_;
  std::unordered_map<Subspace, ObjectiveVector, SubspaceHash> cache_;
  std::size_t eval_count_ = 0;
};

}  // namespace spot

#endif  // SPOT_MOGA_OBJECTIVES_H_
