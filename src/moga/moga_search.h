#ifndef SPOT_MOGA_MOGA_SEARCH_H_
#define SPOT_MOGA_MOGA_SEARCH_H_

#include <cstddef>
#include <vector>

#include "moga/nsga2.h"
#include "moga/objectives.h"
#include "subspace/subspace_set.h"

namespace spot {

/// High-level facade over NSGA-II: "find the top sparse subspaces of these
/// points" — the operation the learning stage runs on training data, on
/// each top outlying training point, on expert outlier examples, and on
/// every freshly detected outlier (OS growth).
class MogaSearch {
 public:
  MogaSearch(const Nsga2Config& config, SubspaceObjectives* objectives);

  /// Runs the evolution (optionally seeded) and returns the `k` sparsest
  /// distinct subspaces discovered, best (lowest SparsityScore) first.
  /// Every subspace that ever entered a population is considered, not just
  /// the final Pareto front, so good early discoveries are never lost.
  std::vector<ScoredSubspace> FindTopSparse(
      std::size_t k, const std::vector<Subspace>& seeds = {});

 private:
  Nsga2Config config_;
  SubspaceObjectives* objectives_;
};

/// Exhaustive reference search: scores every subspace of dimension
/// 1..max_dim and returns the `k` sparsest. Tractable only for small
/// attribute counts; used by tests and the MOGA-quality experiment (E7).
std::vector<ScoredSubspace> ExhaustiveTopSparse(SubspaceObjectives* objectives,
                                                int num_dims, int max_dim,
                                                std::size_t k);

}  // namespace spot

#endif  // SPOT_MOGA_MOGA_SEARCH_H_
