#ifndef SPOT_MOGA_OPERATORS_H_
#define SPOT_MOGA_OPERATORS_H_

#include "common/rng.h"
#include "subspace/subspace.h"

namespace spot {

/// Genetic operators over subspace bitmasks. All results are repaired to be
/// non-empty and within [1, max_dim] retained attributes drawn from the
/// first `num_dims` positions.

/// Uniform crossover: each attribute bit is taken from either parent with
/// equal probability.
Subspace UniformCrossover(const Subspace& a, const Subspace& b, Rng& rng);

/// One-point crossover on the attribute axis: bits below the cut come from
/// `a`, the rest from `b`.
Subspace OnePointCrossover(const Subspace& a, const Subspace& b, int num_dims,
                           Rng& rng);

/// Flips each of the `num_dims` bits independently with probability
/// `flip_prob`.
Subspace BitFlipMutation(const Subspace& s, int num_dims, double flip_prob,
                         Rng& rng);

/// Enforces 1 <= Dimension(s) <= max_dim by removing random retained bits
/// (when too large) or adding random absent bits (when empty).
Subspace Repair(Subspace s, int num_dims, int max_dim, Rng& rng);

/// Uniformly random subspace with dimension in [1, max_dim].
Subspace RandomSubspace(int num_dims, int max_dim, Rng& rng);

}  // namespace spot

#endif  // SPOT_MOGA_OPERATORS_H_
