#include "moga/moga_search.h"

#include <algorithm>

#include "subspace/lattice.h"

namespace spot {

MogaSearch::MogaSearch(const Nsga2Config& config,
                       SubspaceObjectives* objectives)
    : config_(config), objectives_(objectives) {}

std::vector<ScoredSubspace> MogaSearch::FindTopSparse(
    std::size_t k, const std::vector<Subspace>& seeds) {
  Nsga2 nsga2(config_, objectives_);
  const std::vector<Individual> final_pop = nsga2.Run(seeds);

  // Rank the union of everything the search ever evaluated (the memo table
  // is the search archive — a converged final population may hold only a
  // handful of distinct subspaces), plus the final population and seeds for
  // objectives implementations without an archive.
  RankedSubspaceSet ranked(0);
  std::vector<std::pair<Subspace, double>> archive;
  objectives_->AppendEvaluated(&archive);
  for (const auto& [subspace, score] : archive) {
    ranked.Insert(subspace, score);
  }
  for (const auto& ind : final_pop) {
    ranked.Insert(ind.subspace, objectives_->SparsityScore(ind.subspace));
  }
  for (const auto& s : seeds) {
    if (!s.IsEmpty()) ranked.Insert(s, objectives_->SparsityScore(s));
  }

  std::vector<ScoredSubspace> all = ranked.Ranked();
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<ScoredSubspace> ExhaustiveTopSparse(SubspaceObjectives* objectives,
                                                int num_dims, int max_dim,
                                                std::size_t k) {
  std::vector<ScoredSubspace> scored;
  for (const Subspace& s : EnumerateLattice(num_dims, max_dim)) {
    scored.push_back({s, objectives->SparsityScore(s)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredSubspace& a, const ScoredSubspace& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.subspace < b.subspace;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

}  // namespace spot
