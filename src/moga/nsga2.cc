#include "moga/nsga2.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "moga/operators.h"

namespace spot {

std::vector<std::vector<std::size_t>> FastNonDominatedSort(
    const std::vector<ObjectiveVector>& objs, std::vector<int>* ranks) {
  const std::size_t n = objs.size();
  std::vector<std::vector<std::size_t>> dominated(n);
  std::vector<int> domination_count(n, 0);
  std::vector<std::vector<std::size_t>> fronts;
  fronts.emplace_back();

  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      if (Dominates(objs[p], objs[q])) {
        dominated[p].push_back(q);
      } else if (Dominates(objs[q], objs[p])) {
        ++domination_count[p];
      }
    }
    if (domination_count[p] == 0) fronts[0].push_back(p);
  }

  std::size_t i = 0;
  while (i < fronts.size() && !fronts[i].empty()) {
    std::vector<std::size_t> next;
    for (std::size_t p : fronts[i]) {
      for (std::size_t q : dominated[p]) {
        if (--domination_count[q] == 0) next.push_back(q);
      }
    }
    if (!next.empty()) fronts.push_back(std::move(next));
    ++i;
  }

  if (ranks != nullptr) {
    ranks->assign(n, 0);
    for (std::size_t f = 0; f < fronts.size(); ++f) {
      for (std::size_t p : fronts[f]) (*ranks)[p] = static_cast<int>(f);
    }
  }
  return fronts;
}

std::vector<double> CrowdingDistances(const std::vector<ObjectiveVector>& objs,
                                      const std::vector<std::size_t>& front) {
  const std::size_t n = front.size();
  std::vector<double> distance(n, 0.0);
  if (n == 0) return distance;
  if (n <= 2) {
    std::fill(distance.begin(), distance.end(),
              std::numeric_limits<double>::infinity());
    return distance;
  }
  const std::size_t m = objs[front[0]].values.size();
  std::vector<std::size_t> order(n);
  for (std::size_t obj = 0; obj < m; ++obj) {
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return objs[front[a]].values[obj] < objs[front[b]].values[obj];
    });
    const double lo = objs[front[order.front()]].values[obj];
    const double hi = objs[front[order.back()]].values[obj];
    distance[order.front()] = std::numeric_limits<double>::infinity();
    distance[order.back()] = std::numeric_limits<double>::infinity();
    const double range = hi - lo;
    if (range <= 0.0) continue;
    for (std::size_t i = 1; i + 1 < n; ++i) {
      const double prev = objs[front[order[i - 1]]].values[obj];
      const double next = objs[front[order[i + 1]]].values[obj];
      distance[order[i]] += (next - prev) / range;
    }
  }
  return distance;
}

Nsga2::Nsga2(const Nsga2Config& config, SubspaceObjectives* objectives)
    : config_(config), objectives_(objectives), rng_(config.seed) {
  if (config_.mutation_prob <= 0.0) {
    config_.mutation_prob = 1.0 / std::max(1, config_.num_dims);
  }
}

void Nsga2::Assign(std::vector<Individual>* pop) {
  std::vector<ObjectiveVector> objs;
  objs.reserve(pop->size());
  for (const auto& ind : *pop) objs.push_back(ind.objectives);
  std::vector<int> ranks;
  const auto fronts = FastNonDominatedSort(objs, &ranks);
  for (std::size_t i = 0; i < pop->size(); ++i) (*pop)[i].rank = ranks[i];
  for (const auto& front : fronts) {
    const std::vector<double> crowd = CrowdingDistances(objs, front);
    for (std::size_t i = 0; i < front.size(); ++i) {
      (*pop)[front[i]].crowding = crowd[i];
    }
  }
}

const Individual& Nsga2::Tournament(const std::vector<Individual>& pop) {
  const Individual& a =
      pop[static_cast<std::size_t>(rng_.NextUint64(pop.size()))];
  const Individual& b =
      pop[static_cast<std::size_t>(rng_.NextUint64(pop.size()))];
  if (a.rank != b.rank) return a.rank < b.rank ? a : b;
  return a.crowding > b.crowding ? a : b;
}

std::vector<Individual> Nsga2::MakeOffspring(
    const std::vector<Individual>& parents) {
  std::vector<Individual> offspring;
  offspring.reserve(parents.size());
  while (offspring.size() < parents.size()) {
    const Individual& p1 = Tournament(parents);
    const Individual& p2 = Tournament(parents);
    Subspace child = rng_.NextBernoulli(config_.crossover_prob)
                         ? UniformCrossover(p1.subspace, p2.subspace, rng_)
                         : p1.subspace;
    child = BitFlipMutation(child, config_.num_dims, config_.mutation_prob,
                            rng_);
    child = Repair(child, config_.num_dims, config_.max_dimension, rng_);
    Individual ind;
    ind.subspace = child;
    ind.objectives = objectives_->Evaluate(child);
    offspring.push_back(std::move(ind));
  }
  return offspring;
}

std::vector<Individual> Nsga2::Run(const std::vector<Subspace>& seeds) {
  std::vector<Individual> pop;
  pop.reserve(static_cast<std::size_t>(config_.population_size));
  for (const Subspace& s : seeds) {
    if (static_cast<int>(pop.size()) >= config_.population_size) break;
    Individual ind;
    ind.subspace = Repair(s, config_.num_dims, config_.max_dimension, rng_);
    ind.objectives = objectives_->Evaluate(ind.subspace);
    pop.push_back(std::move(ind));
  }
  while (static_cast<int>(pop.size()) < config_.population_size) {
    Individual ind;
    ind.subspace = RandomSubspace(config_.num_dims, config_.max_dimension,
                                  rng_);
    ind.objectives = objectives_->Evaluate(ind.subspace);
    pop.push_back(std::move(ind));
  }
  Assign(&pop);

  for (int gen = 0; gen < config_.generations; ++gen) {
    std::vector<Individual> combined = pop;
    std::vector<Individual> offspring = MakeOffspring(pop);
    combined.insert(combined.end(),
                    std::make_move_iterator(offspring.begin()),
                    std::make_move_iterator(offspring.end()));
    Assign(&combined);

    // (mu + lambda) elitist survival: best fronts first, crowding breaks
    // ties within the last admitted front.
    std::sort(combined.begin(), combined.end(),
              [](const Individual& a, const Individual& b) {
                if (a.rank != b.rank) return a.rank < b.rank;
                return a.crowding > b.crowding;
              });
    combined.resize(static_cast<std::size_t>(config_.population_size));
    pop = std::move(combined);
    Assign(&pop);
  }
  return pop;
}

std::vector<Individual> Nsga2::ParetoFront(
    const std::vector<Individual>& population) {
  std::vector<Individual> front;
  std::unordered_set<Subspace, SubspaceHash> seen;
  for (const auto& ind : population) {
    if (ind.rank == 0 && seen.insert(ind.subspace).second) {
      front.push_back(ind);
    }
  }
  return front;
}

}  // namespace spot
