#include "moga/objectives.h"

#include <cmath>

#include "grid/pcs.h"

namespace spot {

bool Dominates(const ObjectiveVector& a, const ObjectiveVector& b) {
  bool strictly_better = false;
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    if (a.values[i] > b.values[i]) return false;
    if (a.values[i] < b.values[i]) strictly_better = true;
  }
  return strictly_better;
}

BatchSparsityObjectives::BatchSparsityObjectives(
    const Partition* partition, const std::vector<std::vector<double>>* data,
    std::vector<std::size_t> targets)
    : partition_(partition), data_(data), targets_(std::move(targets)) {
  if (targets_.empty()) {
    targets_.resize(data_->size());
    for (std::size_t i = 0; i < targets_.size(); ++i) targets_[i] = i;
  }
}

const ObjectiveVector& BatchSparsityObjectives::EvaluateCached(
    const Subspace& s) {
  auto it = cache_.find(s);
  if (it != cache_.end()) return it->second;
  ++eval_count_;

  const std::vector<int> dims = s.Indices();
  struct CellAgg {
    double count = 0.0;
    std::vector<double> ls;
    std::vector<double> ss;
  };
  std::unordered_map<CellCoords, CellAgg, CellCoordsHash> hist;

  // Pass 1: histogram of the whole batch in subspace s.
  std::vector<CellCoords> point_cells;
  point_cells.reserve(data_->size());
  for (const auto& row : *data_) {
    CellCoords coords;
    coords.reserve(dims.size());
    for (int d : dims) {
      coords.push_back(
          partition_->IntervalIndex(d, row[static_cast<std::size_t>(d)]));
    }
    auto [cit, inserted] = hist.try_emplace(coords);
    CellAgg& cell = cit->second;
    if (inserted) {
      cell.ls.assign(dims.size(), 0.0);
      cell.ss.assign(dims.size(), 0.0);
    }
    cell.count += 1.0;
    for (std::size_t i = 0; i < dims.size(); ++i) {
      const double v = row[static_cast<std::size_t>(dims[i])];
      cell.ls[i] += v;
      cell.ss[i] += v * v;
    }
    point_cells.push_back(std::move(coords));
  }

  // Pass 2: average RD / IRSD over the target points' cells. RD uses the
  // same count-weighted-average reference as the online PCS:
  // RD = count * N / sum(count_i^2).
  const double total = static_cast<double>(data_->size());
  double sumsq = 0.0;
  for (const auto& [coords, cell] : hist) sumsq += cell.count * cell.count;
  if (sumsq <= 0.0) sumsq = 1.0;
  double rd_sum = 0.0;
  double irsd_sum = 0.0;
  for (std::size_t t : targets_) {
    const CellAgg& cell = hist.at(point_cells[t]);
    rd_sum += cell.count * total / sumsq;
    if (cell.count >= 2.0) {
      double acc = 0.0;
      for (std::size_t i = 0; i < dims.size(); ++i) {
        const double mean = cell.ls[i] / cell.count;
        const double var = cell.ss[i] / cell.count - mean * mean;
        const double sigma = var > 0.0 ? std::sqrt(var) : 0.0;
        const double su =
            partition_->CellWidth(dims[i]) / std::sqrt(12.0);
        const double ratio = su / (sigma + 0.01 * su);
        acc += ratio > Pcs::kIrsdCap ? Pcs::kIrsdCap : ratio;
      }
      irsd_sum += acc / static_cast<double>(dims.size());
    }
    // count < 2: IRSD contribution is 0 (maximally sparse).
  }
  const double n_targets = static_cast<double>(targets_.size());

  ObjectiveVector obj;
  obj.values = {rd_sum / n_targets, irsd_sum / n_targets,
                static_cast<double>(s.Dimension())};
  auto [rit, ok] = cache_.emplace(s, std::move(obj));
  return rit->second;
}

ObjectiveVector BatchSparsityObjectives::Evaluate(const Subspace& s) {
  return EvaluateCached(s);
}

double BatchSparsityObjectives::SparsityScore(const Subspace& s) {
  const ObjectiveVector& obj = EvaluateCached(s);
  return obj.values[0] + obj.values[1];
}

void BatchSparsityObjectives::AppendEvaluated(
    std::vector<std::pair<Subspace, double>>* out) {
  out->reserve(out->size() + cache_.size());
  for (const auto& [subspace, obj] : cache_) {
    out->emplace_back(subspace, obj.values[0] + obj.values[1]);
  }
}

}  // namespace spot
