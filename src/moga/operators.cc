#include "moga/operators.h"

#include <algorithm>

namespace spot {

Subspace UniformCrossover(const Subspace& a, const Subspace& b, Rng& rng) {
  const std::uint64_t mask = rng.NextUint64();
  return Subspace((a.bits() & mask) | (b.bits() & ~mask));
}

Subspace OnePointCrossover(const Subspace& a, const Subspace& b, int num_dims,
                           Rng& rng) {
  const int cut = rng.NextInt(1, std::max(1, num_dims - 1));
  const std::uint64_t low_mask = (1ULL << static_cast<unsigned>(cut)) - 1ULL;
  return Subspace((a.bits() & low_mask) | (b.bits() & ~low_mask));
}

Subspace BitFlipMutation(const Subspace& s, int num_dims, double flip_prob,
                         Rng& rng) {
  std::uint64_t bits = s.bits();
  for (int d = 0; d < num_dims; ++d) {
    if (rng.NextBernoulli(flip_prob)) {
      bits ^= (1ULL << static_cast<unsigned>(d));
    }
  }
  return Subspace(bits);
}

Subspace Repair(Subspace s, int num_dims, int max_dim, Rng& rng) {
  // Clip to the attribute domain.
  const std::uint64_t domain =
      num_dims >= 64 ? ~0ULL : (1ULL << static_cast<unsigned>(num_dims)) - 1ULL;
  s = Subspace(s.bits() & domain);

  while (s.Dimension() > max_dim) {
    const std::vector<int> idx = s.Indices();
    s.Remove(idx[static_cast<std::size_t>(rng.NextUint64(idx.size()))]);
  }
  if (s.IsEmpty()) {
    s.Add(rng.NextInt(0, num_dims - 1));
  }
  return s;
}

Subspace RandomSubspace(int num_dims, int max_dim, Rng& rng) {
  const int dim = rng.NextInt(1, std::max(1, std::min(max_dim, num_dims)));
  Subspace s;
  std::vector<std::size_t> picked = rng.SampleIndices(
      static_cast<std::size_t>(num_dims), static_cast<std::size_t>(dim));
  for (std::size_t i : picked) s.Add(static_cast<int>(i));
  return s;
}

}  // namespace spot
