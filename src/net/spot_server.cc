#include "net/spot_server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <fcntl.h>

#include <iterator>
#include <utility>

#include "common/log.h"
#include "obs/exposition.h"

namespace spot {
namespace net {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::atomic<SpotServer*> g_signal_server{nullptr};
std::atomic<bool> g_trace_requested{false};

void StopOnSignal(int /*signo*/) {
  SpotServer* server = g_signal_server.load(std::memory_order_relaxed);
  if (server != nullptr) server->Stop();  // a single atomic store
}

void TraceOnSignal(int /*signo*/) {
  // Only latch a flag (async-signal-safe); the binary's watcher thread
  // renders and writes the dump outside signal context.
  g_trace_requested.store(true, std::memory_order_relaxed);
}

/// Subspace mask as a Prometheus label value ("0x5" = dims {0,2}).
std::string SubspaceLabel(std::uint64_t bits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

}  // namespace

SpotServer::SpotServer(SpotServiceConfig service_config,
                       SpotServerConfig config)
    : config_(std::move(config)) {
  if (config_.batch_points == 0) config_.batch_points = 1;
  if (config_.num_reactors == 0) config_.num_reactors = 1;
  // One profiling switch for both tiers: the reactors read it from
  // config_, the engine tier through each shard's service config.
  if (config_.profile_counters) service_config.collect_perf_counters = true;
  services_.reserve(config_.num_reactors);
  std::vector<SpotService*> raw;
  for (std::size_t i = 0; i < config_.num_reactors; ++i) {
    services_.push_back(std::make_unique<SpotService>(service_config));
    raw.push_back(services_.back().get());
  }
  // Hand-off between shards rides the shared checkpoint directory;
  // without one, a cross-reactor resume is refused instead.
  registry_ = std::make_unique<SessionRegistry>(
      std::move(raw), /*allow_handoff=*/!service_config.checkpoint_dir.empty());
  hub_ = obs::MetricsHub(config_.num_reactors);
  if (config_.trace_capacity > 0) {
    traces_.reserve(config_.num_reactors);
    for (std::size_t i = 0; i < config_.num_reactors; ++i) {
      traces_.push_back(std::make_unique<obs::TraceRecorder>(
          config_.trace_capacity, static_cast<std::uint32_t>(i)));
    }
  }
  reactors_.reserve(config_.num_reactors);
  for (std::size_t i = 0; i < config_.num_reactors; ++i) {
    reactors_.push_back(std::make_unique<Reactor>(
        static_cast<int>(i), config_, services_[i].get(), registry_.get(),
        &stop_));
    reactors_.back()->SetObservability(&hub_,
                                       [this] { return StatsSnapshot(); });
    if (!traces_.empty()) {
      reactors_.back()->SetTracing(traces_[i].get(),
                                   [this] { return TraceJson(); });
    }
  }
}

SpotServer::~SpotServer() {
  Stop();
  Shutdown();
  if (g_signal_server.load(std::memory_order_relaxed) == this) {
    g_signal_server.store(nullptr, std::memory_order_relaxed);
  }
}

void SpotServer::InstallSignalHandlers(SpotServer* server) {
  g_signal_server.store(server, std::memory_order_relaxed);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = StopOnSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = TraceOnSignal;
  ::sigaction(SIGUSR2, &sa, nullptr);
  // Writes to a peer-closed socket must surface as EPIPE, not kill the
  // process (the loop also passes MSG_NOSIGNAL, this covers stray paths).
  ::signal(SIGPIPE, SIG_IGN);
}

bool SpotServer::TraceRequested() {
  return g_trace_requested.exchange(false, std::memory_order_relaxed);
}

int SpotServer::MakeListener(bool reuseport, std::uint16_t* port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    SPOT_LOG(Error) << "socket(): " << std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport) {
#ifdef SO_REUSEPORT
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      ::close(fd);
      return -1;
    }
#else
    ::close(fd);
    return -1;
#endif
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(*port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    SPOT_LOG(Error) << "bad bind address '" << config_.bind_address << "'";
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, config_.backlog) != 0 || !SetNonBlocking(fd)) {
    SPOT_LOG(Error) << "bind/listen on " << config_.bind_address << ":"
                    << *port << ": " << std::strerror(errno);
    ::close(fd);
    return -1;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *port = ntohs(bound.sin_port);
  }
  return fd;
}

bool SpotServer::Start() {
  for (auto& reactor : reactors_) {
    if (!reactor->Init()) return false;
  }

  const std::size_t n = reactors_.size();
  if (n > 1 && config_.use_reuseport) {
    // One SO_REUSEPORT listener per reactor on the shared port. The flag
    // must be set before bind, so an ephemeral-port request is resolved
    // by the first listener and the rest bind the resolved port.
    std::vector<int> fds;
    std::uint16_t port = config_.port;
    for (std::size_t i = 0; i < n; ++i) {
      const int fd = MakeListener(/*reuseport=*/true, &port);
      if (fd < 0) break;
      fds.push_back(fd);
    }
    if (fds.size() == n) {
      for (std::size_t i = 0; i < n; ++i) {
        reactors_[i]->AdoptListener(fds[i], /*acceptor=*/false, {});
      }
      port_ = port;
      reuseport_active_ = true;
    } else {
      for (int fd : fds) ::close(fd);
      SPOT_LOG(Info) << "SO_REUSEPORT unavailable; falling back to "
                        "accept-and-hand-off on reactor 0";
    }
  }

  if (!reuseport_active_) {
    // Single listener on reactor 0. With more reactors it accepts on
    // behalf of all of them and deals connections round-robin.
    std::uint16_t port = config_.port;
    const int fd = MakeListener(/*reuseport=*/false, &port);
    if (fd < 0) return false;
    std::vector<Reactor*> targets;
    if (n > 1) {
      targets.reserve(n);
      for (auto& reactor : reactors_) targets.push_back(reactor.get());
    }
    reactors_[0]->AdoptListener(fd, /*acceptor=*/n > 1, std::move(targets));
    port_ = port;
  }

  if (config_.metrics_port >= 0) {
    exporter_ = std::make_unique<obs::HttpExporter>(
        config_.bind_address, config_.metrics_port,
        [this] { return PrometheusText(); });
    exporter_->AddRoute("/trace", [this] { return TraceJson(); });
    exporter_->AddRoute("/journal", [this] { return JournalJson(); });
    std::string error;
    if (!exporter_->Start(&error)) {
      SPOT_LOG(Error) << "metrics endpoint: " << error;
      exporter_.reset();
      return false;
    }
    SPOT_LOG(Info) << "metrics endpoint on " << config_.bind_address << ":"
                   << exporter_->port() << "/metrics (/trace, /journal)";
  }

  SPOT_LOG(Info) << "spot server listening on " << config_.bind_address
                 << ":" << port_ << " (" << n << " reactor"
                 << (n == 1 ? "" : "s") << ", "
                 << (reuseport_active_ ? "SO_REUSEPORT" : "single listener")
                 << ")";
  return true;
}

void SpotServer::Run() {
  threads_.reserve(reactors_.size());
  for (std::size_t i = 1; i < reactors_.size(); ++i) {
    threads_.emplace_back([reactor = reactors_[i].get()] { reactor->Run(); });
  }
  reactors_[0]->Run();
  Shutdown();
}

void SpotServer::Shutdown() {
  Stop();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  if (shutdown_done_) return;
  shutdown_done_ = true;
  // The exporter thread reads hub/service/registry state; stop it before
  // the reactors publish their final snapshots and everything winds down.
  if (exporter_ != nullptr) exporter_->Stop();
  // Each reactor's Run() already shut it down; this covers reactors
  // whose loop never ran (Shutdown is idempotent per reactor).
  for (auto& reactor : reactors_) reactor->Shutdown();
}

SpotServerStats SpotServer::stats() const {
  SpotServerStats total;
  for (const auto& reactor : reactors_) total.Add(reactor->stats());
  return total;
}

ServiceMetrics SpotServer::TotalServiceMetrics() const {
  ServiceMetrics total;
  for (const auto& service : services_) {
    MergeServiceMetrics(&total, service->TotalMetrics());
  }
  return total;
}

StatsResp SpotServer::StatsSnapshot() const {
  StatsResp resp;
  resp.reactors = hub_.All();
  resp.services.reserve(services_.size());
  for (const auto& service : services_) {
    resp.services.push_back(service->ObsSnapshot());
  }
  // Shards hold disjoint session sets (registry exclusivity), so the
  // concatenation has no duplicate ids; per-shard order is id-sorted.
  for (const auto& service : services_) {
    std::vector<obs::SessionQuality> quality = service->QualitySnapshot();
    resp.sessions.insert(resp.sessions.end(),
                         std::make_move_iterator(quality.begin()),
                         std::make_move_iterator(quality.end()));
  }
  resp.sessions_handed_off = registry_->handoffs();
  return resp;
}

std::string SpotServer::PrometheusText() const {
  const StatsResp snap = StatsSnapshot();
  std::vector<obs::LabeledSnapshot> sections;
  sections.reserve(snap.reactors.size() + snap.services.size() +
                   2 * snap.sessions.size() + 1);
  for (std::size_t i = 0; i < snap.reactors.size(); ++i) {
    sections.emplace_back("reactor=\"" + std::to_string(i) + "\"",
                          snap.reactors[i]);
  }
  for (std::size_t i = 0; i < snap.services.size(); ++i) {
    sections.emplace_back("shard=\"" + std::to_string(i) + "\"",
                          snap.services[i]);
  }
  // Detection-quality series (DESIGN.md Section 10): one session="id"
  // section per session, plus one session+subspace section per retained
  // alarming subspace (bounded by kQualityTopSubspaces per session).
  for (const SessionQuality& q : snap.sessions) {
    obs::MetricsSnapshot s;
    s.counters["session_points"] = q.points;
    s.counters["session_alarms"] = q.alarms;
    s.counters["grid_compactions"] = q.compactions;
    s.counters["grid_cells_reclaimed"] = q.cells_reclaimed;
    s.gauges["tracked_subspaces"] = static_cast<double>(q.tracked_subspaces);
    s.gauges["base_grid_cells"] = static_cast<double>(q.base_cells);
    s.gauges["slab_slots"] = static_cast<double>(q.slab_slots);
    s.gauges["slab_free_slots"] = static_cast<double>(q.free_slots);
    s.histograms["rd_margin_x1000"] = q.rd_margin;
    s.histograms["irsd_margin_x1000"] = q.irsd_margin;
    const std::string session_label = "session=\"" + q.session_id + "\"";
    sections.emplace_back(session_label, std::move(s));
    for (const SubspaceQuality& sub : q.subspaces) {
      obs::MetricsSnapshot ss;
      ss.counters["subspace_points"] = sub.points;
      ss.counters["subspace_alarms"] = sub.alarms;
      sections.emplace_back(session_label + ",subspace=\"" +
                                SubspaceLabel(sub.subspace_bits) + "\"",
                            std::move(ss));
    }
  }
  obs::MetricsSnapshot global;
  global.counters["sessions_handed_off"] = snap.sessions_handed_off;
  sections.emplace_back("", std::move(global));
  return obs::RenderPrometheus(sections);
}

std::string SpotServer::TraceJson() const {
  std::vector<std::vector<obs::TraceEvent>> snapshots;
  snapshots.reserve(traces_.size());
  for (const auto& recorder : traces_) {
    snapshots.push_back(recorder->Snapshot());
  }
  return obs::RenderChromeTrace(snapshots);
}

std::string SpotServer::JournalJson() const {
  std::string out = "{\"shards\":[";
  bool first = true;
  for (const auto& service : services_) {
    obs::Journal* journal = service->journal();
    if (journal == nullptr) continue;
    if (!first) out += ',';
    first = false;
    out += journal->RenderJson();
  }
  out += "]}";
  return out;
}

int SpotServer::metrics_port() const {
  return exporter_ != nullptr ? exporter_->port() : -1;
}

}  // namespace net
}  // namespace spot
